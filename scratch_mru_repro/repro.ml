module Cache = Archpred_sim.Cache
let () =
  (* MRU, direct-mapped (assoc=1), 2 sets of 64B lines *)
  let cfg = Cache.config ~policy:Cache.Policy.Mru ~size_bytes:128 ~line_bytes:64 ~associativity:1 ~latency:1 () in
  let c = Cache.create cfg in
  ignore (Cache.access c 0);      (* set 0, tag 0: fill *)
  ignore (Cache.access c 128);    (* set 0, tag 2: miss, must evict way 0 of set 0 *)
  (* now access set 1's own line and re-check set 0 *)
  ignore (Cache.access c 64);     (* set 1, tag 1 *)
  Printf.printf "set0 holds tag2 (expect true): %b\n" (Cache.probe c 128);
  Printf.printf "set1 holds tag1 (expect true): %b\n" (Cache.probe c 64);
  (* single-set case: out-of-bounds *)
  let cfg1 = Cache.config ~policy:Cache.Policy.Mru ~size_bytes:64 ~line_bytes:64 ~associativity:1 ~latency:1 () in
  let c1 = Cache.create cfg1 in
  ignore (Cache.access c1 0);
  (try ignore (Cache.access c1 64); print_endline "second fill ok"
   with e -> Printf.printf "EXCEPTION: %s\n" (Printexc.to_string e))
