(** Model-selection criteria (section 2.5 of the paper).

    The paper selects the subset of RBF centers minimising corrected
    Akaike information:

    {v AICc = p log(sigma^2) + 2m + 2m(m+1) / (p - m - 1)  (+ constant) v}

    (eq. 9) where [p] is the sample size, [m] the number of centers and
    [sigma^2] the error variance of the fit.  BIC and generalised
    cross-validation are provided for the criterion ablation bench. *)

type t = Aicc | Aic | Bic | Gcv

val score : t -> p:int -> m:int -> sigma2:float -> float
(** Criterion value; lower is better.  Returns [infinity] when the
    criterion is undefined — [m >= p - 1] for AICc (no residual degrees of
    freedom), [m >= p] for GCV, or [sigma2 <= 0] (an exact interpolation;
    treated as overfit). *)

val to_string : t -> string
val of_string : string -> t option
