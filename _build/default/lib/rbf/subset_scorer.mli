(** Fast scoring of candidate center subsets.

    The tree-ordered selection evaluates thousands of subsets that differ
    by one to three columns.  Refitting each by QR costs O(p m^2) per
    subset; instead this scorer precomputes the Gram matrix [G = H'H], the
    moment vector [H'y] and [y'y] once, after which any subset's residual
    sum of squares follows from an m-by-m Cholesky solve:

    {v RSS(S) = y'y - w' (H'y)_S  where  G_SS w = (H'y)_S v}

    A tiny jitter on the Gram diagonal keeps the solve defined when two
    candidate centers (nearly) coincide. *)

type t

val create : design:Archpred_linalg.Matrix.t -> responses:float array -> t
(** Precompute moments of the full p-by-M design matrix. *)

val sigma2 : t -> int list -> float option
(** Maximum-likelihood error variance [RSS / p] of the least-squares fit
    restricted to the given candidate columns; [None] for the empty subset,
    for subsets with [m >= p], or if the (jittered) normal equations are
    still singular. *)

val score : t -> criterion:Criteria.t -> int list -> float
(** Criterion value of a subset; [infinity] where {!sigma2} is [None]. *)
