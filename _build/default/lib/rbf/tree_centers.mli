(** RBF centers derived from a regression tree (section 2.5 of the paper).

    Every tree node covers a hyper-rectangle of the design space with
    center [c] and size [s]; the corresponding candidate RBF sits at [c]
    with radius vector [r = alpha * s] (eq. 8), so an RBF influences its
    own region and — for the typical [alpha] of 5–12 found by tuning —
    its neighbourhood. *)

type candidate = {
  node_id : int;  (** id of the originating tree node *)
  depth : int;
  center : Network.center;
}

val of_tree : alpha:float -> Archpred_regtree.Tree.t -> candidate array
(** Candidates for every node, indexed by node id (the root is index 0).
    Radii are clamped below at [1e-6] to keep the Gaussians well defined.
    Requires [alpha > 0]. *)
