module Matrix = Archpred_linalg.Matrix
module Least_squares = Archpred_linalg.Least_squares

type center = { c : float array; r : float array }

let check_center { c; r } =
  if Array.length c <> Array.length r then
    invalid_arg "Network: center/radius arity mismatch";
  Array.iter
    (fun radius ->
      if not (radius > 0.) then invalid_arg "Network: non-positive radius")
    r

let basis { c; r } x =
  let n = Array.length c in
  if Array.length x <> n then invalid_arg "Network.basis: arity mismatch";
  let acc = ref 0. in
  for k = 0 to n - 1 do
    let d = (x.(k) -. c.(k)) /. r.(k) in
    acc := !acc +. (d *. d)
  done;
  exp (-. !acc)

type t = { centers : center array; weights : float array }

let eval t x =
  let acc = ref 0. in
  for j = 0 to Array.length t.centers - 1 do
    acc := !acc +. (t.weights.(j) *. basis t.centers.(j) x)
  done;
  !acc

let design_matrix centers points =
  Matrix.init (Array.length points) (Array.length centers) (fun i j ->
      basis centers.(j) points.(i))

type fit_diagnostics = { rss : float; sigma2 : float; regularized : bool }

(* Deep tree nodes produce nearly coincident candidate centers, so the
   Gaussian design matrix can be severely ill-conditioned even when QR
   technically succeeds — yielding weight vectors in the millions whose
   cancellation is numerically fragile.  A small default ridge keeps the
   weights bounded and matches the jitter the subset scorer applies during
   selection. *)
let default_ridge = 1e-8

let fit ?(ridge = default_ridge) ~centers ~points ~responses () =
  if Array.length centers = 0 then invalid_arg "Network.fit: no centers";
  if Array.length points <> Array.length responses then
    invalid_arg "Network.fit: points/responses mismatch";
  if Array.length points < Array.length centers then
    invalid_arg "Network.fit: more centers than points";
  Array.iter check_center centers;
  let h = design_matrix centers points in
  let f =
    if ridge > 0. then Least_squares.fit_ridge h responses ~lambda:ridge
    else Least_squares.fit h responses
  in
  ( { centers; weights = f.Least_squares.coefficients },
    {
      rss = f.Least_squares.rss;
      sigma2 = f.Least_squares.sigma2;
      regularized = f.Least_squares.regularized;
    } )
