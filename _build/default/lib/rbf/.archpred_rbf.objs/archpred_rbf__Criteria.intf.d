lib/rbf/criteria.mli:
