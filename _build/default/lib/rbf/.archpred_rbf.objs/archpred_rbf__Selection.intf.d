lib/rbf/selection.mli: Archpred_linalg Archpred_regtree Criteria Network Tree_centers
