lib/rbf/selection.ml: Archpred_linalg Archpred_regtree Array Criteria List Network Queue Subset_scorer Tree_centers
