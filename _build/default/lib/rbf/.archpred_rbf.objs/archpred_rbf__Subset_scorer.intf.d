lib/rbf/subset_scorer.mli: Archpred_linalg Criteria
