lib/rbf/criteria.ml:
