lib/rbf/subset_scorer.ml: Archpred_linalg Array Criteria Float List
