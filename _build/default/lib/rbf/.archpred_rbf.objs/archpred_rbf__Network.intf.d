lib/rbf/network.mli: Archpred_linalg
