lib/rbf/network.ml: Archpred_linalg Array
