lib/rbf/tree_centers.mli: Archpred_regtree Network
