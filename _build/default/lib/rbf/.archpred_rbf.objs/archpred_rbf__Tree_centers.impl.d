lib/rbf/tree_centers.ml: Archpred_regtree Array Float List Network
