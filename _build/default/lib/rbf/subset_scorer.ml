module Matrix = Archpred_linalg.Matrix
module Cholesky = Archpred_linalg.Cholesky

type t = {
  gram : Matrix.t; (* M x M *)
  hy : float array; (* M *)
  yty : float;
  p : int;
}

(* matches Network.fit's default ridge, so the subset chosen by scoring
   is fitted under the same regularisation *)
let jitter = 1e-8

let create ~design ~responses =
  let p = Matrix.rows design in
  if p <> Array.length responses then
    invalid_arg "Subset_scorer.create: dimension mismatch";
  let gram = Matrix.tmul design design in
  let hy =
    Array.init (Matrix.cols design) (fun j ->
        let acc = ref 0. in
        for i = 0 to p - 1 do
          acc := !acc +. (Matrix.get design i j *. responses.(i))
        done;
        !acc)
  in
  let yty = Array.fold_left (fun acc y -> acc +. (y *. y)) 0. responses in
  { gram; hy; yty; p }

let sigma2 t ids =
  match ids with
  | [] -> None
  | _ ->
      let cols = Array.of_list ids in
      let m = Array.length cols in
      if m >= t.p then None
      else begin
        let g =
          Matrix.init m m (fun a b ->
              Matrix.get t.gram cols.(a) cols.(b)
              +. if a = b then jitter else 0.)
        in
        let rhs = Array.map (fun j -> t.hy.(j)) cols in
        match Cholesky.decompose g with
        | exception Cholesky.Not_positive_definite -> None
        | chol ->
            let w = Cholesky.solve chol rhs in
            let explained = ref 0. in
            for a = 0 to m - 1 do
              explained := !explained +. (w.(a) *. rhs.(a))
            done;
            let rss = Float.max 0. (t.yty -. !explained) in
            Some (rss /. float_of_int t.p)
      end

let score t ~criterion ids =
  match sigma2 t ids with
  | None -> infinity
  | Some s2 ->
      Criteria.score criterion ~p:t.p ~m:(List.length ids) ~sigma2:s2
