module Tree = Archpred_regtree.Tree

type candidate = { node_id : int; depth : int; center : Network.center }

let of_tree ~alpha tree =
  if not (alpha > 0.) then invalid_arg "Tree_centers.of_tree: alpha <= 0";
  let nodes = Tree.nodes tree in
  let count = Tree.node_count tree in
  let out =
    Array.make count
      { node_id = -1; depth = 0; center = { Network.c = [||]; r = [||] } }
  in
  List.iter
    (fun (n : Tree.node) ->
      let c = Tree.center n in
      let r =
        Array.map (fun s -> Float.max 1e-6 (alpha *. s)) (Tree.size n)
      in
      out.(n.Tree.id) <-
        { node_id = n.Tree.id; depth = n.Tree.depth; center = { Network.c; r } })
    nodes;
  Array.iter
    (fun cand ->
      if cand.node_id < 0 then
        invalid_arg "Tree_centers.of_tree: non-contiguous node ids")
    out;
  out
