type t = Aicc | Aic | Bic | Gcv

let score t ~p ~m ~sigma2 =
  let pf = float_of_int p and mf = float_of_int m in
  if sigma2 <= 0. then infinity
  else
    match t with
    | Aicc ->
        if m >= p - 1 then infinity
        else
          (pf *. log sigma2) +. (2. *. mf)
          +. (2. *. mf *. (mf +. 1.) /. (pf -. mf -. 1.))
    | Aic -> (pf *. log sigma2) +. (2. *. mf)
    | Bic -> (pf *. log sigma2) +. (mf *. log pf)
    | Gcv ->
        if m >= p then infinity
        else
          let denom = 1. -. (mf /. pf) in
          log (pf *. sigma2 /. (denom *. denom))

let to_string = function
  | Aicc -> "aicc"
  | Aic -> "aic"
  | Bic -> "bic"
  | Gcv -> "gcv"

let of_string = function
  | "aicc" -> Some Aicc
  | "aic" -> Some Aic
  | "bic" -> Some Bic
  | "gcv" -> Some Gcv
  | _ -> None
