lib/core/tune.mli: Archpred_rbf Archpred_regtree
