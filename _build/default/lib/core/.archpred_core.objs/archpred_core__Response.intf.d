lib/core/response.mli: Archpred_design Archpred_workloads
