lib/core/predictor.mli: Archpred_design Archpred_rbf Archpred_regtree Archpred_stats
