lib/core/paper_space.ml: Archpred_design Archpred_sim Array Float List
