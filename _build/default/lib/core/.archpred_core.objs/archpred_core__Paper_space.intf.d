lib/core/paper_space.mli: Archpred_design Archpred_sim Archpred_stats
