lib/core/crossval.mli: Archpred_design Archpred_stats
