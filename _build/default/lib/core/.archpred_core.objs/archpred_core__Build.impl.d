lib/core/build.ml: Archpred_design Archpred_rbf Archpred_stats List Predictor Response Tune
