lib/core/trend.ml: Archpred_design Array Option Predictor Response
