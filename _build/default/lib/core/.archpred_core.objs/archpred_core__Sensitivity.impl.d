lib/core/sensitivity.ml: Archpred_design Archpred_stats Array Float List Predictor
