lib/core/adaptive.ml: Archpred_design Archpred_rbf Archpred_stats Array Build Crossval List Predictor Response Tune
