lib/core/build.mli: Archpred_design Archpred_rbf Archpred_stats Predictor Response Tune
