lib/core/adaptive.mli: Archpred_design Archpred_stats Build Response
