lib/core/persist.ml: Archpred_design Archpred_rbf Array Buffer Fun In_channel List Predictor Printf String
