lib/core/search.ml: Archpred_design Archpred_stats Array Predictor
