lib/core/tune.ml: Archpred_rbf Archpred_regtree List
