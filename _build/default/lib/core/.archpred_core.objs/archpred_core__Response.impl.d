lib/core/response.ml: Archpred_design Archpred_sim Archpred_stats Archpred_workloads Array Hashtbl Int64 Mutex Paper_space
