lib/core/sensitivity.mli: Archpred_stats Predictor
