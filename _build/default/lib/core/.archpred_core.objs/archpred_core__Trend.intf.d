lib/core/trend.mli: Archpred_design Predictor Response
