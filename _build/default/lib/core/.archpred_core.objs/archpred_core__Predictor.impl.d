lib/core/predictor.ml: Archpred_design Archpred_rbf Archpred_regtree Archpred_stats Array
