lib/core/crossval.ml: Archpred_rbf Archpred_regtree Archpred_stats Array Fun List
