lib/core/search.mli: Archpred_design Archpred_stats Predictor
