lib/core/persist.mli: Predictor
