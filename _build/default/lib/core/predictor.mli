(** A trained performance predictor.

    Wraps a fitted RBF network together with the design space it was
    trained over, so callers can predict from natural parameter values as
    well as normalised points. *)

type t = {
  space : Archpred_design.Space.t;
  network : Archpred_rbf.Network.t;
  tree : Archpred_regtree.Tree.t option;
      (** the regression tree behind the centers, kept for split analyses;
          [None] for models loaded from disk ({!Persist}) *)
  p_min : int;
  alpha : float;
}

val predict : t -> Archpred_design.Space.point -> float
(** Predicted response (CPI) at a normalised design point. *)

val predict_natural : t -> float array -> float
(** Predict from natural parameter values (encoded through the space). *)

val n_centers : t -> int

val errors_on :
  t ->
  points:Archpred_design.Space.point array ->
  actual:float array ->
  Archpred_stats.Error_metrics.t
(** Prediction-error metrics against reference responses — the mean /
    std / max percentage errors the paper reports. *)
