(** Model-driven parameter-significance analysis.

    The authors' companion work (Joseph et al., HPCA 2006 — reference [10])
    estimates the significance of microarchitectural parameters from
    fitted models; this module provides the same analysis on top of a
    trained RBF predictor, with no further simulation:

    - {!main_effects}: for each parameter, the predicted response range
      along an axis sweep through the center of the space (a one-at-a-time
      effect size);
    - {!total_effects}: a sampling-based total-effect estimate — how much
      of the response's variance is tied to each parameter, interactions
      included (a Sobol-style "freeze one dimension" contrast);
    - {!interaction}: the predicted interaction strength of a parameter
      pair, measured as the non-additivity of a 2x2 corner contrast. *)

type effect = {
  name : string;
  dim : int;
  magnitude : float;  (** effect size, in response units *)
}

val main_effects : ?steps:int -> Predictor.t -> effect list
(** One-at-a-time response ranges, largest first.  [steps] (default 9)
    grid points per axis sweep. *)

val total_effects :
  ?samples:int ->
  rng:Archpred_stats.Rng.t ->
  Predictor.t ->
  effect list
(** Variance-based total effects, largest first: for each dimension, the
    mean squared response change when only that coordinate is resampled,
    over [samples] (default 512) random base points. *)

val interaction :
  Predictor.t -> dim1:int -> dim2:int -> float
(** Interaction strength of two parameters:
    [|f(hi,hi) - f(hi,lo) - f(lo,hi) + f(lo,lo)|] with other coordinates
    centered — zero for an additive (no-interaction) response. *)

val top_interactions : ?count:int -> Predictor.t -> (string * string * float) list
(** All parameter pairs ranked by {!interaction}, strongest first,
    truncated to [count] (default 10). *)
