module Space = Archpred_design.Space
module Network = Archpred_rbf.Network
module Error_metrics = Archpred_stats.Error_metrics

type t = {
  space : Space.t;
  network : Network.t;
  tree : Archpred_regtree.Tree.t option;
  p_min : int;
  alpha : float;
}

let predict t point =
  Space.validate_point t.space point;
  Network.eval t.network point

let predict_natural t values = predict t (Space.encode t.space values)
let n_centers t = Array.length t.network.Network.centers

let errors_on t ~points ~actual =
  let predicted = Array.map (predict t) points in
  Error_metrics.evaluate ~actual ~predicted
