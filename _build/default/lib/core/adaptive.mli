(** Adaptive sampling — the paper's stated future work.

    "The simulation costs involved in constructing predictive models can
    potentially be reduced using adaptive sampling, wherein sets of design
    points to simulate are selected based on data from initial small
    samples" (section 6).

    The strategy implemented here: start from a small latin hypercube
    sample; repeatedly (i) train a model, (ii) estimate where it is least
    trustworthy by scoring a random candidate pool with an
    uncertainty-times-novelty acquisition — cross-validated residuals of
    the nearest training points weighted by distance to the sample —
    and (iii) simulate the best-scoring batch and retrain.  The
    [ablation_adaptive] bench compares the resulting error, at equal
    simulation budget, against one-shot latin hypercube sampling. *)

type step = {
  sample_size : int;
  cv_error_pct : float;  (** 5-fold cross-validated error of this round *)
}

type result = {
  trained : Build.trained;  (** final model over all simulated points *)
  steps : step list;  (** per-round record, in order *)
  total_simulations : int;
}

val run :
  ?initial:int ->
  ?batch:int ->
  ?rounds:int ->
  ?pool:int ->
  rng:Archpred_stats.Rng.t ->
  space:Archpred_design.Space.t ->
  response:Response.t ->
  unit ->
  result
(** [run ~rng ~space ~response ()] performs [rounds] (default 4) rounds of
    [batch] (default 15) acquisitions on top of an [initial] (default 30)
    latin hypercube sample, scoring a fresh [pool] (default 500) of random
    candidates each round. *)
