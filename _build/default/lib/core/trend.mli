(** Two-factor trend analysis (section 4.1 / Figure 6 of the paper).

    Sweeps two parameters over a grid while the rest stay fixed, returning
    both the model's predictions and (optionally) simulated references, so
    the caller can check that the model reproduces the interaction — the
    paper's example is instruction-cache size against L2 latency for
    vortex. *)

type series = {
  dim1_value : float;  (** natural value of the first (outer) parameter *)
  dim2_values : float array;  (** natural values of the second parameter *)
  predicted : float array;
  simulated : float array option;
}

val sweep :
  ?simulate:Response.t ->
  ?domains:int ->
  predictor:Predictor.t ->
  base:Archpred_design.Space.point ->
  dim1:int ->
  steps1:int ->
  dim2:int ->
  steps2:int ->
  unit ->
  series array
(** One series per setting of [dim1]; within a series, [dim2] varies.
    When [simulate] is given, reference responses are obtained for every
    grid point (in parallel). *)
