module Tree = Archpred_regtree.Tree
module Rbf = Archpred_rbf

type result = {
  p_min : int;
  alpha : float;
  criterion : float;
  tree : Tree.t;
  selection : Rbf.Selection.result;
}

let default_p_min_grid = [ 1; 2; 3 ]
let default_alpha_grid = [ 3.; 5.; 7.; 9.; 12. ]

let tune ?(criterion = Rbf.Criteria.Aicc) ?(p_min_grid = default_p_min_grid)
    ?(alpha_grid = default_alpha_grid) ~dim ~points ~responses () =
  if p_min_grid = [] || alpha_grid = [] then
    invalid_arg "Tune.tune: empty grid";
  let best = ref None in
  List.iter
    (fun p_min ->
      let tree = Tree.build ~p_min ~dim ~points ~responses () in
      List.iter
        (fun alpha ->
          let candidates = Rbf.Tree_centers.of_tree ~alpha tree in
          let selection =
            Rbf.Selection.select ~criterion ~tree ~candidates ~points
              ~responses ()
          in
          let value = selection.Rbf.Selection.criterion in
          match !best with
          | Some b when b.criterion <= value -> ()
          | Some _ | None ->
              best := Some { p_min; alpha; criterion = value; tree; selection })
        alpha_grid)
    p_min_grid;
  match !best with Some b -> b | None -> assert false
