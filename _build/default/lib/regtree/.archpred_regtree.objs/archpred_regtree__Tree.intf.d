lib/regtree/tree.mli:
