lib/regtree/tree.ml: Array List
