lib/linreg/term.mli:
