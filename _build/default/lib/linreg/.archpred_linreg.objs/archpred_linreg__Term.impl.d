lib/linreg/term.ml: Array List Stdlib
