lib/linreg/model.mli: Format Term
