lib/linreg/model.ml: Archpred_linalg Array Format List Term
