(** Terms of a linear regression model over the normalised design space.

    The baseline of section 4.2 of the paper is a linear model "with the
    main effects and all two-parameter interactions only" — an intercept,
    one term per parameter, and one product term per parameter pair. *)

type t =
  | Intercept
  | Main of int  (** coordinate [k] *)
  | Interaction of int * int  (** product of two coordinates, [j < k] *)

val value : t -> float array -> float
(** Evaluate a term at a point. *)

val full_set : dim:int -> t list
(** Intercept, all main effects and all two-factor interactions:
    [1 + d + d*(d-1)/2] terms. *)

val main_effects_only : dim:int -> t list
(** Intercept and main effects. *)

val interactions : dim:int -> t list
(** The two-factor interaction terms alone. *)

val compare : t -> t -> int
val to_string : ?names:string array -> t -> string
