module Matrix = Archpred_linalg.Matrix
module Least_squares = Archpred_linalg.Least_squares

type t = {
  terms : Term.t list;
  coefficients : float array;
  sigma2 : float;
}

let terms t = t.terms
let coefficients t = t.coefficients
let sigma2 t = t.sigma2

let predict t x =
  List.fold_left2
    (fun acc term w -> acc +. (w *. Term.value term x))
    0. t.terms
    (Array.to_list t.coefficients)

let design_matrix terms points =
  let terms = Array.of_list terms in
  Matrix.init (Array.length points) (Array.length terms) (fun i j ->
      Term.value terms.(j) points.(i))

let fit ~terms ~points ~responses =
  if terms = [] then invalid_arg "Model.fit: no terms";
  if Array.length points <> Array.length responses then
    invalid_arg "Model.fit: points/responses mismatch";
  let h = design_matrix terms points in
  let f = Least_squares.fit h responses in
  {
    terms;
    coefficients = f.Least_squares.coefficients;
    sigma2 = f.Least_squares.sigma2;
  }

let aic ~p ~m ~sigma2 =
  if sigma2 <= 0. then neg_infinity
  else (float_of_int p *. log sigma2) +. (2. *. float_of_int m)

let score criterion ~p terms points responses =
  let m = List.length terms in
  if m >= p then (infinity, None)
  else
    let model = fit ~terms ~points ~responses in
    (criterion ~p ~m ~sigma2:model.sigma2, Some model)

let stepwise ?(criterion = aic) ~points ~responses () =
  let p = Array.length points in
  if p = 0 then invalid_arg "Model.stepwise: empty sample";
  let dim = Array.length points.(0) in
  let pool = Term.full_set ~dim in
  let start =
    (* Main effects if they fit; otherwise just the intercept. *)
    let mains = Term.main_effects_only ~dim in
    if List.length mains < p then mains else [ Term.Intercept ]
  in
  let current = ref start in
  let current_score, current_model = score criterion ~p !current points responses in
  let best_score = ref current_score in
  let best_model = ref current_model in
  let improved = ref true in
  while !improved do
    improved := false;
    let additions =
      List.filter (fun t -> not (List.exists (fun u -> Term.compare t u = 0) !current)) pool
      |> List.map (fun t -> !current @ [ t ])
    in
    let removals =
      List.filter (fun t -> t <> Term.Intercept) !current
      |> List.map (fun t ->
             List.filter (fun u -> Term.compare t u <> 0) !current)
    in
    let candidates = additions @ removals in
    (* Evaluate every single-term move and take the best one. *)
    let best_move = ref None in
    List.iter
      (fun terms ->
        let sc, model = score criterion ~p terms points responses in
        match !best_move with
        | Some (sc', _, _) when sc' <= sc -> ()
        | Some _ | None -> best_move := Some (sc, terms, model))
      candidates;
    (match !best_move with
    | Some (sc, terms, model) when sc < !best_score -. 1e-12 ->
        best_score := sc;
        best_model := model;
        current := terms;
        improved := true
    | Some _ | None -> ())
  done;
  match !best_model with
  | Some model -> model
  | None ->
      (* Degenerate data (e.g. a constant response gives -inf AIC for every
         model, so no strict improvement is ever recorded): fit the start
         set directly. *)
      fit ~terms:start ~points ~responses

let pp ?names ppf t =
  List.iteri
    (fun i term ->
      if i > 0 then Format.fprintf ppf " + ";
      Format.fprintf ppf "%.4g*%s" t.coefficients.(i)
        (Term.to_string ?names term))
    t.terms
