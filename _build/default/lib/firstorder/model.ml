module Sim = Archpred_sim
module Opcode = Sim.Opcode

type t = { stats : Trace_stats.t; n : float }

let create trace =
  {
    stats = Trace_stats.analyse trace;
    n = float_of_int (Sim.Trace.length trace);
  }

type breakdown = {
  base : float;
  branch : float;
  icache : float;
  dcache_l2 : float;
  dcache_memory : float;
}

let exec_latency cfg op =
  match Sim.Fu_pool.class_of_opcode op with
  | None -> 1
  | Some Sim.Fu_pool.Mem_port -> cfg.Sim.Config.dl1_latency
  | Some cls -> Sim.Fu_pool.latency cfg.Sim.Config.fu cls

let components t cfg =
  let n = t.n in
  let w = cfg.Sim.Config.rob_size in
  (* Background term: data-flow issue rate inside a W-instruction window,
     clipped by the machine width. *)
  let ipc_dataflow =
    Trace_stats.ipc_of_window t.stats ~exec_latency:(exec_latency cfg) ~w
  in
  let ipc = Float.min ipc_dataflow (float_of_int cfg.Sim.Config.issue_width) in
  let base = 1. /. ipc in
  let events = Trace_stats.count_events t.stats cfg in
  (* Memory timing parameters of the hierarchy below the L1s. *)
  let l2_lat = float_of_int cfg.Sim.Config.l2_latency in
  let mem_lat =
    float_of_int
      (cfg.Sim.Config.dram.Sim.Dram.base_latency
      + cfg.Sim.Config.dram.Sim.Dram.bus_occupancy)
  in
  (* The out-of-order window hides part of a load miss: while the miss is
     outstanding, roughly W/ipc further cycles of independent work can
     issue behind it, bounded by half the window in practice. *)
  let hidden = 0.5 *. float_of_int w /. ipc in
  let exposed lat = Float.max 0. (lat -. hidden) in
  let branch =
    (* flush + front-end refill; resolution adds roughly the window drain *)
    float_of_int events.Trace_stats.branch_mispredicts
    *. (float_of_int cfg.Sim.Config.pipe_depth +. (0.5 /. ipc *. float_of_int w))
    /. n
  in
  let icache =
    ((float_of_int events.Trace_stats.il1_misses *. l2_lat)
    +. (float_of_int events.Trace_stats.il1_to_memory *. (l2_lat +. mem_lat)))
    /. n
  in
  let dcache_l2 =
    float_of_int events.Trace_stats.dl1_misses *. exposed l2_lat /. n
  in
  let dcache_memory =
    float_of_int events.Trace_stats.dl1_to_memory
    *. exposed (l2_lat +. mem_lat)
    /. events.Trace_stats.memory_mlp /. n
  in
  { base; branch; icache; dcache_l2; dcache_memory }

let cpi t cfg =
  let b = components t cfg in
  b.base +. b.branch +. b.icache +. b.dcache_l2 +. b.dcache_memory

let pp_breakdown ppf b =
  Format.fprintf ppf
    "base=%.3f branch=%.3f icache=%.3f dl2=%.3f dmem=%.3f total=%.3f" b.base
    b.branch b.icache b.dcache_l2 b.dcache_memory
    (b.base +. b.branch +. b.icache +. b.dcache_l2 +. b.dcache_memory)
