(** Trace statistics for the first-order analytical model.

    Karkhanis and Smith's first-order model (ISCA 2004, reference [11] of
    the paper) predicts CPI from a program's *inherent* characteristics
    plus counts of miss events at a given configuration.  This module
    computes the program side:

    - the window-limited data-flow IPC [ipc_of_window]: how fast the
      instructions could issue given only their true dependencies and a
      reorder window of [w] instructions (unbounded functional units,
      perfect caches and prediction);
    - event counts at a concrete configuration, gathered by functional
      (untimed) simulation of the caches and branch predictor. *)

type t
(** Precomputed dependency structure of one trace. *)

val analyse : Archpred_sim.Trace.t -> t
(** One pass over the trace; O(n) time and space. *)

val trace : t -> Archpred_sim.Trace.t

val ipc_of_window : t -> exec_latency:(Archpred_sim.Opcode.t -> int) -> w:int -> float
(** Data-flow issue rate achievable with an in-order-fetch window of [w]
    instructions: the trace is scanned in consecutive windows, the
    data-flow critical path of each window sets its drain time, and the
    aggregate rate is instructions over summed drain times.  [exec_latency]
    gives each class's execution latency (memory classes should use the L1
    hit latency — misses are accounted separately as events). *)

type events = {
  branch_mispredicts : int;
  il1_misses : int;  (** instruction-fetch line misses that hit in L2 *)
  il1_to_memory : int;  (** instruction-fetch misses that go to DRAM *)
  dl1_misses : int;  (** load misses that hit in L2 *)
  dl1_to_memory : int;  (** load misses that go to DRAM *)
  load_count : int;
  memory_mlp : float;  (** average number of long (DRAM) load misses that
                           are simultaneously in flight within a window;
                           long-miss penalties are divided by this, the
                           model's overlap correction *)
}

val count_events : t -> Archpred_sim.Config.t -> events
(** Functional cache/predictor simulation at a configuration (with the
    same steady-state warm-up the timing simulator uses). *)
