module Sim = Archpred_sim
module Trace = Sim.Trace
module Opcode = Sim.Opcode

type t = { trace : Trace.t }

let analyse trace = { trace }
let trace t = t.trace

let ipc_of_window t ~exec_latency ~w =
  if w < 1 then invalid_arg "Trace_stats.ipc_of_window: w < 1";
  let trace = t.trace in
  let n = Trace.length trace in
  if n = 0 then invalid_arg "Trace_stats.ipc_of_window: empty trace";
  (* Per-window data-flow critical path.  Issue times are relative to the
     window start; producers outside the window are ready at time 0. *)
  let finish = Array.make w 0 in
  let total_cycles = ref 0 in
  let start = ref 0 in
  while !start < n do
    let stop = min n (!start + w) in
    let drain = ref 1 in
    for i = !start to stop - 1 do
      let ready d =
        if d <= 0 then 0
        else
          let p = i - d in
          if p < !start then 0 else finish.(p - !start)
      in
      let issue = max (ready (Trace.dep1 trace i)) (ready (Trace.dep2 trace i)) in
      let f = issue + exec_latency (Trace.op trace i) in
      finish.(i - !start) <- f;
      if f > !drain then drain := f
    done;
    total_cycles := !total_cycles + !drain;
    start := stop
  done;
  float_of_int n /. float_of_int (max 1 !total_cycles)

type events = {
  branch_mispredicts : int;
  il1_misses : int;
  il1_to_memory : int;
  dl1_misses : int;
  dl1_to_memory : int;
  load_count : int;
  memory_mlp : float;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let count_events t cfg =
  let trace = t.trace in
  let n = Trace.length trace in
  let il1 = Sim.Cache.create (Sim.Config.il1_config cfg) in
  let dl1 = Sim.Cache.create (Sim.Config.dl1_config cfg) in
  let l2 = Sim.Cache.create (Sim.Config.l2_config cfg) in
  let bp = Sim.Branch_predictor.create cfg.Sim.Config.branch in
  let line_shift = log2 cfg.Sim.Config.line_bytes in
  let w = cfg.Sim.Config.rob_size in
  let counting = ref false in
  let branch_mispredicts = ref 0 in
  let il1_misses = ref 0 and il1_to_memory = ref 0 in
  let dl1_misses = ref 0 and dl1_to_memory = ref 0 in
  let load_count = ref 0 in
  (* Long-miss overlap: group DRAM load misses that fall within one window
     of each other; a miss whose address producer is itself a recent long
     miss starts a new serial interval (pointer chasing cannot overlap). *)
  let long_miss_marks = Hashtbl.create 256 in
  let last_long_miss = ref min_int in
  let long_total = ref 0 and long_intervals = ref 0 in
  let pass count =
    counting := count;
    let cur_line = ref (-1) in
    for i = 0 to n - 1 do
      let line = Trace.pc trace i lsr line_shift in
      if line <> !cur_line then begin
        cur_line := line;
        if not (Sim.Cache.access il1 (Trace.pc trace i)) then begin
          let in_l2 = Sim.Cache.access l2 (Trace.pc trace i) in
          if count then
            if in_l2 then incr il1_misses else incr il1_to_memory
        end
      end;
      match Trace.op trace i with
      | Opcode.Load ->
          if count then incr load_count;
          let addr = Trace.addr trace i in
          if not (Sim.Cache.access dl1 addr) then begin
            let in_l2 = Sim.Cache.access l2 addr in
            if count then
              if in_l2 then incr dl1_misses
              else begin
                incr dl1_to_memory;
                incr long_total;
                let producer = i - Trace.dep1 trace i in
                let chained =
                  Trace.dep1 trace i > 0
                  && Hashtbl.mem long_miss_marks producer
                  && i - producer <= w
                in
                let overlapped = (not chained) && i - !last_long_miss <= w in
                if not overlapped then incr long_intervals;
                Hashtbl.replace long_miss_marks i ();
                last_long_miss := i
              end
          end
      | Opcode.Store ->
          let addr = Trace.addr trace i in
          if not (Sim.Cache.access dl1 addr) then
            ignore (Sim.Cache.access l2 addr)
      | Opcode.Branch | Opcode.Jump ->
          let pc = Trace.pc trace i in
          let taken = Trace.taken trace i in
          let kind =
            if Trace.op trace i = Opcode.Jump then Sim.Branch_predictor.Indirect
            else Sim.Branch_predictor.Conditional
          in
          if count then begin
            if Sim.Branch_predictor.mispredicted bp ~kind ~pc ~taken then
              incr branch_mispredicts
          end;
          Sim.Branch_predictor.update bp ~pc ~taken ~target:(Trace.target trace i)
      | Opcode.Ialu | Opcode.Imul | Opcode.Idiv | Opcode.Fadd | Opcode.Fmul
      | Opcode.Fdiv | Opcode.Nop ->
          ()
    done
  in
  (* warm pass, then counting pass: same steady-state treatment as the
     timing simulator *)
  pass false;
  pass true;
  {
    branch_mispredicts = !branch_mispredicts;
    il1_misses = !il1_misses;
    il1_to_memory = !il1_to_memory;
    dl1_misses = !dl1_misses;
    dl1_to_memory = !dl1_to_memory;
    load_count = !load_count;
    memory_mlp =
      (if !long_intervals = 0 then 1.
       else float_of_int !long_total /. float_of_int !long_intervals);
  }
