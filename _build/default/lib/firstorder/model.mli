(** A first-order analytical CPI model in the style of Karkhanis and Smith
    (ISCA 2004) — reference [11] of the paper, discussed in its section 5.

    The model decomposes CPI into a background term and additive miss-event
    penalties:

    {v CPI = CPI_base(W)                          background (data-flow
                                                   ILP within the window)
          + f_mispredict * (pipe_depth + resolve)  branch flushes
          + f_L1I-miss   * L2 latency (+ memory)   fetch stalls
          + f_load-miss  * exposed L2 latency      short data misses
          + f_long-miss  * exposed memory latency / MLP  long data misses v}

    where exposed latencies subtract the slack an out-of-order window can
    hide and MLP is the measured overlap of long misses.  Building the
    model requires only *functional* simulation (cache and predictor state,
    no timing) plus one dependency-analysis pass — this is exactly the
    trade-off the paper describes for theoretical models: cheap and
    mechanistically interpretable, but less accurate than fitted
    non-linear models, and needing new event counts at every configuration.

    The reproduction uses it as a second baseline next to the linear model
    of Figure 7 (see the [ablation_firstorder] bench). *)

type t
(** A model instance bound to one trace. *)

val create : Archpred_sim.Trace.t -> t

type breakdown = {
  base : float;  (** background CPI from window-limited data flow *)
  branch : float;  (** misprediction flush/refill CPI *)
  icache : float;  (** instruction-fetch miss CPI *)
  dcache_l2 : float;  (** exposed short (L2-hit) load-miss CPI *)
  dcache_memory : float;  (** exposed long (DRAM) load-miss CPI *)
}

val components : t -> Archpred_sim.Config.t -> breakdown
(** Per-mechanism CPI contributions at a configuration. *)

val cpi : t -> Archpred_sim.Config.t -> float
(** Total predicted CPI (the sum of the breakdown). *)

val pp_breakdown : Format.formatter -> breakdown -> unit
