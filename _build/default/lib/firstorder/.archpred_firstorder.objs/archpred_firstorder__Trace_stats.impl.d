lib/firstorder/trace_stats.ml: Archpred_sim Array Hashtbl
