lib/firstorder/model.ml: Archpred_sim Float Format Trace_stats
