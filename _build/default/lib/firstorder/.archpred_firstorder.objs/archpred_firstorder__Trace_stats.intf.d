lib/firstorder/trace_stats.mli: Archpred_sim
