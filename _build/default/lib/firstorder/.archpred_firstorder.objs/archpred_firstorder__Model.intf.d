lib/firstorder/model.mli: Archpred_sim Format
