lib/splines/mars.mli:
