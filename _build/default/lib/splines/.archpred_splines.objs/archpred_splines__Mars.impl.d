lib/splines/mars.ml: Archpred_linalg Array Float List
