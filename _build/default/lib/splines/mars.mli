(** Piecewise-linear regression splines, after Lee and Brooks (ASPLOS
    2006).

    Section 5 of the paper cites Lee and Brooks' regression splines as the
    other contemporaneous technique for microarchitectural performance
    prediction.  This is a compact MARS-style implementation: the model is
    a linear combination of an intercept and hinge functions
    [max(0, x_k - t)] / [max(0, t - x_k)], built by greedy forward
    selection over data-driven knots with a generalised cross-validation
    stopping rule, followed by a backward pruning pass. *)

type basis =
  | Intercept
  | Hinge of { dim : int; knot : float; positive : bool }
      (** [positive] selects [max(0, x - knot)]; otherwise
          [max(0, knot - x)] *)

type t

val basis_value : basis -> float array -> float

val train :
  ?max_terms:int ->
  ?knots_per_dim:int ->
  points:float array array ->
  responses:float array ->
  unit ->
  t
(** Greedy forward selection of up to [max_terms] (default 21) basis
    functions over [knots_per_dim] (default 7) quantile knots per
    dimension, minimising GCV; then backward pruning while GCV improves.
    Raises [Invalid_argument] on empty or mismatched data. *)

val predict : t -> float array -> float
val terms : t -> basis list
val gcv : t -> float
(** The selected model's GCV score (lower is better). *)
