type levels = Fixed of int | Per_sample

type t = {
  name : string;
  lo : float;
  hi : float;
  levels : levels;
  transform : Transform.t;
  integer : bool;
}

let make ?(levels = Per_sample) ?(transform = Transform.Linear)
    ?(integer = false) name ~lo ~hi =
  if name = "" then invalid_arg "Parameter.make: empty name";
  if lo = hi then invalid_arg "Parameter.make: lo = hi";
  (match levels with
  | Fixed l when l < 2 -> invalid_arg "Parameter.make: Fixed levels < 2"
  | Fixed _ | Per_sample -> ());
  (match transform with
  | Transform.Log when lo <= 0. || hi <= 0. ->
      invalid_arg "Parameter.make: log transform over non-positive range"
  | Transform.Log | Transform.Linear -> ());
  { name; lo; hi; levels; transform; integer }

let level_count t ~sample_size =
  match t.levels with
  | Fixed l -> l
  | Per_sample -> max 2 sample_size

let level_coordinates t ~sample_size =
  let l = level_count t ~sample_size in
  Array.init l (fun k -> float_of_int k /. float_of_int (l - 1))

let snap t ~sample_size u =
  let l = level_count t ~sample_size in
  let k = Float.round (u *. float_of_int (l - 1)) in
  let k = Float.max 0. (Float.min (float_of_int (l - 1)) k) in
  k /. float_of_int (l - 1)

let decode t u =
  let v = Transform.apply t.transform ~lo:t.lo ~hi:t.hi u in
  if t.integer then Float.round v else v

let encode t v = Transform.invert t.transform ~lo:t.lo ~hi:t.hi v

let pp ppf t =
  let levels =
    match t.levels with Fixed l -> string_of_int l | Per_sample -> "S"
  in
  Format.fprintf ppf "%-12s %10g .. %-10g levels=%-3s %s%s" t.name t.lo t.hi
    levels
    (Transform.to_string t.transform)
    (if t.integer then " (integer)" else "")
