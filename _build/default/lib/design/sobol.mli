(** Sobol low-discrepancy sequences (up to 10 dimensions).

    A quasi-random alternative to latin hypercube sampling for the
    sampling-strategy ablation: Sobol points minimise star discrepancy by
    construction, which makes them the natural yardstick for the paper's
    best-of-N LHS heuristic.  Direction numbers follow Joe and Kuo's
    primitive-polynomial tables for the first ten dimensions; generation
    uses the Gray-code ordering of Antonov and Saleev. *)

val max_dimension : int
(** 10. *)

val points : ?skip:int -> dim:int -> n:int -> unit -> float array array
(** [points ~dim ~n ()] is the first [n] Sobol points in [\[0,1)^dim],
    after discarding [skip] (default 1, dropping the all-zeros origin
    point).  Raises [Invalid_argument] for [dim] outside
    [1..max_dimension] or [n <= 0]. *)

val sample : Space.t -> n:int -> Space.point array
(** Sobol points shaped for a design space (arity = space dimension).
    Raises [Invalid_argument] if the space has more than
    {!max_dimension} dimensions. *)
