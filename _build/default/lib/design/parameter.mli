(** A single microarchitectural design parameter.

    Mirrors one row of Table 1 in the paper: a name, a natural range
    [lo..hi] (where [lo] is the value at normalised coordinate 0 — possibly
    the numerically larger one, e.g. pipeline depth 24..7), a number of
    levels (either fixed, or "S": one level per sample point, written
    [Per_sample]), a {!Transform.t}, and whether values are integral. *)

type levels =
  | Fixed of int  (** this many equally spaced settings, endpoints included *)
  | Per_sample  (** "S" in Table 1: as many settings as sample points *)

type t = {
  name : string;
  lo : float;
  hi : float;
  levels : levels;
  transform : Transform.t;
  integer : bool;  (** round decoded natural values to integers *)
}

val make :
  ?levels:levels ->
  ?transform:Transform.t ->
  ?integer:bool ->
  string ->
  lo:float ->
  hi:float ->
  t
(** [make name ~lo ~hi] with levels defaulting to [Per_sample], transform to
    [Linear], integer to [false]. Raises [Invalid_argument] for an empty
    name, [lo = hi], [Fixed l] with [l < 2], or a log transform over a
    non-positive range. *)

val level_count : t -> sample_size:int -> int
(** Number of distinct settings when drawing a sample of the given size. *)

val level_coordinates : t -> sample_size:int -> float array
(** The normalised coordinates of the settings: [k /. (l - 1)] for
    [k = 0 .. l-1], so both endpoints are always reachable. *)

val snap : t -> sample_size:int -> float -> float
(** Snap a normalised coordinate to the nearest level coordinate. *)

val decode : t -> float -> float
(** Natural value at a normalised coordinate (applying the transform and
    integer rounding). *)

val encode : t -> float -> float
(** Normalised coordinate of a natural value; inverse of {!decode} up to
    rounding. *)

val pp : Format.formatter -> t -> unit
