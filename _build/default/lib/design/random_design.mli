(** Plain uniform-random designs.

    Two uses: the paper's *test* sets are "randomly and independently
    generated" points (section 3), and uniform random sampling is the
    baseline against which latin hypercube sampling is compared in the
    sampling ablation bench. *)

val sample :
  Archpred_stats.Rng.t -> Space.t -> n:int -> Space.point array
(** [n] independent uniform points in the unit cube. *)

val sample_snapped :
  Archpred_stats.Rng.t -> Space.t -> n:int -> Space.point array
(** Uniform points snapped to each parameter's level grid (level grids
    sized as for a sample of [n]). *)

val sample_in_box :
  Archpred_stats.Rng.t ->
  Space.t ->
  n:int ->
  lo:Space.point ->
  hi:Space.point ->
  Space.point array
(** Uniform points inside the axis-aligned sub-box [\[lo, hi\]] of the unit
    cube — the Table 2 test region. *)
