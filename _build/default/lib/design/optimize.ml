type result = {
  points : Space.point array;
  discrepancy : float;
  candidates : int;
}

let best_lhs ?(kind = Discrepancy.Star) ?(candidates = 100) rng space ~n =
  if candidates < 1 then invalid_arg "Optimize.best_lhs: candidates < 1";
  let best = ref None in
  for _ = 1 to candidates do
    let points = Lhs.sample rng space ~n in
    let disc = Discrepancy.compute kind points in
    match !best with
    | Some (_, best_disc) when best_disc <= disc -> ()
    | Some _ | None -> best := Some (points, disc)
  done;
  match !best with
  | Some (points, discrepancy) -> { points; discrepancy; candidates }
  | None -> assert false

let discrepancy_curve ?kind ?candidates rng space ~sizes =
  List.map
    (fun n ->
      let r = best_lhs ?kind ?candidates rng space ~n in
      (n, r.discrepancy))
    sizes
