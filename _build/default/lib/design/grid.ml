let coordinate ~steps i =
  if steps < 2 then invalid_arg "Grid: steps < 2";
  float_of_int i /. float_of_int (steps - 1)

let full_factorial space ~levels_per_dim =
  if levels_per_dim < 2 then invalid_arg "Grid.full_factorial: levels < 2";
  let d = Space.dimension space in
  let total = int_of_float (float_of_int levels_per_dim ** float_of_int d) in
  Array.init total (fun idx ->
      let point = Array.make d 0. in
      let rest = ref idx in
      for k = 0 to d - 1 do
        point.(k) <- coordinate ~steps:levels_per_dim (!rest mod levels_per_dim);
        rest := !rest / levels_per_dim
      done;
      point)

let sweep1 space ~base ~dim ~steps =
  Space.validate_point space base;
  if dim < 0 || dim >= Space.dimension space then
    invalid_arg "Grid.sweep1: bad dimension";
  Array.init steps (fun i ->
      let p = Array.copy base in
      p.(dim) <- coordinate ~steps i;
      p)

let sweep2 space ~base ~dim1 ~steps1 ~dim2 ~steps2 =
  Space.validate_point space base;
  let d = Space.dimension space in
  if dim1 < 0 || dim1 >= d || dim2 < 0 || dim2 >= d || dim1 = dim2 then
    invalid_arg "Grid.sweep2: bad dimensions";
  Array.init steps1 (fun i ->
      Array.init steps2 (fun j ->
          let p = Array.copy base in
          p.(dim1) <- coordinate ~steps:steps1 i;
          p.(dim2) <- coordinate ~steps:steps2 j;
          p))
