type t = Linear | Log

let check_log lo hi =
  if lo <= 0. || hi <= 0. then
    invalid_arg "Transform: log transform needs positive endpoints"

let apply t ~lo ~hi u =
  match t with
  | Linear -> lo +. (u *. (hi -. lo))
  | Log ->
      check_log lo hi;
      exp (log lo +. (u *. (log hi -. log lo)))

let invert t ~lo ~hi v =
  match t with
  | Linear ->
      if hi = lo then 0. else (v -. lo) /. (hi -. lo)
  | Log ->
      check_log lo hi;
      if hi = lo then 0. else (log v -. log lo) /. (log hi -. log lo)

let to_string = function Linear -> "linear" | Log -> "log"

let of_string = function
  | "linear" -> Some Linear
  | "log" -> Some Log
  | _ -> None
