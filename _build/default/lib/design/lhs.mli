(** Latin hypercube sampling.

    The paper's variant (section 2.2): a sample of [n] points is built so
    that every parameter takes values covering all of its settings —
    each dimension's coordinates are a stratified cover of that
    parameter's level grid — and the per-dimension settings are combined by
    independent random permutations.

    With a parameter that has fewer levels than sample points (e.g. the
    4-level L1 cache sizes of Table 1), strata wrap around the level grid so
    every level appears equally often (±1). *)

val sample :
  Archpred_stats.Rng.t -> Space.t -> n:int -> Space.point array
(** [sample rng space ~n] draws an [n]-point latin hypercube over the
    space's level grids. Requires [n >= 2]. *)

val sample_continuous :
  ?centered:bool -> Archpred_stats.Rng.t -> Space.t -> n:int -> Space.point array
(** Classic continuous LHS over the unit cube, ignoring level grids: each
    dimension is a random permutation of the [n] strata, with the point
    placed uniformly within its stratum ([centered = true] places it at the
    stratum midpoint; default [false]). Used by property tests and by the
    discrepancy study. *)

val is_latin : dim:int -> n:int -> Space.point array -> bool
(** Check the latin property of a continuous sample: in every dimension,
    each of the [n] strata contains exactly one point. *)
