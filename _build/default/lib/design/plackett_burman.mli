(** Plackett–Burman two-level screening designs.

    Implemented as a related-work baseline: Yi et al. (HPCA 2005, cited in
    section 5) rank microarchitectural parameters with foldover
    Plackett–Burman designs.  A PB design of [n] runs estimates up to
    [n - 1] main effects; its foldover doubles the runs and frees the main
    effects from confounding with two-factor interactions.  The paper
    argues such designs cannot quantify the interactions that matter — the
    sampling ablation bench makes that comparison concrete. *)

val design : runs:int -> int array array
(** [design ~runs] is the cyclic Plackett–Burman matrix with entries [+1] /
    [-1], of shape [runs x (runs - 1)].  Supported sizes: 8, 12, 16, 20,
    24.  Raises [Invalid_argument] otherwise. *)

val foldover : int array array -> int array array
(** Append the sign-reversed runs, doubling the design. *)

val points : Space.t -> int array array -> Space.point array
(** Interpret the first [dimension space] columns as design points: [-1] is
    coordinate 0 and [+1] is coordinate 1.  Raises [Invalid_argument] if
    the design has fewer columns than the space has dimensions. *)

val main_effects :
  int array array -> float array -> int -> float array
(** [main_effects design responses d] estimates the first [d] main effects
    as the mean response difference between the [+1] and [-1] settings of
    each column. *)
