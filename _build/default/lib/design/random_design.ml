module Rng = Archpred_stats.Rng

let sample rng space ~n =
  if n < 1 then invalid_arg "Random_design.sample: n < 1";
  let d = Space.dimension space in
  Array.init n (fun _ -> Array.init d (fun _ -> Rng.unit_float rng))

let sample_snapped rng space ~n =
  Array.map (Space.snap space ~sample_size:n) (sample rng space ~n)

let sample_in_box rng space ~n ~lo ~hi =
  Array.map (Space.sub_box space ~lo ~hi) (sample rng space ~n)
