(** Parameter transformations.

    Table 1 of the paper assigns each design parameter a transformation:
    cache sizes vary on a log scale (256KB..8MB in powers of two behave
    multiplicatively) while latencies and queue sizes vary linearly.  A
    transformation fixes how the normalised coordinate [u] in [0, 1] maps to
    the natural units of a parameter. *)

type t = Linear | Log

val apply : t -> lo:float -> hi:float -> float -> float
(** [apply tr ~lo ~hi u] maps [u] in [\[0, 1\]] to the natural range:
    [u = 0.] yields [lo] and [u = 1.] yields [hi].  [lo > hi] is permitted
    (the paper writes ranges like pipeline depth 24..7, where the "low"
    setting is the worse one); [Log] requires both endpoints strictly
    positive. *)

val invert : t -> lo:float -> hi:float -> float -> float
(** [invert tr ~lo ~hi v] recovers the normalised coordinate of a natural
    value; inverse of {!apply}. *)

val to_string : t -> string
val of_string : string -> t option
