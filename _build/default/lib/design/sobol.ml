let max_dimension = 10
let bits = 30

(* Joe-Kuo direction-number seeds: (degree s, coefficient a, m_1..m_s) for
   dimensions 2..10; dimension 1 is the van der Corput sequence. *)
let seeds =
  [|
    (1, 0, [| 1 |]);
    (2, 1, [| 1; 3 |]);
    (3, 1, [| 1; 3; 1 |]);
    (3, 2, [| 1; 1; 1 |]);
    (4, 1, [| 1; 1; 3; 3 |]);
    (4, 4, [| 1; 3; 5; 13 |]);
    (5, 2, [| 1; 1; 5; 5; 17 |]);
    (5, 4, [| 1; 1; 5; 5; 5 |]);
    (5, 7, [| 1; 1; 7; 11; 19 |]);
  |]

(* Direction numbers v.(k).(j): dimension k, bit j, scaled to [bits] bits. *)
let direction_numbers dim =
  let v = Array.make_matrix dim bits 0 in
  (* dimension 1: v_j = 2^(bits - j - 1) *)
  for j = 0 to bits - 1 do
    v.(0).(j) <- 1 lsl (bits - j - 1)
  done;
  for k = 1 to dim - 1 do
    let s, a, m = seeds.(k - 1) in
    for j = 0 to min s bits - 1 do
      v.(k).(j) <- m.(j) lsl (bits - j - 1)
    done;
    for j = s to bits - 1 do
      (* v_j = v_{j-s} xor (v_{j-s} >> s) xor sum of a's tap bits *)
      let value = ref (v.(k).(j - s) lxor (v.(k).(j - s) lsr s)) in
      for t = 1 to s - 1 do
        if (a lsr (s - 1 - t)) land 1 = 1 then
          value := !value lxor v.(k).(j - t)
      done;
      v.(k).(j) <- !value
    done
  done;
  v

let points ?(skip = 1) ~dim ~n () =
  if dim < 1 || dim > max_dimension then
    invalid_arg "Sobol.points: dim outside [1, 10]";
  if n <= 0 then invalid_arg "Sobol.points: n <= 0";
  if skip < 0 then invalid_arg "Sobol.points: negative skip";
  let v = direction_numbers dim in
  let x = Array.make dim 0 in
  let scale = 1. /. float_of_int (1 lsl bits) in
  let out = Array.init n (fun _ -> Array.make dim 0.) in
  (* Gray-code stepping: index i flips the bit at the position of the
     lowest zero bit of i. *)
  let lowest_zero_bit i =
    let rec go i j = if i land 1 = 0 then j else go (i lsr 1) (j + 1) in
    go i 0
  in
  for i = 0 to skip + n - 1 do
    if i >= skip then begin
      let row = out.(i - skip) in
      for k = 0 to dim - 1 do
        row.(k) <- float_of_int x.(k) *. scale
      done
    end;
    let c = lowest_zero_bit i in
    if c < bits then
      for k = 0 to dim - 1 do
        x.(k) <- x.(k) lxor v.(k).(c)
      done
  done;
  out

let sample space ~n =
  let dim = Space.dimension space in
  if dim > max_dimension then
    invalid_arg "Sobol.sample: space has too many dimensions";
  points ~dim ~n ()
