module Rng = Archpred_stats.Rng
module Sampling = Archpred_stats.Sampling

let sample rng space ~n =
  if n < 2 then invalid_arg "Lhs.sample: n < 2";
  let d = Space.dimension space in
  let points = Array.init n (fun _ -> Array.make d 0.) in
  for k = 0 to d - 1 do
    let param = Space.parameter space k in
    let levels = Parameter.level_coordinates param ~sample_size:n in
    let l = Array.length levels in
    (* Assign each point a level index so all levels are covered as evenly
       as possible (stratum i covers level (i mod l)), then shuffle the
       assignment across points: this is the paper's "points corresponding
       to all settings of a parameter ... randomly combined". *)
    let assignment = Array.init n (fun i -> i mod l) in
    Sampling.shuffle_in_place rng assignment;
    for i = 0 to n - 1 do
      points.(i).(k) <- levels.(assignment.(i))
    done
  done;
  points

let sample_continuous ?(centered = false) rng space ~n =
  if n < 1 then invalid_arg "Lhs.sample_continuous: n < 1";
  let d = Space.dimension space in
  let points = Array.init n (fun _ -> Array.make d 0.) in
  let nf = float_of_int n in
  for k = 0 to d - 1 do
    let perm = Sampling.permutation rng n in
    for i = 0 to n - 1 do
      let offset = if centered then 0.5 else Rng.unit_float rng in
      points.(i).(k) <- (float_of_int perm.(i) +. offset) /. nf
    done
  done;
  points

let is_latin ~dim ~n points =
  Array.length points = n
  &&
  let ok = ref true in
  for k = 0 to dim - 1 do
    let seen = Array.make n false in
    Array.iter
      (fun p ->
        let stratum =
          min (n - 1) (int_of_float (p.(k) *. float_of_int n))
        in
        if seen.(stratum) then ok := false else seen.(stratum) <- true)
      points;
    if not (Array.for_all (fun b -> b) seen) then ok := false
  done;
  !ok
