let check points =
  if Array.length points = 0 then invalid_arg "Discrepancy: empty sample";
  Array.length points.(0)

(* Warnock's closed form:
   D2*^2 = 3^-d
         - (2^(1-d) / n)   sum_i prod_k (1 - x_ik^2)
         + (1 / n^2)       sum_{i,j} prod_k (1 - max(x_ik, x_jk)) *)
let l2_star points =
  let d = check points in
  let n = Array.length points in
  let nf = float_of_int n in
  let term1 = 3. ** float_of_int (-d) in
  let sum2 = ref 0. in
  Array.iter
    (fun x ->
      let prod = ref 1. in
      for k = 0 to d - 1 do
        prod := !prod *. (1. -. (x.(k) *. x.(k)))
      done;
      sum2 := !sum2 +. !prod)
    points;
  let term2 = 2. ** float_of_int (1 - d) /. nf *. !sum2 in
  let sum3 = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let prod = ref 1. in
      for k = 0 to d - 1 do
        prod := !prod *. (1. -. Float.max points.(i).(k) points.(j).(k))
      done;
      sum3 := !sum3 +. !prod
    done
  done;
  let term3 = !sum3 /. (nf *. nf) in
  sqrt (Float.max 0. (term1 -. term2 +. term3))

(* Hickernell's centered L2 discrepancy:
   CD^2 = (13/12)^d
        - (2/n)   sum_i prod_k (1 + |z_ik|/2 - z_ik^2/2)
        + (1/n^2) sum_{i,j} prod_k (1 + |z_ik|/2 + |z_jk|/2 - |x_ik - x_jk|/2)
   where z_ik = x_ik - 1/2. *)
let centered_l2 points =
  let d = check points in
  let n = Array.length points in
  let nf = float_of_int n in
  let term1 = (13. /. 12.) ** float_of_int d in
  let sum2 = ref 0. in
  Array.iter
    (fun x ->
      let prod = ref 1. in
      for k = 0 to d - 1 do
        let z = abs_float (x.(k) -. 0.5) in
        prod := !prod *. (1. +. (0.5 *. z) -. (0.5 *. z *. z))
      done;
      sum2 := !sum2 +. !prod)
    points;
  let term2 = 2. /. nf *. !sum2 in
  let sum3 = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let prod = ref 1. in
      for k = 0 to d - 1 do
        let zi = abs_float (points.(i).(k) -. 0.5) in
        let zj = abs_float (points.(j).(k) -. 0.5) in
        let dij = abs_float (points.(i).(k) -. points.(j).(k)) in
        prod := !prod *. (1. +. (0.5 *. zi) +. (0.5 *. zj) -. (0.5 *. dij))
      done;
      sum3 := !sum3 +. !prod
    done
  done;
  let term3 = !sum3 /. (nf *. nf) in
  sqrt (Float.max 0. (term1 -. term2 +. term3))

type kind = Star | Centered

let compute = function Star -> l2_star | Centered -> centered_l2
