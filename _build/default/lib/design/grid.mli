(** Factorial grids and axis sweeps.

    Response-surface figures in the paper (Figure 1, Figure 6) sweep one or
    two parameters over a grid while holding the others fixed; these
    helpers build the corresponding point sets. *)

val full_factorial : Space.t -> levels_per_dim:int -> Space.point array
(** All combinations of [levels_per_dim] equally spaced settings per
    dimension.  The size grows as [levels_per_dim ^ dimension]; intended
    for small spaces or coarse grids. Requires [levels_per_dim >= 2]. *)

val sweep1 :
  Space.t -> base:Space.point -> dim:int -> steps:int -> Space.point array
(** Vary dimension [dim] over [steps] equally spaced settings in [0, 1],
    all other coordinates fixed at [base]. *)

val sweep2 :
  Space.t ->
  base:Space.point ->
  dim1:int ->
  steps1:int ->
  dim2:int ->
  steps2:int ->
  Space.point array array
(** Two-dimensional sweep: row [i] varies [dim2] with [dim1] fixed at its
    [i]-th setting — the layout of a response-surface plot. *)
