(* First rows of the cyclic Plackett-Burman constructions (Plackett &
   Burman 1946). The full design cycles the generator and appends an
   all-minus run. *)
let generator = function
  | 8 -> Some [| 1; 1; 1; -1; 1; -1; -1 |]
  | 12 -> Some [| 1; 1; -1; 1; 1; 1; -1; -1; -1; 1; -1 |]
  | 16 -> Some [| 1; 1; 1; 1; -1; 1; -1; 1; 1; -1; -1; 1; -1; -1; -1 |]
  | 20 ->
      Some
        [| 1; 1; -1; -1; 1; 1; 1; 1; -1; 1; -1; 1; -1; -1; -1; -1; 1; 1; -1 |]
  | 24 ->
      Some
        [|
          1; 1; 1; 1; 1; -1; 1; -1; 1; 1; -1; -1; 1; 1; -1; -1; 1; -1; 1; -1;
          -1; -1; -1;
        |]
  | _ -> None

let design ~runs =
  match generator runs with
  | None ->
      invalid_arg
        "Plackett_burman.design: supported run counts are 8, 12, 16, 20, 24"
  | Some first ->
      let k = runs - 1 in
      Array.init runs (fun i ->
          if i = runs - 1 then Array.make k (-1)
          else Array.init k (fun j -> first.((j + k - i) mod k)))

let foldover d =
  let flipped = Array.map (Array.map (fun v -> -v)) d in
  Array.append d flipped

let points space d =
  let dim = Space.dimension space in
  Array.iter
    (fun row ->
      if Array.length row < dim then
        invalid_arg "Plackett_burman.points: design too narrow for space")
    d;
  Array.map
    (fun row -> Array.init dim (fun k -> if row.(k) > 0 then 1. else 0.))
    d

let main_effects d responses dim =
  if Array.length d <> Array.length responses then
    invalid_arg "Plackett_burman.main_effects: length mismatch";
  Array.init dim (fun k ->
      let hi_sum = ref 0. and hi_n = ref 0 in
      let lo_sum = ref 0. and lo_n = ref 0 in
      Array.iteri
        (fun i row ->
          if row.(k) > 0 then begin
            hi_sum := !hi_sum +. responses.(i);
            incr hi_n
          end
          else begin
            lo_sum := !lo_sum +. responses.(i);
            incr lo_n
          end)
        d;
      (!hi_sum /. float_of_int (max 1 !hi_n))
      -. (!lo_sum /. float_of_int (max 1 !lo_n)))
