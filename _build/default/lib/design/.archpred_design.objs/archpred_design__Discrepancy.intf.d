lib/design/discrepancy.mli: Space
