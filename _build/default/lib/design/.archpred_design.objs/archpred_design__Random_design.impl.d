lib/design/random_design.ml: Archpred_stats Array Space
