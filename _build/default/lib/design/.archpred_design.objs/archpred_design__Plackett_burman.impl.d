lib/design/plackett_burman.ml: Array Space
