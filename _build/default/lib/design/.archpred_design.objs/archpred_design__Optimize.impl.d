lib/design/optimize.ml: Discrepancy Lhs List Space
