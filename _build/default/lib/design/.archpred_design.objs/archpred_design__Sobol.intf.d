lib/design/sobol.mli: Space
