lib/design/transform.mli:
