lib/design/random_design.mli: Archpred_stats Space
