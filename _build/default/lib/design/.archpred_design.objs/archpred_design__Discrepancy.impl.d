lib/design/discrepancy.ml: Array Float
