lib/design/parameter.ml: Array Float Format Transform
