lib/design/optimize.mli: Archpred_stats Discrepancy Space
