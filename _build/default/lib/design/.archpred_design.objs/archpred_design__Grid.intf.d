lib/design/grid.mli: Space
