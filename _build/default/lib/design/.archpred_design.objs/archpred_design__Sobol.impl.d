lib/design/sobol.ml: Array Space
