lib/design/space.ml: Array Format Hashtbl Parameter
