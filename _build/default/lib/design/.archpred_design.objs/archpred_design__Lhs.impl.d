lib/design/lhs.ml: Archpred_stats Array Parameter Space
