lib/design/space.mli: Format Parameter
