lib/design/plackett_burman.mli: Space
