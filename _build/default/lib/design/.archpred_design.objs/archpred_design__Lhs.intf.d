lib/design/lhs.mli: Archpred_stats Space
