lib/design/transform.ml:
