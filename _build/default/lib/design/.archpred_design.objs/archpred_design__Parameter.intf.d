lib/design/parameter.mli: Format Transform
