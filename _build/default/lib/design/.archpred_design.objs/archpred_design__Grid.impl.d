lib/design/grid.ml: Array Space
