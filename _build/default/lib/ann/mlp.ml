module Rng = Archpred_stats.Rng

type config = {
  hidden : int;
  epochs : int;
  learning_rate : float;
  momentum : float;
  weight_decay : float;
  seed : int;
}

let default_config =
  {
    hidden = 16;
    epochs = 2000;
    learning_rate = 0.02;
    momentum = 0.9;
    weight_decay = 1e-4;
    seed = 1;
  }

type t = {
  dim : int;
  (* hidden layer: w1.(h).(k) input weights, b1.(h) biases *)
  w1 : float array array;
  b1 : float array;
  (* output layer *)
  w2 : float array;
  b2 : float;
  (* target standardisation *)
  y_mean : float;
  y_std : float;
  rmse : float;
}

let forward_hidden t x h =
  let acc = ref t.b1.(h) in
  for k = 0 to t.dim - 1 do
    acc := !acc +. (t.w1.(h).(k) *. x.(k))
  done;
  tanh !acc

let predict_std t x =
  let acc = ref t.b2 in
  for h = 0 to Array.length t.w2 - 1 do
    acc := !acc +. (t.w2.(h) *. forward_hidden t x h)
  done;
  !acc

let predict t x =
  if Array.length x <> t.dim then invalid_arg "Mlp.predict: arity mismatch";
  (predict_std t x *. t.y_std) +. t.y_mean

let train ?(config = default_config) ~points ~responses () =
  let p = Array.length points in
  if p = 0 then invalid_arg "Mlp.train: empty sample";
  if Array.length responses <> p then
    invalid_arg "Mlp.train: points/responses mismatch";
  let dim = Array.length points.(0) in
  let hidden = config.hidden in
  let rng = Rng.create config.seed in
  (* standardise targets so the learning rate is scale-free *)
  let y_mean = Archpred_stats.Descriptive.mean responses in
  let y_std =
    let s = Archpred_stats.Descriptive.std responses in
    if s < 1e-12 then 1. else s
  in
  let y = Array.map (fun v -> (v -. y_mean) /. y_std) responses in
  (* Xavier-style initialisation *)
  let init scale = (Rng.unit_float rng -. 0.5) *. 2. *. scale in
  let w1 =
    Array.init hidden (fun _ ->
        Array.init dim (fun _ -> init (1. /. sqrt (float_of_int dim))))
  in
  let b1 = Array.init hidden (fun _ -> init 0.1) in
  let w2 = Array.init hidden (fun _ -> init (1. /. sqrt (float_of_int hidden))) in
  let b2 = ref (init 0.1) in
  (* momentum buffers *)
  let vw1 = Array.init hidden (fun _ -> Array.make dim 0.) in
  let vb1 = Array.make hidden 0. in
  let vw2 = Array.make hidden 0. in
  let vb2 = ref 0. in
  (* gradient accumulators *)
  let gw1 = Array.init hidden (fun _ -> Array.make dim 0.) in
  let gb1 = Array.make hidden 0. in
  let gw2 = Array.make hidden 0. in
  let gb2 = ref 0. in
  let acts = Array.make hidden 0. in
  let model () =
    {
      dim;
      w1;
      b1;
      w2;
      b2 = !b2;
      y_mean;
      y_std;
      rmse = 0.;
    }
  in
  let pf = float_of_int p in
  for _ = 1 to config.epochs do
    (* zero gradients *)
    for h = 0 to hidden - 1 do
      Array.fill gw1.(h) 0 dim 0.;
      gb1.(h) <- 0.;
      gw2.(h) <- 0.
    done;
    gb2 := 0.;
    (* full-batch forward/backward *)
    for i = 0 to p - 1 do
      let x = points.(i) in
      let m = model () in
      for h = 0 to hidden - 1 do
        acts.(h) <- forward_hidden m x h
      done;
      let out = ref !b2 in
      for h = 0 to hidden - 1 do
        out := !out +. (w2.(h) *. acts.(h))
      done;
      let err = !out -. y.(i) in
      gb2 := !gb2 +. err;
      for h = 0 to hidden - 1 do
        gw2.(h) <- gw2.(h) +. (err *. acts.(h));
        let dh = err *. w2.(h) *. (1. -. (acts.(h) *. acts.(h))) in
        gb1.(h) <- gb1.(h) +. dh;
        for k = 0 to dim - 1 do
          gw1.(h).(k) <- gw1.(h).(k) +. (dh *. x.(k))
        done
      done
    done;
    (* momentum update with weight decay *)
    let step v g w =
      let v' = (config.momentum *. v) -. (config.learning_rate *. ((g /. pf) +. (config.weight_decay *. w))) in
      (v', w +. v')
    in
    for h = 0 to hidden - 1 do
      for k = 0 to dim - 1 do
        let v', w' = step vw1.(h).(k) gw1.(h).(k) w1.(h).(k) in
        vw1.(h).(k) <- v';
        w1.(h).(k) <- w'
      done;
      let v', w' = step vb1.(h) gb1.(h) b1.(h) in
      vb1.(h) <- v';
      b1.(h) <- w';
      let v', w' = step vw2.(h) gw2.(h) w2.(h) in
      vw2.(h) <- v';
      w2.(h) <- w'
    done;
    let v', w' = step !vb2 !gb2 !b2 in
    vb2 := v';
    b2 := w'
  done;
  let final = model () in
  let rmse =
    let acc = ref 0. in
    for i = 0 to p - 1 do
      let d = (predict_std final points.(i) -. y.(i)) *. y_std in
      acc := !acc +. (d *. d)
    done;
    sqrt (!acc /. pf)
  in
  { final with rmse }

let training_rmse t = t.rmse
