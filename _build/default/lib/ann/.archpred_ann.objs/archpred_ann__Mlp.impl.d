lib/ann/mlp.ml: Archpred_stats Array
