lib/ann/mlp.mli:
