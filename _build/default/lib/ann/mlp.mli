(** A small multilayer perceptron, after Ipek et al. (ASPLOS 2006).

    Section 5 of the paper cites Ipek et al.'s artificial neural networks
    as the contemporaneous alternative to RBF networks for architectural
    performance prediction; this module provides that baseline so the
    Figure 7 comparison can include it.

    One hidden tanh layer, linear output, trained by full-batch gradient
    descent with momentum on standardised targets.  Everything is
    deterministic given the seed. *)

type config = {
  hidden : int;  (** hidden units (default constructor: 16) *)
  epochs : int;  (** training epochs (default 2000) *)
  learning_rate : float;  (** (default 0.02) *)
  momentum : float;  (** (default 0.9) *)
  weight_decay : float;  (** L2 penalty (default 1e-4) *)
  seed : int;  (** weight-initialisation seed *)
}

val default_config : config

type t

val train :
  ?config:config ->
  points:float array array ->
  responses:float array ->
  unit ->
  t
(** Fit the network on points in the unit cube.  Raises
    [Invalid_argument] on empty or mismatched data. *)

val predict : t -> float array -> float

val training_rmse : t -> float
(** Root-mean-square training error of the final weights, in response
    units. *)
