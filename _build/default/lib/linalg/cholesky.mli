(** Cholesky factorisation of symmetric positive-definite matrices.

    Normal-equation solves [ (H'H + lambda I) w = H'y ] in ridge-regularised
    RBF weight fitting use this factorisation. *)

type t
(** Lower-triangular factor [L] with [A = L L']. *)

exception Not_positive_definite

val decompose : Matrix.t -> t
(** Factorise. Raises [Invalid_argument] if not square, and
    {!Not_positive_definite} if a pivot is non-positive. The input is
    assumed symmetric; only the lower triangle is read. *)

val solve : t -> Vector.t -> Vector.t
(** Solve [A x = b]. *)

val log_det : t -> float
(** Log-determinant of [A] (twice the log-sum of the diagonal of [L]);
    useful for information criteria. *)

val factor : t -> Matrix.t
(** The lower-triangular factor [L]. *)
