(** Dense float vectors.

    Thin, allocation-explicit helpers over [float array]; the model-fitting
    code paths (RBF design matrices, least squares, stepwise regression)
    use these rather than ad-hoc loops. *)

type t = float array

val create : int -> t
(** Zero vector of the given length. *)

val init : int -> (int -> float) -> t
(** Like [Array.init]. *)

val copy : t -> t
val dim : t -> int

val dot : t -> t -> float
(** Inner product. Raises [Invalid_argument] on dimension mismatch. *)

val norm2 : t -> float
(** Euclidean norm. *)

val norm2_sq : t -> float
(** Squared Euclidean norm. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val axpy : float -> t -> t -> unit
(** [axpy a x y] sets [y <- a*x + y] in place. *)

val map2 : (float -> float -> float) -> t -> t -> t
val equal : ?eps:float -> t -> t -> bool

val dist2 : t -> t -> float
(** Euclidean distance. *)

val pp : Format.formatter -> t -> unit
