(** Dense row-major matrices.

    Sized for the problems in this library: design matrices of a few hundred
    rows (sample points) by up to ~100 columns (RBF centers or regression
    terms).  All operations are straightforward O(n^3)-style dense
    algorithms; no blocking or BLAS. *)

type t

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] fills entry [(i, j)] with [f i j]. *)

val identity : int -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t

val of_arrays : float array array -> t
(** Rows from an array of equal-length arrays. *)

val to_arrays : t -> float array array
val row : t -> int -> Vector.t
val col : t -> int -> Vector.t
val set_row : t -> int -> Vector.t -> unit
val set_col : t -> int -> Vector.t -> unit
val transpose : t -> t
val mul : t -> t -> t
val mul_vec : t -> Vector.t -> Vector.t

val tmul : t -> t -> t
(** [tmul a b] is [transpose a * b] without materialising the transpose. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val equal : ?eps:float -> t -> t -> bool

val select_cols : t -> int array -> t
(** [select_cols a idx] keeps the listed columns, in order. The forward
    center-selection algorithm uses this to grow candidate design
    matrices. *)

val frobenius : t -> float
(** Frobenius norm. *)

val pp : Format.formatter -> t -> unit
