(** LU decomposition with partial pivoting.

    Used for general square solves and determinants; the least-squares
    paths prefer {!Qr} or {!Cholesky}. *)

type t
(** A factorisation [P*A = L*U]. *)

exception Singular
(** Raised when a pivot is exactly zero (the matrix is singular to working
    precision). *)

val decompose : Matrix.t -> t
(** Factorise a square matrix. Raises [Invalid_argument] if not square and
    {!Singular} if singular. *)

val solve : t -> Vector.t -> Vector.t
(** Solve [A x = b] using a prior factorisation. *)

val solve_matrix : t -> Matrix.t -> Matrix.t
(** Solve for several right-hand sides at once. *)

val det : t -> float
(** Determinant of the factorised matrix. *)

val inverse : t -> Matrix.t
(** Explicit inverse; prefer [solve] where possible. *)
