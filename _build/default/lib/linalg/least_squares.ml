type fit = {
  coefficients : Vector.t;
  residuals : Vector.t;
  rss : float;
  sigma2 : float;
  regularized : bool;
}

let fallback_lambda = 1e-8

let diagnostics h y w ~regularized =
  let fitted = Matrix.mul_vec h w in
  let residuals = Vector.sub y fitted in
  let rss = Vector.norm2_sq residuals in
  let p = float_of_int (Array.length y) in
  { coefficients = w; residuals; rss; sigma2 = rss /. p; regularized }

let fit h y =
  if Matrix.rows h <> Array.length y then
    invalid_arg "Least_squares.fit: dimension mismatch";
  match Qr.least_squares h y with
  | w -> diagnostics h y w ~regularized:false
  | exception Qr.Rank_deficient ->
      let w = Qr.least_squares_ridge h y ~lambda:fallback_lambda in
      diagnostics h y w ~regularized:true

let fit_ridge h y ~lambda =
  if Matrix.rows h <> Array.length y then
    invalid_arg "Least_squares.fit_ridge: dimension mismatch";
  let w = Qr.least_squares_ridge h y ~lambda in
  diagnostics h y w ~regularized:true

let predict = Matrix.mul_vec
