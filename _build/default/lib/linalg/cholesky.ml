type t = Matrix.t

exception Not_positive_definite

let decompose a =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Cholesky.decompose: not square";
  let l = Matrix.create n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (Matrix.get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (Matrix.get l i k *. Matrix.get l j k)
      done;
      if i = j then begin
        if !acc <= 0. then raise Not_positive_definite;
        Matrix.set l i j (sqrt !acc)
      end
      else Matrix.set l i j (!acc /. Matrix.get l j j)
    done
  done;
  l

let solve l b =
  let n = Matrix.rows l in
  if Array.length b <> n then invalid_arg "Cholesky.solve: bad length";
  let y = Array.copy b in
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      y.(i) <- y.(i) -. (Matrix.get l i j *. y.(j))
    done;
    y.(i) <- y.(i) /. Matrix.get l i i
  done;
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      y.(i) <- y.(i) -. (Matrix.get l j i *. y.(j))
    done;
    y.(i) <- y.(i) /. Matrix.get l i i
  done;
  y

let log_det l =
  let n = Matrix.rows l in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. log (Matrix.get l i i)
  done;
  2. *. !acc

let factor l = Matrix.copy l
