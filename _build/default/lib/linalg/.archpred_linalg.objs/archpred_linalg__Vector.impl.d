lib/linalg/vector.ml: Array Format
