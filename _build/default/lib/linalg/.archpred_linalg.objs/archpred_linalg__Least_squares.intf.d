lib/linalg/least_squares.mli: Matrix Vector
