lib/linalg/lu.ml: Array Matrix
