lib/linalg/least_squares.ml: Array Matrix Qr Vector
