type t = float array

let create n = Array.make n 0.
let init = Array.init
let copy = Array.copy
let dim = Array.length

let check_dims name x y =
  if Array.length x <> Array.length y then
    invalid_arg ("Vector." ^ name ^ ": dimension mismatch")

let dot x y =
  check_dims "dot" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2_sq x = dot x x
let norm2 x = sqrt (norm2_sq x)

let add x y =
  check_dims "add" x y;
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  check_dims "sub" x y;
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let scale a x = Array.map (fun v -> a *. v) x

let axpy a x y =
  check_dims "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let map2 f x y =
  check_dims "map2" x y;
  Array.init (Array.length x) (fun i -> f x.(i) y.(i))

let equal ?(eps = 0.) x y =
  Array.length x = Array.length y
  &&
  let ok = ref true in
  for i = 0 to Array.length x - 1 do
    if abs_float (x.(i) -. y.(i)) > eps then ok := false
  done;
  !ok

let dist2 x y =
  check_dims "dist2" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    let d = x.(i) -. y.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let pp ppf x =
  Format.fprintf ppf "[|";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%g" v)
    x;
  Format.fprintf ppf "|]"
