(** Robust linear least squares with diagnostics.

    Wraps {!Qr} with the fallback policy used throughout model fitting:
    try the plain QR solve, and if the design matrix is rank deficient
    (which happens when two RBF centers coincide or a regression term is
    constant), fall back to a small ridge penalty. *)

type fit = {
  coefficients : Vector.t;
  residuals : Vector.t;  (** [y - H w], per training point *)
  rss : float;  (** residual sum of squares *)
  sigma2 : float;  (** error variance estimate [rss / p] (maximum likelihood),
                       the \hat{sigma}^2 of the paper's AICc formula *)
  regularized : bool;  (** [true] when the ridge fallback was taken *)
}

val fit : Matrix.t -> Vector.t -> fit
(** [fit h y] minimises [||h w - y||^2]. Raises [Invalid_argument] if the
    dimensions disagree or [h] has more columns than rows. *)

val fit_ridge : Matrix.t -> Vector.t -> lambda:float -> fit
(** Ridge fit with explicit penalty. *)

val predict : Matrix.t -> Vector.t -> Vector.t
(** [predict h w] is [h w]. *)
