(** Householder QR factorisation and least-squares solving.

    This is the workhorse for fitting both the RBF-network weights (the
    output layer is linear in the weights, eq. 1 of the paper) and the
    linear baseline models: given a design matrix [H] (p rows, m columns,
    p >= m) and responses [y], find [w] minimising [||H w - y||^2]. *)

type t
(** Factorisation of a p-by-m matrix, p >= m. *)

exception Rank_deficient
(** Raised by [solve] when a diagonal entry of R is (almost) zero. *)

val decompose : Matrix.t -> t
(** Householder QR. Raises [Invalid_argument] if rows < cols. *)

val solve : t -> Vector.t -> Vector.t
(** [solve qr y] is the least-squares solution of [A w = y] for the
    factorised [A]. Raises {!Rank_deficient} if [A] had linearly dependent
    columns. *)

val r : t -> Matrix.t
(** The m-by-m upper-triangular factor. *)

val least_squares : Matrix.t -> Vector.t -> Vector.t
(** [least_squares a y] in one call. *)

val least_squares_ridge : Matrix.t -> Vector.t -> lambda:float -> Vector.t
(** Ridge-regularised least squares via the augmented system
    [\[A; sqrt(lambda) I\] w = \[y; 0\]]; well-defined even for
    rank-deficient [A] when [lambda > 0]. The RBF fitting path falls back
    to this when centers nearly coincide and the plain system becomes
    singular. *)

val residual_sum_squares : Matrix.t -> Vector.t -> Vector.t -> float
(** [residual_sum_squares a w y] is [||A w - y||^2]. *)
