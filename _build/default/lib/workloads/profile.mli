(** Workload profiles: the statistical shape of a benchmark.

    The paper simulates SPEC CPU2000 programs on MinneSPEC inputs; those
    traces are proprietary, so this library generates synthetic traces from
    profiles that capture the properties the nine design parameters
    interact with:

    - the instruction mix (memory/branch/FP intensity → functional-unit,
      LSQ and cache pressure);
    - dependency-distance distribution (instruction-level parallelism →
      ROB/IQ sensitivity);
    - code footprint (L1I-size sensitivity);
    - a three-region data model — a hot region that fits any L1, a warm
      region around L1/L2 scale, a cold region at L2/DRAM scale — with
      per-region streaming fractions (L1D/L2-size sensitivity and DRAM
      behaviour);
    - a pointer-chasing fraction: loads whose address depends on the
      previous load, forming serial miss chains (the *mcf* signature);
    - static-branch behaviour classes: loops, biased branches, and
      hard-to-predict branches (branch-predictor accuracy, pipeline-depth
      sensitivity). *)

type region = {
  bytes : int;  (** region size; addresses fall within it *)
  weight : float;  (** share of memory accesses hitting this region *)
  stride_frac : float;  (** share of the region's accesses that stream
                            sequentially (spatial locality); the rest are
                            Zipf-distributed over the region's lines *)
  zipf_s : float;  (** skew of the non-streaming accesses *)
}

type t = {
  name : string;
  description : string;
  load_frac : float;
  store_frac : float;
  branch_frac : float;
  jump_frac : float;
  imul_frac : float;
  idiv_frac : float;
  fadd_frac : float;
  fmul_frac : float;
  fdiv_frac : float;  (** remaining fraction is single-cycle integer ALU *)
  dep_p : float;  (** geometric parameter of dependency distances; larger
                      means shorter distances and less ILP *)
  dep2_prob : float;  (** probability an instruction has a second source *)
  code_bytes : int;  (** static code footprint *)
  code_zipf_s : float;  (** skew of block popularity: large values
                            concentrate execution on a small hot region,
                            small values spread it across the footprint
                            (more L1I pressure) *)
  hot : region;
  warm : region;
  cold : region;
  chase_frac : float;  (** share of loads that pointer-chase *)
  loop_frac : float;  (** share of static branches that are loop exits *)
  biased_frac : float;  (** share that are strongly biased; the remainder
                            are 50/50 hard branches *)
  loop_mean_iters : int;
  biased_p : float;  (** taken probability of a biased branch *)
}

val validate : t -> (unit, string) result
(** Check that all fractions are in [0,1], the opcode fractions sum to at
    most 1, region weights sum to 1 (within tolerance), and sizes are
    positive. *)

val control_frac : t -> float
(** [branch_frac + jump_frac]. *)

val pp : Format.formatter -> t -> unit
