module Rng = Archpred_stats.Rng
module Dist = Archpred_stats.Distributions
module Trace = Archpred_sim.Trace
module Opcode = Archpred_sim.Opcode

(* Address-space layout: code, then one disjoint base per data region. *)
let code_base = 0x0040_0000
let hot_base = 0x1000_0000
let warm_base = 0x2000_0000
let cold_base = 0x4000_0000

type region_state = {
  region : Profile.region;
  base : int;
  mutable cursor : int;
}

let region_address rng rs =
  let r = rs.region in
  if Rng.unit_float rng < r.stride_frac then begin
    (* Streaming access: advance sequentially, wrapping at the region end. *)
    rs.cursor <- (rs.cursor + 8) mod r.bytes;
    rs.base + rs.cursor
  end
  else begin
    let lines = max 1 (r.bytes / 64) in
    let line = Dist.zipf rng ~n:lines ~s:r.zipf_s in
    rs.base + (line * 64) + (8 * Rng.int rng 8)
  end

(* Static terminator behaviour classes. *)
type branch_class = Loop | Biased of float | Hard

type block = {
  start_pc : int;
  body_len : int;  (* instructions before the terminator *)
  is_jump : bool;
  cls : branch_class;
  mutable loop_left : int;
}

let generate ?(seed = 42) (p : Profile.t) ~length =
  (match Profile.validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Generator.generate: " ^ msg));
  if length <= 0 then invalid_arg "Generator.generate: length <= 0";
  let rng = Rng.create (seed lxor Hashtbl.hash p.name) in
  let cf = Float.max 0.01 (Profile.control_frac p) in
  let mean_block = 1. /. cf in

  (* --- static skeleton --- *)
  let target_insts = max 8 (p.code_bytes / 4) in
  let draw_loop_iters () =
    1 + Dist.geometric rng ~p:(1. /. float_of_int (max 1 p.loop_mean_iters))
  in
  let blocks =
    let acc = ref [] and insts = ref 0 in
    while !insts < target_insts do
      let body_len =
        1 + Dist.geometric rng ~p:(Float.min 1. (1. /. Float.max 1. (mean_block -. 1.)))
      in
      let is_jump =
        Rng.unit_float rng < p.jump_frac /. Float.max 1e-9 cf
      in
      let cls =
        let u = Rng.unit_float rng in
        if u < p.loop_frac then Loop
        else if u < p.loop_frac +. p.biased_frac then
          Biased (if Rng.bool rng then p.biased_p else 1. -. p.biased_p)
        else Hard
      in
      let b =
        {
          start_pc = code_base + (4 * !insts);
          body_len;
          is_jump;
          cls;
          loop_left = draw_loop_iters ();
        }
      in
      insts := !insts + body_len + 1;
      acc := b :: !acc
    done;
    Array.of_list (List.rev !acc)
  in
  let nblocks = Array.length blocks in

  (* --- dynamic state --- *)
  let hot = { region = p.hot; base = hot_base; cursor = 0 } in
  let warm = { region = p.warm; base = warm_base; cursor = 0 } in
  let cold = { region = p.cold; base = cold_base; cursor = 0 } in
  let region_weights = [| p.hot.weight; p.warm.weight; p.cold.weight |] in
  let pick_region () =
    match Dist.categorical rng region_weights with
    | 0 -> hot
    | 1 -> warm
    | _ -> cold
  in
  (* Zipf-popular successors concentrate execution on hot blocks; the
     profile's skew controls how much of the footprint stays warm. *)
  let successor () = Dist.zipf rng ~n:nblocks ~s:p.code_zipf_s in
  let body_mix =
    let scale = 1. -. cf in
    let ialu =
      Float.max 0.
        (scale
        -. (p.load_frac +. p.store_frac +. p.imul_frac +. p.idiv_frac
          +. p.fadd_frac +. p.fmul_frac +. p.fdiv_frac))
    in
    Dist.alias_of_weighted
      [|
        (Opcode.Ialu, ialu);
        (Opcode.Imul, p.imul_frac);
        (Opcode.Idiv, p.idiv_frac);
        (Opcode.Fadd, p.fadd_frac);
        (Opcode.Fmul, p.fmul_frac);
        (Opcode.Fdiv, p.fdiv_frac);
        (Opcode.Load, p.load_frac);
        (Opcode.Store, p.store_frac);
      |]
  in
  let builder = Trace.Builder.create ~capacity:length () in
  let last_chase = ref (-1) in
  let geom_dep i =
    let d = 1 + Dist.geometric rng ~p:p.dep_p in
    if d > i then 0 else d
  in
  let emit_body i pc =
    let op = Dist.alias_draw rng body_mix in
    match op with
    | Opcode.Load ->
        if Rng.unit_float rng < p.chase_frac then begin
          (* Pointer chase: address produced by the previous chase load,
             landing somewhere unpredictable in the cold region. *)
          let dep1 = if !last_chase >= 0 then i - !last_chase else geom_dep i in
          let dep1 = if dep1 > i then 0 else dep1 in
          last_chase := i;
          let lines = max 1 (p.cold.bytes / 64) in
          let addr = cold_base + (64 * Dist.zipf rng ~n:lines ~s:0.5) in
          Trace.Builder.add builder
            { op; dep1; dep2 = 0; addr; pc; taken = false; target = 0 }
        end
        else
          Trace.Builder.add builder
            {
              op;
              dep1 = geom_dep i;
              dep2 = 0;
              addr = region_address rng (pick_region ());
              pc;
              taken = false;
              target = 0;
            }
    | Opcode.Store ->
        Trace.Builder.add builder
          {
            op;
            dep1 = geom_dep i;
            dep2 = geom_dep i;
            addr = region_address rng (pick_region ());
            pc;
            taken = false;
            target = 0;
          }
    | Opcode.Ialu | Opcode.Imul | Opcode.Idiv | Opcode.Fadd | Opcode.Fmul
    | Opcode.Fdiv | Opcode.Branch | Opcode.Jump | Opcode.Nop ->
        let dep2 = if Rng.unit_float rng < p.dep2_prob then geom_dep i else 0 in
        Trace.Builder.add builder
          { op; dep1 = geom_dep i; dep2; addr = 0; pc; taken = false; target = 0 }
  in

  let cur = ref 0 (* block index *) in
  let pos = ref 0 (* instruction offset within block *) in
  while Trace.Builder.length builder < length do
    let b = blocks.(!cur) in
    let i = Trace.Builder.length builder in
    let pc = b.start_pc + (4 * !pos) in
    if !pos < b.body_len then begin
      emit_body i pc;
      incr pos
    end
    else begin
      (* Terminator. *)
      let next_seq = (!cur + 1) mod nblocks in
      let taken, next =
        if b.is_jump then (true, successor ())
        else
          match b.cls with
          | Loop ->
              if b.loop_left > 0 then begin
                b.loop_left <- b.loop_left - 1;
                (true, !cur)
              end
              else begin
                b.loop_left <- draw_loop_iters ();
                (false, next_seq)
              end
          | Biased bias ->
              if Rng.unit_float rng < bias then (true, successor ())
              else (false, next_seq)
          | Hard ->
              if Rng.bool rng then (true, successor ()) else (false, next_seq)
      in
      let op = if b.is_jump then Opcode.Jump else Opcode.Branch in
      let dep1 = if b.is_jump then 0 else geom_dep i in
      Trace.Builder.add builder
        {
          op;
          dep1;
          dep2 = 0;
          addr = 0;
          pc;
          taken;
          target = blocks.(next).start_pc;
        };
      cur := next;
      pos := 0
    end
  done;
  let trace = Trace.Builder.finish builder in
  (match Trace.validate trace with
  | Ok () -> ()
  | Error msg -> failwith ("Generator.generate: invalid trace: " ^ msg));
  trace
