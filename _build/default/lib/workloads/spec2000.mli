(** Stand-in profiles for the eight SPEC CPU2000 benchmarks of the paper.

    Table 3 of the paper evaluates six integer benchmarks (mcf, crafty,
    parser, perlbmk, vortex, twolf) and two floating-point ones (equake,
    ammp).  Each profile below is tuned so the synthetic trace stresses the
    same microarchitectural structures that characterise the real program
    (see DESIGN.md for the substitution argument):

    - [mcf] — pointer-chasing, huge data working set; dominated by L2/DRAM
      behaviour (the paper's tree splits first on L2 latency and size);
    - [crafty] — branchy integer code with a large code footprint and small
      data set;
    - [parser] — mixed integer workload, moderate memory pressure,
      moderately predictable branches;
    - [perlbmk] — large code footprint, many indirect jumps, stressing the
      L1I and BTB;
    - [vortex] — large code and data footprints, store-heavy; the paper's
      splits are on L1D latency, L1I size and IQ size;
    - [twolf] — pointer-heavy placement/routing loops in a medium working
      set with hard branches;
    - [equake] — FP streaming over a large mesh: high spatial locality,
      very predictable branches;
    - [ammp] — FP with a big, less regular working set and long FP
      dependency chains. *)

val mcf : Profile.t
val crafty : Profile.t
val parser : Profile.t
val perlbmk : Profile.t
val vortex : Profile.t
val twolf : Profile.t
val equake : Profile.t
val ammp : Profile.t

val all : Profile.t list
(** The eight profiles, in the paper's Table 3 order. *)

val integer : Profile.t list
val floating_point : Profile.t list

val find : string -> Profile.t option
(** Look up by name (e.g. ["mcf"], ["181.mcf"]). *)
