(** Profile extraction: statistical simulation support.

    Statistical simulation (Oskin et al., Eeckhout et al. — section 5 of
    the paper) profiles a program's execution, then drives simulation with
    a short synthetic trace regenerated from the profile.  This module is
    the profiling half on our substrate: it measures a {!Profile.t} from
    any trace, so {!Generator.generate} can act as the regeneration half.
    The [stat_sim] experiment quantifies how well a regenerated clone
    tracks its original across the design space — the accuracy question the
    paper raises about the technique.

    Estimators (all single-pass or two-pass, documented per field):
    - instruction mix: direct counts;
    - dependency geometry: method-of-moments fit of the geometric
      parameter from the mean dependency distance;
    - code footprint: distinct instruction lines touched;
    - data regions: accesses are clustered by 16MB address windows into at
      most three regions ordered by footprint; per region, the streaming
      fraction is the share of accesses at +8 bytes from the region's
      previous access, and the Zipf exponent is fitted from the access
      share of the most popular tenth of the region's lines;
    - branch behaviour: per static branch, the taken rate classifies it as
      biased or hard; backward-taken branches with long taken runs count
      as loops, with the mean run length as the iteration count. *)

val profile_of_trace : ?name:string -> Archpred_sim.Trace.t -> Profile.t
(** Measure a profile from a trace.  The result always satisfies
    [Profile.validate].  Raises [Invalid_argument] on an empty trace. *)
