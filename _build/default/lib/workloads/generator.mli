(** Synthetic trace generation from a workload profile.

    The generator builds a static program skeleton — basic blocks laid out
    over the profile's code footprint, each ending in a branch or jump with
    a fixed behaviour class — and then walks it, emitting dynamic
    instructions whose operands, dependencies and memory addresses follow
    the profile's distributions.  Control flow between blocks is
    Zipf-distributed, so a hot inner code region emerges naturally and the
    L1I behaves as it would on real code of that footprint.

    Generation is deterministic in (profile, seed, length). *)

val generate :
  ?seed:int -> Profile.t -> length:int -> Archpred_sim.Trace.t
(** [generate profile ~length] produces a validated trace of exactly
    [length] instructions. Raises [Invalid_argument] if the profile fails
    {!Profile.validate} or [length <= 0]. *)
