(** Additional SPEC CPU2000 stand-in profiles, beyond the paper's eight.

    The paper's Table 3 evaluates six integer and two floating-point
    programs; these four extras round the suite out for users of the
    library (they follow the same construction and calibration approach
    as {!Spec2000} but are *not* part of the reproduction):

    - [gzip] — compression: tight loops over a small working set, very
      predictable branches;
    - [gcc] — compilation: the largest code footprint in the suite,
      stressing the L1I and BTB;
    - [art] — FP image recognition: a cache-thrashing working set slightly
      beyond typical L2 sizes (notorious for its memory behaviour);
    - [swim] — FP shallow-water modelling: long streaming sweeps over
      large arrays, bandwidth-bound. *)

val gzip : Profile.t
val gcc : Profile.t
val art : Profile.t
val swim : Profile.t

val all : Profile.t list
(** The four extras. *)

val everything : Profile.t list
(** {!Spec2000.all} followed by the four extras. *)

val find : string -> Profile.t option
(** Look up across {!everything}. *)
