let kb n = n * 1024
let mb n = n * 1024 * 1024

let region ~bytes ~weight ~stride_frac ~zipf_s : Profile.region =
  { bytes; weight; stride_frac; zipf_s }

let gzip : Profile.t =
  {
    name = "164.gzip";
    description = "LZ77 compression; tight loops, small working set";
    load_frac = 0.24;
    store_frac = 0.09;
    branch_frac = 0.15;
    jump_frac = 0.01;
    imul_frac = 0.005;
    idiv_frac = 0.;
    fadd_frac = 0.;
    fmul_frac = 0.;
    fdiv_frac = 0.;
    dep_p = 0.45;
    dep2_prob = 0.5;
    code_bytes = kb 8;
    code_zipf_s = 1.3;
    hot = region ~bytes:(kb 8) ~weight:0.60 ~stride_frac:0.35 ~zipf_s:1.2;
    warm = region ~bytes:(kb 192) ~weight:0.36 ~stride_frac:0.4 ~zipf_s:1.1;
    cold = region ~bytes:(mb 1) ~weight:0.04 ~stride_frac:0.3 ~zipf_s:0.9;
    chase_frac = 0.02;
    loop_frac = 0.40;
    biased_frac = 0.50;
    loop_mean_iters = 14;
    biased_p = 0.94;
  }

let gcc : Profile.t =
  {
    name = "176.gcc";
    description = "compiler; the suite's largest code footprint";
    load_frac = 0.26;
    store_frac = 0.12;
    branch_frac = 0.14;
    jump_frac = 0.04;
    imul_frac = 0.005;
    idiv_frac = 0.001;
    fadd_frac = 0.;
    fmul_frac = 0.;
    fdiv_frac = 0.;
    dep_p = 0.42;
    dep2_prob = 0.5;
    code_bytes = kb 120;
    code_zipf_s = 0.6;
    hot = region ~bytes:(kb 8) ~weight:0.50 ~stride_frac:0.2 ~zipf_s:1.2;
    warm = region ~bytes:(kb 384) ~weight:0.42 ~stride_frac:0.15 ~zipf_s:1.1;
    cold = region ~bytes:(mb 3) ~weight:0.08 ~stride_frac:0.1 ~zipf_s:0.75;
    chase_frac = 0.06;
    loop_frac = 0.20;
    biased_frac = 0.62;
    loop_mean_iters = 5;
    biased_p = 0.91;
  }

let art : Profile.t =
  {
    name = "179.art";
    description = "FP neural-net image recognition; cache-thrashing arrays";
    load_frac = 0.32;
    store_frac = 0.06;
    branch_frac = 0.07;
    jump_frac = 0.01;
    imul_frac = 0.005;
    idiv_frac = 0.;
    fadd_frac = 0.18;
    fmul_frac = 0.15;
    fdiv_frac = 0.002;
    dep_p = 0.32;
    dep2_prob = 0.6;
    code_bytes = kb 6;
    code_zipf_s = 1.3;
    hot = region ~bytes:(kb 6) ~weight:0.25 ~stride_frac:0.3 ~zipf_s:1.1;
    warm = region ~bytes:(mb 3) ~weight:0.55 ~stride_frac:0.75 ~zipf_s:0.7;
    cold = region ~bytes:(mb 10) ~weight:0.20 ~stride_frac:0.7 ~zipf_s:0.55;
    chase_frac = 0.01;
    loop_frac = 0.55;
    biased_frac = 0.40;
    loop_mean_iters = 40;
    biased_p = 0.96;
  }

let swim : Profile.t =
  {
    name = "171.swim";
    description = "FP shallow-water model; long streaming array sweeps";
    load_frac = 0.31;
    store_frac = 0.10;
    branch_frac = 0.04;
    jump_frac = 0.005;
    imul_frac = 0.005;
    idiv_frac = 0.;
    fadd_frac = 0.20;
    fmul_frac = 0.14;
    fdiv_frac = 0.001;
    dep_p = 0.28;
    dep2_prob = 0.65;
    code_bytes = kb 6;
    code_zipf_s = 1.4;
    hot = region ~bytes:(kb 8) ~weight:0.20 ~stride_frac:0.5 ~zipf_s:1.0;
    warm = region ~bytes:(mb 2) ~weight:0.45 ~stride_frac:0.85 ~zipf_s:0.7;
    cold = region ~bytes:(mb 12) ~weight:0.35 ~stride_frac:0.9 ~zipf_s:0.5;
    chase_frac = 0.005;
    loop_frac = 0.65;
    biased_frac = 0.32;
    loop_mean_iters = 48;
    biased_p = 0.97;
  }

let all = [ gzip; gcc; art; swim ]
let everything = Spec2000.all @ all

let find name =
  let matches (p : Profile.t) =
    String.equal p.name name
    ||
    match String.index_opt p.name '.' with
    | Some i ->
        String.equal
          (String.sub p.name (i + 1) (String.length p.name - i - 1))
          name
    | None -> false
  in
  List.find_opt matches everything
