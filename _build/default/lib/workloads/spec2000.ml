let kb n = n * 1024
let mb n = n * 1024 * 1024

let region ~bytes ~weight ~stride_frac ~zipf_s : Profile.region =
  { bytes; weight; stride_frac; zipf_s }

let mcf : Profile.t =
  {
    name = "181.mcf";
    description = "network simplex; pointer chasing over a huge sparse graph";
    load_frac = 0.30;
    store_frac = 0.08;
    branch_frac = 0.17;
    jump_frac = 0.02;
    imul_frac = 0.01;
    idiv_frac = 0.001;
    fadd_frac = 0.;
    fmul_frac = 0.;
    fdiv_frac = 0.;
    dep_p = 0.40;
    dep2_prob = 0.45;
    code_bytes = kb 6;
    code_zipf_s = 1.2;
    hot = region ~bytes:(kb 4) ~weight:0.50 ~stride_frac:0.2 ~zipf_s:1.3;
    warm = region ~bytes:(kb 256) ~weight:0.30 ~stride_frac:0.15 ~zipf_s:1.2;
    cold = region ~bytes:(mb 12) ~weight:0.20 ~stride_frac:0.1 ~zipf_s:0.55;
    chase_frac = 0.06;
    loop_frac = 0.32;
    biased_frac = 0.58;
    loop_mean_iters = 12;
    biased_p = 0.93;
  }

let crafty : Profile.t =
  {
    name = "186.crafty";
    description = "chess search; branchy integer code, bit-board arithmetic";
    load_frac = 0.28;
    store_frac = 0.07;
    branch_frac = 0.12;
    jump_frac = 0.02;
    imul_frac = 0.02;
    idiv_frac = 0.002;
    fadd_frac = 0.;
    fmul_frac = 0.;
    fdiv_frac = 0.;
    dep_p = 0.35;
    dep2_prob = 0.55;
    code_bytes = kb 48;
    code_zipf_s = 0.9;
    hot = region ~bytes:(kb 6) ~weight:0.60 ~stride_frac:0.2 ~zipf_s:1.3;
    warm = region ~bytes:(kb 96) ~weight:0.36 ~stride_frac:0.15 ~zipf_s:1.2;
    cold = region ~bytes:(mb 1) ~weight:0.04 ~stride_frac:0.1 ~zipf_s:0.8;
    chase_frac = 0.02;
    loop_frac = 0.28;
    biased_frac = 0.60;
    loop_mean_iters = 8;
    biased_p = 0.93;
  }

let parser : Profile.t =
  {
    name = "197.parser";
    description = "link grammar parser; dictionary lookups, recursion";
    load_frac = 0.26;
    store_frac = 0.09;
    branch_frac = 0.14;
    jump_frac = 0.02;
    imul_frac = 0.01;
    idiv_frac = 0.001;
    fadd_frac = 0.;
    fmul_frac = 0.;
    fdiv_frac = 0.;
    dep_p = 0.40;
    dep2_prob = 0.5;
    code_bytes = kb 24;
    code_zipf_s = 1.05;
    hot = region ~bytes:(kb 6) ~weight:0.55 ~stride_frac:0.15 ~zipf_s:1.3;
    warm = region ~bytes:(kb 192) ~weight:0.37 ~stride_frac:0.15 ~zipf_s:1.15;
    cold = region ~bytes:(mb 4) ~weight:0.08 ~stride_frac:0.1 ~zipf_s:0.7;
    chase_frac = 0.04;
    loop_frac = 0.28;
    biased_frac = 0.60;
    loop_mean_iters = 6;
    biased_p = 0.92;
  }

let perlbmk : Profile.t =
  {
    name = "253.perlbmk";
    description = "perl interpreter; large code, indirect dispatch";
    load_frac = 0.27;
    store_frac = 0.11;
    branch_frac = 0.12;
    jump_frac = 0.05;
    imul_frac = 0.01;
    idiv_frac = 0.001;
    fadd_frac = 0.;
    fmul_frac = 0.;
    fdiv_frac = 0.;
    dep_p = 0.42;
    dep2_prob = 0.5;
    code_bytes = kb 56;
    code_zipf_s = 0.8;
    hot = region ~bytes:(kb 8) ~weight:0.58 ~stride_frac:0.2 ~zipf_s:1.3;
    warm = region ~bytes:(kb 256) ~weight:0.36 ~stride_frac:0.15 ~zipf_s:1.2;
    cold = region ~bytes:(mb 2) ~weight:0.06 ~stride_frac:0.1 ~zipf_s:0.8;
    chase_frac = 0.03;
    loop_frac = 0.25;
    biased_frac = 0.63;
    loop_mean_iters = 6;
    biased_p = 0.94;
  }

let vortex : Profile.t =
  {
    name = "255.vortex";
    description = "object database; large code and data, store-heavy";
    load_frac = 0.28;
    store_frac = 0.14;
    branch_frac = 0.11;
    jump_frac = 0.03;
    imul_frac = 0.01;
    idiv_frac = 0.001;
    fadd_frac = 0.;
    fmul_frac = 0.;
    fdiv_frac = 0.;
    dep_p = 0.50;
    dep2_prob = 0.5;
    code_bytes = kb 80;
    code_zipf_s = 0.7;
    hot = region ~bytes:(kb 8) ~weight:0.60 ~stride_frac:0.25 ~zipf_s:1.25;
    warm = region ~bytes:(kb 320) ~weight:0.37 ~stride_frac:0.2 ~zipf_s:1.2;
    cold = region ~bytes:(mb 2) ~weight:0.03 ~stride_frac:0.15 ~zipf_s:0.8;
    chase_frac = 0.02;
    loop_frac = 0.25;
    biased_frac = 0.67;
    loop_mean_iters = 7;
    biased_p = 0.95;
  }

let twolf : Profile.t =
  {
    name = "300.twolf";
    description = "place and route; pointer structures, hard branches";
    load_frac = 0.26;
    store_frac = 0.07;
    branch_frac = 0.14;
    jump_frac = 0.02;
    imul_frac = 0.02;
    idiv_frac = 0.003;
    fadd_frac = 0.01;
    fmul_frac = 0.01;
    fdiv_frac = 0.001;
    dep_p = 0.38;
    dep2_prob = 0.5;
    code_bytes = kb 20;
    code_zipf_s = 1.1;
    hot = region ~bytes:(kb 6) ~weight:0.52 ~stride_frac:0.15 ~zipf_s:1.25;
    warm = region ~bytes:(kb 384) ~weight:0.40 ~stride_frac:0.1 ~zipf_s:1.1;
    cold = region ~bytes:(mb 3) ~weight:0.08 ~stride_frac:0.05 ~zipf_s:0.7;
    chase_frac = 0.05;
    loop_frac = 0.26;
    biased_frac = 0.56;
    loop_mean_iters = 10;
    biased_p = 0.90;
  }

let equake : Profile.t =
  {
    name = "183.equake";
    description = "FP earthquake simulation; streaming sparse-matrix loops";
    load_frac = 0.30;
    store_frac = 0.08;
    branch_frac = 0.06;
    jump_frac = 0.01;
    imul_frac = 0.01;
    idiv_frac = 0.;
    fadd_frac = 0.16;
    fmul_frac = 0.12;
    fdiv_frac = 0.003;
    dep_p = 0.30;
    dep2_prob = 0.6;
    code_bytes = kb 10;
    code_zipf_s = 1.3;
    hot = region ~bytes:(kb 8) ~weight:0.45 ~stride_frac:0.4 ~zipf_s:1.2;
    warm = region ~bytes:(kb 768) ~weight:0.40 ~stride_frac:0.7 ~zipf_s:1.0;
    cold = region ~bytes:(mb 8) ~weight:0.15 ~stride_frac:0.8 ~zipf_s:0.6;
    chase_frac = 0.01;
    loop_frac = 0.55;
    biased_frac = 0.40;
    loop_mean_iters = 24;
    biased_p = 0.95;
  }

let ammp : Profile.t =
  {
    name = "188.ammp";
    description = "FP molecular dynamics; long FP chains, big working set";
    load_frac = 0.28;
    store_frac = 0.07;
    branch_frac = 0.06;
    jump_frac = 0.01;
    imul_frac = 0.01;
    idiv_frac = 0.;
    fadd_frac = 0.15;
    fmul_frac = 0.14;
    fdiv_frac = 0.01;
    dep_p = 0.34;
    dep2_prob = 0.6;
    code_bytes = kb 14;
    code_zipf_s = 1.2;
    hot = region ~bytes:(kb 8) ~weight:0.45 ~stride_frac:0.3 ~zipf_s:1.2;
    warm = region ~bytes:(mb 1) ~weight:0.40 ~stride_frac:0.45 ~zipf_s:1.0;
    cold = region ~bytes:(mb 10) ~weight:0.15 ~stride_frac:0.5 ~zipf_s:0.6;
    chase_frac = 0.02;
    loop_frac = 0.50;
    biased_frac = 0.44;
    loop_mean_iters = 16;
    biased_p = 0.94;
  }

let all = [ mcf; crafty; parser; perlbmk; vortex; twolf; equake; ammp ]
let integer = [ mcf; crafty; parser; perlbmk; vortex; twolf ]
let floating_point = [ equake; ammp ]

let find name =
  let matches (p : Profile.t) =
    String.equal p.name name
    ||
    (* accept the bare name without the numeric SPEC prefix *)
    match String.index_opt p.name '.' with
    | Some i ->
        String.equal (String.sub p.name (i + 1) (String.length p.name - i - 1)) name
    | None -> false
  in
  List.find_opt matches all
