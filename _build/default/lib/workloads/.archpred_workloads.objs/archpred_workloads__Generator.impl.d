lib/workloads/generator.ml: Archpred_sim Archpred_stats Array Float Hashtbl List Profile
