lib/workloads/extractor.mli: Archpred_sim Profile
