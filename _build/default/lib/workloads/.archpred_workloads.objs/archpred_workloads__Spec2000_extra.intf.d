lib/workloads/spec2000_extra.mli: Profile
