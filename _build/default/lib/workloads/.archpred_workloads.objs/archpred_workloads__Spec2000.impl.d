lib/workloads/spec2000.ml: List Profile String
