lib/workloads/profile.ml: Format Result
