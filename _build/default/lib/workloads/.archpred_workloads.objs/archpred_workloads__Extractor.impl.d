lib/workloads/extractor.ml: Archpred_sim Array Float Hashtbl List Option Profile
