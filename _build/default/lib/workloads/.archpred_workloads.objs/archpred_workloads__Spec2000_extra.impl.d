lib/workloads/spec2000_extra.ml: List Profile Spec2000 String
