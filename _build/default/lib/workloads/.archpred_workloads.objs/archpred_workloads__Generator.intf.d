lib/workloads/generator.mli: Archpred_sim Profile
