type region = {
  bytes : int;
  weight : float;
  stride_frac : float;
  zipf_s : float;
}

type t = {
  name : string;
  description : string;
  load_frac : float;
  store_frac : float;
  branch_frac : float;
  jump_frac : float;
  imul_frac : float;
  idiv_frac : float;
  fadd_frac : float;
  fmul_frac : float;
  fdiv_frac : float;
  dep_p : float;
  dep2_prob : float;
  code_bytes : int;
  code_zipf_s : float;
  hot : region;
  warm : region;
  cold : region;
  chase_frac : float;
  loop_frac : float;
  biased_frac : float;
  loop_mean_iters : int;
  biased_p : float;
}

let control_frac t = t.branch_frac +. t.jump_frac

let validate t =
  let in_unit name v =
    if v < 0. || v > 1. then Error (name ^ " outside [0,1]") else Ok ()
  in
  let ( let* ) r f = Result.bind r f in
  let* () = in_unit "load_frac" t.load_frac in
  let* () = in_unit "store_frac" t.store_frac in
  let* () = in_unit "branch_frac" t.branch_frac in
  let* () = in_unit "jump_frac" t.jump_frac in
  let* () = in_unit "imul_frac" t.imul_frac in
  let* () = in_unit "idiv_frac" t.idiv_frac in
  let* () = in_unit "fadd_frac" t.fadd_frac in
  let* () = in_unit "fmul_frac" t.fmul_frac in
  let* () = in_unit "fdiv_frac" t.fdiv_frac in
  let* () = in_unit "dep2_prob" t.dep2_prob in
  let* () = in_unit "chase_frac" t.chase_frac in
  let* () = in_unit "loop_frac" t.loop_frac in
  let* () = in_unit "biased_frac" t.biased_frac in
  let* () = in_unit "biased_p" t.biased_p in
  let opsum =
    t.load_frac +. t.store_frac +. t.branch_frac +. t.jump_frac
    +. t.imul_frac +. t.idiv_frac +. t.fadd_frac +. t.fmul_frac
    +. t.fdiv_frac
  in
  let* () =
    if opsum > 1. +. 1e-9 then Error "opcode fractions sum beyond 1" else Ok ()
  in
  let* () =
    if t.loop_frac +. t.biased_frac > 1. +. 1e-9 then
      Error "branch class fractions sum beyond 1"
    else Ok ()
  in
  let* () =
    if t.dep_p <= 0. || t.dep_p > 1. then Error "dep_p outside (0,1]" else Ok ()
  in
  let* () =
    if t.code_bytes < 256 then Error "code_bytes too small" else Ok ()
  in
  let* () =
    if t.code_zipf_s < 0. then Error "code_zipf_s < 0" else Ok ()
  in
  let* () =
    if t.loop_mean_iters < 1 then Error "loop_mean_iters < 1" else Ok ()
  in
  let region name (r : region) =
    let* () = in_unit (name ^ ".weight") r.weight in
    let* () = in_unit (name ^ ".stride_frac") r.stride_frac in
    let* () =
      if r.bytes < 64 then Error (name ^ ".bytes too small") else Ok ()
    in
    if r.zipf_s < 0. then Error (name ^ ".zipf_s < 0") else Ok ()
  in
  let* () = region "hot" t.hot in
  let* () = region "warm" t.warm in
  let* () = region "cold" t.cold in
  let wsum = t.hot.weight +. t.warm.weight +. t.cold.weight in
  if abs_float (wsum -. 1.) > 1e-6 then Error "region weights must sum to 1"
  else Ok ()

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s: %s@ mix: ld=%.2f st=%.2f br=%.2f jmp=%.2f mul=%.3f div=%.3f \
     fadd=%.2f fmul=%.2f fdiv=%.3f@ deps: p=%.2f dep2=%.2f@ code=%dKB \
     regions: hot=%dKB/%.2f warm=%dKB/%.2f cold=%dKB/%.2f@ chase=%.2f \
     branches: loop=%.2f biased=%.2f iters=%d p=%.2f@]"
    t.name t.description t.load_frac t.store_frac t.branch_frac t.jump_frac
    t.imul_frac t.idiv_frac t.fadd_frac t.fmul_frac t.fdiv_frac t.dep_p
    t.dep2_prob (t.code_bytes / 1024) (t.hot.bytes / 1024) t.hot.weight
    (t.warm.bytes / 1024) t.warm.weight (t.cold.bytes / 1024) t.cold.weight
    t.chase_frac t.loop_frac t.biased_frac t.loop_mean_iters t.biased_p
