(** Table 5 — the most significant regression-tree splits for mcf and
    vortex: the first eight bifurcations (in significance order), each
    reported as (parameter, split value in natural units, tree depth).
    The paper's shape claim: mcf splits first on memory-system parameters
    (L2 latency, L1D latency, L2 size) while vortex splits on L1D latency,
    L1I size and issue-queue size. *)

val paper_mcf : (string * string * int) list
val paper_vortex : (string * string * int) list

val run : Context.t -> Format.formatter -> unit
