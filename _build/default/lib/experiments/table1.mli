(** Table 1 — parameter ranges, levels and transformations of the design
    space.  Configuration, not measurement: prints the space this library
    actually uses, for comparison against the paper's table. *)

val run : Context.t -> Format.formatter -> unit
