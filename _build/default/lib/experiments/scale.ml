type t = Small | Medium | Full

let of_string = function
  | "small" -> Some Small
  | "medium" -> Some Medium
  | "full" -> Some Full
  | _ -> None

let to_string = function Small -> "small" | Medium -> "medium" | Full -> "full"

let of_env () =
  match Sys.getenv_opt "ARCHPRED_SCALE" with
  | Some s -> ( match of_string s with Some t -> t | None -> Medium)
  | None -> Medium

let trace_length = function
  | Small -> 20_000
  | Medium -> 60_000
  | Full -> 120_000

let table_sample_size = function Small -> 50 | Medium -> 120 | Full -> 200

let sample_sizes = function
  | Small -> [ 20; 35; 50 ]
  | Medium -> [ 30; 50; 70; 90; 120 ]
  | Full -> [ 30; 50; 70; 90; 110; 200 ]

let test_points = function Small -> 25 | Medium -> 50 | Full -> 50
let ablation_sample_size = function Small -> 40 | Medium -> 90 | Full -> 120
let lhs_candidates = function Small -> 40 | Medium -> 100 | Full -> 100
