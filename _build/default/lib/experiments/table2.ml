module Design = Archpred_design
module Core = Archpred_core

let run _ctx ppf =
  Report.section ppf ~id:"Table 2"
    ~title:"Parameter ranges used for generating test data";
  let space = Core.Paper_space.space in
  let lo = Design.Space.decode space Core.Paper_space.test_lo in
  let hi = Design.Space.decode space Core.Paper_space.test_hi in
  Format.fprintf ppf "%-12s %14s %14s@." "Parameter" "Low" "High";
  Report.rule ppf;
  Array.iteri
    (fun k (p : Design.Parameter.t) ->
      Format.fprintf ppf "%-12s %14g %14g@." p.name lo.(k) hi.(k))
    (Design.Space.parameters space);
  Format.fprintf ppf
    "@.Test points are drawn uniformly at random inside this box \
     (50 points in the paper).@."
