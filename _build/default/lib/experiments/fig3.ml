module Core = Archpred_core
module Rbf = Archpred_rbf
module Stats = Archpred_stats

let run ctx ppf =
  Report.section ppf ~id:"Figure 3"
    ~title:"A radial basis function network (trained instance for mcf)";
  let n = Scale.table_sample_size (Context.scale ctx) in
  let trained = Context.train ctx Archpred_workloads.Spec2000.mcf ~n in
  let network = trained.Core.Build.predictor.Core.Predictor.network in
  let centers = network.Rbf.Network.centers in
  let weights = network.Rbf.Network.weights in
  Report.kv ppf "input layer" "%d parameters" Core.Paper_space.dim;
  Report.kv ppf "hidden layer" "%d radial basis functions"
    (Array.length centers);
  Report.kv ppf "output layer" "1 linear unit (CPI)";
  Report.kv ppf "weights" "%a" Stats.Descriptive.pp_summary
    (Stats.Descriptive.summarize weights);
  let radii =
    Array.concat (Array.to_list (Array.map (fun c -> c.Rbf.Network.r) centers))
  in
  Report.kv ppf "radii" "%a" Stats.Descriptive.pp_summary
    (Stats.Descriptive.summarize radii);
  let ids = trained.Core.Build.tune.Core.Tune.selection.Rbf.Selection.selected_node_ids in
  Report.kv ppf "selected tree nodes" "%s"
    (String.concat " " (List.map string_of_int ids));
  Format.fprintf ppf
    "@.Each hidden unit computes h(x) = exp(-sum_k (x_k - c_k)^2 / r_k^2) \
     (eq. 2);@.the output is f(x) = sum_j w_j h_j(x) (eq. 1).@."
