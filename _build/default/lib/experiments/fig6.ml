module Design = Archpred_design
module Core = Archpred_core

let run ctx ppf =
  Report.section ppf ~id:"Figure 6"
    ~title:
      "Predicted vs simulated CPI trends for vortex (il1_size x L2_lat)";
  let profile = Archpred_workloads.Spec2000.vortex in
  let n = Scale.table_sample_size (Context.scale ctx) in
  let trained = Context.train ctx profile ~n in
  let space = Core.Paper_space.space in
  let dim_il1 = Design.Space.index_of space "il1_size" in
  let dim_l2lat = Design.Space.index_of space "L2_lat" in
  let base = Array.make Core.Paper_space.dim 0.5 in
  let series =
    Core.Trend.sweep
      ~simulate:(Context.response ctx profile)
      ~predictor:trained.Core.Build.predictor ~base ~dim1:dim_il1 ~steps1:4
      ~dim2:dim_l2lat ~steps2:6 ()
  in
  Array.iter
    (fun (s : Core.Trend.series) ->
      Format.fprintf ppf "@.il1 = %.0fKB@." (s.Core.Trend.dim1_value /. 1024.);
      Format.fprintf ppf "  %-10s" "L2_lat";
      Array.iter (fun v -> Format.fprintf ppf "%8.0f" v) s.Core.Trend.dim2_values;
      Format.fprintf ppf "@.";
      Format.fprintf ppf "  %-10s" "simulated";
      (match s.Core.Trend.simulated with
      | Some sim -> Report.float_cells ppf sim
      | None -> ());
      Format.fprintf ppf "@.";
      Format.fprintf ppf "  %-10s" "predicted";
      Report.float_cells ppf s.Core.Trend.predicted;
      Format.fprintf ppf "@.")
    series;
  Format.fprintf ppf
    "@.Shape claim: dashed (predicted) tracks solid (simulated); the \
     model may smooth@.the sharpest corner (small il1, high L2 latency), \
     as in the paper.@."
