(** Figure 2 — the best obtained L2-star discrepancy against the number of
    simulations (sample size): the knee of this curve guides the choice of
    sample size (the paper finds it near 90). *)

val run : Context.t -> Format.formatter -> unit
