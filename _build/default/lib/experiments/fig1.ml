module Design = Archpred_design
module Core = Archpred_core

let run ctx ppf =
  Report.section ppf ~id:"Figure 1"
    ~title:"CPI response surface for vortex: il1_size x L2_lat";
  let space = Core.Paper_space.space in
  let dim_il1 = Design.Space.index_of space "il1_size" in
  let dim_l2lat = Design.Space.index_of space "L2_lat" in
  let steps1 = 5 and steps2 = 7 in
  let base = Array.make Core.Paper_space.dim 0.5 in
  let grid =
    Design.Grid.sweep2 space ~base ~dim1:dim_il1 ~steps1 ~dim2:dim_l2lat
      ~steps2
  in
  let response = Context.response ctx Archpred_workloads.Spec2000.vortex in
  let flat = Array.concat (Array.to_list grid) in
  let cpis = Core.Response.evaluate_many response flat in
  let p_il1 = Design.Space.parameter space dim_il1 in
  let p_lat = Design.Space.parameter space dim_l2lat in
  Format.fprintf ppf "%-10s" "il1\\L2lat";
  Array.iter
    (fun pt ->
      Format.fprintf ppf "%8.0f"
        (Design.Parameter.decode p_lat pt.(dim_l2lat)))
    grid.(0);
  Format.fprintf ppf "@.";
  Report.rule ppf;
  Array.iteri
    (fun i row ->
      Format.fprintf ppf "%7.0fKB "
        (Design.Parameter.decode p_il1 row.(0).(dim_il1) /. 1024.);
      for j = 0 to steps2 - 1 do
        Format.fprintf ppf "%8.3f" cpis.((i * steps2) + j)
      done;
      Format.fprintf ppf "@.")
    grid;
  Format.fprintf ppf
    "@.Shape claim (paper Fig. 1): CPI rises towards small il1 and high \
     L2 latency,@.with curvature — the latency penalty is steeper when \
     the instruction cache is small.@."
