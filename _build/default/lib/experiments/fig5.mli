(** Figure 5 — the distribution of parameter values at which the
    regression tree splits, for mcf: per parameter, how many splits fall
    where in the parameter's range.  Printed as per-parameter ASCII
    histograms over the normalised range. *)

val run : Context.t -> Format.formatter -> unit
