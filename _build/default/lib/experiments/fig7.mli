(** Figure 7 — predictive accuracy of linear regression models versus RBF
    network models across sample sizes, for three benchmarks.  The linear
    baseline (main effects + two-factor interactions, AIC-pruned) is
    trained on the same space-filling samples as the RBF model and
    evaluated on the same test points.  Shape claim: the non-linear model
    is consistently more accurate; for mcf the paper reports 6.5% (linear)
    vs 2.1% (RBF) at 200 samples. *)

val run : Context.t -> Format.formatter -> unit
