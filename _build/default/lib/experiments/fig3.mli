(** Figure 3 — the RBF network.  The paper's figure is an architecture
    schematic (inputs, hidden radial-basis layer, linear output); this
    experiment prints the concrete structure of a trained network for mcf:
    layer sizes, the selected centers' tree depths, and weight/radius
    summaries. *)

val run : Context.t -> Format.formatter -> unit
