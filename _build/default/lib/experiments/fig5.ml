module Core = Archpred_core
module Stats = Archpred_stats
module Tree = Archpred_regtree.Tree

let run ctx ppf =
  Report.section ppf ~id:"Figure 5"
    ~title:"Parameter values in tree splitting for mcf";
  let n = Scale.table_sample_size (Context.scale ctx) in
  let trained = Context.train ctx Archpred_workloads.Spec2000.mcf ~n in
  let tree = trained.Core.Build.tune.Core.Tune.tree in
  let splits = Tree.splits tree in
  Format.fprintf ppf "Total splits: %d@." (List.length splits);
  Array.iteri
    (fun k name ->
      let values =
        List.filter_map
          (fun (s : Tree.split) ->
            if s.Tree.dim = k then Some s.Tree.threshold else None)
          splits
      in
      Format.fprintf ppf "@.%-12s (%d splits)@." name (List.length values);
      if values <> [] then begin
        let h =
          Stats.Histogram.of_array ~lo:0. ~hi:1. ~bins:8
            (Array.of_list values)
        in
        Stats.Histogram.pp ~width:30 () ppf h
      end)
    Core.Paper_space.param_names;
  Format.fprintf ppf
    "@.(Bins are over the normalised 0..1 range of each parameter.)@.\
     Shape claim: for mcf, splits concentrate on the memory-system \
     parameters and@.at the low end of the L2 size range.@."
