let rule ppf =
  Format.fprintf ppf "%s@." (String.make 78 '-')

let section ppf ~id ~title =
  Format.fprintf ppf "@.%s@." (String.make 78 '=');
  Format.fprintf ppf "%s: %s@." id title;
  Format.fprintf ppf "%s@." (String.make 78 '=')

let subheading ppf s =
  Format.fprintf ppf "@.-- %s@." s

let kv ppf key fmt =
  Format.fprintf ppf "%-24s: " key;
  Format.kfprintf (fun ppf -> Format.fprintf ppf "@.") ppf fmt

let float_cells ppf xs =
  Array.iter (fun x -> Format.fprintf ppf "%8.3f" x) xs
