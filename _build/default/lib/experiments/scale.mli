(** Experiment scale.

    The full paper-sized reproduction simulates thousands of design points;
    the scale knob trades fidelity for wall-clock time so the whole harness
    can run in CI.  Controlled by the [ARCHPRED_SCALE] environment variable
    ([small], [medium], [full]); the default is [medium]. *)

type t = Small | Medium | Full

val of_env : unit -> t
(** Read [ARCHPRED_SCALE]; unknown values fall back to [Medium]. *)

val of_string : string -> t option
val to_string : t -> string

val trace_length : t -> int
(** Instructions per synthetic benchmark trace. *)

val table_sample_size : t -> int
(** Training-sample size for the fixed-size tables (the paper uses 200). *)

val sample_sizes : t -> int list
(** The sample-size sweep of Figure 4 / Table 4 (paper:
    30 50 70 90 110 200). *)

val test_points : t -> int
(** Number of random test points (the paper uses 50). *)

val lhs_candidates : t -> int
(** Candidate samples scored per latin hypercube selection. *)

val ablation_sample_size : t -> int
(** Training-sample size for the ablation benches.  Smaller than
    {!table_sample_size}: ablations compare strategies against each other
    (often over several replicates), not against the paper's numbers. *)
