(** Table 4 — diagnostics of the RBF model for mcf across sample sizes:
    the tuned method parameters (p_min, alpha) and the number of selected
    RBF centers.  The paper's claims: best p_min is typically 1, alpha
    lands in 5–12, and the center count stays well below half the sample
    size. *)

val paper : (int * int * float * int) list
(** [(sample size, p_min, alpha, centers)] as published. *)

val run : Context.t -> Format.formatter -> unit
