module Core = Archpred_core
module Stats = Archpred_stats

let series ctx ppf profile =
  Report.subheading ppf profile.Archpred_workloads.Profile.name;
  Format.fprintf ppf "%-8s %10s %10s %10s@." "n" "mean%" "std%" "max%";
  Report.rule ppf;
  List.iter
    (fun n ->
      let trained = Context.train ctx profile ~n in
      let points, actual = Context.test_set ctx profile in
      let err =
        Core.Predictor.errors_on trained.Core.Build.predictor ~points ~actual
      in
      Format.fprintf ppf "%-8d %10.2f %10.2f %10.2f@." n
        err.Stats.Error_metrics.mean_pct err.Stats.Error_metrics.std_pct
        err.Stats.Error_metrics.max_pct)
    (Scale.sample_sizes (Context.scale ctx))

let run ctx ppf =
  Report.section ppf ~id:"Figure 4"
    ~title:"Mean/std/max prediction error vs sample size (mcf, twolf)";
  series ctx ppf Archpred_workloads.Spec2000.mcf;
  series ctx ppf Archpred_workloads.Spec2000.twolf;
  Format.fprintf ppf
    "@.Shape claim: error decreases with sample size, with diminishing \
     returns at the@.high end (the paper's knee is near 90 samples).@."
