module Core = Archpred_core

let paper =
  [
    (30, 1, 5., 15);
    (50, 2, 8., 16);
    (70, 1, 10., 22);
    (90, 1, 12., 27);
    (110, 1, 6., 40);
    (200, 1, 7., 76);
  ]

let run ctx ppf =
  Report.section ppf ~id:"Table 4"
    ~title:"Diagnostics of the RBF model for mcf";
  Format.fprintf ppf "%-8s | %6s %6s %8s | %6s %6s %8s@." "n" "p_min"
    "alpha" "centers" "p.pmin" "p.alph" "p.cent";
  Report.rule ppf;
  List.iter
    (fun n ->
      let trained = Context.train ctx Archpred_workloads.Spec2000.mcf ~n in
      let tune = trained.Core.Build.tune in
      let centers = Core.Predictor.n_centers trained.Core.Build.predictor in
      let p_pmin, p_alpha, p_centers =
        match List.find_opt (fun (s, _, _, _) -> s = n) paper with
        | Some (_, pm, a, c) -> (string_of_int pm, Printf.sprintf "%.0f" a, string_of_int c)
        | None -> ("-", "-", "-")
      in
      Format.fprintf ppf "%-8d | %6d %6.0f %8d | %6s %6s %8s@." n
        tune.Core.Tune.p_min tune.Core.Tune.alpha centers p_pmin p_alpha
        p_centers)
    (Scale.sample_sizes (Context.scale ctx));
  Format.fprintf ppf
    "@.Shape claims: p_min is small (1-2); radii are several times the \
     region size;@.the number of centers is well under half the sample \
     size.@."
