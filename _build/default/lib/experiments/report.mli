(** Shared formatting helpers for experiment output. *)

val section : Format.formatter -> id:string -> title:string -> unit
(** Banner introducing one experiment's output. *)

val subheading : Format.formatter -> string -> unit

val kv : Format.formatter -> string -> ('a, Format.formatter, unit) format -> 'a
(** [kv ppf key fmt ...] prints an aligned "key: value" line. *)

val rule : Format.formatter -> unit

val float_cells : Format.formatter -> float array -> unit
(** Space-separated fixed-width float cells. *)
