module Design = Archpred_design

let run _ctx ppf =
  Report.section ppf ~id:"Table 1"
    ~title:"Parameter ranges and levels (design space specification)";
  Format.fprintf ppf "%-12s %14s %14s %8s %10s@." "Parameter" "Low (u=0)"
    "High (u=1)" "Levels" "Transform";
  Report.rule ppf;
  Array.iter
    (fun (p : Design.Parameter.t) ->
      let levels =
        match p.levels with
        | Design.Parameter.Fixed l -> string_of_int l
        | Design.Parameter.Per_sample -> "S"
      in
      Format.fprintf ppf "%-12s %14g %14g %8s %10s@." p.name p.lo p.hi levels
        (Design.Transform.to_string p.transform))
    (Design.Space.parameters Archpred_core.Paper_space.space);
  Format.fprintf ppf
    "@.IQ_ratio / LSQ_ratio are fractions of ROB_size (paper: \
     0.25*ROB..0.75*ROB).@.S = one level per sample point, as in the \
     paper.@."
