lib/experiments/fig2.ml: Archpred_core Archpred_design Context Format List Printf Report Scale
