lib/experiments/ablations.mli: Context Format
