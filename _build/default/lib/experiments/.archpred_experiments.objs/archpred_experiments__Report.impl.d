lib/experiments/report.ml: Array Format String
