lib/experiments/extensions.mli: Context Format
