lib/experiments/fig7.ml: Archpred_core Archpred_linreg Archpred_stats Archpred_workloads Array Context Format List Report Scale
