lib/experiments/table2.mli: Context Format
