lib/experiments/table4.mli: Context Format
