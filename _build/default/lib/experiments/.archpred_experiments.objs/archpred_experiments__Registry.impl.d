lib/experiments/registry.ml: Ablations Context Extensions Fig1 Fig2 Fig3 Fig4 Fig5 Fig6 Fig7 Format List Scale Table1 Table2 Table3 Table4 Table5 Unix
