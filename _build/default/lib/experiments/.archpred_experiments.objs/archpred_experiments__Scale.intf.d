lib/experiments/scale.mli:
