lib/experiments/fig5.ml: Archpred_core Archpred_regtree Archpred_stats Archpred_workloads Array Context Format List Report Scale
