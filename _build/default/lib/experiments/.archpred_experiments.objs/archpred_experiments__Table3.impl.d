lib/experiments/table3.ml: Archpred_core Archpred_stats Archpred_workloads Array Context Format List Printf Report Scale
