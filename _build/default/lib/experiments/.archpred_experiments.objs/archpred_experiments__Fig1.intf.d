lib/experiments/fig1.mli: Context Format
