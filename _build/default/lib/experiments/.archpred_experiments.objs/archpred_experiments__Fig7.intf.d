lib/experiments/fig7.mli: Context Format
