lib/experiments/table2.ml: Archpred_core Archpred_design Array Format Report
