lib/experiments/fig1.ml: Archpred_core Archpred_design Archpred_workloads Array Context Format Report
