lib/experiments/fig4.ml: Archpred_core Archpred_stats Archpred_workloads Context Format List Report Scale
