lib/experiments/fig6.ml: Archpred_core Archpred_design Archpred_workloads Array Context Format Report Scale
