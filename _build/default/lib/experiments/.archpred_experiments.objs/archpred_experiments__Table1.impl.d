lib/experiments/table1.ml: Archpred_core Archpred_design Array Format Report
