lib/experiments/table3.mli: Context Format
