lib/experiments/fig4.mli: Context Format
