lib/experiments/table5.mli: Context Format
