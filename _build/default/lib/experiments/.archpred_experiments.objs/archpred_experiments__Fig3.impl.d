lib/experiments/fig3.ml: Archpred_core Archpred_rbf Archpred_stats Archpred_workloads Array Context Format List Report Scale String
