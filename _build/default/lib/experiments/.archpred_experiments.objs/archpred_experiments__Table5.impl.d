lib/experiments/table5.ml: Archpred_core Archpred_design Archpred_regtree Archpred_workloads Array Context Format List Printf Report Scale
