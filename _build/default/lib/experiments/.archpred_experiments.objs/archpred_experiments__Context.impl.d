lib/experiments/context.ml: Archpred_core Archpred_design Archpred_stats Archpred_workloads Hashtbl Lazy Scale
