lib/experiments/fig5.mli: Context Format
