lib/experiments/ablations.ml: Archpred_core Archpred_design Archpred_rbf Archpred_regtree Archpred_stats Archpred_workloads Array Context Float Format List Report Scale
