lib/experiments/fig2.mli: Context Format
