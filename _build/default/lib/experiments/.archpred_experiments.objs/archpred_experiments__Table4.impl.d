lib/experiments/table4.ml: Archpred_core Archpred_workloads Context Format List Printf Report Scale
