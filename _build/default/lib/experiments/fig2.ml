module Design = Archpred_design
module Core = Archpred_core

let run ctx ppf =
  Report.section ppf ~id:"Figure 2"
    ~title:"Best L2-star discrepancy vs number of simulations";
  let sizes = [ 10; 20; 30; 50; 70; 90; 110; 150; 200 ] in
  let candidates = Scale.lhs_candidates (Context.scale ctx) in
  let curve =
    Design.Optimize.discrepancy_curve ~kind:Design.Discrepancy.Star
      ~candidates (Context.rng ctx) Core.Paper_space.space ~sizes
  in
  Format.fprintf ppf "%-8s %14s@." "n" "discrepancy";
  Report.rule ppf;
  let prev = ref None in
  List.iter
    (fun (n, d) ->
      let drop =
        match !prev with
        | Some d' -> Printf.sprintf "  (-%.1f%%)" (100. *. (d' -. d) /. d')
        | None -> ""
      in
      prev := Some d;
      Format.fprintf ppf "%-8d %14.5f%s@." n d drop)
    curve;
  Format.fprintf ppf
    "@.Shape claim: the discrepancy falls steeply at small sizes and \
     tapers (knee@.around 70-110 samples), matching the error knee of \
     Figure 4.@."
