(** Figure 4 — mean error, standard deviation and maximum error of the
    predictive model against sample size, for mcf and twolf.  Shape
    claims: error decreases with sample size and the improvement tapers
    beyond the knee (near 90 in the paper). *)

val run : Context.t -> Format.formatter -> unit
