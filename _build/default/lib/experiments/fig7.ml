module Core = Archpred_core
module Stats = Archpred_stats
module Linreg = Archpred_linreg

let benchmark ctx ppf profile =
  Report.subheading ppf profile.Archpred_workloads.Profile.name;
  Format.fprintf ppf "%-8s %12s %12s %10s@." "n" "linear mean%"
    "rbf mean%" "lin terms";
  Report.rule ppf;
  let points, actual = Context.test_set ctx profile in
  List.iter
    (fun n ->
      let trained = Context.train ctx profile ~n in
      let rbf_err =
        Core.Predictor.errors_on trained.Core.Build.predictor ~points ~actual
      in
      (* The linear baseline reuses the identical training sample. *)
      let linear =
        Linreg.Model.stepwise ~points:trained.Core.Build.sample
          ~responses:trained.Core.Build.sample_responses ()
      in
      let predicted = Array.map (Linreg.Model.predict linear) points in
      let lin_err = Stats.Error_metrics.evaluate ~actual ~predicted in
      Format.fprintf ppf "%-8d %12.2f %12.2f %10d@." n
        lin_err.Stats.Error_metrics.mean_pct
        rbf_err.Stats.Error_metrics.mean_pct
        (List.length (Linreg.Model.terms linear)))
    (Scale.sample_sizes (Context.scale ctx))

let run ctx ppf =
  Report.section ppf ~id:"Figure 7"
    ~title:"Predictive accuracy: linear regression vs RBF network models";
  List.iter
    (benchmark ctx ppf)
    [
      Archpred_workloads.Spec2000.mcf;
      Archpred_workloads.Spec2000.vortex;
      Archpred_workloads.Spec2000.twolf;
    ];
  Format.fprintf ppf
    "@.Shape claim: the RBF model beats the linear model at every sample \
     size@.(paper, mcf at n=200: linear 6.5%% vs RBF 2.1%%).@."
