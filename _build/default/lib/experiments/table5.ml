module Design = Archpred_design
module Core = Archpred_core
module Tree = Archpred_regtree.Tree

let paper_mcf =
  [
    ("L2_lat", "11.5", 1);
    ("dl1_lat", "2.5", 2);
    ("L2_size", "370KB", 2);
    ("L2_size", "370KB", 3);
    ("L2_size", "740KB", 3);
    ("dl1_lat", "2.5", 3);
    ("ROB_size", "56.5", 4);
    ("pipe_depth", "17.9", 4);
  ]

let paper_vortex =
  [
    ("dl1_lat", "2.5", 1);
    ("il1_size", "12KB", 2);
    ("IQ_size", "0.34*", 2);
    ("pipe_depth", "18.5", 3);
    ("L2_lat", "13.5", 3);
    ("IQ_size", "0.36*", 3);
    ("L2_lat", "13.5", 3);
    ("ROB_size", "41.3", 4);
  ]

let natural_value space dim u =
  let p = Design.Space.parameter space dim in
  let v = Design.Parameter.decode p u in
  let name = p.Design.Parameter.name in
  if name = "L2_size" || name = "il1_size" || name = "dl1_size" then
    Printf.sprintf "%.0fKB" (v /. 1024.)
  else if name = "IQ_ratio" || name = "LSQ_ratio" then
    Printf.sprintf "%.2f*" v
  else Printf.sprintf "%.1f" v

let print_splits ctx ppf profile paper =
  let n = Scale.table_sample_size (Context.scale ctx) in
  let trained = Context.train ctx profile ~n in
  let tree = trained.Core.Build.tune.Core.Tune.tree in
  let space = Core.Paper_space.space in
  Report.subheading ppf profile.Archpred_workloads.Profile.name;
  Format.fprintf ppf "%-4s %-12s %10s %6s | %-12s %10s %6s@." "#"
    "parameter" "value" "depth" "paper-param" "p.value" "p.dep";
  Report.rule ppf;
  let splits = Tree.splits tree in
  List.iteri
    (fun i (s : Tree.split) ->
      if i < 8 then begin
        let parent_depth =
          (* the split lives at the depth of the node it divides *)
          s.Tree.left.Tree.depth - 1
        in
        let p_param, p_value, p_depth =
          match List.nth_opt paper i with
          | Some (a, b, c) -> (a, b, string_of_int c)
          | None -> ("-", "-", "-")
        in
        Format.fprintf ppf "%-4d %-12s %10s %6d | %-12s %10s %6s@." (i + 1)
          Core.Paper_space.param_names.(s.Tree.dim)
          (natural_value space s.Tree.dim s.Tree.threshold)
          parent_depth p_param p_value p_depth
      end)
    splits

let run ctx ppf =
  Report.section ppf ~id:"Table 5"
    ~title:"Most significant splitting points during tree construction";
  print_splits ctx ppf Archpred_workloads.Spec2000.mcf paper_mcf;
  print_splits ctx ppf Archpred_workloads.Spec2000.vortex paper_vortex;
  Format.fprintf ppf
    "@.Shape claim: the memory-bound benchmark (mcf) splits first on \
     L2/L1D parameters;@.vortex's early splits include front-end and \
     queue parameters.@."
