module Stats = Archpred_stats
module Core = Archpred_core

let paper =
  [
    ("181.mcf", 2.1, 12.7, 1.8);
    ("186.crafty", 2.9, 10.8, 2.7);
    ("197.parser", 2.2, 8.4, 2.0);
    ("253.perlbmk", 4.0, 17.0, 3.1);
    ("255.vortex", 3.4, 12.0, 2.7);
    ("300.twolf", 3.2, 11.9, 2.3);
    ("183.equake", 1.9, 5.9, 1.3);
    ("188.ammp", 2.5, 4.8, 1.2);
  ]

let run ctx ppf =
  let n = Scale.table_sample_size (Context.scale ctx) in
  Report.section ppf ~id:"Table 3"
    ~title:
      (Printf.sprintf
         "Error diagnostics of the predictive model (sample size %d)" n);
  Format.fprintf ppf "%-12s | %6s %6s %6s | %6s %6s %6s@." "Benchmark"
    "mean" "max" "std" "p.mean" "p.max" "p.std";
  Report.rule ppf;
  let means = ref [] in
  List.iter
    (fun profile ->
      let trained = Context.train ctx profile ~n in
      let points, actual = Context.test_set ctx profile in
      let err =
        Core.Predictor.errors_on trained.Core.Build.predictor ~points ~actual
      in
      let name = profile.Archpred_workloads.Profile.name in
      let p_mean, p_max, p_std =
        match List.find_opt (fun (b, _, _, _) -> b = name) paper with
        | Some (_, m, x, s) -> (m, x, s)
        | None -> (nan, nan, nan)
      in
      means := err.Stats.Error_metrics.mean_pct :: !means;
      Format.fprintf ppf "%-12s | %6.1f %6.1f %6.1f | %6.1f %6.1f %6.1f@."
        name err.Stats.Error_metrics.mean_pct err.Stats.Error_metrics.max_pct
        err.Stats.Error_metrics.std_pct p_mean p_max p_std)
    Archpred_workloads.Spec2000.all;
  Report.rule ppf;
  Format.fprintf ppf "%-12s | %6.1f %18s | %6.1f@." "Average"
    (Stats.Descriptive.mean (Array.of_list !means))
    "" 2.8;
  Format.fprintf ppf
    "@.(p.* columns are the published values; absolute numbers differ \
     because the substrate@.is a synthetic-workload simulator — see \
     DESIGN.md.  The shape claims are: small@.mean errors, FP benchmarks \
     easiest, bounded max error.)@."
