(** Figure 6 — using the RBF network to predict the variation in vortex
    performance across instruction-cache sizes and L2 latencies: the
    model's predicted CPI series are printed next to the simulated ones
    for each il1 size.  Shape claim: predictions mirror the simulated
    trends, with the largest deviation at small caches and high
    latencies. *)

val run : Context.t -> Format.formatter -> unit
