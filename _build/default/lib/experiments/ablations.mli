(** Ablation benches for the design choices DESIGN.md calls out.

    These are not in the paper's evaluation, but they justify its design
    decisions quantitatively on this reproduction:

    - {!sampling}: best-of-N latin hypercube vs a single latin hypercube
      vs uniform random sampling, at equal sample size;
    - {!centers}: tree-ordered AICc subset selection vs naive center sets
      (all leaves, or the first tree nodes);
    - {!criterion}: AICc vs AIC vs BIC vs GCV for center selection;
    - {!alpha}: sensitivity to the radius scale of eq. 8. *)

val sampling : Context.t -> Format.formatter -> unit
val centers : Context.t -> Format.formatter -> unit
val criterion : Context.t -> Format.formatter -> unit
val alpha : Context.t -> Format.formatter -> unit
