(** Table 2 — the narrower parameter ranges used for generating test
    points, printed in natural units from the encoded test box. *)

val run : Context.t -> Format.formatter -> unit
