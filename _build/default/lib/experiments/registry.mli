(** The catalogue of reproducible experiments: every table and figure of
    the paper's evaluation, plus the ablation benches. *)

type entry = {
  id : string;  (** e.g. ["table3"], ["fig7"], ["ablation_alpha"] *)
  title : string;
  run : Context.t -> Format.formatter -> unit;
}

val all : entry list
(** Paper order: tables 1–5, figures 1–7, then ablations. *)

val paper_only : entry list
(** Just the paper's tables and figures. *)

val find : string -> entry option

val run_all : ?entries:entry list -> Context.t -> Format.formatter -> unit
(** Run a list of experiments (default {!all}) against one shared
    context, printing each in sequence with timing lines. *)
