(** Extension experiments beyond the paper's evaluation, covering its
    section 5 (related work) and section 6 (future work) material:

    - {!firstorder}: a Karkhanis–Smith-style first-order analytical model
      as a second baseline next to Figure 7's linear model — quantifying
      the paper's claim that theoretical models "have not been
      demonstrated to be accurate across the entire feasible design
      space";
    - {!power}: RBF models of energy per instruction, the "other metrics
      such as power consumption" of the conclusion;
    - {!stat_sim}: the statistical-simulation methodology (profile a
      trace, regenerate a synthetic clone) evaluated across the design
      space;
    - {!adaptive}: the conclusion's adaptive-sampling suggestion, at equal
      simulation budget against one-shot latin hypercube sampling. *)

val firstorder : Context.t -> Format.formatter -> unit
val power : Context.t -> Format.formatter -> unit
val stat_sim : Context.t -> Format.formatter -> unit
val adaptive : Context.t -> Format.formatter -> unit

val modelzoo : Context.t -> Format.formatter -> unit
(** Every model family of section 5 side by side: first-order analytical,
    stepwise linear, Lee-Brooks-style splines, Ipek-style neural network,
    and this paper's RBF networks — all trained on the same samples and
    evaluated on the same test points. *)

val sensitivity : Context.t -> Format.formatter -> unit
(** Parameter-significance rankings from the fitted model (total effects)
    next to the regression tree's split counts, per benchmark. *)
