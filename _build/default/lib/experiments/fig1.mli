(** Figure 1 — the CPI response surface of vortex as the L1 instruction
    cache size and the L2 latency vary (all other parameters fixed at the
    center of the space).  Demonstrates the non-linearity motivating the
    paper: L2 latency matters much more when the instruction cache is
    small.  Printed as a simulated CPI grid. *)

val run : Context.t -> Format.formatter -> unit
