(** Table 3 — error diagnostics of the predictive model: mean, maximum and
    standard deviation of the absolute percentage CPI error over the random
    test set, per benchmark, at the full table sample size (200 in the
    paper).  The paper's values are printed alongside for comparison. *)

val paper : (string * float * float * float) list
(** [(benchmark, mean, max, std)] as published. *)

val run : Context.t -> Format.formatter -> unit
