(** Permutations and subset sampling.

    Latin hypercube sampling needs an independent random permutation of the
    level indices in every design-space dimension; these helpers provide
    that on top of {!Rng}. *)

val shuffle_in_place : Rng.t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val permutation : Rng.t -> int -> int array
(** [permutation rng n] is a uniformly random permutation of [0 .. n-1]. *)

val choose : Rng.t -> int -> int -> int array
(** [choose rng k n] picks [k] distinct indices from [0 .. n-1], in random
    order. Requires [0 <= k <= n]. *)

val sample_floats : Rng.t -> int -> float array
(** [sample_floats rng n] is [n] independent uniform draws from [\[0, 1)]. *)
