type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64 step, used for seeding and for [split]. *)
let splitmix64 seed =
  let z = Int64.add seed 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let s = ref (Int64.of_int seed) in
  let next () =
    s := Int64.add !s 0x9E3779B97F4A7C15L;
    splitmix64 !s
  in
  let s0 = next () in
  let s1 = next () in
  let s2 = next () in
  let s3 = next () in
  (* xoshiro must not start from the all-zero state. *)
  let s3 = if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then 1L else s3 in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = int64 t in
  let next_state = ref seed in
  let next () =
    next_state := Int64.add !next_state 0x9E3779B97F4A7C15L;
    splitmix64 !next_state
  in
  let s0 = next () in
  let s1 = next () in
  let s2 = next () in
  let s3 = next () in
  let s3 = if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then 1L else s3 in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t bound =
  assert (bound > 0);
  if bound <= 1 lsl 30 then begin
    (* Rejection sampling over 30-bit outputs to avoid modulo bias. *)
    let mask_bits = bits30 in
    let rec draw () =
      let r = mask_bits t in
      let v = r mod bound in
      if r - v > (1 lsl 30) - bound then draw () else v
    in
    draw ()
  end
  else
    (* Large bounds: use 62 bits; bias is negligible for any realistic use. *)
    let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
    r mod bound

let unit_float t =
  (* 53 high bits scaled to [0,1). *)
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  r *. 0x1p-53

let float t bound = unit_float t *. bound
let bool t = Int64.compare (int64 t) 0L < 0
let bernoulli t p = unit_float t < p
