(** Descriptive statistics over float arrays.

    These are the summary statistics used throughout model diagnostics:
    the paper reports mean, standard deviation and maximum of the absolute
    percentage error of CPI predictions (Table 3, Figure 4). *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (divides by [n - 1]); [0.] when [n < 2]. *)

val population_variance : float array -> float
(** Variance dividing by [n]. *)

val std : float array -> float
(** Unbiased sample standard deviation. *)

val min : float array -> float
(** Smallest element. Raises [Invalid_argument] on an empty array. *)

val max : float array -> float
(** Largest element. Raises [Invalid_argument] on an empty array. *)

val sum : float array -> float
(** Kahan-compensated sum. *)

val sum_squares : float array -> float
(** Sum of squared elements. *)

val sse : float array -> float
(** Sum of squared deviations from the mean: [sum_i (x_i - mean)^2].
    This is the impurity measure minimised by regression-tree splits. *)

val geometric_mean : float array -> float
(** Geometric mean; requires all elements positive. *)

type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  max : float;
}
(** One-pass summary of a dataset. *)

val summarize : float array -> summary
(** [summarize xs] computes all fields in a single pass. Raises
    [Invalid_argument] on an empty array. *)

val pp_summary : Format.formatter -> summary -> unit
(** Human-readable rendering of a summary. *)
