let shuffle_in_place rng xs =
  for i = Array.length xs - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = xs.(i) in
    xs.(i) <- xs.(j);
    xs.(j) <- tmp
  done

let permutation rng n =
  let xs = Array.init n (fun i -> i) in
  shuffle_in_place rng xs;
  xs

let choose rng k n =
  if k < 0 || k > n then invalid_arg "Sampling.choose: need 0 <= k <= n";
  let xs = permutation rng n in
  Array.sub xs 0 k

let sample_floats rng n = Array.init n (fun _ -> Rng.unit_float rng)
