let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let sum xs =
  (* Kahan summation: experiment harnesses sum tens of thousands of squared
     errors, where naive accumulation loses precision. *)
  let total = ref 0. and comp = ref 0. in
  for i = 0 to Array.length xs - 1 do
    let y = xs.(i) -. !comp in
    let t = !total +. y in
    comp := t -. !total -. y;
    total := t
  done;
  !total

let mean xs =
  check_nonempty "Descriptive.mean" xs;
  sum xs /. float_of_int (Array.length xs)

let sse xs =
  if Array.length xs = 0 then 0.
  else begin
    let m = mean xs in
    let acc = ref 0. in
    for i = 0 to Array.length xs - 1 do
      let d = xs.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    !acc
  end

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0. else sse xs /. float_of_int (n - 1)

let population_variance xs =
  let n = Array.length xs in
  if n = 0 then 0. else sse xs /. float_of_int n

let std xs = sqrt (variance xs)

let min xs =
  check_nonempty "Descriptive.min" xs;
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  check_nonempty "Descriptive.max" xs;
  Array.fold_left Stdlib.max xs.(0) xs

let sum_squares xs =
  let acc = ref 0. in
  for i = 0 to Array.length xs - 1 do
    acc := !acc +. (xs.(i) *. xs.(i))
  done;
  !acc

let geometric_mean xs =
  check_nonempty "Descriptive.geometric_mean" xs;
  let acc = ref 0. in
  Array.iter
    (fun x ->
      if x <= 0. then invalid_arg "Descriptive.geometric_mean: nonpositive";
      acc := !acc +. log x)
    xs;
  exp (!acc /. float_of_int (Array.length xs))

type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  max : float;
}

let summarize xs =
  check_nonempty "Descriptive.summarize" xs;
  { n = Array.length xs; mean = mean xs; std = std xs; min = min xs; max = max xs }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4f std=%.4f min=%.4f max=%.4f" s.n s.mean
    s.std s.min s.max
