(** Deterministic, splittable pseudo-random number generation.

    All stochastic components of the library (sampling plans, synthetic
    workload generation, test-point selection) draw from this module so that
    every experiment is reproducible from a single integer seed.  The
    generator is xoshiro256** seeded through splitmix64, following the
    recommendation of Blackman and Vigna. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] initialises a generator from [seed].  Equal seeds yield
    equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Streams obtained by successive splits are statistically independent,
    which lets parallel components share one root seed without sharing a
    sequence. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy replays the same
    stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniformly random non-negative bits, as an [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [0, bound). *)

val unit_float : t -> float
(** Uniform on [0, 1), with 53 bits of precision. *)

val bool : t -> bool
(** A fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)
