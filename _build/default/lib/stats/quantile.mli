(** Empirical quantiles and medians.

    Used by the experiment harness to summarise distributions of tree-split
    values (Figure 5) and of prediction errors. *)

val quantile : float array -> float -> float
(** [quantile xs q] is the [q]-quantile of [xs] for [q] in [\[0, 1\]], using
    linear interpolation between order statistics (type-7, the R default).
    The input array is not modified. Raises [Invalid_argument] if [xs] is
    empty or [q] is outside [\[0, 1\]]. *)

val median : float array -> float
(** [median xs] is [quantile xs 0.5]. *)

val iqr : float array -> float
(** Interquartile range: [quantile xs 0.75 -. quantile xs 0.25]. *)

val quantiles : float array -> float list -> float list
(** [quantiles xs qs] evaluates several quantiles sharing one sort. *)
