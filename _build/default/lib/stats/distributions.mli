(** Random variate generation for the distributions used by the synthetic
    workload generator.

    The trace generator models dependency distances as geometric, memory
    reuse distances as Zipf-like, and burst lengths as exponential; these
    choices follow standard workload-characterisation practice and are what
    lets the synthetic SPEC stand-ins stress the same microarchitectural
    structures as the originals. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform on [\[lo, hi)]. *)

val normal : Rng.t -> mean:float -> std:float -> float
(** Gaussian via the Box–Muller transform. *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with rate [rate] (mean [1 /. rate]). Requires [rate > 0.]. *)

val geometric : Rng.t -> p:float -> int
(** Geometric number of failures before the first success, support
    [{0, 1, ...}]; mean [(1 - p) / p]. Requires [0. < p <= 1.]. *)

val zipf : Rng.t -> n:int -> s:float -> int
(** Zipf-distributed rank in [\[0, n)] with exponent [s] (larger [s] means
    more skew toward low ranks), sampled by inversion over a precomputed
    table-free approximation (rejection method of Devroye). Requires
    [n > 0] and [s >= 0.]. *)

val categorical : Rng.t -> float array -> int
(** [categorical rng weights] draws index [i] with probability proportional
    to [weights.(i)]. Requires nonnegative weights with a positive sum. *)

type 'a alias_table
(** Preprocessed table for O(1) categorical sampling (Walker's alias
    method); used on the hot path of trace generation. *)

val alias_of_weighted : ('a * float) array -> 'a alias_table
(** Build an alias table from value/weight pairs. *)

val alias_draw : Rng.t -> 'a alias_table -> 'a
(** Constant-time draw from the table. *)
