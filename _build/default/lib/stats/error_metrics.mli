(** Prediction-error metrics.

    The paper evaluates models by the absolute percentage error of predicted
    CPI at independently sampled test points, reporting the mean, standard
    deviation and maximum over the test set (Table 3, Figure 4, Figure 7). *)

type t = {
  mean_pct : float;  (** mean absolute percentage error *)
  std_pct : float;  (** standard deviation of the absolute percentage errors *)
  max_pct : float;  (** largest absolute percentage error *)
  rmse : float;  (** root mean squared (absolute) error *)
}

val absolute_percentage_errors :
  actual:float array -> predicted:float array -> float array
(** Per-point values [100 * |predicted - actual| / |actual|]. Raises
    [Invalid_argument] on length mismatch or an [actual] of exactly [0.]. *)

val evaluate : actual:float array -> predicted:float array -> t
(** All four metrics over a test set. *)

val pp : Format.formatter -> t -> unit
(** Render as [mean=.. std=.. max=.. rmse=..]. *)
