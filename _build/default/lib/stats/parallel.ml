let default_domains () =
  min 8 (max 1 (Domain.recommended_domain_count ()))

let map ?domains f xs =
  let n = Array.length xs in
  let d = match domains with Some d -> max 1 d | None -> default_domains () in
  if n < 2 || d = 1 then Array.map f xs
  else begin
    let d = min d n in
    let results = Array.make n None in
    let failure = Array.make d None in
    (* Strided partition balances work when cost varies along the array. *)
    let worker w () =
      try
        let i = ref w in
        while !i < n do
          results.(!i) <- Some (f xs.(!i));
          i := !i + d
        done
      with e -> failure.(w) <- Some e
    in
    let handles = Array.init d (fun w -> Domain.spawn (worker w)) in
    Array.iter Domain.join handles;
    Array.iter (function Some e -> raise e | None -> ()) failure;
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every index is covered by some stride *))
      results
  end
