(** Fixed-width histograms.

    Figure 5 of the paper shows the distribution of the parameter values at
    which the regression tree splits; the experiment harness renders that
    distribution with this module. *)

type t
(** A histogram with equally wide bins over a closed range. *)

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] makes an empty histogram of [bins] equal bins
    covering [\[lo, hi\]].  Requires [bins > 0] and [lo < hi]. *)

val add : t -> float -> unit
(** [add t x] increments the bin containing [x]. Values outside
    [\[lo, hi\]] are clamped into the first or last bin. *)

val add_all : t -> float array -> unit
(** Add every element of an array. *)

val count : t -> int -> int
(** [count t i] is the number of observations in bin [i]. *)

val total : t -> int
(** Total number of observations added. *)

val bins : t -> int
(** Number of bins. *)

val bin_range : t -> int -> float * float
(** [bin_range t i] is the [(lo, hi)] interval of bin [i]. *)

val of_array : lo:float -> hi:float -> bins:int -> float array -> t
(** Build and fill in one call. *)

val pp : ?width:int -> unit -> Format.formatter -> t -> unit
(** ASCII bar-chart rendering, bars scaled to [width] (default 40)
    characters. *)
