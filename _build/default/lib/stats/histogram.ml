type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
  if not (lo < hi) then invalid_arg "Histogram.create: requires lo < hi";
  { lo; hi; counts = Array.make bins 0; total = 0 }

let bin_index t x =
  let nbins = Array.length t.counts in
  let raw =
    int_of_float (float_of_int nbins *. ((x -. t.lo) /. (t.hi -. t.lo)))
  in
  Stdlib.max 0 (Stdlib.min (nbins - 1) raw)

let add t x =
  let i = bin_index t x in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let add_all t xs = Array.iter (add t) xs
let count t i = t.counts.(i)
let total t = t.total
let bins t = Array.length t.counts

let bin_range t i =
  let nbins = float_of_int (Array.length t.counts) in
  let w = (t.hi -. t.lo) /. nbins in
  (t.lo +. (float_of_int i *. w), t.lo +. (float_of_int (i + 1) *. w))

let of_array ~lo ~hi ~bins xs =
  let t = create ~lo ~hi ~bins in
  add_all t xs;
  t

let pp ?(width = 40) () ppf t =
  let peak = Array.fold_left Stdlib.max 1 t.counts in
  Array.iteri
    (fun i c ->
      let lo, hi = bin_range t i in
      let bar = String.make (c * width / peak) '#' in
      Format.fprintf ppf "[%8.3f, %8.3f) %4d %s@." lo hi c bar)
    t.counts
