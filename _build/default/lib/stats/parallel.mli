(** Parallel map over arrays using OCaml 5 domains.

    Model building needs hundreds of independent simulator runs per
    experiment; each run is pure (its inputs are immutable traces and
    configurations), so they parallelise trivially across domains. *)

val default_domains : unit -> int
(** Number of domains used when [domains] is not given: the number of
    recommended domains for this machine, capped at 8. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f xs] evaluates [f] on every element, splitting the work across
    domains.  [f] must be safe to run concurrently (no shared mutable
    state).  Results are in input order.  With [domains <= 1] or on arrays
    of fewer than two elements, runs sequentially.  If any application
    raises, the first exception (in scheduling order) is re-raised after
    all domains join. *)
