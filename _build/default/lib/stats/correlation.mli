(** Correlation measures between paired samples.

    Used in model diagnostics: a good predictive model should have its
    predictions strongly rank-correlated with simulated CPI even where the
    absolute error is nonzero, because architects use the model to *order*
    candidate designs. *)

val pearson : float array -> float array -> float
(** Pearson product-moment correlation coefficient. Raises
    [Invalid_argument] if the arrays differ in length or have fewer than two
    elements. Returns [0.] if either sample is constant. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation: Pearson correlation of the ranks, with ties
    assigned their average rank. *)

val r_squared : actual:float array -> predicted:float array -> float
(** Coefficient of determination [1 - SS_res / SS_tot] of [predicted]
    against [actual]. Can be negative for models worse than the mean. *)
