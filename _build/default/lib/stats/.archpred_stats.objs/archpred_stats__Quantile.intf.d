lib/stats/quantile.mli:
