lib/stats/parallel.mli:
