lib/stats/correlation.mli:
