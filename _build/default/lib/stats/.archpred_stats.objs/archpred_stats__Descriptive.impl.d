lib/stats/descriptive.ml: Array Format Stdlib
