lib/stats/error_metrics.ml: Array Descriptive Format
