lib/stats/rng.mli:
