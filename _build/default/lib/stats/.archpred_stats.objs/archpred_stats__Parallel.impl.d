lib/stats/parallel.ml: Array Domain
