lib/stats/sampling.ml: Array Rng
