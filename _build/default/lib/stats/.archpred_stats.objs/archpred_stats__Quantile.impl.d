lib/stats/quantile.ml: Array List Stdlib
