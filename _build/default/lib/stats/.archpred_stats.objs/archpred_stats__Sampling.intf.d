lib/stats/sampling.mli: Rng
