lib/sim/trace.ml: Array Bytes List Opcode Printf
