lib/sim/fu_pool.ml: Array Opcode
