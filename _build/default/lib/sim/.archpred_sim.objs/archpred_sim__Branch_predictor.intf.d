lib/sim/branch_predictor.mli:
