lib/sim/memory.ml: Cache Dram
