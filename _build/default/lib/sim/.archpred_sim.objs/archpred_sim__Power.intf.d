lib/sim/power.mli: Config Format Processor
