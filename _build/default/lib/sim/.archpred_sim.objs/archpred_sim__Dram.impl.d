lib/sim/dram.ml: Array
