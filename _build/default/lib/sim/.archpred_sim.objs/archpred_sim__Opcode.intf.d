lib/sim/opcode.mli: Format
