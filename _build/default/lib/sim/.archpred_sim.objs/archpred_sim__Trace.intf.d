lib/sim/trace.mli: Opcode
