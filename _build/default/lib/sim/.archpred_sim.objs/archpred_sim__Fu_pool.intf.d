lib/sim/fu_pool.mli: Opcode
