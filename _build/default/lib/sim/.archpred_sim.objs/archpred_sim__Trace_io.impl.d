lib/sim/trace_io.ml: Fun In_channel List Opcode Printf String Trace
