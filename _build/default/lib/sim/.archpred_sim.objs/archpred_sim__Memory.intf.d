lib/sim/memory.mli: Cache Dram
