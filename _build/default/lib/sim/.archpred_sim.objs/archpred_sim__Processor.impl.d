lib/sim/processor.ml: Array Branch_predictor Bytes Cache Config Dram Format Fu_pool Memory Opcode Trace
