lib/sim/config.mli: Branch_predictor Cache Dram Format Fu_pool
