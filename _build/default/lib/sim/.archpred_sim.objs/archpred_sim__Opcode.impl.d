lib/sim/opcode.ml: Format
