lib/sim/processor.mli: Config Format Trace
