lib/sim/power.ml: Config Format Processor
