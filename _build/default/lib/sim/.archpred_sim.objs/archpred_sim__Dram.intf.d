lib/sim/dram.mli:
