lib/sim/config.ml: Branch_predictor Cache Dram Format Fu_pool
