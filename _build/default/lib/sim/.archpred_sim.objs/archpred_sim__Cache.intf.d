lib/sim/cache.mli:
