lib/sim/branch_predictor.ml: Array Bytes Char
