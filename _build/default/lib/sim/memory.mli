(** The simulated memory hierarchy: split L1s, unified L2, DRAM.

    Timing composition for a demand access issued at cycle [c]:
    L1 hit completes at [c + l1.latency]; an L1 miss probes the L2 and, on
    an L2 hit, completes at [c + l1.latency + l2.latency]; an L2 miss goes
    to DRAM (with bank/bus queueing) and additionally pays both cache
    latencies on the way.  Caches are modelled as non-blocking: concurrent
    misses overlap freely except where DRAM bank and bus occupancy
    serialise them. *)

type t

val create :
  ?l2_prefetch:bool ->
  il1:Cache.config ->
  dl1:Cache.config ->
  l2:Cache.config ->
  dram:Dram.config ->
  unit ->
  t
(** [l2_prefetch] (default [false]) enables a next-line prefetcher at the
    L2: every demand L2 miss also fetches the following line into the L2.
    The prefetch itself is not waited for, but it occupies a DRAM bank and
    the bus, so useless prefetches steal real bandwidth. *)

val fetch : t -> cycle:int -> addr:int -> int
(** Instruction fetch of the line containing [addr]; returns the completion
    cycle. *)

val load : t -> cycle:int -> addr:int -> int
(** Data load; returns the completion cycle. *)

val store : t -> cycle:int -> addr:int -> unit
(** Data store, performed at commit: updates cache state (write-allocate)
    and occupies DRAM resources on an L2 miss, but does not produce a
    completion time — stores retire without stalling. *)

val il1 : t -> Cache.t
val dl1 : t -> Cache.t
val l2 : t -> Cache.t
val dram : t -> Dram.t

val reset_stats : t -> unit
