type scheme = Gshare | Bimodal | Local | Tournament
type config = { scheme : scheme; history_bits : int; btb_entries : int }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let config ?(scheme = Gshare) ~history_bits ~btb_entries () =
  if history_bits < 1 || history_bits > 24 then
    invalid_arg "Branch_predictor.config: history_bits out of [1,24]";
  if not (is_pow2 btb_entries) then
    invalid_arg "Branch_predictor.config: btb_entries not a power of two";
  { scheme; history_bits; btb_entries }

let default_config = { scheme = Gshare; history_bits = 13; btb_entries = 4096 }

(* Saturating 2-bit counter tables, one byte per counter. *)
module Counters = struct
  type t = Bytes.t

  let create n = Bytes.make n '\002' (* weakly taken *)
  let taken t i = Char.code (Bytes.get t i) >= 2

  let train t i taken =
    let c = Char.code (Bytes.get t i) in
    let c' = if taken then min 3 (c + 1) else max 0 (c - 1) in
    Bytes.set t i (Char.chr c')
end

type t = {
  cfg : config;
  pattern : Counters.t; (* gshare / local pattern table *)
  bimodal : Counters.t; (* bimodal table (also tournament component) *)
  chooser : Counters.t; (* tournament chooser: taken = use gshare *)
  local_history : int array; (* per-PC history registers *)
  btb_tags : int array;
  btb_targets : int array;
  mutable history : int;
  mutable lookups : int;
  mutable mispredicts : int;
}

let table_size cfg = 1 lsl cfg.history_bits
let local_entries = 1024

let create cfg =
  {
    cfg;
    pattern = Counters.create (table_size cfg);
    bimodal = Counters.create (table_size cfg);
    chooser = Counters.create (table_size cfg);
    local_history = Array.make local_entries 0;
    btb_tags = Array.make cfg.btb_entries (-1);
    btb_targets = Array.make cfg.btb_entries 0;
    history = 0;
    lookups = 0;
    mispredicts = 0;
  }

type prediction = { direction : bool; target_known : bool }

let mask t = table_size t.cfg - 1
let pc_index t ~pc = (pc lsr 2) land mask t
let gshare_index t ~pc = ((pc lsr 2) lxor t.history) land mask t
let local_slot ~pc = (pc lsr 2) land (local_entries - 1)
let local_index t ~pc = t.local_history.(local_slot ~pc) land mask t
let btb_index t ~pc = (pc lsr 2) land (t.cfg.btb_entries - 1)

let direction t ~pc =
  match t.cfg.scheme with
  | Gshare -> Counters.taken t.pattern (gshare_index t ~pc)
  | Bimodal -> Counters.taken t.bimodal (pc_index t ~pc)
  | Local -> Counters.taken t.pattern (local_index t ~pc)
  | Tournament ->
      if Counters.taken t.chooser (pc_index t ~pc) then
        Counters.taken t.pattern (gshare_index t ~pc)
      else Counters.taken t.bimodal (pc_index t ~pc)

let predict t ~pc =
  let idx = btb_index t ~pc in
  { direction = direction t ~pc; target_known = t.btb_tags.(idx) = pc }

let update t ~pc ~taken ~target =
  (match t.cfg.scheme with
  | Gshare -> Counters.train t.pattern (gshare_index t ~pc) taken
  | Bimodal -> Counters.train t.bimodal (pc_index t ~pc) taken
  | Local ->
      Counters.train t.pattern (local_index t ~pc) taken;
      let slot = local_slot ~pc in
      t.local_history.(slot) <-
        ((t.local_history.(slot) lsl 1) lor if taken then 1 else 0) land mask t
  | Tournament ->
      let g_right = Counters.taken t.pattern (gshare_index t ~pc) = taken in
      let b_right = Counters.taken t.bimodal (pc_index t ~pc) = taken in
      if g_right <> b_right then
        Counters.train t.chooser (pc_index t ~pc) g_right;
      Counters.train t.pattern (gshare_index t ~pc) taken;
      Counters.train t.bimodal (pc_index t ~pc) taken);
  t.history <- ((t.history lsl 1) lor if taken then 1 else 0) land mask t;
  if taken then begin
    let b = btb_index t ~pc in
    t.btb_tags.(b) <- pc;
    t.btb_targets.(b) <- target
  end

type kind = Conditional | Indirect

let mispredicted t ~kind ~pc ~taken =
  t.lookups <- t.lookups + 1;
  let p = predict t ~pc in
  let wrong =
    match kind with
    | Conditional -> p.direction <> taken
    | Indirect -> taken && not p.target_known
  in
  if wrong then t.mispredicts <- t.mispredicts + 1;
  wrong

type stats = { lookups : int; mispredicts : int }

let stats (t : t) : stats = { lookups = t.lookups; mispredicts = t.mispredicts }

let accuracy (t : t) =
  if t.lookups = 0 then 1.
  else 1. -. (float_of_int t.mispredicts /. float_of_int t.lookups)

let reset_stats (t : t) =
  t.lookups <- 0;
  t.mispredicts <- 0
