type result = {
  instructions : int;
  cycles : int;
  cpi : float;
  branch_accuracy : float;
  il1_miss_rate : float;
  dl1_miss_rate : float;
  l2_miss_rate : float;
  dram_accesses : int;
  dram_avg_latency : float;
  avg_rob_occupancy : float;
  avg_iq_occupancy : float;
  avg_lsq_occupancy : float;
  dispatch_stall_rob : int;
  dispatch_stall_iq : int;
  dispatch_stall_lsq : int;
  fetch_stall_icache : int;
  fetch_stall_branch : int;
}

exception Cycle_limit_exceeded of int

type stall_reason = No_stall | Icache_stall | Branch_stall

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

(* Replay the trace's reference streams through the caches and the branch
   predictor without timing, then clear statistics.  The synthetic traces
   are short relative to the working sets they exercise, so an unwarmed run
   would be dominated by compulsory misses that the paper's
   to-completion MinneSPEC runs do not see; warming approximates
   steady-state cache and predictor contents. *)
let warm_structures cfg mem bp trace =
  let n = Trace.length trace in
  let line_shift = log2 cfg.Config.line_bytes in
  let cur_line = ref (-1) in
  for i = 0 to n - 1 do
    let line = Trace.pc trace i lsr line_shift in
    if line <> !cur_line then begin
      cur_line := line;
      ignore (Memory.fetch mem ~cycle:0 ~addr:(Trace.pc trace i))
    end;
    match Trace.op trace i with
    | Opcode.Load -> ignore (Memory.load mem ~cycle:0 ~addr:(Trace.addr trace i))
    | Opcode.Store -> Memory.store mem ~cycle:0 ~addr:(Trace.addr trace i)
    | Opcode.Branch | Opcode.Jump ->
        Branch_predictor.update bp ~pc:(Trace.pc trace i)
          ~taken:(Trace.taken trace i) ~target:(Trace.target trace i)
    | Opcode.Ialu | Opcode.Imul | Opcode.Idiv | Opcode.Fadd | Opcode.Fmul
    | Opcode.Fdiv | Opcode.Nop ->
        ()
  done;
  Memory.reset_stats mem;
  Branch_predictor.reset_stats bp

let run ?max_cycles ?(warm = true) cfg trace =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Processor.run: " ^ msg));
  let n = Trace.length trace in
  let max_cycles =
    match max_cycles with Some m -> m | None -> (200 * n) + 10_000_000
  in
  let mem =
    Memory.create ~l2_prefetch:cfg.Config.l2_prefetch
      ~il1:(Config.il1_config cfg) ~dl1:(Config.dl1_config cfg)
      ~l2:(Config.l2_config cfg) ~dram:cfg.Config.dram ()
  in
  let bp = Branch_predictor.create cfg.Config.branch in
  if warm then warm_structures cfg mem bp trace;
  let fu = Fu_pool.create cfg.Config.fu in
  let rob = cfg.Config.rob_size in
  let line_shift = log2 cfg.Config.line_bytes in
  (* Decode-to-issue delay: a small share of the front-end depth; the bulk
     of the depth parameter's cost is the post-misprediction refill. *)
  let issue_delay = max 1 (cfg.Config.pipe_depth / 4) in

  (* In-flight window state, ring-indexed by trace index mod rob_size.
     Dispatch and commit are in order, so the window is the contiguous
     trace range [head, tail). *)
  let slot_complete = Array.make rob 0 in
  let slot_issued = Bytes.make rob '\000' in
  let slot_earliest = Array.make rob 0 in
  let slot_op = Array.make rob 0 in
  let slot_dep1 = Array.make rob (-1) in
  let slot_dep2 = Array.make rob (-1) in
  let slot_prev_store = Array.make rob (-1) in
  let slot_mispredict = Bytes.make rob '\000' in

  let head = ref 0 and tail = ref 0 in
  let iq_occ = ref 0 and lsq_occ = ref 0 in
  let committed = ref 0 in
  let cycle = ref 0 in
  let fetch_resume = ref 0 in
  let stall_reason = ref No_stall in
  let last_store = ref (-1) in
  let cur_line = ref (-1) in

  let stall_rob = ref 0 and stall_iq = ref 0 and stall_lsq = ref 0 in
  let stall_icache = ref 0 and stall_branch = ref 0 in
  let occ_rob = ref 0 and occ_iq = ref 0 and occ_lsq = ref 0 in

  let slot i = i mod rob in
  let issued s = Bytes.get slot_issued s <> '\000' in
  let operand_ready now p =
    p < 0 || p < !head
    ||
    let s = slot p in
    issued s && slot_complete.(s) <= now
  in
  (* Walk the chain of older in-flight stores for a load at trace index
     [i]: the load is blocked while any older store's address is unknown
     (store unissued); otherwise it forwards from the nearest same-address
     store or goes to memory. *)
  let store_scan i =
    let addr = Trace.addr trace i in
    let rec walk p =
      if p < !head || p < 0 then `Memory
      else
        let ps = slot p in
        if not (issued ps) then `Blocked
        else if Trace.addr trace p = addr then `Forward slot_complete.(ps)
        else walk slot_prev_store.(ps)
    in
    walk slot_prev_store.(slot i)
  in

  while !committed < n do
    let now = !cycle in
    if now > max_cycles then raise (Cycle_limit_exceeded now);

    (* ---- commit: in order, completed strictly before this cycle ---- *)
    let quota = ref cfg.Config.commit_width in
    let continue_commit = ref true in
    while !continue_commit && !quota > 0 && !head < !tail do
      let i = !head in
      let s = slot i in
      if issued s && slot_complete.(s) < now then begin
        let op = Opcode.of_int slot_op.(s) in
        (match op with
        | Opcode.Store ->
            Memory.store mem ~cycle:now ~addr:(Trace.addr trace i);
            decr lsq_occ
        | Opcode.Load -> decr lsq_occ
        | Opcode.Ialu | Opcode.Imul | Opcode.Idiv | Opcode.Fadd
        | Opcode.Fmul | Opcode.Fdiv | Opcode.Branch | Opcode.Jump
        | Opcode.Nop ->
            ());
        head := i + 1;
        incr committed;
        decr quota
      end
      else continue_commit := false
    done;

    (* ---- issue: oldest-first out-of-order selection ---- *)
    let budget = ref cfg.Config.issue_width in
    (try
       let i = ref !head in
       while !budget > 0 && !i < !tail do
         let s = slot !i in
         if not (issued s) then begin
           (* Dispatch order makes earliest-issue cycles monotone in the
              window, so the first too-young slot ends the scan. *)
           if slot_earliest.(s) > now then raise Exit;
           if
             operand_ready now slot_dep1.(s)
             && operand_ready now slot_dep2.(s)
           then begin
             let op = Opcode.of_int slot_op.(s) in
             let complete =
               match op with
               | Opcode.Load -> (
                   match store_scan !i with
                   | `Blocked -> -1
                   | `Forward c ->
                       if Fu_pool.try_issue fu ~cycle:now Fu_pool.Mem_port
                       then max (now + 1) (c + 1)
                       else -1
                   | `Memory ->
                       if Fu_pool.try_issue fu ~cycle:now Fu_pool.Mem_port
                       then Memory.load mem ~cycle:now ~addr:(Trace.addr trace !i)
                       else -1)
               | Opcode.Store ->
                   if Fu_pool.try_issue fu ~cycle:now Fu_pool.Mem_port then
                     now + 1
                   else -1
               | Opcode.Nop -> now
               | Opcode.Ialu | Opcode.Imul | Opcode.Idiv | Opcode.Fadd
               | Opcode.Fmul | Opcode.Fdiv | Opcode.Branch | Opcode.Jump
                 -> (
                   match Fu_pool.class_of_opcode op with
                   | None -> now
                   | Some cls ->
                       if Fu_pool.try_issue fu ~cycle:now cls then
                         now + Fu_pool.latency cfg.Config.fu cls
                       else -1)
             in
             if complete >= 0 then begin
               Bytes.set slot_issued s '\001';
               slot_complete.(s) <- complete;
               iq_occ := !iq_occ - 1;
               decr budget;
               if Bytes.get slot_mispredict s <> '\000' then
                 (* The mispredicted branch now has a resolution time:
                    fetch restarts after redirect plus front-end refill. *)
                 fetch_resume := complete + cfg.Config.pipe_depth
             end
           end
         end;
         incr i
       done
     with Exit -> ());

    (* ---- fetch/dispatch: in order, up to fetch_width ---- *)
    if now >= !fetch_resume then begin
      stall_reason := No_stall;
      let quota = ref cfg.Config.fetch_width in
      let stop = ref false in
      while (not !stop) && !quota > 0 && !tail < n do
        let i = !tail in
        if !tail - !head >= rob then begin
          incr stall_rob;
          stop := true
        end
        else begin
          let op = Trace.op trace i in
          let needs_iq = op <> Opcode.Nop in
          let is_mem = Opcode.is_memory op in
          if needs_iq && !iq_occ >= cfg.Config.iq_size then begin
            incr stall_iq;
            stop := true
          end
          else if is_mem && !lsq_occ >= cfg.Config.lsq_size then begin
            incr stall_lsq;
            stop := true
          end
          else begin
            let line = Trace.pc trace i lsr line_shift in
            if line <> !cur_line then begin
              cur_line := line;
              let ready = Memory.fetch mem ~cycle:now ~addr:(Trace.pc trace i) in
              if ready > now + cfg.Config.il1_latency then begin
                (* L1I miss: this instruction waits for the fill. *)
                fetch_resume := ready;
                stall_reason := Icache_stall;
                stop := true
              end
            end;
            if not !stop then begin
              let s = slot i in
              slot_op.(s) <- Opcode.to_int op;
              slot_earliest.(s) <- now + issue_delay;
              let dep d = if d > 0 then i - d else -1 in
              slot_dep1.(s) <- dep (Trace.dep1 trace i);
              slot_dep2.(s) <- dep (Trace.dep2 trace i);
              Bytes.set slot_mispredict s '\000';
              if op = Opcode.Nop then begin
                Bytes.set slot_issued s '\001';
                slot_complete.(s) <- now
              end
              else begin
                Bytes.set slot_issued s '\000';
                incr iq_occ
              end;
              if is_mem then begin
                slot_prev_store.(s) <- !last_store;
                if op = Opcode.Store then last_store := i;
                incr lsq_occ
              end;
              if Opcode.is_control op then begin
                let pc = Trace.pc trace i in
                let taken = Trace.taken trace i in
                let kind =
                  if op = Opcode.Jump then Branch_predictor.Indirect
                  else Branch_predictor.Conditional
                in
                let mispredicted =
                  Branch_predictor.mispredicted bp ~kind ~pc ~taken
                in
                Branch_predictor.update bp ~pc ~taken
                  ~target:(Trace.target trace i);
                if mispredicted then begin
                  Bytes.set slot_mispredict s '\001';
                  (* Fetch halts until this branch resolves at issue. *)
                  fetch_resume := max_int;
                  stall_reason := Branch_stall;
                  stop := true
                end
                else if taken then
                  (* A taken transfer ends the cycle's fetch group. *)
                  stop := true
              end;
              tail := i + 1;
              decr quota
            end
          end
        end
      done
    end
    else begin
      match !stall_reason with
      | Icache_stall -> incr stall_icache
      | Branch_stall -> incr stall_branch
      | No_stall -> ()
    end;

    occ_rob := !occ_rob + (!tail - !head);
    occ_iq := !occ_iq + !iq_occ;
    occ_lsq := !occ_lsq + !lsq_occ;
    incr cycle
  done;

  let cycles = !cycle in
  let cyclesf = float_of_int (max 1 cycles) in
  let dram = Dram.stats (Memory.dram mem) in
  {
    instructions = n;
    cycles;
    cpi = float_of_int cycles /. float_of_int (max 1 n);
    branch_accuracy = Branch_predictor.accuracy bp;
    il1_miss_rate = Cache.miss_rate (Memory.il1 mem);
    dl1_miss_rate = Cache.miss_rate (Memory.dl1 mem);
    l2_miss_rate = Cache.miss_rate (Memory.l2 mem);
    dram_accesses = dram.Dram.accesses;
    dram_avg_latency = Dram.average_latency (Memory.dram mem);
    avg_rob_occupancy = float_of_int !occ_rob /. cyclesf;
    avg_iq_occupancy = float_of_int !occ_iq /. cyclesf;
    avg_lsq_occupancy = float_of_int !occ_lsq /. cyclesf;
    dispatch_stall_rob = !stall_rob;
    dispatch_stall_iq = !stall_iq;
    dispatch_stall_lsq = !stall_lsq;
    fetch_stall_icache = !stall_icache;
    fetch_stall_branch = !stall_branch;
  }

let cpi ?max_cycles ?warm cfg trace = (run ?max_cycles ?warm cfg trace).cpi

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>insts=%d cycles=%d cpi=%.4f@ bp_acc=%.4f il1_mr=%.4f dl1_mr=%.4f \
     l2_mr=%.4f@ dram: n=%d avg_lat=%.1f@ occ: rob=%.1f iq=%.1f lsq=%.1f@ \
     stalls: rob=%d iq=%d lsq=%d icache=%d branch=%d@]"
    r.instructions r.cycles r.cpi r.branch_accuracy r.il1_miss_rate
    r.dl1_miss_rate r.l2_miss_rate r.dram_accesses r.dram_avg_latency
    r.avg_rob_occupancy r.avg_iq_occupancy r.avg_lsq_occupancy
    r.dispatch_stall_rob r.dispatch_stall_iq r.dispatch_stall_lsq
    r.fetch_stall_icache r.fetch_stall_branch
