(** DRAM device timing, memory-controller queueing and bus contention.

    The paper's simulator models "DRAM device timing, queuing at the memory
    controller, and contention for the memory bus".  This module provides
    the same three effects in a compact form: each of [banks] DRAM banks is
    busy for [bank_occupancy] cycles per access (row activate + column
    access + precharge), the shared data bus is busy for [bus_occupancy]
    cycles per transfer, and requests that find their bank or the bus busy
    queue behind earlier ones — so a burst of L2 misses sees growing
    latency, which is exactly what makes small L2 configurations behave
    non-linearly. *)

type config = {
  base_latency : int;  (** unloaded access latency in CPU cycles *)
  banks : int;  (** number of independent banks; power of two *)
  bank_occupancy : int;  (** cycles a bank stays busy per access *)
  bus_occupancy : int;  (** cycles the shared bus is held per transfer *)
}

val config :
  base_latency:int -> banks:int -> bank_occupancy:int -> bus_occupancy:int -> config

val default_config : config

type t

val create : config -> t

val access : t -> cycle:int -> addr:int -> int
(** [access t ~cycle ~addr] performs a memory access issued at [cycle];
    returns the cycle at which the data is available (always
    [>= cycle + base_latency]).  Advances the bank and bus reservations. *)

type stats = {
  accesses : int;
  total_latency : int;  (** summed end-to-end latencies *)
  queue_cycles : int;  (** summed cycles spent waiting for bank/bus *)
}

val stats : t -> stats
val average_latency : t -> float
val reset_stats : t -> unit
