type config = {
  base_latency : int;
  banks : int;
  bank_occupancy : int;
  bus_occupancy : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let config ~base_latency ~banks ~bank_occupancy ~bus_occupancy =
  if base_latency < 1 then invalid_arg "Dram.config: base_latency < 1";
  if not (is_pow2 banks) then invalid_arg "Dram.config: banks not power of 2";
  if bank_occupancy < 1 || bus_occupancy < 1 then
    invalid_arg "Dram.config: occupancies must be >= 1";
  { base_latency; banks; bank_occupancy; bus_occupancy }

let default_config =
  { base_latency = 150; banks = 16; bank_occupancy = 24; bus_occupancy = 4 }

type t = {
  cfg : config;
  bank_free : int array; (* earliest cycle each bank is free *)
  mutable bus_free : int;
  mutable accesses : int;
  mutable total_latency : int;
  mutable queue_cycles : int;
}

let create cfg =
  {
    cfg;
    bank_free = Array.make cfg.banks 0;
    bus_free = 0;
    accesses = 0;
    total_latency = 0;
    queue_cycles = 0;
  }

let access t ~cycle ~addr =
  (* Interleave banks on 4KB granularity so streaming accesses spread. *)
  let bank = (addr lsr 12) land (t.cfg.banks - 1) in
  let start_bank = max cycle t.bank_free.(bank) in
  let device_done = start_bank + t.cfg.base_latency in
  let start_bus = max device_done t.bus_free in
  let finish = start_bus + t.cfg.bus_occupancy in
  t.bank_free.(bank) <- start_bank + t.cfg.bank_occupancy;
  t.bus_free <- start_bus + t.cfg.bus_occupancy;
  t.accesses <- t.accesses + 1;
  t.total_latency <- t.total_latency + (finish - cycle);
  t.queue_cycles <-
    t.queue_cycles + (start_bank - cycle) + (start_bus - device_done);
  finish

type stats = { accesses : int; total_latency : int; queue_cycles : int }

let stats (t : t) : stats =
  {
    accesses = t.accesses;
    total_latency = t.total_latency;
    queue_cycles = t.queue_cycles;
  }

let average_latency (t : t) =
  if t.accesses = 0 then 0.
  else float_of_int t.total_latency /. float_of_int t.accesses

let reset_stats (t : t) =
  t.accesses <- 0;
  t.total_latency <- 0;
  t.queue_cycles <- 0
