(** Instruction classes of the trace ISA.

    The simulator is trace-driven: it does not execute semantics, it only
    needs to know, per instruction, which pipeline resources are exercised.
    Eleven classes cover the structures the paper's nine design parameters
    stress — integer and floating-point units of short and long latency,
    the two memory-queue classes, and control transfers. *)

type t =
  | Ialu  (** single-cycle integer ALU op *)
  | Imul  (** pipelined integer multiply *)
  | Idiv  (** unpipelined integer divide *)
  | Fadd  (** pipelined FP add/sub/convert *)
  | Fmul  (** pipelined FP multiply *)
  | Fdiv  (** unpipelined FP divide/sqrt *)
  | Load
  | Store
  | Branch  (** conditional branch *)
  | Jump  (** unconditional direct jump/call *)
  | Nop

val all : t list

val to_int : t -> int
(** Stable small-integer encoding, for packed trace storage. *)

val of_int : int -> t
(** Inverse of {!to_int}. Raises [Invalid_argument] on unknown codes. *)

val is_memory : t -> bool
val is_control : t -> bool

val uses_fp : t -> bool
(** Does the class occupy a floating-point unit? *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
