(** Dynamic branch prediction.

    The paper's simulator "models ... branch direction and target
    predictors"; mispredictions are the events whose cost scales with
    pipeline depth, one of the nine design parameters.  Four direction
    schemes are provided; the design space holds the predictor fixed
    (gshare by default, as a 2006-era high-end baseline) while workloads
    differ in predictability, but the scheme knob supports sensitivity
    studies.

    - [Gshare]: global history XOR-indexed 2-bit counters;
    - [Bimodal]: per-PC 2-bit counters, no history;
    - [Local]: per-PC history registers indexing a shared pattern table
      (the Alpha 21264's local component);
    - [Tournament]: bimodal + gshare with a per-PC chooser.

    All schemes share a direct-mapped branch target buffer for (indirect)
    target prediction. *)

type scheme = Gshare | Bimodal | Local | Tournament

type config = {
  scheme : scheme;
  history_bits : int;  (** global/local history length; pattern tables
                           have [2^history_bits] counters *)
  btb_entries : int;  (** direct-mapped BTB size; power of two *)
}

val config : ?scheme:scheme -> history_bits:int -> btb_entries:int -> unit -> config
(** Validated constructor ([scheme] defaults to [Gshare]).  Raises
    [Invalid_argument] for history outside [1..24] or a non-power-of-two
    BTB. *)

val default_config : config
(** Gshare, 13 history bits, 4096-entry BTB. *)

type t

val create : config -> t

type prediction = {
  direction : bool;  (** predicted taken? *)
  target_known : bool;  (** BTB hit for the (predicted-)taken path *)
}

val predict : t -> pc:int -> prediction
(** Look up direction and target for the branch at [pc]; no state change. *)

val update : t -> pc:int -> taken:bool -> target:int -> unit
(** Train the direction scheme, shift histories, and (if taken) install
    the target into the BTB. *)

type kind =
  | Conditional  (** direction-predicted branch; target computable at
                     decode, so only a wrong direction costs a flush *)
  | Indirect  (** jump whose target must come from the BTB; a BTB miss
                  costs a flush *)

val mispredicted : t -> kind:kind -> pc:int -> taken:bool -> bool
(** Would the current prediction be wrong for this outcome?  For
    [Conditional], compares predicted and actual direction; for
    [Indirect], a taken transfer missing in the BTB is a misprediction.
    Updates the lookup/misprediction statistics. *)

type stats = { lookups : int; mispredicts : int }

val stats : t -> stats
val accuracy : t -> float
val reset_stats : t -> unit
