type t = {
  dynamic : float;
  leakage : float;
  total : float;
  energy_per_instruction : float;
  energy_delay_product : float;
}

(* Per-access energy of an array structure: grows with the square root of
   its capacity (wordline/bitline scaling), normalised so a 32KB cache
   costs ~1 unit per access. *)
let array_access_energy bytes = sqrt (float_of_int bytes /. 32768.)

(* CAM-style structures (issue queue wakeup) scale linearly with entries. *)
let cam_access_energy entries = float_of_int entries /. 32.

let estimate (cfg : Config.t) (r : Processor.result) =
  let insts = float_of_int r.Processor.instructions in
  let cycles = float_of_int r.Processor.cycles in
  (* Event counts reconstructed from rates. *)
  let il1_accesses = insts /. 4. (* roughly one line probe per fetch group *) in
  let dl1_accesses = insts *. 0.35 (* memory-op share upper bound *) in
  let l2_accesses =
    (il1_accesses *. r.Processor.il1_miss_rate)
    +. (dl1_accesses *. r.Processor.dl1_miss_rate)
  in
  let dram_accesses = float_of_int r.Processor.dram_accesses in
  let dynamic =
    (il1_accesses *. array_access_energy cfg.Config.il1_size)
    +. (dl1_accesses *. array_access_energy cfg.Config.dl1_size)
    +. (l2_accesses *. (2. *. array_access_energy cfg.Config.l2_size))
    +. (dram_accesses *. 40.)
    (* front end: fetch/decode/rename energy grows with depth *)
    +. (insts *. 0.2 *. float_of_int cfg.Config.pipe_depth /. 14.)
    (* window: wakeup/select per issued instruction *)
    +. (insts *. cam_access_energy cfg.Config.iq_size)
    (* ROB and LSQ read/write per instruction *)
    +. (insts *. 0.5 *. array_access_energy (64 * cfg.Config.rob_size))
    +. (insts *. 0.2 *. array_access_energy (64 * cfg.Config.lsq_size))
    (* predictor lookup per fetch group *)
    +. (il1_accesses *. 0.25)
  in
  let leakage =
    cycles
    *. ((array_access_energy cfg.Config.il1_size
        +. array_access_energy cfg.Config.dl1_size
        +. array_access_energy cfg.Config.l2_size)
        *. 0.02
       +. (float_of_int (cfg.Config.rob_size + cfg.Config.iq_size + cfg.Config.lsq_size)
          *. 0.001))
  in
  let total = dynamic +. leakage in
  let epi = total /. insts in
  {
    dynamic;
    leakage;
    total;
    energy_per_instruction = epi;
    energy_delay_product = epi *. r.Processor.cpi;
  }

let pp ppf t =
  Format.fprintf ppf "dynamic=%.3g leakage=%.3g total=%.3g epi=%.4f edp=%.4f"
    t.dynamic t.leakage t.total t.energy_per_instruction
    t.energy_delay_product
