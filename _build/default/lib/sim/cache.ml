type config = {
  size_bytes : int;
  line_bytes : int;
  associativity : int;
  latency : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let config ~size_bytes ~line_bytes ~associativity ~latency =
  if not (is_pow2 line_bytes) then
    invalid_arg "Cache.config: line size not a power of two";
  if associativity <= 0 then invalid_arg "Cache.config: associativity <= 0";
  if latency < 1 then invalid_arg "Cache.config: latency < 1";
  if size_bytes < line_bytes * associativity then
    invalid_arg "Cache.config: fewer than one set";
  if size_bytes mod (line_bytes * associativity) <> 0 then
    invalid_arg "Cache.config: size not a multiple of line * associativity";
  { size_bytes; line_bytes; associativity; latency }

type t = {
  cfg : config;
  set_count : int;
  line_shift : int;
  tags : int array; (* set * ways + way; -1 = invalid *)
  age : int array; (* LRU stamps, monotone counter *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create cfg =
  let set_count = cfg.size_bytes / (cfg.line_bytes * cfg.associativity) in
  {
    cfg;
    set_count;
    line_shift = log2 cfg.line_bytes;
    tags = Array.make (set_count * cfg.associativity) (-1);
    age = Array.make (set_count * cfg.associativity) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let latency t = t.cfg.latency
let sets t = t.set_count
let ways t = t.cfg.associativity

(* Any set count is allowed (sizes need not be powers of two), so the set
   index is a modulo and the tag is the full line number. *)
let locate t addr =
  let line = addr lsr t.line_shift in
  let set = line mod t.set_count in
  (set, line)

let find t set tag =
  let ways = t.cfg.associativity in
  let base = set * ways in
  let rec scan w = if w >= ways then -1 else if t.tags.(base + w) = tag then base + w else scan (w + 1) in
  scan 0

let access t addr =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let set, tag = locate t addr in
  let slot = find t set tag in
  if slot >= 0 then begin
    t.age.(slot) <- t.clock;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* Fill, evicting the LRU way of the set. *)
    let ways = t.cfg.associativity in
    let base = set * ways in
    let victim = ref base in
    for w = 1 to ways - 1 do
      if t.age.(base + w) < t.age.(!victim) then victim := base + w
    done;
    t.tags.(!victim) <- tag;
    t.age.(!victim) <- t.clock;
    false
  end

let probe t addr =
  let set, tag = locate t addr in
  find t set tag >= 0

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.age 0 (Array.length t.age) 0

type stats = { accesses : int; misses : int }

let stats (t : t) : stats = { accesses = t.accesses; misses = t.misses }

let miss_rate (t : t) =
  if t.accesses = 0 then 0.
  else float_of_int t.misses /. float_of_int t.accesses

let reset_stats (t : t) =
  t.accesses <- 0;
  t.misses <- 0
