(** Trace serialisation.

    A line-oriented text format so traces can be produced by external
    tools (binary instrumentation, other simulators) and fed to this
    simulator, or exported for inspection:

    {v archpred-trace 1
       <op> <dep1> <dep2> <addr> <pc> <taken> <target>
       ... v}

    where [<op>] is an {!Opcode.to_string} name, [<taken>] is [0]/[1], and
    the remaining fields are decimal integers.  One line per dynamic
    instruction, in program order. *)

val save : Trace.t -> string -> unit
(** Write a trace. Raises [Sys_error] on I/O failure. *)

val load : string -> Trace.t
(** Read a trace; validates it on the way in.  Raises [Failure] with a
    line-numbered message on malformed input and [Sys_error] on I/O
    failure. *)

val to_channel : out_channel -> Trace.t -> unit
val of_channel : in_channel -> Trace.t
