type t = {
  il1 : Cache.t;
  dl1 : Cache.t;
  l2 : Cache.t;
  dram : Dram.t;
  l2_prefetch : bool;
  line_bytes : int;
}

let create ?(l2_prefetch = false) ~il1 ~dl1 ~l2 ~dram () =
  {
    il1 = Cache.create il1;
    dl1 = Cache.create dl1;
    l2 = Cache.create l2;
    dram = Dram.create dram;
    l2_prefetch;
    line_bytes = l2.Cache.line_bytes;
  }

let through_l2 t ~addr ~after_l1 =
  if Cache.access t.l2 addr then after_l1 + Cache.latency t.l2
  else begin
    let start = after_l1 + Cache.latency t.l2 in
    let finish = Dram.access t.dram ~cycle:start ~addr in
    if t.l2_prefetch then begin
      (* Next-line prefetch: fill the following line if absent.  The
         prefetch is issued right behind the demand miss, so nothing waits
         for it, but it occupies a DRAM bank and the bus — useless
         prefetches steal real bandwidth from later demand misses. *)
      let next = addr + t.line_bytes in
      if not (Cache.probe t.l2 next) then begin
        ignore (Cache.access t.l2 next);
        ignore (Dram.access t.dram ~cycle:start ~addr:next)
      end
    end;
    finish
  end

let fetch t ~cycle ~addr =
  let after_l1 = cycle + Cache.latency t.il1 in
  if Cache.access t.il1 addr then after_l1
  else through_l2 t ~addr ~after_l1

let load t ~cycle ~addr =
  let after_l1 = cycle + Cache.latency t.dl1 in
  if Cache.access t.dl1 addr then after_l1
  else through_l2 t ~addr ~after_l1

let store t ~cycle ~addr =
  if not (Cache.access t.dl1 addr) then
    if not (Cache.access t.l2 addr) then
      ignore (Dram.access t.dram ~cycle ~addr)

let il1 t = t.il1
let dl1 t = t.dl1
let l2 t = t.l2
let dram t = t.dram

let reset_stats t =
  Cache.reset_stats t.il1;
  Cache.reset_stats t.dl1;
  Cache.reset_stats t.l2;
  Dram.reset_stats t.dram;
  Dram.reset_stats t.dram
