type t =
  | Ialu
  | Imul
  | Idiv
  | Fadd
  | Fmul
  | Fdiv
  | Load
  | Store
  | Branch
  | Jump
  | Nop

let all = [ Ialu; Imul; Idiv; Fadd; Fmul; Fdiv; Load; Store; Branch; Jump; Nop ]

let to_int = function
  | Ialu -> 0
  | Imul -> 1
  | Idiv -> 2
  | Fadd -> 3
  | Fmul -> 4
  | Fdiv -> 5
  | Load -> 6
  | Store -> 7
  | Branch -> 8
  | Jump -> 9
  | Nop -> 10

let of_int = function
  | 0 -> Ialu
  | 1 -> Imul
  | 2 -> Idiv
  | 3 -> Fadd
  | 4 -> Fmul
  | 5 -> Fdiv
  | 6 -> Load
  | 7 -> Store
  | 8 -> Branch
  | 9 -> Jump
  | 10 -> Nop
  | n -> invalid_arg ("Opcode.of_int: " ^ string_of_int n)

let is_memory = function
  | Load | Store -> true
  | Ialu | Imul | Idiv | Fadd | Fmul | Fdiv | Branch | Jump | Nop -> false

let is_control = function
  | Branch | Jump -> true
  | Ialu | Imul | Idiv | Fadd | Fmul | Fdiv | Load | Store | Nop -> false

let uses_fp = function
  | Fadd | Fmul | Fdiv -> true
  | Ialu | Imul | Idiv | Load | Store | Branch | Jump | Nop -> false

let to_string = function
  | Ialu -> "ialu"
  | Imul -> "imul"
  | Idiv -> "idiv"
  | Fadd -> "fadd"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Load -> "load"
  | Store -> "store"
  | Branch -> "branch"
  | Jump -> "jump"
  | Nop -> "nop"

let pp ppf t = Format.pp_print_string ppf (to_string t)
