(** Functional units: per-class issue bandwidth and latency.

    Pipelined classes (integer ALU, multiplier, FP add, FP multiply, memory
    ports) accept up to their unit count of new operations every cycle.
    Unpipelined classes (integer and FP divide) tie their unit up for the
    whole operation.  The configuration is fixed across the paper's design
    space; it shapes which workloads are execution-bound. *)

type unit_class = Int_alu | Int_mul | Int_div | Fp_add | Fp_mul | Fp_div | Mem_port

type config = {
  int_alu : int * int;  (** (count, latency) *)
  int_mul : int * int;
  int_div : int * int;
  fp_add : int * int;
  fp_mul : int * int;
  fp_div : int * int;
  mem_port : int * int;  (** ports to the data cache; latency unused
                             (memory timing comes from {!Memory}) *)
}

val default_config : config

val class_of_opcode : Opcode.t -> unit_class option
(** Unit class needed by an instruction class; [None] for nops, branches
    and jumps execute on the integer ALU. *)

val latency : config -> unit_class -> int
val count : config -> unit_class -> int

type t

val create : config -> t

val try_issue : t -> cycle:int -> unit_class -> bool
(** Claim a unit of the class in this cycle.  Returns [false] if all units
    are taken this cycle (pipelined classes) or busy (unpipelined). *)

val structural_stalls : t -> int
(** Number of [try_issue] calls refused so far. *)

val reset_stats : t -> unit
