(** Instruction traces.

    A trace is an immutable, struct-of-arrays record of a program's dynamic
    instruction stream: per instruction, its class, the distances (in
    dynamic instructions) to the producers of its up-to-two source
    operands, its effective memory address if it is a load or store, its
    program counter, and — for control transfers — the taken outcome and
    target.  Struct-of-arrays keeps a million-instruction trace in a few
    flat arrays, which the cycle loop scans with no pointer chasing. *)

type t

type inst = {
  op : Opcode.t;
  dep1 : int;  (** distance to first producer; 0 = no register source *)
  dep2 : int;  (** distance to second producer; 0 = none *)
  addr : int;  (** byte address for loads/stores; ignored otherwise *)
  pc : int;  (** byte PC of this instruction *)
  taken : bool;  (** branch outcome; ignored for non-control *)
  target : int;  (** byte target for control transfers *)
}

val length : t -> int
val get : t -> int -> inst

val op : t -> int -> Opcode.t
val dep1 : t -> int -> int
val dep2 : t -> int -> int
val addr : t -> int -> int
val pc : t -> int -> int
val taken : t -> int -> bool
val target : t -> int -> int

val of_list : inst list -> t
val of_array : inst array -> t

module Builder : sig
  type trace := t
  type t

  val create : ?capacity:int -> unit -> t
  val add : t -> inst -> unit
  val length : t -> int
  val finish : t -> trace
end

val mix : t -> (Opcode.t * float) list
(** Fraction of instructions per class, descending. *)

val validate : t -> (unit, string) result
(** Check internal consistency: dependency distances point inside the
    trace prefix, memory ops have non-negative addresses, PCs are
    4-byte aligned. *)
