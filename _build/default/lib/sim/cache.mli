(** Set-associative caches with LRU replacement.

    Three instances form the simulated hierarchy: split L1 instruction and
    data caches backed by a unified L2 (the L2 size and latency, and the L1
    sizes and data latency, are five of the paper's nine design
    parameters).  The cache is a timing structure only — no data is stored,
    just tags and recency. *)

type config = {
  size_bytes : int;  (** total capacity; any multiple of [line * assoc] *)
  line_bytes : int;  (** line size; power of two *)
  associativity : int;  (** ways per set; [size / line / assoc] sets *)
  latency : int;  (** hit latency in cycles *)
}

val config :
  size_bytes:int -> line_bytes:int -> associativity:int -> latency:int -> config
(** Validated constructor. Raises [Invalid_argument] on a non-power-of-two
    line size, zero ways, capacity smaller than [line * assoc], or a
    capacity that is not a whole number of sets.  Arbitrary set counts are
    supported (indexing is modulo), so the design space can vary cache
    capacity continuously rather than in power-of-two jumps. *)

type t

val create : config -> t
val latency : t -> int
val sets : t -> int
val ways : t -> int

val access : t -> int -> bool
(** [access t addr] probes the line containing byte [addr]; returns [true]
    on hit.  On miss the line is filled, evicting the set's LRU way. *)

val probe : t -> int -> bool
(** Hit test without any state update. *)

val invalidate_all : t -> unit

type stats = { accesses : int; misses : int }

val stats : t -> stats
val miss_rate : t -> float
val reset_stats : t -> unit
