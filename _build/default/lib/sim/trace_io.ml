let magic = "archpred-trace"
let version = 1

let to_channel oc trace =
  Printf.fprintf oc "%s %d\n" magic version;
  for i = 0 to Trace.length trace - 1 do
    let inst = Trace.get trace i in
    Printf.fprintf oc "%s %d %d %d %d %d %d\n"
      (Opcode.to_string inst.Trace.op)
      inst.Trace.dep1 inst.Trace.dep2 inst.Trace.addr inst.Trace.pc
      (if inst.Trace.taken then 1 else 0)
      inst.Trace.target
  done

let save trace path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc trace)

let opcode_of_string s =
  List.find_opt (fun o -> Opcode.to_string o = s) Opcode.all

let of_channel ic =
  let fail line msg = failwith (Printf.sprintf "Trace_io: line %d: %s" line msg) in
  (match In_channel.input_line ic with
  | Some header -> (
      match String.split_on_char ' ' header with
      | [ m; v ] when m = magic ->
          if int_of_string_opt v <> Some version then
            fail 1 "unsupported version"
      | _ -> fail 1 "not an archpred trace file")
  | None -> fail 1 "empty file");
  let builder = Trace.Builder.create () in
  let line_no = ref 1 in
  let rec read () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line ->
        incr line_no;
        if String.trim line <> "" then begin
          (match
             String.split_on_char ' ' (String.trim line)
             |> List.filter (fun w -> w <> "")
           with
          | [ op; dep1; dep2; addr; pc; taken; target ] -> (
              match opcode_of_string op with
              | None -> fail !line_no ("unknown opcode " ^ op)
              | Some op ->
                  let int s =
                    match int_of_string_opt s with
                    | Some v -> v
                    | None -> fail !line_no ("bad integer " ^ s)
                  in
                  Trace.Builder.add builder
                    {
                      Trace.op;
                      dep1 = int dep1;
                      dep2 = int dep2;
                      addr = int addr;
                      pc = int pc;
                      taken = int taken <> 0;
                      target = int target;
                    })
          | _ -> fail !line_no "expected 7 fields");
          read ()
        end
        else read ()
  in
  read ();
  let trace = Trace.Builder.finish builder in
  (match Trace.validate trace with
  | Ok () -> ()
  | Error msg -> failwith ("Trace_io: invalid trace: " ^ msg));
  trace

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)
