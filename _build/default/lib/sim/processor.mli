(** The cycle-level superscalar pipeline.

    A trace-driven out-of-order engine in the style of SimpleScalar's
    sim-outorder, reduced to the events that the paper's nine design
    parameters govern:

    - in-order fetch/dispatch of up to [fetch_width] instructions per
      cycle, stalling on a full ROB/IQ/LSQ, on L1I misses (a new cache line
      is probed whenever fetch crosses a line boundary), and after
      (predicted-)taken control transfers (one taken transfer per cycle);
    - branch prediction at fetch (gshare + BTB); on a misprediction the
      front end stops and resumes [pipe_depth] cycles after the branch
      executes — pipeline depth sets the refill penalty;
    - dispatch into a [rob_size]-entry reorder buffer; non-nop instructions
      also take an issue-queue slot until they issue, loads and stores a
      LSQ slot until they commit;
    - out-of-order, oldest-first issue of up to [issue_width] ready
      instructions per cycle, subject to functional-unit bandwidth; loads
      wait for all older stores' addresses, forward from a matching older
      store, and otherwise access the L1D/L2/DRAM hierarchy with queueing
      and bus contention;
    - in-order commit of up to [commit_width] completed instructions per
      cycle; stores update the memory hierarchy at commit.

    The engine is deterministic: a (trace, config) pair always yields the
    same cycle count. *)

type result = {
  instructions : int;
  cycles : int;
  cpi : float;
  branch_accuracy : float;
  il1_miss_rate : float;
  dl1_miss_rate : float;
  l2_miss_rate : float;
  dram_accesses : int;
  dram_avg_latency : float;
  avg_rob_occupancy : float;
  avg_iq_occupancy : float;
  avg_lsq_occupancy : float;
  dispatch_stall_rob : int;  (** cycles fetch blocked on a full ROB *)
  dispatch_stall_iq : int;
  dispatch_stall_lsq : int;
  fetch_stall_icache : int;  (** cycles fetch blocked on an L1I miss *)
  fetch_stall_branch : int;  (** cycles fetch blocked on a misprediction *)
}

exception Cycle_limit_exceeded of int

val run : ?max_cycles:int -> ?warm:bool -> Config.t -> Trace.t -> result
(** Simulate a trace to completion.  [max_cycles] (default
    [200 * length + 10_000_000]) guards against engine bugs; exceeding it
    raises {!Cycle_limit_exceeded}.  [warm] (default [true]) first replays
    the trace's reference streams through the caches and branch predictor
    without timing, approximating the steady state of a long-running
    program; without it, compulsory misses dominate short traces.  Raises
    [Invalid_argument] if the configuration fails [Config.validate]. *)

val cpi : ?max_cycles:int -> ?warm:bool -> Config.t -> Trace.t -> float
(** [run] and return just the CPI — the response the models are built
    for. *)

val pp_result : Format.formatter -> result -> unit
