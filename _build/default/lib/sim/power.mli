(** Event-driven energy and power estimation.

    The paper's conclusion notes that "similar models can be developed for
    other metrics such as power consumption"; this module provides that
    second metric.  It is an activity-based model in the spirit of Wattch:
    each microarchitectural event (cache access, DRAM transfer, instruction
    dispatch/issue/commit, predictor lookup) costs an energy that scales
    with the sized structure that serves it, plus leakage proportional to
    structure capacity and runtime.

    Energy units are arbitrary ("nominal nanojoules"): the absolute scale
    is meaningless, but *relative* behaviour across the design space is
    what the predictive models consume — bigger caches cost more per
    access and leak more, deeper pipelines pay more per flush, bigger
    windows burn more wakeup energy. *)

type t = {
  dynamic : float;  (** activity-proportional energy *)
  leakage : float;  (** capacity x runtime energy *)
  total : float;
  energy_per_instruction : float;
  energy_delay_product : float;  (** EPI x CPI — the classic EDP metric *)
}

val estimate : Config.t -> Processor.result -> t
(** Combine a configuration's structure sizes with a run's event counts. *)

val pp : Format.formatter -> t -> unit
