(* Tests for archpred.ann: the MLP baseline (Ipek et al.). *)

module Mlp = Archpred_ann.Mlp
module Rng = Archpred_stats.Rng

let data rng n dim f =
  let points =
    Array.init n (fun _ -> Array.init dim (fun _ -> Rng.unit_float rng))
  in
  (points, Array.map f points)

let test_learns_linear () =
  let rng = Rng.create 1 in
  let f p = 2. +. (3. *. p.(0)) -. p.(1) in
  let points, responses = data rng 60 2 f in
  let m = Mlp.train ~points ~responses () in
  Alcotest.(check bool) "training rmse small" true (Mlp.training_rmse m < 0.1);
  let x = [| 0.3; 0.6 |] in
  Alcotest.(check bool) "prediction close" true
    (abs_float (Mlp.predict m x -. f x) < 0.2)

let test_learns_interaction () =
  (* an XOR-like multiplicative surface no linear model can fit *)
  let rng = Rng.create 2 in
  let f p = 4. *. (p.(0) -. 0.5) *. (p.(1) -. 0.5) in
  let points, responses = data rng 120 2 f in
  let config = { Mlp.default_config with Mlp.epochs = 4000; hidden = 24 } in
  let m = Mlp.train ~config ~points ~responses () in
  Alcotest.(check bool) "fits interaction" true (Mlp.training_rmse m < 0.12);
  (* check sign structure at the four corners *)
  Alcotest.(check bool) "corner signs" true
    (Mlp.predict m [| 0.9; 0.9 |] > 0.
    && Mlp.predict m [| 0.1; 0.9 |] < 0.
    && Mlp.predict m [| 0.9; 0.1 |] < 0.
    && Mlp.predict m [| 0.1; 0.1 |] > 0.)

let test_deterministic () =
  let rng = Rng.create 3 in
  let f p = p.(0) +. p.(1) in
  let points, responses = data rng 40 2 f in
  let a = Mlp.train ~points ~responses () in
  let b = Mlp.train ~points ~responses () in
  let x = [| 0.42; 0.13 |] in
  Alcotest.(check (float 1e-12)) "same model" (Mlp.predict a x) (Mlp.predict b x)

let test_constant_response () =
  let rng = Rng.create 4 in
  let points, responses = data rng 30 3 (fun _ -> 5.) in
  let m = Mlp.train ~points ~responses () in
  Alcotest.(check bool) "predicts constant" true
    (abs_float (Mlp.predict m [| 0.5; 0.5; 0.5 |] -. 5.) < 0.2)

let test_rejects_bad_input () =
  Alcotest.check_raises "empty" (Invalid_argument "Mlp.train: empty sample")
    (fun () -> ignore (Mlp.train ~points:[||] ~responses:[||] ()));
  let rng = Rng.create 5 in
  let points, responses = data rng 20 2 (fun p -> p.(0)) in
  let m = Mlp.train ~points ~responses () in
  Alcotest.check_raises "arity" (Invalid_argument "Mlp.predict: arity mismatch")
    (fun () -> ignore (Mlp.predict m [| 0.5 |]))

let () =
  Alcotest.run "ann"
    [
      ( "mlp",
        [
          Alcotest.test_case "learns linear" `Quick test_learns_linear;
          Alcotest.test_case "learns interaction" `Quick test_learns_interaction;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "constant response" `Quick test_constant_response;
          Alcotest.test_case "rejects bad input" `Quick test_rejects_bad_input;
        ] );
    ]
