(* Tests for archpred.regtree: split search, stopping rule, hyper-rectangle
   bookkeeping, prediction and the partition invariants. *)

module Tree = Archpred_regtree.Tree
module Rng = Archpred_stats.Rng

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* 1-D step function: y = 1 for x <= 0.5, y = 5 beyond. *)
let step_data () =
  let points = Array.init 20 (fun i -> [| (float_of_int i +. 0.5) /. 20. |]) in
  let responses = Array.map (fun p -> if p.(0) <= 0.5 then 1. else 5.) points in
  (points, responses)

let test_step_function_split () =
  let points, responses = step_data () in
  let t = Tree.build ~p_min:5 ~dim:1 ~points ~responses () in
  match Tree.splits t with
  | first :: _ ->
      Alcotest.(check int) "splits on dim 0" 0 first.Tree.dim;
      Alcotest.(check bool) "threshold near 0.5" true
        (abs_float (first.Tree.threshold -. 0.5) < 0.05)
  | [] -> Alcotest.fail "expected at least one split"

let test_step_prediction () =
  let points, responses = step_data () in
  let t = Tree.build ~p_min:5 ~dim:1 ~points ~responses () in
  Alcotest.(check (float 1e-9)) "left mean" 1. (Tree.predict t [| 0.2 |]);
  Alcotest.(check (float 1e-9)) "right mean" 5. (Tree.predict t [| 0.9 |])

let test_first_split_on_dominant_dim () =
  (* response depends strongly on dim 1, weakly on dim 0 *)
  let rng = Rng.create 4 in
  let points =
    Array.init 60 (fun _ -> [| Rng.unit_float rng; Rng.unit_float rng |])
  in
  let responses =
    Array.map (fun p -> (10. *. p.(1)) +. (0.1 *. p.(0))) points
  in
  let t = Tree.build ~p_min:5 ~dim:2 ~points ~responses () in
  match Tree.splits t with
  | first :: _ -> Alcotest.(check int) "dominant dim first" 1 first.Tree.dim
  | [] -> Alcotest.fail "no splits"

let test_p_min_respected () =
  let points, responses = step_data () in
  let t = Tree.build ~p_min:4 ~dim:1 ~points ~responses () in
  List.iter
    (fun (leaf : Tree.node) ->
      if Array.length leaf.Tree.indices > 4 then
        Alcotest.failf "leaf with %d > p_min points"
          (Array.length leaf.Tree.indices))
    (Tree.leaves t)

let test_root_region_is_unit_cube () =
  let points, responses = step_data () in
  let t = Tree.build ~dim:1 ~points ~responses () in
  let r = Tree.root t in
  Alcotest.(check (float 0.)) "lo" 0. r.Tree.lo.(0);
  Alcotest.(check (float 0.)) "hi" 1. r.Tree.hi.(0);
  Alcotest.(check int) "root id" 0 r.Tree.id;
  Alcotest.(check int) "root depth" 1 r.Tree.depth

let test_center_size () =
  let points, responses = step_data () in
  let t = Tree.build ~p_min:5 ~dim:1 ~points ~responses () in
  match (Tree.root t).Tree.split with
  | Some s ->
      let c = Tree.center s.Tree.left and sz = Tree.size s.Tree.left in
      Alcotest.(check (float 1e-9)) "left center"
        (s.Tree.threshold /. 2.) c.(0);
      Alcotest.(check (float 1e-9)) "left size" s.Tree.threshold sz.(0)
  | None -> Alcotest.fail "root not split"

let test_split_order_monotone () =
  let rng = Rng.create 9 in
  let points =
    Array.init 80 (fun _ -> [| Rng.unit_float rng; Rng.unit_float rng |])
  in
  let responses = Array.map (fun p -> exp (2. *. p.(0)) +. p.(1)) points in
  let t = Tree.build ~p_min:2 ~dim:2 ~points ~responses () in
  let orders = List.map (fun s -> s.Tree.order) (Tree.splits t) in
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "orders ascend" true (ascending orders)

let test_constant_response () =
  let points = Array.init 10 (fun i -> [| float_of_int i /. 10. |]) in
  let responses = Array.make 10 3. in
  let t = Tree.build ~p_min:1 ~dim:1 ~points ~responses () in
  Alcotest.(check (float 1e-9)) "predicts constant" 3. (Tree.predict t [| 0.5 |]);
  Alcotest.(check bool) "partition ok" true (Tree.region_disjoint_cover t)

let test_duplicate_points () =
  (* identical coordinates cannot be split: builder must terminate *)
  let points = Array.make 8 [| 0.5; 0.5 |] in
  let responses = Array.init 8 float_of_int in
  let t = Tree.build ~p_min:1 ~dim:2 ~points ~responses () in
  Alcotest.(check int) "single node" 1 (Tree.node_count t)

let test_invalid_inputs () =
  Alcotest.check_raises "empty" (Invalid_argument "Tree.build: empty sample")
    (fun () -> ignore (Tree.build ~dim:1 ~points:[||] ~responses:[||] ()));
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Tree.build: points/responses length mismatch")
    (fun () ->
      ignore (Tree.build ~dim:1 ~points:[| [| 0.5 |] |] ~responses:[||] ()))

let prop_partition_invariant =
  qtest "children partition parents" QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 10 + Rng.int rng 60 in
      let d = 1 + Rng.int rng 4 in
      let points =
        Array.init n (fun _ -> Array.init d (fun _ -> Rng.unit_float rng))
      in
      let responses = Array.init n (fun _ -> Rng.unit_float rng) in
      let t = Tree.build ~p_min:(1 + Rng.int rng 3) ~dim:d ~points ~responses () in
      Tree.region_disjoint_cover t)

let prop_predict_is_leaf_mean =
  qtest "prediction at training point = its leaf mean"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 10 + Rng.int rng 40 in
      let points =
        Array.init n (fun _ -> [| Rng.unit_float rng; Rng.unit_float rng |])
      in
      let responses = Array.init n (fun _ -> Rng.unit_float rng) in
      let t = Tree.build ~p_min:1 ~dim:2 ~points ~responses () in
      (* with p_min=1 and distinct coordinates, most leaves are singletons:
         the prediction at a training point must be that point's response
         whenever its leaf is a singleton *)
      let ok = ref true in
      List.iter
        (fun (leaf : Tree.node) ->
          if Array.length leaf.Tree.indices = 1 then begin
            let i = leaf.Tree.indices.(0) in
            if abs_float (Tree.predict t points.(i) -. responses.(i)) > 1e-9
            then ok := false
          end)
        (Tree.leaves t);
      !ok)

let prop_nodes_count_consistent =
  qtest "node_count = |nodes| = 2*splits + 1"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 5 + Rng.int rng 50 in
      let points = Array.init n (fun _ -> [| Rng.unit_float rng |]) in
      let responses = Array.init n (fun _ -> Rng.unit_float rng) in
      let t = Tree.build ~p_min:1 ~dim:1 ~points ~responses () in
      let nodes = List.length (Tree.nodes t) in
      nodes = Tree.node_count t
      && nodes = (2 * List.length (Tree.splits t)) + 1)

let () =
  Alcotest.run "regtree"
    [
      ( "splitting",
        [
          Alcotest.test_case "step function" `Quick test_step_function_split;
          Alcotest.test_case "step prediction" `Quick test_step_prediction;
          Alcotest.test_case "dominant dim first" `Quick test_first_split_on_dominant_dim;
          Alcotest.test_case "p_min respected" `Quick test_p_min_respected;
          Alcotest.test_case "split order monotone" `Quick test_split_order_monotone;
        ] );
      ( "structure",
        [
          Alcotest.test_case "root region" `Quick test_root_region_is_unit_cube;
          Alcotest.test_case "center/size" `Quick test_center_size;
          Alcotest.test_case "constant response" `Quick test_constant_response;
          Alcotest.test_case "duplicate points" `Quick test_duplicate_points;
          Alcotest.test_case "invalid inputs" `Quick test_invalid_inputs;
        ] );
      ( "properties",
        [
          prop_partition_invariant;
          prop_predict_is_leaf_mean;
          prop_nodes_count_consistent;
        ] );
    ]
