test/test_stats.ml: Alcotest Archpred_stats Array Float Fun QCheck2 QCheck_alcotest
