test/test_linreg.mli:
