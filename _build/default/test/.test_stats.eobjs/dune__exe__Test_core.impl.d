test/test_core.ml: Alcotest Archpred_core Archpred_design Archpred_linreg Archpred_sim Archpred_stats Archpred_workloads Array Filename Float Fun List QCheck2 QCheck_alcotest String Sys
