test/test_splines.ml: Alcotest Archpred_splines Archpred_stats Array List
