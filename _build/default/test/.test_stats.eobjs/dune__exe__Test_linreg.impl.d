test/test_linreg.ml: Alcotest Archpred_linreg Archpred_stats Array List QCheck2 QCheck_alcotest
