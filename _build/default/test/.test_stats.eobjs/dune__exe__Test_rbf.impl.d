test/test_rbf.ml: Alcotest Archpred_linalg Archpred_rbf Archpred_regtree Archpred_stats Array Float List QCheck2 QCheck_alcotest
