test/test_regtree.ml: Alcotest Archpred_regtree Archpred_stats Array List QCheck2 QCheck_alcotest
