test/test_ann.ml: Alcotest Archpred_ann Archpred_stats Array
