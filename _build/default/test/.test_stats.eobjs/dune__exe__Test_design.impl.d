test/test_design.ml: Alcotest Archpred_design Archpred_stats Array Hashtbl List Option QCheck2 QCheck_alcotest
