test/test_workloads.ml: Alcotest Archpred_sim Archpred_workloads List QCheck2 QCheck_alcotest
