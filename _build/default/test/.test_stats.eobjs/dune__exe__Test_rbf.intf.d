test/test_rbf.mli:
