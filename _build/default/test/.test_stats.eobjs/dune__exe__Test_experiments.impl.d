test/test_experiments.ml: Alcotest Archpred_experiments Archpred_workloads Format List
