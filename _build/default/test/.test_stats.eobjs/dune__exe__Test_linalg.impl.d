test/test_linalg.ml: Alcotest Archpred_linalg Archpred_stats Array Float QCheck2 QCheck_alcotest
