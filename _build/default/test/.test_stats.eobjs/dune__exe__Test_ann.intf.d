test/test_ann.mli:
