test/test_regtree.mli:
