test/test_splines.mli:
