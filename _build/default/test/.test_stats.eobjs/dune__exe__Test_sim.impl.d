test/test_sim.ml: Alcotest Archpred_sim Archpred_stats Archpred_workloads Array Filename Fun List QCheck2 QCheck_alcotest Sys
