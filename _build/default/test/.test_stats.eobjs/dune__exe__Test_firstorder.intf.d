test/test_firstorder.mli:
