(* Tests for archpred.experiments: scale parsing, context caching, registry
   coverage, and smoke runs of the cheap experiments. *)

module E = Archpred_experiments
module Scale = E.Scale
module Context = E.Context
module Registry = E.Registry

let test_scale_of_string () =
  Alcotest.(check bool) "small" true (Scale.of_string "small" = Some Scale.Small);
  Alcotest.(check bool) "full" true (Scale.of_string "full" = Some Scale.Full);
  Alcotest.(check bool) "junk" true (Scale.of_string "junk" = None)

let test_scale_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check bool) "roundtrip" true
        (Scale.of_string (Scale.to_string s) = Some s))
    [ Scale.Small; Scale.Medium; Scale.Full ]

let test_scale_monotone () =
  Alcotest.(check bool) "trace lengths grow" true
    (Scale.trace_length Scale.Small < Scale.trace_length Scale.Medium
    && Scale.trace_length Scale.Medium < Scale.trace_length Scale.Full);
  Alcotest.(check bool) "table sizes grow" true
    (Scale.table_sample_size Scale.Small < Scale.table_sample_size Scale.Full)

let test_scale_ablation_size () =
  Alcotest.(check bool) "ablation below table size" true
    (Scale.ablation_sample_size Scale.Full < Scale.table_sample_size Scale.Full)

let test_scale_paper_sizes () =
  Alcotest.(check int) "paper table size" 200 (Scale.table_sample_size Scale.Full);
  Alcotest.(check bool) "paper sweep includes 200" true
    (List.mem 200 (Scale.sample_sizes Scale.Full));
  Alcotest.(check int) "50 test points" 50 (Scale.test_points Scale.Full)

let test_registry_covers_paper () =
  List.iter
    (fun id ->
      match Registry.find id with
      | Some _ -> ()
      | None -> Alcotest.failf "missing experiment %s" id)
    [
      "table1"; "table2"; "table3"; "table4"; "table5";
      "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7";
      "ablation_sampling"; "ablation_centers"; "ablation_criterion";
      "ablation_alpha"; "ext_firstorder"; "ext_power"; "ext_statsim";
      "ext_adaptive"; "ext_modelzoo"; "ext_sensitivity";
    ]

let test_registry_find_unknown () =
  Alcotest.(check bool) "unknown" true (Registry.find "table99" = None)

let test_registry_paper_subset () =
  Alcotest.(check int) "12 paper entries" 12 (List.length Registry.paper_only);
  Alcotest.(check int) "22 total" 22 (List.length Registry.all)

let null_formatter =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let test_context_caches_responses () =
  let ctx = Context.create ~scale:Scale.Small () in
  let r1 = Context.response ctx Archpred_workloads.Spec2000.mcf in
  let r2 = Context.response ctx Archpred_workloads.Spec2000.mcf in
  Alcotest.(check bool) "same response object" true (r1 == r2)

let test_context_test_set_shared_points () =
  let ctx = Context.create ~scale:Scale.Small () in
  let p1, _ = Context.test_set ctx Archpred_workloads.Spec2000.equake in
  let p2, _ = Context.test_set ctx Archpred_workloads.Spec2000.ammp in
  Alcotest.(check bool) "points shared across benchmarks" true (p1 == p2)

let test_cheap_experiments_run () =
  let ctx = Context.create ~scale:Scale.Small () in
  List.iter
    (fun id ->
      match Registry.find id with
      | Some e -> e.Registry.run ctx null_formatter
      | None -> Alcotest.failf "missing %s" id)
    [ "table1"; "table2"; "fig2" ]

let () =
  Alcotest.run "experiments"
    [
      ( "scale",
        [
          Alcotest.test_case "of_string" `Quick test_scale_of_string;
          Alcotest.test_case "roundtrip" `Quick test_scale_roundtrip;
          Alcotest.test_case "monotone" `Quick test_scale_monotone;
          Alcotest.test_case "paper sizes" `Quick test_scale_paper_sizes;
          Alcotest.test_case "ablation size" `Quick test_scale_ablation_size;
        ] );
      ( "registry",
        [
          Alcotest.test_case "covers paper" `Quick test_registry_covers_paper;
          Alcotest.test_case "unknown id" `Quick test_registry_find_unknown;
          Alcotest.test_case "paper subset" `Quick test_registry_paper_subset;
        ] );
      ( "context",
        [
          Alcotest.test_case "caches responses" `Quick test_context_caches_responses;
          Alcotest.test_case "shares test points" `Quick test_context_test_set_shared_points;
        ] );
      ( "smoke",
        [ Alcotest.test_case "cheap experiments" `Slow test_cheap_experiments_run ] );
    ]
