(* Tests for archpred.workloads: profile validation and the synthetic
   trace generator's statistical and structural guarantees. *)

module Workloads = Archpred_workloads
module Profile = Workloads.Profile
module Generator = Workloads.Generator
module Spec2000 = Workloads.Spec2000
module Trace = Archpred_sim.Trace
module Opcode = Archpred_sim.Opcode

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let test_all_profiles_valid () =
  List.iter
    (fun (p : Profile.t) ->
      match Profile.validate p with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s invalid: %s" p.name msg)
    Spec2000.all

let test_profile_counts () =
  Alcotest.(check int) "eight benchmarks" 8 (List.length Spec2000.all);
  Alcotest.(check int) "six integer" 6 (List.length Spec2000.integer);
  Alcotest.(check int) "two fp" 2 (List.length Spec2000.floating_point)

let test_find () =
  Alcotest.(check bool) "full name" true (Spec2000.find "181.mcf" <> None);
  Alcotest.(check bool) "short name" true (Spec2000.find "vortex" <> None);
  Alcotest.(check bool) "unknown" true (Spec2000.find "gcc" = None)

let test_invalid_profile_rejected () =
  let bad = { Spec2000.mcf with Profile.load_frac = 0.9; store_frac = 0.9 } in
  match Profile.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected fraction-sum failure"

let test_region_weights_checked () =
  let bad =
    { Spec2000.mcf with Profile.hot = { Spec2000.mcf.Profile.hot with weight = 0.9 } }
  in
  match Profile.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected region-weight failure"

let test_generator_length () =
  let t = Generator.generate Spec2000.parser ~length:12_345 in
  Alcotest.(check int) "exact length" 12_345 (Trace.length t)

let test_generator_deterministic () =
  let a = Generator.generate ~seed:5 Spec2000.twolf ~length:5_000 in
  let b = Generator.generate ~seed:5 Spec2000.twolf ~length:5_000 in
  let same = ref true in
  for i = 0 to 4_999 do
    if Trace.get a i <> Trace.get b i then same := false
  done;
  Alcotest.(check bool) "identical traces" true !same

let test_generator_seed_matters () =
  let a = Generator.generate ~seed:1 Spec2000.twolf ~length:2_000 in
  let b = Generator.generate ~seed:2 Spec2000.twolf ~length:2_000 in
  let differ = ref false in
  for i = 0 to 1_999 do
    if Trace.get a i <> Trace.get b i then differ := true
  done;
  Alcotest.(check bool) "seeds differ" true !differ

let test_generator_validates () =
  List.iter
    (fun p ->
      let t = Generator.generate p ~length:8_000 in
      match Trace.validate t with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" p.Profile.name m)
    Spec2000.all

let test_generator_mix_matches_profile () =
  let p = Spec2000.mcf in
  let t = Generator.generate p ~length:60_000 in
  let frac o =
    match List.assoc_opt o (Trace.mix t) with Some f -> f | None -> 0.
  in
  let close what expected actual tol =
    if abs_float (expected -. actual) > tol then
      Alcotest.failf "%s: expected %.3f, got %.3f" what expected actual
  in
  close "loads" p.Profile.load_frac (frac Opcode.Load) 0.03;
  close "stores" p.Profile.store_frac (frac Opcode.Store) 0.02;
  close "branches" p.Profile.branch_frac (frac Opcode.Branch) 0.04

let test_generator_fp_only_in_fp_benchmarks () =
  let t = Generator.generate Spec2000.mcf ~length:20_000 in
  let fp =
    List.exists (fun (o, _) -> Opcode.uses_fp o) (Trace.mix t)
  in
  Alcotest.(check bool) "mcf has no fp" false fp;
  let t = Generator.generate Spec2000.equake ~length:20_000 in
  let fadd = List.assoc_opt Opcode.Fadd (Trace.mix t) in
  Alcotest.(check bool) "equake has fadd" true (fadd <> None)

let test_generator_addresses_in_regions () =
  let p = Spec2000.vortex in
  let t = Generator.generate p ~length:20_000 in
  for i = 0 to Trace.length t - 1 do
    if Opcode.is_memory (Trace.op t i) then begin
      let a = Trace.addr t i in
      if a < 0x1000_0000 then Alcotest.failf "address %x below data regions" a
    end
  done

let test_generator_branch_outcomes_mixed () =
  let t = Generator.generate Spec2000.crafty ~length:40_000 in
  let taken = ref 0 and total = ref 0 in
  for i = 0 to Trace.length t - 1 do
    if Trace.op t i = Opcode.Branch then begin
      incr total;
      if Trace.taken t i then incr taken
    end
  done;
  let f = float_of_int !taken /. float_of_int !total in
  Alcotest.(check bool) "taken fraction sane" true (f > 0.3 && f < 0.95)

let test_generator_jumps_always_taken () =
  let t = Generator.generate Spec2000.perlbmk ~length:30_000 in
  for i = 0 to Trace.length t - 1 do
    if Trace.op t i = Opcode.Jump && not (Trace.taken t i) then
      Alcotest.fail "jump not taken"
  done

let test_generator_code_footprint () =
  let p = Spec2000.crafty in
  let t = Generator.generate p ~length:50_000 in
  let max_pc = ref 0 in
  for i = 0 to Trace.length t - 1 do
    if Trace.pc t i > !max_pc then max_pc := Trace.pc t i
  done;
  (* PCs stay within ~code_bytes of the code base *)
  Alcotest.(check bool) "footprint bounded" true
    (!max_pc - 0x0040_0000 < 2 * p.Profile.code_bytes)

let test_generator_rejects_bad_length () =
  Alcotest.check_raises "length 0"
    (Invalid_argument "Generator.generate: length <= 0") (fun () ->
      ignore (Generator.generate Spec2000.mcf ~length:0))

let prop_generator_dep_distances_valid =
  qtest "dependency distances within prefix"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let t = Generator.generate ~seed Spec2000.parser ~length:3_000 in
      let ok = ref true in
      for i = 0 to Trace.length t - 1 do
        if Trace.dep1 t i < 0 || Trace.dep1 t i > i then ok := false;
        if Trace.dep2 t i < 0 || Trace.dep2 t i > i then ok := false
      done;
      !ok)


(* ---------- Extractor (statistical simulation) ---------- *)

module Extractor = Workloads.Extractor

let test_extractor_valid_profile () =
  List.iter
    (fun p ->
      let t = Generator.generate p ~length:20_000 in
      let e = Extractor.profile_of_trace t in
      match Profile.validate e with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s clone invalid: %s" p.Profile.name m)
    Spec2000.all

let test_extractor_mix_recovered () =
  let p = Spec2000.equake in
  let t = Generator.generate p ~length:40_000 in
  let e = Extractor.profile_of_trace t in
  let close what a b tol =
    if abs_float (a -. b) > tol then
      Alcotest.failf "%s: original %.3f vs extracted %.3f" what a b
  in
  close "loads" p.Profile.load_frac e.Profile.load_frac 0.03;
  close "branches" p.Profile.branch_frac e.Profile.branch_frac 0.03;
  close "fadd" p.Profile.fadd_frac e.Profile.fadd_frac 0.03

let test_extractor_footprint_recovered () =
  let p = Spec2000.crafty in
  let t = Generator.generate p ~length:50_000 in
  let e = Extractor.profile_of_trace t in
  (* code footprint within a factor of 2 of the original *)
  let ratio =
    float_of_int e.Profile.code_bytes /. float_of_int p.Profile.code_bytes
  in
  Alcotest.(check bool) "footprint ballpark" true (ratio > 0.4 && ratio < 2.)

let test_extractor_chase_detected () =
  let t = Generator.generate Spec2000.mcf ~length:40_000 in
  let e = Extractor.profile_of_trace t in
  (* mcf's pointer chasing shows up; crafty's near-absence too *)
  let t2 = Generator.generate Spec2000.crafty ~length:40_000 in
  let e2 = Extractor.profile_of_trace t2 in
  Alcotest.(check bool) "mcf chases more than crafty" true
    (e.Profile.chase_frac > e2.Profile.chase_frac)

let test_extractor_clone_behaves () =
  (* the regenerated clone's CPI tracks the original at two machines *)
  let p = Spec2000.parser in
  let original = Generator.generate p ~length:20_000 in
  let e = Extractor.profile_of_trace original in
  let clone = Generator.generate ~seed:99 e ~length:20_000 in
  let module Proc = Archpred_sim.Processor in
  let module Cfg = Archpred_sim.Config in
  let weak =
    Cfg.make ~pipe_depth:22 ~rob_size:32 ~iq_size:12 ~lsq_size:12
      ~l2_size:(256 * 1024) ~l2_latency:18 ~il1_size:(8 * 1024)
      ~dl1_size:(8 * 1024) ~dl1_latency:4 ()
  in
  let ratio cfg = Proc.cpi cfg clone /. Proc.cpi cfg original in
  let r1 = ratio Cfg.default and r2 = ratio weak in
  Alcotest.(check bool) "clone within 40% at default" true
    (r1 > 0.6 && r1 < 1.67);
  Alcotest.(check bool) "clone within 40% at weak" true (r2 > 0.6 && r2 < 1.67)

let test_extractor_empty_rejected () =
  let empty = Trace.of_list [] in
  Alcotest.check_raises "empty"
    (Invalid_argument "Extractor.profile_of_trace: empty trace") (fun () ->
      ignore (Extractor.profile_of_trace empty))


(* ---------- extra profiles ---------- *)

let test_extra_profiles_valid () =
  List.iter
    (fun (p : Profile.t) ->
      match Profile.validate p with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s invalid: %s" p.name msg)
    Workloads.Spec2000_extra.all

let test_extra_find () =
  Alcotest.(check bool) "finds gcc" true
    (Workloads.Spec2000_extra.find "gcc" <> None);
  Alcotest.(check bool) "finds paper bench too" true
    (Workloads.Spec2000_extra.find "mcf" <> None);
  Alcotest.(check int) "twelve total" 12
    (List.length Workloads.Spec2000_extra.everything)

let test_extra_traces_generate () =
  List.iter
    (fun p ->
      let t = Generator.generate p ~length:5_000 in
      match Trace.validate t with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" p.Profile.name m)
    Workloads.Spec2000_extra.all

let test_extra_characters () =
  (* gcc has the biggest code footprint; swim is the most streaming *)
  let gcc = Workloads.Spec2000_extra.gcc in
  List.iter
    (fun (p : Profile.t) ->
      if p.name <> gcc.Profile.name && p.Profile.code_bytes > gcc.Profile.code_bytes
      then Alcotest.failf "%s code bigger than gcc" p.name)
    Workloads.Spec2000_extra.everything

let () =
  Alcotest.run "workloads"
    [
      ( "profiles",
        [
          Alcotest.test_case "all valid" `Quick test_all_profiles_valid;
          Alcotest.test_case "counts" `Quick test_profile_counts;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "invalid rejected" `Quick test_invalid_profile_rejected;
          Alcotest.test_case "region weights checked" `Quick test_region_weights_checked;
        ] );
      ( "extra_profiles",
        [
          Alcotest.test_case "valid" `Quick test_extra_profiles_valid;
          Alcotest.test_case "find" `Quick test_extra_find;
          Alcotest.test_case "traces generate" `Quick test_extra_traces_generate;
          Alcotest.test_case "characters" `Quick test_extra_characters;
        ] );
      ( "extractor",
        [
          Alcotest.test_case "valid profiles" `Quick test_extractor_valid_profile;
          Alcotest.test_case "mix recovered" `Quick test_extractor_mix_recovered;
          Alcotest.test_case "footprint recovered" `Quick test_extractor_footprint_recovered;
          Alcotest.test_case "chase detected" `Quick test_extractor_chase_detected;
          Alcotest.test_case "clone behaves" `Slow test_extractor_clone_behaves;
          Alcotest.test_case "empty rejected" `Quick test_extractor_empty_rejected;
        ] );
      ( "generator",
        [
          Alcotest.test_case "exact length" `Quick test_generator_length;
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "seed matters" `Quick test_generator_seed_matters;
          Alcotest.test_case "validates" `Quick test_generator_validates;
          Alcotest.test_case "mix matches profile" `Quick test_generator_mix_matches_profile;
          Alcotest.test_case "fp segregation" `Quick test_generator_fp_only_in_fp_benchmarks;
          Alcotest.test_case "addresses in regions" `Quick test_generator_addresses_in_regions;
          Alcotest.test_case "branch outcomes mixed" `Quick test_generator_branch_outcomes_mixed;
          Alcotest.test_case "jumps taken" `Quick test_generator_jumps_always_taken;
          Alcotest.test_case "code footprint" `Quick test_generator_code_footprint;
          Alcotest.test_case "rejects bad length" `Quick test_generator_rejects_bad_length;
          prop_generator_dep_distances_valid;
        ] );
    ]
