(* Tests for archpred.firstorder: window-limited data-flow IPC, event
   counting and the first-order CPI model's mechanistic behaviour. *)

module Sim = Archpred_sim
module Opcode = Sim.Opcode
module Trace = Sim.Trace
module Trace_stats = Archpred_firstorder.Trace_stats
module Model = Archpred_firstorder.Model
module Workloads = Archpred_workloads

let inst ?(op = Opcode.Ialu) ?(dep1 = 0) ?(dep2 = 0) ?(addr = 0) ?(pc = 0)
    ?(taken = false) ?(target = 0) () : Trace.inst =
  { op; dep1; dep2; addr; pc; taken; target }

let unit_latency _ = 1

let test_ipc_independent () =
  (* no dependencies: a window of w drains in one latency, IPC = w *)
  let t = Trace.of_array (Array.init 640 (fun i -> inst ~pc:(4 * i) ())) in
  let s = Trace_stats.analyse t in
  let ipc = Trace_stats.ipc_of_window s ~exec_latency:unit_latency ~w:64 in
  Alcotest.(check bool) "ipc = w" true (abs_float (ipc -. 64.) < 1.)

let test_ipc_serial_chain () =
  (* every instruction depends on its predecessor: IPC -> 1 *)
  let t =
    Trace.of_array
      (Array.init 640 (fun i -> inst ~dep1:(min i 1) ~pc:(4 * i) ()))
  in
  let s = Trace_stats.analyse t in
  let ipc = Trace_stats.ipc_of_window s ~exec_latency:unit_latency ~w:64 in
  Alcotest.(check bool) "ipc near 1" true (ipc > 0.9 && ipc < 1.2)

let test_ipc_monotone_in_window () =
  let trace =
    Workloads.Generator.generate Workloads.Spec2000.crafty ~length:5_000
  in
  let s = Trace_stats.analyse trace in
  let ipc w = Trace_stats.ipc_of_window s ~exec_latency:unit_latency ~w in
  Alcotest.(check bool) "bigger window >= smaller" true (ipc 128 >= ipc 16 -. 1e-9)

let test_ipc_latency_hurts () =
  let trace =
    Workloads.Generator.generate Workloads.Spec2000.equake ~length:5_000
  in
  let s = Trace_stats.analyse trace in
  let slow op = if Opcode.uses_fp op then 8 else 1 in
  let fast = Trace_stats.ipc_of_window s ~exec_latency:unit_latency ~w:64 in
  let slowed = Trace_stats.ipc_of_window s ~exec_latency:slow ~w:64 in
  Alcotest.(check bool) "higher latency lowers ipc" true (slowed < fast)

let test_events_counted () =
  let trace =
    Workloads.Generator.generate Workloads.Spec2000.mcf ~length:20_000
  in
  let s = Trace_stats.analyse trace in
  let e = Trace_stats.count_events s Sim.Config.default in
  Alcotest.(check bool) "loads counted" true (e.Trace_stats.load_count > 3_000);
  Alcotest.(check bool) "some mispredicts" true (e.Trace_stats.branch_mispredicts > 0);
  Alcotest.(check bool) "mlp >= 1" true (e.Trace_stats.memory_mlp >= 1.)

let test_events_shrink_with_cache () =
  let trace =
    Workloads.Generator.generate Workloads.Spec2000.mcf ~length:20_000
  in
  let s = Trace_stats.analyse trace in
  let small =
    Sim.Config.make ~pipe_depth:14 ~rob_size:80 ~iq_size:40 ~lsq_size:40
      ~l2_size:(256 * 1024) ~l2_latency:12 ~il1_size:(8 * 1024)
      ~dl1_size:(8 * 1024) ~dl1_latency:2 ()
  in
  let e_small = Trace_stats.count_events s small in
  let e_big = Trace_stats.count_events s Sim.Config.default in
  Alcotest.(check bool) "bigger dl1 fewer misses" true
    (e_big.Trace_stats.dl1_misses + e_big.Trace_stats.dl1_to_memory
    < e_small.Trace_stats.dl1_misses + e_small.Trace_stats.dl1_to_memory)

let test_model_positive_and_decomposed () =
  let trace =
    Workloads.Generator.generate Workloads.Spec2000.twolf ~length:10_000
  in
  let m = Model.create trace in
  let b = Model.components m Sim.Config.default in
  Alcotest.(check bool) "base positive" true (b.Model.base > 0.);
  Alcotest.(check bool) "components nonnegative" true
    (b.Model.branch >= 0. && b.Model.icache >= 0. && b.Model.dcache_l2 >= 0.
   && b.Model.dcache_memory >= 0.);
  let total = Model.cpi m Sim.Config.default in
  Alcotest.(check (float 1e-9)) "cpi = sum"
    (b.Model.base +. b.Model.branch +. b.Model.icache +. b.Model.dcache_l2
   +. b.Model.dcache_memory)
    total

let test_model_mechanistic_trends () =
  let trace =
    Workloads.Generator.generate Workloads.Spec2000.mcf ~length:20_000
  in
  let m = Model.create trace in
  let with_l2 size =
    Sim.Config.make ~pipe_depth:14 ~rob_size:80 ~iq_size:40 ~lsq_size:40
      ~l2_size:size ~l2_latency:12 ~il1_size:(32 * 1024)
      ~dl1_size:(32 * 1024) ~dl1_latency:2 ()
  in
  Alcotest.(check bool) "smaller L2 raises predicted CPI" true
    (Model.cpi m (with_l2 (256 * 1024)) > Model.cpi m (with_l2 (8 * 1024 * 1024)));
  let with_depth d =
    Sim.Config.make ~pipe_depth:d ~rob_size:80 ~iq_size:40 ~lsq_size:40
      ~l2_size:(2 * 1024 * 1024) ~l2_latency:12 ~il1_size:(32 * 1024)
      ~dl1_size:(32 * 1024) ~dl1_latency:2 ()
  in
  Alcotest.(check bool) "deeper pipe raises predicted CPI" true
    (Model.cpi m (with_depth 24) > Model.cpi m (with_depth 7))

let test_model_ballpark () =
  (* the analytical model should land within a factor of two of the
     simulator at a mid-range configuration *)
  let trace =
    Workloads.Generator.generate Workloads.Spec2000.parser ~length:20_000
  in
  let m = Model.create trace in
  let predicted = Model.cpi m Sim.Config.default in
  let simulated = Sim.Processor.cpi Sim.Config.default trace in
  let ratio = predicted /. simulated in
  Alcotest.(check bool) "within 2x" true (ratio > 0.5 && ratio < 2.)

let () =
  Alcotest.run "firstorder"
    [
      ( "ipc_of_window",
        [
          Alcotest.test_case "independent ops" `Quick test_ipc_independent;
          Alcotest.test_case "serial chain" `Quick test_ipc_serial_chain;
          Alcotest.test_case "monotone in window" `Quick test_ipc_monotone_in_window;
          Alcotest.test_case "latency hurts" `Quick test_ipc_latency_hurts;
        ] );
      ( "events",
        [
          Alcotest.test_case "counted" `Quick test_events_counted;
          Alcotest.test_case "shrink with cache" `Quick test_events_shrink_with_cache;
        ] );
      ( "model",
        [
          Alcotest.test_case "positive decomposition" `Quick test_model_positive_and_decomposed;
          Alcotest.test_case "mechanistic trends" `Quick test_model_mechanistic_trends;
          Alcotest.test_case "ballpark accuracy" `Quick test_model_ballpark;
        ] );
    ]
