(* Tests for archpred.splines: the MARS-style baseline (Lee & Brooks). *)

module Mars = Archpred_splines.Mars
module Rng = Archpred_stats.Rng

let data rng n dim f =
  let points =
    Array.init n (fun _ -> Array.init dim (fun _ -> Rng.unit_float rng))
  in
  (points, Array.map f points)

let test_basis_values () =
  let h = Mars.Hinge { dim = 0; knot = 0.5; positive = true } in
  Alcotest.(check (float 1e-12)) "above knot" 0.2 (Mars.basis_value h [| 0.7 |]);
  Alcotest.(check (float 1e-12)) "below knot" 0. (Mars.basis_value h [| 0.3 |]);
  let g = Mars.Hinge { dim = 0; knot = 0.5; positive = false } in
  Alcotest.(check (float 1e-12)) "mirror" 0.2 (Mars.basis_value g [| 0.3 |]);
  Alcotest.(check (float 1e-12)) "intercept" 1.
    (Mars.basis_value Mars.Intercept [| 0.9 |])

let test_fits_kink () =
  (* a piecewise-linear response with a kink at 0.5: exactly MARS's game *)
  let rng = Rng.create 1 in
  let f p = 1. +. if p.(0) > 0.5 then 4. *. (p.(0) -. 0.5) else 0. in
  let points, responses = data rng 80 2 f in
  let m = Mars.train ~points ~responses () in
  List.iter
    (fun x ->
      let p = [| x; 0.5 |] in
      if abs_float (Mars.predict m p -. f p) > 0.15 then
        Alcotest.failf "bad fit at %.2f: %.3f vs %.3f" x (Mars.predict m p) (f p))
    [ 0.1; 0.3; 0.45; 0.6; 0.8; 0.95 ]

let test_fits_linear_exactly () =
  let rng = Rng.create 2 in
  let f p = 2. -. (3. *. p.(0)) in
  let points, responses = data rng 50 1 f in
  let m = Mars.train ~points ~responses () in
  Alcotest.(check bool) "small gcv" true (Mars.gcv m < 1e-3);
  Alcotest.(check bool) "accurate" true
    (abs_float (Mars.predict m [| 0.25 |] -. f [| 0.25 |]) < 0.05)

let test_prunes_to_compact_model () =
  let rng = Rng.create 3 in
  let f p = p.(0) in
  let points, responses = data rng 60 5 f in
  let m = Mars.train ~points ~responses () in
  (* a 1-active-dimension response should not need many terms *)
  Alcotest.(check bool) "compact" true (List.length (Mars.terms m) <= 7)

let test_constant_response () =
  let rng = Rng.create 4 in
  let points, responses = data rng 30 2 (fun _ -> 3. ) in
  let m = Mars.train ~points ~responses () in
  Alcotest.(check bool) "constant" true
    (abs_float (Mars.predict m [| 0.5; 0.5 |] -. 3.) < 1e-6)

let test_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Mars.train: empty sample")
    (fun () -> ignore (Mars.train ~points:[||] ~responses:[||] ()))

let () =
  Alcotest.run "splines"
    [
      ( "mars",
        [
          Alcotest.test_case "basis values" `Quick test_basis_values;
          Alcotest.test_case "fits kink" `Quick test_fits_kink;
          Alcotest.test_case "fits linear" `Quick test_fits_linear_exactly;
          Alcotest.test_case "prunes" `Quick test_prunes_to_compact_model;
          Alcotest.test_case "constant" `Quick test_constant_response;
          Alcotest.test_case "rejects empty" `Quick test_rejects_empty;
        ] );
    ]
