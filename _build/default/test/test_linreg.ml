(* Tests for archpred.linreg: term algebra, model fitting and stepwise AIC
   selection. *)

module Term = Archpred_linreg.Term
module Model = Archpred_linreg.Model
module Rng = Archpred_stats.Rng

let check_float ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------- terms ---------- *)

let test_term_values () =
  let x = [| 2.; 3. |] in
  check_float "intercept" 1. (Term.value Term.Intercept x);
  check_float "main" 3. (Term.value (Term.Main 1) x);
  check_float "interaction" 6. (Term.value (Term.Interaction (0, 1)) x)

let test_full_set_count () =
  (* 1 + 9 + 36 = 46 for the paper's 9-parameter space *)
  Alcotest.(check int) "46 terms" 46 (List.length (Term.full_set ~dim:9));
  Alcotest.(check int) "interactions" 36 (List.length (Term.interactions ~dim:9));
  Alcotest.(check int) "mains" 10 (List.length (Term.main_effects_only ~dim:9))

let test_interactions_ordered () =
  List.iter
    (fun t ->
      match t with
      | Term.Interaction (j, k) ->
          if j >= k then Alcotest.failf "unordered interaction (%d,%d)" j k
      | Term.Intercept | Term.Main _ -> Alcotest.fail "unexpected term")
    (Term.interactions ~dim:5)

let test_term_to_string () =
  Alcotest.(check string) "names" "a*b"
    (Term.to_string ~names:[| "a"; "b" |] (Term.Interaction (0, 1)));
  Alcotest.(check string) "fallback" "x1" (Term.to_string (Term.Main 1))

(* ---------- fit ---------- *)

let linear_data rng n f =
  let points =
    Array.init n (fun _ -> [| Rng.unit_float rng; Rng.unit_float rng |])
  in
  (points, Array.map f points)

let test_fit_exact_linear () =
  let rng = Rng.create 1 in
  let f p = 2. +. (3. *. p.(0)) -. (1.5 *. p.(1)) in
  let points, responses = linear_data rng 30 f in
  let m =
    Model.fit
      ~terms:[ Term.Intercept; Term.Main 0; Term.Main 1 ]
      ~points ~responses
  in
  check_float ~eps:1e-9 "intercept" 2. (Model.coefficients m).(0);
  check_float ~eps:1e-9 "b0" 3. (Model.coefficients m).(1);
  check_float ~eps:1e-9 "b1" (-1.5) (Model.coefficients m).(2);
  check_float ~eps:1e-9 "sigma2" 0. (Model.sigma2 m)

let test_predict_matches_manual () =
  let rng = Rng.create 2 in
  let f p = 1. +. p.(0) in
  let points, responses = linear_data rng 20 f in
  let m = Model.fit ~terms:(Term.main_effects_only ~dim:2) ~points ~responses in
  let x = [| 0.3; 0.7 |] in
  check_float ~eps:1e-9 "predict" (f x) (Model.predict m x)

let test_fit_no_terms_raises () =
  Alcotest.check_raises "no terms" (Invalid_argument "Model.fit: no terms")
    (fun () ->
      ignore (Model.fit ~terms:[] ~points:[| [| 1. |] |] ~responses:[| 1. |]))

(* ---------- stepwise ---------- *)

let test_stepwise_recovers_interaction () =
  let rng = Rng.create 3 in
  let f p = 1. +. (2. *. p.(0)) +. (4. *. p.(0) *. p.(1)) in
  let points, responses = linear_data rng 60 f in
  let m = Model.stepwise ~points ~responses () in
  let has t = List.exists (fun u -> Term.compare t u = 0) (Model.terms m) in
  Alcotest.(check bool) "keeps interaction" true (has (Term.Interaction (0, 1)));
  (* the fitted model reproduces the function *)
  let x = [| 0.25; 0.75 |] in
  check_float ~eps:1e-6 "prediction" (f x) (Model.predict m x)

let test_stepwise_drops_noise_terms () =
  let rng = Rng.create 4 in
  (* response depends only on x0, plus observation noise; x1 is irrelevant.
     The noise keeps sigma2 bounded away from zero so AIC trades fit
     against size classically. *)
  let noise = Rng.create 44 in
  let f p = 5. +. (3. *. p.(0)) +. (0.3 *. (Rng.unit_float noise -. 0.5)) in
  let points, responses = linear_data rng 80 f in
  let m = Model.stepwise ~points ~responses () in
  let has t = List.exists (fun u -> Term.compare t u = 0) (Model.terms m) in
  Alcotest.(check bool) "keeps x0" true (has (Term.Main 0));
  Alcotest.(check bool) "drops x0*x1" false (has (Term.Interaction (0, 1)))

let test_stepwise_small_sample () =
  (* fewer points than the full term set: must not blow up *)
  let rng = Rng.create 5 in
  let points =
    Array.init 12 (fun _ -> Array.init 9 (fun _ -> Rng.unit_float rng))
  in
  let responses = Array.map (fun p -> 1. +. p.(3)) points in
  let m = Model.stepwise ~points ~responses () in
  Alcotest.(check bool) "terms < points" true
    (List.length (Model.terms m) < 12)

let test_stepwise_constant_response () =
  let rng = Rng.create 6 in
  let points, responses = linear_data rng 20 (fun _ -> 7.) in
  let m = Model.stepwise ~points ~responses () in
  check_float ~eps:1e-6 "predicts constant" 7. (Model.predict m [| 0.5; 0.5 |])

let prop_stepwise_never_worse_than_mains =
  qtest "stepwise AIC <= main-effects AIC"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let f p = p.(0) +. (2. *. p.(1) *. p.(0)) +. (0.1 *. Rng.unit_float rng) in
      let points, responses = linear_data rng 40 f in
      let full = Model.stepwise ~points ~responses () in
      let mains =
        Model.fit ~terms:(Term.main_effects_only ~dim:2) ~points ~responses
      in
      let aic_of m =
        Model.aic ~p:40 ~m:(List.length (Model.terms m)) ~sigma2:(Model.sigma2 m)
      in
      aic_of full <= aic_of mains +. 1e-9)

let () =
  Alcotest.run "linreg"
    [
      ( "terms",
        [
          Alcotest.test_case "values" `Quick test_term_values;
          Alcotest.test_case "full set count" `Quick test_full_set_count;
          Alcotest.test_case "interactions ordered" `Quick test_interactions_ordered;
          Alcotest.test_case "to_string" `Quick test_term_to_string;
        ] );
      ( "fit",
        [
          Alcotest.test_case "exact linear" `Quick test_fit_exact_linear;
          Alcotest.test_case "predict" `Quick test_predict_matches_manual;
          Alcotest.test_case "no terms raises" `Quick test_fit_no_terms_raises;
        ] );
      ( "stepwise",
        [
          Alcotest.test_case "recovers interaction" `Quick test_stepwise_recovers_interaction;
          Alcotest.test_case "drops noise" `Quick test_stepwise_drops_noise_terms;
          Alcotest.test_case "small sample" `Quick test_stepwise_small_sample;
          Alcotest.test_case "constant response" `Quick test_stepwise_constant_response;
          prop_stepwise_never_worse_than_mains;
        ] );
    ]
