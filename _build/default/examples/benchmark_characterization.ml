(* Benchmark characterization: what does each workload stress?

     dune exec examples/benchmark_characterization.exe

   Runs every synthetic SPEC stand-in on three machines (weak, default,
   strong) and prints the microarchitectural events that explain the CPI
   differences — the kind of table an architecture paper's workload
   section reports, produced here entirely by the simulator substrate. *)

module Sim = Archpred_sim
module Workloads = Archpred_workloads

let weak =
  Sim.Config.make ~pipe_depth:22 ~rob_size:32 ~iq_size:12 ~lsq_size:12
    ~l2_size:(256 * 1024) ~l2_latency:18 ~il1_size:(8 * 1024)
    ~dl1_size:(8 * 1024) ~dl1_latency:4 ()

let strong =
  Sim.Config.make ~pipe_depth:8 ~rob_size:128 ~iq_size:96 ~lsq_size:96
    ~l2_size:(8 * 1024 * 1024) ~l2_latency:6 ~il1_size:(64 * 1024)
    ~dl1_size:(64 * 1024) ~dl1_latency:1 ()

let () =
  Printf.printf "%-12s %7s %7s %7s | %6s %6s %6s %6s %7s\n" "benchmark"
    "weak" "base" "strong" "bp" "il1mr" "dl1mr" "l2mr" "dram/ki";
  print_endline (String.make 86 '-');
  List.iter
    (fun (p : Workloads.Profile.t) ->
      let trace = Workloads.Generator.generate p ~length:50_000 in
      let weak_r = Sim.Processor.run weak trace in
      let base_r = Sim.Processor.run Sim.Config.default trace in
      let strong_r = Sim.Processor.run strong trace in
      Printf.printf "%-12s %7.3f %7.3f %7.3f | %6.3f %6.3f %6.3f %6.3f %7.1f\n"
        p.name weak_r.cpi base_r.cpi strong_r.cpi base_r.branch_accuracy
        base_r.il1_miss_rate base_r.dl1_miss_rate base_r.l2_miss_rate
        (1000. *. float_of_int base_r.dram_accesses
        /. float_of_int base_r.instructions))
    Workloads.Spec2000.all;
  print_newline ();
  print_endline
    "weak/base/strong are CPI at three machines; bp = branch-prediction \
     accuracy;";
  print_endline
    "*mr = miss rates at the base machine; dram/ki = DRAM accesses per \
     kilo-instruction.";
  print_endline
    "Expected shape: mcf most memory-bound (largest weak/strong spread, \
     most DRAM";
  print_endline
    "traffic); crafty/vortex/perlbmk show il1 pressure; equake/ammp are \
     FP-regular."
