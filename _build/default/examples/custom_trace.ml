(* Bring your own trace: file I/O and profile extraction.

     dune exec examples/custom_trace.exe

   The simulator is trace-driven, so any tool that can emit the simple
   text format of Sim.Trace_io can drive it.  This example:
     1. writes a trace to disk and reads it back (what an external
        tracer would produce);
     2. simulates it at two machines;
     3. extracts a statistical profile from it (the statistical-simulation
        workflow) and checks the regenerated clone against the original. *)

module Sim = Archpred_sim
module Workloads = Archpred_workloads

let () =
  (* Stand in for an externally produced trace. *)
  let original =
    Workloads.Generator.generate Workloads.Spec2000.parser ~length:30_000
  in
  let path = Filename.temp_file "archpred" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sim.Trace_io.save original path;
      Printf.printf "wrote %d instructions to %s (%d bytes)\n"
        (Sim.Trace.length original) path (Unix.stat path).Unix.st_size;
      let trace = Sim.Trace_io.load path in

      let weak =
        Sim.Config.make ~pipe_depth:20 ~rob_size:40 ~iq_size:16 ~lsq_size:16
          ~l2_size:(512 * 1024) ~l2_latency:16 ~il1_size:(16 * 1024)
          ~dl1_size:(16 * 1024) ~dl1_latency:3 ()
      in
      Printf.printf "\nsimulated CPI: default %.3f, weak machine %.3f\n"
        (Sim.Processor.cpi Sim.Config.default trace)
        (Sim.Processor.cpi weak trace);

      (* Statistical simulation: profile the trace, regenerate a clone. *)
      let profile = Workloads.Extractor.profile_of_trace ~name:"clone" trace in
      Format.printf "\nextracted profile:@.%a@." Workloads.Profile.pp profile;
      let clone = Workloads.Generator.generate ~seed:7 profile ~length:30_000 in
      Printf.printf "\noriginal vs clone CPI at the default machine: %.3f vs %.3f\n"
        (Sim.Processor.cpi Sim.Config.default trace)
        (Sim.Processor.cpi Sim.Config.default clone))
