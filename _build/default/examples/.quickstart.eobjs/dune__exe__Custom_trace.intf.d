examples/custom_trace.mli:
