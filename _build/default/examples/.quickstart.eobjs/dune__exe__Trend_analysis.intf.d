examples/trend_analysis.mli:
