examples/power_model.mli:
