examples/custom_trace.ml: Archpred_sim Archpred_workloads Filename Format Fun Printf Sys Unix
