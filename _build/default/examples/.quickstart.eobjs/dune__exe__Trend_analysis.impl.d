examples/trend_analysis.ml: Archpred_core Archpred_design Archpred_stats Archpred_workloads Array Float List Printf String
