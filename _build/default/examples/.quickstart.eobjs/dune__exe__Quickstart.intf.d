examples/quickstart.mli:
