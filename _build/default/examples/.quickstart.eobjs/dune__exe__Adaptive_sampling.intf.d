examples/adaptive_sampling.mli:
