(* Quickstart: train a CPI model for one benchmark and use it in place of
   the simulator.

     dune exec examples/quickstart.exe

   Steps (the paper's BuildRBFmodel procedure, section 1):
     1. take the 9-parameter design space of Table 1;
     2. draw a discrepancy-optimised latin hypercube sample;
     3. simulate the benchmark at each sampled design point;
     4. grow a regression tree, place RBFs on its regions, select centers
        by AICc and fit the weights;
     5. check accuracy on independent random test points. *)

module Stats = Archpred_stats
module Core = Archpred_core
module Workloads = Archpred_workloads
module Obs = Archpred_obs

let () =
  let benchmark = Workloads.Spec2000.twolf in

  (* Observability: stream structured metrics to quickstart_metrics.jsonl
     and keep an in-process handle for the span-tree report at the end. *)
  let metrics = open_out "quickstart_metrics.jsonl" in
  let obs = Obs.create ~sink:(Obs.Sink.jsonl_channel metrics) () in

  (* The response: CPI of a synthetic twolf-like trace, simulated at any
     point of the design space.  Results are memoised. *)
  let response =
    Core.Response.simulator ~obs ~trace_length:40_000 benchmark
  in

  (* Train on 70 simulations.  All knobs live in one Config.t record;
     start from the defaults and override what you need. *)
  let config =
    Core.Config.default
    |> Core.Config.with_seed 42
    |> Core.Config.with_sample_size 70
    |> Core.Config.with_trace_length 40_000
    |> Core.Config.with_obs obs
  in
  Printf.printf "training a CPI model for %s on 70 simulations...\n%!"
    benchmark.Workloads.Profile.name;
  let trained =
    Core.Build.train ~config ~space:Core.Paper_space.space ~response ()
  in
  let predictor = trained.Core.Build.predictor in
  Printf.printf "model: %d RBF centers, p_min=%d, alpha=%.0f\n"
    (Core.Predictor.n_centers predictor)
    predictor.Core.Predictor.p_min predictor.Core.Predictor.alpha;

  (* Validate on 20 independent random configurations. *)
  let test = Core.Paper_space.test_points (Stats.Rng.create 43) ~n:20 in
  let actual = Core.Response.evaluate_many response test in
  let err = Core.Predictor.errors_on predictor ~points:test ~actual in
  Printf.printf "test error: mean %.2f%%, max %.2f%%\n\n" err.mean_pct
    err.max_pct;

  (* Use the model: predict CPI for a configuration given in natural
     units — no simulation involved. *)
  let natural =
    (* pipe_depth rob iq_ratio lsq_ratio l2_size l2_lat il1 dl1 dl1_lat *)
    [| 12.; 96.; 0.5; 0.5; 4194304.; 9.; 32768.; 32768.; 2. |]
  in
  let predicted = Core.Predictor.predict_natural predictor natural in
  let simulated =
    response.Core.Response.eval
      (Archpred_design.Space.encode Core.Paper_space.space natural)
  in
  Printf.printf
    "12-deep, 96-entry ROB, 4MB L2 @ 9 cycles, 32KB L1s @ 2 cycles:\n";
  Printf.printf "  predicted CPI %.4f   simulated CPI %.4f\n" predicted
    simulated;

  (* Flush the metrics stream and print the span-tree timing summary. *)
  Obs.close obs;
  close_out metrics;
  Printf.printf "\nmetrics written to quickstart_metrics.jsonl\n";
  Obs.report obs Format.std_formatter
