(* Power modeling: the paper's conclusion suggests "similar models can be
   developed for other metrics such as power consumption".

     dune exec examples/power_model.exe

   Train two RBF models for the same benchmark — one predicting CPI, one
   predicting energy per instruction — then use them together to find an
   energy-delay sweet spot without further simulation. *)

module Stats = Archpred_stats
module Core = Archpred_core
module Workloads = Archpred_workloads

let () =
  let rng = Stats.Rng.create 31 in
  let benchmark = Workloads.Spec2000.equake in
  let cpi_response = Core.Response.simulator ~trace_length:40_000 benchmark in
  let epi_response =
    Core.Response.simulator_metric ~trace_length:40_000
      ~metric:Core.Response.Energy_per_instruction benchmark
  in
  Printf.printf "training CPI and EPI models for %s (70 simulations each)...\n%!"
    benchmark.Workloads.Profile.name;
  let space = Core.Paper_space.space in
  let config =
    Core.Config.default
    |> Core.Config.with_rng rng
    |> Core.Config.with_sample_size 70
  in
  let cpi_model = Core.Build.train ~config ~space ~response:cpi_response () in
  let epi_model = Core.Build.train ~config ~space ~response:epi_response () in

  (* Validate both models. *)
  let test = Core.Paper_space.test_points rng ~n:20 in
  let report name model response =
    let actual = Core.Response.evaluate_many response test in
    let err =
      Core.Predictor.errors_on model.Core.Build.predictor ~points:test ~actual
    in
    Printf.printf "%s model: mean error %.2f%%, max %.2f%%\n" name
      err.Stats.Error_metrics.mean_pct err.Stats.Error_metrics.max_pct
  in
  report "CPI" cpi_model cpi_response;
  report "EPI" epi_model epi_response;

  (* Model-driven EDP minimisation: predicted CPI x predicted EPI. *)
  let best = ref None in
  let evaluations = 5_000 in
  for _ = 1 to evaluations do
    let p = Array.init 9 (fun _ -> Stats.Rng.unit_float rng) in
    let edp =
      Core.Predictor.predict cpi_model.Core.Build.predictor p
      *. Core.Predictor.predict epi_model.Core.Build.predictor p
    in
    match !best with
    | Some (_, e) when e <= edp -> ()
    | Some _ | None -> best := Some (p, edp)
  done;
  match !best with
  | None -> assert false
  | Some (p, edp) ->
      Printf.printf
        "\nbest predicted energy-delay product over %d candidates: %.4f\n"
        evaluations edp;
      Format.printf "at %a@."
        (Archpred_design.Space.pp_point space)
        p;
      (* confirm with one simulation of each metric *)
      let cpi = cpi_response.Core.Response.eval p in
      let epi = epi_response.Core.Response.eval p in
      Printf.printf "confirming simulation: CPI %.4f x EPI %.4f = EDP %.4f\n"
        cpi epi (cpi *. epi)
