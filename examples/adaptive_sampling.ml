(* Adaptive sampling: the paper's future-work idea (section 6), "wherein
   sets of design points to simulate are selected based on data from
   initial small samples".

     dune exec examples/adaptive_sampling.exe

   Runs the adaptive loop for a memory-bound benchmark and compares the
   result, at the same simulation budget, against one-shot latin hypercube
   sampling. *)

module Stats = Archpred_stats
module Core = Archpred_core
module Workloads = Archpred_workloads

let () =
  let rng = Stats.Rng.create 17 in
  let benchmark = Workloads.Spec2000.mcf in
  let response = Core.Response.simulator ~trace_length:40_000 benchmark in
  let space = Core.Paper_space.space in

  Printf.printf "adaptive sampling for %s: 30 initial + 3 rounds of 15...\n%!"
    benchmark.Workloads.Profile.name;
  let adaptive =
    Core.Adaptive.run ~initial:30 ~batch:15 ~rounds:3 ~rng ~space ~response ()
  in
  List.iter
    (fun (s : Core.Adaptive.step) ->
      Printf.printf "  round at n=%-3d  cross-validated error %.2f%%\n"
        s.Core.Adaptive.sample_size s.Core.Adaptive.cv_error_pct)
    adaptive.Core.Adaptive.steps;
  let budget = adaptive.Core.Adaptive.total_simulations in

  Printf.printf "\none-shot LHS at the same budget (%d simulations)...\n%!"
    budget;
  let one_shot =
    let config =
      Core.Config.default
      |> Core.Config.with_rng rng
      |> Core.Config.with_sample_size budget
    in
    Core.Build.train ~config ~space ~response ()
  in

  let test = Core.Paper_space.test_points rng ~n:30 in
  let actual = Core.Response.evaluate_many response test in
  let err name predictor =
    let e = Core.Predictor.errors_on predictor ~points:test ~actual in
    Printf.printf "%-14s mean %.2f%%  max %.2f%%\n" name
      e.Stats.Error_metrics.mean_pct e.Stats.Error_metrics.max_pct
  in
  print_newline ();
  err "adaptive" adaptive.Core.Adaptive.trained.Core.Build.predictor;
  err "one-shot LHS" one_shot.Core.Build.predictor
