(* Design-space exploration: the paper's motivating use case.

     dune exec examples/design_space_exploration.exe

   An architect wants the best-performing configuration for a
   memory-intensive workload (mcf) subject to an area budget: the sum of
   cache capacities must stay below 3MB and the ROB below 100 entries.
   Exhaustive simulation of the 9-dimensional space is out of the
   question; instead we train an RBF model on ~90 simulations and run the
   search against the model (thousands of model evaluations per second),
   then verify the winner with one final simulation. *)

module Stats = Archpred_stats
module Design = Archpred_design
module Core = Archpred_core
module Workloads = Archpred_workloads

let area_budget_bytes = 3 * 1024 * 1024
let rob_budget = 100

let within_budget point =
  let v = Design.Space.decode Core.Paper_space.space point in
  let l2 = int_of_float v.(4)
  and il1 = int_of_float v.(6)
  and dl1 = int_of_float v.(7) in
  l2 + il1 + dl1 <= area_budget_bytes && int_of_float v.(1) <= rob_budget

let () =
  let benchmark = Workloads.Spec2000.mcf in

  (* Collect span timings and counters in-process; the report at the end
     shows where the time went (sampling, simulation, tuning, search). *)
  let obs = Archpred_obs.create () in
  let response =
    Core.Response.simulator ~obs ~trace_length:40_000 benchmark
  in

  let config =
    Core.Config.default
    |> Core.Config.with_seed 7
    |> Core.Config.with_sample_size 90
    |> Core.Config.with_trace_length 40_000
    |> Core.Config.with_obs obs
  in
  Printf.printf "training model for %s on 90 simulations...\n%!"
    benchmark.Workloads.Profile.name;
  let t0 = Unix.gettimeofday () in
  let trained =
    Core.Build.train ~config ~space:Core.Paper_space.space ~response ()
  in
  Printf.printf "trained in %.1fs\n\n%!" (Unix.gettimeofday () -. t0);

  Printf.printf "searching (budget: caches <= %dKB total, ROB <= %d)...\n%!"
    (area_budget_bytes / 1024) rob_budget;
  let t0 = Unix.gettimeofday () in
  let result =
    Core.Search.minimize ~config ~constraint_:within_budget
      ~predictor:trained.Core.Build.predictor ()
  in
  Printf.printf "searched %d candidate designs in %.2fs\n"
    result.Core.Search.evaluations
    (Unix.gettimeofday () -. t0);

  Format.printf "@.best feasible design:@.  %a@."
    (Design.Space.pp_point Core.Paper_space.space)
    result.Core.Search.point;
  let simulated = response.Core.Response.eval result.Core.Search.point in
  Printf.printf "predicted CPI %.4f; confirming simulation gives %.4f\n"
    result.Core.Search.predicted simulated;

  (* Contrast with the naive alternative: the best of the 90 *training*
     simulations that fits the budget. *)
  let best_sampled = ref None in
  Array.iteri
    (fun i p ->
      if within_budget p then
        let cpi = trained.Core.Build.sample_responses.(i) in
        match !best_sampled with
        | Some (_, c) when c <= cpi -> ()
        | Some _ | None -> best_sampled := Some (p, cpi))
    trained.Core.Build.sample;
  (match !best_sampled with
  | Some (_, cpi) ->
      Printf.printf
        "best feasible point among the 90 training simulations: CPI %.4f\n"
        cpi;
      Printf.printf "model-driven search %s it.\n"
        (if simulated < cpi then "beats" else "matches")
  | None -> Printf.printf "no training point fit the budget.\n");

  (* Where did the time go?  Span-tree summary plus counters. *)
  Archpred_obs.close obs;
  print_newline ();
  Archpred_obs.report obs Format.std_formatter
