(* Trend analysis: does the model capture parameter interactions?

     dune exec examples/trend_analysis.exe

   Recreates the section 4.1 workflow on vortex: train a model, then sweep
   the instruction-cache size against the L2 latency and compare the
   model's predicted CPI curves with simulation, rendered as ASCII
   sparklines. *)

module Stats = Archpred_stats
module Design = Archpred_design
module Core = Archpred_core
module Workloads = Archpred_workloads

let sparkline values lo hi =
  let glyphs = [| '_'; '.'; '-'; '='; '*'; '#' |] in
  String.init (Array.length values) (fun i ->
      let t = (values.(i) -. lo) /. Float.max 1e-9 (hi -. lo) in
      glyphs.(max 0 (min 5 (int_of_float (t *. 5.99)))))

let () =
  let rng = Stats.Rng.create 11 in
  let benchmark = Workloads.Spec2000.vortex in
  let response = Core.Response.simulator ~trace_length:40_000 benchmark in
  Printf.printf "training model for %s on 80 simulations...\n%!"
    benchmark.Workloads.Profile.name;
  let config =
    Core.Config.default
    |> Core.Config.with_rng rng
    |> Core.Config.with_sample_size 80
  in
  let trained =
    Core.Build.train ~config ~space:Core.Paper_space.space ~response ()
  in
  let space = Core.Paper_space.space in
  let dim_il1 = Design.Space.index_of space "il1_size" in
  let dim_l2lat = Design.Space.index_of space "L2_lat" in
  let base = Array.make Core.Paper_space.dim 0.5 in
  let series =
    Core.Trend.sweep ~simulate:response
      ~predictor:trained.Core.Build.predictor ~base ~dim1:dim_il1 ~steps1:4
      ~dim2:dim_l2lat ~steps2:10 ()
  in
  (* Common scale across all series. *)
  let all =
    Array.to_list series
    |> List.concat_map (fun (s : Core.Trend.series) ->
           Array.to_list s.predicted
           @
           match s.simulated with
           | Some sim -> Array.to_list sim
           | None -> [])
  in
  let lo = List.fold_left Float.min infinity all in
  let hi = List.fold_left Float.max neg_infinity all in
  Printf.printf "\nCPI vs L2 latency (20 -> 5 cycles), one row per il1 size\n";
  Printf.printf "scale: %.3f (_) .. %.3f (#)\n\n" lo hi;
  Array.iter
    (fun (s : Core.Trend.series) ->
      let sim =
        match s.simulated with Some v -> v | None -> assert false
      in
      Printf.printf "il1 %3.0fKB  simulated %s\n" (s.dim1_value /. 1024.)
        (sparkline sim lo hi);
      Printf.printf "           predicted %s\n\n" (sparkline s.predicted lo hi))
    series;
  (* Quantify trend agreement with rank correlation. *)
  Array.iter
    (fun (s : Core.Trend.series) ->
      let sim = match s.simulated with Some v -> v | None -> assert false in
      Printf.printf
        "il1 %3.0fKB: Spearman rank correlation (model vs simulator) = %.3f\n"
        (s.dim1_value /. 1024.)
        (Stats.Correlation.spearman sim s.predicted))
    series
