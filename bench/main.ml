(* The benchmark harness.

   Two layers, matching deliverable (d) of DESIGN.md:

   1. The *reproduction harness*: running this executable regenerates every
      table and figure of the paper's evaluation (plus the ablations in
      DESIGN.md), printing measured rows next to the published ones.
      Experiment ids can be given on the command line to run a subset.

   2. A Bechamel micro-benchmark per table/figure: the computational kernel
      each experiment leans on (simulation, sampling, discrepancy, tree
      construction, center selection, ...), timed precisely.

   Usage:
     bench/main.exe                 run experiments (ARCHPRED_SCALE) + micro
     bench/main.exe table3 fig7     run the named experiments only
     bench/main.exe --micro         run only the micro-benchmarks
     bench/main.exe --crashsafe     measure checkpoint-journal overhead
     bench/main.exe --sim           batched-simulation throughput record
     bench/main.exe --shard         sharded-search speedup record
     bench/main.exe --paper         run only the paper's tables and figures
     bench/main.exe --trace         print a span-tree summary after the runs
     bench/main.exe --metrics FILE  stream observability events as JSON lines
*)

module Experiments = Archpred_experiments
module Core = Archpred_core
module Shard = Archpred_shard
module Design = Archpred_design
module Stats = Archpred_stats
module Rbf = Archpred_rbf
module Tree = Archpred_regtree.Tree
module Linreg = Archpred_linreg
module Ils = Archpred_linalg.Incremental_ls

(* ------------------------------------------------------------------ *)
(* Micro-benchmark fixtures: small, deterministic work items.          *)
(* ------------------------------------------------------------------ *)

let fixture_rng () = Stats.Rng.create 7

let fixture_trace =
  lazy
    (Archpred_workloads.Generator.generate ~seed:7
       Archpred_workloads.Spec2000.mcf ~length:5_000)

let fixture_sample =
  lazy
    (let rng = fixture_rng () in
     Design.Lhs.sample rng Core.Paper_space.space ~n:90)

let fixture_responses =
  lazy
    (let resp = Core.Response.synthetic_smooth ~dim:9 in
     Array.map resp.Core.Response.eval (Lazy.force fixture_sample))

let fixture_tree =
  lazy
    (Tree.build ~p_min:1 ~dim:9 ~points:(Lazy.force fixture_sample)
       ~responses:(Lazy.force fixture_responses) ())

let fixture_sample_256 =
  lazy
    (let rng = Stats.Rng.create 11 in
     Design.Lhs.sample rng Core.Paper_space.space ~n:256)

(* Full RBF design matrix over the tree candidates, plus a mid-size base
   subset and one extra column: the unit of work of the selection walk. *)
let fixture_selection =
  lazy
    (let tree = Lazy.force fixture_tree in
     let candidates = Rbf.Tree_centers.of_tree ~alpha:7. tree in
     let centers = Array.map (fun c -> c.Rbf.Tree_centers.center) candidates in
     let design =
       Rbf.Network.design_matrix centers (Lazy.force fixture_sample)
     in
     let responses = Lazy.force fixture_responses in
     let m = Array.length candidates in
     let base = List.init (min 12 (m - 1)) Fun.id in
     let extra = min (m - 1) 20 in
     (design, responses, base, extra))

let fixture_predictor =
  lazy
    (let tree = Lazy.force fixture_tree in
     let candidates = Rbf.Tree_centers.of_tree ~alpha:7. tree in
     let selection =
       Rbf.Selection.select ~tree ~candidates
         ~points:(Lazy.force fixture_sample)
         ~responses:(Lazy.force fixture_responses)
         ()
     in
     Core.Predictor.make ~space:Core.Paper_space.space
       ~network:selection.Rbf.Selection.network ~tree ~p_min:1 ~alpha:7. ())

(* One micro-benchmark per table/figure: the kernel that dominates the
   experiment's cost. *)
let micro_tests =
  [
    ( "table1_space_decode",
      fun () ->
        let p = Array.make 9 0.5 in
        ignore (Design.Space.decode Core.Paper_space.space p) );
    ( "table2_test_point_draw",
      let rng = fixture_rng () in
      fun () -> ignore (Core.Paper_space.test_points rng ~n:50) );
    ( "table3_simulate_5k_insts",
      let trace = Lazy.force fixture_trace in
      fun () ->
        ignore (Archpred_sim.Processor.cpi Archpred_sim.Config.default trace)
    );
    ( "table4_tune_grid_cell",
      let tree = Lazy.force fixture_tree in
      let points = Lazy.force fixture_sample in
      let responses = Lazy.force fixture_responses in
      fun () ->
        let candidates = Rbf.Tree_centers.of_tree ~alpha:7. tree in
        ignore (Rbf.Selection.select ~tree ~candidates ~points ~responses ())
    );
    ( "table5_tree_build",
      let points = Lazy.force fixture_sample in
      let responses = Lazy.force fixture_responses in
      fun () -> ignore (Tree.build ~p_min:1 ~dim:9 ~points ~responses ()) );
    ( "fig1_config_decode",
      fun () ->
        let p = Array.make 9 0.5 in
        ignore (Core.Paper_space.to_config p) );
    ( "fig2_l2star_discrepancy_n90",
      let sample = Lazy.force fixture_sample in
      fun () -> ignore (Design.Discrepancy.l2_star sample) );
    ( "fig3_network_eval",
      let predictor = Lazy.force fixture_predictor in
      let p = Array.make 9 0.5 in
      fun () -> ignore (Core.Predictor.predict predictor p) );
    (* The same model through the batched kernel, 256 points per run:
       divide by 256 for the per-point figure the serve report tracks. *)
    ( "fig3_network_eval_batch256",
      let predictor = Lazy.force fixture_predictor in
      let rng = Stats.Rng.create 17 in
      let points =
        Array.init 256 (fun _ -> Array.init 9 (fun _ -> Stats.Rng.unit_float rng))
      in
      fun () -> ignore (Core.Predictor.predict_batch predictor points) );
    (* A warm memo hit: the short-circuit path serving traffic sees. *)
    ( "serve_memo_hit",
      let predictor = Lazy.force fixture_predictor in
      let cache =
        Core.Memo.create ~capacity:16 ~space:Core.Paper_space.space
          ~sample_size:90 ()
      in
      let p =
        Design.Space.snap Core.Paper_space.space ~sample_size:90
          (Array.make 9 0.5)
      in
      let points = [| p |] in
      ignore (Core.Predictor.predict_batch ~cache predictor points);
      fun () -> ignore (Core.Predictor.predict_batch ~cache predictor points) );
    ( "fig4_lhs_sample_n90",
      let rng = fixture_rng () in
      fun () -> ignore (Design.Lhs.sample rng Core.Paper_space.space ~n:90) );
    ( "fig5_split_enumeration",
      let tree = Lazy.force fixture_tree in
      fun () -> ignore (Tree.splits tree) );
    ( "fig6_trend_predict_grid",
      let predictor = Lazy.force fixture_predictor in
      fun () ->
        let base = Array.make 9 0.5 in
        ignore
          (Core.Trend.sweep ~predictor ~base ~dim1:6 ~steps1:4 ~dim2:5
             ~steps2:6 ()) );
    ( "fig7_linear_stepwise",
      let points = Lazy.force fixture_sample in
      let responses = Lazy.force fixture_responses in
      fun () -> ignore (Linreg.Model.stepwise ~points ~responses ()) );
    (* Domain-pool dispatch cost: map a trivial function with at least two
       domains so the pooled path (not the serial shortcut) is exercised
       even on a single-core host. *)
    ( "parallel_map_overhead",
      let domains = max 2 (Stats.Parallel.default_domains ()) in
      let xs = Array.init 256 float_of_int in
      fun () -> ignore (Stats.Parallel.map ~domains (fun x -> x +. 1.) xs) );
    (* The i/j-symmetric pair kernel at a size where the halved pair count
       dominates (n=256: 32k ordered pairs instead of 65k). *)
    ( "l2star_symmetric_n256",
      let sample = Lazy.force fixture_sample_256 in
      fun () -> ignore (Design.Discrepancy.l2_star sample) );
    (* One candidate step of center selection, both ways: a full QR refit
       of the subset versus an incremental push / score / pop on a shared
       Cholesky factor of the normal equations. *)
    ( "selection_score_full",
      let design, responses, base, extra = Lazy.force fixture_selection in
      let cols = base @ [ extra ] in
      fun () ->
        ignore
          (Rbf.Selection.evaluate_subset ~criterion:Rbf.Criteria.Aicc ~design
             ~responses cols) );
    ( "selection_score_incremental",
      let design, responses, base, extra = Lazy.force fixture_selection in
      let scorer = Rbf.Subset_scorer.create ~design ~responses in
      let fac = Ils.factor (Rbf.Subset_scorer.incremental scorer) in
      assert (Ils.set fac base);
      fun () ->
        if Ils.push fac extra then begin
          ignore
            (Rbf.Subset_scorer.score_factor scorer fac
               ~criterion:Rbf.Criteria.Aicc);
          Ils.pop fac
        end );
  ]

(* Machine-readable results for regression tracking.  The group prefix
   Bechamel adds ("archpred/") is stripped so names match micro_tests.
   Carries the same metadata stamp as BENCH_serve.json (domains,
   git describe, SIMD level) plus the batch size each bench runs at. *)
let batch_size_of name =
  match String.rindex_opt name '_' with
  | Some i
    when String.length name > i + 6
         && String.equal (String.sub name (i + 1) 5) "batch" -> (
      match int_of_string_opt (String.sub name (i + 6) (String.length name - i - 6)) with
      | Some b -> b
      | None -> 1)
  | _ -> 1

let write_bench_json measured =
  let module Json = Archpred_obs.Json in
  let path = "BENCH_parallel.json" in
  let strip name =
    match String.index_opt name '/' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  let results =
    List.map
      (fun (name, ns) ->
        let name = strip name in
        Json.Obj
          [
            ("name", Json.String name);
            ("ns_per_run", Json.Float ns);
            ("batch_size", Json.Int (batch_size_of name));
          ])
      measured
  in
  (* [preserved] keeps the batched-simulation section written by
     [bench --sim], so the two writers share the report file. *)
  Core.Bench_report.write ~path ~schema:"archpred-parallel-v1"
    (Core.Bench_report.preserved ~path [ "sim" ]
    @ [ ("results", Json.List results) ]);
  Printf.printf "\nwrote %s\n" path

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  print_newline ();
  print_endline (String.make 78 '=');
  print_endline "Micro-benchmarks (Bechamel, monotonic clock)";
  print_endline (String.make 78 '=');
  let tests =
    List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) micro_tests
  in
  let grouped = Test.make_grouped ~name:"archpred" tests in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Stats.Tbl.sorted_bindings ~cmp:String.compare results in
  Printf.printf "%-42s %16s\n" "benchmark" "time/run";
  print_endline (String.make 60 '-');
  let measured =
    List.filter_map
      (fun (name, v) ->
        match Analyze.OLS.estimates v with
        | Some (t :: _) ->
            let pretty =
              if t > 1e9 then Printf.sprintf "%.3f s" (t /. 1e9)
              else if t > 1e6 then Printf.sprintf "%.3f ms" (t /. 1e6)
              else if t > 1e3 then Printf.sprintf "%.3f us" (t /. 1e3)
              else Printf.sprintf "%.1f ns" t
            in
            Printf.printf "%-42s %16s\n" name pretty;
            Some (name, t)
        | Some [] | None ->
            Printf.printf "%-42s %16s\n" name "n/a";
            None)
      rows
  in
  write_bench_json measured

(* ------------------------------------------------------------------ *)
(* Serving load test: the batched-kernel throughput report.            *)
(* ------------------------------------------------------------------ *)

(* Sweep batch sizes over the same total prediction count so the rows
   are comparable; BENCH_serve.json is the committed record of the
   batched kernel's speedup over the scalar reference, plus two extra
   sections: the live-daemon load test and the batched-memo fix. *)

(* The per-lookup memo path measured at the PR-7 commit (batch 256,
   same fixture and machine class): the committed baseline the batched
   probe/commit rework is judged against. *)
let memo_before_batch256 = (294.47, 132.16)

(* Drive a live daemon (own domain, temp Unix socket) with [stream]
   and return the client's load record and the daemon's exit stats. *)
let daemon_load ~tweak ~pipeline stream =
  let module Daemon = Archpred_serve_net.Daemon in
  let module Client = Archpred_serve_net.Client in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "archpred_bench_%d.sock" (Unix.getpid ()))
  in
  let predictor = Lazy.force fixture_predictor in
  let control = Daemon.control () in
  let cfg =
    tweak
      {
        Daemon.default with
        Daemon.listener = Daemon.Unix_socket sock;
        tick_s = 0.002;
      }
  in
  let dom = Domain.spawn (fun () -> Daemon.run ~control ~predictor cfg) in
  let c = Client.connect (Daemon.Unix_socket sock) in
  let load =
    Client.drive c Archpred_serve_net.Frame.Binary_wire ~pipeline stream
  in
  Client.close c;
  Daemon.request_drain control;
  let stats = Domain.join dom in
  (load, stats)

(* K concurrent connections against one daemon, one client domain each:
   the aggregate-throughput record a single socket cannot show (the
   single-connection row is client-bound).  Aggregate throughput is
   total answered predictions over the whole phase's wall-clock; each
   client also reports its own p99. *)
let multi_client_load ~clients ~pipeline streams =
  let module Daemon = Archpred_serve_net.Daemon in
  let module Client = Archpred_serve_net.Client in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "archpred_bench_mc_%d.sock" (Unix.getpid ()))
  in
  let predictor = Lazy.force fixture_predictor in
  let control = Daemon.control () in
  let cfg =
    { Daemon.default with Daemon.listener = Daemon.Unix_socket sock;
      tick_s = 0.002 }
  in
  let dom = Domain.spawn (fun () -> Daemon.run ~control ~predictor cfg) in
  (* One connection up front so the wall-clock below measures driving,
     not the daemon binding its socket. *)
  let probe = Client.connect (Daemon.Unix_socket sock) in
  Client.close probe;
  let t0 = Unix.gettimeofday () in
  let doms =
    Array.init clients (fun c ->
        Domain.spawn (fun () ->
            let conn = Client.connect (Daemon.Unix_socket sock) in
            let load =
              Client.drive conn Archpred_serve_net.Frame.Binary_wire ~pipeline
                streams.(c)
            in
            Client.close conn;
            load))
  in
  let loads = Array.map Domain.join doms in
  let wall = Unix.gettimeofday () -. t0 in
  Daemon.request_drain control;
  let stats = Domain.join dom in
  (loads, wall, stats)

let run_serve () =
  let module Json = Archpred_obs.Json in
  let module Client = Archpred_serve_net.Client in
  let module Daemon = Archpred_serve_net.Daemon in
  let predictor = Lazy.force fixture_predictor in
  let total = 65_536 in
  let results =
    List.map
      (fun batch_size ->
        let config =
          {
            Core.Serve.default with
            Core.Serve.batch_size;
            batches = total / batch_size;
          }
        in
        let r = Core.Serve.run ~predictor config in
        Printf.printf
          "batch %4d: %8.1f ns/pt batched (%5.1f ns/pt raw kernel, %8.1f \
           ns/pt scalar, %6.2fx), %6.1f ns/pt cached, hit rate %.3f\n%!"
          batch_size r.Core.Serve.batch_ns_per_point
          r.Core.Serve.kernel_ns_per_point r.Core.Serve.scalar_ns_per_point
          r.Core.Serve.speedup_vs_scalar r.Core.Serve.cached_ns_per_point
          r.Core.Serve.hit_rate;
        r)
      [ 1; 16; 64; 256 ]
  in
  (* the memo-fix record: committed per-lookup baseline vs this run *)
  let memo_fix =
    let r256 = List.nth results 3 in
    let before_cached, before_kernel = memo_before_batch256 in
    Printf.printf
      "memo fix @256: cached %.1f -> %.1f ns/pt (kernel %.1f -> %.1f)\n%!"
      before_cached r256.Core.Serve.cached_ns_per_point before_kernel
      r256.Core.Serve.kernel_ns_per_point;
    Json.Obj
      [
        ("batch_size", Json.Int 256);
        ("before_cached_ns_per_point", Json.Float before_cached);
        ("before_kernel_ns_per_point", Json.Float before_kernel);
        ("after_cached_ns_per_point",
         Json.Float r256.Core.Serve.cached_ns_per_point);
        ("after_kernel_ns_per_point",
         Json.Float r256.Core.Serve.kernel_ns_per_point);
        ("cached_le_kernel",
         Json.Bool
           (r256.Core.Serve.cached_ns_per_point
          <= r256.Core.Serve.kernel_ns_per_point));
      ]
  in
  (* the daemon load test: a steady stream over a reused point pool,
     then the same stream against a tiny ingress bound at double the
     pipelining — the overload record *)
  let space = Core.Paper_space.space in
  let dim = Design.Space.dimension space in
  let rng = fixture_rng () in
  let pool =
    Array.init 512 (fun _ ->
        Design.Space.snap space ~sample_size:90
          (Array.init dim (fun _ -> Stats.Rng.unit_float rng)))
  in
  let stream = Array.init 16_384 (fun i -> pool.(i mod Array.length pool)) in
  let load, stats = daemon_load ~tweak:Fun.id ~pipeline:256 stream in
  Printf.printf
    "daemon: %8.0f predictions/s  p50 %6.1f us  p99 %6.1f us  p999 %6.1f us \
     (%d ok / %d sent)\n%!"
    load.Client.throughput (load.Client.p50_ns /. 1e3)
    (load.Client.p99_ns /. 1e3)
    (load.Client.p999_ns /. 1e3)
    load.Client.ok load.Client.sent;
  let over_load, over_stats =
    daemon_load
      ~tweak:(fun c -> { c with Daemon.max_pending = 64; max_batch = 64 })
      ~pipeline:512 stream
  in
  Printf.printf
    "daemon 2x overload: %d shed, %d timeouts of %d sent (%d served, 0 \
     lost: %b)\n%!"
    over_load.Client.shed over_load.Client.timeouts over_load.Client.sent
    over_load.Client.ok
    (over_stats.Daemon.lost = 0);
  let clients = 4 in
  let streams =
    Array.init clients (fun c ->
        Array.init 8_192 (fun i ->
            pool.(((c * 131) + (i * 7)) mod Array.length pool)))
  in
  let mc_loads, mc_wall, mc_stats = multi_client_load ~clients ~pipeline:64 streams in
  let mc_ok = Array.fold_left (fun a l -> a + l.Client.ok) 0 mc_loads in
  let mc_sent = Array.fold_left (fun a l -> a + l.Client.sent) 0 mc_loads in
  let mc_throughput = float_of_int mc_ok /. mc_wall in
  let mc_worst_p99 =
    Array.fold_left (fun a l -> Float.max a l.Client.p99_ns) 0. mc_loads
  in
  Printf.printf
    "daemon %d clients: %8.0f predictions/s aggregate  per-client p99 %s us \
     (worst %6.1f us, %d ok / %d sent, %d lost)\n%!"
    clients mc_throughput
    (String.concat " "
       (Array.to_list
          (Array.map
             (fun l -> Printf.sprintf "%.1f" (l.Client.p99_ns /. 1e3))
             mc_loads)))
    (mc_worst_p99 /. 1e3) mc_ok mc_sent mc_stats.Daemon.lost;
  let multi_client =
    Json.Obj
      [
        ("clients", Json.Int clients);
        ("pipeline", Json.Int 64);
        ("requests", Json.Int mc_sent);
        ("ok", Json.Int mc_ok);
        ("wall_s", Json.Float mc_wall);
        ("aggregate_predictions_per_sec", Json.Float mc_throughput);
        ( "per_client_p99_ns",
          Json.List
            (Array.to_list
               (Array.map (fun l -> Json.Float l.Client.p99_ns) mc_loads)) );
        ("worst_p99_ns", Json.Float mc_worst_p99);
        ("lost", Json.Int mc_stats.Daemon.lost);
        ("connections", Json.Int mc_stats.Daemon.connections);
      ]
  in
  let daemon =
    Json.Obj
      [
        ("listener", Json.String "unix");
        ("pipeline", Json.Int 256);
        ("requests", Json.Int load.Client.sent);
        ("predictions_per_sec", Json.Float load.Client.throughput);
        ("p50_ns", Json.Float load.Client.p50_ns);
        ("p99_ns", Json.Float load.Client.p99_ns);
        ("p999_ns", Json.Float load.Client.p999_ns);
        ("ok", Json.Int load.Client.ok);
        ("shed", Json.Int load.Client.shed);
        ("timeouts", Json.Int load.Client.timeouts);
        ("lost", Json.Int stats.Daemon.lost);
        ("cache_hits", Json.Int stats.Daemon.cache.Core.Memo.hits);
        ("checksum", Json.Float load.Client.checksum);
        ( "overload",
          Json.Obj
            [
              ("max_pending", Json.Int 64);
              ("pipeline", Json.Int 512);
              ("requests", Json.Int over_load.Client.sent);
              ("ok", Json.Int over_load.Client.ok);
              ("shed", Json.Int over_load.Client.shed);
              ("timeouts", Json.Int over_load.Client.timeouts);
              ("lost", Json.Int over_stats.Daemon.lost);
            ] );
      ]
  in
  let path = "BENCH_serve.json" in
  Core.Serve.write_json ~path
    ~extra:
      [
        ("daemon", daemon);
        ("multi_client", multi_client);
        ("memo_fix", memo_fix);
      ]
    results;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Batched simulation: throughput and speedup of the multi-config core. *)
(* ------------------------------------------------------------------ *)

let run_sim () =
  let r = Core.Sim_bench.run ~trace_length:20_000 ~n_configs:16 () in
  Printf.printf "batched simulation (mcf, %d insts, %d configs)\n"
    r.Core.Sim_bench.trace_length r.Core.Sim_bench.n_configs;
  List.iter
    (fun (c : Core.Sim_bench.rate) ->
      Printf.printf "  %s  %-9s  %8.3f cpi  %10.0f inst/s\n"
        c.Core.Sim_bench.name c.Core.Sim_bench.policy c.Core.Sim_bench.cpi
        c.Core.Sim_bench.inst_per_sec)
    r.Core.Sim_bench.rates;
  List.iter
    (fun (s : Core.Sim_bench.speedup) ->
      Printf.printf "  batch %2d: %.4f s sequential, %.4f s batched, %.2fx\n"
        s.Core.Sim_bench.batch s.Core.Sim_bench.sequential_s
        s.Core.Sim_bench.batched_s s.Core.Sim_bench.speedup)
    r.Core.Sim_bench.speedups;
  Printf.printf "  bit-identical to reference: %b\n"
    r.Core.Sim_bench.bit_identical;
  Core.Sim_bench.record r;
  Printf.printf "wrote BENCH_parallel.json (sim section)\n"

(* ------------------------------------------------------------------ *)
(* Sharded search: the BENCH_shard.json record.                        *)
(* ------------------------------------------------------------------ *)

(* Three measurements around one accuracy schedule (mcf, sizes 20..90):
   the paper-default redraw-per-size single-process build, the
   streaming-refit single-process build (same bits as any sharded run),
   and the sharded streaming build at 1/2/4 worker processes.  Each
   sharded row records wall-clock, speedup against both single-process
   baselines, and whether the merged model is byte-identical to the
   single-process streaming model.  The streamed run also records the
   [Refit] counters: rows folded by from-scratch cell builds versus by
   rank-1 pushes — the measured refit-cost reduction per size step. *)

let shard_sizes = [ 20; 30; 40; 50; 60; 70; 80; 90 ]

let shard_spec ~stream_refit =
  {
    Shard.Spec.benchmark = "mcf";
    metric = Core.Response.Cpi;
    seed = 11;
    trace_length = 80_000;
    sample_size = 90;
    test_n = 10;
    lhs_candidates = 40;
    criterion = Rbf.Criteria.Aicc;
    p_min_grid = [ 1; 3 ];
    alpha_grid = [ 7. ];
    shard_unit = 8;
    stream_refit;
    refit_full_every = 4;
    mode = Shard.Spec.Accuracy { sizes = shard_sizes; target_mean_pct = 0. };
  }

(* The single-process reference build, exactly as `archpred train` runs
   it: one root generator, test points drawn first, then the schedule. *)
let shard_single_run ?(obs = Archpred_obs.null) spec =
  let rng = Stats.Rng.create spec.Shard.Spec.seed in
  let response = Shard.Spec.response ~obs spec in
  let test = Core.Paper_space.test_points rng ~n:spec.Shard.Spec.test_n in
  let actual = Core.Response.evaluate_many ~domains:1 response test in
  let config = Shard.Spec.config ~obs spec |> Core.Config.with_rng rng in
  let sizes, target_mean_pct =
    match spec.Shard.Spec.mode with
    | Shard.Spec.Accuracy { sizes; target_mean_pct } -> (sizes, target_mean_pct)
    | Shard.Spec.Train ->
        Archpred_obs.Error.invalid_input ~where:"bench"
          "shard bench runs an accuracy schedule"
  in
  let t0 = Unix.gettimeofday () in
  let history =
    Core.Build.build_to_accuracy ~config ~space:Core.Paper_space.space
      ~response ~sizes ~test_points:test ~test_responses:actual
      ~target_mean_pct ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  (wall, history.Core.Build.final.Core.Build.trained)

let shard_sharded_run ~exe ~workers spec =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "archpred_bench_shard_%d_w%d" (Unix.getpid ()) workers)
  in
  let argv id = [| exe; "worker"; "--dir"; dir; "--id"; id |] in
  let t0 = Unix.gettimeofday () in
  let outcome = Shard.Coordinator.run ~dir ~spec ~workers ~argv () in
  (Unix.gettimeofday () -. t0, outcome)

let run_shard () =
  let module Json = Archpred_obs.Json in
  let exe =
    let build = Filename.dirname (Filename.dirname Sys.executable_name) in
    let exe = Filename.concat build (Filename.concat "bin" "archpred.exe") in
    if Sys.file_exists exe then exe
    else
      Archpred_obs.Error.invalid_input ~where:"bench"
        (Printf.sprintf "worker binary %s not built (run `dune build` first)"
           exe)
  in
  let cells =
    List.length (shard_spec ~stream_refit:true).Shard.Spec.p_min_grid
    * List.length (shard_spec ~stream_refit:true).Shard.Spec.alpha_grid
  in
  Printf.printf "sharded search (mcf, sizes %s, trace %d, %d tune cells)\n%!"
    (String.concat "," (List.map string_of_int shard_sizes))
    (shard_spec ~stream_refit:true).Shard.Spec.trace_length cells;
  let redraw_s, _redraw = shard_single_run (shard_spec ~stream_refit:false) in
  Printf.printf "  single-process redraw-per-size  %7.2f s\n%!" redraw_s;
  let obs = Archpred_obs.create () in
  let stream_s, stream_trained =
    shard_single_run ~obs (shard_spec ~stream_refit:true)
  in
  let rows_full = Archpred_obs.counter obs "refit.rows_full" in
  let rows_pushed = Archpred_obs.counter obs "refit.rows_pushed" in
  let crosschecks = Archpred_obs.counter obs "refit.crosschecks" in
  Printf.printf
    "  single-process streaming refit  %7.2f s  (%.2fx; refit rows: %d \
     full + %d pushed over %d cells, %d crosschecks)\n%!"
    stream_s (redraw_s /. stream_s) rows_full rows_pushed cells crosschecks;
  let stream_model = Core.Persist.to_string stream_trained.Core.Build.predictor in
  let rows =
    List.map
      (fun workers ->
        let wall, outcome =
          shard_sharded_run ~exe ~workers (shard_spec ~stream_refit:true)
        in
        let final = outcome.Shard.Coordinator.result.Shard.Stages.final in
        let identical =
          String.equal stream_model
            (Core.Persist.to_string final.Core.Build.predictor)
        in
        Printf.printf
          "  %d worker%s                       %7.2f s  (%.2fx vs redraw, \
           %.2fx vs stream, bit-identical %b, %d respawns)\n%!"
          workers
          (if workers = 1 then " " else "s")
          wall (redraw_s /. wall) (stream_s /. wall) identical
          outcome.Shard.Coordinator.respawns;
        Json.Obj
          [
            ("workers", Json.Int workers);
            ("wall_s", Json.Float wall);
            ("speedup_vs_single_redraw", Json.Float (redraw_s /. wall));
            ("speedup_vs_single_stream", Json.Float (stream_s /. wall));
            ("bit_identical_to_single_stream", Json.Bool identical);
            ("respawns", Json.Int outcome.Shard.Coordinator.respawns);
          ])
      [ 1; 2; 4 ]
  in
  (* Rows a redraw-per-size procedure folds into every cell's moments
     from scratch, for scale against the measured counters. *)
  let redraw_rows_per_cell = List.fold_left ( + ) 0 shard_sizes in
  let path = "BENCH_shard.json" in
  Core.Bench_report.write ~path ~schema:"archpred-shard-v1"
    [
      ("benchmark", Json.String "mcf");
      ("trace_length",
       Json.Int (shard_spec ~stream_refit:true).Shard.Spec.trace_length);
      ("sizes", Json.List (List.map (fun n -> Json.Int n) shard_sizes));
      ("test_n", Json.Int (shard_spec ~stream_refit:true).Shard.Spec.test_n);
      ("lhs_candidates",
       Json.Int (shard_spec ~stream_refit:true).Shard.Spec.lhs_candidates);
      ("shard_unit",
       Json.Int (shard_spec ~stream_refit:true).Shard.Spec.shard_unit);
      ("cores", Json.Int (Domain.recommended_domain_count ()));
      ("single_redraw_s", Json.Float redraw_s);
      ("single_stream_s", Json.Float stream_s);
      ("stream_vs_redraw_speedup", Json.Float (redraw_s /. stream_s));
      ("sharded", Json.List rows);
      ( "refit",
        Json.Obj
          [
            ("cells", Json.Int cells);
            ("rows_full", Json.Int rows_full);
            ("rows_pushed", Json.Int rows_pushed);
            ("crosschecks", Json.Int crosschecks);
            ("redraw_rows_per_cell", Json.Int redraw_rows_per_cell);
          ] );
    ];
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Checkpoint overhead: the crash-safety journal must not tax training. *)
(* ------------------------------------------------------------------ *)

(* Wall-clock of [Build.train] on a simulator-backed response, with and
   without a checkpoint journal.  Each rep builds a fresh response so the
   simulator's memo table starts cold — otherwise later reps skip the
   simulation work and the journal's share of the run is exaggerated. *)
let run_crashsafe () =
  let reps = 5 in
  let journal = Filename.temp_file "bench_crashsafe" ".journal" in
  let rm path = try Sys.remove path with Sys_error _ -> () in
  rm journal;
  let base_config =
    Core.Config.default |> Core.Config.with_seed 11
    |> Core.Config.with_sample_size 40
    |> Core.Config.with_p_min_grid [ 1; 3 ]
    |> Core.Config.with_alpha_grid [ 7. ]
  in
  let train config =
    let response =
      Core.Response.simulator ~trace_length:20_000 ~seed:7
        Archpred_workloads.Spec2000.mcf
    in
    let t0 = Unix.gettimeofday () in
    ignore
      (Core.Build.train ~config ~space:Core.Paper_space.space ~response ());
    Unix.gettimeofday () -. t0
  in
  ignore (train base_config) (* warm up allocator and code paths *);
  let baseline = ref 0. and checkpointed = ref 0. in
  for _ = 1 to reps do
    baseline := !baseline +. train base_config;
    rm journal;
    checkpointed :=
      !checkpointed +. train (Core.Config.with_checkpoint journal base_config)
  done;
  rm journal;
  let baseline = !baseline /. float_of_int reps in
  let checkpointed = !checkpointed /. float_of_int reps in
  let overhead_pct = (checkpointed -. baseline) /. baseline *. 100. in
  Printf.printf "checkpoint overhead (%d reps, n=40, mcf 20k insts)\n" reps;
  Printf.printf "  baseline      %.4f s/train\n" baseline;
  Printf.printf "  checkpointed  %.4f s/train\n" checkpointed;
  Printf.printf "  overhead      %+.2f %%\n" overhead_pct;
  let path = "BENCH_crashsafe.json" in
  let module Json = Archpred_obs.Json in
  Core.Bench_report.write ~path ~schema:"archpred-crashsafe-v1"
    [
      ("reps", Json.Int reps);
      ("sample_size", Json.Int 40);
      ("trace_length", Json.Int 20_000);
      ("baseline_s_per_train", Json.Float baseline);
      ("checkpointed_s_per_train", Json.Float checkpointed);
      ("overhead_pct", Json.Float overhead_pct);
    ];
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--crashsafe" args then (
    run_crashsafe ();
    (* archpred-lint: allow exit -- CLI early-exit after the crashsafe-only run *)
    exit 0);
  if List.mem "--serve" args then (
    run_serve ();
    (* archpred-lint: allow exit -- CLI early-exit after the serve-only run *)
    exit 0);
  if List.mem "--sim" args then (
    run_sim ();
    (* archpred-lint: allow exit -- CLI early-exit after the sim-only run *)
    exit 0);
  if List.mem "--shard" args then (
    run_shard ();
    (* archpred-lint: allow exit -- CLI early-exit after the shard-only run *)
    exit 0);
  let micro_only = List.mem "--micro" args in
  let paper_flag = List.mem "--paper" args in
  let trace_flag = List.mem "--trace" args in
  (* --metrics FILE consumes its argument, so strip both from [ids]. *)
  let rec metrics_path = function
    | "--metrics" :: path :: _ -> Some path
    | _ :: rest -> metrics_path rest
    | [] -> None
  in
  let metrics = metrics_path args in
  let args =
    let rec strip = function
      | "--metrics" :: _ :: rest -> strip rest
      | a :: rest -> a :: strip rest
      | [] -> []
    in
    strip args
  in
  let ids =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  let metrics_oc = Option.map open_out metrics in
  let obs =
    match metrics_oc with
    | Some oc ->
        Archpred_obs.create ~sink:(Archpred_obs.Sink.jsonl_channel oc) ()
    | None -> if trace_flag then Archpred_obs.create () else Archpred_obs.null
  in
  let ppf = Format.std_formatter in
  if not micro_only then begin
    let ctx = Experiments.Context.create ~obs () in
    let entries =
      match ids with
      | [] ->
          if paper_flag then Experiments.Registry.paper_only
          else Experiments.Registry.all
      | ids ->
          List.filter_map
            (fun id ->
              match Experiments.Registry.find id with
              | Some e -> Some e
              | None ->
                  Format.eprintf "unknown experiment id: %s@." id;
                  None)
            ids
    in
    Experiments.Registry.run_all ~entries ctx ppf;
    Format.pp_print_flush ppf ()
  end;
  if micro_only || ids = [] then run_micro ();
  Archpred_obs.close obs;
  Option.iter close_out metrics_oc;
  if trace_flag then Archpred_obs.report obs ppf;
  Format.pp_print_flush ppf ()
