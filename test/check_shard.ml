(* Sharded-search smoke test over the real binary: a 2-worker
   `archpred train --shards` run — with one worker killed mid-unit by an
   injected fault and respawned by the coordinator — must save a model
   byte-identical to the single-process run's. *)

(* archpred-lint: allow exit -- check harness failure path *)
let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path = In_channel.with_open_bin path In_channel.input_all

let run ?fault argv =
  let env =
    match fault with
    | None -> Unix.environment ()
    | Some spec ->
        Array.append (Unix.environment ())
          [| "ARCHPRED_SHARD_FAULT=" ^ spec |]
  in
  let pid =
    Unix.create_process_env argv.(0) argv env Unix.stdin Unix.stdout
      Unix.stderr
  in
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, status ->
      let what =
        match status with
        | Unix.WEXITED c -> Printf.sprintf "exit %d" c
        | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
        | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
      in
      fail "check_shard: %s failed (%s)" argv.(1) what

let () =
  let archpred = Sys.argv.(1) in
  let common =
    [|
      archpred; "train"; "-b"; "crafty"; "-n"; "20"; "--trace-length"; "2000";
      "--seed"; "7"; "--test-points"; "5";
    |]
  in
  run (Array.append common [| "--save"; "shard_smoke_single.model" |]);
  (* Worker w0 dies permanently at its second claimed unit; the
     coordinator must respawn it (fresh id, so the replacement is not
     re-armed) and the merged model must not change. *)
  run
    ~fault:"w0:shard.unit:2:sticky"
    (Array.append common
       [|
         "--shards"; "2"; "--shard-dir"; "shard_smoke_run"; "--save";
         "shard_smoke_sharded.model";
       |]);
  let single = read_file "shard_smoke_single.model" in
  let sharded = read_file "shard_smoke_sharded.model" in
  if not (String.equal single sharded) then
    fail "check_shard: sharded model differs from the single-process model";
  print_endline
    "ok: 2-worker sharded train (one worker killed mid-unit) is \
     byte-identical to the single-process model"
