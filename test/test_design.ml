(* Tests for archpred.design: transforms, parameters, spaces, latin
   hypercube sampling, discrepancies, sample optimisation, grids and
   Plackett-Burman designs. *)

module Design = Archpred_design
module Transform = Design.Transform
module Parameter = Design.Parameter
module Space = Design.Space
module Lhs = Design.Lhs
module Discrepancy = Design.Discrepancy
module Random_design = Design.Random_design
module Optimize = Design.Optimize
module Grid = Design.Grid
module Pb = Design.Plackett_burman
module Rng = Archpred_stats.Rng

let check_float ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let space2 =
  Space.create
    [
      Parameter.make "a" ~lo:0. ~hi:10.;
      Parameter.make "b" ~lo:1. ~hi:16. ~transform:Transform.Log;
    ]

(* ---------- Transform ---------- *)

let test_linear_endpoints () =
  check_float "u=0" 5. (Transform.apply Transform.Linear ~lo:5. ~hi:9. 0.);
  check_float "u=1" 9. (Transform.apply Transform.Linear ~lo:5. ~hi:9. 1.)

let test_linear_descending () =
  check_float "descending" 24. (Transform.apply Transform.Linear ~lo:24. ~hi:7. 0.);
  check_float "descending mid" 15.5 (Transform.apply Transform.Linear ~lo:24. ~hi:7. 0.5)

let test_log_midpoint () =
  (* log scale: the midpoint of 1..16 is 4 *)
  check_float ~eps:1e-12 "log mid" 4. (Transform.apply Transform.Log ~lo:1. ~hi:16. 0.5)

let test_log_invalid () =
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Transform: log transform needs positive endpoints")
    (fun () -> ignore (Transform.apply Transform.Log ~lo:(-1.) ~hi:2. 0.5))

let prop_transform_roundtrip =
  qtest "apply/invert roundtrip"
    QCheck2.Gen.(pair (oneofl [ Transform.Linear; Transform.Log ]) (float_range 0. 1.))
    (fun (tr, u) ->
      let lo, hi = (2., 64.) in
      let v = Transform.apply tr ~lo ~hi u in
      abs_float (Transform.invert tr ~lo ~hi v -. u) < 1e-9)

(* ---------- Parameter ---------- *)

let test_level_count () =
  let p = Parameter.make "x" ~lo:0. ~hi:1. ~levels:(Parameter.Fixed 4) in
  Alcotest.(check int) "fixed" 4 (Parameter.level_count p ~sample_size:90);
  let q = Parameter.make "y" ~lo:0. ~hi:1. in
  Alcotest.(check int) "per-sample" 90 (Parameter.level_count q ~sample_size:90)

let test_level_coordinates () =
  let p = Parameter.make "x" ~lo:0. ~hi:1. ~levels:(Parameter.Fixed 3) in
  Alcotest.(check (array (float 1e-12)))
    "coords" [| 0.; 0.5; 1. |]
    (Parameter.level_coordinates p ~sample_size:10)

let test_snap () =
  let p = Parameter.make "x" ~lo:0. ~hi:1. ~levels:(Parameter.Fixed 5) in
  check_float "snap" 0.25 (Parameter.snap p ~sample_size:10 0.3);
  check_float "snap lo" 0. (Parameter.snap p ~sample_size:10 0.1);
  check_float "snap hi" 1. (Parameter.snap p ~sample_size:10 0.95)

let test_integer_rounding () =
  let p = Parameter.make "x" ~lo:1. ~hi:10. ~integer:true in
  check_float "integer decode" 6. (Parameter.decode p 0.55)

let test_parameter_validation () =
  Alcotest.check_raises "lo=hi" (Invalid_argument "Parameter.make: lo = hi")
    (fun () -> ignore (Parameter.make "x" ~lo:1. ~hi:1.));
  Alcotest.check_raises "levels<2"
    (Invalid_argument "Parameter.make: Fixed levels < 2") (fun () ->
      ignore (Parameter.make "x" ~lo:0. ~hi:1. ~levels:(Parameter.Fixed 1)))

(* ---------- Space ---------- *)

let test_space_dimension () = Alcotest.(check int) "dim" 2 (Space.dimension space2)

let test_space_decode () =
  let v = Space.decode space2 [| 0.5; 0.5 |] in
  check_float "a" 5. v.(0);
  check_float ~eps:1e-12 "b" 4. v.(1)

let test_space_roundtrip () =
  let u = [| 0.3; 0.7 |] in
  let u' = Space.encode space2 (Space.decode space2 u) in
  Array.iteri (fun i x -> check_float ~eps:1e-9 "roundtrip" u.(i) x) u'

let test_space_index_of () =
  Alcotest.(check int) "index" 1 (Space.index_of space2 "b");
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Space.index_of space2 "zzz"))

let test_space_duplicate_names () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Space.create: duplicate parameter a") (fun () ->
      ignore
        (Space.create
           [ Parameter.make "a" ~lo:0. ~hi:1.; Parameter.make "a" ~lo:0. ~hi:2. ]))

let test_sub_box () =
  let lo = [| 0.2; 0.2 |] and hi = [| 0.8; 0.4 |] in
  let p = Space.sub_box space2 ~lo ~hi [| 0.5; 0.5 |] in
  check_float "x" 0.5 p.(0);
  check_float ~eps:1e-12 "y" 0.3 p.(1)

let test_validate_point () =
  Alcotest.check_raises "outside"
    (Invalid_argument "Space: point outside unit cube") (fun () ->
      Space.validate_point space2 [| 1.5; 0.5 |])

(* ---------- LHS ---------- *)

let prop_lhs_continuous_latin =
  qtest ~count:50 "continuous LHS is latin"
    QCheck2.Gen.(pair (int_range 2 40) (int_range 0 100_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let pts = Lhs.sample_continuous rng space2 ~n in
      Lhs.is_latin ~dim:2 ~n pts)

let test_lhs_in_cube () =
  let rng = Rng.create 5 in
  let pts = Lhs.sample rng space2 ~n:30 in
  Array.iter
    (fun p ->
      if not (Space.contains p) then Alcotest.fail "point outside cube")
    pts

let test_lhs_level_coverage () =
  (* A parameter with 4 levels must see all 4 levels in a 30-point LHS. *)
  let space =
    Space.create
      [
        Parameter.make "p" ~lo:0. ~hi:1. ~levels:(Parameter.Fixed 4);
        Parameter.make "q" ~lo:0. ~hi:1.;
      ]
  in
  let rng = Rng.create 6 in
  let pts = Lhs.sample rng space ~n:30 in
  let seen = Hashtbl.create 4 in
  Array.iter (fun p -> Hashtbl.replace seen p.(0) ()) pts;
  Alcotest.(check int) "4 levels seen" 4 (Hashtbl.length seen)

let test_lhs_balanced_levels () =
  (* levels appear equally often (+-1) *)
  let space =
    Space.create [ Parameter.make "p" ~lo:0. ~hi:1. ~levels:(Parameter.Fixed 5) ]
  in
  let rng = Rng.create 7 in
  let pts = Lhs.sample rng space ~n:25 in
  let counts = Hashtbl.create 5 in
  Array.iter
    (fun p ->
      Hashtbl.replace counts p.(0)
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts p.(0))))
    pts;
  Hashtbl.iter
    (fun _ c -> if c <> 5 then Alcotest.failf "unbalanced level count %d" c)
    counts

let test_lhs_rejects_small_n () =
  let rng = Rng.create 8 in
  Alcotest.check_raises "n<2" (Invalid_argument "Lhs.sample: n < 2") (fun () ->
      ignore (Lhs.sample rng space2 ~n:1))

(* ---------- Discrepancy ---------- *)

(* Brute-force 1-D L2-star discrepancy:
   D^2 = integral_0^1 (F_n(t) - t)^2 dt, computable exactly piecewise. *)
let brute_force_l2_star_1d points =
  let xs = Array.map (fun p -> p.(0)) points in
  Array.sort compare xs;
  let n = Array.length xs in
  let nf = float_of_int n in
  (* integrate over segments between sorted points *)
  let integral = ref 0. in
  let segment f a b =
    (* integral of (f - t)^2 dt on [a,b] with F_n = f constant *)
    let g t = ((f -. t) ** 3.) /. -3. in
    g b -. g a
  in
  let prev = ref 0. in
  for i = 0 to n - 1 do
    integral := !integral +. segment (float_of_int i /. nf) !prev xs.(i);
    prev := xs.(i)
  done;
  integral := !integral +. segment 1. !prev 1.;
  sqrt !integral

let test_star_matches_brute_force_1d () =
  let space1 = Space.create [ Parameter.make "x" ~lo:0. ~hi:1. ] in
  let rng = Rng.create 9 in
  for _ = 1 to 20 do
    let pts = Random_design.sample rng space1 ~n:(3 + Rng.int rng 10) in
    let formula = Discrepancy.l2_star pts in
    let brute = brute_force_l2_star_1d pts in
    check_float ~eps:1e-8 "1d star discrepancy" brute formula
  done

let test_discrepancy_permutation_invariant () =
  let rng = Rng.create 10 in
  let pts = Random_design.sample rng space2 ~n:20 in
  let rev = Array.of_list (List.rev (Array.to_list pts)) in
  check_float ~eps:1e-12 "star invariant" (Discrepancy.l2_star pts)
    (Discrepancy.l2_star rev);
  check_float ~eps:1e-12 "centered invariant" (Discrepancy.centered_l2 pts)
    (Discrepancy.centered_l2 rev)

let test_centered_reflection_invariant () =
  let rng = Rng.create 11 in
  let pts = Random_design.sample rng space2 ~n:15 in
  let reflected = Array.map (fun p -> [| 1. -. p.(0); p.(1) |]) pts in
  check_float ~eps:1e-9 "reflection invariance"
    (Discrepancy.centered_l2 pts)
    (Discrepancy.centered_l2 reflected)

let test_lhs_beats_clustered () =
  let rng = Rng.create 12 in
  let lhs = Lhs.sample_continuous rng space2 ~n:20 in
  (* all points clustered in a tiny corner *)
  let clustered =
    Array.init 20 (fun _ ->
        [| 0.01 +. (0.01 *. Rng.unit_float rng); 0.01 +. (0.01 *. Rng.unit_float rng) |])
  in
  Alcotest.(check bool) "lhs better" true
    (Discrepancy.l2_star lhs < Discrepancy.l2_star clustered)

let test_discrepancy_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Discrepancy: empty sample")
    (fun () -> ignore (Discrepancy.l2_star [||]))

(* Reference implementations of both closed forms with the pair kernel
   summed over the full n^2 double loop — no i/j symmetry shortcut.  The
   production code must agree to fp-reordering noise. *)
let reference_l2_star points =
  let n = Array.length points in
  let d = Array.length points.(0) in
  let nf = float_of_int n in
  let term1 = 3. ** float_of_int (-d) in
  let sum2 = ref 0. in
  Array.iter
    (fun x ->
      let prod = ref 1. in
      for k = 0 to d - 1 do
        prod := !prod *. (1. -. (x.(k) *. x.(k)))
      done;
      sum2 := !sum2 +. !prod)
    points;
  let term2 = 2. ** float_of_int (1 - d) /. nf *. !sum2 in
  let pair = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let prod = ref 1. in
      for k = 0 to d - 1 do
        prod := !prod *. (1. -. Float.max points.(i).(k) points.(j).(k))
      done;
      pair := !pair +. !prod
    done
  done;
  sqrt (Float.max 0. (term1 -. term2 +. (!pair /. (nf *. nf))))

let reference_centered_l2 points =
  let n = Array.length points in
  let d = Array.length points.(0) in
  let nf = float_of_int n in
  let term1 = (13. /. 12.) ** float_of_int d in
  let z i k = abs_float (points.(i).(k) -. 0.5) in
  let sum2 = ref 0. in
  for i = 0 to n - 1 do
    let prod = ref 1. in
    for k = 0 to d - 1 do
      let zk = z i k in
      prod := !prod *. (1. +. (0.5 *. zk) -. (0.5 *. zk *. zk))
    done;
    sum2 := !sum2 +. !prod
  done;
  let term2 = 2. /. nf *. !sum2 in
  let pair = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let prod = ref 1. in
      for k = 0 to d - 1 do
        let dij = abs_float (points.(i).(k) -. points.(j).(k)) in
        prod := !prod *. (1. +. (0.5 *. z i k) +. (0.5 *. z j k) -. (0.5 *. dij))
      done;
      pair := !pair +. !prod
    done
  done;
  sqrt (Float.max 0. (term1 -. term2 +. (!pair /. (nf *. nf))))

let test_symmetric_matches_reference () =
  let rng = Rng.create 19 in
  for _ = 1 to 10 do
    let n = 5 + Rng.int rng 40 in
    let pts = Random_design.sample rng space2 ~n in
    check_float ~eps:1e-12 "star symmetric = reference"
      (reference_l2_star pts) (Discrepancy.l2_star pts);
    check_float ~eps:1e-12 "centered symmetric = reference"
      (reference_centered_l2 pts)
      (Discrepancy.centered_l2 pts)
  done

let test_discrepancy_domain_invariant () =
  (* Bit-identical, not merely close: the row partials are folded in row
     order whatever the domain count. *)
  let rng = Rng.create 20 in
  let pts = Random_design.sample rng space2 ~n:37 in
  List.iter
    (fun kind ->
      let serial = Discrepancy.compute ~domains:1 kind pts in
      List.iter
        (fun d ->
          let v = Discrepancy.compute ~domains:d kind pts in
          if v <> serial then
            Alcotest.failf "domains=%d differs: %.17g vs %.17g" d v serial)
        [ 2; 3; 4; 7 ])
    [ Discrepancy.Star; Discrepancy.Centered ]

(* ---------- Optimize ---------- *)

let test_best_lhs_improves () =
  let rng1 = Rng.create 13 and rng2 = Rng.create 13 in
  let single = Optimize.best_lhs ~candidates:1 rng1 space2 ~n:20 in
  let many = Optimize.best_lhs ~candidates:50 rng2 space2 ~n:20 in
  Alcotest.(check bool) "more candidates not worse" true
    (many.Optimize.discrepancy <= single.Optimize.discrepancy)

let test_best_lhs_domain_invariant () =
  (* Per-candidate split RNG streams: the winning sample and its score are
     bit-identical however many domains score the candidates. *)
  let run domains =
    let rng = Rng.create 17 in
    Optimize.best_lhs ~candidates:16 ~domains rng space2 ~n:20
  in
  let base = run 1 in
  List.iter
    (fun d ->
      let r = run d in
      if r.Optimize.discrepancy <> base.Optimize.discrepancy then
        Alcotest.failf "domains=%d: discrepancy %.17g <> %.17g" d
          r.Optimize.discrepancy base.Optimize.discrepancy;
      if r.Optimize.points <> base.Optimize.points then
        Alcotest.failf "domains=%d: different winning sample" d)
    [ 2; 3; 5 ]

let test_best_lhs_advances_rng_uniformly () =
  (* The caller's rng must end in the same state for every domain count:
     exactly [candidates] splits are drawn from it, nothing else. *)
  let state rng = Rng.int64 rng in
  let rng1 = Rng.create 23 and rng4 = Rng.create 23 in
  ignore (Optimize.best_lhs ~candidates:9 ~domains:1 rng1 space2 ~n:12);
  ignore (Optimize.best_lhs ~candidates:9 ~domains:4 rng4 space2 ~n:12);
  Alcotest.(check int64) "same rng state after" (state rng1) (state rng4)

let test_discrepancy_curve_decreases () =
  let rng = Rng.create 14 in
  let curve =
    Optimize.discrepancy_curve ~candidates:20 rng space2 ~sizes:[ 10; 40; 160 ]
  in
  match curve with
  | [ (_, d1); (_, d2); (_, d3) ] ->
      Alcotest.(check bool) "decreasing" true (d1 > d2 && d2 > d3)
  | _ -> Alcotest.fail "expected 3 sizes"

(* ---------- Random designs and grids ---------- *)

let test_random_in_box () =
  let rng = Rng.create 15 in
  let lo = [| 0.25; 0.4 |] and hi = [| 0.5; 0.6 |] in
  let pts = Random_design.sample_in_box rng space2 ~n:100 ~lo ~hi in
  Array.iter
    (fun p ->
      if p.(0) < 0.25 || p.(0) > 0.5 || p.(1) < 0.4 || p.(1) > 0.6 then
        Alcotest.fail "outside box")
    pts

let test_full_factorial () =
  let pts = Grid.full_factorial space2 ~levels_per_dim:3 in
  Alcotest.(check int) "count" 9 (Array.length pts);
  let distinct = Hashtbl.create 9 in
  Array.iter (fun p -> Hashtbl.replace distinct (p.(0), p.(1)) ()) pts;
  Alcotest.(check int) "all distinct" 9 (Hashtbl.length distinct)

let test_sweep1 () =
  let base = [| 0.5; 0.5 |] in
  let pts = Grid.sweep1 space2 ~base ~dim:0 ~steps:5 in
  Alcotest.(check int) "count" 5 (Array.length pts);
  check_float "first" 0. pts.(0).(0);
  check_float "last" 1. pts.(4).(0);
  check_float "other dim fixed" 0.5 pts.(2).(1)

let test_sweep2_shape () =
  let base = [| 0.5; 0.5 |] in
  let grid = Grid.sweep2 space2 ~base ~dim1:0 ~steps1:3 ~dim2:1 ~steps2:4 in
  Alcotest.(check int) "rows" 3 (Array.length grid);
  Alcotest.(check int) "cols" 4 (Array.length grid.(0));
  check_float "row coord" 0.5 grid.(1).(0).(0);
  check_float "col coord" 1. grid.(0).(3).(1)

(* ---------- Plackett-Burman ---------- *)

let test_pb_shape () =
  let d = Pb.design ~runs:12 in
  Alcotest.(check int) "runs" 12 (Array.length d);
  Alcotest.(check int) "cols" 11 (Array.length d.(0))

let test_pb_balance () =
  (* each column has equal +1 and -1 *)
  let d = Pb.design ~runs:12 in
  for j = 0 to 10 do
    let sum = Array.fold_left (fun acc row -> acc + row.(j)) 0 d in
    Alcotest.(check int) "balanced column" 0 sum
  done

let test_pb_orthogonal () =
  let d = Pb.design ~runs:12 in
  for j = 0 to 10 do
    for k = j + 1 to 10 do
      let dot = Array.fold_left (fun acc row -> acc + (row.(j) * row.(k))) 0 d in
      Alcotest.(check int) "orthogonal pair" 0 dot
    done
  done

let test_pb_foldover () =
  let d = Pb.design ~runs:12 in
  let f = Pb.foldover d in
  Alcotest.(check int) "doubled" 24 (Array.length f);
  Alcotest.(check int) "mirrored" (-f.(12).(0)) f.(0).(0)

let test_pb_unsupported () =
  Alcotest.check_raises "unsupported"
    (Invalid_argument
       "Plackett_burman.design: supported run counts are 8, 12, 16, 20, 24")
    (fun () -> ignore (Pb.design ~runs:10))

let test_pb_main_effects () =
  (* linear response 3*x0 - 2*x1 recovered as effect difference *)
  let d = Pb.design ~runs:12 in
  let responses =
    Array.map
      (fun row ->
        (3. *. float_of_int row.(0)) -. (2. *. float_of_int row.(1)))
      d
  in
  let effects = Pb.main_effects d responses 2 in
  check_float ~eps:1e-9 "effect 0" 6. effects.(0);
  check_float ~eps:1e-9 "effect 1" (-4.) effects.(1)


(* ---------- Sobol ---------- *)

let test_sobol_in_cube () =
  let pts = Design.Sobol.points ~dim:5 ~n:200 () in
  Array.iter
    (fun p ->
      Array.iter
        (fun u -> if u < 0. || u >= 1. then Alcotest.failf "out of cube: %f" u)
        p)
    pts

let test_sobol_deterministic () =
  let a = Design.Sobol.points ~dim:3 ~n:10 () in
  let b = Design.Sobol.points ~dim:3 ~n:10 () in
  Alcotest.(check bool) "same sequence" true (a = b)

let test_sobol_first_point () =
  (* after skipping the origin, the first point is the cube center *)
  let pts = Design.Sobol.points ~dim:4 ~n:1 () in
  Array.iter (fun u -> Alcotest.(check (float 1e-12)) "center" 0.5 u) pts.(0)

let test_sobol_beats_random_discrepancy () =
  let pts = Design.Sobol.points ~dim:2 ~n:64 () in
  let rng = Rng.create 77 in
  let rand =
    Array.init 64 (fun _ -> Array.init 2 (fun _ -> Rng.unit_float rng))
  in
  Alcotest.(check bool) "lower discrepancy" true
    (Discrepancy.l2_star pts < Discrepancy.l2_star rand)

let test_sobol_distinct_points () =
  let pts = Design.Sobol.points ~dim:6 ~n:256 () in
  let seen = Hashtbl.create 256 in
  Array.iter (fun p -> Hashtbl.replace seen (Array.to_list p) ()) pts;
  Alcotest.(check int) "all distinct" 256 (Hashtbl.length seen)

let test_sobol_validation () =
  Alcotest.check_raises "dim too big"
    (Invalid_argument "Sobol.points: dim outside [1, 10]") (fun () ->
      ignore (Design.Sobol.points ~dim:11 ~n:4 ()));
  Alcotest.check_raises "n <= 0"
    (Invalid_argument "Sobol.points: n <= 0") (fun () ->
      ignore (Design.Sobol.points ~dim:2 ~n:0 ()))

let () =
  Alcotest.run "design"
    [
      ( "transform",
        [
          Alcotest.test_case "linear endpoints" `Quick test_linear_endpoints;
          Alcotest.test_case "descending range" `Quick test_linear_descending;
          Alcotest.test_case "log midpoint" `Quick test_log_midpoint;
          Alcotest.test_case "log invalid" `Quick test_log_invalid;
          prop_transform_roundtrip;
        ] );
      ( "parameter",
        [
          Alcotest.test_case "level count" `Quick test_level_count;
          Alcotest.test_case "level coordinates" `Quick test_level_coordinates;
          Alcotest.test_case "snap" `Quick test_snap;
          Alcotest.test_case "integer rounding" `Quick test_integer_rounding;
          Alcotest.test_case "validation" `Quick test_parameter_validation;
        ] );
      ( "space",
        [
          Alcotest.test_case "dimension" `Quick test_space_dimension;
          Alcotest.test_case "decode" `Quick test_space_decode;
          Alcotest.test_case "roundtrip" `Quick test_space_roundtrip;
          Alcotest.test_case "index_of" `Quick test_space_index_of;
          Alcotest.test_case "duplicate names" `Quick test_space_duplicate_names;
          Alcotest.test_case "sub_box" `Quick test_sub_box;
          Alcotest.test_case "validate_point" `Quick test_validate_point;
        ] );
      ( "lhs",
        [
          prop_lhs_continuous_latin;
          Alcotest.test_case "points in cube" `Quick test_lhs_in_cube;
          Alcotest.test_case "level coverage" `Quick test_lhs_level_coverage;
          Alcotest.test_case "balanced levels" `Quick test_lhs_balanced_levels;
          Alcotest.test_case "rejects n<2" `Quick test_lhs_rejects_small_n;
        ] );
      ( "discrepancy",
        [
          Alcotest.test_case "1d brute force" `Quick test_star_matches_brute_force_1d;
          Alcotest.test_case "permutation invariant" `Quick test_discrepancy_permutation_invariant;
          Alcotest.test_case "centered reflection invariant" `Quick test_centered_reflection_invariant;
          Alcotest.test_case "lhs beats clustered" `Quick test_lhs_beats_clustered;
          Alcotest.test_case "empty raises" `Quick test_discrepancy_empty;
          Alcotest.test_case "symmetric = reference" `Quick
            test_symmetric_matches_reference;
          Alcotest.test_case "domain-count invariant" `Quick
            test_discrepancy_domain_invariant;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "best-of-N improves" `Quick test_best_lhs_improves;
          Alcotest.test_case "curve decreases" `Quick test_discrepancy_curve_decreases;
          Alcotest.test_case "domain-count invariant" `Quick
            test_best_lhs_domain_invariant;
          Alcotest.test_case "uniform rng advance" `Quick
            test_best_lhs_advances_rng_uniformly;
        ] );
      ( "grids",
        [
          Alcotest.test_case "random in box" `Quick test_random_in_box;
          Alcotest.test_case "full factorial" `Quick test_full_factorial;
          Alcotest.test_case "sweep1" `Quick test_sweep1;
          Alcotest.test_case "sweep2" `Quick test_sweep2_shape;
        ] );
      ( "sobol",
        [
          Alcotest.test_case "in cube" `Quick test_sobol_in_cube;
          Alcotest.test_case "deterministic" `Quick test_sobol_deterministic;
          Alcotest.test_case "first point" `Quick test_sobol_first_point;
          Alcotest.test_case "beats random" `Quick test_sobol_beats_random_discrepancy;
          Alcotest.test_case "distinct points" `Quick test_sobol_distinct_points;
          Alcotest.test_case "validation" `Quick test_sobol_validation;
        ] );
      ( "plackett_burman",
        [
          Alcotest.test_case "shape" `Quick test_pb_shape;
          Alcotest.test_case "balance" `Quick test_pb_balance;
          Alcotest.test_case "orthogonality" `Quick test_pb_orthogonal;
          Alcotest.test_case "foldover" `Quick test_pb_foldover;
          Alcotest.test_case "unsupported runs" `Quick test_pb_unsupported;
          Alcotest.test_case "main effects" `Quick test_pb_main_effects;
        ] );
    ]
