(* Smoke validator for the serving load test: a tiny-budget Serve.run
   against a small synthetic model must produce an archpred-serve-v1
   JSON report whose schema, metadata and per-run fields all parse and
   lie in range.  Run by the dune smoke rule in this directory; the
   committed BENCH_serve.json is produced by the same writer, so this
   guards its shape without re-running the full benchmark. *)

module Json = Archpred_obs.Json
module Core = Archpred_core
module Rbf = Archpred_rbf
module Stats = Archpred_stats

(* archpred-lint: allow exit -- check harness failure path *)
let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let tiny_predictor () =
  let dim = 9 in
  let rng = Stats.Rng.create 41 in
  let centers =
    Array.init 6 (fun _ ->
        {
          Rbf.Network.c = Array.init dim (fun _ -> Stats.Rng.unit_float rng);
          r = Array.init dim (fun _ -> 0.3 +. Stats.Rng.unit_float rng);
        })
  in
  let weights = Array.init 6 (fun _ -> Stats.Rng.unit_float rng -. 0.5) in
  let network = { Rbf.Network.centers; weights } in
  Core.Predictor.make ~space:Core.Paper_space.space ~network ~p_min:1
    ~alpha:7. ()

let expect_int name j =
  match Json.member name j with
  | Some (Json.Int v) -> v
  | _ -> fail "run is missing int field %S" name

let expect_float name j =
  match Json.member name j with
  | Some (Json.Float v) -> v
  | Some (Json.Int v) -> float_of_int v
  | _ -> fail "run is missing numeric field %S" name

let () =
  let predictor = tiny_predictor () in
  let config =
    {
      Core.Serve.default with
      Core.Serve.batch_size = 16;
      batches = 8;
      distinct_points = 32;
      cache_capacity = 64;
    }
  in
  let result = Core.Serve.run ~predictor config in
  let path = "smoke_serve.json" in
  Core.Serve.write_json ~path [ result ];
  let ic = open_in path in
  let text = In_channel.input_all ic in
  close_in ic;
  let j =
    match Json.of_string text with
    | Ok j -> j
    | Error m -> fail "%s is not valid JSON: %s" path m
  in
  (match Json.member "schema" j with
  | Some (Json.String "archpred-serve-v1") -> ()
  | _ -> fail "missing or wrong schema tag (want archpred-serve-v1)");
  (match Json.member "domains" j with
  | Some (Json.Int d) when d >= 1 -> ()
  | _ -> fail "missing metadata field \"domains\"");
  (match Json.member "git_describe" j with
  | Some (Json.String _) -> ()
  | _ -> fail "missing metadata field \"git_describe\"");
  (match Json.member "simd" j with
  | Some (Json.String ("avx512" | "avx2" | "scalar")) -> ()
  | _ -> fail "metadata field \"simd\" must be avx512, avx2 or scalar");
  let run =
    match Json.member "runs" j with
    | Some (Json.List [ r ]) -> r
    | Some (Json.List l) -> fail "expected exactly 1 run, got %d" (List.length l)
    | _ -> fail "missing \"runs\" list"
  in
  let batch_size = expect_int "batch_size" run in
  let predictions = expect_int "predictions" run in
  if batch_size <> 16 then fail "batch_size: want 16, got %d" batch_size;
  if predictions <> 16 * 8 then
    fail "predictions: want %d, got %d" (16 * 8) predictions;
  List.iter
    (fun f ->
      let v = expect_float f run in
      if not (v > 0.) then fail "field %S must be positive, got %g" f v)
    [
      "key_reuse";
      "scalar_ns_per_point";
      "batch_ns_per_point";
      "kernel_ns_per_point";
      "cached_ns_per_point";
      "predictions_per_sec";
      "speedup_vs_scalar";
    ];
  let hit_rate = expect_float "hit_rate" run in
  if not (hit_rate >= 0. && hit_rate <= 1.) then
    fail "hit_rate must lie in [0, 1], got %g" hit_rate;
  let hits = expect_int "cache_hits" run in
  let misses = expect_int "cache_misses" run in
  let bypasses = expect_int "cache_bypasses" run in
  if hits < 0 || misses < 0 || bypasses < 0 then
    fail "cache counters must be non-negative";
  if hits + misses + bypasses <> predictions then
    fail "cache classified %d lookups, expected %d"
      (hits + misses + bypasses) predictions;
  ignore (expect_int "cache_evictions" run);
  ignore (expect_float "checksum" run);
  Printf.printf "ok: archpred-serve-v1 report valid (%d predictions, hit rate %.3f)\n"
    predictions hit_rate
