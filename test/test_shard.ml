(* Sharded-search tests: the deterministic work-unit partition, the
   atomic claim protocol, the journal merge, and the central invariant —
   an N-shard run (N in {1, 2, 4}, with a worker killed and restarted
   mid-run via fault injection) merges to a model whose
   [Persist.to_string] is byte-identical to the single-process build, at
   1 and at 4 domains. *)

module Shard = Archpred_shard
module Plan = Shard.Plan
module Claim = Shard.Claim
module Spec = Shard.Spec
module Journal = Shard.Journal
module Stages = Shard.Stages
module Worker = Shard.Worker
module Core = Archpred_core
module Build = Core.Build
module Config = Core.Config
module Persist = Core.Persist
module Response = Core.Response
module Paper_space = Core.Paper_space
module Rng = Archpred_stats.Rng
module Obs = Archpred_obs
module Fault = Archpred_fault.Fault

let with_faults f =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset f

let tmp_dir () =
  let path = Filename.temp_file "archpred_shard" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (_, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error (_, _, _) -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let with_dir f =
  let dir = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Plan                                                               *)
(* ------------------------------------------------------------------ *)

let prop name count gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let plan_partition_exact =
  prop "units partition [0, count) exactly" 200
    QCheck2.Gen.(pair (int_range 0 200) (int_range 1 17))
    (fun (count, chunk) ->
      let units = Plan.units ~stage:"s" ~count ~chunk in
      let covered = Array.make count false in
      Array.iter
        (fun (u : Plan.unit_) ->
          assert (u.Plan.lo < u.Plan.hi || count = 0);
          for i = u.Plan.lo to u.Plan.hi - 1 do
            assert (not covered.(i));
            covered.(i) <- true
          done)
        units;
      Array.for_all Fun.id covered)

let plan_name_roundtrip =
  prop "unit_name round-trips" 200
    QCheck2.Gen.(
      triple
        (oneofl [ "test"; "lhs.0"; "sim.12"; "tune.3"; "a.b.c" ])
        (int_range 0 1000) (int_range 1 50))
    (fun (stage, lo, len) ->
      let u = { Plan.stage; lo; hi = lo + len } in
      match Plan.unit_of_name (Plan.unit_name u) with
      | Some v ->
          String.equal v.Plan.stage u.Plan.stage
          && v.Plan.lo = u.Plan.lo && v.Plan.hi = u.Plan.hi
      | None -> false)

let test_plan_malformed () =
  List.iter
    (fun s -> Alcotest.(check bool) s false (Plan.unit_of_name s <> None))
    [ ""; "noseparator"; "stage.1"; "stage.a-b"; ".0-4"; "stage.0_4" ]

(* ------------------------------------------------------------------ *)
(* Claim                                                              *)
(* ------------------------------------------------------------------ *)

let test_claim_exclusive () =
  with_dir @@ fun dir ->
  Claim.init ~dir;
  Alcotest.(check bool)
    "first claim wins" true
    (Claim.claim ~dir ~name:"sim.0.0-4" ~owner:"w0");
  Alcotest.(check bool)
    "second claim loses" false
    (Claim.claim ~dir ~name:"sim.0.0-4" ~owner:"w1");
  Alcotest.(check (option string))
    "owner recorded" (Some "w0")
    (Claim.owner ~dir ~name:"sim.0.0-4");
  Claim.release ~dir ~name:"sim.0.0-4";
  Alcotest.(check bool)
    "reclaim after release" true
    (Claim.claim ~dir ~name:"sim.0.0-4" ~owner:"w1")

let test_claim_release_incomplete () =
  with_dir @@ fun dir ->
  Claim.init ~dir;
  assert (Claim.claim ~dir ~name:"sim.0.0-4" ~owner:"dead");
  assert (Claim.claim ~dir ~name:"sim.0.4-8" ~owner:"dead");
  assert (Claim.claim ~dir ~name:"sim.0.8-12" ~owner:"alive");
  (* Unit 0-4 is committed, 4-8 is not; only the dead owner's
     incomplete claim must go. *)
  Claim.release_incomplete ~dir ~owner:"dead" ~complete:(fun ~stage:_ ~lo ~hi:_ ->
      lo = 0);
  Alcotest.(check (option string))
    "complete claim kept" (Some "dead")
    (Claim.owner ~dir ~name:"sim.0.0-4");
  Alcotest.(check (option string))
    "incomplete claim released" None
    (Claim.owner ~dir ~name:"sim.0.4-8");
  Alcotest.(check (option string))
    "other owner kept" (Some "alive")
    (Claim.owner ~dir ~name:"sim.0.8-12")

(* ------------------------------------------------------------------ *)
(* Spec                                                               *)
(* ------------------------------------------------------------------ *)

let spec ?(stream_refit = false) ?(mode = Spec.Train) () =
  {
    Spec.benchmark = "synthetic:smooth";
    metric = Response.Cpi;
    seed = 11;
    trace_length = 2000;
    sample_size = 12;
    test_n = 6;
    lhs_candidates = 5;
    criterion = Archpred_rbf.Criteria.Aicc;
    p_min_grid = [ 1; 2 ];
    alpha_grid = [ 5.; 7. ];
    shard_unit = 3;
    stream_refit;
    refit_full_every = 0;
    mode;
  }

let test_spec_roundtrip () =
  with_dir @@ fun dir ->
  let s =
    spec ~mode:(Spec.Accuracy { sizes = [ 8; 12 ]; target_mean_pct = 0.5 }) ()
  in
  Spec.save ~dir s;
  let s' = Spec.load ~dir in
  Alcotest.(check string)
    "fingerprint survives the round trip" (Spec.fingerprint s)
    (Spec.fingerprint s');
  Alcotest.(check string)
    "canonical serialisation survives"
    (Obs.Json.to_string (Spec.to_json s))
    (Obs.Json.to_string (Spec.to_json s'))

let test_spec_rejects_invalid () =
  let rejects s =
    match Spec.validate s with
    | _ -> Alcotest.fail "expected Invalid_input"
    | exception Obs.Error.Archpred (Obs.Error.Invalid_input _) -> ()
  in
  rejects { (spec ()) with Spec.sample_size = 1 };
  rejects { (spec ()) with Spec.p_min_grid = [] };
  rejects { (spec ()) with Spec.shard_unit = 0 };
  rejects
    {
      (spec ()) with
      Spec.mode = Spec.Accuracy { sizes = []; target_mean_pct = 1. };
    };
  rejects
    {
      (spec ()) with
      Spec.test_n = 0;
      mode = Spec.Accuracy { sizes = [ 8 ]; target_mean_pct = 1. };
    }

(* ------------------------------------------------------------------ *)
(* Journal                                                            *)
(* ------------------------------------------------------------------ *)

let test_journal_commit_and_merge () =
  with_dir @@ fun dir ->
  Journal.init ~dir;
  let j = Journal.open_ ~dir ~worker:"w0" ~fingerprint:"fp" in
  Journal.append_result j ~stage:"sim.0" ~index:0 ~value:1.5;
  Journal.append_result j ~stage:"sim.0" ~index:1 ~value:(-0.25);
  Journal.commit_unit j ~stage:"sim.0" ~lo:0 ~hi:2;
  (* Appended but never committed: must not merge. *)
  Journal.append_result j ~stage:"sim.0" ~index:2 ~value:9.;
  Journal.close j;
  let scan = Journal.scan_dir ~dir ~fingerprint:"fp" in
  Alcotest.(check bool)
    "unit committed" true
    (Journal.unit_complete scan ~stage:"sim.0" ~lo:0 ~hi:2);
  Alcotest.(check (option (float 0.)))
    "value 0" (Some 1.5)
    (Journal.value scan ~stage:"sim.0" ~index:0);
  Alcotest.(check (option (float 0.)))
    "value 1" (Some (-0.25))
    (Journal.value scan ~stage:"sim.0" ~index:1);
  Alcotest.(check (option (float 0.)))
    "uncommitted result dropped" None
    (Journal.value scan ~stage:"sim.0" ~index:2)

let test_journal_fingerprint_mismatch () =
  with_dir @@ fun dir ->
  Journal.init ~dir;
  let j = Journal.open_ ~dir ~worker:"w0" ~fingerprint:"fp" in
  Journal.close j;
  match Journal.scan_dir ~dir ~fingerprint:"other" with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Obs.Error.Archpred (Obs.Error.Parse_error _) -> ()

(* Truncate the journal at every byte boundary: the scan must never
   crash, and merged values must always be a committed prefix. *)
let test_journal_torn_tail () =
  with_dir @@ fun dir ->
  Journal.init ~dir;
  let j = Journal.open_ ~dir ~worker:"w0" ~fingerprint:"fp" in
  for i = 0 to 5 do
    Journal.append_result j ~stage:"s" ~index:i ~value:(float_of_int i)
  done;
  Journal.commit_unit j ~stage:"s" ~lo:0 ~hi:3;
  Journal.commit_unit j ~stage:"s" ~lo:3 ~hi:6;
  Journal.close j;
  let path = Filename.concat dir (Filename.concat "journals" "w0.journal") in
  let full = In_channel.with_open_bin path In_channel.input_all in
  let len = String.length full in
  for cut = 0 to len do
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (String.sub full 0 cut));
    let scan = Journal.scan_dir ~dir ~fingerprint:"fp" in
    let first_ok = Journal.unit_complete scan ~stage:"s" ~lo:0 ~hi:3 in
    let second_ok = Journal.unit_complete scan ~stage:"s" ~lo:3 ~hi:6 in
    if second_ok && not first_ok then
      Alcotest.fail "later unit merged without the earlier one";
    for i = 0 to 5 do
      let committed = if i < 3 then first_ok else second_ok in
      match Journal.value scan ~stage:"s" ~index:i with
      | Some v ->
          if not committed then
            Alcotest.failf "cut=%d: uncommitted index %d merged" cut i;
          Alcotest.(check (float 0.)) "merged bits" (float_of_int i) v
      | None ->
          if committed then
            Alcotest.failf "cut=%d: committed index %d lost" cut i
    done
  done

let test_journal_first_wins_across_workers () =
  with_dir @@ fun dir ->
  Journal.init ~dir;
  (* Two workers commit the same unit; filename order (w0 < w1) decides,
     and since real values are deterministic the duplicate is
     bit-identical anyway — here we use different values to observe the
     canonical choice. *)
  let j0 = Journal.open_ ~dir ~worker:"w0" ~fingerprint:"fp" in
  let j1 = Journal.open_ ~dir ~worker:"w1" ~fingerprint:"fp" in
  Journal.append_result j1 ~stage:"s" ~index:0 ~value:2.;
  Journal.commit_unit j1 ~stage:"s" ~lo:0 ~hi:1;
  Journal.append_result j0 ~stage:"s" ~index:0 ~value:1.;
  Journal.commit_unit j0 ~stage:"s" ~lo:0 ~hi:1;
  Journal.close j0;
  Journal.close j1;
  let scan = Journal.scan_dir ~dir ~fingerprint:"fp" in
  Alcotest.(check (option (float 0.)))
    "w0 wins by filename order" (Some 1.)
    (Journal.value scan ~stage:"s" ~index:0)

(* ------------------------------------------------------------------ *)
(* End-to-end: N shards vs single process                             *)
(* ------------------------------------------------------------------ *)

(* The single-process reference, consuming the root generator exactly as
   the sharded stages do: test points first, then training. *)
let reference_train ?(domains = 1) (s : Spec.t) =
  let rng = Rng.create s.Spec.seed in
  let test = Paper_space.test_points rng ~n:s.Spec.test_n in
  let response = Spec.response s in
  let actual = Array.map response.Response.eval test in
  let config =
    Spec.config s |> Config.with_rng rng |> Config.with_domains domains
  in
  match s.Spec.mode with
  | Spec.Train ->
      (Build.train ~config ~space:Paper_space.space ~response (), [])
  | Spec.Accuracy { sizes; target_mean_pct } ->
      let h =
        Build.build_to_accuracy ~config ~space:Paper_space.space ~response
          ~sizes ~test_points:test ~test_responses:actual ~target_mean_pct ()
      in
      (h.Build.final.Build.trained, h.Build.steps)

(* Drive [workers] in-process worker loops concurrently (one domain
   each) against a shared run directory, then merge and reassemble. *)
let sharded_outcome ?(workers = 2) (s : Spec.t) =
  with_dir @@ fun dir ->
  Spec.save ~dir s;
  Claim.init ~dir;
  Journal.init ~dir;
  let doms =
    List.init workers (fun k ->
        Domain.spawn (fun () ->
            Worker.run ~dir ~id:(Printf.sprintf "w%d" k) ~poll:0.002 ()))
  in
  List.iter Domain.join doms;
  let scan = Journal.scan_dir ~dir ~fingerprint:(Spec.fingerprint s) in
  Stages.assemble (Stages.create s) scan

let model (trained : Build.trained) = Persist.to_string trained.Build.predictor

let test_shards_match_single_process () =
  let s = spec () in
  let reference = model (fst (reference_train ~domains:1 s)) in
  Alcotest.(check string)
    "reference stable at 4 domains" reference
    (model (fst (reference_train ~domains:4 s)));
  List.iter
    (fun workers ->
      let outcome = sharded_outcome ~workers s in
      Alcotest.(check string)
        (Printf.sprintf "%d-shard run is bit-identical" workers)
        reference
        (model outcome.Stages.final))
    [ 1; 2; 4 ]

let test_shards_match_accuracy_schedule () =
  let s =
    spec ~mode:(Spec.Accuracy { sizes = [ 8; 12 ]; target_mean_pct = 0. }) ()
  in
  let ref_trained, ref_steps = reference_train ~domains:1 s in
  let outcome = sharded_outcome ~workers:2 s in
  Alcotest.(check string)
    "final model bit-identical" (model ref_trained)
    (model outcome.Stages.final);
  Alcotest.(check int)
    "same number of steps" (List.length ref_steps)
    (List.length outcome.Stages.steps);
  List.iter2
    (fun (a : Build.step) (b : Build.step) ->
      Alcotest.(check int) "step size" a.Build.size b.Build.size;
      Alcotest.(check string)
        "step model bit-identical" (model a.Build.trained)
        (model b.Build.trained))
    ref_steps outcome.Stages.steps

let test_shards_match_stream_refit () =
  let s =
    spec ~stream_refit:true
      ~mode:(Spec.Accuracy { sizes = [ 8; 12 ]; target_mean_pct = 0. })
      ()
  in
  let ref_trained, _ = reference_train ~domains:1 s in
  Alcotest.(check string)
    "stream reference stable at 4 domains"
    (model ref_trained)
    (model (fst (reference_train ~domains:4 s)));
  let outcome = sharded_outcome ~workers:2 s in
  Alcotest.(check string)
    "streamed sharded model bit-identical" (model ref_trained)
    (model outcome.Stages.final)

(* Kill one worker mid-unit (injected fault after it has claimed a unit),
   release its claims the way the coordinator does, run a replacement
   under a fresh id, and check the merged model is untouched. *)
let crash_and_recover (s : Spec.t) ~site ~after =
  with_faults @@ fun () ->
  with_dir @@ fun dir ->
  Spec.save ~dir s;
  Claim.init ~dir;
  Journal.init ~dir;
  let fingerprint = Spec.fingerprint s in
  Fault.arm ~site ~after ();
  (match Worker.run ~dir ~id:"w0" ~poll:0.002 () with
  | () -> Alcotest.fail "fault did not fire"
  | exception Fault.Injected _ -> ());
  Fault.disarm site;
  Alcotest.(check bool) "the casualty hit the site" true (Fault.hits site > 0);
  (* Coordinator recovery: release the dead worker's incomplete claims
     so the replacement can pick the unit up. *)
  let scan = Journal.scan_dir ~dir ~fingerprint in
  Claim.release_incomplete ~dir ~owner:"w0" ~complete:(fun ~stage ~lo ~hi ->
      Journal.unit_complete scan ~stage ~lo ~hi);
  Worker.run ~dir ~id:"w0.r1" ~poll:0.002 ();
  let scan = Journal.scan_dir ~dir ~fingerprint in
  Stages.assemble (Stages.create s) scan

let test_crash_mid_unit_recovers () =
  let s = spec () in
  let reference = model (fst (reference_train s)) in
  List.iter
    (fun (site, after) ->
      let outcome = crash_and_recover s ~site ~after in
      Alcotest.(check string)
        (Printf.sprintf "recovered model identical (%s after %d)" site after)
        reference
        (model outcome.Stages.final))
    [ ("shard.unit", 2); ("shard.append", 5); ("shard.claim", 3) ]

let () =
  Alcotest.run "shard"
    [
      ( "plan",
        [
          plan_partition_exact;
          plan_name_roundtrip;
          Alcotest.test_case "malformed names" `Quick test_plan_malformed;
        ] );
      ( "claim",
        [
          Alcotest.test_case "exclusive" `Quick test_claim_exclusive;
          Alcotest.test_case "release incomplete" `Quick
            test_claim_release_incomplete;
        ] );
      ( "spec",
        [
          Alcotest.test_case "round trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "rejects invalid" `Quick test_spec_rejects_invalid;
        ] );
      ( "journal",
        [
          Alcotest.test_case "commit and merge" `Quick
            test_journal_commit_and_merge;
          Alcotest.test_case "fingerprint mismatch" `Quick
            test_journal_fingerprint_mismatch;
          Alcotest.test_case "torn tail at every byte" `Quick
            test_journal_torn_tail;
          Alcotest.test_case "first wins canonically" `Quick
            test_journal_first_wins_across_workers;
        ] );
      ( "bit-identity",
        [
          Alcotest.test_case "1/2/4 shards vs single process" `Quick
            test_shards_match_single_process;
          Alcotest.test_case "accuracy schedule" `Quick
            test_shards_match_accuracy_schedule;
          Alcotest.test_case "stream refit" `Quick
            test_shards_match_stream_refit;
          Alcotest.test_case "crash mid-unit recovers" `Quick
            test_crash_mid_unit_recovers;
        ] );
    ]
