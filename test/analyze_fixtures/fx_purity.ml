(* Textually clean — the wall-clock reach is one call away in
   [Fx_clock], so only transitive effect propagation can flag the
   crossing here. *)

let stamp x = Fx_clock.now () +. x
