(* Top-level mutable state the race fixtures reach for.  [record] is
   the "audited helper" a sanctions entry can bless: without a
   race-barrier for it, every closure that calls it trips the
   domain-race pass through the call graph. *)

let counter = ref 0
let table : (int, int) Hashtbl.t = Hashtbl.create 16

let record x =
  counter := !counter + x;
  Hashtbl.replace table x x
