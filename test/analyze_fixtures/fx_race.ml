(* Domain-race fixtures: each [run_*] hands a closure to
   [Stats.Parallel.map].  [run] mutates a top-level ref directly,
   [run_recorded] reaches the same state one call away through
   [Fx_state.record] (the sanctionable shape), and [run_captured]
   mutates a local captured from the spawning scope. *)

let run xs =
  Archpred_stats.Parallel.map
    (fun x ->
      Fx_state.counter := !Fx_state.counter + x;
      x)
    xs

let run_recorded xs =
  Archpred_stats.Parallel.map
    (fun x ->
      Fx_state.record x;
      x)
    xs

let run_captured xs =
  let hits = ref 0 in
  let out =
    Archpred_stats.Parallel.map
      (fun x ->
        incr hits;
        x + 1)
      xs
  in
  (!hits, out)
