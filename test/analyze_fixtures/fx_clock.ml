(* Effect seed for the purity fixtures: the one wall-clock read. *)

let now () = Unix.gettimeofday ()
