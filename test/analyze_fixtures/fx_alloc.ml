(* Zero-alloc fixtures.  [hot_pair] boxes a tuple; [cool_add] uses a
   ref the compiler unboxes (Simplif.eliminate_ref), which the checker
   must accept; [hot_allowed] carries a pragma blessing its boxing.
   The pragma just below is deliberately malformed (no reason) so the
   bad-pragma meta-rule has a fixture too. *)

(* archpred-analyze: allow hot-alloc *)

let hot_pair x = (x, x + 1)

let cool_add x =
  let acc = ref x in
  incr acc;
  !acc

let hot_allowed x =
  (* archpred-analyze: allow hot-alloc -- fixture: the boxing is the point *)
  (x, x)
