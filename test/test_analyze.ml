(* Golden tests for archpred-analyze (tools/analyze): each of the
   three interprocedural passes is exercised against the seeded
   fixture library in test/analyze_fixtures/ — detection of a real
   violation, acceptance of the sanctioned / pragma'd variant — plus
   the registry parsers, the pragma meta-rules, Core.Error exit codes
   and the JSON record shape.  The "real tree analyzes clean" half of
   the contract lives in the root dune file: the @analyze alias is
   attached to runtest.

   The fixtures are compiled as an ordinary dune library; the test
   points the engine directly at its .cmt artifacts inside the build
   tree (tests run with cwd = _build/default/test). *)

module Analyze = Analyze_engine.Analyze
module Error = Archpred_obs.Error
module Json = Archpred_obs.Json

let fixture_cmt_dir = "analyze_fixtures/.analyze_fixtures.objs/byte"

let fixture_cmts =
  Sys.readdir fixture_cmt_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".cmt")
  |> List.sort String.compare
  |> List.map (Filename.concat fixture_cmt_dir)

(* Hermetic runs: registries are always passed explicitly so the
   repo's own sanctions.sexp/hotpaths.sexp cannot leak in. *)
let run ?(sanctions = []) ?(hotpaths = []) ?scope_of () =
  Analyze.analyze ~sanctions ~hotpaths ?scope_of ~root:".."
    ~cmt_paths:fixture_cmts ()

let by_rule rule findings =
  List.filter (fun f -> f.Analyze.rule = rule) findings

let in_file file findings =
  List.for_all (fun f -> f.Analyze.file = file) findings

let fx file = "test/analyze_fixtures/" ^ file

let test_fixtures_compiled () =
  Alcotest.(check bool)
    "fixture cmts discovered" true
    (List.length fixture_cmts >= 5)

(* --- domain-race --- *)

(* fx_race.ml seeds three races: a direct top-level mutation inside
   the parallel closure, one reached through Fx_state.record (reported
   once per reachable global — counter and table — so two findings at
   that call site), and a captured-local mutation. *)

let races fs = by_rule "domain-race" fs

let test_race_detected () =
  let fs = races (run ()) in
  Alcotest.(check int) "four race findings" 4 (List.length fs);
  Alcotest.(check bool)
    "all at the parallel entry's closures" true
    (in_file (fx "fx_race.ml") fs)

let barrier name reason =
  { Analyze.s_kind = Analyze.Race_barrier; s_name = name; s_reason = reason }

let test_race_sanctioned () =
  (* Blessing the audited helper removes exactly the transitive
     finding; deleting this entry from a registry resurfaces it (the
     3-vs-2 difference is the acceptance criterion for sanction
     hygiene). *)
  let sanctions =
    [ barrier "Analyze_fixtures.Fx_state.record" "fixture: audited helper" ]
  in
  let fs = races (run ~sanctions ()) in
  Alcotest.(check int) "record blessed, two races remain" 2 (List.length fs)

let test_race_global_sanctioned () =
  (* Declaring the state itself concurrency-safe silences both the
     direct mutation and the one through [record]; the captured-local
     race is not nameable state and must survive. *)
  let g name =
    { Analyze.s_kind = Analyze.Race_global;
      s_name = name;
      s_reason = "fixture: per-domain totals";
    }
  in
  let sanctions =
    [ g "Analyze_fixtures.Fx_state.counter";
      g "Analyze_fixtures.Fx_state.table";
    ]
  in
  let fs = races (run ~sanctions ()) in
  Alcotest.(check int) "only the captured-local race is left" 1
    (List.length fs)

(* --- hot-alloc --- *)

let hot name = "Analyze_fixtures.Fx_alloc." ^ name
let allocs fs = by_rule "hot-alloc" fs

let test_alloc_detected () =
  match allocs (run ~hotpaths:[ hot "hot_pair" ] ()) with
  | [ f ] ->
      Alcotest.(check string) "boxing flagged in the fixture"
        (fx "fx_alloc.ml") f.Analyze.file
  | fs -> Alcotest.failf "expected one hot-alloc, got %d" (List.length fs)

let test_alloc_unboxed_ref_ok () =
  Alcotest.(check int) "compiler-unboxable ref accepted" 0
    (List.length (allocs (run ~hotpaths:[ hot "cool_add" ] ())))

let test_alloc_pragma () =
  let fs = run ~hotpaths:[ hot "hot_allowed" ] () in
  Alcotest.(check int) "pragma suppresses the boxing" 0
    (List.length (allocs fs));
  Alcotest.(check int) "and the pragma counts as used" 0
    (List.length (by_rule "unused-pragma" fs))

let test_unknown_hotpath () =
  (* A manifest entry that names nothing is a loud failure — renames
     cannot silently drop coverage. *)
  match run ~hotpaths:[ hot "does_not_exist" ] () with
  | _ -> Alcotest.fail "expected Invalid_input for unknown hot-path"
  | exception Error.Archpred e ->
      Alcotest.(check int) "unknown hot-path maps to exit 2" 2
        (Error.exit_code e)

(* --- impure --- *)

(* Re-scope the seed unit out of banned territory so the single
   finding must be the transitive crossing in the caller. *)
let rescope_clock rel =
  if Filename.basename rel = "fx_clock.ml" then None
  else Analyze.scope_of_rel rel

let impures fs = by_rule "impure" fs

let test_purity_transitive () =
  match impures (run ~scope_of:rescope_clock ()) with
  | [ f ] ->
      Alcotest.(check string) "flagged at the crossing, not the seed"
        (fx "fx_purity.ml") f.Analyze.file
  | fs -> Alcotest.failf "expected one impure finding, got %d"
            (List.length fs)

let test_purity_frontier () =
  (* With the default scoping both units are banned: the seed is
     reported where the clock is read, and the caller is NOT
     double-reported (its callee already carries the finding). *)
  match impures (run ()) with
  | [ f ] ->
      Alcotest.(check string) "one finding, at the seed" (fx "fx_clock.ml")
        f.Analyze.file
  | fs -> Alcotest.failf "expected one impure finding, got %d"
            (List.length fs)

let test_purity_barrier () =
  let sanctions =
    [ { Analyze.s_kind = Analyze.Purity_barrier;
        s_name = "Analyze_fixtures.Fx_clock.now";
        s_reason = "fixture: contained timestamp";
      } ]
  in
  Alcotest.(check int) "barrier stops effect propagation" 0
    (List.length (impures (run ~scope_of:rescope_clock ~sanctions ())))

(* --- pragma meta-rules --- *)

let test_unused_pragma () =
  (* With hot_allowed absent from the manifest its pragma suppresses
     nothing and is itself a finding. *)
  let fs = by_rule "unused-pragma" (run ()) in
  Alcotest.(check bool) "stale pragma flagged" true
    (List.exists (fun f -> f.Analyze.file = fx "fx_alloc.ml") fs)

let test_bad_pragma () =
  let fs = by_rule "bad-pragma" (run ()) in
  Alcotest.(check bool) "reason is mandatory" true
    (List.exists (fun f -> f.Analyze.file = fx "fx_alloc.ml") fs)

(* --- registries --- *)

let test_parse_sanctions () =
  let src =
    "; registry comment\n\
     (race-barrier Obs.count \"per-domain buffers\")\n\
     (race-global Stats.Parallel.retries_total \"atomic totals\")\n\
     (purity-barrier Serve_net.Daemon.run \"socket loop\")\n"
  in
  match Analyze.parse_sanctions ~path:"sanctions.sexp" src with
  | [ a; b; c ] ->
      Alcotest.(check bool) "kinds" true
        (a.Analyze.s_kind = Analyze.Race_barrier
        && b.Analyze.s_kind = Analyze.Race_global
        && c.Analyze.s_kind = Analyze.Purity_barrier);
      Alcotest.(check string) "name" "Stats.Parallel.retries_total"
        b.Analyze.s_name
  | ss -> Alcotest.failf "expected three sanctions, got %d" (List.length ss)

let test_parse_sanctions_rejects () =
  let expect_parse_error what src =
    match Analyze.parse_sanctions ~path:"sanctions.sexp" src with
    | _ -> Alcotest.fail ("expected Parse_error: " ^ what)
    | exception Error.Archpred e ->
        Alcotest.(check int) (what ^ " maps to exit 5") 5 (Error.exit_code e)
  in
  expect_parse_error "empty reason" "(race-barrier Obs.count \"\")";
  expect_parse_error "unknown kind" "(frobnicate Obs.count \"why\")";
  expect_parse_error "missing name" "(race-barrier)"

let test_parse_hotpaths () =
  let paths =
    Analyze.parse_hotpaths ~path:"hotpaths.sexp"
      "; manifest\n(hot-path Rbf.Batch_kernel.eval_into)\n(hot-path Core.Memo.commit)\n"
  in
  Alcotest.(check (list string)) "manifest parses"
    [ "Rbf.Batch_kernel.eval_into"; "Core.Memo.commit" ]
    paths

(* --- rule table, severities, exit codes, JSON --- *)

let test_rule_table () =
  Alcotest.(check int) "five rules" 5 (List.length Analyze.rules);
  List.iter
    (fun rule ->
      Alcotest.(check bool) (rule ^ " is documented") true
        (List.mem_assoc rule Analyze.rules))
    [ "domain-race"; "hot-alloc"; "impure"; "unused-pragma"; "bad-pragma" ]

let test_every_finding_is_an_error () =
  let fs = run ~hotpaths:[ hot "hot_pair" ] () in
  Alcotest.(check int) "errors = findings" (List.length fs)
    (Analyze.errors fs)

let test_violation_exit_code () =
  let e =
    Error.Invalid_input { where = "archpred_analyze"; what = "findings" }
  in
  Alcotest.(check int) "findings map to exit 2" 2 (Error.exit_code e)

let test_scope_classification () =
  let is rel expect = Analyze.scope_of_rel rel = expect in
  Alcotest.(check bool) "paths classify" true
    (is "lib/rbf/network.ml" (Some Analyze.Lib)
    && is "bin/predict.ml" (Some Analyze.Bin)
    && is "tools/analyze/analyze.ml" (Some Analyze.Tools)
    && is "test/analyze_fixtures/fx_race.ml" (Some Analyze.Test)
    && is "README.md" None)

let test_json_shape () =
  match allocs (run ~hotpaths:[ hot "hot_pair" ] ()) with
  | [ f ] ->
      let j = Analyze.to_json f in
      let str k =
        match Json.member k j with Some (Json.String s) -> s | _ -> "?"
      in
      let int k =
        match Json.member k j with Some (Json.Int i) -> i | _ -> -1
      in
      Alcotest.(check string) "event" "finding" (str "event");
      Alcotest.(check string) "rule" "hot-alloc" (str "rule");
      Alcotest.(check string) "severity" "error" (str "severity");
      Alcotest.(check string) "file" (fx "fx_alloc.ml") (str "file");
      Alcotest.(check bool) "line is 1-based" true (int "line" >= 1);
      (match Json.of_string (Json.to_string j) with
      | Ok j' -> Alcotest.(check bool) "round-trips" true (j = j')
      | Result.Error m -> Alcotest.fail ("did not re-parse: " ^ m))
  | fs -> Alcotest.failf "expected exactly one finding, got %d"
            (List.length fs)

let () =
  Alcotest.run "analyze"
    [
      ( "passes",
        [
          Alcotest.test_case "fixtures compiled" `Quick test_fixtures_compiled;
          Alcotest.test_case "race detected" `Quick test_race_detected;
          Alcotest.test_case "race barrier sanction" `Quick
            test_race_sanctioned;
          Alcotest.test_case "race global sanction" `Quick
            test_race_global_sanctioned;
          Alcotest.test_case "alloc detected" `Quick test_alloc_detected;
          Alcotest.test_case "unboxed ref accepted" `Quick
            test_alloc_unboxed_ref_ok;
          Alcotest.test_case "alloc pragma" `Quick test_alloc_pragma;
          Alcotest.test_case "unknown hot-path" `Quick test_unknown_hotpath;
          Alcotest.test_case "purity transitive" `Quick test_purity_transitive;
          Alcotest.test_case "purity frontier" `Quick test_purity_frontier;
          Alcotest.test_case "purity barrier" `Quick test_purity_barrier;
        ] );
      ( "engine",
        [
          Alcotest.test_case "unused pragma" `Quick test_unused_pragma;
          Alcotest.test_case "bad pragma" `Quick test_bad_pragma;
          Alcotest.test_case "parse sanctions" `Quick test_parse_sanctions;
          Alcotest.test_case "sanctions rejects" `Quick
            test_parse_sanctions_rejects;
          Alcotest.test_case "parse hotpaths" `Quick test_parse_hotpaths;
          Alcotest.test_case "rule table" `Quick test_rule_table;
          Alcotest.test_case "errors severity" `Quick
            test_every_finding_is_an_error;
          Alcotest.test_case "violation exit code" `Quick
            test_violation_exit_code;
          Alcotest.test_case "scope classification" `Quick
            test_scope_classification;
          Alcotest.test_case "json shape" `Quick test_json_shape;
        ] );
    ]
