(* Tests for archpred.core: the paper's design space, responses, model
   tuning, the BuildRBFmodel procedure, predictors, trend sweeps and
   model-driven search.  Simulator-backed cases use short traces. *)

module Design = Archpred_design
module Core = Archpred_core
module Paper_space = Core.Paper_space
module Response = Core.Response
module Build = Core.Build
module Tune = Core.Tune
module Config = Core.Config
module Predictor = Core.Predictor
module Trend = Core.Trend
module Search = Core.Search
module Sim = Archpred_sim
module Rng = Archpred_stats.Rng

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------- Paper_space ---------- *)

let test_space_dimension () =
  Alcotest.(check int) "nine parameters" 9 Paper_space.dim;
  Alcotest.(check int) "names" 9 (Array.length Paper_space.param_names)

let test_space_corner_configs_valid () =
  (* both extreme corners decode into valid simulator configurations *)
  List.iter
    (fun u ->
      let point = Array.make 9 u in
      let cfg = Paper_space.to_config point in
      match Sim.Config.validate cfg with
      | Ok () -> ()
      | Error m -> Alcotest.failf "corner %g invalid: %s" u m)
    [ 0.; 1. ]

let test_space_decoding_ranges () =
  let lo = Design.Space.decode Paper_space.space (Array.make 9 0.) in
  let hi = Design.Space.decode Paper_space.space (Array.make 9 1.) in
  Alcotest.(check (float 0.)) "pipe_depth low" 24. lo.(0);
  Alcotest.(check (float 0.)) "pipe_depth high" 7. hi.(0);
  Alcotest.(check (float 0.)) "rob low" 24. lo.(1);
  Alcotest.(check (float 0.)) "rob high" 128. hi.(1);
  Alcotest.(check (float 1.)) "l2 low 256KB" 262144. lo.(4);
  Alcotest.(check (float 1.)) "l2 high 8MB" 8388608. hi.(4)

let test_iq_lsq_scale_with_rob () =
  let point = Array.make 9 0.5 in
  point.(1) <- 1. (* rob = 128 *);
  point.(2) <- 0. (* iq ratio = 0.25 *);
  let cfg = Paper_space.to_config point in
  Alcotest.(check int) "iq = 0.25 * 128" 32 cfg.Sim.Config.iq_size

let test_test_box_inside_cube () =
  Alcotest.(check bool) "lo in cube" true (Design.Space.contains Paper_space.test_lo);
  Alcotest.(check bool) "hi in cube" true (Design.Space.contains Paper_space.test_hi)

let prop_random_points_give_valid_configs =
  qtest "any cube point decodes to a valid config"
    QCheck2.Gen.(array_size (return 9) (float_range 0. 1.))
    (fun point ->
      Sim.Config.validate (Paper_space.to_config point) = Ok ())

let test_test_points_in_box () =
  let rng = Rng.create 1 in
  let pts = Paper_space.test_points rng ~n:40 in
  Array.iter
    (fun p ->
      Array.iteri
        (fun k u ->
          let a = Float.min Paper_space.test_lo.(k) Paper_space.test_hi.(k) in
          let b = Float.max Paper_space.test_lo.(k) Paper_space.test_hi.(k) in
          if u < a -. 1e-9 || u > b +. 1e-9 then
            Alcotest.failf "coordinate %d out of test box" k)
        p)
    pts

(* ---------- Response ---------- *)

let test_synthetic_responses () =
  let r = Response.synthetic_smooth ~dim:9 in
  let v = r.Response.eval (Array.make 9 0.5) in
  Alcotest.(check bool) "positive" true (v > 0.);
  let cliff = Response.synthetic_cliff ~dim:9 in
  let low = cliff.Response.eval (Array.init 9 (fun k -> if k = 0 then 0.2 else 0.5)) in
  let high = cliff.Response.eval (Array.init 9 (fun k -> if k = 0 then 0.8 else 0.5)) in
  Alcotest.(check bool) "cliff" true (low -. high > 2.)

let test_simulator_response_deterministic () =
  let r = Response.simulator ~trace_length:3_000 Archpred_workloads.Spec2000.crafty in
  let p = Array.make 9 0.5 in
  Alcotest.(check (float 1e-12)) "memoised/deterministic"
    (r.Response.eval p) (r.Response.eval p)

let test_evaluate_many_matches_eval () =
  let r = Response.synthetic_smooth ~dim:9 in
  let rng = Rng.create 5 in
  let pts = Array.init 16 (fun _ -> Array.init 9 (fun _ -> Rng.unit_float rng)) in
  let batch = Response.evaluate_many ~domains:4 r pts in
  Array.iteri
    (fun i p ->
      Alcotest.(check (float 1e-12)) "batch = pointwise" (r.Response.eval p) batch.(i))
    pts

let test_simulator_parallel_consistent () =
  let r = Response.simulator ~trace_length:2_000 Archpred_workloads.Spec2000.parser in
  let rng = Rng.create 6 in
  let pts = Array.init 8 (fun _ -> Array.init 9 (fun _ -> Rng.unit_float rng)) in
  let batch = Response.evaluate_many ~domains:4 r pts in
  let seq = Array.map r.Response.eval pts in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-12)) "parallel = serial" v batch.(i))
    seq

(* ---------- Tune / Build on synthetic surfaces ---------- *)

let synthetic_sample rng n =
  let r = Response.synthetic_smooth ~dim:9 in
  let pts = Design.Lhs.sample rng Paper_space.space ~n in
  (pts, Array.map r.Response.eval pts)

let test_tune_returns_grid_values () =
  let rng = Rng.create 7 in
  let points, responses = synthetic_sample rng 40 in
  let result =
    Tune.tune
      ~config:
        (Config.default
        |> Config.with_p_min_grid [ 1; 2 ]
        |> Config.with_alpha_grid [ 5.; 9. ])
      ~dim:9 ~points ~responses ()
  in
  Alcotest.(check bool) "p_min from grid" true
    (List.mem result.Tune.p_min [ 1; 2 ]);
  Alcotest.(check bool) "alpha from grid" true
    (List.mem result.Tune.alpha [ 5.; 9. ]);
  Alcotest.(check bool) "criterion finite" true
    (Float.is_finite result.Tune.criterion)

let test_build_train_accurate_on_synthetic () =
  let rng = Rng.create 8 in
  let response = Response.synthetic_smooth ~dim:9 in
  let trained =
    Build.train
      ~config:
        (Config.default |> Config.with_rng rng
        |> Config.with_lhs_candidates 20
        |> Config.with_sample_size 60)
      ~space:Paper_space.space ~response ()
  in
  let test = Paper_space.test_points rng ~n:30 in
  let actual = Array.map response.Response.eval test in
  let err = Predictor.errors_on trained.Build.predictor ~points:test ~actual in
  Alcotest.(check bool) "mean error < 3%" true
    (err.Archpred_stats.Error_metrics.mean_pct < 3.)

let test_build_beats_linear_on_cliff () =
  (* the shape claim behind Figure 7, on a synthetic cliff *)
  let rng = Rng.create 9 in
  let response = Response.synthetic_cliff ~dim:9 in
  let trained =
    Build.train
      ~config:
        (Config.default |> Config.with_rng rng
        |> Config.with_lhs_candidates 20
        |> Config.with_sample_size 80)
      ~space:Paper_space.space ~response ()
  in
  let linear =
    Archpred_linreg.Model.stepwise ~points:trained.Build.sample
      ~responses:trained.Build.sample_responses ()
  in
  let test = Paper_space.test_points rng ~n:40 in
  let actual = Array.map response.Response.eval test in
  let rbf_err = Predictor.errors_on trained.Build.predictor ~points:test ~actual in
  let lin_pred = Array.map (Archpred_linreg.Model.predict linear) test in
  let lin_err =
    Archpred_stats.Error_metrics.evaluate ~actual ~predicted:lin_pred
  in
  Alcotest.(check bool) "rbf < linear" true
    (rbf_err.Archpred_stats.Error_metrics.mean_pct
    < lin_err.Archpred_stats.Error_metrics.mean_pct)

let test_build_to_accuracy_stops_early () =
  let rng = Rng.create 10 in
  let response = Response.synthetic_smooth ~dim:9 in
  let test = Paper_space.test_points rng ~n:20 in
  let actual = Array.map response.Response.eval test in
  let history =
    Build.build_to_accuracy
      ~config:
        (Config.default |> Config.with_rng rng |> Config.with_lhs_candidates 10)
      ~space:Paper_space.space ~response ~sizes:[ 40; 60; 80 ]
      ~test_points:test ~test_responses:actual ~target_mean_pct:50. ()
  in
  (* a 50% target is trivially met at the first size *)
  Alcotest.(check int) "one step" 1 (List.length history.Build.steps);
  Alcotest.(check int) "size 40" 40 history.Build.final.Build.size

let test_build_to_accuracy_exhausts_schedule () =
  let rng = Rng.create 11 in
  let response = Response.synthetic_cliff ~dim:9 in
  let test = Paper_space.test_points rng ~n:20 in
  let actual = Array.map response.Response.eval test in
  let history =
    Build.build_to_accuracy
      ~config:
        (Config.default |> Config.with_rng rng |> Config.with_lhs_candidates 5)
      ~space:Paper_space.space ~response ~sizes:[ 30; 50 ] ~test_points:test
      ~test_responses:actual ~target_mean_pct:0.0001 ()
  in
  Alcotest.(check int) "both steps" 2 (List.length history.Build.steps)

(* ---------- Predictor ---------- *)

let trained_synthetic () =
  let rng = Rng.create 12 in
  let response = Response.synthetic_smooth ~dim:9 in
  Build.train
    ~config:
      (Config.default |> Config.with_rng rng
      |> Config.with_lhs_candidates 10
      |> Config.with_sample_size 50)
    ~space:Paper_space.space ~response ()

let test_predictor_natural_units () =
  let trained = trained_synthetic () in
  let p = trained.Build.predictor in
  let natural = [| 12.; 96.; 0.5; 0.5; 4194304.; 9.; 32768.; 32768.; 2. |] in
  let u = Design.Space.encode Paper_space.space natural in
  Alcotest.(check (float 1e-9)) "natural = encoded"
    (Predictor.predict p u)
    (Predictor.predict_natural p natural)

let test_predictor_rejects_outside () =
  let trained = trained_synthetic () in
  Alcotest.check_raises "outside cube"
    (Invalid_argument "Space: point outside unit cube") (fun () ->
      ignore (Predictor.predict trained.Build.predictor (Array.make 9 1.5)))

(* ---------- Trend ---------- *)

let test_trend_shapes () =
  let trained = trained_synthetic () in
  let base = Array.make 9 0.5 in
  let series =
    Trend.sweep ~predictor:trained.Build.predictor ~base ~dim1:6 ~steps1:3
      ~dim2:5 ~steps2:5 ()
  in
  Alcotest.(check int) "rows" 3 (Array.length series);
  Array.iter
    (fun (s : Trend.series) ->
      Alcotest.(check int) "cols" 5 (Array.length s.Trend.predicted);
      Alcotest.(check bool) "no simulation requested" true
        (s.Trend.simulated = None))
    series

let test_trend_with_simulation () =
  let trained = trained_synthetic () in
  let response = Response.synthetic_smooth ~dim:9 in
  let base = Array.make 9 0.5 in
  let series =
    Trend.sweep ~simulate:response ~predictor:trained.Build.predictor ~base
      ~dim1:0 ~steps1:2 ~dim2:1 ~steps2:3 ()
  in
  Array.iter
    (fun (s : Trend.series) ->
      match s.Trend.simulated with
      | Some sim -> Alcotest.(check int) "sim cols" 3 (Array.length sim)
      | None -> Alcotest.fail "expected simulated values")
    series

(* ---------- Search ---------- *)

let test_search_finds_low_corner () =
  (* synthetic_smooth decreases in x0 (exp(-2a)) and increases in x1;
     the minimiser should push x0 high and x1 low *)
  let rng = Rng.create 13 in
  let trained = trained_synthetic () in
  let result =
    Search.minimize
      ~config:(Config.with_rng rng Config.default)
      ~scan:500 ~predictor:trained.Build.predictor ()
  in
  Alcotest.(check bool) "x0 pushed high" true (result.Search.point.(0) > 0.6);
  Alcotest.(check bool) "x1 pushed low" true (result.Search.point.(1) < 0.4);
  Alcotest.(check bool) "evaluations counted" true (result.Search.evaluations >= 500)

let test_search_respects_constraint () =
  let rng = Rng.create 14 in
  let trained = trained_synthetic () in
  let constraint_ p = p.(0) <= 0.5 in
  let result =
    Search.minimize
      ~config:(Config.with_rng rng Config.default)
      ~scan:500 ~constraint_ ~predictor:trained.Build.predictor ()
  in
  Alcotest.(check bool) "constraint held" true (result.Search.point.(0) <= 0.5)

let test_search_infeasible () =
  let rng = Rng.create 15 in
  let trained = trained_synthetic () in
  Alcotest.check_raises "no feasible point"
    (Core.Error.Archpred
       (Core.Error.Infeasible
          { where = "Search.minimize"; what = "no feasible point found in scan" }))
    (fun () ->
      ignore
        (Search.minimize
           ~config:(Config.with_rng rng Config.default)
           ~scan:10
           ~constraint_:(fun _ -> false)
           ~predictor:trained.Build.predictor ()))

(* ---------- integration: simulator-backed model ---------- *)

let test_end_to_end_simulator_model () =
  let rng = Rng.create 16 in
  let response =
    Response.simulator ~trace_length:5_000 Archpred_workloads.Spec2000.crafty
  in
  let trained =
    Build.train
      ~config:
        (Config.default |> Config.with_rng rng
        |> Config.with_lhs_candidates 10
        |> Config.with_p_min_grid [ 1 ]
        |> Config.with_alpha_grid [ 7. ]
        |> Config.with_sample_size 30)
      ~space:Paper_space.space ~response ()
  in
  let test = Paper_space.test_points rng ~n:10 in
  let actual = Response.evaluate_many response test in
  let err = Predictor.errors_on trained.Build.predictor ~points:test ~actual in
  (* a crude model from 30 tiny simulations: just require sane errors *)
  Alcotest.(check bool) "mean error bounded" true
    (err.Archpred_stats.Error_metrics.mean_pct < 60.);
  Alcotest.(check bool) "predictions positive" true
    (Array.for_all
       (fun p -> Predictor.predict trained.Build.predictor p > 0.)
       test)


(* ---------- Crossval ---------- *)

let test_crossval_perfect_model () =
  (* a trainer that returns the true function: zero CV error *)
  let rng = Rng.create 20 in
  let f p = 2. +. p.(0) in
  let points =
    Array.init 25 (fun _ -> Array.init 9 (fun _ -> Rng.unit_float rng))
  in
  let responses = Array.map f points in
  let cv =
    Core.Crossval.k_fold ~k:5 ~rng
      ~train:(fun ~points:_ ~responses:_ held -> Array.map f held)
      ~points ~responses ()
  in
  Alcotest.(check (float 1e-9)) "zero error" 0. cv.Core.Crossval.mean_pct

let test_crossval_rbf_trainer () =
  let rng = Rng.create 21 in
  let response = Response.synthetic_smooth ~dim:9 in
  let points = Design.Lhs.sample rng Paper_space.space ~n:50 in
  let responses = Array.map response.Response.eval points in
  let cv =
    Core.Crossval.k_fold ~k:5 ~rng
      ~train:(fun ~points ~responses p ->
        (Core.Crossval.rbf_trainer ~dim:9 ()) ~points ~responses p)
      ~points ~responses ()
  in
  Alcotest.(check bool) "smooth surface CV error < 10%" true
    (cv.Core.Crossval.mean_pct < 10.);
  Alcotest.(check int) "residual per point" 50
    (Array.length cv.Core.Crossval.residuals)

let test_crossval_too_few_points () =
  let rng = Rng.create 22 in
  Alcotest.check_raises "n < k"
    (Core.Error.Archpred
       (Core.Error.Invalid_input
          { where = "Crossval.k_fold"; what = "fewer points than folds" }))
    (fun () ->
      ignore
        (Core.Crossval.k_fold ~k:5 ~rng
           ~train:(fun ~points:_ ~responses:_ held ->
             Array.map (fun _ -> 0.) held)
           ~points:[| [| 0.5 |] |] ~responses:[| 1. |] ()))

(* ---------- Adaptive ---------- *)

let test_adaptive_budget_accounting () =
  let rng = Rng.create 23 in
  let response = Response.synthetic_smooth ~dim:9 in
  let r =
    Core.Adaptive.run ~initial:15 ~batch:5 ~rounds:2 ~pool:50 ~rng
      ~space:Paper_space.space ~response ()
  in
  Alcotest.(check int) "budget = initial + rounds*batch" 25
    r.Core.Adaptive.total_simulations;
  Alcotest.(check int) "one step per round + final" 3
    (List.length r.Core.Adaptive.steps);
  Alcotest.(check int) "sample recorded" 25
    (Array.length r.Core.Adaptive.trained.Build.sample)

let test_adaptive_model_usable () =
  let rng = Rng.create 24 in
  let response = Response.synthetic_smooth ~dim:9 in
  let r =
    Core.Adaptive.run ~initial:20 ~batch:8 ~rounds:2 ~pool:100 ~rng
      ~space:Paper_space.space ~response ()
  in
  let test = Paper_space.test_points rng ~n:20 in
  let actual = Array.map response.Response.eval test in
  let err =
    Predictor.errors_on r.Core.Adaptive.trained.Build.predictor ~points:test
      ~actual
  in
  Alcotest.(check bool) "reasonable accuracy" true
    (err.Archpred_stats.Error_metrics.mean_pct < 10.)

(* ---------- Persist ---------- *)

let test_persist_roundtrip () =
  let trained = trained_synthetic () in
  let text = Core.Persist.to_string trained.Build.predictor in
  let loaded = Core.Persist.of_string text in
  Alcotest.(check bool) "no tree" true (loaded.Predictor.tree = None);
  Alcotest.(check int) "p_min" trained.Build.predictor.Predictor.p_min
    loaded.Predictor.p_min;
  (* predictions agree exactly *)
  let rng = Rng.create 25 in
  for _ = 1 to 20 do
    let p = Array.init 9 (fun _ -> Rng.unit_float rng) in
    Alcotest.(check (float 1e-12)) "same prediction"
      (Predictor.predict trained.Build.predictor p)
      (Predictor.predict loaded p)
  done

let test_persist_file_roundtrip () =
  let trained = trained_synthetic () in
  let path = Filename.temp_file "archpred" ".model" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Core.Persist.save trained.Build.predictor path;
      let loaded = Core.Persist.load path in
      let p = Array.make 9 0.25 in
      Alcotest.(check (float 1e-12)) "file roundtrip"
        (Predictor.predict trained.Build.predictor p)
        (Predictor.predict loaded p))

let test_persist_rejects_garbage () =
  Alcotest.(check bool) "garbage fails" true
    (match Core.Persist.of_string "not a model\n" with
    | exception Core.Error.Archpred (Core.Error.Parse_error _) -> true
    | _ -> false)

let test_persist_rejects_truncated () =
  let trained = trained_synthetic () in
  let text = Core.Persist.to_string trained.Build.predictor in
  let truncated = String.sub text 0 (String.length text / 2) in
  Alcotest.(check bool) "truncated fails" true
    (match Core.Persist.of_string truncated with
    | exception Core.Error.Archpred (Core.Error.Parse_error _) -> true
    | _ -> false)

(* ---------- batched prediction ---------- *)

let check_bits msg expected actual =
  if
    not
      (Int64.equal (Int64.bits_of_float expected) (Int64.bits_of_float actual))
  then Alcotest.failf "%s: scalar %h <> batch %h" msg expected actual

let test_predict_batch_bit_identical () =
  (* models trained at 1 and 4 domains, plus a Persist round-trip of
     each: the packed kernel rebuilt at load time must replay the
     scalar path exactly, at every batch size *)
  let train domains =
    Build.train
      ~config:
        (Config.default
        |> Config.with_rng (Rng.create 12)
        |> Config.with_lhs_candidates 10
        |> Config.with_domains domains
        |> Config.with_sample_size 50)
      ~space:Paper_space.space
      ~response:(Response.synthetic_smooth ~dim:9)
      ()
  in
  let d1 = (train 1).Build.predictor and d4 = (train 4).Build.predictor in
  let models =
    [
      ("domains=1", d1);
      ("domains=4", d4);
      ("persisted d1", Core.Persist.of_string (Core.Persist.to_string d1));
      ("persisted d4", Core.Persist.of_string (Core.Persist.to_string d4));
    ]
  in
  let rng = Rng.create 31 in
  List.iter
    (fun (name, p) ->
      List.iter
        (fun n ->
          let pts =
            Array.init n (fun _ -> Array.init 9 (fun _ -> Rng.unit_float rng))
          in
          let batch = Predictor.predict_batch p pts in
          Alcotest.(check int) "one output per point" n (Array.length batch);
          Array.iteri
            (fun i q ->
              check_bits
                (Printf.sprintf "%s n=%d i=%d" name n i)
                (Predictor.predict p q) batch.(i))
            pts)
        [ 1; 7; 64; 256 ])
    models

let test_predict_batch_validates () =
  (* same contract as the scalar path: every point is validated *)
  let trained = trained_synthetic () in
  Alcotest.check_raises "arity mismatch rejected"
    (Invalid_argument "Space: point arity mismatch") (fun () ->
      ignore
        (Predictor.predict_batch trained.Build.predictor [| [| 0.5; 0.5 |] |]))

let test_errors_on_matches_scalar () =
  let trained = trained_synthetic () in
  let p = trained.Build.predictor in
  let rng = Rng.create 44 in
  let points =
    Array.init 30 (fun _ -> Array.init 9 (fun _ -> Rng.unit_float rng))
  in
  let actual = Array.init 30 (fun _ -> 1. +. Rng.unit_float rng) in
  let batched = Predictor.errors_on p ~points ~actual in
  let predicted = Array.map (Predictor.predict p) points in
  let scalar =
    Archpred_stats.Error_metrics.evaluate ~actual ~predicted
  in
  Alcotest.(check (float 0.)) "same mean_pct"
    scalar.Archpred_stats.Error_metrics.mean_pct
    batched.Archpred_stats.Error_metrics.mean_pct

(* ---------- memo cache ---------- *)

module Memo = Core.Memo

let grid_sample_size = 10

let grid_point u =
  Design.Space.snap Paper_space.space ~sample_size:grid_sample_size
    (Array.make 9 u)

let test_memo_trace () =
  (* hand-computed trace against a capacity-2 cache:
       miss A, hit A, miss B, miss C (evicts A), miss A, hit B, hit C *)
  let cache =
    Memo.create ~capacity:2 ~space:Paper_space.space
      ~sample_size:grid_sample_size ()
  in
  let a = grid_point 0. and b = grid_point 0.5 and c = grid_point 1. in
  (match Memo.lookup cache a with
  | Memo.Miss k -> Memo.insert cache k 1.
  | _ -> Alcotest.fail "expected miss on A");
  (match Memo.lookup cache a with
  | Memo.Hit v -> Alcotest.(check (float 0.)) "A cached" 1. v
  | _ -> Alcotest.fail "expected hit on A");
  (match Memo.lookup cache b with
  | Memo.Miss k -> Memo.insert cache k 2.
  | _ -> Alcotest.fail "expected miss on B");
  (match Memo.lookup cache c with
  | Memo.Miss k -> Memo.insert cache k 3. (* evicts A: LRU *)
  | _ -> Alcotest.fail "expected miss on C");
  (match Memo.lookup cache a with
  | Memo.Miss _ -> ()
  | _ -> Alcotest.fail "A must have been evicted");
  (match Memo.lookup cache b with
  | Memo.Hit v -> Alcotest.(check (float 0.)) "B survives" 2. v
  | _ -> Alcotest.fail "expected hit on B");
  (match Memo.lookup cache c with
  | Memo.Hit v -> Alcotest.(check (float 0.)) "C survives" 3. v
  | _ -> Alcotest.fail "expected hit on C");
  let s = Memo.stats cache in
  Alcotest.(check int) "hits" 3 s.Memo.hits;
  Alcotest.(check int) "misses" 4 s.Memo.misses;
  Alcotest.(check int) "evictions" 1 s.Memo.evictions;
  Alcotest.(check int) "bypasses" 0 s.Memo.bypasses;
  Alcotest.(check int) "size" 2 s.Memo.size

let test_memo_lru_order () =
  let cache =
    Memo.create ~capacity:3 ~space:Paper_space.space
      ~sample_size:grid_sample_size ()
  in
  let insert u v =
    match Memo.lookup cache (grid_point u) with
    | Memo.Miss k -> Memo.insert cache k v
    | _ -> Alcotest.fail "expected miss"
  in
  let values () = List.map snd (Memo.contents cache) in
  insert 0. 1.;
  insert 0.5 2.;
  insert 1. 3.;
  Alcotest.(check (list (float 0.))) "MRU first" [ 3.; 2.; 1. ] (values ());
  (* touching A moves it to the front without changing size *)
  (match Memo.lookup cache (grid_point 0.) with
  | Memo.Hit _ -> ()
  | _ -> Alcotest.fail "expected hit");
  Alcotest.(check (list (float 0.))) "refresh reorders" [ 1.; 3.; 2. ]
    (values ());
  (* a fourth insert evicts the tail (value 2.), deterministically *)
  insert 0.2 4.;
  Alcotest.(check (list (float 0.))) "evicts LRU" [ 4.; 1.; 3. ] (values ());
  Alcotest.(check int) "size bounded" 3 (Memo.stats cache).Memo.size

let test_memo_capacity_bound () =
  let cache =
    Memo.create ~capacity:4 ~space:Paper_space.space ~sample_size:50 ()
  in
  let rng = Rng.create 52 in
  for _ = 1 to 200 do
    let p =
      Design.Space.snap Paper_space.space ~sample_size:50
        (Array.init 9 (fun _ -> Rng.unit_float rng))
    in
    match Memo.lookup cache p with
    | Memo.Miss k -> Memo.insert cache k (Rng.unit_float rng)
    | Memo.Hit _ | Memo.Bypass -> ()
  done;
  let s = Memo.stats cache in
  Alcotest.(check int) "size never exceeds capacity" 4 s.Memo.size;
  Alcotest.(check int) "contents match size" 4
    (List.length (Memo.contents cache));
  Alcotest.(check bool) "evictions happened" true (s.Memo.evictions > 0)

let test_memo_off_grid_bypass () =
  let cache =
    Memo.create ~capacity:8 ~space:Paper_space.space
      ~sample_size:grid_sample_size ()
  in
  let p = grid_point 0.5 in
  p.(0) <- p.(0) +. 1e-13;
  (match Memo.lookup cache p with
  | Memo.Bypass -> ()
  | _ -> Alcotest.fail "off-grid point must bypass");
  let s = Memo.stats cache in
  Alcotest.(check int) "bypass counted" 1 s.Memo.bypasses;
  Alcotest.(check int) "nothing cached" 0 s.Memo.size

let test_memo_cached_bit_identical () =
  let trained = trained_synthetic () in
  let p = trained.Build.predictor in
  let rng = Rng.create 61 in
  (* a pool of on-grid points with repeats, plus one off-grid query *)
  let pool =
    Array.init 12 (fun _ ->
        Design.Space.snap Paper_space.space ~sample_size:grid_sample_size
          (Array.init 9 (fun _ -> Rng.unit_float rng)))
  in
  let off_grid = Array.init 9 (fun _ -> Rng.unit_float rng) in
  let points =
    Array.init 64 (fun i ->
        if i mod 16 = 7 then off_grid else pool.(Rng.int rng 12))
  in
  let cache =
    Memo.create ~capacity:256 ~space:Paper_space.space
      ~sample_size:grid_sample_size ()
  in
  let uncached = Predictor.predict_batch p points in
  let first = Predictor.predict_batch ~cache p points in
  let second = Predictor.predict_batch ~cache p points in
  Array.iteri
    (fun i _ ->
      check_bits (Printf.sprintf "cold i=%d" i) uncached.(i) first.(i);
      check_bits (Printf.sprintf "warm i=%d" i) uncached.(i) second.(i))
    points;
  let s = Memo.stats cache in
  (* inserts land after the whole batch evaluates, so every on-grid
     lookup in the cold pass (60 of 64) is a miss; the warm pass hits
     them all; the 4 off-grid queries bypass in both passes *)
  Alcotest.(check int) "cold pass misses" 60 s.Memo.misses;
  Alcotest.(check int) "warm pass hits" 60 s.Memo.hits;
  Alcotest.(check int) "off-grid bypassed" 8 s.Memo.bypasses

(* ---------- metric responses ---------- *)

let test_power_response () =
  let r =
    Response.simulator_metric ~trace_length:3_000
      ~metric:Response.Energy_per_instruction
      Archpred_workloads.Spec2000.crafty
  in
  let v = r.Response.eval (Array.make 9 0.5) in
  Alcotest.(check bool) "epi positive" true (v > 0.)

let test_metric_names () =
  Alcotest.(check string) "cpi" "cpi" (Response.metric_to_string Response.Cpi);
  Alcotest.(check string) "epi" "epi"
    (Response.metric_to_string Response.Energy_per_instruction);
  Alcotest.(check string) "edp" "edp"
    (Response.metric_to_string Response.Energy_delay_product)


(* ---------- Sensitivity ---------- *)

let test_sensitivity_main_effects () =
  (* synthetic_smooth only involves dims 0, 1 and 2 *)
  let trained = trained_synthetic () in
  let effects = Core.Sensitivity.main_effects trained.Build.predictor in
  let top3 =
    List.filteri (fun i _ -> i < 3) effects
    |> List.map (fun e -> e.Core.Sensitivity.dim)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "active dims ranked first" [ 0; 1; 2 ] top3;
  (* inactive dimensions have (near-)zero main effect *)
  List.iter
    (fun (e : Core.Sensitivity.effect) ->
      if e.Core.Sensitivity.dim > 2 && e.Core.Sensitivity.magnitude > 0.25 then
        Alcotest.failf "dim %d should be inactive (%.3f)"
          e.Core.Sensitivity.dim e.Core.Sensitivity.magnitude)
    effects

let test_sensitivity_total_effects () =
  let trained = trained_synthetic () in
  let rng = Rng.create 33 in
  let effects =
    Core.Sensitivity.total_effects ~samples:256 ~rng trained.Build.predictor
  in
  match effects with
  | first :: _ ->
      Alcotest.(check bool) "strongest is an active dim" true
        (first.Core.Sensitivity.dim <= 2)
  | [] -> Alcotest.fail "no effects"

let test_sensitivity_interaction () =
  let trained = trained_synthetic () in
  (* the surface has a 0.6*x0*x1 term: (0,1) interacts, (5,6) does not *)
  let active = Core.Sensitivity.interaction trained.Build.predictor ~dim1:0 ~dim2:1 in
  let inactive = Core.Sensitivity.interaction trained.Build.predictor ~dim1:5 ~dim2:6 in
  Alcotest.(check bool) "x0*x1 interaction dominates" true (active > inactive);
  Alcotest.check_raises "same dim rejected"
    (Invalid_argument "Sensitivity.interaction: bad dimensions") (fun () ->
      ignore (Core.Sensitivity.interaction trained.Build.predictor ~dim1:1 ~dim2:1))

let test_sensitivity_top_interactions () =
  let trained = trained_synthetic () in
  let tops = Core.Sensitivity.top_interactions ~count:5 trained.Build.predictor in
  Alcotest.(check int) "five pairs" 5 (List.length tops);
  match tops with
  | (a, b, _) :: _ ->
      Alcotest.(check bool) "strongest pair involves x0/x1" true
        ((a = "pipe_depth" && b = "ROB_size")
        || a = "pipe_depth" || b = "ROB_size")
  | [] -> Alcotest.fail "no pairs"


let test_training_deterministic () =
  (* identical seeds give bit-identical models end to end *)
  let response = Response.synthetic_smooth ~dim:9 in
  let train () =
    Build.train
      ~config:
        (Config.default
        |> Config.with_rng (Rng.create 99)
        |> Config.with_lhs_candidates 10
        |> Config.with_sample_size 40)
      ~space:Paper_space.space ~response ()
  in
  let a = train () and b = train () in
  let rng = Rng.create 5 in
  for _ = 1 to 10 do
    let p = Array.init 9 (fun _ -> Rng.unit_float rng) in
    Alcotest.(check (float 0.)) "bit identical"
      (Predictor.predict a.Build.predictor p)
      (Predictor.predict b.Build.predictor p)
  done

let test_tune_domain_invariant () =
  (* The tuning grid is fanned over the pool; ties keep the earliest cell,
     so the winner is bit-identical for every domain count. *)
  let rng = Rng.create 41 in
  let points, responses = synthetic_sample rng 40 in
  let run domains =
    Tune.tune
      ~config:
        (Config.default
        |> Config.with_p_min_grid [ 1; 2 ]
        |> Config.with_alpha_grid [ 5.; 9. ]
        |> Config.with_domains domains)
      ~dim:9 ~points ~responses ()
  in
  let base = run 1 in
  List.iter
    (fun d ->
      let r = run d in
      Alcotest.(check int) "same p_min" base.Tune.p_min r.Tune.p_min;
      Alcotest.(check (float 0.)) "same alpha" base.Tune.alpha r.Tune.alpha;
      Alcotest.(check (float 0.)) "same criterion" base.Tune.criterion
        r.Tune.criterion;
      Alcotest.(check (list int)) "same centers"
        base.Tune.selection.Archpred_rbf.Selection.selected_node_ids
        r.Tune.selection.Archpred_rbf.Selection.selected_node_ids)
    [ 2; 4; 7 ]

let test_train_domain_invariant () =
  (* The headline guarantee: every parallel stage of Build.train preserves
     serial evaluation order, so domains=1 and domains=N give the same
     predictor bit for bit. *)
  let response = Response.synthetic_smooth ~dim:9 in
  let train domains =
    Build.train
      ~config:
        (Config.default
        |> Config.with_rng (Rng.create 99)
        |> Config.with_lhs_candidates 10
        |> Config.with_domains domains
        |> Config.with_sample_size 40)
      ~space:Paper_space.space ~response ()
  in
  let a = train 1 and b = train 5 in
  Alcotest.(check (float 0.)) "same discrepancy" a.Build.discrepancy
    b.Build.discrepancy;
  Alcotest.(check (float 0.)) "same criterion" a.Build.criterion
    b.Build.criterion;
  let rng = Rng.create 6 in
  for _ = 1 to 10 do
    let p = Array.init 9 (fun _ -> Rng.unit_float rng) in
    Alcotest.(check (float 0.)) "bit identical"
      (Predictor.predict a.Build.predictor p)
      (Predictor.predict b.Build.predictor p)
  done


(* ---------- the extended ten-axis space ---------- *)

let test_extended_space_axis () =
  Alcotest.(check int) "ten parameters" 10 Paper_space.extended_dim;
  Alcotest.(check int) "names" 10
    (Array.length Paper_space.extended_param_names);
  Alcotest.(check string) "tenth axis" "cache_policy"
    Paper_space.extended_param_names.(9);
  (* the first nine axes decode exactly as the 9-D space *)
  let a = Paper_space.to_config_extended (Array.make 10 0.5) in
  let b = Paper_space.to_config (Array.make 9 0.5) in
  Alcotest.(check int) "rob matches 9-D decode" b.Sim.Config.rob_size
    a.Sim.Config.rob_size;
  Alcotest.(check int) "l2 matches 9-D decode" b.Sim.Config.l2_size
    a.Sim.Config.l2_size;
  (* the tenth axis walks every policy, in [Cache.Policy.all] order *)
  let policy u =
    let p = Array.make 10 0.5 in
    p.(9) <- u;
    Sim.Cache.Policy.to_string
      (Paper_space.to_config_extended p).Sim.Config.cache_policy
  in
  Alcotest.(check (list string)) "all four policies"
    [ "lru"; "tree-plru"; "qlru"; "mru" ]
    (List.map policy [ 0.; 0.34; 0.67; 1. ])

let prop_extended_points_give_valid_configs =
  qtest "any 10-D point decodes to a valid config"
    QCheck2.Gen.(array_size (return 10) (float_range 0. 1.))
    (fun point ->
      Sim.Config.validate (Paper_space.to_config_extended point) = Ok ())

let test_config_sim_batch_validates () =
  let ok = Config.default |> Config.with_sim_batch 16 |> Config.validate in
  Alcotest.(check int) "accepted" 16 ok.Config.sim_batch;
  Alcotest.(check bool) "sim_batch < 1 rejected" true
    (match Config.validate (Config.default |> Config.with_sim_batch 0) with
    | exception Core.Error.Archpred (Core.Error.Invalid_input _) -> true
    | _ -> false)

let test_train_sim_batch_invariant () =
  (* Batched simulation is bit-identical to the pointwise reference, so
     the chunk size cannot leak into the trained model. *)
  let train b =
    let response =
      Response.simulator ~trace_length:800 Archpred_workloads.Spec2000.twolf
    in
    Build.train
      ~config:
        (Config.default
        |> Config.with_rng (Rng.create 23)
        |> Config.with_lhs_candidates 5
        |> Config.with_p_min_grid [ 1 ]
        |> Config.with_alpha_grid [ 7. ]
        |> Config.with_sample_size 25
        |> Config.with_sim_batch b)
      ~space:Paper_space.space ~response ()
  in
  let a = train 1 and b = train 16 in
  Alcotest.(check (float 0.)) "same discrepancy" a.Build.discrepancy
    b.Build.discrepancy;
  Alcotest.(check (float 0.)) "same criterion" a.Build.criterion
    b.Build.criterion;
  let rng = Rng.create 3 in
  for _ = 1 to 10 do
    let p = Array.init 9 (fun _ -> Rng.unit_float rng) in
    Alcotest.(check (float 0.)) "bit identical"
      (Predictor.predict a.Build.predictor p)
      (Predictor.predict b.Build.predictor p)
  done

let test_extended_training_end_to_end () =
  (* The policy axis is trainable: BuildRBFmodel over the 10-D space,
     the simulator decoding the tenth axis into a replacement policy. *)
  let response =
    Response.simulator ~trace_length:800
      ~to_config:Paper_space.to_config_extended
      Archpred_workloads.Spec2000.mcf
  in
  let trained =
    Build.train
      ~config:
        (Config.default
        |> Config.with_rng (Rng.create 31)
        |> Config.with_lhs_candidates 5
        |> Config.with_p_min_grid [ 1 ]
        |> Config.with_alpha_grid [ 7. ]
        |> Config.with_sample_size 30)
      ~space:Paper_space.extended_space ~response ()
  in
  let rng = Rng.create 4 in
  for _ = 1 to 10 do
    let p = Array.init 10 (fun _ -> Rng.unit_float rng) in
    let v = Predictor.predict trained.Build.predictor p in
    Alcotest.(check bool) "finite positive prediction" true
      (Float.is_finite v && v > 0.)
  done

let test_persist_version_check () =
  let trained = trained_synthetic () in
  let text = Core.Persist.to_string trained.Build.predictor in
  let bumped =
    "archpred-model 99" ^ String.sub text 16 (String.length text - 16)
  in
  Alcotest.(check bool) "future version rejected" true
    (match Core.Persist.of_string bumped with
    | exception Core.Error.Archpred (Core.Error.Parse_error _) -> true
    | _ -> false)

let () =
  Alcotest.run "core"
    [
      ( "paper_space",
        [
          Alcotest.test_case "dimension" `Quick test_space_dimension;
          Alcotest.test_case "corner configs valid" `Quick test_space_corner_configs_valid;
          Alcotest.test_case "decoding ranges" `Quick test_space_decoding_ranges;
          Alcotest.test_case "iq/lsq scale with rob" `Quick test_iq_lsq_scale_with_rob;
          Alcotest.test_case "test box in cube" `Quick test_test_box_inside_cube;
          prop_random_points_give_valid_configs;
          Alcotest.test_case "test points in box" `Quick test_test_points_in_box;
          Alcotest.test_case "extended policy axis" `Quick
            test_extended_space_axis;
          prop_extended_points_give_valid_configs;
        ] );
      ( "response",
        [
          Alcotest.test_case "synthetic surfaces" `Quick test_synthetic_responses;
          Alcotest.test_case "simulator deterministic" `Quick test_simulator_response_deterministic;
          Alcotest.test_case "evaluate_many" `Quick test_evaluate_many_matches_eval;
          Alcotest.test_case "parallel consistent" `Quick test_simulator_parallel_consistent;
        ] );
      ( "tune_build",
        [
          Alcotest.test_case "tune grid" `Quick test_tune_returns_grid_values;
          Alcotest.test_case "accurate on synthetic" `Quick test_build_train_accurate_on_synthetic;
          Alcotest.test_case "beats linear on cliff" `Quick test_build_beats_linear_on_cliff;
          Alcotest.test_case "early stop" `Quick test_build_to_accuracy_stops_early;
          Alcotest.test_case "exhausts schedule" `Quick test_build_to_accuracy_exhausts_schedule;
          Alcotest.test_case "tune domain invariant" `Quick
            test_tune_domain_invariant;
          Alcotest.test_case "train domain invariant" `Quick
            test_train_domain_invariant;
          Alcotest.test_case "sim_batch validates" `Quick
            test_config_sim_batch_validates;
          Alcotest.test_case "train sim_batch invariant" `Quick
            test_train_sim_batch_invariant;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "natural units" `Quick test_predictor_natural_units;
          Alcotest.test_case "rejects outside" `Quick test_predictor_rejects_outside;
        ] );
      ( "trend",
        [
          Alcotest.test_case "shapes" `Quick test_trend_shapes;
          Alcotest.test_case "with simulation" `Quick test_trend_with_simulation;
        ] );
      ( "search",
        [
          Alcotest.test_case "finds low corner" `Quick test_search_finds_low_corner;
          Alcotest.test_case "respects constraint" `Quick test_search_respects_constraint;
          Alcotest.test_case "infeasible raises" `Quick test_search_infeasible;
        ] );
      ( "crossval",
        [
          Alcotest.test_case "perfect model" `Quick test_crossval_perfect_model;
          Alcotest.test_case "rbf trainer" `Quick test_crossval_rbf_trainer;
          Alcotest.test_case "too few points" `Quick test_crossval_too_few_points;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "budget accounting" `Quick test_adaptive_budget_accounting;
          Alcotest.test_case "model usable" `Quick test_adaptive_model_usable;
        ] );
      ( "batch",
        [
          Alcotest.test_case "bit identical" `Quick
            test_predict_batch_bit_identical;
          Alcotest.test_case "validates points" `Quick
            test_predict_batch_validates;
          Alcotest.test_case "errors_on matches scalar" `Quick
            test_errors_on_matches_scalar;
        ] );
      ( "memo",
        [
          Alcotest.test_case "hand-computed trace" `Quick test_memo_trace;
          Alcotest.test_case "lru order" `Quick test_memo_lru_order;
          Alcotest.test_case "capacity bound" `Quick test_memo_capacity_bound;
          Alcotest.test_case "off-grid bypass" `Quick test_memo_off_grid_bypass;
          Alcotest.test_case "cached bit identical" `Quick
            test_memo_cached_bit_identical;
        ] );
      ( "persist",
        [
          Alcotest.test_case "string roundtrip" `Quick test_persist_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_persist_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_persist_rejects_garbage;
          Alcotest.test_case "rejects truncated" `Quick test_persist_rejects_truncated;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "power response" `Quick test_power_response;
          Alcotest.test_case "metric names" `Quick test_metric_names;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "main effects" `Quick test_sensitivity_main_effects;
          Alcotest.test_case "total effects" `Quick test_sensitivity_total_effects;
          Alcotest.test_case "interaction" `Quick test_sensitivity_interaction;
          Alcotest.test_case "top interactions" `Quick test_sensitivity_top_interactions;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "training deterministic" `Quick test_training_deterministic;
          Alcotest.test_case "persist version" `Quick test_persist_version_check;
        ] );
      ( "integration",
        [
          Alcotest.test_case "simulator-backed model" `Slow test_end_to_end_simulator_model;
          Alcotest.test_case "policy axis trainable" `Slow
            test_extended_training_end_to_end;
        ] );
    ]
