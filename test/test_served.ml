(* The prediction daemon: codec round-trips and fuzz, then the live
   daemon driven over real sockets from a client in the main domain —
   including the PR-3-style deterministic fault matrix over the four
   serve-path injection sites.

   The daemon runs in its own domain; every scenario ends with a drain
   and joins the domain, so a crash in the event loop surfaces as a
   test failure here, not a leak. *)

module Design = Archpred_design
module Stats = Archpred_stats
module Rbf = Archpred_rbf
module Core = Archpred_core
module Obs = Archpred_obs
module Fault = Archpred_fault.Fault
module Frame = Archpred_serve_net.Frame
module Daemon = Archpred_serve_net.Daemon
module Client = Archpred_serve_net.Client

let bits = Int64.bits_of_float

(* ---------------------------------------------------------------- *)
(* Fixtures                                                         *)
(* ---------------------------------------------------------------- *)

let tiny_predictor ?(seed = 41) () =
  let dim = 9 in
  let rng = Stats.Rng.create seed in
  let centers =
    Array.init 6 (fun _ ->
        {
          Rbf.Network.c = Array.init dim (fun _ -> Stats.Rng.unit_float rng);
          r = Array.init dim (fun _ -> 0.3 +. Stats.Rng.unit_float rng);
        })
  in
  let weights = Array.init 6 (fun _ -> Stats.Rng.unit_float rng -. 0.5) in
  let network = { Rbf.Network.centers; weights } in
  Core.Predictor.make ~space:Core.Paper_space.space ~network ~p_min:1
    ~alpha:7. ()

let space = Core.Paper_space.space
let dim = Design.Space.dimension space

let grid_points ~seed n =
  let rng = Stats.Rng.create seed in
  Array.init n (fun _ ->
      Design.Space.snap space ~sample_size:90
        (Array.init dim (fun _ -> Stats.Rng.unit_float rng)))

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "archpred_t%d_%d.sock" (Unix.getpid ()) !sock_counter)

let start_daemon ?(tweak = fun c -> c) predictor =
  let sock = fresh_sock () in
  let control = Daemon.control () in
  let cfg =
    tweak
      {
        Daemon.default with
        Daemon.listener = Daemon.Unix_socket sock;
        tick_s = 0.002;
      }
  in
  let dom =
    Domain.spawn (fun () -> Daemon.run ~control ~predictor cfg)
  in
  (sock, control, dom)

let stop_daemon control dom =
  Daemon.request_drain control;
  Domain.join dom

(* ---------------------------------------------------------------- *)
(* Codec: round-trips                                               *)
(* ---------------------------------------------------------------- *)

let request_equal a b =
  match (a, b) with
  | ( Frame.Predict { id = i1; point = p1; natural = n1 },
      Frame.Predict { id = i2; point = p2; natural = n2 } ) ->
      i1 = i2 && n1 = n2
      && Array.length p1 = Array.length p2
      && Array.for_all2 (fun x y -> Int64.equal (bits x) (bits y)) p1 p2
  | Frame.Reload a, Frame.Reload b -> a = b
  | _ -> false

let decode_all_requests chunks =
  let d = Frame.decoder () in
  let out = ref [] in
  let step () =
    let continue = ref true in
    while !continue do
      match Frame.next_request d with
      | `Msg (m, w) -> out := (m, w) :: !out
      | `Need_more -> continue := false
      | `Error e -> Alcotest.failf "unexpected protocol error: %s" e
    done
  in
  List.iter
    (fun c ->
      Frame.feed_string d c;
      step ())
    chunks;
  List.rev !out

let test_roundtrip_both_wires () =
  let reqs =
    [
      Frame.Predict { id = 0; point = [| 0.5; 0.25 |]; natural = false };
      Frame.Predict { id = 77; point = Array.init 9 float_of_int; natural = true };
      Frame.Reload (Some "m.model");
      Frame.Reload None;
      Frame.Predict { id = 3; point = [||]; natural = false };
    ]
  in
  List.iter
    (fun req ->
      let wires =
        match req with
        | Frame.Reload _ -> [ Frame.Json_wire ]
        | Frame.Predict _ -> [ Frame.Json_wire; Frame.Binary_wire ]
      in
      List.iter
        (fun wire ->
          let s = Frame.encode_request wire req in
          match decode_all_requests [ s ] with
          | [ (got, w) ] ->
              Alcotest.(check bool) "wire preserved" true (w = wire);
              Alcotest.(check bool) "request round-trips" true
                (request_equal req got)
          | l -> Alcotest.failf "expected 1 message, got %d" (List.length l))
        wires)
    reqs

let test_response_roundtrip () =
  let resps =
    [
      Frame.Reply { id = 5; status = Frame.Ok; value = 1.25 };
      Frame.Reply { id = 0; status = Frame.Overloaded; value = Float.nan };
      Frame.Reply { id = 9; status = Frame.Timeout; value = Float.nan };
      Frame.Reply { id = 2; status = Frame.Bad_request; value = Float.nan };
      Frame.Reply { id = 1; status = Frame.Shutting_down; value = Float.nan };
      Frame.Reload_reply { ok = true; detail = "m.model" };
      Frame.Reload_reply { ok = false; detail = "checksum" };
    ]
  in
  List.iter
    (fun resp ->
      let wires =
        match resp with
        | Frame.Reload_reply _ -> [ Frame.Json_wire ]
        | Frame.Reply _ -> [ Frame.Json_wire; Frame.Binary_wire ]
      in
      List.iter
        (fun wire ->
          let d = Frame.decoder () in
          Frame.feed_string d (Frame.encode_response wire resp);
          match Frame.next_response d with
          | `Msg (got, _) -> (
              match (resp, got) with
              | ( Frame.Reply { id = i1; status = s1; value = v1 },
                  Frame.Reply { id = i2; status = s2; value = v2 } ) ->
                  Alcotest.(check int) "id" i1 i2;
                  Alcotest.(check bool) "status" true (s1 = s2);
                  if s1 = Frame.Ok then
                    Alcotest.(check bool) "value bits" true
                      (Int64.equal (bits v1) (bits v2))
              | ( Frame.Reload_reply { ok = o1; detail = d1 },
                  Frame.Reload_reply { ok = o2; detail = d2 } ) ->
                  Alcotest.(check bool) "ok" o1 o2;
                  Alcotest.(check string) "detail" d1 d2
              | _ -> Alcotest.fail "response kind changed in flight")
          | `Need_more -> Alcotest.fail "incomplete response"
          | `Error e -> Alcotest.failf "protocol error: %s" e)
        wires)
    resps

(* QCheck: any request, any split of the byte stream, decodes back. *)
let qcheck_chunked_roundtrip =
  let gen =
    QCheck.Gen.(
      let* n = int_range 0 12 in
      let* id = int_range 0 0xFFFF in
      let* natural = bool in
      let* wire = oneofl [ Frame.Json_wire; Frame.Binary_wire ] in
      let* coords = array_repeat n (float_range (-2.) 2.) in
      let* cut = int_range 1 7 in
      return (id, natural, wire, coords, cut))
  in
  QCheck.Test.make ~name:"chunked request round-trip" ~count:300
    (QCheck.make gen) (fun (id, natural, wire, point, cut) ->
      let req = Frame.Predict { id; point; natural } in
      let s = Frame.encode_request wire req in
      (* slice the encoding into [cut]-byte chunks *)
      let chunks = ref [] in
      let i = ref 0 in
      while !i < String.length s do
        let len = min cut (String.length s - !i) in
        chunks := String.sub s !i len :: !chunks;
        i := !i + len
      done;
      match decode_all_requests (List.rev !chunks) with
      | [ (got, w) ] -> w = wire && request_equal req got
      | _ -> false)

(* ---------------------------------------------------------------- *)
(* Codec: truncation and corruption fuzz                            *)
(* ---------------------------------------------------------------- *)

(* Every proper prefix of a valid frame is just an incomplete frame:
   [`Need_more], never an exception, never a spurious message. *)
let test_every_prefix_truncation () =
  let frames =
    [
      Frame.encode_request Frame.Binary_wire
        (Frame.Predict { id = 12; point = [| 0.5; 0.75; 1.0 |]; natural = false });
      Frame.encode_request Frame.Json_wire
        (Frame.Predict { id = 3; point = [| 0.125 |]; natural = true });
    ]
  in
  List.iter
    (fun s ->
      for cut = 0 to String.length s - 1 do
        let d = Frame.decoder () in
        Frame.feed_string d (String.sub s 0 cut);
        match Frame.next_request d with
        | `Need_more -> ()
        | `Msg _ -> Alcotest.failf "message out of a %d-byte prefix" cut
        | `Error e -> Alcotest.failf "prefix %d: protocol error %s" cut e
      done)
    frames

(* Corrupting the length field must produce a per-connection protocol
   error (or an honest Need_more for a plausible shorter length), never
   an exception or a wrong message. *)
let test_corrupted_length () =
  let s =
    Frame.encode_request Frame.Binary_wire
      (Frame.Predict { id = 1; point = [| 0.5; 0.25 |]; natural = false })
  in
  for byte = 1 to 4 do
    for v = 0 to 255 do
      let b = Bytes.of_string s in
      Bytes.set b byte (Char.chr v);
      let d = Frame.decoder ~max_frame:4096 () in
      Frame.feed_string d (Bytes.to_string b);
      (* a corrupted frame may also desync the *next* frame; both
         decode attempts must stay total *)
      match Frame.next_request d with
      | `Error _ | `Need_more -> ()
      | `Msg (Frame.Predict { point; _ }, _) ->
          (* only the true length decodes back to the true payload *)
          if Array.length point <> 2 then ()
      | `Msg _ -> ()
    done
  done

(* Arbitrary garbage: the decoder must stay total on any byte soup. *)
let qcheck_garbage_total =
  let gen = QCheck.Gen.(string_size ~gen:(char_range '\x00' '\xff') (int_range 0 64)) in
  QCheck.Test.make ~name:"garbage bytes never raise" ~count:500
    (QCheck.make gen) (fun junk ->
      let d = Frame.decoder ~max_frame:4096 () in
      Frame.feed_string d junk;
      let rec drain n =
        if n > 200 then true
        else
          match Frame.next_request d with
          | `Msg _ -> drain (n + 1)
          | `Need_more | `Error _ -> true
      in
      drain 0)

let test_oversized_frame_is_error () =
  let d = Frame.decoder ~max_frame:64 () in
  (* binary: length field larger than max_frame *)
  let b = Bytes.make 5 '\x00' in
  Bytes.set b 0 '\xa7';
  Bytes.set_int32_le b 1 1000l;
  Frame.feed_string d (Bytes.to_string b);
  (match Frame.next_request d with
  | `Error _ -> ()
  | _ -> Alcotest.fail "oversized binary frame accepted");
  (* JSON: unterminated line past max_frame *)
  let d = Frame.decoder ~max_frame:64 () in
  Frame.feed_string d ("{\"id\":1," ^ String.make 128 ' ');
  match Frame.next_request d with
  | `Error _ -> ()
  | _ -> Alcotest.fail "oversized JSON line accepted"

(* ---------------------------------------------------------------- *)
(* Live daemon scenarios                                            *)
(* ---------------------------------------------------------------- *)

type reply = { id : int; status : Frame.status; value : float }

let recv_reply c =
  match Client.recv c with
  | Frame.Reply { id; status; value } -> { id; status; value }
  | Frame.Reload_reply _ -> Alcotest.fail "unexpected reload reply"

let test_roundtrip_daemon () =
  let predictor = tiny_predictor () in
  let sock, control, dom = start_daemon predictor in
  let points = grid_points ~seed:5 64 in
  let c = Client.connect (Daemon.Unix_socket sock) in
  List.iter
    (fun wire ->
      Array.iteri (fun i p -> Client.predict c wire ~id:i p) points;
      Array.iteri
        (fun i p ->
          let r = recv_reply c in
          Alcotest.(check int) "id echoes" i r.id;
          Alcotest.(check bool) "status ok" true (r.status = Frame.Ok);
          let expect = Rbf.Network.eval predictor.Core.Predictor.network p in
          Alcotest.(check bool) "bit-identical to scalar oracle" true
            (Int64.equal (bits expect) (bits r.value)))
        points)
    [ Frame.Json_wire; Frame.Binary_wire ];
  (* well-framed but invalid points answer bad_request and never kill
     the daemon: wrong arity, out-of-cube, out-of-range natural units *)
  List.iter
    (fun (id, natural, point) ->
      Client.predict c Frame.Json_wire ~id ~natural point;
      let r = recv_reply c in
      Alcotest.(check int) "bad point id echoes" id r.id;
      Alcotest.(check bool) "bad point rejected" true
        (r.status = Frame.Bad_request))
    [
      (1001, false, [| 0.5 |]);
      (1002, false, Array.make dim 2.);
      (1003, true, [| 9.; 9.; 9.; 9.; 9.; 9.; 9.; 9.; 9. |]);
    ];
  (* and the daemon still serves after rejecting them *)
  Client.predict c Frame.Json_wire ~id:7 points.(0);
  let r = recv_reply c in
  Alcotest.(check bool) "still serving after bad requests" true
    (r.status = Frame.Ok);
  Client.close c;
  let s = stop_daemon control dom in
  Alcotest.(check int) "requests"
    ((2 * Array.length points) + 4)
    s.Daemon.requests;
  Alcotest.(check int) "answered all" s.Daemon.requests s.Daemon.answered;
  Alcotest.(check int) "bad requests counted" 3 s.Daemon.bad_requests;
  Alcotest.(check int) "lost none" 0 s.Daemon.lost;
  Alcotest.(check bool) "cache saw hits" true
    (s.Daemon.cache.Core.Memo.hits > 0)

(* a raw socket lets the test speak broken protocol on purpose *)
let raw_connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  fd

let raw_send fd s =
  let b = Bytes.of_string s in
  let n = ref 0 in
  while !n < Bytes.length b do
    n := !n + Unix.write fd b !n (Bytes.length b - !n)
  done

(* read until EOF, return everything — the daemon should answer the
   valid pre-garbage request and then close the read-poisoned conn
   once its egress drains *)
let raw_drain fd =
  let buf = Bytes.create 4096 in
  let acc = Buffer.create 256 in
  (try
     let rec go () =
       let n = Unix.read fd buf 0 (Bytes.length buf) in
       if n > 0 then (
         Buffer.add_subbytes acc buf 0 n;
         go ())
     in
     go ()
   with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ());
  Buffer.contents acc

let test_protocol_error_isolated () =
  let predictor = tiny_predictor () in
  let sock, control, dom = start_daemon predictor in
  let points = grid_points ~seed:6 8 in
  let good = Client.connect (Daemon.Unix_socket sock) in
  (* prove the daemon is up before speaking garbage at it *)
  Client.predict good Frame.Json_wire ~id:99 points.(0);
  let warm = recv_reply good in
  Alcotest.(check bool) "daemon up" true (warm.status = Frame.Ok);
  (* the bad peer sends one valid request, then unframeable bytes *)
  let bad = raw_connect sock in
  raw_send bad
    (Frame.encode_request Frame.Binary_wire
       (Frame.Predict { id = 0; point = points.(0); natural = false }));
  raw_send bad "\x99\x99garbage that is neither JSON nor magic\n";
  let bad_bytes = raw_drain bad in
  Unix.close bad;
  (* the daemon answered the valid request before cutting the peer off
     (the stream may also carry a courtesy bad_request notice) *)
  let d = Frame.decoder () in
  Frame.feed_string d bad_bytes;
  let answered = ref false in
  let continue = ref true in
  while !continue do
    match Frame.next_response d with
    | `Msg (Frame.Reply { id = 0; status = Frame.Ok; value }, _) ->
        let expect =
          Rbf.Network.eval predictor.Core.Predictor.network points.(0)
        in
        Alcotest.(check bool) "pre-garbage request answered exactly" true
          (Int64.equal (bits expect) (bits value));
        answered := true
    | `Msg _ -> ()
    | `Need_more | `Error _ -> continue := false
  done;
  Alcotest.(check bool) "pre-garbage request answered" true !answered;
  (* the good client is unaffected before, during and after *)
  Array.iteri (fun i p -> Client.predict good Frame.Json_wire ~id:i p) points;
  Array.iteri
    (fun i p ->
      let r = recv_reply good in
      Alcotest.(check int) "id" i r.id;
      let expect = Rbf.Network.eval predictor.Core.Predictor.network p in
      Alcotest.(check bool) "good conn unaffected" true
        (Int64.equal (bits expect) (bits r.value)))
    points;
  Client.close good;
  let s = stop_daemon control dom in
  Alcotest.(check bool) "protocol error counted" true
    (s.Daemon.protocol_errors >= 1);
  Alcotest.(check int) "lost none" 0 s.Daemon.lost

let test_shed_under_overload () =
  let predictor = tiny_predictor () in
  let sock, control, dom =
    start_daemon
      ~tweak:(fun c -> { c with Daemon.max_pending = 4; max_batch = 4 })
      predictor
  in
  let points = grid_points ~seed:7 512 in
  let c = Client.connect (Daemon.Unix_socket sock) in
  let load = Client.drive c Frame.Binary_wire ~pipeline:256 points in
  Client.close c;
  let s = stop_daemon control dom in
  Alcotest.(check int) "every request answered somehow"
    (Array.length points)
    (load.Client.ok + load.Client.shed + load.Client.timeouts
   + load.Client.other);
  Alcotest.(check int) "daemon agrees on shed" s.Daemon.shed load.Client.shed;
  Alcotest.(check bool) "some requests served" true (load.Client.ok > 0);
  Alcotest.(check int) "none lost" 0 s.Daemon.lost

let test_drain_zero_loss () =
  let predictor = tiny_predictor () in
  let sock, control, dom = start_daemon predictor in
  let points = grid_points ~seed:8 128 in
  let c = Client.connect (Daemon.Unix_socket sock) in
  Array.iteri (fun i p -> Client.predict c Frame.Binary_wire ~id:i p) points;
  (* drain while replies are still in flight *)
  Daemon.request_drain control;
  let got = ref 0 in
  (try
     while !got < Array.length points do
       ignore (recv_reply c);
       incr got
     done
   with Obs.Error.Archpred _ -> ());
  Client.close c;
  let s = Domain.join dom in
  Alcotest.(check int) "all accepted requests answered" s.Daemon.requests
    s.Daemon.answered;
  Alcotest.(check int) "zero lost on drain" 0 s.Daemon.lost

let test_hot_reload () =
  let pred_a = tiny_predictor ~seed:41 () in
  let pred_b = tiny_predictor ~seed:97 () in
  let dir = Filename.get_temp_dir_name () in
  let path_a = Filename.concat dir "served_reload_a.model" in
  let path_b = Filename.concat dir "served_reload_b.model" in
  let path_bad = Filename.concat dir "served_reload_bad.model" in
  Core.Persist.save pred_a path_a;
  Core.Persist.save pred_b path_b;
  (* a torn model file: valid prefix, then truncation breaks the CRC *)
  let full = Core.Persist.to_string pred_b in
  Out_channel.with_open_bin path_bad (fun oc ->
      Out_channel.output_string oc
        (String.sub full 0 (String.length full - 7)));
  let sock, control, dom =
    start_daemon
      ~tweak:(fun c -> { c with Daemon.model_path = Some path_a })
      pred_a
  in
  let p = (grid_points ~seed:9 1).(0) in
  let c = Client.connect (Daemon.Unix_socket sock) in
  let expect_a = Rbf.Network.eval pred_a.Core.Predictor.network p in
  let expect_b = Rbf.Network.eval pred_b.Core.Predictor.network p in
  Client.predict c Frame.Json_wire ~id:0 p;
  let r = recv_reply c in
  Alcotest.(check bool) "serves model A" true
    (Int64.equal (bits expect_a) (bits r.value));
  (* swap to B *)
  Client.reload c ~path:path_b ();
  (match Client.recv c with
  | Frame.Reload_reply { ok; _ } ->
      Alcotest.(check bool) "reload B accepted" true ok
  | _ -> Alcotest.fail "expected reload reply");
  Client.predict c Frame.Json_wire ~id:1 p;
  let r = recv_reply c in
  Alcotest.(check bool) "serves model B after reload" true
    (Int64.equal (bits expect_b) (bits r.value));
  (* a corrupt file must be rejected and roll back to B *)
  Client.reload c ~path:path_bad ();
  (match Client.recv c with
  | Frame.Reload_reply { ok; _ } ->
      Alcotest.(check bool) "corrupt reload rejected" false ok
  | _ -> Alcotest.fail "expected reload reply");
  Client.predict c Frame.Json_wire ~id:2 p;
  let r = recv_reply c in
  Alcotest.(check bool) "still serves model B" true
    (Int64.equal (bits expect_b) (bits r.value));
  Client.close c;
  let s = stop_daemon control dom in
  Alcotest.(check int) "one reload ok" 1 s.Daemon.reloads_ok;
  Alcotest.(check int) "one reload failed" 1 s.Daemon.reloads_failed;
  List.iter
    (fun f -> try Sys.remove f with Sys_error _ -> ())
    [ path_a; path_b; path_bad ]

(* ---------------------------------------------------------------- *)
(* The fault matrix                                                 *)
(* ---------------------------------------------------------------- *)

(* Arm one serve-path site, run a full client scenario, and assert the
   invariants the daemon must keep under any single fault: it never
   crashes, and every Ok answer is bit-identical to the scalar oracle.
   Deterministic at 1 and 4 domains. *)
let fault_scenario ~site ~domains () =
  let predictor = tiny_predictor () in
  let points = grid_points ~seed:11 32 in
  Fault.reset ();
  Fault.arm ~site ~after:1 ();
  let sock, control, dom =
    start_daemon ~tweak:(fun c -> { c with Daemon.domains }) predictor
  in
  let ok_values = ref [] in
  let run_client wire =
    match Client.connect ~retries:50 (Daemon.Unix_socket sock) with
    | c ->
        (try
           Array.iteri (fun i p -> Client.predict c wire ~id:i p) points;
           (match site with
           | "serve.reload" ->
               Client.reload c ~path:"/nonexistent/model" ();
               ()
           | _ -> ());
           Array.iter
             (fun _ ->
               match Client.recv c with
               | Frame.Reply { id; status = Frame.Ok; value } ->
                   ok_values := (id, value) :: !ok_values
               | Frame.Reply _ | Frame.Reload_reply _ -> ())
             points
         with
        | Obs.Error.Archpred _ -> ()
        | Unix.Unix_error _ ->
            (* the armed fault killed this connection — that is the
               sanctioned absorption, not a daemon failure *)
            ());
        Client.close c
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  (* two connections, both framings, so the armed site gets exercised
     from more than one edge *)
  run_client Frame.Binary_wire;
  run_client Frame.Json_wire;
  let s = stop_daemon control dom in
  Fault.reset ();
  (* no crash: we got stats back.  No wrong answer: *)
  List.iter
    (fun (id, value) ->
      let expect =
        Rbf.Network.eval predictor.Core.Predictor.network points.(id)
      in
      Alcotest.(check bool)
        (Printf.sprintf "site %s domains %d: answer %d exact" site domains id)
        true
        (Int64.equal (bits expect) (bits value)))
    !ok_values;
  Alcotest.(check bool)
    (Printf.sprintf "site %s: accounting sane" site)
    true
    (s.Daemon.answered <= s.Daemon.requests
    && s.Daemon.lost + s.Daemon.answered <= s.Daemon.requests);
  (* a reload fault must have been absorbed as a failed reload *)
  if site = "serve.reload" then
    Alcotest.(check bool) "reload fault counted" true
      (s.Daemon.reloads_failed >= 1)

let test_fault_matrix () =
  List.iter
    (fun domains ->
      List.iter
        (fun site -> fault_scenario ~site ~domains ())
        [ "serve.accept"; "serve.read"; "serve.write"; "serve.reload" ])
    [ 1; 4 ]

(* domains must not change a single bit of any answer *)
let test_domains_bit_identical () =
  let predictor = tiny_predictor () in
  let points = grid_points ~seed:13 96 in
  let answers domains =
    let sock, control, dom =
      start_daemon
        ~tweak:(fun c ->
          { c with Daemon.domains; cache_capacity = 8 (* force misses *) })
        predictor
    in
    let c = Client.connect (Daemon.Unix_socket sock) in
    let got = Array.make (Array.length points) 0. in
    Array.iteri (fun i p -> Client.predict c Frame.Binary_wire ~id:i p) points;
    Array.iter
      (fun _ ->
        let r = recv_reply c in
        got.(r.id) <- r.value)
      points;
    Client.close c;
    ignore (stop_daemon control dom);
    got
  in
  let a1 = answers 1 in
  let a4 = answers 4 in
  Array.iteri
    (fun i v1 ->
      Alcotest.(check bool)
        (Printf.sprintf "point %d identical at 1 and 4 domains" i)
        true
        (Int64.equal (bits v1) (bits a4.(i))))
    a1

let () =
  Alcotest.run "served"
    [
      ( "codec",
        [
          Alcotest.test_case "round-trip both wires" `Quick
            test_roundtrip_both_wires;
          Alcotest.test_case "response round-trip" `Quick
            test_response_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_chunked_roundtrip;
          Alcotest.test_case "every prefix truncation" `Quick
            test_every_prefix_truncation;
          Alcotest.test_case "corrupted length" `Quick test_corrupted_length;
          QCheck_alcotest.to_alcotest qcheck_garbage_total;
          Alcotest.test_case "oversized frames" `Quick
            test_oversized_frame_is_error;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "both framings round-trip live" `Quick
            test_roundtrip_daemon;
          Alcotest.test_case "protocol error isolated" `Quick
            test_protocol_error_isolated;
          Alcotest.test_case "overload sheds, never drops" `Quick
            test_shed_under_overload;
          Alcotest.test_case "drain loses nothing" `Quick test_drain_zero_loss;
          Alcotest.test_case "hot reload with rollback" `Quick test_hot_reload;
          Alcotest.test_case "fault matrix (1 and 4 domains)" `Slow
            test_fault_matrix;
          Alcotest.test_case "1 vs 4 domains bit-identical" `Quick
            test_domains_bit_identical;
        ] );
    ]
