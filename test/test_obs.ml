(* Tests for the observability layer (Archpred_obs): span nesting, sink
   output shapes, counter-merge determinism across domain counts, the
   guarantee that instrumentation never perturbs training, strict
   ARCHPRED_DOMAINS parsing and the Config/Error satellite APIs. *)

[@@@alert "-deprecated"]

module Obs = Archpred_obs
module Sink = Archpred_obs.Sink
module Json = Archpred_obs.Json
module Error = Archpred_obs.Error
module Core = Archpred_core
module Config = Core.Config
module Build = Core.Build
module Response = Core.Response
module Paper_space = Core.Paper_space
module Rng = Archpred_stats.Rng

(* ---------- spans ---------- *)

let test_span_nesting () =
  let obs = Obs.create () in
  Obs.with_span obs "outer" (fun () ->
      Obs.with_span obs "inner" (fun () -> ());
      Obs.with_span obs "inner" (fun () -> ()));
  Obs.with_span obs "outer" (fun () -> ());
  let spans = Obs.spans obs in
  Alcotest.(check (list (pair (list string) int)))
    "paths and call counts"
    [ ([ "outer"; "inner" ], 2); ([ "outer" ], 2) ]
    spans

let test_span_value_and_exception_safety () =
  let obs = Obs.create () in
  Alcotest.(check int) "returns body value" 7
    (Obs.with_span obs "s" (fun () -> 7));
  (try Obs.with_span obs "s" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check (list (pair (list string) int)))
    "span recorded despite raise"
    [ ([ "s" ], 2) ]
    (Obs.spans obs)

let test_null_handle_is_noop () =
  Alcotest.(check bool) "null disabled" false (Obs.enabled Obs.null);
  Obs.incr Obs.null "c";
  Obs.gauge Obs.null "g" 1.;
  Alcotest.(check int) "body still runs" 3
    (Obs.with_span Obs.null "s" (fun () -> 3));
  Alcotest.(check (list (pair string int))) "no counters" [] (Obs.counters Obs.null);
  Alcotest.(check (list (pair (list string) int))) "no spans" [] (Obs.spans Obs.null)

(* ---------- sinks ---------- *)

let test_memory_sink_event_shapes () =
  let sink, events = Sink.memory () in
  let obs = Obs.create ~sink () in
  Obs.with_span obs "a" (fun () -> Obs.with_span obs "b" (fun () -> ()));
  Obs.gauge obs "depth" 2.5;
  Obs.count obs "hits" 3;
  Obs.close obs;
  let evs = events () in
  let has p = List.exists p evs in
  Alcotest.(check bool) "nested span path" true
    (has (function Sink.Span { path; _ } -> path = [ "a"; "b" ] | _ -> false));
  Alcotest.(check bool) "root span path" true
    (has (function Sink.Span { path; _ } -> path = [ "a" ] | _ -> false));
  Alcotest.(check bool) "gauge streamed" true
    (has (function Sink.Gauge { name; value } -> name = "depth" && Float.equal value 2.5 | _ -> false));
  Alcotest.(check bool) "counter total at close" true
    (has (function Sink.Counter { name; value } -> name = "hits" && value = 3 | _ -> false))

let test_jsonl_sink_parses () =
  let lines = ref [] in
  let obs = Obs.create ~sink:(Sink.jsonl (fun l -> lines := l :: !lines)) () in
  Obs.with_span obs "train" (fun () -> Obs.incr obs "n");
  Obs.gauge obs "q" 0.;
  Obs.close obs;
  let kinds =
    List.rev_map
      (fun line ->
        match Json.of_string line with
        | Error m -> Alcotest.failf "unparseable line %S: %s" line m
        | Ok j -> (
            match Json.member "type" j with
            | Some (Json.String k) -> k
            | _ -> Alcotest.failf "no type field in %S" line))
      !lines
  in
  Alcotest.(check bool) "span line" true (List.mem "span" kinds);
  Alcotest.(check bool) "counter line" true (List.mem "counter" kinds);
  Alcotest.(check bool) "gauge line" true (List.mem "gauge" kinds)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("type", Json.String "span");
        ("path", Json.String "a/b \"c\"");
        ("ns", Json.Int 123456789012345);
        ("ok", Json.Bool true);
        ("x", Json.Float 0.125);
        ("xs", Json.List [ Json.Null; Json.Int (-3) ]);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
  | Error m -> Alcotest.failf "roundtrip failed: %s" m

(* ---------- counters across domains ---------- *)

let pipeline_counters domains =
  Unix.putenv "ARCHPRED_DOMAINS" (string_of_int domains);
  let obs = Obs.create () in
  let response = Response.synthetic_smooth ~dim:9 in
  let config =
    Config.default |> Config.with_seed 5
    |> Config.with_sample_size 30
    |> Config.with_lhs_candidates 10
    |> Config.with_obs obs
  in
  let trained = Build.train ~config ~space:Paper_space.space ~response () in
  (trained, Obs.counters obs)

let test_counter_merge_deterministic () =
  let _, c1 = pipeline_counters 1 in
  let _, c4 = pipeline_counters 4 in
  Alcotest.(check (list (pair string int))) "counters identical 1 vs 4" c1 c4;
  Alcotest.(check bool) "tree nodes counted" true (List.mem_assoc "tree.nodes" c1);
  Alcotest.(check bool) "centers tried" true
    (List.exists (fun (n, v) -> n = "rbf.centers_tried" && v > 0) c1);
  Alcotest.(check bool) "cholesky pushes" true
    (List.exists (fun (n, v) -> n = "ils.pushes" && v > 0) c1);
  Alcotest.(check bool) "lhs candidates" true
    (List.mem_assoc "lhs.candidates" c1)

let test_instrumentation_preserves_training () =
  (* the regression the tentpole promises: a silent sink (or any sink)
     must leave the trained predictor bit-identical to an uninstrumented
     run, and to a run configured through an explicit generator *)
  Unix.putenv "ARCHPRED_DOMAINS" "2";
  let response = Response.synthetic_smooth ~dim:9 in
  let train obs =
    Build.train
      ~config:
        (Config.default |> Config.with_seed 5
        |> Config.with_sample_size 30
        |> Config.with_lhs_candidates 10
        |> Config.with_obs obs)
      ~space:Paper_space.space ~response ()
  in
  let bare = train Obs.null in
  let silent = train (Obs.create ()) in
  let sink, _ = Sink.memory () in
  let streamed = train (Obs.create ~sink ()) in
  let explicit_rng =
    Build.train
      ~config:
        (Config.default
        |> Config.with_rng (Rng.create 5)
        |> Config.with_sample_size 30
        |> Config.with_lhs_candidates 10)
      ~space:Paper_space.space ~response ()
  in
  let rng = Rng.create 77 in
  for _ = 1 to 20 do
    let p = Array.init 9 (fun _ -> Rng.unit_float rng) in
    let expect = Core.Predictor.predict bare.Build.predictor p in
    List.iter
      (fun (name, t) ->
        Alcotest.(check (float 0.)) name expect
          (Core.Predictor.predict t.Build.predictor p))
      [
        ("silent sink", silent);
        ("memory sink", streamed);
        ("explicit rng", explicit_rng);
      ]
  done

(* ---------- ARCHPRED_DOMAINS parsing ---------- *)

let check_env_rejected value =
  Unix.putenv "ARCHPRED_DOMAINS" value;
  match Archpred_stats.Parallel.env_domains () with
  | _ -> Alcotest.failf "ARCHPRED_DOMAINS=%S accepted" value
  | exception Error.Archpred (Error.Invalid_env { var; _ }) ->
      Alcotest.(check string) "names the variable" "ARCHPRED_DOMAINS" var

let test_env_domains_strict () =
  Unix.putenv "ARCHPRED_DOMAINS" "3";
  Alcotest.(check (option int)) "valid value" (Some 3)
    (Archpred_stats.Parallel.env_domains ());
  check_env_rejected "0";
  check_env_rejected "-2";
  check_env_rejected "four";
  (* leave a sane value behind for any later test in this binary *)
  Unix.putenv "ARCHPRED_DOMAINS" "2"

(* ---------- report ---------- *)

let test_report_contents () =
  let obs = Obs.create () in
  Obs.with_span obs "build.train" (fun () ->
      Obs.with_span obs "build.sample" (fun () -> ());
      Obs.incr obs "sim.runs");
  Obs.gauge obs "pool.queue_depth" 0.;
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Obs.report obs ppf;
  Format.pp_print_flush ppf ();
  let text = Buffer.contents buf in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "report mentions %s" needle) true
        (contains needle))
    [
      "observability report"; "build.train"; "build.sample"; "sim.runs";
      "pool.queue_depth";
    ]

(* ---------- Config ---------- *)

let test_config_setters () =
  let c =
    Config.default |> Config.with_seed 9
    |> Config.with_sample_size 55
    |> Config.with_trace_length 1234
    |> Config.with_domains 3
    |> Config.with_p_min_grid [ 4 ]
    |> Config.with_alpha_grid [ 2.5 ]
    |> Config.with_lhs_candidates 17
  in
  Alcotest.(check int) "seed" 9 c.Config.seed;
  Alcotest.(check int) "sample size" 55 c.Config.sample_size;
  Alcotest.(check int) "trace length" 1234 c.Config.trace_length;
  Alcotest.(check (option int)) "domains" (Some 3) c.Config.domains;
  Alcotest.(check (list int)) "p_min grid" [ 4 ] c.Config.p_min_grid;
  Alcotest.(check int) "lhs candidates" 17 c.Config.lhs_candidates;
  Alcotest.(check (list int)) "default p_min grid intact" [ 1; 2; 3 ]
    Config.default.Config.p_min_grid

let test_config_seed_rng_interplay () =
  (* with_seed discards an installed rng so the seed is authoritative *)
  let c =
    Config.default |> Config.with_rng (Rng.create 1) |> Config.with_seed 8
  in
  let a = Rng.unit_float (Config.rng_of c) in
  let b = Rng.unit_float (Rng.create 8) in
  Alcotest.(check (float 0.)) "rng_of follows seed" b a

let check_config_rejected c =
  match Config.validate c with
  | _ -> Alcotest.fail "invalid config accepted"
  | exception Error.Archpred (Error.Invalid_input { where; _ }) ->
      Alcotest.(check string) "where" "Config" where

let test_config_validate () =
  ignore (Config.validate Config.default);
  check_config_rejected (Config.with_sample_size 0 Config.default);
  check_config_rejected (Config.with_trace_length 0 Config.default);
  check_config_rejected (Config.with_lhs_candidates 0 Config.default);
  check_config_rejected (Config.with_p_min_grid [] Config.default);
  check_config_rejected (Config.with_alpha_grid [] Config.default);
  check_config_rejected (Config.with_domains 0 Config.default)

(* ---------- Error ---------- *)

let test_error_exit_codes_distinct () =
  let errors =
    [
      Error.Invalid_input { where = "w"; what = "x" };
      Error.Invalid_env { var = "V"; what = "x" };
      Error.Io_error { path = "p"; what = "x" };
      Error.Parse_error { where = "w"; line = 3; what = "x" };
      Error.Infeasible { where = "w"; what = "x" };
    ]
  in
  let codes = List.map Error.exit_code errors in
  Alcotest.(check (list int)) "stable exit codes" [ 2; 3; 4; 5; 6 ] codes;
  List.iter
    (fun e ->
      Alcotest.(check bool) "message non-empty" true
        (String.length (Error.to_string e) > 0))
    errors;
  Alcotest.(check bool) "core re-export is the same type" true
    (Core.Error.exit_code (Core.Error.Infeasible { where = "w"; what = "x" }) = 6)

let test_error_guard () =
  (match Error.guard (fun () -> 41 + 1) with
  | Ok v -> Alcotest.(check int) "ok" 42 v
  | Error _ -> Alcotest.fail "guard broke success");
  match Error.guard (fun () -> Error.invalid_input ~where:"t" "bad") with
  | Error (Error.Invalid_input { where = "t"; what = "bad" }) -> ()
  | _ -> Alcotest.fail "guard missed error"

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "value + exception safety" `Quick
            test_span_value_and_exception_safety;
          Alcotest.test_case "null handle" `Quick test_null_handle_is_noop;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "memory shapes" `Quick test_memory_sink_event_shapes;
          Alcotest.test_case "jsonl parses" `Quick test_jsonl_sink_parses;
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "counter merge deterministic" `Quick
            test_counter_merge_deterministic;
          Alcotest.test_case "training unperturbed" `Quick
            test_instrumentation_preserves_training;
          Alcotest.test_case "report contents" `Quick test_report_contents;
        ] );
      ( "env",
        [ Alcotest.test_case "ARCHPRED_DOMAINS strict" `Quick test_env_domains_strict ] );
      ( "config",
        [
          Alcotest.test_case "setters" `Quick test_config_setters;
          Alcotest.test_case "seed/rng interplay" `Quick
            test_config_seed_rng_interplay;
          Alcotest.test_case "validate" `Quick test_config_validate;
        ] );
      ( "error",
        [
          Alcotest.test_case "exit codes" `Quick test_error_exit_codes_distinct;
          Alcotest.test_case "guard" `Quick test_error_guard;
        ] );
    ]
