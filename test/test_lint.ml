(* Golden tests for archpred-lint (tools/lint): every rule is exercised
   for both detection and pragma suppression on a small fixture source,
   plus the pragma meta-rules (unused / malformed), scope gating,
   sanctioned modules, severity downgrades, Core.Error exit codes and
   the JSON record shape.  The "real tree lints clean" half of the
   contract lives in the root dune file: the @lint alias is attached to
   runtest, so `dune runtest` fails on any violation in lib/ bin/
   bench/ test/. *)

module Lint = Lint_engine.Lint
module Error = Archpred_obs.Error
module Json = Archpred_obs.Json

let scan ?(scope = Lint.Lib) ?mli_exists ?warn src =
  Lint.scan_string ~scope ?mli_exists ?warn ~filename:"fixture.ml" src

let rules_of findings = List.map (fun f -> f.Lint.rule) findings
let srules = Alcotest.(list string)

(* Each fixture puts its violation on line 1 so the generic suppression
   test can prefix a pragma line. *)
let fixtures =
  [
    ("random-global", "let _x = Random.int 5\n");
    ("poly-compare", "let f (xs : float list) = List.sort compare xs\n");
    ("hashtbl-order", "let f h = Hashtbl.iter (fun _ () -> ()) h\n");
    ("wall-clock", "let t () = Unix.gettimeofday ()\n");
    ("stdout-print", "let () = Printf.printf \"hi\"\n");
    ("exit", "let f () = exit 1\n");
    ("unsafe-cast", "let f x = Obj.magic x\n");
    ("float-lit-eq", "let f x = x = 0.5\n");
    ("catchall-exn", "let f g = try g () with _ -> 0\n");
    ("missing-mli", "let x = 1\n");
    ("unsafe-index", "let f a = Float.Array.unsafe_get a 0\n");
    ("unix-net", "let f () = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0\n");
  ]

let mli_exists_for rule = if rule = "missing-mli" then Some false else None

let test_detects (rule, src) () =
  let findings = scan ?mli_exists:(mli_exists_for rule) src in
  Alcotest.check srules ("detects " ^ rule) [ rule ] (rules_of findings);
  Alcotest.(check int) "counted as error" 1 (Lint.errors findings)

let test_pragma_suppresses (rule, src) () =
  let pragma =
    Printf.sprintf "(* archpred-lint: allow %s -- fixture reason *)\n" rule
  in
  let findings = scan ?mli_exists:(mli_exists_for rule) (pragma ^ src) in
  Alcotest.check srules ("pragma suppresses " ^ rule) [] (rules_of findings)

let test_clean_file () =
  let src =
    "let f xs = List.sort Float.compare xs\n\
     let g x = Float.equal x 0.5\n\
     let h () = try List.hd [] with Failure _ -> 0\n"
  in
  Alcotest.check srules "clean file passes" [] (rules_of (scan src))

let test_rule_table () =
  Alcotest.(check int) "twelve rules" 12 (List.length Lint.rules);
  List.iter
    (fun (rule, _) ->
      Alcotest.(check bool)
        (rule ^ " is a documented rule") true
        (List.mem_assoc rule Lint.rules))
    fixtures

(* --- scope gating: the same construct is legal where sanctioned --- *)

let test_scopes () =
  let check ~scope ~expect name src =
    Alcotest.check srules name expect (rules_of (scan ~scope src))
  in
  check ~scope:Lint.Bench ~expect:[] "wall-clock legal in bench/"
    "let t () = Unix.gettimeofday ()\n";
  check ~scope:Lint.Bin ~expect:[] "exit legal in bin/" "let f () = exit 1\n";
  check ~scope:Lint.Bin ~expect:[] "stdout legal in bin/"
    "let () = Printf.printf \"hi\"\n";
  check ~scope:Lint.Test ~expect:[] "poly-compare tolerated in test/"
    "let f xs = List.sort compare xs\n";
  check ~scope:Lint.Test ~expect:[ "random-global" ]
    "Random still illegal in test/" "let _x = Random.int 5\n";
  check ~scope:Lint.Test ~expect:[] "sockets legal in test/"
    "let f fd = Unix.listen fd 8\n";
  check ~scope:Lint.Bin ~expect:[] "sockets legal in bin/"
    "let f fd = Unix.accept fd\n";
  (* tools/ is a hybrid scope: determinism rules bite like lib/, CLI
     conveniences stay legal like bin/. *)
  check ~scope:Lint.Tools ~expect:[ "poly-compare" ]
    "poly-compare illegal in tools/" "let f xs = List.sort compare xs\n";
  check ~scope:Lint.Tools ~expect:[ "hashtbl-order" ]
    "Hashtbl.iter illegal in tools/" "let f h = Hashtbl.iter ignore h\n";
  check ~scope:Lint.Tools ~expect:[ "wall-clock" ]
    "wall-clock illegal in tools/" "let t () = Unix.gettimeofday ()\n";
  check ~scope:Lint.Tools ~expect:[] "stdout legal in tools/"
    "let () = Printf.printf \"hi\"\n";
  check ~scope:Lint.Tools ~expect:[] "exit legal in tools/"
    "let f () = exit 1\n";
  Alcotest.(check (option pass))
    "tools/ paths classify" (Some Lint.Tools)
    (Lint.scope_of_rel "tools/analyze/analyze.ml")

let test_sanctioned_module () =
  let findings =
    Lint.scan_string ~scope:Lint.Lib ~rel:"lib/stats/rng.ml"
      ~filename:"rng.ml" "let _seed = Random.int 3\n"
  in
  Alcotest.check srules "Stats.Rng may touch Random" [] (rules_of findings)

let test_unsafe_index () =
  (* both unchecked-accessor families are caught ... *)
  Alcotest.check srules "Bigarray.Array1 variant detected" [ "unsafe-index" ]
    (rules_of (scan "let f a i = Bigarray.Array1.unsafe_get a i\n"));
  Alcotest.check srules "open-Bigarray variant detected" [ "unsafe-index" ]
    (rules_of (scan "let f a i v = Array2.unsafe_set a i 0 v\n"));
  Alcotest.check srules "Bytes variant detected" [ "unsafe-index" ]
    (rules_of (scan "let f b i = Bytes.unsafe_get b i\n"));
  (* ... plain Array.unsafe_* stays legal (checked hot loops in linalg) *)
  Alcotest.check srules "plain Array.unsafe_get is not this rule" []
    (rules_of (scan "let f a = Array.unsafe_get a 0\n"));
  (* lib-only: bench and test code may index however it likes *)
  Alcotest.check srules "legal outside lib/" []
    (rules_of (scan ~scope:Lint.Bench "let f a = Float.Array.unsafe_get a 0\n"));
  (* the batch kernel is the one sanctioned owner *)
  let findings =
    Lint.scan_string ~scope:Lint.Lib ~rel:"lib/rbf/batch_kernel.ml"
      ~mli_exists:true ~filename:"batch_kernel.ml"
      "let f a i v = Bigarray.Array1.unsafe_set a i v\n"
  in
  Alcotest.check srules "batch kernel may skip bounds checks" []
    (rules_of findings);
  (* ... as is the batched simulation engine *)
  let findings =
    Lint.scan_string ~scope:Lint.Lib ~rel:"lib/sim/batch.ml" ~mli_exists:true
      ~filename:"batch.ml" "let f b i = Bytes.unsafe_set b i 'x'\n"
  in
  Alcotest.check srules "sim batch engine may skip bounds checks" []
    (rules_of findings)

let test_unix_net () =
  (* networking and raw-fd I/O are flagged in ordinary library code ... *)
  Alcotest.check srules "Unix.select detected" [ "unix-net" ]
    (rules_of (scan "let f fds = Unix.select fds [] [] 0.1\n"));
  Alcotest.check srules "Unix.read detected" [ "unix-net" ]
    (rules_of (scan "let f fd b = Unix.read fd b 0 1\n"));
  (* ... but the file-durability calls Persist/Checkpoint rely on stay
     legal everywhere *)
  Alcotest.check srules "Unix.fsync is not networking" []
    (rules_of (scan "let f fd = Unix.fsync fd\n"));
  (* lib/serve_net owns the socket edge, and may also read the clock *)
  let served src =
    Lint.scan_string ~scope:Lint.Lib ~rel:"lib/serve_net/daemon.ml"
      ~mli_exists:true ~filename:"daemon.ml" src
  in
  Alcotest.check srules "serve_net may use sockets" []
    (rules_of (served "let f fd = Unix.accept fd\n"));
  Alcotest.check srules "serve_net may read the wall clock" []
    (rules_of (served "let t () = Unix.gettimeofday ()\n"));
  (* the sanction is for serve_net only: other lib dirs still trip both *)
  let elsewhere =
    Lint.scan_string ~scope:Lint.Lib ~rel:"lib/core/serve.ml" ~mli_exists:true
      ~filename:"serve.ml" "let f fd = Unix.connect fd (Unix.ADDR_UNIX \"s\")\n"
  in
  Alcotest.check srules "lib/core may not open sockets" [ "unix-net" ]
    (rules_of elsewhere)

(* --- pragma meta-rules --- *)

let test_unused_pragma () =
  let findings = scan "(* archpred-lint: allow exit -- nothing here *)\nlet x = 1\n" in
  Alcotest.check srules "stale pragma flagged" [ "unused-pragma" ]
    (rules_of findings)

let test_bad_pragma () =
  let unknown = scan "(* archpred-lint: allow no-such-rule -- why *)\nlet x = 1\n" in
  Alcotest.check srules "unknown rule rejected" [ "bad-pragma" ]
    (rules_of unknown);
  let no_reason = scan "(* archpred-lint: allow exit *)\nlet f () = exit 1\n" in
  Alcotest.check srules "reason is mandatory" [ "bad-pragma"; "exit" ]
    (rules_of no_reason)

let test_pragma_same_line () =
  let src = "let f () = exit 1 (* archpred-lint: allow exit -- same line *)\n" in
  Alcotest.check srules "same-line pragma works" [] (rules_of (scan src))

(* --- detection subtleties --- *)

let test_reraise_not_flagged () =
  Alcotest.check srules "re-raising handler is fine" []
    (rules_of (scan "let f g = try g () with e -> raise e\n"));
  Alcotest.check srules "named swallower still flagged" [ "catchall-exn" ]
    (rules_of (scan "let f g = try g () with e -> ignore e\n"))

let test_float_pattern () =
  Alcotest.check srules "float pattern flagged" [ "float-lit-eq" ]
    (rules_of (scan "let f x = match x with 1.0 -> true | _ -> false\n"))

let test_stdlib_qualified () =
  Alcotest.check srules "Stdlib.exit is still exit" [ "exit" ]
    (rules_of (scan "let f () = Stdlib.exit 1\n"));
  Alcotest.check srules "Stdlib.compare is still compare" [ "poly-compare" ]
    (rules_of (scan "let f a b = Stdlib.compare a b\n"))

let test_mli_present () =
  Alcotest.check srules "module with .mli passes" []
    (rules_of (scan ~mli_exists:true "let x = 1\n"))

(* --- severities, exit codes, JSON --- *)

let test_warn_downgrade () =
  let findings = scan ~warn:[ "float-lit-eq" ] "let f x = x = 0.5\n" in
  Alcotest.(check int) "no errors" 0 (Lint.errors findings);
  Alcotest.(check int) "one warning" 1 (Lint.warnings findings)

let test_parse_error_exit_code () =
  match scan "let x = \n" with
  | _ -> Alcotest.fail "expected a parse error"
  | exception Error.Archpred e ->
      Alcotest.(check int) "Parse_error maps to exit 5" 5 (Error.exit_code e)

let test_violation_exit_code () =
  (* The CLI reports violations as Invalid_input; tooling separates
     "found problems" (2) from "lint crashed on bad source" (5). *)
  let e = Error.Invalid_input { where = "archpred_lint"; what = "violations" } in
  Alcotest.(check int) "violations map to exit 2" 2 (Error.exit_code e)

let test_json_shape () =
  match scan "let f () = exit 1\n" with
  | [ f ] ->
      let j = Lint.to_json f in
      let str k =
        match Json.member k j with Some (Json.String s) -> s | _ -> "?"
      in
      let int k =
        match Json.member k j with Some (Json.Int i) -> i | _ -> -1
      in
      Alcotest.(check string) "event" "finding" (str "event");
      Alcotest.(check string) "rule" "exit" (str "rule");
      Alcotest.(check string) "severity" "error" (str "severity");
      Alcotest.(check string) "file" "fixture.ml" (str "file");
      Alcotest.(check int) "line" 1 (int "line");
      (* the record must survive a JSON round-trip through the obs parser *)
      (match Json.of_string (Json.to_string j) with
      | Ok j' -> Alcotest.(check bool) "round-trips" true (j = j')
      | Result.Error m -> Alcotest.fail ("did not re-parse: " ^ m))
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let () =
  let per_rule =
    List.concat_map
      (fun ((rule, _) as fx) ->
        [
          Alcotest.test_case (rule ^ " detected") `Quick (test_detects fx);
          Alcotest.test_case (rule ^ " suppressed") `Quick
            (test_pragma_suppresses fx);
        ])
      fixtures
  in
  Alcotest.run "lint"
    [
      ("rules", per_rule);
      ( "engine",
        [
          Alcotest.test_case "clean file" `Quick test_clean_file;
          Alcotest.test_case "rule table" `Quick test_rule_table;
          Alcotest.test_case "scope gating" `Quick test_scopes;
          Alcotest.test_case "sanctioned module" `Quick test_sanctioned_module;
          Alcotest.test_case "unix-net scope" `Quick test_unix_net;
          Alcotest.test_case "unsafe index" `Quick test_unsafe_index;
          Alcotest.test_case "unused pragma" `Quick test_unused_pragma;
          Alcotest.test_case "bad pragma" `Quick test_bad_pragma;
          Alcotest.test_case "same-line pragma" `Quick test_pragma_same_line;
          Alcotest.test_case "re-raise allowed" `Quick test_reraise_not_flagged;
          Alcotest.test_case "float pattern" `Quick test_float_pattern;
          Alcotest.test_case "Stdlib-qualified" `Quick test_stdlib_qualified;
          Alcotest.test_case "mli present" `Quick test_mli_present;
          Alcotest.test_case "warn downgrade" `Quick test_warn_downgrade;
          Alcotest.test_case "parse-error exit code" `Quick
            test_parse_error_exit_code;
          Alcotest.test_case "violation exit code" `Quick
            test_violation_exit_code;
          Alcotest.test_case "json shape" `Quick test_json_shape;
        ] );
    ]
