(* Tests for archpred.sim: opcodes, traces, caches, branch prediction,
   DRAM, the memory hierarchy, functional units, configurations and the
   cycle-level pipeline itself (hand-built traces with known behaviour). *)

module Sim = Archpred_sim
module Opcode = Sim.Opcode
module Trace = Sim.Trace
module Cache = Sim.Cache
module Bp = Sim.Branch_predictor
module Dram = Sim.Dram
module Memory = Sim.Memory
module Fu = Sim.Fu_pool
module Config = Sim.Config
module Processor = Sim.Processor

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let inst ?(op = Opcode.Ialu) ?(dep1 = 0) ?(dep2 = 0) ?(addr = 0) ?(pc = 0)
    ?(taken = false) ?(target = 0) () : Trace.inst =
  { op; dep1; dep2; addr; pc; taken; target }

(* A trace of [n] identical instructions with sequential PCs. *)
let uniform_trace ?(op = Opcode.Ialu) ?(dep1 = 0) n =
  Trace.of_array
    (Array.init n (fun i -> inst ~op ~dep1:(if i = 0 then 0 else dep1) ~pc:(4 * i) ()))

(* ---------- Opcode ---------- *)

let test_opcode_roundtrip () =
  List.iter
    (fun o ->
      Alcotest.(check bool) "roundtrip" true (Opcode.of_int (Opcode.to_int o) = o))
    Opcode.all

let test_opcode_classes () =
  Alcotest.(check bool) "load is memory" true (Opcode.is_memory Opcode.Load);
  Alcotest.(check bool) "branch is control" true (Opcode.is_control Opcode.Branch);
  Alcotest.(check bool) "fadd uses fp" true (Opcode.uses_fp Opcode.Fadd);
  Alcotest.(check bool) "ialu not memory" false (Opcode.is_memory Opcode.Ialu)

let test_opcode_of_int_invalid () =
  Alcotest.check_raises "bad code" (Invalid_argument "Opcode.of_int: 99")
    (fun () -> ignore (Opcode.of_int 99))

(* ---------- Trace ---------- *)

let test_trace_builder () =
  let b = Trace.Builder.create ~capacity:2 () in
  for i = 0 to 99 do
    Trace.Builder.add b (inst ~pc:(4 * i) ~addr:i ())
  done;
  let t = Trace.Builder.finish b in
  Alcotest.(check int) "length" 100 (Trace.length t);
  Alcotest.(check int) "addr" 42 (Trace.addr t 42);
  Alcotest.(check int) "pc" 168 (Trace.pc t 42)

let test_trace_accessors () =
  let t =
    Trace.of_list
      [
        inst ~op:Opcode.Load ~dep1:0 ~addr:64 ~pc:0 ();
        inst ~op:Opcode.Branch ~dep1:1 ~pc:4 ~taken:true ~target:100 ();
      ]
  in
  Alcotest.(check bool) "op" true (Trace.op t 0 = Opcode.Load);
  Alcotest.(check int) "dep1" 1 (Trace.dep1 t 1);
  Alcotest.(check bool) "taken" true (Trace.taken t 1);
  Alcotest.(check int) "target" 100 (Trace.target t 1);
  let i = Trace.get t 1 in
  Alcotest.(check bool) "get op" true (i.Trace.op = Opcode.Branch)

let test_trace_validate_ok () =
  let t = uniform_trace 10 in
  Alcotest.(check bool) "valid" true (Trace.validate t = Ok ())

let test_trace_validate_bad_dep () =
  let t = Trace.of_list [ inst ~dep1:0 (); inst ~dep1:5 ~pc:4 () ] in
  match Trace.validate t with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected invalid dep"

let test_trace_validate_misaligned () =
  let t = Trace.of_list [ inst ~pc:3 () ] in
  match Trace.validate t with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected misaligned pc"

(* ---------- Cache ---------- *)

let cache_cfg ?policy ?(size = 1024) ?(line = 64) ?(assoc = 2) ?(latency = 2) () =
  Cache.config ?policy ~size_bytes:size ~line_bytes:line ~associativity:assoc
    ~latency ()

let test_cache_cold_miss_then_hit () =
  let c = Cache.create (cache_cfg ()) in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0);
  Alcotest.(check bool) "hit" true (Cache.access c 0);
  Alcotest.(check bool) "same line hit" true (Cache.access c 63);
  Alcotest.(check bool) "next line miss" false (Cache.access c 64)

let test_cache_lru_eviction () =
  (* 2-way, single set: three conflicting lines evict the LRU *)
  let c = Cache.create (cache_cfg ~size:(64 * 2) ~assoc:2 ()) in
  ignore (Cache.access c 0);
  ignore (Cache.access c 64);
  ignore (Cache.access c 0) (* touch 0: 64 becomes LRU *);
  ignore (Cache.access c 128) (* evicts 64 *);
  Alcotest.(check bool) "0 still present" true (Cache.probe c 0);
  Alcotest.(check bool) "64 evicted" false (Cache.probe c 64);
  Alcotest.(check bool) "128 present" true (Cache.probe c 128)

let test_cache_associativity () =
  let c = Cache.create (cache_cfg ~size:64 ~assoc:1 ()) in
  ignore (Cache.access c 0);
  ignore (Cache.access c 64);
  Alcotest.(check bool) "direct-mapped thrash" false (Cache.probe c 0)

let test_cache_stats () =
  let c = Cache.create (cache_cfg ()) in
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  ignore (Cache.access c 64);
  let s = Cache.stats c in
  Alcotest.(check int) "accesses" 3 s.Cache.accesses;
  Alcotest.(check int) "misses" 2 s.Cache.misses;
  Alcotest.(check (float 1e-9)) "miss rate" (2. /. 3.) (Cache.miss_rate c);
  Cache.reset_stats c;
  Alcotest.(check int) "reset" 0 (Cache.stats c).Cache.accesses

let test_cache_non_pow2_sets () =
  let c = Cache.create (cache_cfg ~size:(3 * 64 * 2) ~assoc:2 ()) in
  Alcotest.(check int) "sets" 3 (Cache.sets c);
  ignore (Cache.access c 0);
  ignore (Cache.access c (3 * 64));
  Alcotest.(check bool) "both fit 2 ways" true
    (Cache.probe c 0 && Cache.probe c (3 * 64))

let test_cache_invalidate () =
  let c = Cache.create (cache_cfg ()) in
  ignore (Cache.access c 0);
  Cache.invalidate_all c;
  Alcotest.(check bool) "invalidated" false (Cache.probe c 0)

let test_cache_config_invalid () =
  Alcotest.check_raises "bad line"
    (Invalid_argument "Cache.config: line size not a power of two") (fun () ->
      ignore
        (Cache.config ~size_bytes:1024 ~line_bytes:48 ~associativity:2
           ~latency:1 ()))

(* ---------- Branch predictor ---------- *)

let test_bp_learns_bias () =
  let bp = Bp.create Bp.default_config in
  for _ = 1 to 50 do
    Bp.update bp ~pc:64 ~taken:true ~target:128
  done;
  let p = Bp.predict bp ~pc:64 in
  Alcotest.(check bool) "predicts taken" true p.Bp.direction;
  Alcotest.(check bool) "btb knows target" true p.Bp.target_known

let test_bp_mispredict_counting () =
  let bp = Bp.create Bp.default_config in
  for _ = 1 to 20 do
    Bp.update bp ~pc:64 ~taken:true ~target:128
  done;
  Alcotest.(check bool) "trained: no mispredict" false
    (Bp.mispredicted bp ~kind:Bp.Conditional ~pc:64 ~taken:true);
  Alcotest.(check bool) "surprise not-taken" true
    (Bp.mispredicted bp ~kind:Bp.Conditional ~pc:64 ~taken:false);
  let s = Bp.stats bp in
  Alcotest.(check int) "lookups" 2 s.Bp.lookups;
  Alcotest.(check int) "mispredicts" 1 s.Bp.mispredicts

let test_bp_indirect_btb_miss () =
  let bp = Bp.create Bp.default_config in
  Alcotest.(check bool) "btb miss" true
    (Bp.mispredicted bp ~kind:Bp.Indirect ~pc:256 ~taken:true);
  Bp.update bp ~pc:256 ~taken:true ~target:512;
  Alcotest.(check bool) "btb hit" false
    (Bp.mispredicted bp ~kind:Bp.Indirect ~pc:256 ~taken:true)

let test_bp_accuracy () =
  let bp = Bp.create Bp.default_config in
  for _ = 1 to 10 do
    ignore (Bp.mispredicted bp ~kind:Bp.Conditional ~pc:0 ~taken:true);
    Bp.update bp ~pc:0 ~taken:true ~target:64
  done;
  Alcotest.(check bool) "accuracy reasonable" true (Bp.accuracy bp >= 0.8)

let test_bp_config_validation () =
  Alcotest.check_raises "bad btb"
    (Invalid_argument "Branch_predictor.config: btb_entries not a power of two")
    (fun () -> ignore (Bp.config ~history_bits:10 ~btb_entries:1000 ()))

(* ---------- DRAM ---------- *)

let dram_cfg = Dram.config ~base_latency:100 ~banks:4 ~bank_occupancy:20 ~bus_occupancy:4

let test_dram_unloaded_latency () =
  let d = Dram.create dram_cfg in
  let finish = Dram.access d ~cycle:10 ~addr:0 in
  Alcotest.(check int) "unloaded" (10 + 100 + 4) finish

let test_dram_bank_conflict () =
  let d = Dram.create dram_cfg in
  let f1 = Dram.access d ~cycle:0 ~addr:0 in
  let f2 = Dram.access d ~cycle:0 ~addr:64 in
  Alcotest.(check bool) "second delayed" true (f2 > f1)

let test_dram_bank_parallelism () =
  let d = Dram.create dram_cfg in
  let f1 = Dram.access d ~cycle:0 ~addr:0 in
  let f2 = Dram.access d ~cycle:0 ~addr:(1 lsl 12) in
  Alcotest.(check int) "bus-only delay" (f1 + 4) f2

let test_dram_stats () =
  let d = Dram.create dram_cfg in
  ignore (Dram.access d ~cycle:0 ~addr:0);
  ignore (Dram.access d ~cycle:0 ~addr:64);
  let s = Dram.stats d in
  Alcotest.(check int) "accesses" 2 s.Dram.accesses;
  Alcotest.(check bool) "queue cycles counted" true (s.Dram.queue_cycles > 0);
  Alcotest.(check bool) "avg latency >= base" true
    (Dram.average_latency d >= 100.)

(* ---------- Memory hierarchy ---------- *)

let mem_cfg ?l2_prefetch () =
  Memory.create ?l2_prefetch
    ~il1:(cache_cfg ~size:1024 ~latency:1 ())
    ~dl1:(cache_cfg ~size:1024 ~latency:2 ())
    ~l2:(cache_cfg ~size:8192 ~assoc:4 ~latency:10 ())
    ~dram:dram_cfg ()

let test_memory_l1_hit () =
  let m = mem_cfg () in
  ignore (Memory.load m ~cycle:0 ~addr:0);
  Alcotest.(check int) "dl1 hit at 2" 102 (Memory.load m ~cycle:100 ~addr:0)

let test_memory_l2_hit () =
  let m = mem_cfg () in
  ignore (Memory.load m ~cycle:0 ~addr:0);
  (* dl1 here has 8 sets of 2 ways; these three lines share set 0 *)
  ignore (Memory.load m ~cycle:0 ~addr:1024);
  ignore (Memory.load m ~cycle:0 ~addr:2048);
  Alcotest.(check int) "l2 hit" (100 + 2 + 10) (Memory.load m ~cycle:100 ~addr:0)

let test_memory_dram_path () =
  let m = mem_cfg () in
  let t = Memory.load m ~cycle:0 ~addr:0 in
  Alcotest.(check int) "cold load" (2 + 10 + 100 + 4) t

let test_memory_store_fills () =
  let m = mem_cfg () in
  Memory.store m ~cycle:0 ~addr:0;
  Alcotest.(check int) "load hits after store" 2 (Memory.load m ~cycle:0 ~addr:0)


let test_prefetch_helps_streaming () =
  (* a pure streaming load pattern: next-line prefetch turns most L2
     misses into hits *)
  let insts =
    Array.init 6_000 (fun i ->
        if i mod 3 = 0 then inst ~op:Opcode.Load ~addr:(i / 3 * 24) ~pc:(4 * (i mod 256)) ()
        else inst ~pc:(4 * (i mod 256)) ())
  in
  let trace = Trace.of_array insts in
  let cfg_of prefetch =
    { (Config.make ~pipe_depth:12 ~rob_size:64 ~iq_size:32 ~lsq_size:32
         ~l2_size:(256 * 1024) ~l2_latency:10 ~il1_size:(32 * 1024)
         ~dl1_size:(8 * 1024) ~dl1_latency:2 ())
      with Config.l2_prefetch = prefetch }
  in
  let off = (Processor.run ~warm:false (cfg_of false) trace).Processor.cpi in
  let on = (Processor.run ~warm:false (cfg_of true) trace).Processor.cpi in
  Alcotest.(check bool) "prefetch reduces streaming CPI" true (on < off)

let test_prefetch_default_off () =
  Alcotest.(check bool) "off by default" false Config.default.Config.l2_prefetch

(* ---------- FU pool ---------- *)

let test_fu_pipelined_width () =
  let fu = Fu.create Fu.default_config in
  for _ = 1 to 4 do
    Alcotest.(check bool) "grant" true (Fu.try_issue fu ~cycle:0 Fu.Int_alu)
  done;
  Alcotest.(check bool) "5th refused" false (Fu.try_issue fu ~cycle:0 Fu.Int_alu);
  Alcotest.(check bool) "next cycle ok" true (Fu.try_issue fu ~cycle:1 Fu.Int_alu);
  Alcotest.(check int) "refusals" 1 (Fu.structural_stalls fu)

let test_fu_unpipelined_busy () =
  let fu = Fu.create Fu.default_config in
  Alcotest.(check bool) "div grant" true (Fu.try_issue fu ~cycle:0 Fu.Int_div);
  Alcotest.(check bool) "div busy" false (Fu.try_issue fu ~cycle:5 Fu.Int_div);
  let lat = Fu.latency Fu.default_config Fu.Int_div in
  Alcotest.(check bool) "free after latency" true
    (Fu.try_issue fu ~cycle:lat Fu.Int_div)

let test_fu_class_mapping () =
  Alcotest.(check bool) "load uses port" true
    (Fu.class_of_opcode Opcode.Load = Some Fu.Mem_port);
  Alcotest.(check bool) "nop uses nothing" true
    (Fu.class_of_opcode Opcode.Nop = None);
  Alcotest.(check bool) "branch on alu" true
    (Fu.class_of_opcode Opcode.Branch = Some Fu.Int_alu)

(* ---------- Config ---------- *)

let test_config_validation () =
  Alcotest.(check bool) "default valid" true (Config.validate Config.default = Ok ());
  Alcotest.check_raises "iq > rob"
    (Invalid_argument "Config.make: iq_size outside [1, rob_size]") (fun () ->
      ignore
        (Config.make ~pipe_depth:10 ~rob_size:32 ~iq_size:64 ~lsq_size:16
           ~l2_size:(1 lsl 20) ~l2_latency:10 ~il1_size:8192 ~dl1_size:8192
           ~dl1_latency:2 ()))

let test_config_size_rounding () =
  let c =
    Config.make ~pipe_depth:10 ~rob_size:32 ~iq_size:16 ~lsq_size:16
      ~l2_size:1_000_000 ~l2_latency:10 ~il1_size:9_000 ~dl1_size:9_000
      ~dl1_latency:2 ()
  in
  Alcotest.(check int) "l2 whole sets" 0 (c.Config.l2_size mod (64 * 8));
  Alcotest.(check int) "il1 whole sets" 0 (c.Config.il1_size mod (64 * 2));
  Alcotest.(check bool) "close to request" true
    (abs (c.Config.l2_size - 1_000_000) < 64 * 8)

(* ---------- Processor ---------- *)

(* warm caches: these throughput tests target the pipeline, not cold
   compulsory misses *)
let run_cpi ?cfg trace =
  let cfg = match cfg with Some c -> c | None -> Config.default in
  (Processor.run ~warm:true cfg trace).Processor.cpi

let test_processor_ilp_throughput () =
  let trace = uniform_trace 4000 in
  let cpi = run_cpi trace in
  Alcotest.(check bool) "cpi near 0.25" true (cpi < 0.35 && cpi >= 0.25)

let test_processor_serial_chain () =
  let trace = uniform_trace ~dep1:1 4000 in
  let cpi = run_cpi trace in
  Alcotest.(check bool) "cpi near 1" true (cpi > 0.9 && cpi < 1.2)

let test_processor_determinism () =
  let trace =
    Archpred_workloads.Generator.generate Archpred_workloads.Spec2000.parser
      ~length:5_000
  in
  let a = Processor.run Config.default trace in
  let b = Processor.run Config.default trace in
  Alcotest.(check int) "same cycles" a.Processor.cycles b.Processor.cycles

let test_processor_dl1_latency_monotone () =
  let trace =
    Archpred_workloads.Generator.generate Archpred_workloads.Spec2000.twolf
      ~length:8_000
  in
  let cpi_at lat =
    let cfg =
      Config.make ~pipe_depth:12 ~rob_size:64 ~iq_size:32 ~lsq_size:32
        ~l2_size:(2 lsl 20) ~l2_latency:10 ~il1_size:(32 * 1024)
        ~dl1_size:(32 * 1024) ~dl1_latency:lat ()
    in
    Processor.cpi cfg trace
  in
  Alcotest.(check bool) "dl1 latency hurts" true (cpi_at 4 > cpi_at 1)

let test_processor_mispredict_penalty_scales () =
  let rng = Archpred_stats.Rng.create 3 in
  let insts =
    Array.init 8_000 (fun i ->
        if i mod 4 = 3 then
          inst ~op:Opcode.Branch ~pc:(4 * (i mod 64))
            ~taken:(Archpred_stats.Rng.bool rng)
            ~target:(4 * ((i + 1) mod 64))
            ()
        else inst ~pc:(4 * (i mod 64)) ())
  in
  let trace = Trace.of_array insts in
  let cpi_at depth =
    let cfg =
      Config.make ~pipe_depth:depth ~rob_size:64 ~iq_size:32 ~lsq_size:32
        ~l2_size:(2 lsl 20) ~l2_latency:10 ~il1_size:(32 * 1024)
        ~dl1_size:(32 * 1024) ~dl1_latency:2 ()
    in
    Processor.cpi cfg trace
  in
  Alcotest.(check bool) "deep pipe worse" true (cpi_at 24 > cpi_at 7 +. 0.1)

let test_processor_rob_size_helps_mlp () =
  let insts =
    Array.init 4_000 (fun i ->
        if i mod 4 = 0 then
          inst ~op:Opcode.Load ~addr:(i * 8192) ~pc:(4 * i) ()
        else inst ~pc:(4 * i) ())
  in
  let trace = Trace.of_array insts in
  let cpi_at rob =
    let cfg =
      Config.make ~pipe_depth:12 ~rob_size:rob ~iq_size:(rob / 2)
        ~lsq_size:(rob / 2) ~l2_size:(1 lsl 18) ~l2_latency:10
        ~il1_size:(32 * 1024) ~dl1_size:(8 * 1024) ~dl1_latency:2 ()
    in
    (Processor.run ~warm:false cfg trace).Processor.cpi
  in
  Alcotest.(check bool) "bigger rob helps" true (cpi_at 128 < cpi_at 16 -. 0.2)

let test_processor_store_forwarding () =
  let insts =
    Array.init 2_000 (fun i ->
        match i mod 2 with
        | 0 -> inst ~op:Opcode.Store ~addr:((i / 2) * 65536) ~pc:(4 * i) ()
        | _ -> inst ~op:Opcode.Load ~addr:((i / 2) * 65536) ~pc:(4 * i) ())
  in
  let trace = Trace.of_array insts in
  let r = Processor.run ~warm:true Config.default trace in
  Alcotest.(check bool) "forwarding keeps cpi low" true (r.Processor.cpi < 3.)

let test_processor_commits_everything () =
  let trace = uniform_trace 1234 in
  let r = Processor.run Config.default trace in
  Alcotest.(check int) "all committed" 1234 r.Processor.instructions;
  Alcotest.(check bool) "cycles positive" true (r.Processor.cycles > 0)

let test_processor_cycle_limit () =
  let trace = uniform_trace 100 in
  Alcotest.(check bool) "raises" true
    (match Processor.run ~max_cycles:3 Config.default trace with
    | exception Processor.Cycle_limit_exceeded _ -> true
    | _ -> false)

let test_processor_occupancies_bounded () =
  let trace =
    Archpred_workloads.Generator.generate Archpred_workloads.Spec2000.mcf
      ~length:5_000
  in
  let cfg = Config.default in
  let r = Processor.run cfg trace in
  Alcotest.(check bool) "rob occ within size" true
    (r.Processor.avg_rob_occupancy <= float_of_int cfg.Config.rob_size);
  Alcotest.(check bool) "iq occ within size" true
    (r.Processor.avg_iq_occupancy <= float_of_int cfg.Config.iq_size);
  Alcotest.(check bool) "lsq occ within size" true
    (r.Processor.avg_lsq_occupancy <= float_of_int cfg.Config.lsq_size)

let prop_processor_never_faster_than_width =
  qtest ~count:10 "CPI >= 1/fetch_width" QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let trace =
        Archpred_workloads.Generator.generate ~seed
          Archpred_workloads.Spec2000.crafty ~length:2_000
      in
      let r = Processor.run Config.default trace in
      r.Processor.cpi >= 1. /. float_of_int Config.default.Config.fetch_width)



(* ---------- Trace_io ---------- *)

let test_trace_io_roundtrip () =
  let trace =
    Archpred_workloads.Generator.generate Archpred_workloads.Spec2000.mcf
      ~length:2_000
  in
  let path = Filename.temp_file "archpred" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sim.Trace_io.save trace path;
      let loaded = Sim.Trace_io.load path in
      Alcotest.(check int) "length" (Trace.length trace) (Trace.length loaded);
      let same = ref true in
      for i = 0 to Trace.length trace - 1 do
        if Trace.get trace i <> Trace.get loaded i then same := false
      done;
      Alcotest.(check bool) "identical instructions" true !same;
      (* identical timing too *)
      Alcotest.(check int) "same cycles"
        (Processor.run Config.default trace).Processor.cycles
        (Processor.run Config.default loaded).Processor.cycles)

let test_trace_io_rejects_garbage () =
  let path = Filename.temp_file "archpred" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a trace\n";
      close_out oc;
      Alcotest.(check bool) "garbage fails" true
        (match Sim.Trace_io.load path with
        | exception Failure _ -> true
        | _ -> false))

let test_trace_io_rejects_bad_fields () =
  let path = Filename.temp_file "archpred" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "archpred-trace 1\nialu zero 0 0 0 0 0\n";
      close_out oc;
      Alcotest.(check bool) "bad int fails" true
        (match Sim.Trace_io.load path with
        | exception Failure _ -> true
        | _ -> false))

(* ---------- Power ---------- *)

let power_of cfg trace =
  Sim.Power.estimate cfg (Processor.run cfg trace)

let test_power_positive () =
  let trace =
    Archpred_workloads.Generator.generate Archpred_workloads.Spec2000.mcf
      ~length:5_000
  in
  let p = power_of Config.default trace in
  Alcotest.(check bool) "dynamic positive" true (p.Sim.Power.dynamic > 0.);
  Alcotest.(check bool) "leakage positive" true (p.Sim.Power.leakage > 0.);
  Alcotest.(check (float 1e-9)) "total = dyn + leak"
    (p.Sim.Power.dynamic +. p.Sim.Power.leakage)
    p.Sim.Power.total

let test_power_bigger_caches_cost_more () =
  let trace =
    Archpred_workloads.Generator.generate Archpred_workloads.Spec2000.crafty
      ~length:5_000
  in
  let with_l2 size =
    Config.make ~pipe_depth:14 ~rob_size:80 ~iq_size:40 ~lsq_size:40
      ~l2_size:size ~l2_latency:12 ~il1_size:(32 * 1024)
      ~dl1_size:(32 * 1024) ~dl1_latency:2 ()
  in
  let small = power_of (with_l2 (256 * 1024)) trace in
  let big = power_of (with_l2 (8 * 1024 * 1024)) trace in
  (* a big L2 leaks more; its energy per instruction should be higher for a
     workload that rarely misses anyway *)
  Alcotest.(check bool) "bigger L2 leaks more" true
    (big.Sim.Power.leakage > small.Sim.Power.leakage)

let test_power_edp_consistent () =
  let trace =
    Archpred_workloads.Generator.generate Archpred_workloads.Spec2000.twolf
      ~length:5_000
  in
  let r = Processor.run Config.default trace in
  let p = Sim.Power.estimate Config.default r in
  Alcotest.(check (float 1e-9)) "edp = epi * cpi"
    (p.Sim.Power.energy_per_instruction *. r.Processor.cpi)
    p.Sim.Power.energy_delay_product

(* ---------- predictor schemes ---------- *)

let scheme_cfg scheme =
  Bp.config ~scheme ~history_bits:12 ~btb_entries:1024 ()

let train_pattern bp pattern reps =
  List.iter
    (fun _ ->
      List.iter
        (fun taken ->
          ignore (Bp.mispredicted bp ~kind:Bp.Conditional ~pc:64 ~taken);
          Bp.update bp ~pc:64 ~taken ~target:128)
        pattern)
    (List.init reps Fun.id)

let test_bimodal_learns_bias () =
  let bp = Bp.create (scheme_cfg Bp.Bimodal) in
  train_pattern bp [ true ] 40;
  Alcotest.(check bool) "high accuracy" true (Bp.accuracy bp > 0.9)

let test_local_learns_period () =
  (* pattern T T T N repeating: local history disambiguates, bimodal
     cannot do better than 75% *)
  let local = Bp.create (scheme_cfg Bp.Local) in
  train_pattern local [ true; true; true; false ] 200;
  let bimodal = Bp.create (scheme_cfg Bp.Bimodal) in
  train_pattern bimodal [ true; true; true; false ] 200;
  Alcotest.(check bool) "local beats bimodal on periodic" true
    (Bp.accuracy local > Bp.accuracy bimodal);
  Alcotest.(check bool) "local near perfect" true (Bp.accuracy local > 0.9)

let test_tournament_not_worse () =
  let trace =
    Archpred_workloads.Generator.generate Archpred_workloads.Spec2000.twolf
      ~length:20_000
  in
  let accuracy scheme =
    let bp = Bp.create (scheme_cfg scheme) in
    for i = 0 to Trace.length trace - 1 do
      if Trace.op trace i = Opcode.Branch then begin
        ignore
          (Bp.mispredicted bp ~kind:Bp.Conditional ~pc:(Trace.pc trace i)
             ~taken:(Trace.taken trace i));
        Bp.update bp ~pc:(Trace.pc trace i) ~taken:(Trace.taken trace i)
          ~target:(Trace.target trace i)
      end
    done;
    Bp.accuracy bp
  in
  let t = accuracy Bp.Tournament in
  let b = accuracy Bp.Bimodal in
  (* the tournament should be at least roughly as good as bimodal alone *)
  Alcotest.(check bool) "tournament competitive" true (t >= b -. 0.03)

(* ---------- Replacement policies: hand-computed hit/miss traces ---------- *)

let test_policy_roundtrip () =
  Array.iter
    (fun p ->
      Alcotest.(check bool) "roundtrip" true
        (match Cache.Policy.of_string (Cache.Policy.to_string p) with
        | Some q -> q = p
        | None -> false))
    Cache.Policy.all;
  Alcotest.(check bool) "unknown rejected" true
    (Cache.Policy.of_string "random" = None)

let test_policy_tree_plru_needs_pow2 () =
  Alcotest.check_raises "3-way tree"
    (Invalid_argument "Cache.config: tree-plru needs power-of-two associativity")
    (fun () ->
      ignore
        (Cache.config ~policy:Cache.Policy.Tree_plru ~size_bytes:(3 * 64)
           ~line_bytes:64 ~associativity:3 ~latency:1 ()))

(* Tree-PLRU, 4 ways, one set.  Fill A B C D, re-touch A, then miss E:
   the decision tree points at way 2 (C), where true LRU would evict B. *)
let test_policy_tree_plru_trace () =
  let c =
    Cache.create
      (cache_cfg ~policy:Cache.Policy.Tree_plru ~size:(64 * 4) ~assoc:4 ())
  in
  let a, b, d, e = (0, 64, 192, 256) in
  let cc = 128 in
  List.iter (fun x -> ignore (Cache.access c x)) [ a; b; cc; d ];
  Alcotest.(check bool) "A hits" true (Cache.access c a);
  Alcotest.(check bool) "E misses" false (Cache.access c e);
  Alcotest.(check bool) "C evicted" false (Cache.probe c cc);
  Alcotest.(check bool) "A stays" true (Cache.probe c a);
  Alcotest.(check bool) "B stays" true (Cache.probe c b);
  Alcotest.(check bool) "D stays" true (Cache.probe c d);
  (* next victim: root points left, left node points right -> way 1 (B) *)
  Alcotest.(check bool) "F misses" false (Cache.access c 320);
  Alcotest.(check bool) "B evicted" false (Cache.probe c b)

(* QLRU, 2 ways, one set.  A B fill at age 1; hitting both promotes to
   age 0; the miss on C ages both to 3 and evicts the *leftmost* (A),
   where true LRU would evict B. *)
let test_policy_qlru_trace () =
  let qlru = cache_cfg ~policy:Cache.Policy.Qlru ~size:(64 * 2) ~assoc:2 in
  let c = Cache.create (qlru ()) in
  let a, b, e = (0, 64, 128) in
  Alcotest.(check bool) "A cold" false (Cache.access c a);
  Alcotest.(check bool) "B cold" false (Cache.access c b);
  Alcotest.(check bool) "B hit" true (Cache.access c b);
  Alcotest.(check bool) "A hit" true (Cache.access c a);
  Alcotest.(check bool) "C miss" false (Cache.access c e);
  Alcotest.(check bool) "A evicted (leftmost age 3)" false (Cache.probe c a);
  Alcotest.(check bool) "B stays" true (Cache.probe c b);
  (* same stream under LRU evicts B, not A *)
  let l = Cache.create (cache_cfg ~size:(64 * 2) ~assoc:2 ()) in
  List.iter (fun x -> ignore (Cache.access l x)) [ a; b; b; a; e ];
  Alcotest.(check bool) "LRU keeps A" true (Cache.probe l a);
  Alcotest.(check bool) "LRU evicts B" false (Cache.probe l b)

(* QLRU insertion age: a freshly filled line (age 1) survives a miss
   that evicts an aged line. *)
let test_policy_qlru_insertion () =
  let c =
    Cache.create (cache_cfg ~policy:Cache.Policy.Qlru ~size:(64 * 2) ~assoc:2 ())
  in
  List.iter (fun x -> ignore (Cache.access c x)) [ 0; 64; 0 ];
  (* ages: way0 (A) = 0, way1 (B) = 1; miss ages to 2/3: B evicted *)
  Alcotest.(check bool) "C miss" false (Cache.access c 128);
  Alcotest.(check bool) "B evicted" false (Cache.probe c 64);
  Alcotest.(check bool) "A stays" true (Cache.probe c 0)

(* MRU (bit-PLRU), 4 ways, one set.  Filling A B C D sets every MRU bit;
   the global flip on D leaves only D's bit, so E evicts the leftmost
   clear way (A); after touching B, F evicts C. *)
let test_policy_mru_trace () =
  let c =
    Cache.create (cache_cfg ~policy:Cache.Policy.Mru ~size:(64 * 4) ~assoc:4 ())
  in
  let a, b, d, e = (0, 64, 192, 256) in
  let cc = 128 in
  List.iter (fun x -> ignore (Cache.access c x)) [ a; b; cc; d ];
  Alcotest.(check bool) "E misses" false (Cache.access c e);
  Alcotest.(check bool) "A evicted" false (Cache.probe c a);
  Alcotest.(check bool) "B hit" true (Cache.access c b);
  Alcotest.(check bool) "F misses" false (Cache.access c 320);
  Alcotest.(check bool) "C evicted" false (Cache.probe c cc);
  Alcotest.(check bool) "D stays" true (Cache.probe c d)

let test_policy_default_is_lru () =
  Alcotest.(check bool) "constructor default" true
    ((cache_cfg ()).Cache.policy = Cache.Policy.Lru);
  Alcotest.(check bool) "config default" true
    (Config.default.Config.cache_policy = Cache.Policy.Lru)

(* ---------- Batched multi-config simulation ---------- *)

module Batch = Sim.Batch

(* A deterministic spread of valid configs covering ROB/queue sizes,
   pipe depths, cache geometries and all four replacement policies. *)
let batch_configs b salt =
  Array.init b (fun k ->
      let j = salt + (7 * k) in
      let rob = 16 + (8 * (j mod 9)) in
      Config.make
        ~cache_policy:Cache.Policy.all.(j mod 4)
        ~pipe_depth:(7 + (j mod 12))
        ~rob_size:rob
        ~iq_size:(max 1 (rob / 2))
        ~lsq_size:(max 1 (rob / 2))
        ~l2_size:((1 lsl 17) + (65536 * (j mod 8)))
        ~l2_latency:(8 + (j mod 6))
        ~il1_size:(8192 lsl (j mod 3))
        ~dl1_size:(8192 lsl (j mod 3))
        ~dl1_latency:(1 + (j mod 4))
        ())

let results_equal (a : Processor.result) (b : Processor.result) =
  let feq x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y) in
  a.Processor.instructions = b.Processor.instructions
  && a.Processor.cycles = b.Processor.cycles
  && a.Processor.dram_accesses = b.Processor.dram_accesses
  && a.Processor.dispatch_stall_rob = b.Processor.dispatch_stall_rob
  && a.Processor.dispatch_stall_iq = b.Processor.dispatch_stall_iq
  && a.Processor.dispatch_stall_lsq = b.Processor.dispatch_stall_lsq
  && a.Processor.fetch_stall_icache = b.Processor.fetch_stall_icache
  && a.Processor.fetch_stall_branch = b.Processor.fetch_stall_branch
  && feq a.Processor.cpi b.Processor.cpi
  && feq a.Processor.branch_accuracy b.Processor.branch_accuracy
  && feq a.Processor.il1_miss_rate b.Processor.il1_miss_rate
  && feq a.Processor.dl1_miss_rate b.Processor.dl1_miss_rate
  && feq a.Processor.l2_miss_rate b.Processor.l2_miss_rate
  && feq a.Processor.dram_avg_latency b.Processor.dram_avg_latency
  && feq a.Processor.avg_rob_occupancy b.Processor.avg_rob_occupancy
  && feq a.Processor.avg_iq_occupancy b.Processor.avg_iq_occupancy
  && feq a.Processor.avg_lsq_occupancy b.Processor.avg_lsq_occupancy

let check_batch_vs_reference ?(warm = true) ?domains msg configs trace =
  let batch = Batch.run ~warm ?domains configs trace in
  Array.iteri
    (fun i cfg ->
      let reference = Processor.run ~warm cfg trace in
      if not (results_equal reference batch.(i)) then
        Alcotest.failf "%s: config %d diverges:@.ref   %a@.batch %a" msg i
          Processor.pp_result reference Processor.pp_result batch.(i))
    configs

let test_batch_bit_identity () =
  List.iter
    (fun b ->
      let trace =
        Archpred_workloads.Generator.generate ~seed:(40 + b)
          Archpred_workloads.Spec2000.mcf ~length:2_000
      in
      check_batch_vs_reference
        (Printf.sprintf "batch size %d" b)
        (batch_configs b b) trace)
    [ 1; 7; 16; 64 ]

let test_batch_bit_identity_cold () =
  let trace =
    Archpred_workloads.Generator.generate ~seed:11
      Archpred_workloads.Spec2000.crafty ~length:2_000
  in
  check_batch_vs_reference ~warm:false "cold batch" (batch_configs 7 3) trace

let test_batch_domain_independence () =
  let trace =
    Archpred_workloads.Generator.generate ~seed:5
      Archpred_workloads.Spec2000.twolf ~length:2_000
  in
  let configs = batch_configs 16 1 in
  let one = Batch.run ~domains:1 configs trace in
  let four = Batch.run ~domains:4 configs trace in
  Array.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "config %d domain-independent" i)
        true (results_equal r four.(i)))
    one;
  check_batch_vs_reference ~domains:4 "4 domains vs reference" configs trace

let test_batch_plan_reuse () =
  let trace =
    Archpred_workloads.Generator.generate ~seed:2
      Archpred_workloads.Spec2000.parser ~length:1_500
  in
  let p = Batch.plan trace in
  Alcotest.(check int) "plan length" 1_500 (Batch.length p);
  let configs = batch_configs 4 9 in
  let r1 = Batch.run_plan p configs in
  let r2 = Batch.run_plan p configs in
  Array.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "run %d reusable" i)
        true (results_equal r r2.(i)))
    r1

let test_batch_cycle_limit () =
  let trace = uniform_trace 100 in
  Alcotest.(check bool) "raises like the reference" true
    (match Batch.run ~max_cycles:3 [| Config.default |] trace with
    | exception Processor.Cycle_limit_exceeded 4 -> true
    | _ -> false)

let test_batch_empty () =
  let trace = uniform_trace 10 in
  Alcotest.(check int) "no configs" 0 (Array.length (Batch.run [||] trace))

let test_batch_invalid_config () =
  let trace = uniform_trace 10 in
  let bad = { Config.default with Config.rob_size = 1 } in
  Alcotest.(check bool) "invalid rejected" true
    (match Batch.run [| bad |] trace with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_batch_bit_identity =
  qtest ~count:12 "Batch.run == Processor.run (random traces)"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 3))
    (fun (seed, pidx) ->
      let profile =
        [|
          Archpred_workloads.Spec2000.mcf;
          Archpred_workloads.Spec2000.crafty;
          Archpred_workloads.Spec2000.twolf;
          Archpred_workloads.Spec2000.parser;
        |].(pidx)
      in
      let trace =
        Archpred_workloads.Generator.generate ~seed profile ~length:1_000
      in
      let configs = batch_configs 5 seed in
      let batch = Batch.run configs trace in
      Array.for_all2
        (fun cfg r -> results_equal (Processor.run cfg trace) r)
        configs batch)

let () =
  Alcotest.run "sim"
    [
      ( "opcode",
        [
          Alcotest.test_case "roundtrip" `Quick test_opcode_roundtrip;
          Alcotest.test_case "classes" `Quick test_opcode_classes;
          Alcotest.test_case "invalid code" `Quick test_opcode_of_int_invalid;
        ] );
      ( "trace",
        [
          Alcotest.test_case "builder growth" `Quick test_trace_builder;
          Alcotest.test_case "accessors" `Quick test_trace_accessors;
          Alcotest.test_case "validate ok" `Quick test_trace_validate_ok;
          Alcotest.test_case "validate bad dep" `Quick test_trace_validate_bad_dep;
          Alcotest.test_case "validate misaligned" `Quick test_trace_validate_misaligned;
        ] );
      ( "cache",
        [
          Alcotest.test_case "cold miss then hit" `Quick test_cache_cold_miss_then_hit;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "associativity" `Quick test_cache_associativity;
          Alcotest.test_case "stats" `Quick test_cache_stats;
          Alcotest.test_case "non-pow2 sets" `Quick test_cache_non_pow2_sets;
          Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
          Alcotest.test_case "config validation" `Quick test_cache_config_invalid;
        ] );
      ( "cache_policy",
        [
          Alcotest.test_case "roundtrip" `Quick test_policy_roundtrip;
          Alcotest.test_case "tree-plru pow2 only" `Quick test_policy_tree_plru_needs_pow2;
          Alcotest.test_case "tree-plru trace" `Quick test_policy_tree_plru_trace;
          Alcotest.test_case "qlru trace" `Quick test_policy_qlru_trace;
          Alcotest.test_case "qlru insertion age" `Quick test_policy_qlru_insertion;
          Alcotest.test_case "mru trace" `Quick test_policy_mru_trace;
          Alcotest.test_case "default is lru" `Quick test_policy_default_is_lru;
        ] );
      ( "batch",
        [
          Alcotest.test_case "bit identity {1,7,16,64}" `Quick test_batch_bit_identity;
          Alcotest.test_case "bit identity cold" `Quick test_batch_bit_identity_cold;
          Alcotest.test_case "domain independence" `Quick test_batch_domain_independence;
          Alcotest.test_case "plan reuse" `Quick test_batch_plan_reuse;
          Alcotest.test_case "cycle limit" `Quick test_batch_cycle_limit;
          Alcotest.test_case "empty batch" `Quick test_batch_empty;
          Alcotest.test_case "invalid config" `Quick test_batch_invalid_config;
          prop_batch_bit_identity;
        ] );
      ( "branch_predictor",
        [
          Alcotest.test_case "learns bias" `Quick test_bp_learns_bias;
          Alcotest.test_case "mispredict counting" `Quick test_bp_mispredict_counting;
          Alcotest.test_case "indirect btb miss" `Quick test_bp_indirect_btb_miss;
          Alcotest.test_case "accuracy" `Quick test_bp_accuracy;
          Alcotest.test_case "config validation" `Quick test_bp_config_validation;
        ] );
      ( "dram",
        [
          Alcotest.test_case "unloaded latency" `Quick test_dram_unloaded_latency;
          Alcotest.test_case "bank conflict" `Quick test_dram_bank_conflict;
          Alcotest.test_case "bank parallelism" `Quick test_dram_bank_parallelism;
          Alcotest.test_case "stats" `Quick test_dram_stats;
        ] );
      ( "memory",
        [
          Alcotest.test_case "l1 hit" `Quick test_memory_l1_hit;
          Alcotest.test_case "l2 hit" `Quick test_memory_l2_hit;
          Alcotest.test_case "dram path" `Quick test_memory_dram_path;
          Alcotest.test_case "store fills" `Quick test_memory_store_fills;
          Alcotest.test_case "prefetch helps streaming" `Quick test_prefetch_helps_streaming;
          Alcotest.test_case "prefetch default off" `Quick test_prefetch_default_off;
        ] );
      ( "fu_pool",
        [
          Alcotest.test_case "pipelined width" `Quick test_fu_pipelined_width;
          Alcotest.test_case "unpipelined busy" `Quick test_fu_unpipelined_busy;
          Alcotest.test_case "class mapping" `Quick test_fu_class_mapping;
        ] );
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "size rounding" `Quick test_config_size_rounding;
        ] );
      ( "trace_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_io_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_trace_io_rejects_garbage;
          Alcotest.test_case "rejects bad fields" `Quick test_trace_io_rejects_bad_fields;
        ] );
      ( "power",
        [
          Alcotest.test_case "positive decomposition" `Quick test_power_positive;
          Alcotest.test_case "bigger caches leak more" `Quick test_power_bigger_caches_cost_more;
          Alcotest.test_case "edp consistent" `Quick test_power_edp_consistent;
        ] );
      ( "predictor_schemes",
        [
          Alcotest.test_case "bimodal bias" `Quick test_bimodal_learns_bias;
          Alcotest.test_case "local periodic" `Quick test_local_learns_period;
          Alcotest.test_case "tournament competitive" `Quick test_tournament_not_worse;
        ] );
      ( "processor",
        [
          Alcotest.test_case "ILP throughput" `Quick test_processor_ilp_throughput;
          Alcotest.test_case "serial chain" `Quick test_processor_serial_chain;
          Alcotest.test_case "determinism" `Quick test_processor_determinism;
          Alcotest.test_case "dl1 latency monotone" `Quick test_processor_dl1_latency_monotone;
          Alcotest.test_case "mispredict penalty scales" `Quick test_processor_mispredict_penalty_scales;
          Alcotest.test_case "rob enables mlp" `Quick test_processor_rob_size_helps_mlp;
          Alcotest.test_case "store forwarding" `Quick test_processor_store_forwarding;
          Alcotest.test_case "commits everything" `Quick test_processor_commits_everything;
          Alcotest.test_case "cycle limit" `Quick test_processor_cycle_limit;
          Alcotest.test_case "occupancies bounded" `Quick test_processor_occupancies_bounded;
          prop_processor_never_faster_than_width;
        ] );
    ]
