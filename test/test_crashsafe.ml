(* Crash-safety tests: the simulation checkpoint journal, atomic model
   persistence, worker fault isolation, and the deterministic
   fault-injection harness that drives them.

   The central invariant, asserted over and over: interrupting
   [Build.train] anywhere — an injected task fault, a crash during a
   journal append or sync, a torn journal tail truncated at every byte
   boundary — and resuming from the checkpoint journal yields a model
   whose [Persist.to_string] is *byte-identical* to an uninterrupted
   run, at 1 and at 4 domains. *)

module Core = Archpred_core
module Paper_space = Core.Paper_space
module Response = Core.Response
module Build = Core.Build
module Config = Core.Config
module Persist = Core.Persist
module Checkpoint = Core.Checkpoint
module Crc32 = Core.Crc32
module Obs = Archpred_obs
module Parallel = Archpred_stats.Parallel
module Fault = Archpred_fault.Fault

let with_faults f =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset f

let tmp_path suffix =
  let path = Filename.temp_file "archpred_crashsafe" suffix in
  Sys.remove path;
  path

let rm path = try Sys.remove path with Sys_error _ -> ()

(* A cheap deterministic response whose evaluations we can count: the
   torn-tail matrix asserts that resume re-simulates *only* the missing
   points. *)
let counted_response () =
  let evals = Atomic.make 0 in
  let base = Response.synthetic_smooth ~dim:9 in
  ( Response.make base.Response.name (fun p ->
        Atomic.incr evals;
        base.Response.eval p),
    evals )

let base_config ?(domains = 1) () =
  Config.default |> Config.with_seed 11 |> Config.with_sample_size 12
  |> Config.with_lhs_candidates 5
  |> Config.with_p_min_grid [ 1 ]
  |> Config.with_alpha_grid [ 7. ]
  |> Config.with_domains domains

let train ?domains ?checkpoint ?(retries = 1) () =
  let response, _ = counted_response () in
  let config =
    let c = base_config ?domains () |> Config.with_task_retries retries in
    match checkpoint with None -> c | Some p -> Config.with_checkpoint p c
  in
  Build.train ~config ~space:Paper_space.space ~response ()

(* The uninterrupted model every crash-and-resume run must reproduce. *)
let reference = lazy (Persist.to_string (train ()).Build.predictor)

let check_model_identical ctx trained =
  Alcotest.(check string)
    (ctx ^ ": bit-identical model")
    (Lazy.force reference)
    (Persist.to_string trained.Build.predictor)

(* ---------- checkpoint journal basics ---------- *)

let test_checkpoint_fresh_and_resume () =
  let path = tmp_path ".journal" in
  Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
  check_model_identical "fresh journal" (train ~checkpoint:path ());
  let records = Checkpoint.scan ~path in
  Alcotest.(check int) "journal holds every record" 12 (List.length records);
  (* Resuming a complete journal replays everything: zero simulations. *)
  let response, evals = counted_response () in
  let config = base_config () |> Config.with_checkpoint path in
  let trained = Build.train ~config ~space:Paper_space.space ~response () in
  check_model_identical "resumed complete journal" trained;
  Alcotest.(check int) "no re-simulation" 0 (Atomic.get evals)

let test_checkpoint_header_mismatch () =
  let path = tmp_path ".journal" in
  Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
  ignore (train ~checkpoint:path ());
  let config =
    base_config () |> Config.with_checkpoint path |> Config.with_seed 12
  in
  let response, _ = counted_response () in
  Alcotest.(check bool) "different seed rejected" true
    (match Build.train ~config ~space:Paper_space.space ~response () with
    | exception Obs.Error.Archpred (Obs.Error.Parse_error _) -> true
    | _ -> false)

let test_checkpoint_no_resume_overwrites () =
  let path = tmp_path ".journal" in
  Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
  ignore (train ~checkpoint:path ());
  let response, evals = counted_response () in
  let config =
    base_config () |> Config.with_checkpoint path |> Config.with_resume false
  in
  let trained = Build.train ~config ~space:Paper_space.space ~response () in
  check_model_identical "fresh over old journal" trained;
  Alcotest.(check int) "all points re-simulated" 12 (Atomic.get evals)

(* ---------- crash matrix ---------- *)

(* Arm [site] to fail permanently from its [k]-th hit, run a checkpointed
   training, then disarm and resume.  Whatever happened first —
   [Infeasible] from isolated task failures, a raw [Injected] escaping a
   journal sync, or plain success when [k] is beyond the run's hits — the
   model after resume must be byte-identical to the uninterrupted one. *)
let crash_and_resume ~domains ~site ~k =
  let path = tmp_path ".journal" in
  Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
  with_faults @@ fun () ->
  Fault.arm ~site ~after:k ~sticky:true ();
  let crashed =
    match train ~domains ~checkpoint:path () with
    | trained -> Some trained
    | exception Obs.Error.Archpred (Obs.Error.Infeasible _) -> None
    | exception Fault.Injected _ -> None
  in
  Fault.reset ();
  let ctx = Printf.sprintf "%s k=%d domains=%d" site k domains in
  match crashed with
  | Some trained -> check_model_identical (ctx ^ " (no crash)") trained
  | None -> check_model_identical (ctx ^ " (resumed)") (train ~domains ~checkpoint:path ())

let test_crash_matrix_sim_task () =
  List.iter
    (fun domains ->
      for k = 1 to 16 do
        crash_and_resume ~domains ~site:"sim.task" ~k
      done;
      (* beyond every hit the run must simply succeed *)
      crash_and_resume ~domains ~site:"sim.task" ~k:1000)
    [ 1; 4 ]

let test_crash_matrix_checkpoint_append () =
  List.iter
    (fun domains ->
      for k = 1 to 12 do
        crash_and_resume ~domains ~site:"checkpoint.append" ~k
      done)
    [ 1; 4 ]

let test_crash_matrix_checkpoint_sync () =
  (* Hit 1 is the header sync in [Checkpoint.start]; hit 2 the
     batch-boundary sync in [close].  Both must be resumable. *)
  List.iter
    (fun domains ->
      for k = 1 to 2 do
        crash_and_resume ~domains ~site:"checkpoint.sync" ~k
      done)
    [ 1; 4 ]

let test_transient_fault_absorbed_by_retry () =
  (* A one-shot (non-sticky) task fault is absorbed by the retry budget:
     training completes in one run, no resume needed. *)
  List.iter
    (fun domains ->
      with_faults @@ fun () ->
      Fault.arm ~site:"sim.task" ~after:3 ();
      let path = tmp_path ".journal" in
      Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
      check_model_identical
        (Printf.sprintf "transient domains=%d" domains)
        (train ~domains ~checkpoint:path ()))
    [ 1; 4 ]

let test_infeasible_reports_and_journals () =
  with_faults @@ fun () ->
  let path = tmp_path ".journal" in
  Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
  (* Fail every simulation task from hit 5 on: the first tasks complete
     and must be journaled before Infeasible is raised. *)
  Fault.arm ~site:"sim.task" ~after:5 ~sticky:true ();
  let obs = Obs.create () in
  let response, _ = counted_response () in
  let config =
    base_config () |> Config.with_checkpoint path |> Config.with_obs obs
    |> Config.with_task_retries 0
  in
  (match Build.train ~config ~space:Paper_space.space ~response () with
  | _ -> Alcotest.fail "expected Infeasible"
  | exception Obs.Error.Archpred (Obs.Error.Infeasible _) -> ());
  Alcotest.(check int) "completed points journaled" 4
    (List.length (Checkpoint.scan ~path));
  Alcotest.(check bool) "pool.failed_tasks counted" true
    (Obs.counter obs "pool.failed_tasks" > 0)

(* ---------- torn tail ---------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> In_channel.input_all ic)

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

let test_torn_tail_every_byte () =
  let path = tmp_path ".journal" in
  Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
  ignore (train ~checkpoint:path ());
  let full = read_file path in
  let size = String.length full in
  (* Start of the last record line (the final byte is its newline). *)
  let last_start = String.rindex_from full (size - 2) '\n' + 1 in
  for cut = last_start to size - 1 do
    let torn = tmp_path ".journal" in
    Fun.protect ~finally:(fun () -> rm torn) @@ fun () ->
    write_file torn (String.sub full 0 cut);
    let response, evals = counted_response () in
    let config = base_config () |> Config.with_checkpoint torn in
    let trained = Build.train ~config ~space:Paper_space.space ~response () in
    check_model_identical (Printf.sprintf "torn at byte %d" cut) trained;
    Alcotest.(check int)
      (Printf.sprintf "one missing point re-simulated (cut %d)" cut)
      1 (Atomic.get evals)
  done

let test_torn_tail_garbage_line () =
  (* A complete but corrupted tail line (bad checksum) is also dropped. *)
  let path = tmp_path ".journal" in
  Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
  ignore (train ~checkpoint:path ());
  let full = read_file path in
  write_file path (full ^ "deadbeef {\"type\":\"record\"}\n");
  let response, evals = counted_response () in
  let config = base_config () |> Config.with_checkpoint path in
  let trained = Build.train ~config ~space:Paper_space.space ~response () in
  check_model_identical "corrupt tail line" trained;
  Alcotest.(check int) "nothing re-simulated" 0 (Atomic.get evals)

(* ---------- atomic persistence ---------- *)

let predictor = lazy (train ()).Build.predictor

let test_save_atomic_under_faults () =
  List.iter
    (fun site ->
      with_faults @@ fun () ->
      let path = tmp_path ".model" in
      Fun.protect ~finally:(fun () -> rm path; rm (path ^ ".tmp")) @@ fun () ->
      let p = Lazy.force predictor in
      Persist.save p path;
      let before = read_file path in
      Fault.arm ~site ~after:1 ();
      (match Persist.save p path with
      | () -> Alcotest.failf "%s: expected injected fault" site
      | exception Fault.Injected _ -> ());
      Alcotest.(check string)
        (site ^ ": old model survives the failed save")
        before (read_file path);
      Alcotest.(check bool)
        (site ^ ": no temp file left behind")
        false
        (Sys.file_exists (path ^ ".tmp"));
      Alcotest.(check bool)
        (site ^ ": surviving model still loads")
        true
        (ignore (Persist.load path); true))
    [ "io.write"; "persist.rename" ]

let test_save_then_load_verifies_crc () =
  let path = tmp_path ".model" in
  Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
  let p = Lazy.force predictor in
  Persist.save p path;
  let text = read_file path in
  (* flip one byte in the body: load must reject the file *)
  let corrupt = Bytes.of_string text in
  let i = String.index text '.' in
  Bytes.set corrupt i ',';
  write_file path (Bytes.to_string corrupt);
  Alcotest.(check bool) "corrupted model rejected" true
    (match Persist.load path with
    | exception Obs.Error.Archpred (Obs.Error.Parse_error _) -> true
    | _ -> false)

let strip_trailer text =
  (* drop the final "crc xxxxxxxx" line *)
  let no_nl = String.sub text 0 (String.length text - 1) in
  let last = String.rindex no_nl '\n' in
  String.sub text 0 (last + 1)

let as_version_1 text =
  let body = strip_trailer text in
  "archpred-model 1" ^ String.sub body 16 (String.length body - 16)

let test_version_1_still_loads () =
  let p = Lazy.force predictor in
  let v2 = Persist.to_string p in
  let v1 = as_version_1 v2 in
  let loaded = Persist.of_string v1 in
  let probe = Array.make 9 0.25 in
  Alcotest.(check (float 0.)) "same prediction from a version-1 file"
    (Core.Predictor.predict p probe)
    (Core.Predictor.predict loaded probe)

let parse_error_line f =
  match f () with
  | exception Obs.Error.Archpred (Obs.Error.Parse_error { line; _ }) -> Some line
  | _ -> None

let test_reject_center_count_mismatch () =
  let p = Lazy.force predictor in
  let v1 = as_version_1 (Persist.to_string p) in
  let lines = String.split_on_char '\n' v1 |> List.filter (fun l -> l <> "") in
  let n_lines = List.length lines in
  let center_line =
    List.find (fun l -> String.length l > 7 && String.sub l 0 7 = "center ") lines
  in
  (* duplicated center line: one more center than the header declares *)
  let dup = v1 ^ center_line ^ "\n" in
  (match parse_error_line (fun () -> Persist.of_string dup) with
  | Some line ->
      Alcotest.(check int) "duplicate center rejected at the extra line"
        (n_lines + 1) line
  | None -> Alcotest.fail "duplicate center line accepted");
  (* missing center line: one fewer than declared *)
  let missing =
    String.concat "\n" (List.filteri (fun i _ -> i <> n_lines - 1) lines) ^ "\n"
  in
  (match parse_error_line (fun () -> Persist.of_string missing) with
  | Some line ->
      Alcotest.(check int) "missing center rejected at eof line" n_lines line
  | None -> Alcotest.fail "missing center line accepted");
  (* stray trailing junk *)
  (match parse_error_line (fun () -> Persist.of_string (v1 ^ "junk\n")) with
  | Some _ -> ()
  | None -> Alcotest.fail "trailing junk accepted")

(* ---------- worker fault isolation ---------- *)

let shape = function Ok v -> Printf.sprintf "ok:%d" v | Error _ -> "error"

let test_map_fallible_deterministic_across_domains () =
  let xs = Array.init 20 Fun.id in
  let f x = if x mod 3 = 0 then failwith "boom" else 2 * x in
  let run domains =
    let r0 = Parallel.retries_total () and f0 = Parallel.failed_total () in
    let out = Parallel.map_fallible ~domains ~retries:2 f xs in
    ( Array.to_list (Array.map shape out),
      Parallel.retries_total () - r0,
      Parallel.failed_total () - f0 )
  in
  let s1, r1, f1 = run 1 in
  let s4, r4, f4 = run 4 in
  Alcotest.(check (list string)) "same ok/error shape at 1 vs 4 domains" s1 s4;
  Alcotest.(check int) "same retry count" r1 r4;
  Alcotest.(check int) "same failure count" f1 f4;
  Alcotest.(check int) "2 retries per failing element" (7 * 2) r1;
  Alcotest.(check int) "each failing element fails once" 7 f1

let test_map_fallible_deadline () =
  let xs = Array.init 8 Fun.id in
  let f x = if x = 5 then (Unix.sleepf 0.03; x) else x in
  let run domains =
    Parallel.map_fallible ~domains ~deadline:0.005 f xs
    |> Array.map (function
         | Ok v -> Printf.sprintf "ok:%d" v
         | Error (Parallel.Deadline_exceeded _) -> "deadline"
         | Error _ -> "other")
    |> Array.to_list
  in
  let expect =
    List.init 8 (fun i -> if i = 5 then "deadline" else Printf.sprintf "ok:%d" i)
  in
  Alcotest.(check (list string)) "deadline at 1 domain" expect (run 1);
  Alcotest.(check (list string)) "deadline at 4 domains" expect (run 4)

let test_pool_survives_failures () =
  (* Error slots must not poison the pool for later parallel sections. *)
  let xs = Array.init 16 Fun.id in
  ignore (Parallel.map_fallible ~domains:4 (fun _ -> failwith "boom") xs);
  let doubled = Parallel.map ~domains:4 (fun x -> x * 2) xs in
  Alcotest.(check int) "pool still works" 30 doubled.(15)

let () =
  Alcotest.run "crashsafe"
    [
      ( "checkpoint",
        [
          Alcotest.test_case "fresh and resume" `Quick
            test_checkpoint_fresh_and_resume;
          Alcotest.test_case "header mismatch" `Quick
            test_checkpoint_header_mismatch;
          Alcotest.test_case "no-resume overwrites" `Quick
            test_checkpoint_no_resume_overwrites;
        ] );
      ( "crash matrix",
        [
          Alcotest.test_case "sim.task" `Quick test_crash_matrix_sim_task;
          Alcotest.test_case "checkpoint.append" `Quick
            test_crash_matrix_checkpoint_append;
          Alcotest.test_case "checkpoint.sync" `Quick
            test_crash_matrix_checkpoint_sync;
          Alcotest.test_case "transient absorbed" `Quick
            test_transient_fault_absorbed_by_retry;
          Alcotest.test_case "infeasible journals" `Quick
            test_infeasible_reports_and_journals;
        ] );
      ( "torn tail",
        [
          Alcotest.test_case "every byte of last record" `Quick
            test_torn_tail_every_byte;
          Alcotest.test_case "corrupt tail line" `Quick
            test_torn_tail_garbage_line;
        ] );
      ( "persist",
        [
          Alcotest.test_case "atomic under faults" `Quick
            test_save_atomic_under_faults;
          Alcotest.test_case "crc detects corruption" `Quick
            test_save_then_load_verifies_crc;
          Alcotest.test_case "version 1 compatibility" `Quick
            test_version_1_still_loads;
          Alcotest.test_case "center count mismatch" `Quick
            test_reject_center_count_mismatch;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "deterministic across domains" `Quick
            test_map_fallible_deterministic_across_domains;
          Alcotest.test_case "deadline" `Quick test_map_fallible_deadline;
          Alcotest.test_case "pool survives failures" `Quick
            test_pool_survives_failures;
        ] );
    ]
