(* End-to-end smoke test for the real daemon binary: save a tiny model,
   start `archpred served` on a temp Unix socket, round-trip predictions
   on both framings (answers must match the scalar oracle bitwise),
   hot-reload to a second model, then SIGTERM and require a clean
   drain — exit status 0.  The binary path arrives as argv.(1) from the
   dune runtest rule. *)

module Core = Archpred_core
module Rbf = Archpred_rbf
module Stats = Archpred_stats
module Design = Archpred_design
module Frame = Archpred_serve_net.Frame
module Daemon = Archpred_serve_net.Daemon
module Client = Archpred_serve_net.Client

(* archpred-lint: allow exit -- check harness failure path *)
let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let tiny_predictor seed =
  let dim = 9 in
  let rng = Stats.Rng.create seed in
  let centers =
    Array.init 6 (fun _ ->
        {
          Rbf.Network.c = Array.init dim (fun _ -> Stats.Rng.unit_float rng);
          r = Array.init dim (fun _ -> 0.3 +. Stats.Rng.unit_float rng);
        })
  in
  let weights = Array.init 6 (fun _ -> Stats.Rng.unit_float rng -. 0.5) in
  let network = { Rbf.Network.centers; weights } in
  Core.Predictor.make ~space:Core.Paper_space.space ~network ~p_min:1
    ~alpha:7. ()

let () =
  if Array.length Sys.argv < 2 then fail "usage: check_served ARCHPRED_BIN";
  let bin = Sys.argv.(1) in
  let dir = Filename.get_temp_dir_name () in
  let pid_tag = Unix.getpid () in
  let model_a = Filename.concat dir (Printf.sprintf "served_smoke_%d_a.model" pid_tag) in
  let model_b = Filename.concat dir (Printf.sprintf "served_smoke_%d_b.model" pid_tag) in
  let sock = Filename.concat dir (Printf.sprintf "served_smoke_%d.sock" pid_tag) in
  let pred_a = tiny_predictor 41 in
  let pred_b = tiny_predictor 97 in
  Core.Persist.save pred_a model_a;
  Core.Persist.save pred_b model_b;
  let pid =
    Unix.create_process bin
      [| bin; "served"; "--model"; model_a; "--socket"; sock |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let cleanup () =
    List.iter
      (fun f -> try Sys.remove f with Sys_error _ -> ())
      [ model_a; model_b; sock ]
  in
  let space = Core.Paper_space.space in
  let dim = Design.Space.dimension space in
  let rng = Stats.Rng.create 5 in
  let points =
    Array.init 32 (fun _ ->
        Design.Space.snap space ~sample_size:90
          (Array.init dim (fun _ -> Stats.Rng.unit_float rng)))
  in
  let bits = Int64.bits_of_float in
  (try
     let c = Client.connect ~retries:250 (Daemon.Unix_socket sock) in
     List.iter
       (fun wire ->
         Array.iteri (fun i p -> Client.predict c wire ~id:i p) points;
         Array.iteri
           (fun i p ->
             match Client.recv c with
             | Frame.Reply { id; status = Frame.Ok; value } ->
                 if id <> i then fail "reply order broken: want %d got %d" i id;
                 let expect =
                   Rbf.Network.eval pred_a.Core.Predictor.network p
                 in
                 if not (Int64.equal (bits expect) (bits value)) then
                   fail "wrong answer at point %d: want %.17g got %.17g" i
                     expect value
             | Frame.Reply { status; _ } ->
                 fail "point %d: status %s" i (Frame.status_name status)
             | Frame.Reload_reply _ -> fail "unexpected reload reply")
           points)
       [ Frame.Json_wire; Frame.Binary_wire ];
     (* hot reload to model B over the wire *)
     Client.reload c ~path:model_b ();
     (match Client.recv c with
     | Frame.Reload_reply { ok = true; _ } -> ()
     | Frame.Reload_reply { ok = false; detail } ->
         fail "reload rejected: %s" detail
     | Frame.Reply _ -> fail "expected reload reply");
     Client.predict c Frame.Json_wire ~id:0 points.(0);
     (match Client.recv c with
     | Frame.Reply { status = Frame.Ok; value; _ } ->
         let expect =
           Rbf.Network.eval pred_b.Core.Predictor.network points.(0)
         in
         if not (Int64.equal (bits expect) (bits value)) then
           fail "post-reload answer is not model B's"
     | _ -> fail "post-reload predict failed");
     Client.close c;
     (* graceful drain on SIGTERM: the daemon must exit 0 *)
     Unix.kill pid Sys.sigterm;
     (match Unix.waitpid [] pid with
     | _, Unix.WEXITED 0 -> ()
     | _, Unix.WEXITED n -> fail "daemon exited %d after SIGTERM" n
     | _, Unix.WSIGNALED n -> fail "daemon killed by signal %d" n
     | _, Unix.WSTOPPED n -> fail "daemon stopped by signal %d" n)
   with e ->
     (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
     cleanup ();
     raise e);
  cleanup ();
  Printf.printf
    "ok: served round-trips both framings, hot-reloads, drains clean (%d points)\n"
    (Array.length points)
