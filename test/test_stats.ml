(* Tests for archpred.stats: PRNG, descriptive statistics, quantiles,
   histograms, correlation, distributions, sampling, error metrics and the
   parallel map. *)

module Rng = Archpred_stats.Rng
module Descriptive = Archpred_stats.Descriptive
module Quantile = Archpred_stats.Quantile
module Histogram = Archpred_stats.Histogram
module Correlation = Archpred_stats.Correlation
module Dist = Archpred_stats.Distributions
module Sampling = Archpred_stats.Sampling
module Error_metrics = Archpred_stats.Error_metrics
module Parallel = Archpred_stats.Parallel

let feq ?(eps = 1e-9) a b = abs_float (a -. b) <= eps

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref true in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then same := false
  done;
  Alcotest.(check bool) "different seeds differ" false !same

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let c1 = Rng.int64 child in
  (* Re-derive: same split point gives the same child stream. *)
  let parent2 = Rng.create 7 in
  let child2 = Rng.split parent2 in
  Alcotest.(check int64) "split deterministic" c1 (Rng.int64 child2)

let test_rng_copy_replays () =
  let a = Rng.create 9 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.int64 a) (Rng.int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "int out of bounds: %d" v
  done

let test_rng_int_covers_all () =
  let rng = Rng.create 3 in
  let seen = Array.make 7 false in
  for _ = 1 to 1_000 do
    seen.(Rng.int rng 7) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_rng_unit_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let v = Rng.unit_float rng in
    if v < 0. || v >= 1. then Alcotest.failf "unit_float out of range: %f" v
  done

let test_rng_unit_float_mean () =
  let rng = Rng.create 11 in
  let n = 50_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.unit_float rng
  done;
  let mean = !acc /. float_of_int n in
  if abs_float (mean -. 0.5) > 0.01 then
    Alcotest.failf "unit_float mean suspicious: %f" mean

let test_rng_bernoulli () =
  let rng = Rng.create 13 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  if abs_float (frac -. 0.3) > 0.02 then
    Alcotest.failf "bernoulli(0.3) fraction %f" frac

(* ---------- Descriptive ---------- *)

let test_mean_known () = check_float "mean" 2.5 (Descriptive.mean [| 1.; 2.; 3.; 4. |])

let test_variance_known () =
  (* sample variance of 2,4,4,4,5,5,7,9 is 32/7 *)
  check_float ~eps:1e-9 "variance" (32. /. 7.)
    (Descriptive.variance [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_population_variance_known () =
  check_float "pop variance" 4.
    (Descriptive.population_variance [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_std_constant () = check_float "std of constant" 0. (Descriptive.std [| 5.; 5.; 5. |])
let test_min_max () =
  check_float "min" (-3.) (Descriptive.min [| 2.; -3.; 7. |]);
  check_float "max" 7. (Descriptive.max [| 2.; -3.; 7. |])

let test_sse_known () =
  check_float "sse" 2. (Descriptive.sse [| 1.; 2.; 3. |])

let test_geometric_mean () =
  check_float ~eps:1e-12 "geomean" 2. (Descriptive.geometric_mean [| 1.; 2.; 4. |])

let test_empty_mean_raises () =
  Alcotest.check_raises "empty mean"
    (Invalid_argument "Descriptive.mean: empty array") (fun () ->
      ignore (Descriptive.mean [||]))

let test_summarize () =
  let s = Descriptive.summarize [| 1.; 2.; 3. |] in
  Alcotest.(check int) "n" 3 s.Descriptive.n;
  check_float "mean" 2. s.Descriptive.mean;
  check_float "min" 1. s.Descriptive.min;
  check_float "max" 3. s.Descriptive.max

let prop_mean_bounded =
  qtest "mean within min..max"
    QCheck2.Gen.(array_size (int_range 1 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let m = Descriptive.mean xs in
      m >= Descriptive.min xs -. 1e-6 && m <= Descriptive.max xs +. 1e-6)

let prop_variance_nonneg =
  qtest "variance nonnegative"
    QCheck2.Gen.(array_size (int_range 2 50) (float_range (-1e3) 1e3))
    (fun xs -> Descriptive.variance xs >= 0.)

let prop_sum_matches_fold =
  qtest "kahan sum close to fold"
    QCheck2.Gen.(array_size (int_range 0 100) (float_range (-1e3) 1e3))
    (fun xs ->
      let naive = Array.fold_left ( +. ) 0. xs in
      feq ~eps:1e-6 naive (Descriptive.sum xs))

(* ---------- Quantile ---------- *)

let test_median_odd () = check_float "median odd" 2. (Quantile.median [| 3.; 1.; 2. |])
let test_median_even () = check_float "median even" 2.5 (Quantile.median [| 4.; 1.; 3.; 2. |])

let test_quantile_extremes () =
  let xs = [| 5.; 1.; 3. |] in
  check_float "q0" 1. (Quantile.quantile xs 0.);
  check_float "q1" 5. (Quantile.quantile xs 1.)

let test_quantile_interpolation () =
  check_float "q0.25 of 1..5" 2. (Quantile.quantile [| 1.; 2.; 3.; 4.; 5. |] 0.25)

let test_iqr () = check_float "iqr 1..5" 2. (Quantile.iqr [| 1.; 2.; 3.; 4.; 5. |])

let test_quantiles_list () =
  match Quantile.quantiles [| 1.; 2.; 3. |] [ 0.; 0.5; 1. ] with
  | [ a; b; c ] ->
      check_float "q0" 1. a;
      check_float "q.5" 2. b;
      check_float "q1" 3. c
  | _ -> Alcotest.fail "expected 3 quantiles"

let prop_quantile_monotone =
  qtest "quantile monotone in q"
    QCheck2.Gen.(
      pair
        (array_size (int_range 1 30) (float_range (-100.) 100.))
        (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun (xs, (q1, q2)) ->
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Quantile.quantile xs lo <= Quantile.quantile xs hi +. 1e-9)

(* ---------- Histogram ---------- *)

let test_histogram_basic () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  Histogram.add h 0.5;
  Histogram.add h 9.9;
  Histogram.add h 5.;
  Alcotest.(check int) "bin0" 1 (Histogram.count h 0);
  Alcotest.(check int) "bin4" 1 (Histogram.count h 4);
  Alcotest.(check int) "bin2" 1 (Histogram.count h 2);
  Alcotest.(check int) "total" 3 (Histogram.total h)

let test_histogram_clamps () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:4 in
  Histogram.add h (-5.);
  Histogram.add h 5.;
  Alcotest.(check int) "low clamp" 1 (Histogram.count h 0);
  Alcotest.(check int) "high clamp" 1 (Histogram.count h 3)

let test_histogram_ranges () =
  let h = Histogram.create ~lo:0. ~hi:8. ~bins:4 in
  let lo, hi = Histogram.bin_range h 1 in
  check_float "range lo" 2. lo;
  check_float "range hi" 4. hi

let prop_histogram_conserves =
  qtest "histogram total = array length"
    QCheck2.Gen.(array_size (int_range 0 200) (float_range (-2.) 2.))
    (fun xs ->
      let h = Histogram.of_array ~lo:0. ~hi:1. ~bins:7 xs in
      Histogram.total h = Array.length xs)

(* ---------- Correlation ---------- *)

let test_pearson_perfect () =
  check_float "pearson=1" 1.
    (Correlation.pearson [| 1.; 2.; 3. |] [| 10.; 20.; 30. |])

let test_pearson_anti () =
  check_float "pearson=-1" (-1.)
    (Correlation.pearson [| 1.; 2.; 3. |] [| 3.; 2.; 1. |])

let test_pearson_constant () =
  check_float "pearson constant" 0.
    (Correlation.pearson [| 1.; 1.; 1. |] [| 1.; 2.; 3. |])

let test_spearman_monotone () =
  (* any monotone transform has rank correlation 1 *)
  check_float "spearman monotone" 1.
    (Correlation.spearman [| 1.; 2.; 3.; 4. |] [| 1.; 8.; 27.; 1000. |])

let test_spearman_ties () =
  let r = Correlation.spearman [| 1.; 1.; 2. |] [| 2.; 2.; 4. |] in
  check_float "spearman ties" 1. r

let test_r_squared_perfect () =
  check_float "r2 perfect" 1.
    (Correlation.r_squared ~actual:[| 1.; 2.; 3. |] ~predicted:[| 1.; 2.; 3. |])

let test_r_squared_mean_model () =
  check_float "r2 of mean model" 0.
    (Correlation.r_squared ~actual:[| 1.; 3. |] ~predicted:[| 2.; 2. |])

(* ---------- Distributions ---------- *)

let test_geometric_mean_matches () =
  let rng = Rng.create 21 in
  let n = 40_000 and p = 0.3 in
  let acc = ref 0 in
  for _ = 1 to n do
    acc := !acc + Dist.geometric rng ~p
  done;
  let mean = float_of_int !acc /. float_of_int n in
  let expect = (1. -. p) /. p in
  if abs_float (mean -. expect) > 0.1 then
    Alcotest.failf "geometric mean %f, expected %f" mean expect

let test_geometric_p1 () =
  let rng = Rng.create 2 in
  Alcotest.(check int) "p=1 always 0" 0 (Dist.geometric rng ~p:1.)

let test_exponential_mean () =
  let rng = Rng.create 22 in
  let n = 40_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Dist.exponential rng ~rate:2.
  done;
  let mean = !acc /. float_of_int n in
  if abs_float (mean -. 0.5) > 0.02 then
    Alcotest.failf "exponential mean %f" mean

let test_normal_moments () =
  let rng = Rng.create 23 in
  let n = 40_000 in
  let xs = Array.init n (fun _ -> Dist.normal rng ~mean:3. ~std:2.) in
  let m = Descriptive.mean xs and s = Descriptive.std xs in
  if abs_float (m -. 3.) > 0.05 then Alcotest.failf "normal mean %f" m;
  if abs_float (s -. 2.) > 0.05 then Alcotest.failf "normal std %f" s

let test_zipf_bounds () =
  let rng = Rng.create 24 in
  for _ = 1 to 5_000 do
    let v = Dist.zipf rng ~n:100 ~s:1.1 in
    if v < 0 || v >= 100 then Alcotest.failf "zipf out of bounds %d" v
  done

let test_zipf_skew () =
  let rng = Rng.create 25 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let v = Dist.zipf rng ~n:100 ~s:1.2 in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true
    (counts.(0) > counts.(50) && counts.(0) > counts.(10))

let test_zipf_s0_uniformish () =
  let rng = Rng.create 26 in
  let counts = Array.make 4 0 in
  for _ = 1 to 8_000 do
    counts.(Dist.zipf rng ~n:4 ~s:0.) <- counts.(Dist.zipf rng ~n:4 ~s:0.) + 1
  done;
  Array.iter
    (fun c ->
      if c < 1_200 then Alcotest.failf "s=0 zipf not uniform: %d" c)
    counts

let test_categorical () =
  let rng = Rng.create 27 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = Dist.categorical rng [| 1.; 2.; 7. |] in
    counts.(i) <- counts.(i) + 1
  done;
  let f i = float_of_int counts.(i) /. 30_000. in
  if abs_float (f 0 -. 0.1) > 0.02 then Alcotest.failf "cat0 %f" (f 0);
  if abs_float (f 2 -. 0.7) > 0.02 then Alcotest.failf "cat2 %f" (f 2)

let test_alias_matches_weights () =
  let rng = Rng.create 28 in
  let table = Dist.alias_of_weighted [| ("a", 1.); ("b", 3.) |] in
  let b = ref 0 in
  for _ = 1 to 40_000 do
    if Dist.alias_draw rng table = "b" then incr b
  done;
  let f = float_of_int !b /. 40_000. in
  if abs_float (f -. 0.75) > 0.02 then Alcotest.failf "alias b %f" f

(* ---------- Sampling ---------- *)

let prop_permutation_valid =
  qtest "permutation is a bijection"
    QCheck2.Gen.(pair (int_range 1 100) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let p = Sampling.permutation rng n in
      let seen = Array.make n false in
      Array.iter (fun i -> seen.(i) <- true) p;
      Array.for_all Fun.id seen)

let test_choose_distinct () =
  let rng = Rng.create 30 in
  let c = Sampling.choose rng 5 10 in
  Alcotest.(check int) "size" 5 (Array.length c);
  let sorted = Array.copy c in
  Array.sort compare sorted;
  for i = 1 to 4 do
    if sorted.(i) = sorted.(i - 1) then Alcotest.fail "duplicate"
  done

let test_choose_bad_args () =
  let rng = Rng.create 31 in
  Alcotest.check_raises "k > n"
    (Invalid_argument "Sampling.choose: need 0 <= k <= n") (fun () ->
      ignore (Sampling.choose rng 5 3))

(* ---------- Error metrics ---------- *)

let test_error_metrics_known () =
  let m =
    Error_metrics.evaluate ~actual:[| 1.; 2.; 4. |] ~predicted:[| 1.1; 1.8; 4. |]
  in
  check_float ~eps:1e-6 "mean" ((10. +. 10. +. 0.) /. 3.) m.Error_metrics.mean_pct;
  check_float ~eps:1e-6 "max" 10. m.Error_metrics.max_pct

let test_error_metrics_zero_actual () =
  Alcotest.check_raises "zero actual"
    (Invalid_argument "Error_metrics: actual value is zero") (fun () ->
      ignore
        (Error_metrics.absolute_percentage_errors ~actual:[| 0. |]
           ~predicted:[| 1. |]))

let test_error_metrics_perfect () =
  let m = Error_metrics.evaluate ~actual:[| 2.; 3. |] ~predicted:[| 2.; 3. |] in
  check_float "perfect mean" 0. m.Error_metrics.mean_pct;
  check_float "perfect rmse" 0. m.Error_metrics.rmse

(* ---------- Parallel ---------- *)

let test_parallel_matches_sequential () =
  let xs = Array.init 1000 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (array int))
    "parallel = map" (Array.map f xs)
    (Parallel.map ~domains:4 f xs)

let test_parallel_single_domain () =
  let xs = [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "domains=1" [| 2; 4; 6 |]
    (Parallel.map ~domains:1 (fun x -> 2 * x) xs)

let test_parallel_exception () =
  Alcotest.check_raises "propagates" (Failure "boom") (fun () ->
      ignore
        (Parallel.map ~domains:3
           (fun x -> if x = 5 then failwith "boom" else x)
           (Array.init 10 Fun.id)))

let test_parallel_empty () =
  Alcotest.(check (array int)) "empty" [||]
    (Parallel.map ~domains:4 (fun x -> x) [||])

let test_parallel_domain_counts () =
  let xs = Array.init 97 (fun i -> i - 40) in
  let f x = (3 * x * x) - (7 * x) + 1 in
  let expect = Array.map f xs in
  List.iter
    (fun d ->
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d" d)
        expect
        (Parallel.map ~domains:d f xs))
    [ 1; 2; 4; 7; 200 ]

let test_parallel_init_matches () =
  let f i = float_of_int i /. 3. in
  Alcotest.(check (array (float 0.)))
    "init = Array.init" (Array.init 53 f)
    (Parallel.init ~domains:4 53 f)

let test_parallel_exception_lowest_task () =
  (* With 4 strided tasks over indices 0..9, index 3 belongs to task 3 and
     index 5 to task 1; the lowest-numbered failing task wins whatever the
     scheduling, so the surfaced exception is always [Failure "5"]. *)
  for _ = 1 to 20 do
    Alcotest.check_raises "lowest task's exception" (Failure "5") (fun () ->
        ignore
          (Parallel.map ~domains:4
             (fun x ->
               if x = 3 || x = 5 then failwith (string_of_int x) else x)
             (Array.init 10 Fun.id)))
  done

let test_map_reduce_sum () =
  let xs = Array.init 101 (fun i -> i) in
  let expect = Array.fold_left ( + ) 0 xs in
  List.iter
    (fun d ->
      Alcotest.(check int)
        (Printf.sprintf "sum domains=%d" d)
        expect
        (Parallel.map_reduce ~domains:d ~map:Fun.id ~combine:( + ) xs))
    [ 1; 3; 8 ]

let test_map_reduce_chunk_order () =
  (* String concatenation is associative but not commutative: chunk-order
     combination must preserve the input order. *)
  let xs = Array.init 26 (fun i -> String.make 1 (Char.chr (65 + i))) in
  Alcotest.(check string)
    "in order" "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    (Parallel.map_reduce ~domains:5 ~map:Fun.id ~combine:( ^ ) xs)

let test_map_reduce_empty_raises () =
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Parallel.map_reduce: empty array") (fun () ->
      ignore (Parallel.map_reduce ~domains:2 ~map:Fun.id ~combine:( + ) [||]))

let prop_parallel_matches_map =
  qtest "parallel map = Array.map for any domain count"
    QCheck2.Gen.(
      pair (int_range 1 9) (array_size (int_range 0 60) (int_range (-1000) 1000)))
    (fun (d, xs) ->
      Parallel.map ~domains:d (fun x -> (2 * x) - 1) xs
      = Array.map (fun x -> (2 * x) - 1) xs)

let () =
  Alcotest.run "stats"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split deterministic" `Quick test_rng_split_independent;
          Alcotest.test_case "copy replays" `Quick test_rng_copy_replays;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int covers residues" `Quick test_rng_int_covers_all;
          Alcotest.test_case "unit_float range" `Quick test_rng_unit_float_range;
          Alcotest.test_case "unit_float mean" `Quick test_rng_unit_float_mean;
          Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli;
        ] );
      ( "descriptive",
        [
          Alcotest.test_case "mean" `Quick test_mean_known;
          Alcotest.test_case "variance" `Quick test_variance_known;
          Alcotest.test_case "population variance" `Quick test_population_variance_known;
          Alcotest.test_case "std constant" `Quick test_std_constant;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "sse" `Quick test_sse_known;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "empty raises" `Quick test_empty_mean_raises;
          Alcotest.test_case "summarize" `Quick test_summarize;
          prop_mean_bounded;
          prop_variance_nonneg;
          prop_sum_matches_fold;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "median odd" `Quick test_median_odd;
          Alcotest.test_case "median even" `Quick test_median_even;
          Alcotest.test_case "extremes" `Quick test_quantile_extremes;
          Alcotest.test_case "interpolation" `Quick test_quantile_interpolation;
          Alcotest.test_case "iqr" `Quick test_iqr;
          Alcotest.test_case "list" `Quick test_quantiles_list;
          prop_quantile_monotone;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basic" `Quick test_histogram_basic;
          Alcotest.test_case "clamps" `Quick test_histogram_clamps;
          Alcotest.test_case "bin ranges" `Quick test_histogram_ranges;
          prop_histogram_conserves;
        ] );
      ( "correlation",
        [
          Alcotest.test_case "pearson perfect" `Quick test_pearson_perfect;
          Alcotest.test_case "pearson anti" `Quick test_pearson_anti;
          Alcotest.test_case "pearson constant" `Quick test_pearson_constant;
          Alcotest.test_case "spearman monotone" `Quick test_spearman_monotone;
          Alcotest.test_case "spearman ties" `Quick test_spearman_ties;
          Alcotest.test_case "r2 perfect" `Quick test_r_squared_perfect;
          Alcotest.test_case "r2 mean model" `Quick test_r_squared_mean_model;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean_matches;
          Alcotest.test_case "geometric p=1" `Quick test_geometric_p1;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "normal moments" `Quick test_normal_moments;
          Alcotest.test_case "zipf bounds" `Quick test_zipf_bounds;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "zipf s=0 uniform" `Quick test_zipf_s0_uniformish;
          Alcotest.test_case "categorical" `Quick test_categorical;
          Alcotest.test_case "alias table" `Quick test_alias_matches_weights;
        ] );
      ( "sampling",
        [
          prop_permutation_valid;
          Alcotest.test_case "choose distinct" `Quick test_choose_distinct;
          Alcotest.test_case "choose bad args" `Quick test_choose_bad_args;
        ] );
      ( "error_metrics",
        [
          Alcotest.test_case "known values" `Quick test_error_metrics_known;
          Alcotest.test_case "zero actual raises" `Quick test_error_metrics_zero_actual;
          Alcotest.test_case "perfect prediction" `Quick test_error_metrics_perfect;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "matches sequential" `Quick test_parallel_matches_sequential;
          Alcotest.test_case "single domain" `Quick test_parallel_single_domain;
          Alcotest.test_case "exception propagation" `Quick test_parallel_exception;
          Alcotest.test_case "empty array" `Quick test_parallel_empty;
          Alcotest.test_case "any domain count" `Quick test_parallel_domain_counts;
          Alcotest.test_case "init matches" `Quick test_parallel_init_matches;
          Alcotest.test_case "exception from lowest task" `Quick
            test_parallel_exception_lowest_task;
          Alcotest.test_case "map_reduce sum" `Quick test_map_reduce_sum;
          Alcotest.test_case "map_reduce chunk order" `Quick
            test_map_reduce_chunk_order;
          Alcotest.test_case "map_reduce empty raises" `Quick
            test_map_reduce_empty_raises;
          prop_parallel_matches_map;
        ] );
    ]
