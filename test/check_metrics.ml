(* Smoke validator for the --metrics JSON-lines stream: every line must
   parse as a JSON object with a known "type", and the five pipeline
   stages (LHS sampling, simulation, tree growth, center selection,
   tuning) must all have left a trace.  Run by the dune smoke rule in
   this directory against a tiny `archpred train --metrics` run. *)

module Json = Archpred_obs.Json

(* archpred-lint: allow exit -- check harness failure path *)
let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ -> fail "usage: check_metrics METRICS.jsonl"
  in
  let ic = open_in path in
  let spans = ref [] and counters = ref [] and gauges = ref [] in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         incr lines;
         match Json.of_string line with
         | Error m -> fail "line %d is not valid JSON (%s): %s" !lines m line
         | Ok j -> (
             let str k =
               match Json.member k j with
               | Some (Json.String s) -> s
               | _ -> fail "line %d: missing string field %S: %s" !lines k line
             in
             match str "type" with
             | "span" ->
                 (match Json.member "ns" j with
                 | Some (Json.Int ns) when ns >= 0 -> ()
                 | _ -> fail "line %d: span without ns: %s" !lines line);
                 spans := str "path" :: !spans
             | "counter" ->
                 (match Json.member "value" j with
                 | Some (Json.Int _) -> ()
                 | _ -> fail "line %d: counter without int value: %s" !lines line);
                 counters := str "name" :: !counters
             | "gauge" -> gauges := str "name" :: !gauges
             | other -> fail "line %d: unknown event type %S" !lines other)
       end
     done
   with End_of_file -> close_in ic);
  if !lines = 0 then fail "metrics file %s is empty" path;
  let span_seen stage =
    (* worker-domain spans may surface as root paths, so match the stage
       name as a path component rather than an exact path *)
    List.exists
      (fun path -> List.mem stage (String.split_on_char '/' path))
      !spans
  in
  let counter_seen name = List.mem name !counters in
  let stages =
    [
      ("design.best_lhs", span_seen "design.best_lhs");
      ("build.simulate", span_seen "build.simulate" || counter_seen "sim.runs");
      ("tree.build", span_seen "tree.build");
      ("rbf.select", span_seen "rbf.select");
      ("build.tune", span_seen "build.tune");
    ]
  in
  List.iter
    (fun (stage, ok) -> if not ok then fail "stage %s left no events" stage)
    stages;
  Printf.printf "ok: %d events, %d span paths, %d counters, %d gauges\n" !lines
    (List.length !spans) (List.length !counters) (List.length !gauges)
