(* Headless crash-safety smoke check, run under `dune runtest` (like
   check_metrics): a condensed fault-injection crash matrix over the
   training pipeline.  For each injected crash — a permanently failing
   simulation task, a failing journal append, a torn journal tail, an
   interrupted atomic model save — it kills a checkpointed training run,
   resumes it, and asserts the resumed model is byte-identical
   (Persist.to_string) to an uninterrupted run, at 1 and 4 domains. *)

module Core = Archpred_core
module Build = Core.Build
module Config = Core.Config
module Persist = Core.Persist
module Response = Core.Response
module Fault = Archpred_fault.Fault
module Error = Archpred_obs.Error

(* archpred-lint: allow exit -- check harness failure path *)
let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_crashsafe: " ^ m); exit 1) fmt

let tmp suffix =
  let path = Filename.temp_file "check_crashsafe" suffix in
  Sys.remove path;
  path

let rm path = try Sys.remove path with Sys_error _ -> ()

let config ~domains =
  Config.default |> Config.with_seed 11 |> Config.with_sample_size 10
  |> Config.with_lhs_candidates 5
  |> Config.with_p_min_grid [ 1 ]
  |> Config.with_alpha_grid [ 7. ]
  |> Config.with_domains domains

let train ~domains ?checkpoint () =
  let response = Response.synthetic_smooth ~dim:9 in
  let config =
    match checkpoint with
    | None -> config ~domains
    | Some p -> config ~domains |> Config.with_checkpoint p
  in
  Build.train ~config ~space:Core.Paper_space.space ~response ()

let checks = ref 0

let check_identical ctx reference trained =
  incr checks;
  if not (String.equal reference (Persist.to_string trained.Build.predictor))
  then fail "%s: resumed model differs from uninterrupted run" ctx

let crash_resume ~domains ~reference ~site ~k =
  let path = tmp ".journal" in
  Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
  Fault.reset ();
  Fault.arm ~site ~after:k ~sticky:true ();
  let ctx = Printf.sprintf "%s k=%d domains=%d" site k domains in
  (match train ~domains ~checkpoint:path () with
  | trained ->
      Fault.reset ();
      check_identical (ctx ^ " (uninterrupted)") reference trained
  | exception (Error.Archpred (Error.Infeasible _) | Fault.Injected _) ->
      Fault.reset ();
      check_identical (ctx ^ " (resumed)") reference
        (train ~domains ~checkpoint:path ()))

let torn_tail ~domains ~reference =
  let path = tmp ".journal" in
  Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
  ignore (train ~domains ~checkpoint:path ());
  let ic = open_in_bin path in
  let full = In_channel.input_all ic in
  close_in ic;
  (* cut the journal in the middle of its last record *)
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full - 7));
  close_out oc;
  check_identical
    (Printf.sprintf "torn tail domains=%d" domains)
    reference
    (train ~domains ~checkpoint:path ())

let persist_atomic () =
  let trained = train ~domains:1 () in
  let path = tmp ".model" in
  Fun.protect ~finally:(fun () -> rm path; rm (path ^ ".tmp")) @@ fun () ->
  Persist.save trained.Build.predictor path;
  let before = Persist.to_string (Persist.load path) in
  List.iter
    (fun site ->
      Fault.reset ();
      Fault.arm ~site ~after:1 ();
      (match Persist.save trained.Build.predictor path with
      | () -> fail "%s: fault did not fire" site
      | exception Fault.Injected _ -> ());
      Fault.reset ();
      incr checks;
      if Persist.to_string (Persist.load path) <> before then
        fail "%s: interrupted save damaged the existing model" site)
    [ "io.write"; "persist.rename" ]

let () =
  Fun.protect ~finally:Fault.reset @@ fun () ->
  List.iter
    (fun domains ->
      let reference = Persist.to_string (train ~domains ()).Build.predictor in
      List.iter
        (fun (site, ks) -> List.iter (fun k -> crash_resume ~domains ~reference ~site ~k) ks)
        [
          ("sim.task", [ 1; 4; 9; 25 ]);
          ("checkpoint.append", [ 1; 5 ]);
          ("checkpoint.sync", [ 1; 2 ]);
        ];
      torn_tail ~domains ~reference)
    [ 1; 4 ];
  persist_atomic ();
  Printf.printf "ok: crash matrix passed (%d bit-identical checks)\n" !checks
