(* Tests for archpred.linalg: vectors, matrices, LU, Cholesky, QR and
   least squares. *)

module Vector = Archpred_linalg.Vector
module Matrix = Archpred_linalg.Matrix
module Lu = Archpred_linalg.Lu
module Cholesky = Archpred_linalg.Cholesky
module Qr = Archpred_linalg.Qr
module Least_squares = Archpred_linalg.Least_squares
module Rng = Archpred_stats.Rng

let check_float ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let random_matrix rng r c =
  Matrix.init r c (fun _ _ -> Rng.unit_float rng -. 0.5)

(* ---------- Vector ---------- *)

let test_dot () = check_float "dot" 32. (Vector.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |])
let test_norm () = check_float "norm" 5. (Vector.norm2 [| 3.; 4. |])

let test_add_sub () =
  Alcotest.(check (array (float 1e-9)))
    "add" [| 5.; 7. |]
    (Vector.add [| 1.; 2. |] [| 4.; 5. |]);
  Alcotest.(check (array (float 1e-9)))
    "sub" [| -3.; -3. |]
    (Vector.sub [| 1.; 2. |] [| 4.; 5. |])

let test_axpy () =
  let y = [| 1.; 1. |] in
  Vector.axpy 2. [| 3.; 4. |] y;
  Alcotest.(check (array (float 1e-9))) "axpy" [| 7.; 9. |] y

let test_dist2 () = check_float "dist" 5. (Vector.dist2 [| 0.; 0. |] [| 3.; 4. |])

let test_dim_mismatch () =
  Alcotest.check_raises "dot mismatch"
    (Invalid_argument "Vector.dot: dimension mismatch") (fun () ->
      ignore (Vector.dot [| 1. |] [| 1.; 2. |]))

(* ---------- Matrix ---------- *)

let test_identity_mul () =
  let rng = Rng.create 1 in
  let a = random_matrix rng 4 4 in
  Alcotest.(check bool) "I*A = A" true
    (Matrix.equal ~eps:1e-12 a (Matrix.mul (Matrix.identity 4) a))

let test_transpose_involution () =
  let rng = Rng.create 2 in
  let a = random_matrix rng 3 5 in
  Alcotest.(check bool) "(A')' = A" true
    (Matrix.equal a (Matrix.transpose (Matrix.transpose a)))

let test_mul_known () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Matrix.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Matrix.mul a b in
  check_float "c00" 19. (Matrix.get c 0 0);
  check_float "c01" 22. (Matrix.get c 0 1);
  check_float "c10" 43. (Matrix.get c 1 0);
  check_float "c11" 50. (Matrix.get c 1 1)

let test_tmul_matches () =
  let rng = Rng.create 3 in
  let a = random_matrix rng 6 3 in
  let b = random_matrix rng 6 4 in
  Alcotest.(check bool) "tmul = A'B" true
    (Matrix.equal ~eps:1e-12 (Matrix.tmul a b)
       (Matrix.mul (Matrix.transpose a) b))

let test_mul_vec () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check (array (float 1e-9)))
    "Av" [| 5.; 11. |]
    (Matrix.mul_vec a [| 1.; 2. |])

let test_select_cols () =
  let a = Matrix.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let s = Matrix.select_cols a [| 2; 0 |] in
  check_float "s00" 3. (Matrix.get s 0 0);
  check_float "s01" 1. (Matrix.get s 0 1);
  check_float "s10" 6. (Matrix.get s 1 0)

let test_row_col_roundtrip () =
  let rng = Rng.create 4 in
  let a = random_matrix rng 3 4 in
  Alcotest.(check (array (float 1e-12))) "row" (Matrix.row a 1)
    (Array.init 4 (fun j -> Matrix.get a 1 j));
  Alcotest.(check (array (float 1e-12))) "col" (Matrix.col a 2)
    (Array.init 3 (fun i -> Matrix.get a i 2))

(* ---------- LU ---------- *)

let test_lu_solve () =
  let a = Matrix.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Lu.solve (Lu.decompose a) [| 3.; 5. |] in
  check_float ~eps:1e-12 "x0" 0.8 x.(0);
  check_float ~eps:1e-12 "x1" 1.4 x.(1)

let test_lu_det () =
  let a = Matrix.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  check_float ~eps:1e-12 "det" 5. (Lu.det (Lu.decompose a))

let test_lu_det_permutation () =
  (* matrix that needs pivoting *)
  let a = Matrix.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  check_float ~eps:1e-12 "det swap" (-1.) (Lu.det (Lu.decompose a))

let test_lu_singular () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" Lu.Singular (fun () ->
      ignore (Lu.decompose a))

let test_lu_inverse () =
  let rng = Rng.create 5 in
  let a =
    Matrix.add (random_matrix rng 4 4) (Matrix.scale 4. (Matrix.identity 4))
  in
  let inv = Lu.inverse (Lu.decompose a) in
  Alcotest.(check bool) "A * A^-1 = I" true
    (Matrix.equal ~eps:1e-9 (Matrix.identity 4) (Matrix.mul a inv))

let prop_lu_solves =
  qtest "LU solve satisfies Ax=b" QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 6 in
      let a =
        Matrix.add (random_matrix rng n n)
          (Matrix.scale (2. +. float_of_int n) (Matrix.identity n))
      in
      let b = Array.init n (fun _ -> Rng.unit_float rng) in
      let x = Lu.solve (Lu.decompose a) b in
      let b' = Matrix.mul_vec a x in
      Array.for_all2 (fun u v -> abs_float (u -. v) < 1e-8) b b')

(* ---------- Cholesky ---------- *)

let spd_of rng n =
  let a = random_matrix rng n n in
  Matrix.add (Matrix.tmul a a) (Matrix.scale 0.5 (Matrix.identity n))

let test_cholesky_solve () =
  let rng = Rng.create 6 in
  let a = spd_of rng 5 in
  let b = Array.init 5 (fun i -> float_of_int (i + 1)) in
  let x = Cholesky.solve (Cholesky.decompose a) b in
  let b' = Matrix.mul_vec a x in
  Array.iteri (fun i v -> check_float ~eps:1e-8 "solve" b.(i) v) b'

let test_cholesky_factor () =
  let rng = Rng.create 7 in
  let a = spd_of rng 4 in
  let l = Cholesky.factor (Cholesky.decompose a) in
  Alcotest.(check bool) "LL' = A" true
    (Matrix.equal ~eps:1e-9 a (Matrix.mul l (Matrix.transpose l)))

let test_cholesky_not_pd () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  Alcotest.check_raises "not PD" Cholesky.Not_positive_definite (fun () ->
      ignore (Cholesky.decompose a))

let test_cholesky_log_det () =
  let a = Matrix.of_arrays [| [| 4.; 0. |]; [| 0.; 9. |] |] in
  check_float ~eps:1e-12 "log det" (log 36.)
    (Cholesky.log_det (Cholesky.decompose a))

(* ---------- QR / least squares ---------- *)

let test_qr_exact_solve () =
  (* square, consistent system *)
  let a = Matrix.of_arrays [| [| 1.; 1. |]; [| 1.; 2. |]; [| 1.; 3. |] |] in
  (* y = 2 + 3x exactly *)
  let y = [| 5.; 8.; 11. |] in
  let w = Qr.least_squares a y in
  check_float ~eps:1e-10 "intercept" 2. w.(0);
  check_float ~eps:1e-10 "slope" 3. w.(1)

let test_qr_minimizes () =
  let a = Matrix.of_arrays [| [| 1.; 0. |]; [| 1.; 1. |]; [| 1.; 2. |] |] in
  let y = [| 0.; 1.; 1. |] in
  let w = Qr.least_squares a y in
  (* residual must be orthogonal to the column space *)
  let fitted = Matrix.mul_vec a w in
  let r = Vector.sub y fitted in
  check_float ~eps:1e-10 "r . col0" 0. (Vector.dot r (Matrix.col a 0));
  check_float ~eps:1e-10 "r . col1" 0. (Vector.dot r (Matrix.col a 1))

let test_qr_rank_deficient () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |]; [| 3.; 6. |] |] in
  Alcotest.check_raises "rank deficient" Qr.Rank_deficient (fun () ->
      ignore (Qr.least_squares a [| 1.; 2.; 3. |]))

let test_qr_r_triangular () =
  let rng = Rng.create 8 in
  let a = random_matrix rng 6 4 in
  let r = Qr.r (Qr.decompose a) in
  for i = 0 to 3 do
    for j = 0 to i - 1 do
      check_float "below diagonal" 0. (Matrix.get r i j)
    done
  done

let test_ridge_shrinks () =
  let a = Matrix.of_arrays [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  let y = [| 2.; 2. |] in
  let w0 = Qr.least_squares a y in
  let w1 = Qr.least_squares_ridge a y ~lambda:1. in
  Alcotest.(check bool) "ridge shrinks norm" true
    (Vector.norm2 w1 < Vector.norm2 w0)

let test_ridge_handles_rank_deficiency () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |]; [| 3.; 6. |] |] in
  let w = Qr.least_squares_ridge a [| 1.; 2.; 3. |] ~lambda:1e-6 in
  Alcotest.(check int) "finite solution" 2 (Array.length w);
  Array.iter
    (fun v -> if Float.is_nan v then Alcotest.fail "NaN coefficient")
    w

let prop_qr_residual_orthogonal =
  qtest "QR residual orthogonal to columns"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let p = 4 + Rng.int rng 8 in
      let m = 1 + Rng.int rng 3 in
      let a = random_matrix rng p m in
      let y = Array.init p (fun _ -> Rng.unit_float rng) in
      match Qr.least_squares a y with
      | w ->
          let r = Vector.sub y (Matrix.mul_vec a w) in
          let ok = ref true in
          for j = 0 to m - 1 do
            if abs_float (Vector.dot r (Matrix.col a j)) > 1e-6 then ok := false
          done;
          !ok
      | exception Qr.Rank_deficient -> true)

(* ---------- Least_squares wrapper ---------- *)

let test_ls_diagnostics () =
  let a = Matrix.of_arrays [| [| 1.; 0. |]; [| 1.; 1. |]; [| 1.; 2. |] |] in
  let y = [| 1.; 2.; 3. |] in
  let f = Least_squares.fit a y in
  check_float ~eps:1e-10 "rss" 0. f.Least_squares.rss;
  check_float ~eps:1e-10 "sigma2" 0. f.Least_squares.sigma2;
  Alcotest.(check bool) "not regularized" false f.Least_squares.regularized

let test_ls_fallback () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |]; [| 3.; 6. |] |] in
  let f = Least_squares.fit a [| 1.; 2.; 3. |] in
  Alcotest.(check bool) "regularized flagged" true f.Least_squares.regularized

(* ---------- Incremental least squares ---------- *)

module Ils = Archpred_linalg.Incremental_ls

let ils_fixture () =
  let rng = Rng.create 91 in
  let design = random_matrix rng 30 8 in
  let responses = Array.init 30 (fun _ -> Rng.unit_float rng -. 0.5) in
  (design, responses, Ils.create ~design ~responses ())

let test_ils_matches_full_solve () =
  let design, responses, ils = ils_fixture () in
  let fac = Ils.factor ils in
  let rng = Rng.create 92 in
  for _ = 1 to 25 do
    let m = 1 + Rng.int rng 6 in
    let cols = Array.to_list (Archpred_stats.Sampling.choose rng m 8) in
    Alcotest.(check bool) "set succeeds" true (Ils.set fac cols);
    let full =
      Least_squares.fit
        (Matrix.select_cols design (Array.of_list cols))
        responses
    in
    let w = Ils.solve fac in
    Array.iteri
      (fun k wk ->
        check_float ~eps:1e-9 "coefficient" full.Least_squares.coefficients.(k)
          wk)
      w;
    check_float ~eps:1e-9 "rss" full.Least_squares.rss (Ils.rss fac);
    match Ils.sigma2 fac with
    | None -> Alcotest.fail "sigma2 defined for 0 < m < p"
    | Some s2 -> check_float ~eps:1e-9 "sigma2" full.Least_squares.sigma2 s2
  done

let test_ils_push_pop_exact () =
  (* pop truncates the factor exactly, so push / pop / re-push reproduces
     bit-identical state. *)
  let _, _, ils = ils_fixture () in
  let fac = Ils.factor ils in
  assert (Ils.set fac [ 0; 3; 5 ]);
  let rss_base = Ils.rss fac in
  assert (Ils.push fac 6);
  let rss_with = Ils.rss fac in
  Ils.pop fac;
  if Ils.rss fac <> rss_base then Alcotest.fail "pop not exact";
  assert (Ils.push fac 6);
  if Ils.rss fac <> rss_with then Alcotest.fail "re-push not exact";
  Alcotest.(check (array int)) "ids" [| 0; 3; 5; 6 |] (Ils.ids fac)

let test_ils_dependent_column_rejected () =
  (* A duplicated column is linearly dependent: the second push must fail
     and leave the factor unchanged. *)
  let design = Matrix.init 10 2 (fun i _ -> float_of_int (i + 1)) in
  let responses = Array.init 10 float_of_int in
  let ils = Ils.create ~design ~responses () in
  let fac = Ils.factor ils in
  Alcotest.(check bool) "first push ok" true (Ils.push fac 0);
  Alcotest.(check bool) "dependent push rejected" false (Ils.push fac 1);
  Alcotest.(check int) "factor unchanged" 1 (Ils.size fac)

let test_ils_empty_and_accounting () =
  let _, _, ils = ils_fixture () in
  let fac = Ils.factor ils in
  Alcotest.(check (option (float 0.))) "empty sigma2" None (Ils.sigma2 fac);
  check_float ~eps:1e-12 "empty rss = y'y" (Ils.yty ils) (Ils.rss fac);
  assert (Ils.set fac [ 1; 4 ]);
  check_float ~eps:1e-9 "rss + explained = y'y" (Ils.yty ils)
    (Ils.rss fac +. Ils.explained fac)

let () =
  Alcotest.run "linalg"
    [
      ( "vector",
        [
          Alcotest.test_case "dot" `Quick test_dot;
          Alcotest.test_case "norm" `Quick test_norm;
          Alcotest.test_case "add/sub" `Quick test_add_sub;
          Alcotest.test_case "axpy" `Quick test_axpy;
          Alcotest.test_case "dist" `Quick test_dist2;
          Alcotest.test_case "dimension mismatch" `Quick test_dim_mismatch;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "identity mul" `Quick test_identity_mul;
          Alcotest.test_case "transpose involution" `Quick test_transpose_involution;
          Alcotest.test_case "mul known" `Quick test_mul_known;
          Alcotest.test_case "tmul" `Quick test_tmul_matches;
          Alcotest.test_case "mul_vec" `Quick test_mul_vec;
          Alcotest.test_case "select_cols" `Quick test_select_cols;
          Alcotest.test_case "row/col" `Quick test_row_col_roundtrip;
        ] );
      ( "lu",
        [
          Alcotest.test_case "solve" `Quick test_lu_solve;
          Alcotest.test_case "det" `Quick test_lu_det;
          Alcotest.test_case "det with pivot" `Quick test_lu_det_permutation;
          Alcotest.test_case "singular raises" `Quick test_lu_singular;
          Alcotest.test_case "inverse" `Quick test_lu_inverse;
          prop_lu_solves;
        ] );
      ( "cholesky",
        [
          Alcotest.test_case "solve" `Quick test_cholesky_solve;
          Alcotest.test_case "factor" `Quick test_cholesky_factor;
          Alcotest.test_case "not PD raises" `Quick test_cholesky_not_pd;
          Alcotest.test_case "log det" `Quick test_cholesky_log_det;
        ] );
      ( "incremental_ls",
        [
          Alcotest.test_case "matches full solve" `Quick
            test_ils_matches_full_solve;
          Alcotest.test_case "push/pop exact" `Quick test_ils_push_pop_exact;
          Alcotest.test_case "dependent column rejected" `Quick
            test_ils_dependent_column_rejected;
          Alcotest.test_case "empty set accounting" `Quick
            test_ils_empty_and_accounting;
        ] );
      ( "qr",
        [
          Alcotest.test_case "exact solve" `Quick test_qr_exact_solve;
          Alcotest.test_case "minimizes" `Quick test_qr_minimizes;
          Alcotest.test_case "rank deficient raises" `Quick test_qr_rank_deficient;
          Alcotest.test_case "R triangular" `Quick test_qr_r_triangular;
          Alcotest.test_case "ridge shrinks" `Quick test_ridge_shrinks;
          Alcotest.test_case "ridge rank-deficient" `Quick test_ridge_handles_rank_deficiency;
          prop_qr_residual_orthogonal;
        ] );
      ( "least_squares",
        [
          Alcotest.test_case "diagnostics" `Quick test_ls_diagnostics;
          Alcotest.test_case "ridge fallback" `Quick test_ls_fallback;
        ] );
    ]
