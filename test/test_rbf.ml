(* Tests for archpred.rbf: Gaussian bases, network evaluation and fitting,
   selection criteria, tree-derived candidate centers, the fast subset
   scorer (cross-checked against exact QR fits) and Orr's tree-ordered
   center selection. *)

module Rbf = Archpred_rbf
module Network = Rbf.Network
module Criteria = Rbf.Criteria
module Tree_centers = Rbf.Tree_centers
module Selection = Rbf.Selection
module Subset_scorer = Rbf.Subset_scorer
module Tree = Archpred_regtree.Tree
module Matrix = Archpred_linalg.Matrix
module Least_squares = Archpred_linalg.Least_squares
module Rng = Archpred_stats.Rng

let check_float ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------- basis ---------- *)

let unit_center = { Network.c = [| 0.5; 0.5 |]; r = [| 0.2; 0.4 |] }

let test_basis_peak () =
  check_float "peak at center" 1. (Network.basis unit_center [| 0.5; 0.5 |])

let test_basis_value () =
  (* h = exp(-((0.1/0.2)^2 + (0.2/0.4)^2)) = exp(-0.5) *)
  check_float ~eps:1e-12 "known value" (exp (-0.5))
    (Network.basis unit_center [| 0.6; 0.7 |])

let test_basis_symmetric () =
  check_float ~eps:1e-12 "symmetry"
    (Network.basis unit_center [| 0.6; 0.5 |])
    (Network.basis unit_center [| 0.4; 0.5 |])

let test_basis_decay () =
  let near = Network.basis unit_center [| 0.55; 0.5 |] in
  let far = Network.basis unit_center [| 0.9; 0.5 |] in
  Alcotest.(check bool) "monotone decay" true (near > far)

let test_check_center () =
  Alcotest.check_raises "zero radius"
    (Invalid_argument "Network: non-positive radius") (fun () ->
      Network.check_center { Network.c = [| 0. |]; r = [| 0. |] })

(* ---------- network eval / fit ---------- *)

let test_eval_weighted_sum () =
  let c1 = { Network.c = [| 0. |]; r = [| 1. |] } in
  let c2 = { Network.c = [| 1. |]; r = [| 1. |] } in
  let net = { Network.centers = [| c1; c2 |]; weights = [| 2.; 3. |] } in
  let x = [| 0.5 |] in
  check_float ~eps:1e-12 "weighted sum"
    ((2. *. Network.basis c1 x) +. (3. *. Network.basis c2 x))
    (Network.eval net x)

let test_design_matrix () =
  let centers = [| unit_center |] in
  let points = [| [| 0.5; 0.5 |]; [| 0.6; 0.7 |] |] in
  let h = Network.design_matrix centers points in
  check_float "h00" 1. (Matrix.get h 0 0);
  check_float ~eps:1e-12 "h10" (exp (-0.5)) (Matrix.get h 1 0)

let test_fit_interpolates () =
  (* as many narrow centers as points: the fit interpolates exactly *)
  let points = [| [| 0.1 |]; [| 0.5 |]; [| 0.9 |] |] in
  let responses = [| 1.; 4.; 2. |] in
  let centers =
    Array.map (fun p -> { Network.c = Array.copy p; r = [| 0.05 |] }) points
  in
  let net, diag = Network.fit ~centers ~points ~responses () in
  Alcotest.(check bool) "tiny rss" true (diag.Network.rss < 1e-6);
  Array.iteri
    (fun i p ->
      check_float ~eps:1e-3 "interpolation" responses.(i) (Network.eval net p))
    points

let test_fit_rejects_more_centers_than_points () =
  let points = [| [| 0.5 |] |] in
  let centers =
    [|
      { Network.c = [| 0.3 |]; r = [| 0.1 |] };
      { Network.c = [| 0.7 |]; r = [| 0.1 |] };
    |]
  in
  Alcotest.check_raises "overdetermined"
    (Invalid_argument "Network.fit: more centers than points") (fun () ->
      ignore (Network.fit ~centers ~points ~responses:[| 1. |] ()))

let test_fit_coincident_centers_regularized () =
  let points = [| [| 0.1 |]; [| 0.5 |]; [| 0.9 |] |] in
  let c = { Network.c = [| 0.5 |]; r = [| 0.3 |] } in
  let _, diag =
    Network.fit ~ridge:0. ~centers:[| c; c |] ~points
      ~responses:[| 1.; 2.; 3. |] ()
  in
  Alcotest.(check bool) "regularized" true diag.Network.regularized

(* ---------- criteria ---------- *)

let test_aicc_formula () =
  (* p=100, m=10, sigma2=0.25 *)
  let expected =
    (100. *. log 0.25) +. 20. +. (2. *. 10. *. 11. /. (100. -. 10. -. 1.))
  in
  check_float ~eps:1e-9 "aicc" expected
    (Criteria.score Criteria.Aicc ~p:100 ~m:10 ~sigma2:0.25)

let test_aicc_degenerate () =
  Alcotest.(check bool) "m >= p-1 infinite" true
    (Criteria.score Criteria.Aicc ~p:10 ~m:9 ~sigma2:0.5 = infinity);
  Alcotest.(check bool) "sigma2=0 infinite" true
    (Criteria.score Criteria.Aicc ~p:100 ~m:5 ~sigma2:0. = infinity)

let test_bic_penalizes_more () =
  (* for p >= 8, log p > 2 so BIC penalises extra terms harder than AIC *)
  let a m = Criteria.score Criteria.Aic ~p:100 ~m ~sigma2:0.5 in
  let b m = Criteria.score Criteria.Bic ~p:100 ~m ~sigma2:0.5 in
  Alcotest.(check bool) "bic stiffer" true (b 20 -. b 10 > a 20 -. a 10)

let test_criteria_string_roundtrip () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "roundtrip" true
        (Criteria.of_string (Criteria.to_string c) = Some c))
    [ Criteria.Aicc; Criteria.Aic; Criteria.Bic; Criteria.Gcv ]

(* ---------- tree centers ---------- *)

let small_tree () =
  let rng = Rng.create 3 in
  let points =
    Array.init 40 (fun _ -> [| Rng.unit_float rng; Rng.unit_float rng |])
  in
  let responses = Array.map (fun p -> exp p.(0) +. p.(1)) points in
  (Tree.build ~p_min:3 ~dim:2 ~points ~responses (), points, responses)

let test_tree_centers_radii () =
  let tree, _, _ = small_tree () in
  let candidates = Tree_centers.of_tree ~alpha:5. tree in
  Alcotest.(check int) "one per node" (Tree.node_count tree)
    (Array.length candidates);
  (* root candidate: center 0.5^2, radius 5 * 1 *)
  let root = candidates.(0) in
  check_float "root center" 0.5 root.Tree_centers.center.Network.c.(0);
  check_float "root radius" 5. root.Tree_centers.center.Network.r.(0)

let test_tree_centers_alpha_checked () =
  let tree, _, _ = small_tree () in
  Alcotest.check_raises "alpha <= 0"
    (Invalid_argument "Tree_centers.of_tree: alpha <= 0") (fun () ->
      ignore (Tree_centers.of_tree ~alpha:0. tree))

(* ---------- subset scorer vs exact fits ---------- *)

let prop_scorer_matches_qr =
  qtest ~count:30 "gram scorer sigma2 = QR sigma2"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let p = 15 + Rng.int rng 20 in
      let points =
        Array.init p (fun _ -> [| Rng.unit_float rng; Rng.unit_float rng |])
      in
      let responses = Array.init p (fun _ -> Rng.unit_float rng) in
      let centers =
        Array.init 6 (fun _ ->
            {
              Network.c = [| Rng.unit_float rng; Rng.unit_float rng |];
              r = [| 0.3 +. Rng.unit_float rng; 0.3 +. Rng.unit_float rng |];
            })
      in
      let design = Network.design_matrix centers points in
      let scorer = Subset_scorer.create ~design ~responses in
      let subset = [ 0; 2; 4 ] in
      match Subset_scorer.sigma2 scorer subset with
      | None -> false
      | Some s2 ->
          let h = Matrix.select_cols design (Array.of_list subset) in
          let f = Least_squares.fit h responses in
          abs_float (s2 -. f.Least_squares.sigma2) < 1e-6)

let test_scorer_empty_subset () =
  let tree, points, responses = small_tree () in
  let candidates = Tree_centers.of_tree ~alpha:5. tree in
  let centers = Array.map (fun c -> c.Tree_centers.center) candidates in
  let design = Network.design_matrix centers points in
  let scorer = Subset_scorer.create ~design ~responses in
  Alcotest.(check bool) "empty is None" true
    (Subset_scorer.sigma2 scorer [] = None);
  Alcotest.(check bool) "empty scores infinity" true
    (Subset_scorer.score scorer ~criterion:Criteria.Aicc [] = infinity)

(* ---------- selection ---------- *)

let test_selection_produces_model () =
  let tree, points, responses = small_tree () in
  let candidates = Tree_centers.of_tree ~alpha:5. tree in
  let result = Selection.select ~tree ~candidates ~points ~responses () in
  Alcotest.(check bool) "nonempty" true
    (result.Selection.selected_node_ids <> []);
  Alcotest.(check bool) "criterion finite" true
    (Float.is_finite result.Selection.criterion);
  Alcotest.(check bool) "fewer centers than points" true
    (List.length result.Selection.selected_node_ids < Array.length points)

let test_selection_fits_training_data () =
  let tree, points, responses = small_tree () in
  let candidates = Tree_centers.of_tree ~alpha:5. tree in
  let result = Selection.select ~tree ~candidates ~points ~responses () in
  let predicted =
    Array.map (Network.eval result.Selection.network) points
  in
  let r2 =
    Archpred_stats.Correlation.r_squared ~actual:responses ~predicted
  in
  Alcotest.(check bool) "training R2 > 0.9" true (r2 > 0.9)

let test_selection_ids_are_tree_nodes () =
  let tree, points, responses = small_tree () in
  let candidates = Tree_centers.of_tree ~alpha:5. tree in
  let result = Selection.select ~tree ~candidates ~points ~responses () in
  List.iter
    (fun id ->
      if id < 0 || id >= Tree.node_count tree then
        Alcotest.failf "bad node id %d" id)
    result.Selection.selected_node_ids

let test_selection_beats_root_only () =
  let tree, points, responses = small_tree () in
  let candidates = Tree_centers.of_tree ~alpha:5. tree in
  let result = Selection.select ~tree ~candidates ~points ~responses () in
  let centers = Array.map (fun c -> c.Tree_centers.center) candidates in
  let design = Network.design_matrix centers points in
  let root_score =
    Selection.evaluate_subset ~criterion:Criteria.Aicc ~design ~responses [ 0 ]
  in
  Alcotest.(check bool) "selection <= root-only" true
    (result.Selection.criterion <= root_score +. 1e-9)


let test_forward_selection () =
  let tree, points, responses = small_tree () in
  let candidates = Tree_centers.of_tree ~alpha:5. tree in
  let result = Selection.select_forward ~candidates ~points ~responses () in
  Alcotest.(check bool) "nonempty" true
    (result.Selection.selected_node_ids <> []);
  Alcotest.(check bool) "criterion finite" true
    (Float.is_finite result.Selection.criterion);
  let predicted = Array.map (Network.eval result.Selection.network) points in
  let r2 = Archpred_stats.Correlation.r_squared ~actual:responses ~predicted in
  Alcotest.(check bool) "fits training data" true (r2 > 0.9)

(* ---------- batched evaluation: bit-identity with the scalar oracle ---------- *)

let random_network rng ~dim ~m =
  let centers =
    Array.init m (fun _ ->
        {
          Network.c = Array.init dim (fun _ -> Rng.unit_float rng);
          r = Array.init dim (fun _ -> 0.05 +. Rng.unit_float rng);
        })
  in
  let weights = Array.init m (fun _ -> (Rng.unit_float rng *. 4.) -. 2.) in
  { Network.centers; weights }

let batch_sizes = [ 1; 7; 64; 256 ]

(* Bit-level equality: the batch kernel must replay the scalar path's
   exact IEEE operation sequence, so even the sign of zero and NaN
   payloads have to agree. *)
let check_bits msg expected actual =
  if
    not
      (Int64.equal (Int64.bits_of_float expected) (Int64.bits_of_float actual))
  then Alcotest.failf "%s: scalar %h <> batch %h" msg expected actual

let prop_batch_matches_scalar =
  qtest ~count:25 "eval_batch bit-identical to eval (all batch sizes)"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let dim = 1 + Rng.int rng 11 in
      let m = 1 + Rng.int rng 30 in
      let net = random_network rng ~dim ~m in
      let packed = Network.pack net in
      List.iter
        (fun n ->
          let points =
            Array.init n (fun _ ->
                Array.init dim (fun _ -> (Rng.unit_float rng *. 1.4) -. 0.2))
          in
          let auto = Network.eval_batch packed points in
          let forced = Network.eval_batch ~force_scalar:true packed points in
          Array.iteri
            (fun i p ->
              let s = Network.eval net p in
              check_bits (Printf.sprintf "n=%d simd i=%d" n i) s auto.(i);
              check_bits (Printf.sprintf "n=%d scalar-C i=%d" n i) s forced.(i))
            points)
        batch_sizes;
      true)

let test_batch_extreme_inputs () =
  (* far-off-grid queries drive the exponent into the underflow guard *)
  let rng = Rng.create 99 in
  let net = random_network rng ~dim:4 ~m:8 in
  let packed = Network.pack net in
  let points =
    [|
      [| 1e3; -1e3; 5e2; 0. |];
      [| 0.; 0.; 0.; 0. |];
      [| 1.; 1.; 1.; 1. |];
      [| -50.; 60.; -70.; 80. |];
    |]
  in
  let batch = Network.eval_batch packed points in
  Array.iteri
    (fun i p -> check_bits "extreme" (Network.eval net p) batch.(i))
    points

let test_pack_rejects_empty () =
  Alcotest.check_raises "empty network"
    (Invalid_argument "Network.pack: no centers") (fun () ->
      ignore (Network.pack { Network.centers = [||]; weights = [||] }))

let test_batch_kernel_validates () =
  let rng = Rng.create 7 in
  let net = random_network rng ~dim:3 ~m:4 in
  let packed = Network.pack net in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Batch_kernel.set_query: point arity mismatch") (fun () ->
      ignore (Network.eval_batch packed [| [| 0.5; 0.5 |] |]))

let test_simd_level_reported () =
  match Rbf.Batch_kernel.simd_level () with
  | "avx512" | "avx2" | "scalar" -> ()
  | other -> Alcotest.failf "unexpected simd level %S" other

let test_forward_respects_cap () =
  let tree, points, responses = small_tree () in
  let candidates = Tree_centers.of_tree ~alpha:5. tree in
  let result =
    Selection.select_forward ~max_centers:3 ~candidates ~points ~responses ()
  in
  Alcotest.(check bool) "at most 3" true
    (List.length result.Selection.selected_node_ids <= 3)

let () =
  Alcotest.run "rbf"
    [
      ( "basis",
        [
          Alcotest.test_case "peak" `Quick test_basis_peak;
          Alcotest.test_case "known value" `Quick test_basis_value;
          Alcotest.test_case "symmetric" `Quick test_basis_symmetric;
          Alcotest.test_case "decay" `Quick test_basis_decay;
          Alcotest.test_case "check_center" `Quick test_check_center;
        ] );
      ( "network",
        [
          Alcotest.test_case "weighted sum" `Quick test_eval_weighted_sum;
          Alcotest.test_case "design matrix" `Quick test_design_matrix;
          Alcotest.test_case "interpolates" `Quick test_fit_interpolates;
          Alcotest.test_case "rejects m > p" `Quick test_fit_rejects_more_centers_than_points;
          Alcotest.test_case "coincident centers" `Quick test_fit_coincident_centers_regularized;
        ] );
      ( "criteria",
        [
          Alcotest.test_case "aicc formula" `Quick test_aicc_formula;
          Alcotest.test_case "aicc degenerate" `Quick test_aicc_degenerate;
          Alcotest.test_case "bic stiffer" `Quick test_bic_penalizes_more;
          Alcotest.test_case "string roundtrip" `Quick test_criteria_string_roundtrip;
        ] );
      ( "tree_centers",
        [
          Alcotest.test_case "radii" `Quick test_tree_centers_radii;
          Alcotest.test_case "alpha checked" `Quick test_tree_centers_alpha_checked;
        ] );
      ( "subset_scorer",
        [
          prop_scorer_matches_qr;
          Alcotest.test_case "empty subset" `Quick test_scorer_empty_subset;
        ] );
      ( "selection",
        [
          Alcotest.test_case "produces model" `Quick test_selection_produces_model;
          Alcotest.test_case "fits training data" `Quick test_selection_fits_training_data;
          Alcotest.test_case "ids are tree nodes" `Quick test_selection_ids_are_tree_nodes;
          Alcotest.test_case "beats root-only" `Quick test_selection_beats_root_only;
          Alcotest.test_case "forward selection" `Quick test_forward_selection;
          Alcotest.test_case "forward cap" `Quick test_forward_respects_cap;
        ] );
      ( "batch",
        [
          prop_batch_matches_scalar;
          Alcotest.test_case "extreme inputs" `Quick test_batch_extreme_inputs;
          Alcotest.test_case "pack rejects empty" `Quick test_pack_rejects_empty;
          Alcotest.test_case "kernel validates" `Quick test_batch_kernel_validates;
          Alcotest.test_case "simd level" `Quick test_simd_level_reported;
        ] );
    ]
