(* Smoke validator for the batched-simulation record: a tiny-budget
   Sim_bench.run must produce an archpred-parallel-v1 JSON report whose
   sim section parses, carries every per-config rate and speedup field
   in range, and attests bit-identity between the batched engine and the
   sequential reference.  It also round-trips section sharing: a
   pre-existing micro-benchmark "results" section must survive the sim
   writer.  Run by the dune smoke rule in this directory; `bench --sim`
   uses the same writer for the committed BENCH_parallel.json. *)

module Json = Archpred_obs.Json
module Core = Archpred_core

(* archpred-lint: allow exit -- check harness failure path *)
let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let expect_int name j =
  match Json.member name j with
  | Some (Json.Int v) -> v
  | _ -> fail "missing int field %S" name

let expect_float name j =
  match Json.member name j with
  | Some (Json.Float v) -> v
  | Some (Json.Int v) -> float_of_int v
  | _ -> fail "missing numeric field %S" name

let () =
  let path = "smoke_sim.json" in
  (* Seed the report with a foreign section: the sim writer must merge,
     not clobber. *)
  Core.Bench_report.write ~path ~schema:"archpred-parallel-v1"
    [ ("results", Json.List [ Json.Obj [ ("name", Json.String "seeded") ] ]) ];
  let result = Core.Sim_bench.run ~trace_length:400 ~n_configs:5 ~batches:[ 1; 5 ] () in
  Core.Sim_bench.record ~path result;
  let ic = open_in path in
  let text = In_channel.input_all ic in
  close_in ic;
  let j =
    match Json.of_string text with
    | Ok j -> j
    | Error m -> fail "%s is not valid JSON: %s" path m
  in
  (match Json.member "schema" j with
  | Some (Json.String "archpred-parallel-v1") -> ()
  | _ -> fail "missing or wrong schema tag (want archpred-parallel-v1)");
  (match Json.member "schema_version" j with
  | Some (Json.Int v) when v >= 1 -> ()
  | _ -> fail "missing envelope field \"schema_version\"");
  (match Json.member "domains" j with
  | Some (Json.Int d) when d >= 1 -> ()
  | _ -> fail "missing metadata field \"domains\"");
  (match Json.member "git_describe" j with
  | Some (Json.String _) -> ()
  | _ -> fail "missing metadata field \"git_describe\"");
  (match Json.member "simd" j with
  | Some (Json.String ("avx512" | "avx2" | "scalar")) -> ()
  | _ -> fail "metadata field \"simd\" must be avx512, avx2 or scalar");
  (match Json.member "results" j with
  | Some (Json.List [ _ ]) -> ()
  | _ -> fail "pre-existing \"results\" section was not preserved");
  let sim =
    match Json.member "sim" j with
    | Some s -> s
    | None -> fail "missing \"sim\" section"
  in
  if expect_int "trace_length" sim <> 400 then fail "wrong trace_length";
  if expect_int "n_configs" sim <> 5 then fail "wrong n_configs";
  let rates =
    match Json.member "rates" sim with
    | Some (Json.List l) -> l
    | _ -> fail "missing \"rates\" list"
  in
  if List.length rates <> 5 then
    fail "expected 5 rate rows, got %d" (List.length rates);
  List.iter
    (fun r ->
      (match Json.member "name" r with
      | Some (Json.String _) -> ()
      | _ -> fail "rate row missing \"name\"");
      (match Json.member "policy" r with
      | Some (Json.String ("lru" | "tree-plru" | "qlru" | "mru")) -> ()
      | _ -> fail "rate row carries an unknown policy");
      if not (expect_float "cpi" r > 0.) then fail "cpi must be positive";
      if not (expect_float "inst_per_sec" r > 0.) then
        fail "inst_per_sec must be positive")
    rates;
  let speedups =
    match Json.member "speedups" sim with
    | Some (Json.List l) -> l
    | _ -> fail "missing \"speedups\" list"
  in
  if List.length speedups <> 2 then
    fail "expected 2 speedup rows, got %d" (List.length speedups);
  List.iter
    (fun s ->
      if expect_int "batch" s < 1 then fail "batch must be >= 1";
      List.iter
        (fun f ->
          if not (expect_float f s > 0.) then
            fail "field %S must be positive" f)
        [ "sequential_s"; "batched_s"; "speedup" ])
    speedups;
  (match Json.member "bit_identical" sim with
  | Some (Json.Bool true) -> ()
  | Some (Json.Bool false) ->
      fail "batched engine diverged from the sequential reference"
  | _ -> fail "missing \"bit_identical\"");
  Printf.printf "ok: archpred-parallel-v1 sim section valid (5 configs, 2 batch sizes)\n"
