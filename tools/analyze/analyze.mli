(** [archpred-analyze]: typed interprocedural analysis over [.cmt]
    artifacts.

    Where [archpred-lint] (tools/lint) checks each source file's
    {i syntax} in isolation, this engine loads the {b Typedtree} the
    compiler already produced under [_build], rebuilds a module-aware
    call graph with resolved paths, and runs three passes that need
    cross-file knowledge:

    - {b domain-race} — top-level mutable state (refs, [Hashtbl],
      [Buffer], [Atomic], bigarrays, mutable record fields) that is
      transitively reachable {i and mutated} from a closure handed to
      [Stats.Parallel.{map,init,map_reduce,map_fallible}] (the
      serve_net daemon's sliced dispatch goes through the same entry
      points).  Per-domain observability counters and other
      deliberately concurrent state are declared in a sanctions
      registry ([tools/analyze/sanctions.sexp]) rather than silenced
      inline.
    - {b hot-alloc} — functions named in a declarative manifest
      ([tools/analyze/hotpaths.sexp]) are checked for allocation sites:
      closure creation, tuple/record/constructor/array literals,
      partial application, [ref] cells the compiler cannot unbox, and
      [@@]/[|>] indirection.
    - {b impure} — syntactic effect facts (RNG, wall clock, stdout,
      [Unix] networking) are propagated through the call graph, so a
      result-path function that reaches an effect {i through a helper in
      another file} is flagged even though its own text is clean.

    Findings can be suppressed per site with the same pragma grammar as
    the linter, under this tool's own key:

    {v (* archpred-analyze: allow <rule> -- reason *) v}

    placed on the finding's line or the line above.  Unknown rules and
    missing reasons are reported ([bad-pragma]); a pragma that
    suppresses nothing is itself a finding ([unused-pragma]). *)

type finding = {
  rule : string;
  file : string;  (** repo-relative source path from the .cmt *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
}

(** Same top-level directory classification as [Lint_engine.Lint]:
    decides which purity effects are banned where. *)
type scope = Lib | Bin | Bench | Test | Tools

val scope_of_rel : string -> scope option

val rules : (string * string) list
(** [(id, one-line description)] for the three passes plus the pragma
    meta-rules, in stable order. *)

(** {1 Registries} *)

type sanction_kind =
  | Race_barrier
      (** A function whose internal shared-state effects are an audited
          concurrency protocol (mutex-guarded registry, per-domain DLS
          buffers, atomic counters): the race pass does not look inside
          it and discards its mutation facts. *)
  | Race_global
      (** A named top-level mutable value that is sanctioned for
          concurrent mutation (e.g. process-wide [Atomic] totals). *)
  | Purity_barrier
      (** A function whose transitive effects are contained (timestamps
          that annotate a metrics stream, a daemon's socket loop): the
          purity pass stops effect propagation at it. *)

type sanction = { s_kind : sanction_kind; s_name : string; s_reason : string }

val parse_sanctions : path:string -> string -> sanction list
(** Parse registry source text ([(race-barrier Name "reason")] forms;
    [;] comments).  @raise Archpred_obs.Error.Archpred [Parse_error] on
    malformed input — unknown kind, missing name, empty reason. *)

val parse_hotpaths : path:string -> string -> string list
(** Parse the hot-path manifest ([(hot-path Name)] forms) into
    fully-qualified canonical function names. *)

val load_sanctions : path:string -> sanction list
val load_hotpaths : path:string -> string list

(** {1 Running} *)

val discover_cmts : root:string -> string list
(** All [.cmt] files for [lib/] and [bin/] units, probing both
    [root/_build/default] and [root] itself (so the tool works from the
    repo root and from inside the build context).  Deterministic
    order. *)

val analyze :
  ?sanctions:sanction list ->
  ?hotpaths:string list ->
  ?scope_of:(string -> scope option) ->
  root:string ->
  cmt_paths:string list ->
  unit ->
  finding list
(** Load every [.cmt], build the call graph, run the three passes and
    the pragma filter.  [root] anchors source-file resolution (pragma
    reading, stale-artifact detection: a cmt whose recorded source no
    longer exists under [root] is skipped).  [sanctions]/[hotpaths]
    default to loading the registry files under
    [root/tools/analyze/]; [scope_of] defaults to {!scope_of_rel}
    (tests override it to re-scope fixture modules).  Findings are
    sorted by (file, line, col, rule).

    @raise Archpred_obs.Error.Archpred [Io_error] if a cmt or registry
    file cannot be read, [Parse_error] if a registry file is
    malformed. *)

val errors : finding list -> int

val to_json : finding -> Archpred_obs.Json.t
(** One finding as a JSON object, same shape as the linter's. *)

val pp_finding : Format.formatter -> finding -> unit
(** Human rendering: [file:line:col: [rule] message]. *)
