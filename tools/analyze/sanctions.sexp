; Sanctioned-state registry for archpred-analyze (see tools/analyze/
; analyze.mli).  Every entry is an audited concurrency or effect
; protocol: deleting a line makes the next `dune build @analyze` fail
; wherever the protocol is actually relied on.
;
;   (race-barrier  Name "why its internal shared state is safe")
;   (race-global   Name "why concurrent mutation of this value is safe")
;   (purity-barrier Name "why its transitive effects are contained")

; Observability counters buffer per domain in Domain.DLS and merge under
; the registry lock when a span closes; concurrent count/incr/gauge is
; the design, not an accident.
(race-barrier Obs.count "per-domain DLS buffers, merged under s.lock at span close")
(race-barrier Obs.incr "alias of Obs.count; same per-domain DLS protocol")
(race-barrier Obs.gauge "writes s.gauges under s.lock")
(race-barrier Obs.with_span "span stack lives in Domain.DLS; merge is lock-guarded")

; Fault-injection sites update their hit counters under the module mutex.
(race-barrier Fault.Fault.point "site table guarded by the module-level mutex")

; Checkpoint lines are CRC-framed and appended under the channel lock;
; replay is order-independent, so interleaving across domains is safe.
(race-barrier Core.Checkpoint.append "channel-locked framed append; replay is order-independent")

; The pool runtime itself: work distribution mutates queues/results by
; design, guarded by the pool's own synchronisation.
(race-barrier Stats.Parallel.map "pool runtime; results array is partitioned per domain")
(race-barrier Stats.Parallel.init "pool runtime; results array is partitioned per domain")
(race-barrier Stats.Parallel.map_reduce "pool runtime; per-domain accumulators combined after join")
(race-barrier Stats.Parallel.map_fallible "pool runtime; retry bookkeeping is Atomic")

; Process-wide Atomic totals: racy-by-design monotonic counters.
(race-global Stats.Parallel.retries_total "Atomic counter; monotonic total, no ordering claim")
(race-global Stats.Parallel.failed_total "Atomic counter; monotonic total, no ordering claim")

; Sharded-search coordination (lib/shard): cross-process protocols that
; look like shared mutable state to a per-process analysis.
(race-barrier Shard.Claim.claim "O_CREAT|O_EXCL create is the atomic cross-process mutual exclusion; a claim file is immutable after create")
(race-barrier Shard.Journal.append_result "single-writer journal: each worker appends only to its own file; the merge reads only unit-committed prefixes")
(race-barrier Shard.Journal.scan_dir "read-only merge over fsynced journal prefixes; first-wins dedup is order-canonical (filename sort)")
(race-barrier Shard.Stages.assemble "ctx caches are process-private memoisation of pure functions of (spec, merged scan)")
