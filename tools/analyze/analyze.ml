(* archpred-analyze: typed interprocedural analysis over .cmt artifacts.

   The linter (tools/lint) sees one Parsetree at a time; this engine
   loads the Typedtrees dune already wrote under _build, so paths are
   resolved (a local [module T = Archpred_regtree] alias and a direct
   reference both canonicalise to "Regtree.Tree") and facts can flow
   across files.  Three passes share one call-graph fixpoint:

   - domain-race: which top-level mutable values / which parameters each
     function mutates, propagated through calls; then every closure that
     reaches Stats.Parallel.{map,init,map_reduce,map_fallible} is
     checked for mutation of captured or global state.
   - hot-alloc: functions named in tools/analyze/hotpaths.sexp are
     checked for allocation sites (closures, tuples, records,
     constructor applications, arrays, partial application, escaping
     ref cells, @@/|> indirection).
   - impure: effect seeds (RNG, wall clock, stdout, Unix networking)
     propagate through calls; a function whose scope bans an effect is
     flagged at the frontier where the effect enters it.

   Deliberate optimism, documented here once: the analysis trusts that
   a function RESULT is fresh (no escape analysis), that sequential
   HOFs apply their closure to collection elements only, and it does
   not look through functors or first-class modules.  DESIGN.md §5i
   spells out the consequences. *)

module Error = Archpred_obs.Error
module Json = Archpred_obs.Json

type finding = { rule : string; file : string; line : int; col : int; message : string }
type scope = Lib | Bin | Bench | Test | Tools

let scope_of_rel rel =
  let pre p = String.length rel > String.length p
              && String.equal (String.sub rel 0 (String.length p)) p in
  if pre "lib/" then Some Lib
  else if pre "bin/" then Some Bin
  else if pre "bench/" then Some Bench
  else if pre "test/" then Some Test
  else if pre "tools/" then Some Tools
  else None

let rules =
  [
    ( "domain-race",
      "top-level mutable state or captured locals mutated from a closure \
       that runs under Stats.Parallel; sanctioned per-domain state lives \
       in tools/analyze/sanctions.sexp" );
    ( "hot-alloc",
      "allocation site (closure, tuple, record, constructor, array, \
       partial application, escaping ref, @@/|> indirection) inside a \
       function declared zero-alloc in tools/analyze/hotpaths.sexp" );
    ( "impure",
      "RNG / wall-clock / stdout / Unix-network effect reachable through \
       the call graph from code whose scope bans it" );
    ("unused-pragma", "an allow pragma that suppressed nothing");
    ("bad-pragma", "malformed allow pragma (unknown rule, missing reason)");
  ]

let rule_known r = List.mem_assoc r rules

(* ------------------------------------------------------------------ *)
(* Small helpers                                                      *)
(* ------------------------------------------------------------------ *)

let strip s =
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && (s.[!i] = ' ' || s.[!i] = '\t' || s.[!i] = '\n' || s.[!i] = '\r') do incr i done;
  while !j >= !i && (s.[!j] = ' ' || s.[!j] = '\t' || s.[!j] = '\n' || s.[!j] = '\r') do decr j done;
  if !j < !i then "" else String.sub s !i (!j - !i + 1)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let split_on_substring ~sep s =
  let ls = String.length sep and n = String.length s in
  let rec go acc start i =
    if i + ls > n then List.rev (String.sub s start (n - start) :: acc)
    else if String.equal (String.sub s i ls) sep then
      go (String.sub s start (i - start) :: acc) (i + ls) (i + ls)
    else go acc start (i + 1)
  in
  go [] 0 0

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> s
  | exception Sys_error msg -> Error.io_error ~path msg

module SSet = Set.Make (String)
module SMap = Map.Make (String)
module IdentMap = Map.Make (Ident)

(* ------------------------------------------------------------------ *)
(* Registries: a minimal s-expression reader                          *)
(* ------------------------------------------------------------------ *)

type sexp = Atom of string | List of sexp list

let parse_sexps ~path src =
  let n = String.length src in
  let line = ref 1 in
  let fail what = Error.parse_error ~where:path ~line:!line what in
  let pos = ref 0 in
  let bump c = if c = '\n' then incr line in
  let rec skip_ws () =
    if !pos < n then
      match src.[!pos] with
      | ' ' | '\t' | '\r' | '\n' ->
          bump src.[!pos]; incr pos; skip_ws ()
      | ';' ->
          while !pos < n && src.[!pos] <> '\n' do incr pos done;
          skip_ws ()
      | _ -> ()
  in
  let atom () =
    let start = !pos in
    while
      !pos < n
      && (match src.[!pos] with
         | ' ' | '\t' | '\r' | '\n' | '(' | ')' | '"' | ';' -> false
         | _ -> true)
    do incr pos done;
    String.sub src start (!pos - start)
  in
  let quoted () =
    incr pos;
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match src.[!pos] with
        | '"' -> incr pos
        | '\\' when !pos + 1 < n ->
            Buffer.add_char b src.[!pos + 1];
            pos := !pos + 2;
            go ()
        | c ->
            bump c; Buffer.add_char b c; incr pos; go ()
    in
    go ();
    Buffer.contents b
  in
  let rec sexp () =
    skip_ws ();
    if !pos >= n then fail "unexpected end of input"
    else
      match src.[!pos] with
      | '(' ->
          incr pos;
          let items = ref [] in
          let rec items_go () =
            skip_ws ();
            if !pos >= n then fail "unclosed ("
            else if src.[!pos] = ')' then incr pos
            else begin
              items := sexp () :: !items;
              items_go ()
            end
          in
          items_go ();
          List (List.rev !items)
      | ')' -> fail "unexpected )"
      | '"' -> Atom (quoted ())
      | _ -> Atom (atom ())
  in
  let out = ref [] in
  let rec top () =
    skip_ws ();
    if !pos < n then begin
      out := sexp () :: !out;
      top ()
    end
  in
  top ();
  List.rev !out

type sanction_kind = Race_barrier | Race_global | Purity_barrier
type sanction = { s_kind : sanction_kind; s_name : string; s_reason : string }

let parse_sanctions ~path src =
  List.map
    (fun form ->
      match form with
      | List [ Atom kind; Atom name; Atom reason ] ->
          let s_kind =
            match kind with
            | "race-barrier" -> Race_barrier
            | "race-global" -> Race_global
            | "purity-barrier" -> Purity_barrier
            | _ ->
                Error.parse_error ~where:path ~line:0
                  ("unknown sanction kind `" ^ kind ^ "`")
          in
          if String.equal (strip reason) "" then
            Error.parse_error ~where:path ~line:0
              ("sanction for `" ^ name ^ "` needs a non-empty reason");
          { s_kind; s_name = name; s_reason = reason }
      | _ ->
          Error.parse_error ~where:path ~line:0
            "expected (race-barrier|race-global|purity-barrier Name \"reason\")")
    (parse_sexps ~path src)

let parse_hotpaths ~path src =
  List.map
    (fun form ->
      match form with
      | List [ Atom "hot-path"; Atom name ] -> name
      | _ -> Error.parse_error ~where:path ~line:0 "expected (hot-path Name)")
    (parse_sexps ~path src)

let load_sanctions ~path = parse_sanctions ~path (read_file path)
let load_hotpaths ~path = parse_hotpaths ~path (read_file path)

(* ------------------------------------------------------------------ *)
(* Canonical names                                                    *)
(* ------------------------------------------------------------------ *)

(* Compilation units arrive as "Archpred_stats__Parallel" or
   "Dune__exe__Archpred"; canonical segments are what a reader writes in
   sanctions.sexp: "Stats.Parallel", "Archpred". *)
let canon_unit modname =
  let rest =
    if starts_with ~prefix:"Dune__exe__" modname then
      String.sub modname 11 (String.length modname - 11)
    else if starts_with ~prefix:"Archpred_" modname then
      String.sub modname 9 (String.length modname - 9)
    else modname
  in
  List.map String.capitalize_ascii (split_on_substring ~sep:"__" rest)

let canon_parts parts =
  match parts with
  | [] -> []
  | h :: t ->
      if starts_with ~prefix:"Archpred_" h || starts_with ~prefix:"Dune__exe__" h
      then canon_unit h @ t
      else if String.equal h "Stdlib" && t <> [] then t
      else if starts_with ~prefix:"Stdlib__" h then
        String.capitalize_ascii (String.sub h 8 (String.length h - 8)) :: t
      else h :: t

(* Per-unit resolution context.  [toplevels] maps idents bound at the
   unit's top level (possibly inside nested plain [struct]s) to their
   canonical dotted name; [aliases] maps [module S = Long.Path] bindings
   to the aliased path so [S.f] canonicalises as [Long.Path.f]. *)
type uctx = {
  unit_parts : string list;
  file : string;
  mutable toplevels : string IdentMap.t;
  mutable aliases : Path.t IdentMap.t;
}

let rec expand_path ctx p =
  match p with
  | Path.Pident id -> (
      match IdentMap.find_opt id ctx.aliases with
      | Some tgt -> expand_path ctx tgt
      | None -> p)
  | Path.Pdot (q, s) -> Path.Pdot (expand_path ctx q, s)
  | _ -> p

let rec path_parts p =
  match p with
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (q, s) -> path_parts q @ [ s ]
  | Path.Papply _ -> [ "<papply>" ]
  | Path.Pextra_ty (q, _) -> path_parts q

let canon ctx p =
  let p = expand_path ctx p in
  match p with
  | Path.Pident id when IdentMap.mem id ctx.toplevels ->
      IdentMap.find id ctx.toplevels
  | _ -> String.concat "." (canon_parts (path_parts p))

(* ------------------------------------------------------------------ *)
(* Tables                                                             *)
(* ------------------------------------------------------------------ *)

(* Mutator primitives: canonical name -> 0-based positional index of the
   argument that gets mutated.  Mutex/Condition are deliberately absent:
   locking is synchronization, not a data race. *)
let mutators =
  [
    ":=", 0; "incr", 0; "decr", 0;
    "Hashtbl.add", 0; "Hashtbl.replace", 0; "Hashtbl.remove", 0;
    "Hashtbl.reset", 0; "Hashtbl.clear", 0; "Hashtbl.filter_map_inplace", 1;
    "Buffer.add_char", 0; "Buffer.add_string", 0; "Buffer.add_bytes", 0;
    "Buffer.add_substring", 0; "Buffer.add_subbytes", 0; "Buffer.add_buffer", 0;
    "Buffer.clear", 0; "Buffer.reset", 0; "Buffer.truncate", 0;
    "Atomic.set", 0; "Atomic.incr", 0; "Atomic.decr", 0;
    "Atomic.exchange", 0; "Atomic.compare_and_set", 0; "Atomic.fetch_and_add", 0;
    "Array.set", 0; "Array.unsafe_set", 0; "Array.fill", 0; "Array.blit", 2;
    "Array.sort", 1; "Array.stable_sort", 1; "Array.fast_sort", 1;
    "Bytes.set", 0; "Bytes.unsafe_set", 0; "Bytes.fill", 0; "Bytes.blit", 2;
    "Bytes.blit_string", 2;
    "Bigarray.Array1.set", 0; "Bigarray.Array1.unsafe_set", 0;
    "Bigarray.Array1.fill", 0; "Bigarray.Array1.blit", 1;
    "Bigarray.Array2.set", 0; "Bigarray.Array2.unsafe_set", 0;
    "Bigarray.Array2.fill", 0; "Bigarray.Array2.blit", 1;
    "Bigarray.Array3.set", 0; "Bigarray.Array3.unsafe_set", 0;
    "Bigarray.Genarray.set", 0; "Bigarray.Genarray.fill", 0;
    "Bigarray.Genarray.blit", 1;
    "Float.Array.set", 0; "Float.Array.unsafe_set", 0; "Float.Array.fill", 0;
    "Float.Array.blit", 2;
    "Queue.push", 1; "Queue.add", 1; "Queue.pop", 0; "Queue.take", 0;
    "Queue.clear", 0; "Queue.transfer", 0;
    "Stack.push", 1; "Stack.pop", 0; "Stack.clear", 0;
    "Domain.DLS.set", 0;
    "output_string", 0; "output_char", 0; "output", 0; "output_bytes", 0;
    "flush", 0; "Printf.fprintf", 0; "Format.fprintf", 0;
  ]

(* Accessors whose RESULT keeps pointing into their argument's
   structure: name -> positional index of the argument whose root the
   result inherits. *)
let accessors =
  [
    "!", 0; "Hashtbl.find", 0; "Hashtbl.find_opt", 0; "Hashtbl.find_all", 0;
    "Array.get", 0; "Array.unsafe_get", 0; "Atomic.get", 0;
    "Option.get", 0; "Option.value", 0; "fst", 0; "snd", 0;
    "Lazy.force", 0; "Domain.DLS.get", 0; "Queue.peek", 0; "Queue.top", 0;
    "List.hd", 0; "List.nth", 0; "Float.Array.get", 0; "Bytes.get", 0;
  ]

(* Sequential HOFs: (function-arg position, collection-arg position).
   The closure's parameters are bound to the collection's root, so
   [List.iter (fun s -> Hashtbl.reset s) shared] registers as a
   mutation of [shared]. *)
let hofs =
  [
    "List.iter", (0, 1); "List.map", (0, 1); "List.iteri", (0, 1);
    "List.mapi", (0, 1); "List.fold_left", (0, 2);
    "Array.iter", (0, 1); "Array.map", (0, 1); "Array.iteri", (0, 1);
    "Array.mapi", (0, 1); "Array.fold_left", (0, 2);
    "Hashtbl.iter", (0, 1); "Option.iter", (0, 1); "Option.map", (0, 1);
  ]

(* Arguments of a raise-family call are cold: allocation there is the
   price of dying, not of the hot path. *)
let raise_family =
  [
    "raise"; "raise_notrace"; "invalid_arg"; "failwith";
    "Printexc.raise_with_backtrace";
    "Obs.Error.invalid_input"; "Obs.Error.invalid_env"; "Obs.Error.io_error";
    "Obs.Error.parse_error"; "Obs.Error.infeasible";
  ]

let entry_names =
  [
    "Stats.Parallel.map"; "Stats.Parallel.init";
    "Stats.Parallel.map_reduce"; "Stats.Parallel.map_fallible";
  ]

(* Effect seeds, as bitmasks. *)
let eff_rng = 1
let eff_wall = 2
let eff_stdout = 4
let eff_net = 8

let stdout_printers =
  [ "print_string"; "print_endline"; "print_newline"; "print_int";
    "print_float"; "print_char"; "print_bytes" ]

let net_ops =
  [ "socket"; "socketpair"; "bind"; "listen"; "accept"; "connect"; "select";
    "recv"; "recvfrom"; "send"; "sendto"; "send_substring"; "shutdown";
    "setsockopt"; "getsockopt"; "getsockname"; "getpeername"; "getaddrinfo";
    "gethostbyname"; "inet_addr_of_string"; "open_connection";
    "establish_server"; "set_nonblock"; "clear_nonblock"; "read"; "write";
    "single_write"; "write_substring" ]

let effect_of_name name =
  match String.split_on_char '.' name with
  | "Random" :: _ -> eff_rng
  | [ "Unix"; ("gettimeofday" | "time" | "times") ] | [ "Sys"; "time" ] ->
      eff_wall
  | [ p ] when List.mem p stdout_printers -> eff_stdout
  | [ "Printf"; "printf" ]
  | [ "Format"; ("printf" | "print_string" | "print_newline" | "print_float") ]
    -> eff_stdout
  | [ "Unix"; op ] when List.mem op net_ops -> eff_net
  | _ -> 0

let effect_desc mask =
  if mask = eff_rng then "global RNG"
  else if mask = eff_wall then "wall-clock read"
  else if mask = eff_stdout then "stdout write"
  else "Unix network / raw-fd I/O"

(* Where is each effect banned?  [file] is the repo-relative source. *)
let banned_effect ~scope ~file mask =
  let under p = starts_with ~prefix:p file in
  if mask = eff_rng then not (String.equal file "lib/stats/rng.ml")
  else if mask = eff_wall then
    (match scope with Lib | Bin | Test | Tools -> true | Bench -> false)
    && not (under "lib/obs/" || under "lib/serve_net/")
  else if mask = eff_stdout then scope = Lib
  else scope = Lib && not (under "lib/serve_net/")

(* ------------------------------------------------------------------ *)
(* Facts                                                              *)
(* ------------------------------------------------------------------ *)

(* Where a value ultimately comes from.  [Param k] is "this function's
   parameter k" ("#0" positional / "~lbl" / "?lbl"); [GlobalR n] a
   top-level value (ours or another unit's); [SharedR d] a local that a
   parallel closure captured from its spawning scope. *)
type froot = Fresh | Param of string | GlobalR of string | SharedR of string

type call = {
  callee : string;
  cargs : (string * froot) list;  (* non-Fresh argument roots, keyed *)
  cloc : Location.t;
}

type fact = {
  fname : string;
  ffile : string;
  mutable mut_params : SSet.t;
  mutable mut_globals : SSet.t;
  mutable effects : int;
  mutable direct_mut_params : (string * Location.t) list;
  mutable direct_mut_globals : (string * Location.t) list;
  mutable effect_sites : (int * string * Location.t) list;
  mutable calls : call list;
}

open Typedtree

type cbs = {
  on_mut : Location.t -> froot -> string -> unit;
  on_call : Location.t -> string -> (string * froot) list -> unit;
  on_effect : Location.t -> int -> string -> unit;
  on_entry :
    string (* enclosing fn *) -> Location.t -> string ->
    (Asttypes.arg_label * expression) list -> froot IdentMap.t -> unit;
  on_alloc : (Location.t -> string -> unit) option;
  (* ref-cell escape tracking for the alloc pass: [ref_def id loc] on
     [let r = ref e]; [ref_use id ~allowed] on every later use. *)
  ref_def : (Ident.t -> Location.t -> unit) option;
  ref_use : (Ident.t -> allowed:bool -> unit) option;
  encl : string;  (* canonical name of the enclosing top-level function *)
}

let key_of_label n = function
  | Asttypes.Nolabel -> "#" ^ string_of_int n
  | Asttypes.Labelled l -> "~" ^ l
  | Asttypes.Optional l -> "?" ^ l

let bind_ids env ids root =
  List.fold_left (fun acc id -> IdentMap.add id root acc) env ids

let bind_pat env pat root = bind_ids env (pat_bound_idents pat) root

let head_ident f =
  match f.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

let nth_positional args i =
  let rec go k = function
    | [] -> None
    | (Asttypes.Nolabel, a) :: rest -> if k = i then Some a else go (k + 1) rest
    | _ :: rest -> go k rest
  in
  go 0 args

let is_arrow ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

let root_of_path ctx env p =
  match p with
  | Path.Pident id -> (
      match IdentMap.find_opt id env with
      | Some r -> r
      | None -> (
          match IdentMap.find_opt id ctx.toplevels with
          | Some name -> GlobalR name
          | None -> (
              match IdentMap.find_opt id ctx.aliases with
              | Some _ -> GlobalR (canon ctx p)
              | None -> Fresh)))
  | Path.Papply _ -> Fresh
  | _ -> GlobalR (canon ctx p)

(* [root_of] never reports anything; it only answers "where does this
   expression's value point".  Join rule for branching forms: first
   non-Fresh branch root wins (optimistic toward tracking, which is the
   conservative direction for the race pass). *)
let rec root_of ctx env e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> root_of_path ctx env p
  | Texp_field (e1, _, _) -> root_of ctx env e1
  | Texp_construct (_, _, [ a ]) -> root_of ctx env a
  | Texp_sequence (_, b) -> root_of ctx env b
  | Texp_ifthenelse (_, b, c) ->
      join_roots (root_of ctx env b)
        (match c with Some c -> root_of ctx env c | None -> Fresh)
  | Texp_let (_, vbs, body) ->
      let env' =
        List.fold_left
          (fun acc vb -> bind_pat acc vb.vb_pat (root_of ctx env vb.vb_expr))
          env vbs
      in
      root_of ctx env' body
  | Texp_match (scrut, cases, _) ->
      let r = root_of ctx env scrut in
      List.fold_left
        (fun acc c ->
          join_roots acc (root_of ctx (bind_pat env c.c_lhs r) c.c_rhs))
        Fresh cases
  | Texp_apply (f, args) -> (
      match head_ident f with
      | Some p -> (
          let name = canon ctx p in
          let args_e =
            List.filter_map (fun (l, a) -> Option.map (fun a -> (l, a)) a) args
          in
          match List.assoc_opt name accessors with
          | Some i -> (
              match nth_positional args_e i with
              | Some a -> root_of ctx env a
              | None -> Fresh)
          | None -> Fresh)
      | None -> Fresh)
  | _ -> Fresh

and join_roots a b = match a with Fresh -> b | _ -> a

let keyed_roots ctx env args_e =
  let _, acc =
    List.fold_left
      (fun (n, acc) (lbl, a) ->
        let n' = match lbl with Asttypes.Nolabel -> n + 1 | _ -> n in
        let key = key_of_label n lbl in
        match root_of ctx env a with
        | Fresh -> (n', acc)
        | r -> (n', (key, r) :: acc))
      (0, []) args_e
  in
  List.rev acc

(* ------------------------------------------------------------------ *)
(* The walker                                                         *)
(* ------------------------------------------------------------------ *)

let rec walk ctx cbs env e =
  match e.exp_desc with
  | Texp_ident (p, _, _) ->
      (match p with
      | Path.Pident id ->
          (match cbs.ref_use with Some f -> f id ~allowed:false | None -> ())
      | _ -> ());
      let name = canon ctx p in
      let mask = effect_of_name name in
      if mask <> 0 then cbs.on_effect e.exp_loc mask name
  | Texp_let (rf, vbs, body) ->
      let env' =
        List.fold_left
          (fun acc vb ->
            (match (cbs.ref_def, vb.vb_pat.pat_desc, ref_rhs ctx vb.vb_expr) with
            | Some f, Tpat_var (id, _), true -> f id vb.vb_expr.exp_loc
            | _ -> ());
            bind_pat acc vb.vb_pat (root_of ctx env vb.vb_expr))
          env vbs
      in
      let benv = match rf with Asttypes.Recursive -> env' | _ -> env in
      List.iter (fun vb -> walk ctx cbs benv vb.vb_expr) vbs;
      walk ctx cbs env' body
  | Texp_function { param; cases; _ } ->
      (match cbs.on_alloc with
      | Some f -> f e.exp_loc "closure allocation"
      | None -> ());
      walk_cases ctx cbs env param cases
  | Texp_apply (f, args) -> walk_apply ctx cbs env e f args
  | Texp_match (scrut, cases, _) ->
      walk ctx cbs env scrut;
      let r = root_of ctx env scrut in
      List.iter
        (fun c ->
          let env' = bind_pat env c.c_lhs r in
          Option.iter (walk ctx cbs env') c.c_guard;
          walk ctx cbs env' c.c_rhs)
        cases
  | Texp_try (b, cases) ->
      walk ctx cbs env b;
      List.iter
        (fun c ->
          let env' = bind_pat env c.c_lhs Fresh in
          Option.iter (walk ctx cbs env') c.c_guard;
          walk ctx cbs env' c.c_rhs)
        cases
  | Texp_setfield (e1, _, _, v) ->
      cbs.on_mut e.exp_loc (root_of ctx env e1) "mutable-field assignment";
      walk ctx cbs env e1;
      walk ctx cbs env v
  | Texp_tuple es ->
      (match cbs.on_alloc with
      | Some f -> f e.exp_loc "tuple allocation"
      | None -> ());
      List.iter (walk ctx cbs env) es
  | Texp_construct (_, cd, es) ->
      if es <> [] then (
        match cbs.on_alloc with
        | Some f ->
            f e.exp_loc
              ("constructor allocation (" ^ cd.Types.cstr_name ^ ")")
        | None -> ());
      List.iter (walk ctx cbs env) es
  | Texp_variant (_, eo) ->
      (match (eo, cbs.on_alloc) with
      | Some _, Some f -> f e.exp_loc "variant allocation"
      | _ -> ());
      Option.iter (walk ctx cbs env) eo
  | Texp_record { fields; extended_expression; _ } ->
      (match cbs.on_alloc with
      | Some f -> f e.exp_loc "record allocation"
      | None -> ());
      Array.iter
        (fun (_, def) ->
          match def with
          | Overridden (_, ex) -> walk ctx cbs env ex
          | Kept _ -> ())
        fields;
      Option.iter (walk ctx cbs env) extended_expression
  | Texp_array es ->
      (match cbs.on_alloc with
      | Some f -> f e.exp_loc "array allocation"
      | None -> ());
      List.iter (walk ctx cbs env) es
  | Texp_field (e1, _, _) -> walk ctx cbs env e1
  | Texp_ifthenelse (a, b, c) ->
      walk ctx cbs env a;
      walk ctx cbs env b;
      Option.iter (walk ctx cbs env) c
  | Texp_sequence (a, b) ->
      walk ctx cbs env a;
      walk ctx cbs env b
  | Texp_while (a, b) ->
      walk ctx cbs env a;
      walk ctx cbs env b
  | Texp_for (id, _, lo, hi, _, body) ->
      walk ctx cbs env lo;
      walk ctx cbs env hi;
      walk ctx cbs (IdentMap.add id Fresh env) body
  | Texp_assert (a, _) -> walk ctx cbs env a
  | Texp_lazy a ->
      (match cbs.on_alloc with
      | Some f -> f e.exp_loc "lazy allocation"
      | None -> ());
      walk ctx cbs env a
  | _ ->
      (* Anything else (letmodule, letop, object, pack, ...): visit every
         sub-expression with the current environment. *)
      let it =
        {
          Tast_iterator.default_iterator with
          expr = (fun _ sub -> walk ctx cbs env sub);
        }
      in
      Tast_iterator.default_iterator.expr it e

and walk_cases ctx cbs env param cases =
  List.iter
    (fun c ->
      let env' = IdentMap.add param Fresh (bind_pat env c.c_lhs Fresh) in
      Option.iter (walk ctx cbs env') c.c_guard;
      walk ctx cbs env' c.c_rhs)
    cases

and ref_rhs ctx e =
  match e.exp_desc with
  | Texp_apply (f, [ (_, Some _) ]) -> (
      match head_ident f with
      | Some p -> String.equal (canon ctx p) "ref"
      | None -> false)
  | _ -> false

and walk_apply ctx cbs env e f args =
  let args_e =
    List.filter_map (fun (l, a) -> Option.map (fun a -> (l, a)) a) args
  in
  let walk_args ?(skip = []) () =
    List.iter
      (fun (_, a) -> if not (List.memq a skip) then walk ctx cbs env a)
      args_e
  in
  match head_ident f with
  | None ->
      walk ctx cbs env f;
      walk_args ();
      alloc_if_partial cbs e
  | Some p -> (
      let name = canon ctx p in
      let mask = effect_of_name name in
      if mask <> 0 then cbs.on_effect e.exp_loc mask name;
      if List.mem name raise_family then
        (* cold path: dying is allowed to allocate, and a raise helper's
           arguments never feed the data-race surface *)
        ()
      else begin
        (match name with
        | "!" | ":=" | "incr" | "decr" -> (
            (* track the ref cell without letting the generic ident case
               count these uses as escapes *)
            let skip = ref [] in
            (match nth_positional args_e 0 with
            | Some a -> (
                (match a.exp_desc with
                | Texp_ident (Path.Pident id, _, _) -> (
                    skip := [ a ];
                    match cbs.ref_use with
                    | Some fu -> fu id ~allowed:true
                    | None -> ())
                | _ -> ());
                if not (String.equal name "!") then
                  cbs.on_mut e.exp_loc (root_of ctx env a) (name ^ " on ref"))
            | None -> ());
            walk_args ~skip:!skip ())
        | _ -> (
            match List.assoc_opt name mutators with
            | Some idx ->
                (match nth_positional args_e idx with
                | Some a ->
                    cbs.on_mut e.exp_loc (root_of ctx env a) (name ^ " on it")
                | None -> ());
                walk_args ()
            | None ->
                if List.mem_assoc name accessors then walk_args ()
                else if List.mem name entry_names then begin
                  cbs.on_entry cbs.encl e.exp_loc name args_e env;
                  cbs.on_call e.exp_loc name (keyed_roots ctx env args_e);
                  walk_args ()
                end
                else if String.equal name "@@" || String.equal name "|>" then begin
                  (match cbs.on_alloc with
                  | Some fa -> fa e.exp_loc ("operator indirection (" ^ name ^ ")")
                  | None -> ());
                  (* f @@ x / x |> f: surface the underlying call so facts
                     still flow *)
                  (match args_e with
                  | [ (_, a1); (_, a2) ] -> (
                      let fn, arg =
                        if String.equal name "@@" then (a1, a2) else (a2, a1)
                      in
                      match head_ident fn with
                      | Some fp ->
                          cbs.on_call e.exp_loc (canon ctx fp)
                            (match root_of ctx env arg with
                            | Fresh -> []
                            | r -> [ ("#0", r) ])
                      | None -> ())
                  | _ -> ());
                  walk_args ()
                end
                else begin
                  let hof_skip = ref [] in
                  (match List.assoc_opt name hofs with
                  | Some (fpos, cpos) -> (
                      let coll_root =
                        match nth_positional args_e cpos with
                        | Some c -> root_of ctx env c
                        | None -> Fresh
                      in
                      match nth_positional args_e fpos with
                      | Some ({ exp_desc = Texp_function _; _ } as fl) ->
                          (* walk the body once, with the element params
                             inheriting the collection root; the generic
                             argument sweep below skips it *)
                          hof_skip := [ fl ];
                          walk_hof_literal ctx cbs env fl coll_root
                      | Some fa -> (
                          match (head_ident fa, coll_root) with
                          | Some fp, (GlobalR _ | SharedR _ | Param _) ->
                              cbs.on_call e.exp_loc (canon ctx fp)
                                [ ("#0", coll_root) ]
                          | _ -> ())
                      | None -> ())
                  | None -> ());
                  cbs.on_call e.exp_loc name (keyed_roots ctx env args_e);
                  walk_args ~skip:!hof_skip ()
                end));
        alloc_if_partial cbs e
      end)

and walk_hof_literal ctx cbs env fl coll_root =
  match fl.exp_desc with
  | Texp_function { param; cases; _ } ->
      (match cbs.on_alloc with
      | Some f -> f fl.exp_loc "closure allocation"
      | None -> ());
      List.iter
        (fun c ->
          let env' =
            IdentMap.add param coll_root (bind_pat env c.c_lhs coll_root)
          in
          Option.iter (walk ctx cbs env') c.c_guard;
          walk ctx cbs env' c.c_rhs)
        cases
  | _ -> walk ctx cbs env fl

and alloc_if_partial cbs e =
  match cbs.on_alloc with
  | Some f -> if is_arrow e.exp_type then f e.exp_loc "partial application"
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Findings, pragmas                                                  *)
(* ------------------------------------------------------------------ *)

let mkf ~rule ~file (loc : Location.t) message =
  let p = loc.Location.loc_start in
  {
    rule;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    message;
  }

type pragma = {
  p_file : string;
  p_line : int;
  p_rule : string;
  mutable p_used : bool;
}

let pragma_key = "archpred-analyze:"

(* Comments come straight out of the .cmt ([cmt_comments]), so pragmas
   need no re-lexing of the source.  A pragma must START the comment;
   prose that merely quotes the grammar is inert. *)
let scan_pragmas ~file comments =
  let pragmas = ref [] and bad = ref [] in
  List.iter
    (fun (text, (cloc : Location.t)) ->
      let t = strip text in
      if starts_with ~prefix:pragma_key t then begin
        let rest =
          strip (String.sub t (String.length pragma_key)
                   (String.length t - String.length pragma_key))
        in
        let bad_pragma what = bad := mkf ~rule:"bad-pragma" ~file cloc what :: !bad in
        if starts_with ~prefix:"allow " rest then begin
          let body = strip (String.sub rest 6 (String.length rest - 6)) in
          match split_on_substring ~sep:"--" body with
          | [ _ ] | [] -> bad_pragma "pragma needs `-- reason`"
          | r :: tail ->
              let rule = strip r in
              let reason = strip (String.concat "--" tail) in
              if String.contains rule ' ' then
                bad_pragma "pragma allows exactly one rule"
              else if not (rule_known rule) then
                bad_pragma ("unknown rule `" ^ rule ^ "` in pragma")
              else if String.equal reason "" then
                bad_pragma "pragma needs a non-empty reason"
              else
                pragmas :=
                  {
                    p_file = file;
                    p_line = cloc.Location.loc_start.Lexing.pos_lnum;
                    p_rule = rule;
                    p_used = false;
                  }
                  :: !pragmas
        end
        else bad_pragma "expected `allow <rule> -- reason`"
      end)
    comments;
  (!pragmas, !bad)

(* ------------------------------------------------------------------ *)
(* Unit loading and fact collection                                   *)
(* ------------------------------------------------------------------ *)

type entry_site = {
  e_ctx : uctx;
  e_encl : string;
  e_name : string;
  e_args : (Asttypes.arg_label * expression) list;
  e_env : froot IdentMap.t;
}

type state = {
  mutable facts : fact SMap.t;
  mutable entries : entry_site list;
  mutable pragmas : pragma list;
  mutable pre_findings : finding list;  (* alloc + bad-pragma findings *)
  hot : SSet.t;
}

let get_fact st name file =
  match SMap.find_opt name st.facts with
  | Some f -> f
  | None ->
      let f =
        {
          fname = name;
          ffile = file;
          mut_params = SSet.empty;
          mut_globals = SSet.empty;
          effects = 0;
          direct_mut_params = [];
          direct_mut_globals = [];
          effect_sites = [];
          calls = [];
        }
      in
      st.facts <- SMap.add name f st.facts;
      f

let fact_cbs st ctx fact =
  {
    on_mut =
      (fun loc root _desc ->
        match root with
        | Param k -> fact.direct_mut_params <- (k, loc) :: fact.direct_mut_params
        | GlobalR g ->
            fact.direct_mut_globals <- (g, loc) :: fact.direct_mut_globals
        | _ -> ());
    on_call =
      (fun loc callee cargs ->
        fact.calls <- { callee; cargs; cloc = loc } :: fact.calls);
    on_effect =
      (fun loc mask name ->
        fact.effect_sites <- (mask, name, loc) :: fact.effect_sites);
    on_entry =
      (fun encl _loc name args env ->
        st.entries <-
          { e_ctx = ctx; e_encl = encl; e_name = name; e_args = args; e_env = env }
          :: st.entries);
    on_alloc = None;
    ref_def = None;
    ref_use = None;
    encl = fact.fname;
  }

(* Peel the outer currying chain into parameter keys; everything below
   is the function's body. *)
let rec peel ctx cbs env n e =
  match e.exp_desc with
  | Texp_function { arg_label; param; cases = [ c ]; _ } when c.c_guard = None ->
      let key = key_of_label n arg_label in
      let n' = match arg_label with Asttypes.Nolabel -> n + 1 | _ -> n in
      let env' = IdentMap.add param (Param key) (bind_pat env c.c_lhs (Param key)) in
      peel ctx cbs env' n' c.c_rhs
  | Texp_function { arg_label; param; cases; _ } ->
      let key = key_of_label n arg_label in
      List.iter
        (fun c ->
          let env' =
            IdentMap.add param (Param key) (bind_pat env c.c_lhs (Param key))
          in
          Option.iter (walk ctx cbs env') c.c_guard;
          walk ctx cbs env' c.c_rhs)
        cases
  | Texp_let (rf, vbs, body) ->
      (* an optional parameter with a default compiles to
         [fun ?p -> let p = match p with ... in fun next -> ...]:
         keep peeling through the default-binding let *)
      let env' =
        List.fold_left
          (fun acc vb ->
            (match (cbs.ref_def, vb.vb_pat.pat_desc, ref_rhs ctx vb.vb_expr) with
            | Some f, Tpat_var (id, _), true -> f id vb.vb_expr.exp_loc
            | _ -> ());
            bind_pat acc vb.vb_pat (root_of ctx env vb.vb_expr))
          env vbs
      in
      let benv = match rf with Asttypes.Recursive -> env' | _ -> env in
      List.iter (fun vb -> walk ctx cbs benv vb.vb_expr) vbs;
      peel ctx cbs env' n body
  | _ -> walk ctx cbs env e

let nop_cbs encl =
  {
    on_mut = (fun _ _ _ -> ());
    on_call = (fun _ _ _ -> ());
    on_effect = (fun _ _ _ -> ());
    on_entry = (fun _ _ _ _ _ -> ());
    on_alloc = None;
    ref_def = None;
    ref_use = None;
    encl;
  }

(* Zero-alloc check of one manifest function: a second, local walk with
   the allocation callbacks armed.  Refs used only through !/:=/incr/decr
   unbox (Simplif.eliminate_ref); escaping ones allocate. *)
let alloc_walk st ctx fname body =
  let refs = ref IdentMap.empty in
  let ref_allocs = ref [] in
  let add loc desc =
    st.pre_findings <-
      mkf ~rule:"hot-alloc" ~file:ctx.file loc
        (desc ^ " in zero-alloc hot path `" ^ fname ^ "`")
      :: st.pre_findings
  in
  let cbs =
    {
      (nop_cbs fname) with
      on_alloc = Some add;
      on_call =
        (fun loc callee _ ->
          if String.equal callee "ref" then ref_allocs := loc :: !ref_allocs);
      ref_def =
        (fun id loc -> refs := IdentMap.add id (loc, ref false) !refs)
        |> Option.some;
      ref_use =
        (fun id ~allowed ->
          if not allowed then
            match IdentMap.find_opt id !refs with
            | Some (_, esc) -> esc := true
            | None -> ())
        |> Option.some;
    }
  in
  peel ctx cbs IdentMap.empty 0 body;
  let unboxed_ref_locs =
    IdentMap.fold
      (fun _ (loc, esc) acc -> if !esc then acc else loc :: acc)
      !refs []
  in
  List.iter
    (fun loc ->
      if not (List.mem loc unboxed_ref_locs) then
        add loc "ref allocation (cell escapes !/:=/incr/decr use)")
    !ref_allocs

let rec unwrap_mod me =
  match me.mod_desc with
  | Tmod_constraint (me', _, _, _) -> unwrap_mod me'
  | d -> d

(* Pass 1 over a unit: register top-level names and module aliases. *)
let rec register_items ctx prefix items =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              List.iter
                (fun id ->
                  ctx.toplevels <-
                    IdentMap.add id
                      (String.concat "." (prefix @ [ Ident.name id ]))
                      ctx.toplevels)
                (pat_bound_idents vb.vb_pat))
            vbs
      | Tstr_module mb -> register_mb ctx prefix mb
      | Tstr_recmodule mbs -> List.iter (register_mb ctx prefix) mbs
      | _ -> ())
    items

and register_mb ctx prefix mb =
  match mb.mb_id with
  | None -> ()
  | Some id -> (
      match unwrap_mod mb.mb_expr with
      | Tmod_ident (p, _) -> ctx.aliases <- IdentMap.add id p ctx.aliases
      | Tmod_structure s -> register_items ctx (prefix @ [ Ident.name id ]) s.str_items
      | _ -> ())

(* Pass 2: collect facts for every top-level function; walk other
   top-level bindings under a per-unit `<init>` pseudo-function so
   effects and entry sites in `let () = ...` bodies are still seen. *)
let rec facts_items st ctx prefix items =
  let init_fact () =
    get_fact st (String.concat "." (prefix @ [ "<init>" ])) ctx.file
  in
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
              | Tpat_var (id, _), Texp_function _ ->
                  let name = IdentMap.find id ctx.toplevels in
                  let fact = get_fact st name ctx.file in
                  peel ctx (fact_cbs st ctx fact) IdentMap.empty 0 vb.vb_expr;
                  if SSet.mem name st.hot then
                    alloc_walk st ctx name vb.vb_expr
              | _ ->
                  let fact = init_fact () in
                  walk ctx (fact_cbs st ctx fact) IdentMap.empty vb.vb_expr)
            vbs
      | Tstr_eval (e, _) ->
          let fact = init_fact () in
          walk ctx (fact_cbs st ctx fact) IdentMap.empty e
      | Tstr_module mb -> (
          match (mb.mb_id, unwrap_mod mb.mb_expr) with
          | Some id, Tmod_structure s ->
              facts_items st ctx (prefix @ [ Ident.name id ]) s.str_items
          | _ -> ())
      | Tstr_recmodule mbs ->
          List.iter
            (fun mb ->
              match (mb.mb_id, unwrap_mod mb.mb_expr) with
              | Some id, Tmod_structure s ->
                  facts_items st ctx (prefix @ [ Ident.name id ]) s.str_items
              | _ -> ())
            mbs
      | _ -> ())
    items

let load_unit st ~root cmt_path =
  let cmt =
    (* unreadable / other-compiler-version artifacts are skipped, not
       fatal: a stale .cmt must not wedge the whole sweep *)
    match Cmt_format.read_cmt cmt_path with
    | c -> Some c
    | exception Sys_error _ -> None
    | exception End_of_file -> None
    | exception Failure _ -> None
    | exception Cmi_format.Error _ -> None
  in
  match cmt with
  | None -> ()
  | Some cmt -> (
      match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
      | Cmt_format.Implementation str, Some file
        when Sys.file_exists (Filename.concat root file) ->
          let ctx =
            {
              unit_parts = canon_unit cmt.Cmt_format.cmt_modname;
              file;
              toplevels = IdentMap.empty;
              aliases = IdentMap.empty;
            }
          in
          register_items ctx ctx.unit_parts str.str_items;
          facts_items st ctx ctx.unit_parts str.str_items;
          let pragmas, bad = scan_pragmas ~file cmt.Cmt_format.cmt_comments in
          st.pragmas <- pragmas @ st.pragmas;
          st.pre_findings <- bad @ st.pre_findings
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                           *)
(* ------------------------------------------------------------------ *)

let fixpoint st ~race_barriers ~purity_barriers =
  SMap.iter
    (fun _ f ->
      f.mut_params <- SSet.of_list (List.map fst f.direct_mut_params);
      f.mut_globals <- SSet.of_list (List.map fst f.direct_mut_globals);
      f.effects <-
        List.fold_left (fun acc (m, _, _) -> acc lor m) 0 f.effect_sites)
    st.facts;
  let changed = ref true in
  while !changed do
    changed := false;
    SMap.iter
      (fun _ f ->
        List.iter
          (fun c ->
            match SMap.find_opt c.callee st.facts with
            | None -> ()
            | Some g ->
                if not (SSet.mem c.callee race_barriers) then begin
                  List.iter
                    (fun (k, r) ->
                      if SSet.mem k g.mut_params then
                        match r with
                        | Param p ->
                            if not (SSet.mem p f.mut_params) then begin
                              f.mut_params <- SSet.add p f.mut_params;
                              changed := true
                            end
                        | GlobalR gl ->
                            if not (SSet.mem gl f.mut_globals) then begin
                              f.mut_globals <- SSet.add gl f.mut_globals;
                              changed := true
                            end
                        | _ -> ())
                    c.cargs;
                  if not (SSet.subset g.mut_globals f.mut_globals) then begin
                    f.mut_globals <- SSet.union f.mut_globals g.mut_globals;
                    changed := true
                  end
                end;
                if not (SSet.mem c.callee purity_barriers) then begin
                  let e' = f.effects lor g.effects in
                  if e' <> f.effects then begin
                    f.effects <- e';
                    changed := true
                  end
                end)
          f.calls)
      st.facts
  done

(* ------------------------------------------------------------------ *)
(* Pass 1: domain races at parallel entry sites                       *)
(* ------------------------------------------------------------------ *)

let rec race_cbs st ~race_barriers ~race_globals ~ctx ~entry out encl =
  let bad loc msg =
    out :=
      mkf ~rule:"domain-race" ~file:ctx.file loc
        (msg ^ " (under " ^ entry ^ ")")
      :: !out
  in
  let cbs =
    {
      on_mut =
        (fun loc root desc ->
          match root with
          | GlobalR g when not (SSet.mem g race_globals) ->
              bad loc ("parallel closure mutates top-level `" ^ g ^ "` via " ^ desc)
          | SharedR d ->
              bad loc ("parallel closure mutates " ^ d ^ " via " ^ desc)
          | _ -> ());
      on_call =
        (fun loc callee cargs ->
          if not (SSet.mem callee race_barriers) then
            match SMap.find_opt callee st.facts with
            | None -> ()
            | Some g ->
                let bad_globals = SSet.diff g.mut_globals race_globals in
                SSet.iter
                  (fun gl ->
                    bad loc
                      ("parallel closure calls `" ^ callee
                     ^ "`, which mutates top-level `" ^ gl ^ "`"))
                  bad_globals;
                List.iter
                  (fun (k, r) ->
                    if SSet.mem k g.mut_params then
                      match r with
                      | GlobalR gl when not (SSet.mem gl race_globals) ->
                          bad loc
                            ("parallel closure passes top-level `" ^ gl
                           ^ "` to `" ^ callee ^ "`, which mutates its " ^ k
                           ^ " argument")
                      | SharedR d ->
                          bad loc
                            ("parallel closure passes " ^ d ^ " to `" ^ callee
                           ^ "`, which mutates its " ^ k ^ " argument")
                      | _ -> ())
                  cargs)
        ;
      on_effect = (fun _ _ _ -> ());
      on_entry =
        (fun _ _ _ nested_args nested_env ->
          (* a nested parallel entry inside the closure: same checks *)
          List.iter
            (fun (_, a) ->
              if is_arrow a.exp_type then
                check_farg st ~race_barriers ~race_globals ~ctx ~entry out encl
                  nested_env a)
            nested_args);
      on_alloc = None;
      ref_def = None;
      ref_use = None;
      encl;
    }
  in
  cbs

and check_farg st ~race_barriers ~race_globals ~ctx ~entry out encl env a =
  let shared_env =
    IdentMap.mapi
      (fun id r ->
        match r with
        | GlobalR _ -> r
        | _ -> SharedR ("captured local `" ^ Ident.name id ^ "`"))
      env
  in
  let bad loc msg =
    out :=
      mkf ~rule:"domain-race" ~file:ctx.file loc
        (msg ^ " (under " ^ entry ^ ")")
      :: !out
  in
  let check_known_callee loc name supplied =
    match SMap.find_opt name st.facts with
    | Some g when not (SSet.mem name race_barriers) ->
        SSet.iter
          (fun gl ->
            bad loc
              ("`" ^ name ^ "` runs in parallel and mutates top-level `" ^ gl
             ^ "`"))
          (SSet.diff g.mut_globals race_globals);
        List.iter
          (fun (k, r) ->
            if SSet.mem k g.mut_params then
              match r with
              | GlobalR gl when SSet.mem gl race_globals -> ()
              | _ ->
                  bad loc
                    ("partial application shares its " ^ k ^ " argument, and `"
                   ^ name ^ "` mutates it"))
          supplied
    | _ -> ()
  in
  match a.exp_desc with
  | Texp_function _ ->
      let cbs = race_cbs st ~race_barriers ~race_globals ~ctx ~entry out encl in
      walk ctx cbs shared_env a
  | Texp_ident (p, _, _) -> check_known_callee a.exp_loc (canon ctx p) []
  | Texp_apply (fh, args) -> (
      match head_ident fh with
      | Some p ->
          let args_e =
            List.filter_map (fun (l, x) -> Option.map (fun x -> (l, x)) x) args
          in
          check_known_callee a.exp_loc (canon ctx p)
            (keyed_roots ctx shared_env args_e)
      | None -> ())
  | _ -> ()

let race_pass st ~race_barriers ~race_globals out =
  List.iter
    (fun e ->
      if not (SSet.mem e.e_encl race_barriers) then
        List.iter
          (fun (_, a) ->
            if is_arrow a.exp_type then
              check_farg st ~race_barriers ~race_globals ~ctx:e.e_ctx
                ~entry:e.e_name out e.e_encl e.e_env a)
          e.e_args)
    (List.rev st.entries)

(* ------------------------------------------------------------------ *)
(* Pass 3: purity frontiers                                           *)
(* ------------------------------------------------------------------ *)

let purity_pass st ~purity_barriers ~scope_fn out =
  SMap.iter
    (fun _ f ->
      match scope_fn f.ffile with
      | None -> ()
      | Some sc ->
          List.iter
            (fun mask ->
              if
                f.effects land mask <> 0
                && banned_effect ~scope:sc ~file:f.ffile mask
              then begin
                List.iter
                  (fun (m, name, loc) ->
                    if m = mask then
                      out :=
                        mkf ~rule:"impure" ~file:f.ffile loc
                          ("`" ^ name ^ "` (" ^ effect_desc mask ^ ") in `"
                         ^ f.fname ^ "`, whose scope bans it")
                        :: !out)
                  f.effect_sites;
                List.iter
                  (fun c ->
                    if not (SSet.mem c.callee purity_barriers) then
                      match SMap.find_opt c.callee st.facts with
                      | Some g when g.effects land mask <> 0 ->
                          let callee_banned =
                            match scope_fn g.ffile with
                            | Some gsc ->
                                banned_effect ~scope:gsc ~file:g.ffile mask
                            | None -> false
                          in
                          if not callee_banned then
                            out :=
                              mkf ~rule:"impure" ~file:f.ffile c.cloc
                                ("`" ^ f.fname ^ "` reaches a "
                               ^ effect_desc mask ^ " via `" ^ c.callee ^ "`")
                              :: !out
                      | _ -> ())
                  f.calls
              end)
            [ eff_rng; eff_wall; eff_stdout; eff_net ])
    st.facts

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let discover_cmts ~root =
  let out = ref [] in
  let rec walk_fs dir =
    if Sys.file_exists dir && Sys.is_directory dir then begin
      let entries = Sys.readdir dir in
      Array.sort String.compare entries;
      Array.iter
        (fun ent ->
          let p = Filename.concat dir ent in
          if Sys.is_directory p then walk_fs p
          else if Filename.check_suffix ent ".cmt" then out := p :: !out)
        entries
    end
  in
  List.iter
    (fun base ->
      walk_fs (Filename.concat base "lib");
      walk_fs (Filename.concat base "bin"))
    [ Filename.concat root "_build/default"; root ];
  List.sort String.compare !out

let compare_finding (a : finding) (b : finding) =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let apply_pragmas pragmas findings =
  let keep =
    List.filter
      (fun f ->
        if String.equal f.rule "bad-pragma" || String.equal f.rule "unused-pragma"
        then true
        else
          match
            List.find_opt
              (fun p ->
                String.equal p.p_file f.file
                && String.equal p.p_rule f.rule
                && (p.p_line = f.line || p.p_line = f.line - 1))
              pragmas
          with
          | Some p ->
              p.p_used <- true;
              false
          | None -> true)
      findings
  in
  let unused =
    List.filter_map
      (fun p ->
        if p.p_used then None
        else
          Some
            {
              rule = "unused-pragma";
              file = p.p_file;
              line = p.p_line;
              col = 0;
              message =
                "pragma allows `" ^ p.p_rule ^ "` but suppressed nothing";
            })
      pragmas
  in
  keep @ unused

let analyze ?sanctions ?hotpaths ?(scope_of = scope_of_rel) ~root ~cmt_paths ()
    =
  let sanctions =
    match sanctions with
    | Some s -> s
    | None ->
        load_sanctions
          ~path:(Filename.concat root "tools/analyze/sanctions.sexp")
  in
  let hotpaths =
    match hotpaths with
    | Some h -> h
    | None ->
        load_hotpaths ~path:(Filename.concat root "tools/analyze/hotpaths.sexp")
  in
  let pick kind =
    SSet.of_list
      (List.filter_map
         (fun s -> if s.s_kind = kind then Some s.s_name else None)
         sanctions)
  in
  let race_barriers = pick Race_barrier in
  let race_globals = pick Race_global in
  let purity_barriers = pick Purity_barrier in
  let st =
    {
      facts = SMap.empty;
      entries = [];
      pragmas = [];
      pre_findings = [];
      hot = SSet.of_list hotpaths;
    }
  in
  List.iter (fun p -> load_unit st ~root p) cmt_paths;
  SSet.iter
    (fun h ->
      if not (SMap.mem h st.facts) then
        Error.invalid_input ~where:"archpred-analyze"
          ("hot-path `" ^ h
         ^ "` names no known function; fix tools/analyze/hotpaths.sexp"))
    st.hot;
  fixpoint st ~race_barriers ~purity_barriers;
  let out = ref st.pre_findings in
  race_pass st ~race_barriers ~race_globals out;
  purity_pass st ~purity_barriers ~scope_fn:scope_of out;
  let filtered = apply_pragmas st.pragmas !out in
  List.sort_uniq compare_finding filtered

let errors (fs : finding list) = List.length fs

let to_json (f : finding) =
  Json.Obj
    [
      ("event", Json.String "finding");
      ("rule", Json.String f.rule);
      ("severity", Json.String "error");
      ("file", Json.String f.file);
      ("line", Json.Int f.line);
      ("col", Json.Int f.col);
      ("message", Json.String f.message);
    ]

let pp_finding ppf (f : finding) =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message
