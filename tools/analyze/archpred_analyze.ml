(* archpred_analyze: interprocedural analysis over the .cmt artifacts
   dune already built (see tools/analyze/analyze.mli).

   Exit codes follow Core.Error's CLI convention:
     0  clean
     2  findings, or usage              (Invalid_input)
     4  a cmt / registry file unreadable (Io_error)
     5  a registry file failed to parse  (Parse_error)

   With --json, output is JSON-lines: one `finding` record per result,
   then one `summary`; fatal errors emit a single `error` record. *)

module Error = Archpred_obs.Error
module Json = Archpred_obs.Json
module Analyze = Analyze_engine.Analyze

let usage =
  "usage: archpred_analyze [--root DIR] [--json] [--rules]\n\
   Loads every lib/ and bin/ .cmt under --root (default .), probing both\n\
   ROOT/_build/default and ROOT itself, and runs the domain-race,\n\
   hot-alloc and purity passes.  Registries live in tools/analyze/\n\
   (sanctions.sexp, hotpaths.sexp).  --rules prints the rule table."

let bad_usage what =
  raise (Error.Archpred (Error.Invalid_input { where = "archpred_analyze"; what }))

let parse_args argv =
  let root = ref "." and json = ref false and list_rules = ref false in
  let rec go = function
    | [] -> ()
    | "--root" :: dir :: rest ->
        root := dir;
        go rest
    | [ "--root" ] -> bad_usage "--root needs a directory argument"
    | "--json" :: rest ->
        json := true;
        go rest
    | "--rules" :: rest ->
        list_rules := true;
        go rest
    | ("--help" | "-h") :: _ ->
        print_endline usage;
        exit 0
    | arg :: _ -> bad_usage ("unknown argument " ^ arg)
  in
  go (List.tl (Array.to_list argv));
  (!root, !json, !list_rules)

let emit_json j = print_endline (Json.to_string j)

let report_error ~json e =
  if json then
    emit_json
      (Json.Obj
         [
           ("event", Json.String "error");
           ( "class",
             Json.String
               (match e with
               | Error.Invalid_input _ -> "invalid_input"
               | Error.Invalid_env _ -> "invalid_env"
               | Error.Io_error _ -> "io_error"
               | Error.Parse_error _ -> "parse_error"
               | Error.Infeasible _ -> "infeasible") );
           ("message", Json.String (Error.to_string e));
           ("exit_code", Json.Int (Error.exit_code e));
         ])
  else begin
    let msg = Error.to_string e in
    let prefixed =
      String.length msg >= 16
      && String.equal (String.sub msg 0 16) "archpred_analyze"
    in
    Printf.eprintf "%s%s\n" (if prefixed then "" else "archpred_analyze: ") msg
  end;
  exit (Error.exit_code e)

let () =
  let root, json, list_rules =
    try parse_args Sys.argv with Error.Archpred e -> report_error ~json:false e
  in
  if list_rules then begin
    List.iter
      (fun (id, descr) -> Printf.printf "%-14s %s\n" id descr)
      Analyze.rules;
    exit 0
  end;
  match
    Error.guard (fun () ->
        let cmt_paths = Analyze.discover_cmts ~root in
        if cmt_paths = [] then
          Error.invalid_input ~where:"archpred_analyze"
            ("no .cmt artifacts under " ^ root
           ^ " (run `dune build` first, or pass --root)");
        Analyze.analyze ~root ~cmt_paths ())
  with
  | Result.Error e -> report_error ~json e
  | Ok findings ->
      let errors = Analyze.errors findings in
      if json then begin
        List.iter (fun f -> emit_json (Analyze.to_json f)) findings;
        emit_json
          (Json.Obj
             [ ("event", Json.String "summary"); ("errors", Json.Int errors) ])
      end
      else begin
        List.iter (fun f -> Format.printf "%a@." Analyze.pp_finding f) findings;
        if errors > 0 then
          Printf.printf "archpred_analyze: %d finding(s)\n" errors
      end;
      if errors > 0 then
        exit
          (Error.exit_code
             (Error.Invalid_input
                { where = "archpred_analyze"; what = "findings" }))
