; Zero-alloc hot-path manifest for archpred-analyze.  Every function
; named here is checked for allocation sites (closures, tuples, records,
; constructor applications, arrays, partial application, escaping refs,
; @@/|> indirection).  Naming a function that does not exist fails the
; run loudly, so renames cannot silently drop coverage.

(hot-path Rbf.Batch_kernel.set_query)
(hot-path Rbf.Batch_kernel.load_queries)
(hot-path Rbf.Batch_kernel.eval_into)
(hot-path Core.Memo.probe_batch)
(hot-path Core.Memo.commit)
(hot-path Serve_net.Daemon.bucket)
(hot-path Serve_net.Daemon.bucket_from)

; Streaming-refit kernels: one rank-1 Gram/moment push per merged
; journal row.  The push is the per-row cost the streaming schedule
; pays instead of a from-scratch refit, so it must not allocate.
(hot-path Linalg.Incremental_ls.add_row)
(hot-path Rbf.Subset_scorer.add_row)
