(* archpred_lint: lint the repo's OCaml sources for determinism,
   numerical-safety and purity invariants (see tools/lint/lint.mli).

   Exit codes follow Core.Error's CLI convention so tooling can tell
   outcomes apart:
     0  clean (or warnings only)
     2  lint violations found, or usage  (Invalid_input)
     4  a source file could not be read  (Io_error)
     5  a source file failed to parse    (Parse_error)

   With --json, output is JSON-lines: one `finding` record per
   violation, then one `summary`; fatal errors emit a single `error`
   record carrying the same class and exit code. *)

module Error = Archpred_obs.Error
module Json = Archpred_obs.Json
module Lint = Lint_engine.Lint

let usage =
  "usage: archpred_lint [--root DIR] [--json] [--warn RULE] [--rules] [FILE...]\n\
   Scans lib/ bin/ bench/ test/ tools/ under --root (default .), or just the\n\
   given FILEs (scoped by their path prefix). --warn downgrades a rule\n\
   to a non-fatal warning; --rules prints the rule table and exits."

let bad_usage what = raise (Error.Archpred (Error.Invalid_input { where = "archpred_lint"; what }))

let parse_args argv =
  let root = ref "." and json = ref false and warn = ref [] in
  let files = ref [] and list_rules = ref false in
  let rec go = function
    | [] -> ()
    | "--root" :: dir :: rest ->
        root := dir;
        go rest
    | [ "--root" ] -> bad_usage "--root needs a directory argument"
    | "--json" :: rest ->
        json := true;
        go rest
    | "--warn" :: rule :: rest ->
        if not (List.mem_assoc rule Lint.rules) then
          bad_usage ("--warn: unknown rule `" ^ rule ^ "`");
        warn := rule :: !warn;
        go rest
    | [ "--warn" ] -> bad_usage "--warn needs a rule argument"
    | "--rules" :: rest ->
        list_rules := true;
        go rest
    | ("--help" | "-h") :: _ ->
        print_endline usage;
        exit 0
    | arg :: rest ->
        if String.length arg > 0 && arg.[0] = '-' then
          bad_usage ("unknown option " ^ arg);
        files := arg :: !files;
        go rest
  in
  go (List.tl (Array.to_list argv));
  (!root, !json, !warn, List.rev !files, !list_rules)

let emit_json j = print_endline (Json.to_string j)

let report_error ~json e =
  if json then
    emit_json
      (Json.Obj
         [
           ("event", Json.String "error");
           ( "class",
             Json.String
               (match e with
               | Error.Invalid_input _ -> "invalid_input"
               | Error.Invalid_env _ -> "invalid_env"
               | Error.Io_error _ -> "io_error"
               | Error.Parse_error _ -> "parse_error"
               | Error.Infeasible _ -> "infeasible") );
           ("message", Json.String (Error.to_string e));
           ("exit_code", Json.Int (Error.exit_code e));
         ])
  else begin
    let msg = Error.to_string e in
    let prefixed =
      String.length msg >= 13 && String.equal (String.sub msg 0 13) "archpred_lint"
    in
    Printf.eprintf "%s%s\n" (if prefixed then "" else "archpred_lint: ") msg
  end;
  exit (Error.exit_code e)

let () =
  let root, json, warn, files, list_rules =
    try parse_args Sys.argv
    with Error.Archpred e -> report_error ~json:false e
  in
  if list_rules then begin
    List.iter (fun (id, descr) -> Printf.printf "%-14s %s\n" id descr) Lint.rules;
    exit 0
  end;
  match
    Error.guard (fun () ->
        if files = [] then Lint.scan_tree ~warn ~root ()
        else
          List.concat_map
            (fun rel ->
              let scope =
                match Lint.scope_of_rel rel with
                | Some s -> s
                | None ->
                    Error.invalid_input ~where:"archpred_lint"
                      (rel
                     ^ ": cannot infer scope (path must start with \
                        lib/, bin/, bench/, test/ or tools/)")
              in
              Lint.scan_file ~scope ~warn ~root rel)
            files)
  with
  | Result.Error e -> report_error ~json e
  | Ok findings ->
      let errors = Lint.errors findings and warns = Lint.warnings findings in
      if json then begin
        List.iter (fun f -> emit_json (Lint.to_json f)) findings;
        emit_json
          (Json.Obj
             [
               ("event", Json.String "summary");
               ("errors", Json.Int errors);
               ("warnings", Json.Int warns);
             ])
      end
      else begin
        List.iter
          (fun f -> Format.printf "%a@." Lint.pp_finding f)
          findings;
        if errors > 0 || warns > 0 then
          Printf.printf "archpred_lint: %d error(s), %d warning(s)\n" errors
            warns
      end;
      if errors > 0 then
        exit
          (Error.exit_code
             (Error.Invalid_input
                { where = "archpred_lint"; what = "violations" }))
