module Error = Archpred_obs.Error
module Json = Archpred_obs.Json

type severity = Error | Warn

type finding = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

type scope = Lib | Bin | Bench | Test | Tools

let scope_of_rel rel =
  match String.split_on_char '/' rel with
  | "lib" :: _ -> Some Lib
  | "bin" :: _ -> Some Bin
  | "bench" :: _ -> Some Bench
  | "test" :: _ -> Some Test
  | "tools" :: _ -> Some Tools
  | _ -> None

let rules =
  [
    ( "random-global",
      "global Random state (Random.self_init, Random.int, ...) anywhere \
       but Stats.Rng; all randomness must flow from an explicit seed" );
    ( "poly-compare",
      "polymorphic compare/Stdlib.compare in model code; use Float.compare, \
       Int.compare, String.compare or a per-type comparator" );
    ( "hashtbl-order",
      "Hashtbl.iter/Hashtbl.fold in result-path code; iteration order is \
       unspecified, use Stats.Tbl sorted helpers" );
    ( "wall-clock",
      "wall-clock reads (Unix.gettimeofday, Unix.time, Sys.time) outside \
       lib/obs and bench/; use the monotonic clock via Archpred_obs" );
    ( "stdout-print",
      "direct stdout printing in lib/ (print_string, Printf.printf, \
       Format.printf); route output through an Archpred_obs sink or a \
       caller-supplied formatter" );
    ("exit", "exit outside bin/; libraries must raise, not terminate");
    ( "unsafe-cast",
      "Obj.* or Marshal.* breaks abstraction and portable persistence; \
       use typed serialisation (Persist/Checkpoint)" );
    ( "float-lit-eq",
      "(=)/(<>) against a float literal (or a float-literal pattern); use \
       Float.equal or an explicit tolerance" );
    ( "catchall-exn",
      "catch-all exception handler can swallow Fault.Injected or \
       Parallel.Deadline_exceeded; match specific exceptions or re-raise" );
    ( "missing-mli",
      "every module under lib/ must have an interface (.mli) so the \
       public surface is reviewed, not accidental" );
    ( "unsafe-index",
      "bounds-unchecked Bigarray / Float.Array accessors (unsafe_get, \
       unsafe_set) outside the batch kernel; only lib/rbf/batch_kernel.ml \
       may skip bounds checks, behind its own validation" );
    ( "unix-net",
      "Unix sockets and raw fd I/O (socket, bind, listen, accept, select, \
       read, write, ...) outside lib/serve_net/; the service layer owns \
       every nondeterministic network edge so result paths stay pure" );
  ]

let rule_known r = List.mem_assoc r rules

(* ------------------------------------------------------------------ *)
(* Forbidden identifiers                                              *)
(* ------------------------------------------------------------------ *)

(* A use of [Stdlib.exit] and a bare [exit] are the same thing; compare
   normalised paths. *)
let normalize = function "Stdlib" :: rest -> rest | parts -> parts

let stdout_printers =
  [
    "print_string";
    "print_endline";
    "print_newline";
    "print_int";
    "print_float";
    "print_char";
    "print_bytes";
  ]

let ident_rule ~scope parts =
  let in_scope scopes = List.mem scope scopes in
  match normalize parts with
  | "Random" :: _ ->
      Some
        ( "random-global",
          "use of the global Random generator (`"
          ^ String.concat "." parts
          ^ "`); draw from Stats.Rng with an explicit seed" )
  | [ "compare" ] when in_scope [ Lib; Bench; Tools ] ->
      Some
        ( "poly-compare",
          "polymorphic `compare`; floats compare bitwise-unordered under it \
           -- use Float.compare / Int.compare / String.compare" )
  | [ "Pervasives"; "compare" ] when in_scope [ Lib; Bench; Tools ] ->
      Some ("poly-compare", "polymorphic `Pervasives.compare`")
  | [ "Hashtbl"; ("iter" | "fold") ] when in_scope [ Lib; Bench; Tools ] ->
      Some
        ( "hashtbl-order",
          "`" ^ String.concat "." parts
          ^ "` iterates in unspecified order; use Stats.Tbl.sorted_bindings \
             / iter_sorted / fold_sorted" )
  | [ "Unix"
    ; ( "socket" | "socketpair" | "bind" | "listen" | "accept" | "connect"
      | "select" | "recv" | "recvfrom" | "send" | "sendto" | "send_substring"
      | "shutdown" | "setsockopt" | "getsockopt" | "getsockname"
      | "getpeername" | "getaddrinfo" | "gethostbyname" | "inet_addr_of_string"
      | "open_connection" | "establish_server" | "set_nonblock"
      | "clear_nonblock" | "read" | "write" | "single_write"
      | "write_substring" ) ]
    when in_scope [ Lib ] ->
      Some
        ( "unix-net",
          "`" ^ String.concat "." parts
          ^ "` does network / raw-fd I/O from library code; only \
             lib/serve_net/ owns that edge" )
  | [ "Unix"; ("gettimeofday" | "time" | "times") ] | [ "Sys"; "time" ]
    when in_scope [ Lib; Bin; Test; Tools ] ->
      Some
        ( "wall-clock",
          "wall-clock read `" ^ String.concat "." parts
          ^ "` is not monotonic (NTP slew); use Archpred_obs.now_ns" )
  | [ f ] when List.mem f stdout_printers && in_scope [ Lib ] ->
      Some ("stdout-print", "`" ^ f ^ "` writes to stdout from library code")
  | [ "Printf"; "printf" ]
  | [ "Format"; ("printf" | "print_string" | "print_newline" | "print_float") ]
    when in_scope [ Lib ] ->
      Some
        ( "stdout-print",
          "`" ^ String.concat "." parts ^ "` writes to stdout from library \
                                           code" )
  | [ "exit" ] when in_scope [ Lib; Bench; Test ] ->
      Some ("exit", "`exit` terminates the process from non-bin code")
  | "Obj" :: _ ->
      Some ("unsafe-cast", "`" ^ String.concat "." parts ^ "` defeats typing")
  | "Marshal" :: _ ->
      Some
        ( "unsafe-cast",
          "`" ^ String.concat "." parts
          ^ "` is unversioned binary persistence; use Persist/Checkpoint" )
  (* Bounds-unchecked accessors on Bigarray / Float.Array / Bytes.
     Plain [Array.unsafe_*] stays legal (hot linalg loops use it after
     explicit dimension checks); the raw-memory and byte-string
     variants are confined to the sanctioned batch kernels, which
     validate their index ranges once per batch. *)
  | normalized when in_scope [ Lib ] -> (
      match List.rev normalized with
      | last :: mods
        when String.starts_with ~prefix:"unsafe_" last
             && (List.exists
                   (fun m ->
                     List.mem m
                       [ "Bigarray"; "Array1"; "Array2"; "Array3"; "Genarray" ])
                   mods
                || List.mem "Bytes" mods
                ||
                match mods with "Array" :: "Float" :: _ -> true | _ -> false)
        ->
          Some
            ( "unsafe-index",
              "`" ^ String.concat "." parts
              ^ "` skips bounds checks; only the sanctioned batch \
                 kernels (rbf/batch_kernel, sim/batch, core/memo) may \
                 do that" )
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* AST walk                                                           *)
(* ------------------------------------------------------------------ *)

open Parsetree

let pos_of (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

let rec is_float_lit e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident ("~-." | "~-" | "~+." | "~+"); _ }; _ },
        [ (_, a) ] ) ->
      is_float_lit a
  | _ -> false

(* A case pattern that catches every exception: [_], a variable, or an
   alias/or-pattern reducing to one.  Returns the bound name if any. *)
let rec catchall p =
  match p.ppat_desc with
  | Ppat_any -> Some None
  | Ppat_var v -> Some (Some v.txt)
  | Ppat_alias (inner, v) -> (
      match catchall inner with Some _ -> Some (Some v.txt) | None -> None)
  | Ppat_or (a, b) -> (
      match catchall a with Some r -> Some r | None -> catchall b)
  | _ -> None

(* For [match ... with exception p -> ...] cases. *)
let rec exception_catchall p =
  match p.ppat_desc with
  | Ppat_exception inner -> catchall inner
  | Ppat_or (a, b) -> (
      match exception_catchall a with
      | Some r -> Some r
      | None -> exception_catchall b)
  | _ -> None

(* Does [body] re-raise the variable [name] (raise / raise_notrace /
   Printexc.raise_with_backtrace)?  A handler that logs and re-raises is
   not a swallower. *)
let reraises name body =
  let found = ref false in
  let expr (it : Ast_iterator.iterator) e =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
        match normalize (Longident.flatten txt) with
        | [ "raise" ] | [ "raise_notrace" ] | [ "Printexc"; "raise_with_backtrace" ]
          ->
            if
              List.exists
                (fun (_, a) ->
                  match a.pexp_desc with
                  | Pexp_ident { txt = Lident v; _ } -> String.equal v name
                  | _ -> false)
                args
            then found := true
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it body;
  !found

let collect ~scope ast_kind =
  let acc = ref [] in
  let add loc rule message =
    let line, col = pos_of loc in
    acc := (rule, line, col, message) :: !acc
  in
  let check_handler_case ~exception_only (c : case) =
    let hit =
      if exception_only then exception_catchall c.pc_lhs else catchall c.pc_lhs
    in
    match (hit, c.pc_guard) with
    | Some name, None ->
        let swallows =
          match name with None -> true | Some v -> not (reraises v c.pc_rhs)
        in
        if swallows then
          add c.pc_lhs.ppat_loc "catchall-exn"
            "catch-all exception handler (would swallow Fault.Injected / \
             Parallel.Deadline_exceeded); match specific exceptions or \
             re-raise"
    | _ -> ()
  in
  let expr (it : Ast_iterator.iterator) e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
        match ident_rule ~scope (Longident.flatten txt) with
        | Some (rule, msg) -> add loc rule msg
        | None -> ())
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = Lident ("=" | "<>" | "==" | "!="); _ }; _ }, args)
      when List.exists (fun (_, a) -> is_float_lit a) args ->
        add e.pexp_loc "float-lit-eq"
          "equality against a float literal; use Float.equal or a tolerance"
    | Pexp_try (_, cases) ->
        List.iter (check_handler_case ~exception_only:false) cases
    | Pexp_match (_, cases) ->
        List.iter (check_handler_case ~exception_only:true) cases
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let pat (it : Ast_iterator.iterator) p =
    (match p.ppat_desc with
    | Ppat_constant (Pconst_float _)
    | Ppat_interval (Pconst_float _, _)
    | Ppat_interval (_, Pconst_float _) ->
        add p.ppat_loc "float-lit-eq"
          "float literal in a pattern matches by exact equality"
    | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let it = { Ast_iterator.default_iterator with expr; pat } in
  (match ast_kind with
  | `Structure s -> it.structure it s
  | `Signature s -> it.signature it s);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Pragmas                                                            *)
(* ------------------------------------------------------------------ *)

type pragma = { p_line : int; p_rule : string; mutable p_used : bool }

let strip s = String.trim s

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* Accept "-", "--" or a UTF-8 em-dash as the rule/reason separator. *)
let strip_dashes s =
  let n = String.length s in
  let i = ref 0 in
  let progressing = ref true in
  while !progressing && !i < n do
    if s.[!i] = '-' then incr i
    else if !i + 2 < n && s.[!i] = '\xe2' && s.[!i + 1] = '\x80' then i := !i + 3
    else progressing := false
  done;
  String.sub s !i (n - !i)

(* Parse pragma comments.  Grammar, one pragma per comment:
     (* archpred-lint: allow <rule> -- reason *)
   Pragmas are read from the lexer's comment list (not raw lines), so
   pragma-shaped text inside string literals is inert.  Malformed
   pragmas (missing "allow", unknown rule, empty reason) are reported
   as [bad-pragma] findings rather than silently ignored. *)
let scan_pragmas comments =
  let pragmas = ref [] and bad = ref [] in
  List.iter
    (fun (text, (loc : Location.t)) ->
      let lineno = loc.loc_start.pos_lnum in
      let key = "archpred-lint:" in
      let klen = String.length key in
      (* A pragma is a comment *starting* with the key (modulo leading
         whitespace); comments that merely mention the grammar mid-text
         (docs quoting `(* archpred-lint: ... *)`) are inert. *)
      match
        let t = strip text in
        if String.length t >= klen && String.equal (String.sub t 0 klen) key
        then Some t
        else None
      with
      | None -> ()
      | Some t ->
          let rest = strip (String.sub t klen (String.length t - klen)) in
          if not (starts_with ~prefix:"allow" rest) then
            bad := (lineno, "pragma must be `allow <rule> -- reason`") :: !bad
          else
            let rest = strip (String.sub rest 5 (String.length rest - 5)) in
            let rule, after =
              match String.index_opt rest ' ' with
              | Some j ->
                  ( String.sub rest 0 j,
                    String.sub rest (j + 1) (String.length rest - j - 1) )
              | None -> (rest, "")
            in
            let rule =
              (* tolerate `allow rule--reason` with no space *)
              match String.index_opt rule '-' with
              | Some j when j > 0 && j < String.length rule - 1 && rule.[j + 1] = '-'
                ->
                  String.sub rule 0 j
              | _ -> rule
            in
            if not (rule_known rule) then
              bad := (lineno, "unknown rule `" ^ rule ^ "` in pragma") :: !bad
            else
              let reason =
                let r = strip (strip_dashes (strip after)) in
                if
                  String.length r >= 2
                  && String.equal (String.sub r (String.length r - 2) 2) "*)"
                then strip (String.sub r 0 (String.length r - 2))
                else r
              in
              if String.equal reason "" then
                bad :=
                  (lineno, "pragma for `" ^ rule ^ "` has no reason text") :: !bad
              else
                pragmas :=
                  { p_line = lineno; p_rule = rule; p_used = false } :: !pragmas)
    comments;
  (List.rev !pragmas, List.rev !bad)

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

let parse ~filename src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf filename;
  let intf = Filename.check_suffix filename ".mli" in
  let where = filename in
  try
    let ast =
      if intf then `Signature (Parse.interface lexbuf)
      else `Structure (Parse.implementation lexbuf)
    in
    (* Parse.wrap ran Lexer.init, so this is exactly this file's list. *)
    (ast, Lexer.comments ())
  with
  | Syntaxerr.Error err ->
      let loc = Syntaxerr.location_of_error err in
      Error.parse_error ~where ~line:(fst (pos_of loc)) "syntax error"
  | Lexer.Error (_, loc) ->
      Error.parse_error ~where ~line:(fst (pos_of loc)) "lexical error"

(* ------------------------------------------------------------------ *)
(* Sanctioned modules                                                 *)
(* ------------------------------------------------------------------ *)

let path_has_suffix rel suffix =
  String.length rel >= String.length suffix
  && String.equal
       (String.sub rel (String.length rel - String.length suffix)
          (String.length suffix))
       suffix

let path_has_prefix rel prefix = starts_with ~prefix rel

(* Per-rule module-level sanctions: the one place allowed to own the
   construct the rule bans everywhere else. *)
let sanctioned rule rel =
  match rule with
  | "random-global" ->
      path_has_suffix rel "stats/rng.ml" || path_has_suffix rel "stats/rng.mli"
  (* The serve_net daemon legitimately reads the clock (deadlines, select
     timeouts) and owns the socket layer; nothing it returns feeds a
     result path, which archpred-lint keeps true everywhere else. *)
  | "wall-clock" ->
      path_has_prefix rel "lib/obs/" || path_has_prefix rel "lib/serve_net/"
  | "unix-net" -> path_has_prefix rel "lib/serve_net/"
  | "unsafe-index" ->
      path_has_suffix rel "rbf/batch_kernel.ml"
      || path_has_suffix rel "sim/batch.ml"
      || path_has_suffix rel "core/memo.ml"
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let compare_finding a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let scan_string ~scope ?rel ?mli_exists ?(warn = []) ~filename src =
  let rel = match rel with Some r -> r | None -> filename in
  let ast, comments = parse ~filename src in
  let pragmas, bad_pragmas = scan_pragmas comments in
  let raw = collect ~scope ast in
  let raw =
    match (scope, mli_exists) with
    | Lib, Some false when Filename.check_suffix filename ".ml" ->
        ("missing-mli", 1, 0, "module has no .mli interface") :: raw
    | _ -> raw
  in
  let raw = List.filter (fun (rule, _, _, _) -> not (sanctioned rule rel)) raw in
  let kept =
    List.filter
      (fun (rule, line, _, _) ->
        match
          List.find_opt
            (fun p ->
              String.equal p.p_rule rule
              && (p.p_line = line || p.p_line = line - 1))
            pragmas
        with
        | Some p ->
            p.p_used <- true;
            false
        | None -> true)
      raw
  in
  let severity_of rule = if List.mem rule warn then Warn else Error in
  let findings =
    List.map
      (fun (rule, line, col, message) ->
        { rule; severity = severity_of rule; file = filename; line; col; message })
      kept
    @ List.filter_map
        (fun p ->
          if p.p_used then None
          else
            Some
              {
                rule = "unused-pragma";
                severity = Error;
                file = filename;
                line = p.p_line;
                col = 0;
                message =
                  "pragma allows `" ^ p.p_rule
                  ^ "` but suppresses nothing on this or the next line";
              })
        pragmas
    @ List.map
        (fun (line, msg) ->
          {
            rule = "bad-pragma";
            severity = Error;
            file = filename;
            line;
            col = 0;
            message = msg;
          })
        bad_pragmas
  in
  List.sort compare_finding findings

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> s
  | exception Sys_error msg -> Error.io_error ~path msg

let scan_file ~scope ?warn ~root rel =
  let path = Filename.concat root rel in
  let src = read_file path in
  let mli_exists =
    if scope = Lib && Filename.check_suffix rel ".ml" then
      Some (Sys.file_exists (path ^ "i"))
    else None
  in
  scan_string ~scope ~rel ?mli_exists ?warn ~filename:rel src

let scan_tree ?warn ~root () =
  let out = ref [] in
  let rec walk_dir scope rel =
    let path = Filename.concat root rel in
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.iter
      (fun name ->
        let rel' = rel ^ "/" ^ name in
        let path' = Filename.concat root rel' in
        if Sys.is_directory path' then begin
          if
            String.length name > 0
            && name.[0] <> '.'
            && name.[0] <> '_'
            && not (String.equal name "lint_fixtures")
            && not (String.equal name "analyze_fixtures")
          then walk_dir scope rel'
        end
        else if
          Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"
        then out := scan_file ~scope ?warn ~root rel' :: !out)
      entries
  in
  List.iter
    (fun (dir, scope) ->
      if Sys.file_exists (Filename.concat root dir) then walk_dir scope dir)
    [
      ("lib", Lib);
      ("bin", Bin);
      ("bench", Bench);
      ("test", Test);
      ("tools", Tools);
    ];
  List.sort compare_finding (List.concat !out)

let errors fs = List.length (List.filter (fun f -> f.severity = Error) fs)
let warnings fs = List.length (List.filter (fun f -> f.severity = Warn) fs)

let to_json f =
  Json.Obj
    [
      ("event", Json.String "finding");
      ("rule", Json.String f.rule);
      ("severity", Json.String (match f.severity with Error -> "error" | Warn -> "warn"));
      ("file", Json.String f.file);
      ("line", Json.Int f.line);
      ("col", Json.Int f.col);
      ("message", Json.String f.message);
    ]

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s%s" f.file f.line f.col f.rule f.message
    (match f.severity with Warn -> " (warning)" | Error -> "")
