(** [archpred-lint]: repo-specific static analysis over the OCaml AST.

    The paper's methodology requires a trained model to be a pure
    function of (space, seed, n, response): parallel training and
    checkpoint resume are tested bit-identical, and one stray
    [Random.self_init], polymorphic [compare] on a float-bearing value,
    or unordered [Hashtbl.iter] in a result path silently breaks that
    promise.  This module parses every [.ml]/[.mli] with
    [compiler-libs.common] ([Parse] + [Ast_iterator]) and enforces the
    determinism / numerical-safety / purity rules listed in {!rules}.

    Violations can be suppressed per site with a pragma comment on the
    same line or the line directly above:

    {v (* archpred-lint: allow <rule> -- reason *) v}

    The reason text is mandatory, unknown rule names are rejected, and a
    pragma that suppresses nothing is itself reported (rule
    [unused-pragma]) so stale annotations cannot accumulate. *)

type severity = Error | Warn

type finding = {
  rule : string;
  severity : severity;
  file : string;  (** path as given to the scanner *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler diagnostics *)
  message : string;
}

(** Which top-level directory a file belongs to; decides which rules
    apply (e.g. wall-clock reads are legal in [bench/], [exit] is legal
    in [bin/]).  [Tools] covers the static-analysis tooling itself
    (tools/lint, tools/analyze): determinism rules (random-global,
    poly-compare, hashtbl-order, wall-clock) apply as in [Lib], while
    CLI conveniences (stdout printing, [exit]) stay legal as in
    [Bin]. *)
type scope = Lib | Bin | Bench | Test | Tools

val scope_of_rel : string -> scope option
(** Classify a repo-relative path ["lib/…"], ["bin/…"], ["bench/…"],
    ["test/…"], ["tools/…"]; [None] for anything else. *)

val rules : (string * string) list
(** [(id, one-line description)] for every enforced rule, in a stable
    order (drives the README table and pragma validation). *)

val scan_string :
  scope:scope ->
  ?rel:string ->
  ?mli_exists:bool ->
  ?warn:string list ->
  filename:string ->
  string ->
  finding list
(** Lint one compilation unit given as a string.  [filename] is used for
    diagnostics and to decide implementation vs interface syntax;
    [rel] (default [filename]) is the repo-relative path used for
    sanctioned-module checks; [mli_exists] feeds the [missing-mli] rule
    (ignored unless [scope = Lib] and [filename] ends in [.ml]);
    rules listed in [warn] are downgraded from [Error] to [Warn].
    Findings come back sorted by (line, col, rule).

    @raise Archpred_obs.Error.Archpred [Parse_error] if the source does
    not parse. *)

val scan_file :
  scope:scope -> ?warn:string list -> root:string -> string -> finding list
(** [scan_file ~scope ~root rel] reads [root ^ "/" ^ rel] and lints it;
    for [lib/] implementations the sibling [.mli] existence check is
    performed on disk.
    @raise Archpred_obs.Error.Archpred [Io_error] if unreadable. *)

val scan_tree : ?warn:string list -> root:string -> unit -> finding list
(** Walk [lib/], [bin/], [bench/], [test/], [tools/] under [root]
    (deterministic order; skipping [_*], dot-dirs, [lint_fixtures/] and
    [analyze_fixtures/]) and lint every [.ml]/[.mli].  Findings are
    sorted by (file, line, col, rule). *)

val errors : finding list -> int
val warnings : finding list -> int

val to_json : finding -> Archpred_obs.Json.t
(** One finding as a JSON object (for the JSON-lines report mode). *)

val pp_finding : Format.formatter -> finding -> unit
(** Human rendering: [file:line:col: [rule] message]. *)
