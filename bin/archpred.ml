(* archpred — command-line interface to the library.

   Subcommands:
     benchmarks   list the synthetic SPEC CPU2000 stand-in workloads
     simulate     run the cycle-level simulator on one benchmark/config
     sample       draw a discrepancy-optimised latin hypercube sample
     train        build an RBF CPI model for a benchmark and report accuracy
                  (--shards K fans the build out over worker processes)
     worker       process work units of a sharded run (train --shards)
     serve        batched-prediction load test against a saved model
     served       long-running prediction daemon on a Unix/TCP socket
     search       model-driven search for the best design point
     reproduce    regenerate the paper's tables and figures

   Every subcommand accepts --trace (span-tree timing summary on stdout
   after the run) and --metrics FILE (stream spans/counters/gauges to FILE
   as JSON lines). *)

open Cmdliner

module Stats = Archpred_stats
module Design = Archpred_design
module Sim = Archpred_sim
module Workloads = Archpred_workloads
module Core = Archpred_core
module Experiments = Archpred_experiments
module Obs = Archpred_obs
module Serve_net = Archpred_serve_net
module Shard = Archpred_shard

(* ---------- observability & error plumbing ---------- *)

let trace_t =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Print a span-tree timing summary (with counters and gauges) \
           after the run.")

let metrics_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Stream observability events (spans, counters, gauges) to FILE \
           as JSON lines.")

(* Run one subcommand body with an observability handle.  Archpred errors
   (invalid input, bad environment, I/O, parse, infeasible) print as one
   line on stderr and map to distinct exit codes (2-6); cmdliner keeps
   124/125 for itself. *)
let with_obs ~trace ~metrics f =
  let oc =
    match metrics with
    | None -> None
    | Some path -> (
        match open_out path with
        | oc -> Some oc
        | exception Sys_error msg ->
            let e = Obs.Error.Io_error { path; what = msg } in
            Format.eprintf "archpred: %s@." (Obs.Error.to_string e);
            exit (Obs.Error.exit_code e))
  in
  let obs =
    match oc with
    | Some oc -> Obs.create ~sink:(Obs.Sink.jsonl_channel oc) ()
    | None -> if trace then Obs.create () else Obs.null
  in
  let finish () =
    Obs.close obs;
    Option.iter close_out oc;
    if trace then Obs.report obs Format.std_formatter
  in
  match f obs with
  | v ->
      finish ();
      v
  | exception Obs.Error.Archpred e ->
      Obs.close obs;
      Option.iter close_out oc;
      Format.eprintf "archpred: %s@." (Obs.Error.to_string e);
      exit (Obs.Error.exit_code e)

(* Parallelism for every training stage: the ARCHPRED_DOMAINS environment
   variable overrides the machine default.  Trained models are identical
   for every value (see Stats.Parallel); only wall-clock changes.  Parsing
   is strict, so it must run inside [with_obs] to map a bad value to the
   Invalid_env exit code. *)
let env_domains () = Stats.Parallel.env_domains ()

let base_config ?(obs = Obs.null) ~seed () =
  let c =
    Core.Config.default |> Core.Config.with_seed seed |> Core.Config.with_obs obs
  in
  match env_domains () with
  | None -> c
  | Some d -> Core.Config.with_domains d c

(* ---------- shared arguments ---------- *)

let benchmark_arg =
  let parse s =
    match Workloads.Spec2000_extra.find s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown benchmark %S (try `archpred benchmarks')"
                s))
  in
  let print ppf (p : Workloads.Profile.t) =
    Format.pp_print_string ppf p.name
  in
  Arg.conv (parse, print)

let bench_t =
  Arg.(
    required
    & opt (some benchmark_arg) None
    & info [ "b"; "benchmark" ] ~docv:"NAME"
        ~doc:"Benchmark workload (e.g. mcf, 255.vortex).")

let seed_t =
  Arg.(value & opt int 2006 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let trace_length_t =
  Arg.(
    value
    & opt int 60_000
    & info [ "trace-length" ] ~docv:"N" ~doc:"Synthetic trace length.")

let sample_size_t =
  Arg.(
    value
    & opt int 90
    & info [ "n"; "sample-size" ] ~docv:"N" ~doc:"Training sample size.")

(* Crash-safe training: --checkpoint journals each completed simulation;
   --resume replays an existing journal instead of starting fresh.  The
   two flags are shared by every subcommand that trains a model. *)
let checkpoint_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Journal each completed simulation to $(docv) (CRC-framed JSON \
           lines, fsynced in batches).  If training is interrupted — \
           crash, SIGINT, out of memory, or an infeasible design point — \
           rerunning with $(b,--resume) replays the journal and \
           re-simulates only the missing points, producing a bit-identical \
           model.  Without $(b,--resume), an existing journal at $(docv) \
           is overwritten.")

let resume_t =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Replay the valid records of an existing $(b,--checkpoint) \
           journal (skipping its torn tail, if any) before simulating.  A \
           journal written by a different run configuration is rejected.")

(* Resolve the two flags into the config, rejecting --resume alone. *)
let with_checkpoint ~checkpoint ~resume config =
  match (checkpoint, resume) with
  | None, true ->
      Obs.Error.invalid_input ~where:"archpred"
        "--resume requires --checkpoint FILE"
  | None, false -> config
  | Some path, resume ->
      config
      |> Core.Config.with_checkpoint path
      |> Core.Config.with_resume resume

(* ---------- benchmarks ---------- *)

let benchmarks_cmd =
  let run trace metrics =
    with_obs ~trace ~metrics @@ fun _obs ->
    Format.printf "the paper's eight benchmarks:@.";
    List.iter
      (fun (p : Workloads.Profile.t) ->
        Format.printf "  %-12s  %s@." p.name p.description)
      Workloads.Spec2000.all;
    Format.printf "@.extras (not part of the reproduction):@.";
    List.iter
      (fun (p : Workloads.Profile.t) ->
        Format.printf "  %-12s  %s@." p.name p.description)
      Workloads.Spec2000_extra.all
  in
  Cmd.v (Cmd.info "benchmarks" ~doc:"List available benchmark workloads")
    Term.(const run $ trace_t $ metrics_t)

(* ---------- simulate ---------- *)

let simulate_cmd =
  let nine name default doc =
    Arg.(value & opt int default & info [ name ] ~docv:"V" ~doc)
  in
  let run bench trace_length seed pipe rob iq lsq l2s l2l il1 dl1 dl1l trace
      metrics =
    with_obs ~trace ~metrics @@ fun obs ->
    let trace_ =
      Workloads.Generator.generate ~seed bench ~length:trace_length
    in
    let cfg =
      Sim.Config.make ~pipe_depth:pipe ~rob_size:rob ~iq_size:iq ~lsq_size:lsq
        ~l2_size:l2s ~l2_latency:l2l ~il1_size:il1 ~dl1_size:dl1
        ~dl1_latency:dl1l ()
    in
    let result =
      Obs.with_span obs "simulate.run" @@ fun () ->
      Obs.incr obs "sim.runs";
      Obs.count obs "sim.instructions" trace_length;
      Sim.Processor.run cfg trace_
    in
    Format.printf "%a@.@.%a@." Sim.Config.pp cfg Sim.Processor.pp_result result
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate one benchmark at one configuration")
    Term.(
      const run $ bench_t $ trace_length_t $ seed_t
      $ nine "pipe-depth" 14 "Pipeline depth."
      $ nine "rob" 80 "Reorder-buffer size."
      $ nine "iq" 40 "Issue-queue size."
      $ nine "lsq" 40 "Load/store-queue size."
      $ nine "l2-size" (2 * 1024 * 1024) "L2 capacity in bytes."
      $ nine "l2-lat" 12 "L2 hit latency."
      $ nine "il1-size" (32 * 1024) "L1I capacity in bytes."
      $ nine "dl1-size" (32 * 1024) "L1D capacity in bytes."
      $ nine "dl1-lat" 2 "L1D hit latency."
      $ trace_t $ metrics_t)

(* ---------- sample ---------- *)

let sample_cmd =
  let candidates_t =
    Arg.(
      value & opt int 100
      & info [ "candidates" ] ~docv:"N"
          ~doc:"Latin hypercube candidates scored by discrepancy.")
  in
  let run n candidates seed trace metrics =
    with_obs ~trace ~metrics @@ fun obs ->
    let domains = env_domains () in
    let rng = Stats.Rng.create seed in
    let result =
      Design.Optimize.best_lhs ~obs ~candidates ?domains rng
        Core.Paper_space.space ~n
    in
    Format.printf "best-of-%d LHS, n=%d, L2-star discrepancy %.5f@.@."
      candidates n result.Design.Optimize.discrepancy;
    Array.iteri
      (fun i p ->
        Format.printf "%3d %a@." i
          (Design.Space.pp_point Core.Paper_space.space)
          p)
      result.Design.Optimize.points
  in
  Cmd.v
    (Cmd.info "sample" ~doc:"Draw a space-filling sample of the design space")
    Term.(const run $ sample_size_t $ candidates_t $ seed_t $ trace_t
          $ metrics_t)

(* ---------- train ---------- *)

let metric_t =
  let parse s =
    match s with
    | "cpi" -> Ok Core.Response.Cpi
    | "epi" -> Ok Core.Response.Energy_per_instruction
    | "edp" -> Ok Core.Response.Energy_delay_product
    | _ -> Error (`Msg "metric must be cpi, epi or edp")
  in
  let print ppf m = Format.pp_print_string ppf (Core.Response.metric_to_string m) in
  Arg.(
    value
    & opt (conv (parse, print)) Core.Response.Cpi
    & info [ "metric" ] ~docv:"METRIC"
        ~doc:"Response metric: cpi, epi (energy/instruction) or edp.")

let train_cmd =
  let test_n_t =
    Arg.(
      value & opt int 50
      & info [ "test-points" ] ~docv:"N" ~doc:"Random test points.")
  in
  let save_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Write the trained model to FILE.")
  in
  let target_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "target-error" ] ~docv:"PCT"
          ~doc:
            "Run the paper's full iterative procedure: grow the sample \
             through SIZES until the mean test error reaches PCT percent.")
  in
  let sizes_t =
    Arg.(
      value
      & opt (list int) [ 30; 50; 70; 90; 110; 200 ]
      & info [ "sizes" ] ~docv:"N,N,..."
          ~doc:"Sample-size schedule used with --target-error.")
  in
  let shards_t =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"K"
          ~doc:
            "Run the build as K cooperating worker processes sharing a run \
             directory ($(b,--shard-dir)).  The trained model is \
             bit-identical to a single-process run.")
  in
  let shard_dir_t =
    Arg.(
      value
      & opt string "shard-run"
      & info [ "shard-dir" ] ~docv:"DIR"
          ~doc:
            "Run directory for $(b,--shards): spec, claim files and \
             per-worker journals live here.")
  in
  let stream_refit_t =
    Arg.(
      value & flag
      & info [ "stream-refit" ]
          ~doc:
            "With $(b,--target-error): grow one nested sample and extend \
             the tuning fit by rank-1 updates instead of refitting from \
             scratch at every size (deterministic, but a deliberate \
             departure from the paper's redraw-per-size procedure).")
  in
  (* Print the accuracy-schedule steps and the final model summary — the
     sharded and single-process paths share this tail. *)
  let report ~t0 ~save ~extra trained steps err =
    List.iter
      (fun (s : Core.Build.step) ->
        Format.printf "  n=%-4d mean error %.2f%%@." s.Core.Build.size
          s.Core.Build.test_error.Stats.Error_metrics.mean_pct)
      steps;
    Format.printf "p_min=%d alpha=%.0f centers=%d discrepancy=%.5f (%.1fs%s)@."
      trained.Core.Build.tune.Core.Tune.p_min
      trained.Core.Build.tune.Core.Tune.alpha
      (Core.Predictor.n_centers trained.Core.Build.predictor)
      trained.Core.Build.discrepancy
      (Int64.to_float (Int64.sub (Archpred_obs.now_ns ()) t0) *. 1e-9)
      extra;
    (match err with
    | Some err -> Format.printf "test error: %a@." Stats.Error_metrics.pp err
    | None -> ());
    match save with
    | Some path ->
        Core.Persist.save trained.Core.Build.predictor path;
        Format.printf "model written to %s@." path
    | None -> ()
  in
  let run_sharded ~obs ~bench ~n ~trace_length ~seed ~test_n ~metric ~save
      ~target ~sizes ~shards ~shard_dir ~stream_refit =
    let base = base_config ~obs ~seed () in
    let spec =
      {
        Shard.Spec.benchmark = bench.Workloads.Profile.name;
        metric;
        seed;
        trace_length;
        sample_size = n;
        test_n;
        lhs_candidates = base.Core.Config.lhs_candidates;
        criterion = base.Core.Config.criterion;
        p_min_grid = base.Core.Config.p_min_grid;
        alpha_grid = base.Core.Config.alpha_grid;
        shard_unit = base.Core.Config.shard_unit;
        stream_refit;
        refit_full_every = base.Core.Config.refit_full_every;
        mode =
          (match target with
          | None -> Shard.Spec.Train
          | Some target_mean_pct ->
              Shard.Spec.Accuracy { sizes; target_mean_pct });
      }
    in
    Format.printf "sharded build for %s: %d workers in %s...@."
      bench.Workloads.Profile.name shards shard_dir;
    let argv id =
      [| Sys.executable_name; "worker"; "--dir"; shard_dir; "--id"; id |]
    in
    let t0 = Archpred_obs.now_ns () in
    let outcome =
      Shard.Coordinator.run ~obs ~dir:shard_dir ~spec ~workers:shards ~argv ()
    in
    let result = outcome.Shard.Coordinator.result in
    report ~t0 ~save
      ~extra:
        (Printf.sprintf ", %d workers, %d respawns"
           outcome.Shard.Coordinator.workers
           outcome.Shard.Coordinator.respawns)
      result.Shard.Stages.final result.Shard.Stages.steps
      outcome.Shard.Coordinator.test_error
  in
  let run bench n trace_length seed test_n metric save target sizes shards
      shard_dir stream_refit checkpoint resume trace metrics =
    with_obs ~trace ~metrics @@ fun obs ->
    if shards > 1 then (
      (match checkpoint with
      | Some _ ->
          Obs.Error.invalid_input ~where:"archpred"
            "--checkpoint is not supported with --shards (per-worker \
             journals live in --shard-dir)"
      | None -> ());
      run_sharded ~obs ~bench ~n ~trace_length ~seed ~test_n ~metric ~save
        ~target ~sizes ~shards ~shard_dir ~stream_refit)
    else
    let rng = Stats.Rng.create seed in
    let response =
      Core.Response.simulator_metric ~obs ~trace_length ~seed ~metric bench
    in
    let test = Core.Paper_space.test_points rng ~n:test_n in
    let actual =
      Core.Response.evaluate_many ?domains:(env_domains ()) response test
    in
    let config =
      base_config ~obs ~seed ()
      |> Core.Config.with_rng rng
      |> Core.Config.with_sample_size n
      |> Core.Config.with_trace_length trace_length
      |> Core.Config.with_stream_refit stream_refit
      |> with_checkpoint ~checkpoint ~resume
    in
    let t0 = Archpred_obs.now_ns () in
    let trained, steps =
      match target with
      | None ->
          Format.printf "training RBF %s model for %s (n=%d, trace=%d)...@."
            (Core.Response.metric_to_string metric)
            bench.Workloads.Profile.name n trace_length;
          ( Core.Build.train ~config ~space:Core.Paper_space.space ~response (),
            [] )
      | Some target_mean_pct ->
          Format.printf
            "building to %.1f%% mean error for %s (schedule %s)...@."
            target_mean_pct bench.Workloads.Profile.name
            (String.concat "," (List.map string_of_int sizes));
          let history =
            Core.Build.build_to_accuracy ~config ~space:Core.Paper_space.space
              ~response ~sizes ~test_points:test ~test_responses:actual
              ~target_mean_pct ()
          in
          ( history.Core.Build.final.Core.Build.trained,
            history.Core.Build.steps )
    in
    let err =
      Core.Predictor.errors_on trained.Core.Build.predictor ~points:test
        ~actual
    in
    report ~t0 ~save ~extra:"" trained steps (Some err)
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:"Train an RBF performance model and report its accuracy")
    Term.(
      const run $ bench_t $ sample_size_t $ trace_length_t $ seed_t $ test_n_t
      $ metric_t $ save_t $ target_t $ sizes_t $ shards_t $ shard_dir_t
      $ stream_refit_t $ checkpoint_t $ resume_t $ trace_t $ metrics_t)

(* ---------- worker ---------- *)

let worker_cmd =
  let dir_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Run directory written by the coordinator (train --shards).")
  in
  let id_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "id" ] ~docv:"ID" ~doc:"This worker's unique id (e.g. w0).")
  in
  let poll_t =
    Arg.(
      value & opt float 0.02
      & info [ "poll" ] ~docv:"SECONDS"
          ~doc:"Back-off while waiting on units claimed by other workers.")
  in
  (* Crash-injection hook for the sharded crash-recovery tests:
     ARCHPRED_SHARD_FAULT="<id>:<site>:<after>[:sticky]" arms the fault
     only in the worker whose --id matches exactly — respawned workers
     get fresh ids ("w1.r1"), so the replacement survives the site the
     casualty died at. *)
  let arm_fault id =
    match Sys.getenv_opt "ARCHPRED_SHARD_FAULT" with
    | None -> ()
    | Some v -> (
        match String.split_on_char ':' v with
        | [ wid; site; after ] | [ wid; site; after; "sticky" ] ->
            if String.equal wid id then
              let sticky =
                match String.split_on_char ':' v with
                | [ _; _; _; _ ] -> true
                | _ -> false
              in
              let after =
                match int_of_string_opt after with
                | Some a -> a
                | None ->
                    Obs.Error.invalid_env ~var:"ARCHPRED_SHARD_FAULT"
                      "count must be an integer"
              in
              Archpred_fault.Fault.arm ~site ~after ~sticky ()
        | _ ->
            Obs.Error.invalid_env ~var:"ARCHPRED_SHARD_FAULT"
              "expected <id>:<site>:<after>[:sticky]")
  in
  let run dir id poll trace metrics =
    with_obs ~trace ~metrics @@ fun obs ->
    arm_fault id;
    Shard.Worker.run ~obs ~dir ~id ~poll ()
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:"Process work units of a sharded run (spawned by train --shards)")
    Term.(const run $ dir_t $ id_t $ poll_t $ trace_t $ metrics_t)

(* ---------- predict ---------- *)

let predict_cmd =
  let model_t =
    Arg.(
      required
      & opt (some file) None
      & info [ "model" ] ~docv:"FILE" ~doc:"Model file from `train --save'.")
  in
  let point_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"VALUES"
          ~doc:
            "Comma-separated natural parameter values in dimension order: \
             pipe_depth,ROB,IQ_ratio,LSQ_ratio,L2_size,L2_lat,il1,dl1,dl1_lat.")
  in
  let run model point trace metrics =
    with_obs ~trace ~metrics @@ fun obs ->
    let predictor =
      Obs.with_span obs "predict.load" @@ fun () -> Core.Persist.load model
    in
    let values =
      String.split_on_char ',' point
      |> List.map String.trim
      |> List.map (fun w ->
             match float_of_string_opt w with
             | Some v -> v
             | None ->
                 Obs.Error.invalid_input ~where:"predict"
                   (Printf.sprintf "bad value %S" w))
      |> Array.of_list
    in
    let predicted = Core.Predictor.predict_natural predictor values in
    Format.printf "%.6f@." predicted
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:"Predict the response at a configuration using a saved model")
    Term.(const run $ model_t $ point_t $ trace_t $ metrics_t)

(* ---------- serve ---------- *)

let serve_cmd =
  let model_t =
    Arg.(
      required
      & opt (some file) None
      & info [ "model" ] ~docv:"FILE" ~doc:"Model file from `train --save'.")
  in
  let batch_size_t =
    Arg.(
      value
      & opt int Core.Serve.default.Core.Serve.batch_size
      & info [ "batch-size" ] ~docv:"N" ~doc:"Points per predict_batch call.")
  in
  let batches_t =
    Arg.(
      value
      & opt int Core.Serve.default.Core.Serve.batches
      & info [ "batches" ] ~docv:"N" ~doc:"Batches in the query stream.")
  in
  let distinct_t =
    Arg.(
      value
      & opt int Core.Serve.default.Core.Serve.distinct_points
      & info [ "distinct" ] ~docv:"N"
          ~doc:
            "Distinct on-grid query points in the pool; the key-reuse \
             factor is predictions / $(docv).")
  in
  let grid_t =
    Arg.(
      value
      & opt int Core.Serve.default.Core.Serve.grid_sample_size
      & info [ "grid" ] ~docv:"N"
          ~doc:"Levels per per-sample axis when snapping pool points.")
  in
  let capacity_t =
    Arg.(
      value
      & opt int Core.Serve.default.Core.Serve.cache_capacity
      & info [ "cache-capacity" ] ~docv:"N" ~doc:"LRU memo capacity.")
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the archpred-serve-v1 JSON report to FILE.")
  in
  let run model batch_size batches distinct grid capacity seed out trace
      metrics =
    with_obs ~trace ~metrics @@ fun obs ->
    let predictor =
      Obs.with_span obs "serve.load" @@ fun () -> Core.Persist.load model
    in
    let config =
      {
        Core.Serve.batch_size;
        batches;
        distinct_points = distinct;
        grid_sample_size = grid;
        seed;
        cache_capacity = capacity;
      }
    in
    let r = Core.Serve.run ~obs ~predictor config in
    Format.printf
      "%d predictions (batch %d, key reuse %.0fx)@.\
      \  batched  %8.1f ns/pt  (%.2fx vs scalar, %.2fM pred/s)@.\
      \  kernel   %8.1f ns/pt@.\
      \  scalar   %8.1f ns/pt@.\
      \  cached   %8.1f ns/pt  (hit rate %.3f)@."
      r.Core.Serve.predictions batch_size r.Core.Serve.key_reuse
      r.Core.Serve.batch_ns_per_point r.Core.Serve.speedup_vs_scalar
      (r.Core.Serve.predictions_per_sec /. 1e6)
      r.Core.Serve.kernel_ns_per_point r.Core.Serve.scalar_ns_per_point
      r.Core.Serve.cached_ns_per_point r.Core.Serve.hit_rate;
    match out with
    | Some path ->
        Core.Serve.write_json ~path [ r ];
        Format.printf "report written to %s@." path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the batched-prediction load test against a saved model and \
          report throughput, per-point latency and memo hit rate")
    Term.(
      const run $ model_t $ batch_size_t $ batches_t $ distinct_t $ grid_t
      $ capacity_t $ seed_t $ out_t $ trace_t $ metrics_t)

(* ---------- served ---------- *)

let served_cmd =
  let model_t =
    Arg.(
      required
      & opt (some file) None
      & info [ "model" ] ~docv:"FILE" ~doc:"Model file from `train --save'.")
  in
  let socket_t =
    Arg.(
      value
      & opt string "archpred.sock"
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket path to listen on (default).")
  in
  let tcp_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:"Listen on a TCP socket instead of the Unix socket.")
  in
  let max_pending_t =
    Arg.(
      value
      & opt int Serve_net.Daemon.default.Serve_net.Daemon.max_pending
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "Ingress queue bound; requests beyond it are shed with an \
             `overloaded' reply.")
  in
  let deadline_ms_t =
    Arg.(
      value
      & opt float 200.
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request queueing deadline; requests older than this \
             answer `timeout'.")
  in
  let batch_t =
    Arg.(
      value
      & opt int Serve_net.Daemon.default.Serve_net.Daemon.max_batch
      & info [ "batch" ] ~docv:"N"
          ~doc:"Largest cross-connection batch handed to the kernel.")
  in
  let capacity_t =
    Arg.(
      value
      & opt int Serve_net.Daemon.default.Serve_net.Daemon.cache_capacity
      & info [ "cache-capacity" ] ~docv:"N" ~doc:"LRU memo capacity.")
  in
  let grid_t =
    Arg.(
      value
      & opt int Serve_net.Daemon.default.Serve_net.Daemon.grid_sample_size
      & info [ "grid" ] ~docv:"N"
          ~doc:"Levels per per-sample axis of the memo's key grid.")
  in
  let domains_t =
    Arg.(
      value
      & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains for kernel evaluation of large miss sets.")
  in
  let max_connections_t =
    Arg.(
      value
      & opt int Serve_net.Daemon.default.Serve_net.Daemon.max_connections
      & info [ "max-connections" ] ~docv:"N"
          ~doc:"Concurrent connection bound; excess connects are refused.")
  in
  let run model socket tcp max_pending deadline_ms batch capacity grid domains
      max_connections trace metrics =
    with_obs ~trace ~metrics @@ fun obs ->
    let predictor =
      Obs.with_span obs "served.load" @@ fun () -> Core.Persist.load model
    in
    let listener =
      match tcp with
      | None -> Serve_net.Daemon.Unix_socket socket
      | Some spec -> (
          match String.rindex_opt spec ':' with
          | None ->
              Obs.Error.invalid_input ~where:"served"
                "--tcp expects HOST:PORT"
          | Some i -> (
              let host = String.sub spec 0 i in
              match
                int_of_string_opt
                  (String.sub spec (i + 1) (String.length spec - i - 1))
              with
              | Some port -> Serve_net.Daemon.Tcp { host; port }
              | None ->
                  Obs.Error.invalid_input ~where:"served"
                    "--tcp expects a numeric port"))
    in
    if deadline_ms <= 0. then
      Obs.Error.invalid_input ~where:"served" "--deadline-ms must be positive";
    let config =
      {
        Serve_net.Daemon.default with
        Serve_net.Daemon.listener;
        max_pending;
        max_batch = batch;
        deadline_ns = Int64.of_float (deadline_ms *. 1e6);
        cache_capacity = capacity;
        grid_sample_size = grid;
        domains;
        max_connections;
        model_path = Some model;
      }
    in
    let control = Serve_net.Daemon.control () in
    Sys.set_signal Sys.sigterm
      (Sys.Signal_handle (fun _ -> Serve_net.Daemon.request_drain control));
    Sys.set_signal Sys.sigint
      (Sys.Signal_handle (fun _ -> Serve_net.Daemon.request_drain control));
    Sys.set_signal Sys.sighup
      (Sys.Signal_handle (fun _ -> Serve_net.Daemon.request_reload control));
    (match listener with
    | Serve_net.Daemon.Unix_socket path ->
        Format.printf
          "archpred served: listening on %s (SIGTERM drains, SIGHUP \
           reloads)@."
          path
    | Serve_net.Daemon.Tcp { host; port } ->
        Format.printf
          "archpred served: listening on %s:%d (SIGTERM drains, SIGHUP \
           reloads)@."
          host port);
    let s = Serve_net.Daemon.run ~obs ~control ~predictor config in
    Format.printf
      "drained: %d connections, %d requests, %d answered@.\
      \  shed %d, timeouts %d, bad requests %d, protocol errors %d@.\
      \  reloads %d ok / %d failed@.\
      \  cache: %d hits, %d misses, %d bypasses@.\
      \  lost %d@."
      s.Serve_net.Daemon.connections s.Serve_net.Daemon.requests
      s.Serve_net.Daemon.answered s.Serve_net.Daemon.shed
      s.Serve_net.Daemon.timeouts s.Serve_net.Daemon.bad_requests
      s.Serve_net.Daemon.protocol_errors s.Serve_net.Daemon.reloads_ok
      s.Serve_net.Daemon.reloads_failed s.Serve_net.Daemon.cache.Core.Memo.hits
      s.Serve_net.Daemon.cache.Core.Memo.misses
      s.Serve_net.Daemon.cache.Core.Memo.bypasses s.Serve_net.Daemon.lost;
    if s.Serve_net.Daemon.lost > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "served"
       ~doc:
         "Run the fault-tolerant prediction daemon: JSON-lines and binary \
          framing on one socket, cross-connection batching, bounded queues \
          with load shedding, graceful drain on SIGTERM and hot model \
          reload on SIGHUP")
    Term.(
      const run $ model_t $ socket_t $ tcp_t $ max_pending_t $ deadline_ms_t
      $ batch_t $ capacity_t $ grid_t $ domains_t $ max_connections_t
      $ trace_t $ metrics_t)

(* ---------- search ---------- *)

let search_cmd =
  let run bench n trace_length seed checkpoint resume trace metrics =
    with_obs ~trace ~metrics @@ fun obs ->
    let rng = Stats.Rng.create seed in
    let response = Core.Response.simulator ~obs ~trace_length ~seed bench in
    let config =
      base_config ~obs ~seed ()
      |> Core.Config.with_rng rng
      |> Core.Config.with_sample_size n
      |> Core.Config.with_trace_length trace_length
      |> with_checkpoint ~checkpoint ~resume
    in
    let trained =
      Core.Build.train ~config ~space:Core.Paper_space.space ~response ()
    in
    let result =
      Core.Search.minimize ~config ~predictor:trained.Core.Build.predictor ()
    in
    let simulated = response.Core.Response.eval result.Core.Search.point in
    Format.printf "best point (%d model evaluations):@.  %a@."
      result.Core.Search.evaluations
      (Design.Space.pp_point Core.Paper_space.space)
      result.Core.Search.point;
    Format.printf "predicted CPI %.4f, simulated CPI %.4f@."
      result.Core.Search.predicted simulated
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:"Find the design point with the lowest predicted CPI")
    Term.(
      const run $ bench_t $ sample_size_t $ trace_length_t $ seed_t
      $ checkpoint_t $ resume_t $ trace_t $ metrics_t)

(* ---------- sensitivity ---------- *)

let sensitivity_cmd =
  let run bench n trace_length seed metric trace metrics =
    with_obs ~trace ~metrics @@ fun obs ->
    let rng = Stats.Rng.create seed in
    let response =
      Core.Response.simulator_metric ~obs ~trace_length ~seed ~metric bench
    in
    let config =
      base_config ~obs ~seed ()
      |> Core.Config.with_rng rng
      |> Core.Config.with_sample_size n
      |> Core.Config.with_trace_length trace_length
    in
    let trained =
      Core.Build.train ~config ~space:Core.Paper_space.space ~response ()
    in
    let predictor = trained.Core.Build.predictor in
    Format.printf "parameter significance for %s (%s), from a %d-simulation model@.@."
      bench.Workloads.Profile.name
      (Core.Response.metric_to_string metric)
      n;
    Format.printf "main effects (one-at-a-time response range):@.";
    List.iter
      (fun (e : Core.Sensitivity.effect) ->
        Format.printf "  %-12s %8.4f@." e.Core.Sensitivity.name
          e.Core.Sensitivity.magnitude)
      (Core.Sensitivity.main_effects predictor);
    Format.printf "@.total effects (variance-based, interactions included):@.";
    List.iter
      (fun (e : Core.Sensitivity.effect) ->
        Format.printf "  %-12s %8.4f@." e.Core.Sensitivity.name
          e.Core.Sensitivity.magnitude)
      (Core.Sensitivity.total_effects ~rng predictor);
    Format.printf "@.strongest two-factor interactions:@.";
    List.iter
      (fun (a, b, v) -> Format.printf "  %-12s x %-12s %8.4f@." a b v)
      (Core.Sensitivity.top_interactions ~count:5 predictor)
  in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Rank parameter significance using a trained model")
    Term.(
      const run $ bench_t $ sample_size_t $ trace_length_t $ seed_t $ metric_t
      $ trace_t $ metrics_t)

(* ---------- reproduce ---------- *)

let reproduce_cmd =
  let ids_t =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ID"
          ~doc:"Experiment ids (table1..table5, fig1..fig7, ablation_*).")
  in
  let scale_t =
    let parse s =
      match Experiments.Scale.of_string s with
      | Some t -> Ok t
      | None -> Error (`Msg "scale must be small, medium or full")
    in
    let print ppf s =
      Format.pp_print_string ppf (Experiments.Scale.to_string s)
    in
    Arg.(
      value
      & opt (some (conv (parse, print))) None
      & info [ "scale" ] ~docv:"SCALE"
          ~doc:"Experiment scale (small, medium, full); overrides \
                ARCHPRED_SCALE.")
  in
  let run ids scale seed trace metrics =
    with_obs ~trace ~metrics @@ fun obs ->
    let ctx = Experiments.Context.create ~seed ?scale ~obs () in
    let entries =
      match ids with
      | [] -> Experiments.Registry.all
      | ids ->
          List.map
            (fun id ->
              match Experiments.Registry.find id with
              | Some e -> e
              | None ->
                  Obs.Error.invalid_input ~where:"reproduce"
                    ("unknown experiment id: " ^ id))
            ids
    in
    Experiments.Registry.run_all ~entries ctx Format.std_formatter
  in
  Cmd.v
    (Cmd.info "reproduce"
       ~doc:"Regenerate the paper's tables and figures (see DESIGN.md)")
    Term.(const run $ ids_t $ scale_t $ seed_t $ trace_t $ metrics_t)

let () =
  let doc = "predictive performance models for superscalar processors" in
  let info = Cmd.info "archpred" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            benchmarks_cmd;
            simulate_cmd;
            sample_cmd;
            train_cmd;
            worker_cmd;
            predict_cmd;
            serve_cmd;
            served_cmd;
            search_cmd;
            sensitivity_cmd;
            reproduce_cmd;
          ]))
