module Obs = Archpred_obs
module Fault = Archpred_fault.Fault

(* Process every unit of one stage: rescan, claim the first unclaimed
   incomplete unit, compute and journal it, repeat; when every unit is
   committed (by anyone) the stage is done.  Workers that lose every
   claim race just sleep until the stage resolves — a dead claimant's
   units come back when the coordinator releases its claims. *)
let run_stage ~obs ~dir ~owner ~fingerprint ~journal ~chunk ~poll
    (stage : Stages.stage) =
  let units =
    Plan.units ~stage:stage.Stages.name ~count:stage.Stages.count ~chunk
  in
  let rec drive () =
    let scan = Journal.scan_dir ~dir ~fingerprint in
    let todo =
      Array.to_list units
      |> List.filter (fun (u : Plan.unit_) ->
             not
               (Journal.unit_complete scan ~stage:u.Plan.stage ~lo:u.Plan.lo
                  ~hi:u.Plan.hi))
    in
    match todo with
    | [] -> ()
    | _ :: _ -> (
        let claimed =
          List.find_opt
            (fun u -> Claim.claim ~dir ~name:(Plan.unit_name u) ~owner)
            todo
        in
        match claimed with
        | Some u ->
            Fault.point "shard.unit";
            let values =
              stage.Stages.compute scan ~lo:u.Plan.lo ~hi:u.Plan.hi
            in
            Array.iteri
              (fun k value ->
                Journal.append_result journal ~stage:u.Plan.stage
                  ~index:(u.Plan.lo + k) ~value)
              values;
            Journal.commit_unit journal ~stage:u.Plan.stage ~lo:u.Plan.lo
              ~hi:u.Plan.hi;
            Obs.incr obs "shard.units_done";
            drive ()
        | None ->
            (* Everything left is claimed by someone else; wait for the
               commits (or for the coordinator to release dead claims). *)
            Unix.sleepf poll;
            drive ())
  in
  drive ()

let run ?(obs = Obs.null) ~dir ~id ?(poll = 0.02) () =
  let spec = Spec.load ~dir in
  let fingerprint = Spec.fingerprint spec in
  Claim.init ~dir;
  Journal.init ~dir;
  let ctx = Stages.create ~obs spec in
  let journal = Journal.open_ ~dir ~worker:id ~fingerprint in
  Fun.protect
    ~finally:(fun () -> Journal.close journal)
    (fun () ->
      let chunk = spec.Spec.shard_unit in
      let stage s =
        run_stage ~obs ~dir ~owner:id ~fingerprint ~journal ~chunk ~poll s
      in
      Option.iter stage (Stages.test_stage ctx);
      let rec steps step =
        if step < Stages.n_steps ctx then (
          if (not (Stages.stream ctx)) || step = 0 then
            stage (Stages.lhs_stage ctx ~step);
          stage (Stages.sim_stage ctx ~step);
          Option.iter stage (Stages.tune_stage ctx ~step);
          let scan = Journal.scan_dir ~dir ~fingerprint in
          if not (Stages.stop_after ctx scan ~step) then steps (step + 1))
      in
      steps 0)
