(** Deterministic work-unit partition of a sharded search.

    Every parallel stage of model construction — LHS candidate scoring,
    design-point simulation, tuning-grid cells — is an indexed batch of
    independent computations.  A stage of [count] indices is cut into
    half-open ranges of [chunk] indices each; the partition is a pure
    function of [(count, chunk)], so the coordinator and every worker
    derive the same unit list without talking to each other.  Units are
    the granularity of claiming ({!Claim}) and of journal commit
    ({!Journal}): a worker that dies mid-unit leaves no committed trace
    of it, and the unit is simply reclaimed. *)

type unit_ = { stage : string; lo : int; hi : int }
(** Indices [lo, hi) of [stage]. *)

val units : stage:string -> count:int -> chunk:int -> unit_ array
(** The canonical partition of a [count]-index stage into [chunk]-sized
    units (the last may be short), in index order.  Raises
    [Invalid_argument] when [chunk < 1] or [count < 0]. *)

val unit_name : unit_ -> string
(** ["<stage>.<lo>-<hi>"] — the claim-file name of the unit. *)

val unit_of_name : string -> unit_ option
(** Inverse of {!unit_name} ([None] on malformed input). *)
