module Obs = Archpred_obs
module Json = Archpred_obs.Json
module Core = Archpred_core

type mode = Train | Accuracy of { sizes : int list; target_mean_pct : float }

type t = {
  benchmark : string;
  metric : Core.Response.metric;
  seed : int;
  trace_length : int;
  sample_size : int;
  test_n : int;
  lhs_candidates : int;
  criterion : Archpred_rbf.Criteria.t;
  p_min_grid : int list;
  alpha_grid : float list;
  shard_unit : int;
  stream_refit : bool;
  refit_full_every : int;
  mode : mode;
}

let where = "Shard.Spec"

let validate t =
  if t.sample_size < 2 then
    Obs.Error.invalid_input ~where "sample_size must be >= 2";
  if t.lhs_candidates < 1 then
    Obs.Error.invalid_input ~where "lhs_candidates must be >= 1";
  if t.shard_unit < 1 then
    Obs.Error.invalid_input ~where "shard_unit must be >= 1";
  if t.refit_full_every < 0 then
    Obs.Error.invalid_input ~where "refit_full_every must be >= 0";
  (match t.p_min_grid, t.alpha_grid with
  | [], _ | _, [] -> Obs.Error.invalid_input ~where "empty tuning grid"
  | _ :: _, _ :: _ -> ());
  (match t.mode with
  | Train -> ()
  | Accuracy { sizes; target_mean_pct } ->
      (match sizes with
      | [] -> Obs.Error.invalid_input ~where "accuracy mode needs sizes"
      | _ :: _ -> ());
      if t.test_n < 1 then
        Obs.Error.invalid_input ~where "accuracy mode needs test points";
      if not (Float.is_finite target_mean_pct) then
        Obs.Error.invalid_input ~where "target_mean_pct must be finite");
  t

let metric_of_string = function
  | "cpi" -> Some Core.Response.Cpi
  | "epi" -> Some Core.Response.Energy_per_instruction
  | "edp" -> Some Core.Response.Energy_delay_product
  | _ -> None

let hex f = Json.String (Core.Checkpoint.float_to_hex_string f)

let of_hex = function
  | Json.String s -> Core.Checkpoint.float_of_hex_string s
  | _ -> None

let to_json t =
  let mode_fields =
    match t.mode with
    | Train -> [ ("mode", Json.String "train") ]
    | Accuracy { sizes; target_mean_pct } ->
        [
          ("mode", Json.String "accuracy");
          ("sizes", Json.List (List.map (fun n -> Json.Int n) sizes));
          ("target_mean_pct", hex target_mean_pct);
        ]
  in
  Json.Obj
    ([
       ("format", Json.String "archpred-shard-spec");
       ("version", Json.Int 1);
       ("benchmark", Json.String t.benchmark);
       ("metric", Json.String (Core.Response.metric_to_string t.metric));
       ("seed", Json.Int t.seed);
       ("trace_length", Json.Int t.trace_length);
       ("sample_size", Json.Int t.sample_size);
       ("test_n", Json.Int t.test_n);
       ("lhs_candidates", Json.Int t.lhs_candidates);
       ("criterion", Json.String (Archpred_rbf.Criteria.to_string t.criterion));
       ("p_min_grid", Json.List (List.map (fun p -> Json.Int p) t.p_min_grid));
       ("alpha_grid", Json.List (List.map hex t.alpha_grid));
       ("shard_unit", Json.Int t.shard_unit);
       ("stream_refit", Json.Bool t.stream_refit);
       ("refit_full_every", Json.Int t.refit_full_every);
     ]
    @ mode_fields)

let fingerprint t =
  Core.Crc32.to_hex (Core.Crc32.string (Json.to_string (to_json t)))

let path dir = Filename.concat dir "spec.json"

let save ~dir t =
  let t = validate t in
  let p = path dir in
  let tmp = p ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match
     output_string oc (Json.to_string (to_json t));
     output_char oc '\n';
     close_out oc
   with
  | () -> ()
  | exception Sys_error msg ->
      close_out_noerr oc;
      Obs.Error.io_error ~path:tmp msg);
  match Sys.rename tmp p with
  | () -> ()
  | exception Sys_error msg -> Obs.Error.io_error ~path:p msg

let fail_parse msg = Obs.Error.parse_error ~where ~line:1 msg

let int_field json key =
  match Json.member key json with
  | Some (Json.Int n) -> n
  | _ -> fail_parse (Printf.sprintf "missing int field %S" key)

let string_field json key =
  match Json.member key json with
  | Some (Json.String s) -> s
  | _ -> fail_parse (Printf.sprintf "missing string field %S" key)

let bool_field json key =
  match Json.member key json with
  | Some (Json.Bool b) -> b
  | _ -> fail_parse (Printf.sprintf "missing bool field %S" key)

let hex_field json key =
  match Json.member key json with
  | Some v -> (
      match of_hex v with
      | Some f -> f
      | None -> fail_parse (Printf.sprintf "bad float field %S" key))
  | None -> fail_parse (Printf.sprintf "missing float field %S" key)

let int_list_field json key =
  match Json.member key json with
  | Some (Json.List items) ->
      List.map
        (function
          | Json.Int n -> n
          | _ -> fail_parse (Printf.sprintf "bad int list %S" key))
        items
  | _ -> fail_parse (Printf.sprintf "missing list field %S" key)

let hex_list_field json key =
  match Json.member key json with
  | Some (Json.List items) ->
      List.map
        (fun v ->
          match of_hex v with
          | Some f -> f
          | None -> fail_parse (Printf.sprintf "bad float list %S" key))
        items
  | _ -> fail_parse (Printf.sprintf "missing list field %S" key)

let of_json json =
  (match Json.member "format" json with
  | Some (Json.String "archpred-shard-spec") -> ()
  | _ -> fail_parse "not an archpred shard spec");
  (match Json.member "version" json with
  | Some (Json.Int 1) -> ()
  | _ -> fail_parse "unsupported spec version");
  let metric =
    let s = string_field json "metric" in
    match metric_of_string s with
    | Some m -> m
    | None -> fail_parse (Printf.sprintf "unknown metric %S" s)
  in
  let criterion =
    let s = string_field json "criterion" in
    match Archpred_rbf.Criteria.of_string s with
    | Some c -> c
    | None -> fail_parse (Printf.sprintf "unknown criterion %S" s)
  in
  let mode =
    match string_field json "mode" with
    | "train" -> Train
    | "accuracy" ->
        Accuracy
          {
            sizes = int_list_field json "sizes";
            target_mean_pct = hex_field json "target_mean_pct";
          }
    | s -> fail_parse (Printf.sprintf "unknown mode %S" s)
  in
  validate
    {
      benchmark = string_field json "benchmark";
      metric;
      seed = int_field json "seed";
      trace_length = int_field json "trace_length";
      sample_size = int_field json "sample_size";
      test_n = int_field json "test_n";
      lhs_candidates = int_field json "lhs_candidates";
      criterion;
      p_min_grid = int_list_field json "p_min_grid";
      alpha_grid = hex_list_field json "alpha_grid";
      shard_unit = int_field json "shard_unit";
      stream_refit = bool_field json "stream_refit";
      refit_full_every = int_field json "refit_full_every";
      mode;
    }

let load ~dir =
  let p = path dir in
  let ic =
    match open_in_bin p with
    | ic -> ic
    | exception Sys_error msg -> Obs.Error.io_error ~path:p msg
  in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | s -> s
        | exception End_of_file -> Obs.Error.io_error ~path:p "truncated spec")
  in
  match Json.of_string (String.trim text) with
  | Ok json -> of_json json
  | Error msg -> fail_parse msg

let config ?obs (t : t) =
  let module C = Core.Config in
  let c =
    C.default
    |> C.with_seed t.seed
    |> C.with_trace_length t.trace_length
    |> C.with_sample_size t.sample_size
    |> C.with_lhs_candidates t.lhs_candidates
    |> C.with_criterion t.criterion
    |> C.with_p_min_grid t.p_min_grid
    |> C.with_alpha_grid t.alpha_grid
    |> C.with_shard_unit t.shard_unit
    |> C.with_stream_refit t.stream_refit
    |> C.with_refit_full_every t.refit_full_every
  in
  let c = match obs with None -> c | Some obs -> C.with_obs obs c in
  C.validate c

let response ?obs t =
  match t.benchmark with
  | "synthetic:smooth" -> Core.Response.synthetic_smooth ~dim:9
  | "synthetic:cliff" -> Core.Response.synthetic_cliff ~dim:9
  | name -> (
      match Archpred_workloads.Spec2000_extra.find name with
      | Some profile ->
          Core.Response.simulator_metric ?obs ~trace_length:t.trace_length
            ~seed:t.seed ~metric:t.metric profile
      | None ->
          Obs.Error.invalid_input ~where
            (Printf.sprintf "unknown benchmark %S" name))
