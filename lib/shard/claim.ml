module Obs = Archpred_obs
module Fault = Archpred_fault.Fault

let claims_dir dir = Filename.concat dir "claims"
let path dir name = Filename.concat (claims_dir dir) (name ^ ".claim")

let init ~dir =
  let d = claims_dir dir in
  match Unix.mkdir d 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | exception Unix.Unix_error (err, _, _) ->
      Obs.Error.io_error ~path:d (Unix.error_message err)

let claim ~dir ~name ~owner =
  Fault.point "shard.claim";
  let p = path dir name in
  match
    open_out_gen [ Open_wronly; Open_creat; Open_excl; Open_binary ] 0o644 p
  with
  | oc ->
      (* The exclusive create is the atomic claim; the owner id inside is
         bookkeeping for crash recovery, not part of the race. *)
      output_string oc owner;
      close_out oc;
      true
  | exception Sys_error msg ->
      if Sys.file_exists p then false else Obs.Error.io_error ~path:p msg

let owner ~dir ~name =
  let p = path dir name in
  match open_in_bin p with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Some s
          | exception End_of_file -> None)

let release ~dir ~name =
  match Sys.remove (path dir name) with
  | () -> ()
  | exception Sys_error _ ->
      (* Already gone (a concurrent release) — releasing is idempotent. *)
      ()

let release_incomplete ~dir ~owner:dead ~complete =
  let d = claims_dir dir in
  match Sys.readdir d with
  | exception Sys_error _ -> ()
  | files ->
      Array.sort String.compare files;
      Array.iter
        (fun file ->
          match Filename.chop_suffix_opt ~suffix:".claim" file with
          | None -> ()
          | Some name -> (
              match Plan.unit_of_name name with
              | None -> ()
              | Some u ->
                  let owned =
                    match owner ~dir ~name with
                    | Some o -> String.equal o dead
                    | None -> false
                  in
                  if
                    owned
                    && not
                         (complete ~stage:u.Plan.stage ~lo:u.Plan.lo
                            ~hi:u.Plan.hi)
                  then release ~dir ~name))
        files
