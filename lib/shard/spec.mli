(** The shared problem statement of a sharded run.

    The coordinator writes [spec.json] into the run directory before
    spawning workers; every worker loads it and derives the {e same}
    configuration, response, and work plan from it — nothing else is
    communicated.  Floats serialise as hex literals
    ({!Archpred_core.Checkpoint.float_to_hex_string}) so the round trip
    is bit-exact, and {!fingerprint} hashes the canonical serialisation:
    journals stamp the fingerprint in their headers, which prevents a
    worker from mixing journals produced under a different spec into a
    merge. *)

type mode =
  | Train  (** one fixed-size model ({!Archpred_core.Build.train}) *)
  | Accuracy of { sizes : int list; target_mean_pct : float }
      (** grow through [sizes] until the held-out mean error drops to
          [target_mean_pct] ({!Archpred_core.Build.build_to_accuracy}) *)

type t = {
  benchmark : string;
      (** workload name, or ["synthetic:smooth"] / ["synthetic:cliff"] *)
  metric : Archpred_core.Response.metric;
  seed : int;
  trace_length : int;
  sample_size : int;
  test_n : int;  (** held-out test points (drawn before training) *)
  lhs_candidates : int;
  criterion : Archpred_rbf.Criteria.t;
  p_min_grid : int list;
  alpha_grid : float list;
  shard_unit : int;  (** indices per work unit ({!Plan.units} chunk) *)
  stream_refit : bool;
  refit_full_every : int;
  mode : mode;
}

val validate : t -> t
(** Check the invariants ([sample_size >= 2], nonempty grids, accuracy
    mode needs sizes and test points, …).  Raises
    [Archpred (Invalid_input _)]. *)

val to_json : t -> Archpred_obs.Json.t
(** Canonical serialisation — field order is fixed, so equal specs
    serialise to equal strings. *)

val fingerprint : t -> string
(** CRC32 (hex) of the canonical serialisation. *)

val save : dir:string -> t -> unit
(** Validate and atomically write [<dir>/spec.json] (tmp + rename). *)

val load : dir:string -> t
(** Read and validate [<dir>/spec.json].  Raises [Archpred (Io_error _)]
    or [Archpred (Parse_error _)]. *)

val config : ?obs:Archpred_obs.t -> t -> Archpred_core.Config.t
(** The {!Archpred_core.Config.t} every participant derives from the
    spec (validated; [domains] is left at the library default). *)

val response : ?obs:Archpred_obs.t -> t -> Archpred_core.Response.t
(** The response surface named by [benchmark] — a synthetic surface or a
    simulator-backed workload metric.  Raises [Archpred (Invalid_input _)]
    on an unknown benchmark name. *)

val metric_of_string : string -> Archpred_core.Response.metric option
(** Inverse of {!Archpred_core.Response.metric_to_string}. *)
