module Obs = Archpred_obs
module Fault = Archpred_fault.Fault

type outcome = {
  result : Stages.outcome;
  test_error : Archpred_stats.Error_metrics.t option;
  workers : int;
  respawns : int;
}

let where = "Shard.Coordinator"

type child = { id : string; pid : int }

let mkdir_p dir =
  match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | exception Unix.Unix_error (err, _, _) ->
      Obs.Error.io_error ~path:dir (Unix.error_message err)

(* "w1.r2" -> "w1": respawn ids stay rooted at the original worker so
   the argv hook can key off a stable base. *)
let base_id id =
  match String.index_opt id '.' with
  | None -> id
  | Some dot -> String.sub id 0 dot

let spawn ~argv id =
  let av = argv id in
  if Array.length av = 0 then
    Obs.Error.invalid_input ~where "argv hook returned an empty vector";
  let pid = Unix.create_process av.(0) av Unix.stdin Unix.stdout Unix.stderr in
  { id; pid }

let kill_children live =
  List.iter
    (fun c ->
      match Unix.kill c.pid Sys.sigterm with
      | () -> ()
      | exception Unix.Unix_error (_, _, _) -> ())
    live

let run ?(obs = Obs.null) ~dir ~spec ~workers ~argv ?(max_respawns = 8)
    ?(poll = 0.05) () =
  if workers < 1 then Obs.Error.invalid_input ~where "workers must be >= 1";
  mkdir_p dir;
  Spec.save ~dir spec;
  Claim.init ~dir;
  Journal.init ~dir;
  let fingerprint = Spec.fingerprint spec in
  let children =
    List.init workers (fun k -> spawn ~argv (Printf.sprintf "w%d" k))
  in
  Obs.count obs "shard.workers" workers;
  let respawns = ref 0 in
  (* Monitor until every child has exited cleanly.  A child that dies —
     crash, signal, nonzero exit — gets its incomplete claims released
     and is replaced (fresh id, so the replacement's journal does not
     collide with the casualty's), within the respawn budget. *)
  let rec monitor live =
    match live with
    | [] -> ()
    | _ :: _ ->
        let rec sweep acc = function
          | [] -> List.rev acc
          | c :: rest -> (
              match Unix.waitpid [ Unix.WNOHANG ] c.pid with
              | 0, _ -> sweep (c :: acc) rest
              | _, Unix.WEXITED 0 -> sweep acc rest
              | _, (Unix.WEXITED _ | Unix.WSIGNALED _) ->
                  let scan = Journal.scan_dir ~dir ~fingerprint in
                  Claim.release_incomplete ~dir ~owner:c.id
                    ~complete:(fun ~stage ~lo ~hi ->
                      Journal.unit_complete scan ~stage ~lo ~hi);
                  incr respawns;
                  Obs.incr obs "shard.respawns";
                  if !respawns > max_respawns then (
                    kill_children (List.rev_append acc rest);
                    Obs.Error.infeasible ~where
                      (Printf.sprintf
                         "worker %s died and the respawn budget (%d) is \
                          exhausted"
                         c.id max_respawns));
                  let id = Printf.sprintf "%s.r%d" (base_id c.id) !respawns in
                  sweep (spawn ~argv id :: acc) rest
              | _, Unix.WSTOPPED _ -> sweep (c :: acc) rest
              | exception Unix.Unix_error (Unix.ECHILD, _, _) -> sweep acc rest)
        in
        let live = sweep [] live in
        (match live with [] -> () | _ :: _ -> Unix.sleepf poll);
        monitor live
  in
  monitor children;
  Fault.point "shard.merge";
  let scan = Journal.scan_dir ~dir ~fingerprint in
  let ctx = Stages.create ~obs spec in
  let result = Stages.assemble ctx scan in
  let test_error =
    if spec.Spec.test_n = 0 then None
    else
      Some
        (Archpred_core.Predictor.errors_on
           result.Stages.final.Archpred_core.Build.predictor
           ~points:(Stages.test_points ctx)
           ~actual:(Stages.test_actuals ctx scan))
  in
  { result; test_error; workers; respawns = !respawns }
