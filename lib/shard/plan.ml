type unit_ = { stage : string; lo : int; hi : int }

let units ~stage ~count ~chunk =
  if chunk < 1 then invalid_arg "Plan.units: chunk < 1";
  if count < 0 then invalid_arg "Plan.units: count < 0";
  let n_units = (count + chunk - 1) / chunk in
  Array.init n_units (fun k ->
      { stage; lo = k * chunk; hi = min count ((k + 1) * chunk) })

let unit_name { stage; lo; hi } = Printf.sprintf "%s.%d-%d" stage lo hi

let unit_of_name name =
  (* "<stage>.<lo>-<hi>", where the stage itself may contain dots: parse
     from the right. *)
  match String.rindex_opt name '.' with
  | None -> None
  | Some dot -> (
      let stage = String.sub name 0 dot in
      let range = String.sub name (dot + 1) (String.length name - dot - 1) in
      match String.index_opt range '-' with
      | None -> None
      | Some dash -> (
          let lo = String.sub range 0 dash in
          let hi =
            String.sub range (dash + 1) (String.length range - dash - 1)
          in
          match (int_of_string_opt lo, int_of_string_opt hi) with
          | Some lo, Some hi when String.length stage > 0 ->
              Some { stage; lo; hi }
          | _ -> None))
