module Obs = Archpred_obs
module Json = Archpred_obs.Json
module Fault = Archpred_fault.Fault
module Checkpoint = Archpred_core.Checkpoint

let journals_dir dir = Filename.concat dir "journals"
let path dir worker = Filename.concat (journals_dir dir) (worker ^ ".journal")

let init ~dir =
  let d = journals_dir dir in
  match Unix.mkdir d 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | exception Unix.Unix_error (err, _, _) ->
      Obs.Error.io_error ~path:d (Unix.error_message err)

type t = { path : string; oc : out_channel }

let header_line fingerprint worker =
  Checkpoint.frame
    (Json.to_string
       (Json.Obj
          [
            ("type", Json.String "header");
            ("format", Json.String "archpred-shard");
            ("version", Json.Int 1);
            ("fingerprint", Json.String fingerprint);
            ("worker", Json.String worker);
          ]))

let check_header ~path:p ~fingerprint json =
  let field key =
    match Json.member key json with Some (Json.String s) -> Some s | _ -> None
  in
  let ok =
    (match field "type" with Some "header" -> true | _ -> false)
    && (match field "format" with Some "archpred-shard" -> true | _ -> false)
    && (match Json.member "version" json with
       | Some (Json.Int 1) -> true
       | _ -> false)
  in
  if not ok then
    Obs.Error.parse_error ~where:p ~line:1 "not an archpred shard journal";
  match field "fingerprint" with
  | Some fp when String.equal fp fingerprint -> ()
  | _ -> Obs.Error.parse_error ~where:p ~line:1 "journal spec fingerprint mismatch"

let read_all p =
  let ic =
    match open_in_bin p with
    | ic -> ic
    | exception Sys_error msg -> Obs.Error.io_error ~path:p msg
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      match really_input_string ic (in_channel_length ic) with
      | s -> s
      | exception End_of_file -> Obs.Error.io_error ~path:p "short read")

(* Walk newline-terminated, checksum-valid lines from the front; anything
   after the first torn or corrupted line is dead weight.  Returns the
   parsed lines and the byte length of the valid prefix. *)
let valid_prefix content =
  let len = String.length content in
  let rec go pos acc =
    if pos >= len then (List.rev acc, pos)
    else
      match String.index_from_opt content pos '\n' with
      | None -> (List.rev acc, pos)
      | Some nl -> (
          let line = String.sub content pos (nl - pos) in
          match Checkpoint.unframe line with
          | None -> (List.rev acc, pos)
          | Some json -> go (nl + 1) (json :: acc))
  in
  go 0 []

let sync t =
  flush t.oc;
  Unix.fsync (Unix.descr_of_out_channel t.oc)

let open_ ~dir ~worker ~fingerprint =
  let p = path dir worker in
  let fresh () =
    let oc = open_out_gen [ Open_wronly; Open_trunc; Open_binary ] 0o644 p in
    let t = { path = p; oc } in
    output_string oc (header_line fingerprint worker);
    sync t;
    t
  in
  if not (Sys.file_exists p) then (
    let oc = open_out_gen [ Open_wronly; Open_creat; Open_binary ] 0o644 p in
    let t = { path = p; oc } in
    output_string oc (header_line fingerprint worker);
    sync t;
    t)
  else
    let content = read_all p in
    let lines, keep = valid_prefix content in
    match lines with
    | [] -> fresh ()
    | header :: _ ->
        check_header ~path:p ~fingerprint header;
        (if keep < String.length content then
           let fd =
             match Unix.openfile p [ Unix.O_WRONLY ] 0o644 with
             | fd -> fd
             | exception Unix.Unix_error (err, _, _) ->
                 Obs.Error.io_error ~path:p (Unix.error_message err)
           in
           Fun.protect
             ~finally:(fun () -> Unix.close fd)
             (fun () -> Unix.ftruncate fd keep));
        let oc =
          open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 p
        in
        { path = p; oc }

let append_result t ~stage ~index ~value =
  Fault.point "shard.append";
  let payload =
    Json.to_string
      (Json.Obj
         [
           ("type", Json.String "result");
           ("stage", Json.String stage);
           ("index", Json.Int index);
           ("value", Json.String (Checkpoint.float_to_hex_string value));
         ])
  in
  output_string t.oc (Checkpoint.frame payload);
  flush t.oc

let commit_unit t ~stage ~lo ~hi =
  let payload =
    Json.to_string
      (Json.Obj
         [
           ("type", Json.String "unit");
           ("stage", Json.String stage);
           ("lo", Json.Int lo);
           ("hi", Json.Int hi);
         ])
  in
  output_string t.oc (Checkpoint.frame payload);
  sync t

let close t =
  match
    flush t.oc;
    Unix.fsync (Unix.descr_of_out_channel t.oc);
    close_out t.oc
  with
  | () -> ()
  | exception Sys_error msg -> Obs.Error.io_error ~path:t.path msg

type scan = {
  units : (string, unit) Hashtbl.t;
  values : (string, float) Hashtbl.t;
}

let ukey stage lo hi = Printf.sprintf "%s:%d-%d" stage lo hi
let vkey stage index = Printf.sprintf "%s:%d" stage index

let empty_scan () = { units = Hashtbl.create 64; values = Hashtbl.create 256 }

let unit_complete scan ~stage ~lo ~hi = Hashtbl.mem scan.units (ukey stage lo hi)
let value scan ~stage ~index = Hashtbl.find_opt scan.values (vkey stage index)

let stage_values scan ~stage ~count =
  Array.init count (fun i ->
      match value scan ~stage ~index:i with
      | Some v -> v
      | None ->
          Obs.Error.infeasible ~where:"Shard.Journal.stage_values"
            (Printf.sprintf "missing merged result %s[%d]" stage i))

(* Merge one journal's parsed lines into the scan.  Results are held
   pending until a unit marker in the same journal covers them — a
   worker that died after appending results but before committing the
   unit contributes nothing for that unit. *)
let merge_lines scan lines =
  let commit_pending pending ~stage ~lo ~hi =
    List.iter
      (fun (s, i, v) ->
        if String.equal s stage && lo <= i && i < hi then
          if not (Hashtbl.mem scan.values (vkey s i)) then
            Hashtbl.replace scan.values (vkey s i) v)
      (List.rev pending);
    List.filter
      (fun (s, i, _) -> not (String.equal s stage && lo <= i && i < hi))
      pending
  in
  let record pending json =
    let str key =
      match Json.member key json with
      | Some (Json.String s) -> Some s
      | _ -> None
    in
    let int key =
      match Json.member key json with Some (Json.Int n) -> Some n | _ -> None
    in
    match str "type" with
    | Some "result" -> (
        match (str "stage", int "index", str "value") with
        | Some stage, Some index, Some value_hex -> (
            match Checkpoint.float_of_hex_string value_hex with
            | Some v -> (stage, index, v) :: pending
            | None -> pending)
        | _ -> pending)
    | Some "unit" -> (
        match (str "stage", int "lo", int "hi") with
        | Some stage, Some lo, Some hi ->
            Hashtbl.replace scan.units (ukey stage lo hi) ();
            commit_pending pending ~stage ~lo ~hi
        | _ -> pending)
    | _ -> pending
  in
  (* Pending results left at end-of-journal were never committed. *)
  ignore (List.fold_left record [] lines)

let scan_dir ~dir ~fingerprint =
  Fault.point "shard.merge";
  let scan = empty_scan () in
  let d = journals_dir dir in
  (match Sys.readdir d with
  | exception Sys_error _ -> ()
  | files ->
      Array.sort String.compare files;
      Array.iter
        (fun file ->
          if Filename.check_suffix file ".journal" then
            let p = Filename.concat d file in
            let lines, _keep = valid_prefix (read_all p) in
            match lines with
            | [] -> ()
            | header :: rest ->
                check_header ~path:p ~fingerprint header;
                merge_lines scan rest)
        files);
  scan
