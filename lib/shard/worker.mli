(** The worker loop of a sharded run.

    A worker loads [<dir>/spec.json], derives the same {!Stages.ctx} as
    every other participant, and walks the stage sequence in order —
    test, then per step: LHS, sim, tune.  Within a stage it repeatedly
    claims the first unclaimed incomplete unit ({!Claim}), computes its
    indices, journals the results, and commits the unit; when every
    unit of the stage is committed (by any worker) it moves on.  All
    control decisions (stage completion, early stop) are read off the
    merged journals, so workers coordinate through the filesystem
    alone and any of them can die at any point without corrupting the
    run.

    Fault site ["shard.unit"] fires after a successful claim, before
    the unit's first computation — the canonical mid-unit crash point
    for tests. *)

val run :
  ?obs:Archpred_obs.t -> dir:string -> id:string -> ?poll:float -> unit -> unit
(** Run worker [id] against run directory [dir] until the spec's
    schedule completes.  [poll] (default 20 ms) is the back-off while
    waiting on units claimed by other workers.  Bumps the
    ["shard.units_done"] counter on [obs] per committed unit.  Raises
    [Archpred _] on an unreadable or mismatched spec/journal. *)
