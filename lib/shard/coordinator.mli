(** Worker-process supervision and final reassembly.

    The coordinator holds no search state: it writes the spec, spawns
    [workers] processes through the [argv] hook (each must end up in
    {!Worker.run} against the same directory), and babysits them —
    releasing a casualty's incomplete claims and respawning it under a
    fresh id within the respawn budget.  When every worker has exited
    cleanly it merges the journals and reassembles the result
    ({!Stages.assemble}); the model is bit-identical to the equivalent
    single-process build at any [workers] count because all values and
    decisions live in the journals, not in the processes. *)

type outcome = {
  result : Stages.outcome;
  test_error : Archpred_stats.Error_metrics.t option;
      (** final model's error on the merged held-out test stage
          ([None] when [test_n = 0]) *)
  workers : int;  (** workers requested *)
  respawns : int;  (** casualties replaced along the way *)
}

val run :
  ?obs:Archpred_obs.t ->
  dir:string ->
  spec:Spec.t ->
  workers:int ->
  argv:(string -> string array) ->
  ?max_respawns:int ->
  ?poll:float ->
  unit ->
  outcome
(** Run a sharded search in [dir].  [argv id] is the command vector for
    worker [id] (e.g. [[| exe; "worker"; "--dir"; dir; "--id"; id |]]);
    respawned workers get ids ["<base>.r<k>"].  Counts
    ["shard.workers"] and ["shard.respawns"] on [obs].  Fault site
    ["shard.merge"] fires before the final merge.  Raises
    [Archpred (Infeasible _)] when the respawn budget ([max_respawns],
    default 8) is exhausted, after terminating the remaining workers. *)
