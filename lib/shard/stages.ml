module Design = Archpred_design
module Stats = Archpred_stats
module Rng = Archpred_stats.Rng
module Obs = Archpred_obs
module Core = Archpred_core
module Tree = Archpred_regtree.Tree
module Rbf = Archpred_rbf

type ctx = {
  spec : Spec.t;
  config : Core.Config.t;
  response : Core.Response.t;
  obs : Obs.t;
  space : Design.Space.t;
  schedule : int array;
  stream : bool;
  cells : (int * float) array;
  test_points : Design.Space.point array;
  post_test_rng : Rng.t;
  (* Derived-value caches — everything below is a pure function of
     (spec, merged scan), cached only to avoid recomputation. *)
  winners : (int, Design.Space.point array) Hashtbl.t;
  responses_cache : (int, float array) Hashtbl.t;
  trees : (string, Tree.t) Hashtbl.t;
  trained_cache : (int, Core.Build.trained) Hashtbl.t;
  mutable refit : Core.Refit.t option;
}

let where = "Shard.Stages"

let create ?(obs = Obs.null) spec =
  let spec = Spec.validate spec in
  let config = Spec.config ~obs spec in
  let response = Spec.response ~obs spec in
  let schedule =
    match spec.Spec.mode with
    | Spec.Train -> [| spec.Spec.sample_size |]
    | Spec.Accuracy { sizes; _ } ->
        Array.of_list (List.sort_uniq Int.compare sizes)
  in
  let stream =
    spec.Spec.stream_refit
    && match spec.Spec.mode with Spec.Train -> false | Spec.Accuracy _ -> true
  in
  (* Mirror the CLI's stream discipline exactly: the root generator first
     yields the held-out test points, then everything the build draws —
     the sharded run must burn the same draws to land on the same LHS
     candidate streams. *)
  let rng = Rng.create spec.Spec.seed in
  let test_points = Core.Paper_space.test_points rng ~n:spec.Spec.test_n in
  {
    spec;
    config;
    response;
    obs;
    space = Core.Paper_space.space;
    schedule;
    stream;
    cells = Core.Tune.cells config;
    test_points;
    post_test_rng = rng;
    winners = Hashtbl.create 8;
    responses_cache = Hashtbl.create 8;
    trees = Hashtbl.create 16;
    trained_cache = Hashtbl.create 8;
    refit = None;
  }

let n_steps ctx = Array.length ctx.schedule
let stream ctx = ctx.stream

(* Stage names.  [Plan.unit_of_name] parses from the right, so the dots
   inside step-indexed stage names are safe. *)
let test_stage_name = "test"
let lhs_stage_name step = Printf.sprintf "lhs.%d" step
let sim_stage_name step = Printf.sprintf "sim.%d" step
let tune_stage_name step = Printf.sprintf "tune.%d" step

(* In stream mode there is a single LHS campaign at the largest size and
   each sim stage covers only the rows new at its step. *)
let lhs_n ctx ~step =
  if ctx.stream then Array.fold_left max 1 ctx.schedule
  else ctx.schedule.(step)

let prev_n ctx ~step = if step = 0 then 0 else ctx.schedule.(step - 1)

let sim_count ctx ~step =
  if ctx.stream then ctx.schedule.(step) - prev_n ctx ~step
  else ctx.schedule.(step)

(* Candidate [candidate] of step [step] owns the same generator stream
   {!Archpred_design.Optimize.best_lhs} would hand it: the root rng is
   advanced by one split per already-scored candidate, and the stream is
   the next split. *)
let candidate_stream ctx ~step ~candidate =
  let rng = Rng.copy ctx.post_test_rng in
  let skip = (step * ctx.spec.Spec.lhs_candidates) + candidate in
  for _ = 1 to skip do
    ignore (Rng.split rng)
  done;
  Rng.split rng

let candidate_points ctx ~step ~candidate =
  let stream = candidate_stream ctx ~step ~candidate in
  Design.Lhs.sample stream ctx.space ~n:(lhs_n ctx ~step)

let eval_lhs ctx ~step candidate =
  let points = candidate_points ctx ~step ~candidate in
  Design.Discrepancy.compute ~domains:1 Design.Discrepancy.Star points

(* The winning candidate, exactly as [best_lhs] picks it: strict-[<]
   arg-min over the scored discrepancies, earliest candidate on ties. *)
let argmin scores =
  let best = ref 0 in
  for i = 1 to Array.length scores - 1 do
    if scores.(i) < scores.(!best) then best := i
  done;
  !best

let lhs_scores ctx scan ~step =
  Journal.stage_values scan ~stage:(lhs_stage_name step)
    ~count:ctx.spec.Spec.lhs_candidates

let winner_points ctx scan ~step =
  match Hashtbl.find_opt ctx.winners step with
  | Some points -> points
  | None ->
      let winner = argmin (lhs_scores ctx scan ~step) in
      let points = candidate_points ctx ~step ~candidate:winner in
      Hashtbl.replace ctx.winners step points;
      points

let sim_point ctx scan ~step ~index =
  if ctx.stream then (winner_points ctx scan ~step:0).(prev_n ctx ~step + index)
  else (winner_points ctx scan ~step).(index)

(* A whole claimed unit of design points through the batched evaluator
   (trace decoded once per unit, bit-identical to the pointwise path). *)
let eval_sim_unit ctx scan ~step ~lo ~hi =
  let points =
    Array.init (hi - lo) (fun k -> sim_point ctx scan ~step ~index:(lo + k))
  in
  Core.Response.evaluate_many ~domains:1 ctx.response points

(* The size-n response prefix at step [step], assembled from the merged
   sim stages (one stage per step in stream mode, one per size
   otherwise). *)
let step_responses ctx scan ~step =
  match Hashtbl.find_opt ctx.responses_cache step with
  | Some r -> r
  | None ->
      let r =
        if ctx.stream then (
          let n = ctx.schedule.(step) in
          let out = Array.make n nan in
          for k = 0 to step do
            let base = prev_n ctx ~step:k in
            let chunk =
              Journal.stage_values scan ~stage:(sim_stage_name k)
                ~count:(sim_count ctx ~step:k)
            in
            Array.blit chunk 0 out base (Array.length chunk)
          done;
          out)
        else
          Journal.stage_values scan ~stage:(sim_stage_name step)
            ~count:(sim_count ctx ~step)
      in
      Hashtbl.replace ctx.responses_cache step r;
      r

let tree_at ctx ~step ~p_min ~points ~responses =
  let key = Printf.sprintf "%d:%d" step p_min in
  match Hashtbl.find_opt ctx.trees key with
  | Some tree -> tree
  | None ->
      let tree =
        Tree.build ~obs:ctx.obs ~p_min
          ~dim:(Design.Space.dimension ctx.space)
          ~points ~responses ()
      in
      Hashtbl.replace ctx.trees key tree;
      tree

let step_sample ctx scan ~step =
  if ctx.stream then
    Array.sub (winner_points ctx scan ~step:0) 0 ctx.schedule.(step)
  else winner_points ctx scan ~step

let eval_tune ctx scan ~step cell =
  let p_min, alpha = ctx.cells.(cell) in
  let points = step_sample ctx scan ~step in
  let responses = step_responses ctx scan ~step in
  let tree = tree_at ctx ~step ~p_min ~points ~responses in
  let selection =
    Core.Tune.eval_cell ~obs:ctx.obs ~criterion:ctx.spec.Spec.criterion ~tree
      ~points ~responses ~alpha ()
  in
  selection.Rbf.Selection.criterion

let tune_count ctx = Array.length ctx.cells

(* Reassemble the trained model of step [step] from the merged scan —
   the same record [Build.train] (or the streaming schedule) would have
   produced, recomputed rather than journaled because every piece is a
   deterministic function of values the journals do carry. *)
let rec trained_at ctx scan ~step =
  match Hashtbl.find_opt ctx.trained_cache step with
  | Some t -> t
  | None ->
      (* The streaming refit consumes sample prefixes strictly in order;
         make sure every earlier step has been fed first. *)
      if ctx.stream && step > 0 then
        ignore (trained_at ctx scan ~step:(step - 1));
      let points = step_sample ctx scan ~step in
      let responses = step_responses ctx scan ~step in
      let discrepancy =
        let scores = lhs_scores ctx scan ~step:(if ctx.stream then 0 else step) in
        scores.(argmin scores)
      in
      let tune =
        if ctx.stream then (
          let refit =
            match ctx.refit with
            | Some r -> r
            | None ->
                let r = Core.Refit.create ctx.config in
                ctx.refit <- Some r;
                r
          in
          Core.Refit.fit refit
            ~dim:(Design.Space.dimension ctx.space)
            ~points ~responses)
        else
          let scores =
            Journal.stage_values scan ~stage:(tune_stage_name step)
              ~count:(tune_count ctx)
          in
          let cell = argmin scores in
          let p_min, alpha = ctx.cells.(cell) in
          let tree = tree_at ctx ~step ~p_min ~points ~responses in
          let selection =
            Core.Tune.eval_cell ~obs:ctx.obs ~criterion:ctx.spec.Spec.criterion
              ~tree ~points ~responses ~alpha ()
          in
          {
            Core.Tune.p_min;
            alpha;
            criterion = selection.Rbf.Selection.criterion;
            tree;
            selection;
          }
      in
      let predictor =
        Core.Predictor.make ~space:ctx.space
          ~network:tune.Core.Tune.selection.Rbf.Selection.network
          ~tree:tune.Core.Tune.tree ~p_min:tune.Core.Tune.p_min
          ~alpha:tune.Core.Tune.alpha ()
      in
      let trained =
        {
          Core.Build.predictor;
          sample = points;
          sample_responses = responses;
          discrepancy;
          criterion = tune.Core.Tune.criterion;
          tune;
        }
      in
      Hashtbl.replace ctx.trained_cache step trained;
      trained

let test_actuals ctx scan =
  Journal.stage_values scan ~stage:test_stage_name ~count:ctx.spec.Spec.test_n

let test_points ctx = ctx.test_points

let step_error ctx scan ~step =
  let trained = trained_at ctx scan ~step in
  Core.Predictor.errors_on trained.Core.Build.predictor ~points:ctx.test_points
    ~actual:(test_actuals ctx scan)

let stop_after ctx scan ~step =
  match ctx.spec.Spec.mode with
  | Spec.Train -> true
  | Spec.Accuracy { target_mean_pct; _ } ->
      step = n_steps ctx - 1
      || (step_error ctx scan ~step).Stats.Error_metrics.mean_pct
         <= target_mean_pct

type outcome = {
  final : Core.Build.trained;
  steps : Core.Build.step list;
}

let assemble ctx scan =
  match ctx.spec.Spec.mode with
  | Spec.Train -> { final = trained_at ctx scan ~step:0; steps = [] }
  | Spec.Accuracy _ ->
      let rec go acc step =
        let trained = trained_at ctx scan ~step in
        let test_error = step_error ctx scan ~step in
        let s = { Core.Build.size = ctx.schedule.(step); trained; test_error } in
        let acc = s :: acc in
        if stop_after ctx scan ~step then
          { final = trained; steps = List.rev acc }
        else go acc (step + 1)
      in
      go [] 0

(* {2 Worker-facing stage descriptors} *)

type stage = {
  name : string;
  count : int;
  compute : Journal.scan -> lo:int -> hi:int -> float array;
}

let pointwise f _scan ~lo ~hi = Array.init (hi - lo) (fun k -> f (lo + k))

let test_stage ctx =
  if ctx.spec.Spec.test_n = 0 then None
  else
    Some
      {
        name = test_stage_name;
        count = ctx.spec.Spec.test_n;
        compute =
          (fun _scan ~lo ~hi ->
            Core.Response.evaluate_many ~domains:1 ctx.response
              (Array.sub ctx.test_points lo (hi - lo)));
      }

let lhs_stage ctx ~step =
  if ctx.stream && step > 0 then
    Obs.Error.invalid_input ~where "stream mode has a single LHS stage";
  {
    name = lhs_stage_name step;
    count = ctx.spec.Spec.lhs_candidates;
    compute = pointwise (fun c -> eval_lhs ctx ~step c);
  }

let sim_stage ctx ~step =
  {
    name = sim_stage_name step;
    count = sim_count ctx ~step;
    compute = (fun scan ~lo ~hi -> eval_sim_unit ctx scan ~step ~lo ~hi);
  }

let tune_stage ctx ~step =
  if ctx.stream then None
  else
    Some
      {
        name = tune_stage_name step;
        count = tune_count ctx;
        compute = (fun scan ~lo ~hi ->
            Array.init (hi - lo) (fun k -> eval_tune ctx scan ~step (lo + k)));
      }
