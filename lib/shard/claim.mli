(** Atomic work-unit claims.

    A claim is a file in [<dir>/claims/] created with [O_CREAT|O_EXCL] —
    the filesystem's atomic create is the mutual exclusion, so claims
    work across worker {e processes} with no coordinator in the loop.
    The file body records the claiming worker's id for crash recovery:
    when a worker dies, the coordinator releases the dead worker's
    claims on units whose results never made it to a journal, and any
    live worker picks them up.

    Claims are advisory and crash-tolerant by construction: correctness
    comes from the journal's unit-commit markers ({!Journal}), never
    from a claim file — a stale claim can only delay work, not corrupt
    the model. *)

val init : dir:string -> unit
(** Create [<dir>/claims/] (idempotent).  Raises
    [Archpred (Io_error _)] on filesystem errors other than the
    directory already existing. *)

val claim : dir:string -> name:string -> owner:string -> bool
(** Try to claim the unit: [true] if this call created the claim file,
    [false] if another worker holds it.  Fault site: ["shard.claim"]
    before the exclusive create.  Raises [Archpred (Io_error _)] when
    the create fails for a reason other than the file existing. *)

val owner : dir:string -> name:string -> string option
(** The id recorded in the unit's claim file, if the file exists. *)

val release : dir:string -> name:string -> unit
(** Remove the unit's claim file.  Idempotent. *)

val release_incomplete :
  dir:string ->
  owner:string ->
  complete:(stage:string -> lo:int -> hi:int -> bool) ->
  unit
(** Release every claim held by [owner] whose unit is not [complete] —
    the coordinator's crash-recovery step after a worker dies.  Claims
    on completed units are left in place (they are inert). *)
