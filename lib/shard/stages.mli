(** The deterministic decomposition of model construction into sharded
    stages — and its exact reassembly.

    Every value a sharded run journals is a pure function of the
    {!Spec.t}: LHS candidate streams are re-derived by replaying the
    root generator's split discipline (test points first, then one
    split per already-scored candidate, exactly as the CLI and
    {!Archpred_design.Optimize.best_lhs} consume it), design points are
    simulated per index, and tuning cells are walked in the canonical
    {!Archpred_core.Tune.cells} order.  Control decisions — LHS winner,
    tune winner, early stop — are arg-mins over merged journal values,
    so every worker and the final merge independently reach the same
    decisions with no coordinator messages.  {!assemble} therefore
    reproduces {!Archpred_core.Build.train} /
    [Build.build_to_accuracy] bit for bit
    ({!Archpred_core.Persist.to_string}-identical predictors) at any
    worker count.

    Stage names: ["test"], ["lhs.<k>"], ["sim.<k>"], ["tune.<k>"].  In
    stream-refit mode ([spec.stream_refit] with an accuracy schedule)
    there is a single ["lhs.0"] campaign at the largest size, each
    ["sim.<k>"] covers only the rows new at step [k], and there are no
    tune stages — tuning state advances by rank-1 pushes
    ({!Archpred_core.Refit}) during reassembly. *)

type ctx
(** Per-process context: spec, derived config/response, and caches of
    recomputed values.  Not thread-safe — one per worker process (or
    per driving domain in tests). *)

val create : ?obs:Archpred_obs.t -> Spec.t -> ctx
(** Validate the spec and derive the context (draws the held-out test
    points, fixing the post-test generator state). *)

val n_steps : ctx -> int
(** Schedule length: 1 in train mode, the number of distinct sizes in
    accuracy mode. *)

val stream : ctx -> bool
(** Is this a streaming-refit run? *)

(** {2 Stage descriptors} *)

type stage = {
  name : string;  (** journal stage key *)
  count : int;  (** indices in the stage *)
  compute : Journal.scan -> lo:int -> hi:int -> float array;
      (** the values at indices [lo..hi-1] — a pure function of the spec
          and of {e completed earlier} stages in the scan.  Unit-granular
          so simulation units run through the batched engine
          ({!Archpred_core.Response.evaluate_many}, bit-identical to the
          pointwise path) instead of one trace walk per index *)
}

val test_stage : ctx -> stage option
(** Held-out test-point responses ([None] when [test_n = 0]). *)

val lhs_stage : ctx -> step:int -> stage
(** Candidate discrepancies for step [step].  Raises in stream mode for
    [step > 0] (there is only the one campaign). *)

val sim_stage : ctx -> step:int -> stage
(** Design-point responses for step [step] (requires the step's LHS
    stage complete in the scan). *)

val tune_stage : ctx -> step:int -> stage option
(** Tuning-cell criteria for step [step] (requires the step's sim stage
    complete); [None] in stream mode. *)

val test_points : ctx -> Archpred_design.Space.point array
(** The held-out test points ([test_n] of them, drawn at {!create}). *)

val test_actuals : ctx -> Journal.scan -> float array
(** The merged ["test"]-stage responses.  Raises
    [Archpred (Infeasible _)] if the stage is incomplete. *)

(** {2 Control decisions and reassembly} *)

val stop_after : ctx -> Journal.scan -> step:int -> bool
(** Is [step] the last (train mode, schedule exhausted, or target
    accuracy reached)?  Requires the step's stages complete. *)

type outcome = {
  final : Archpred_core.Build.trained;
  steps : Archpred_core.Build.step list;
      (** accuracy-mode history in size order; [[]] in train mode *)
}

val assemble : ctx -> Journal.scan -> outcome
(** Reassemble the run's result from a complete merged scan — the
    record the equivalent single-process build would return. *)
