(** Per-worker result journals and the canonical merge.

    Every worker owns one append-only journal,
    [<dir>/journals/<worker>.journal], of CRC-framed JSON lines (the
    same frame as {!Archpred_core.Checkpoint}).  Line one is a header
    carrying the {!Spec.fingerprint}; after it come [result] records —
    one [(stage, index, value)] per computed index, floats in hex — and
    [unit] markers committing a {!Plan.unit_}.  Results count only once
    a marker in the {e same} journal covers them, and the marker is
    fsynced: a worker killed mid-unit leaves appended-but-uncommitted
    results that the merge discards, and the unit is reclaimed.

    {b Canonical merge.}  {!scan_dir} reads journals in filename order
    (bytewise [String.compare]) and keeps the first committed value for
    each [(stage, index)].  Because every index's value is a
    deterministic function of the spec — whichever worker computes it —
    duplicate commits are bit-identical, so the merged table (and
    therefore the final model) does not depend on worker count, timing,
    or crashes.  Torn or corrupted tails truncate the affected journal
    at the last valid line, exactly as checkpoint replay does. *)

val init : dir:string -> unit
(** Create [<dir>/journals/] (idempotent). *)

type t
(** An open journal (write side). *)

val open_ : dir:string -> worker:string -> fingerprint:string -> t
(** Open (or resume) worker [worker]'s journal.  A fresh journal gets a
    fsynced header stamped with [fingerprint]; an existing one is
    truncated past its last valid line and its header checked against
    [fingerprint] ([Archpred (Parse_error _)] on mismatch). *)

val append_result : t -> stage:string -> index:int -> value:float -> unit
(** Append one result record (flushed, not fsynced — durability comes
    from the unit marker).  Fault site: ["shard.append"]. *)

val commit_unit : t -> stage:string -> lo:int -> hi:int -> unit
(** Append a unit marker and fsync.  After this returns, the unit's
    results survive any crash. *)

val sync : t -> unit
(** Flush and fsync without committing anything. *)

val close : t -> unit
(** Flush, fsync, and close. *)

(** {2 Merge} *)

type scan
(** The merged view of every journal in a run directory. *)

val scan_dir : dir:string -> fingerprint:string -> scan
(** Merge all journals under [<dir>/journals/] (canonical order; see
    above).  A missing directory merges to an empty scan; a journal
    whose header fingerprint differs from [fingerprint] raises
    [Archpred (Parse_error _)].  Fault site: ["shard.merge"]. *)

val unit_complete : scan -> stage:string -> lo:int -> hi:int -> bool
(** Has some journal committed this exact unit? *)

val value : scan -> stage:string -> index:int -> float option
(** The merged value at [(stage, index)], if committed anywhere. *)

val stage_values : scan -> stage:string -> count:int -> float array
(** All [count] values of [stage], in index order.  Raises
    [Archpred (Infeasible _)] if any index is missing — callers check
    unit completeness first. *)
