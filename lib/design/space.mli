(** A design space: an ordered set of parameters.

    Points live in the normalised unit hypercube [\[0,1\]^n]; dimension [k]
    of a point is the normalised coordinate of parameter [k].  Sampling
    plans, discrepancy computation, regression trees and RBF networks all
    operate in normalised space, which both equalises scales across
    parameters and bakes in the per-parameter transformation of Table 1
    (a log-transformed parameter is uniform in log-space). *)

type t

type point = float array
(** One design point in normalised coordinates. *)

val create : Parameter.t list -> t
(** Build a space.  Parameter names must be distinct and the list
    non-empty. *)

val dimension : t -> int
val parameters : t -> Parameter.t array
val parameter : t -> int -> Parameter.t

val index_of : t -> string -> int
(** Dimension index of a named parameter. Raises [Not_found]. *)

val decode : t -> point -> float array
(** Natural values of a point, per parameter, in order. *)

val decode_assoc : t -> point -> (string * float) list
(** Natural values labelled by parameter name. *)

val encode : t -> float array -> point
(** Normalised point from natural values. *)

val snap : t -> sample_size:int -> point -> point
(** Snap every coordinate to its parameter's level grid. *)

val contains : point -> bool
(** All coordinates within [\[0, 1\]] (with a small tolerance). *)

val validate_point : t -> point -> unit
(** Raise [Invalid_argument] if the point has the wrong arity or leaves the
    unit cube. *)

val validate_points : t -> point array -> unit
(** Validate a whole batch with the same checks and messages as
    {!validate_point}, in two branch-light passes; used by the batched
    prediction path where per-point closure dispatch is measurable. *)

val sub_box : t -> lo:point -> hi:point -> point -> point
(** [sub_box t ~lo ~hi u] maps a point [u] of the unit cube affinely into
    the axis-aligned box [\[lo, hi\]]; used to generate test points within
    the narrower Table 2 region of the full Table 1 space. *)

val pp : Format.formatter -> t -> unit
val pp_point : t -> Format.formatter -> point -> unit
