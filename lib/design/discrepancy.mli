(** L2 discrepancies: space-filling quality of a sample.

    A discrepancy measures how far a point set deviates from the uniform
    distribution over the unit cube; lower is better.  The paper selects,
    among many candidate latin hypercube samples, the one with the lowest
    "L2-star discrepancy ... analytically derived in Hickernell" (section
    2.2, Figure 2).  Both closed forms below are exact O(d n^2) formulas:

    - {!l2_star}: the classical star discrepancy in the L2 norm
      (Warnock's formula);
    - {!centered_l2}: Hickernell's centered L2 discrepancy, which is
      invariant under reflections [u -> 1 - u] of any coordinate.

    The pairwise kernels are symmetric in (i, j), so only the diagonal and
    the strict upper triangle are summed — half the naive double loop —
    and the triangle rows are spread over the domain pool.  Per-row
    partial sums are folded in row order, so every domain count produces
    the same bits. *)

val l2_star : ?domains:int -> Space.point array -> float
(** Warnock's L2-star discrepancy of a sample in the unit cube.
    Raises [Invalid_argument] on an empty sample. *)

val centered_l2 : ?domains:int -> Space.point array -> float
(** Hickernell's centered L2 discrepancy. Raises [Invalid_argument] on an
    empty sample. *)

type kind = Star | Centered

val compute : ?domains:int -> kind -> Space.point array -> float
