type t = { params : Parameter.t array; by_name : (string, int) Hashtbl.t }
type point = float array

let create params =
  if params = [] then invalid_arg "Space.create: no parameters";
  let params = Array.of_list params in
  let by_name = Hashtbl.create (Array.length params) in
  Array.iteri
    (fun i (p : Parameter.t) ->
      if Hashtbl.mem by_name p.name then
        invalid_arg ("Space.create: duplicate parameter " ^ p.name);
      Hashtbl.add by_name p.name i)
    params;
  { params; by_name }

let dimension t = Array.length t.params
let parameters t = Array.copy t.params
let parameter t k = t.params.(k)

let index_of t name =
  match Hashtbl.find_opt t.by_name name with
  | Some i -> i
  | None -> raise Not_found

let check_arity t x =
  if Array.length x <> Array.length t.params then
    invalid_arg "Space: point arity mismatch"

let decode t x =
  check_arity t x;
  Array.mapi (fun k u -> Parameter.decode t.params.(k) u) x

let decode_assoc t x =
  check_arity t x;
  Array.to_list
    (Array.mapi
       (fun k u -> (t.params.(k).Parameter.name, Parameter.decode t.params.(k) u))
       x)

let encode t values =
  check_arity t values;
  Array.mapi (fun k v -> Parameter.encode t.params.(k) v) values

let snap t ~sample_size x =
  check_arity t x;
  Array.mapi (fun k u -> Parameter.snap t.params.(k) ~sample_size u) x

let eps = 1e-9
let contains x = Array.for_all (fun u -> u >= -.eps && u <= 1. +. eps) x

let validate_point t x =
  check_arity t x;
  if not (contains x) then invalid_arg "Space: point outside unit cube"

(* Batched validation for the hot prediction path: one pass per check
   instead of a closure call per point, with the same failure messages
   as [validate_point]. *)
let validate_points t xs =
  let dim = Array.length t.params in
  let n = Array.length xs in
  for i = 0 to n - 1 do
    if Array.length (Array.unsafe_get xs i) <> dim then
      invalid_arg "Space: point arity mismatch"
  done;
  for i = 0 to n - 1 do
    let x = Array.unsafe_get xs i in
    let ok = ref true in
    for k = 0 to dim - 1 do
      let u = Array.unsafe_get x k in
      if not (u >= -.eps && u <= 1. +. eps) then ok := false
    done;
    if not !ok then invalid_arg "Space: point outside unit cube"
  done

let sub_box t ~lo ~hi u =
  check_arity t lo;
  check_arity t hi;
  check_arity t u;
  Array.mapi (fun k v -> lo.(k) +. (v *. (hi.(k) -. lo.(k)))) u

let pp ppf t =
  Array.iter (fun p -> Format.fprintf ppf "%a@." Parameter.pp p) t.params

let pp_point t ppf x =
  check_arity t x;
  Format.fprintf ppf "{";
  Array.iteri
    (fun k u ->
      if k > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%s=%g" t.params.(k).Parameter.name
        (Parameter.decode t.params.(k) u))
    x;
  Format.fprintf ppf "}"
