module Rng = Archpred_stats.Rng
module Parallel = Archpred_stats.Parallel
module Obs = Archpred_obs

type result = {
  points : Space.point array;
  discrepancy : float;
  candidates : int;
}

let best_lhs ?(obs = Obs.null) ?(kind = Discrepancy.Star) ?(candidates = 100)
    ?domains rng space ~n =
  if candidates < 1 then
    Obs.Error.invalid_input ~where:"Optimize.best_lhs" "candidates < 1";
  Obs.with_span obs "design.best_lhs" @@ fun () ->
  Obs.count obs "lhs.candidates" candidates;
  (* One split per candidate, drawn sequentially from the caller's rng:
     each candidate owns an independent stream fixed by the seed alone, so
     scoring them on any number of domains returns the same bits (and
     advances [rng] by exactly [candidates] splits). *)
  let streams = Array.make candidates rng in
  for i = 0 to candidates - 1 do
    streams.(i) <- Rng.split rng
  done;
  let scored =
    Parallel.map ?domains
      (fun stream ->
        let points = Lhs.sample stream space ~n in
        (* The candidate level is already parallel; keep the inner kernel
           on one domain rather than flooding the pool with subtasks. *)
        (points, Discrepancy.compute ~domains:1 kind points))
      streams
  in
  let best = ref 0 in
  for i = 1 to candidates - 1 do
    if snd scored.(i) < snd scored.(!best) then best := i
  done;
  let points, discrepancy = scored.(!best) in
  { points; discrepancy; candidates }

let discrepancy_curve ?obs ?kind ?candidates ?domains rng space ~sizes =
  List.map
    (fun n ->
      let r = best_lhs ?obs ?kind ?candidates ?domains rng space ~n in
      (n, r.discrepancy))
    sizes
