(** Best-of-N sample selection by discrepancy.

    Section 2.2: "we generate a large number of latin hypercube samples and
    choose the one with the best L2-star discrepancy metric".  Figure 2 of
    the paper plots the best discrepancy found against sample size; the
    {!discrepancy_curve} helper regenerates that series.

    Candidates are scored in parallel over the domain pool.  Each candidate
    draws from its own split of the caller's generator, so the chosen
    sample is a function of the seed alone — bit-identical for every
    [domains] value. *)

type result = {
  points : Space.point array;
  discrepancy : float;
  candidates : int;  (** how many candidate samples were scored *)
}

val best_lhs :
  ?obs:Archpred_obs.t ->
  ?kind:Discrepancy.kind ->
  ?candidates:int ->
  ?domains:int ->
  Archpred_stats.Rng.t ->
  Space.t ->
  n:int ->
  result
(** [best_lhs rng space ~n] draws [candidates] (default 100) latin
    hypercube samples of size [n] and keeps the one with the lowest
    discrepancy (default {!Discrepancy.Star}).  Advances [rng] by exactly
    [candidates] splits; ties keep the earliest candidate.  Records the
    ["design.best_lhs"] span and ["lhs.candidates"] counter on [obs].
    Raises [Archpred (Invalid_input _)] when [candidates < 1]. *)

val discrepancy_curve :
  ?obs:Archpred_obs.t ->
  ?kind:Discrepancy.kind ->
  ?candidates:int ->
  ?domains:int ->
  Archpred_stats.Rng.t ->
  Space.t ->
  sizes:int list ->
  (int * float) list
(** Best discrepancy achieved at each sample size — the data of Figure 2. *)
