module Parallel = Archpred_stats.Parallel

let check points =
  if Array.length points = 0 then invalid_arg "Discrepancy: empty sample";
  Array.length points.(0)

(* Both closed forms below contain a double sum over point pairs whose
   kernel is symmetric in (i, j).  We therefore sum the diagonal and the
   strict upper triangle only — half the pairwise work — and parallelise
   the triangle by rows.  Each row's partial sum is written to its own
   slot and the slots are folded in row order afterwards, so the result is
   bit-identical for every domain count (only the grouping of *rows* onto
   domains varies, never the order of additions within the total). *)

(* Warnock's closed form:
   D2*^2 = 3^-d
         - (2^(1-d) / n)   sum_i prod_k (1 - x_ik^2)
         + (1 / n^2)       sum_{i,j} prod_k (1 - max(x_ik, x_jk)) *)
let l2_star ?domains points =
  let d = check points in
  let n = Array.length points in
  let nf = float_of_int n in
  let term1 = 3. ** float_of_int (-d) in
  let sum2 = ref 0. in
  let diag = ref 0. in
  Array.iter
    (fun x ->
      let prod = ref 1. in
      let prod_diag = ref 1. in
      for k = 0 to d - 1 do
        prod := !prod *. (1. -. (x.(k) *. x.(k)));
        (* max(x_ik, x_ik) = x_ik *)
        prod_diag := !prod_diag *. (1. -. x.(k))
      done;
      sum2 := !sum2 +. !prod;
      diag := !diag +. !prod_diag)
    points;
  let term2 = 2. ** float_of_int (1 - d) /. nf *. !sum2 in
  let row_sums =
    Parallel.init ?domains n (fun i ->
        let xi = points.(i) in
        let acc = ref 0. in
        for j = i + 1 to n - 1 do
          let xj = points.(j) in
          let prod = ref 1. in
          for k = 0 to d - 1 do
            prod := !prod *. (1. -. Float.max xi.(k) xj.(k))
          done;
          acc := !acc +. !prod
        done;
        !acc)
  in
  let off = Array.fold_left ( +. ) 0. row_sums in
  let term3 = (!diag +. (2. *. off)) /. (nf *. nf) in
  sqrt (Float.max 0. (term1 -. term2 +. term3))

(* Hickernell's centered L2 discrepancy:
   CD^2 = (13/12)^d
        - (2/n)   sum_i prod_k (1 + |z_ik|/2 - z_ik^2/2)
        + (1/n^2) sum_{i,j} prod_k (1 + |z_ik|/2 + |z_jk|/2 - |x_ik - x_jk|/2)
   where z_ik = x_ik - 1/2. *)
let centered_l2 ?domains points =
  let d = check points in
  let n = Array.length points in
  let nf = float_of_int n in
  let term1 = (13. /. 12.) ** float_of_int d in
  (* |x_ik - 1/2| is needed O(n) times per point by the pair sum; hoist it. *)
  let zs =
    Array.map (fun x -> Array.map (fun v -> abs_float (v -. 0.5)) x) points
  in
  let sum2 = ref 0. in
  let diag = ref 0. in
  Array.iter
    (fun z ->
      let prod = ref 1. in
      let prod_diag = ref 1. in
      for k = 0 to d - 1 do
        let zk = z.(k) in
        prod := !prod *. (1. +. (0.5 *. zk) -. (0.5 *. zk *. zk));
        (* i = j: z_i = z_j and |x_i - x_j| = 0 *)
        prod_diag := !prod_diag *. (1. +. zk)
      done;
      sum2 := !sum2 +. !prod;
      diag := !diag +. !prod_diag)
    zs;
  let term2 = 2. /. nf *. !sum2 in
  let row_sums =
    Parallel.init ?domains n (fun i ->
        let xi = points.(i) and zi = zs.(i) in
        let acc = ref 0. in
        for j = i + 1 to n - 1 do
          let xj = points.(j) and zj = zs.(j) in
          let prod = ref 1. in
          for k = 0 to d - 1 do
            let dij = abs_float (xi.(k) -. xj.(k)) in
            prod := !prod *. (1. +. (0.5 *. zi.(k)) +. (0.5 *. zj.(k)) -. (0.5 *. dij))
          done;
          acc := !acc +. !prod
        done;
        !acc)
  in
  let off = Array.fold_left ( +. ) 0. row_sums in
  let term3 = (!diag +. (2. *. off)) /. (nf *. nf) in
  sqrt (Float.max 0. (term1 -. term2 +. term3))

type kind = Star | Centered

let compute ?domains = function
  | Star -> l2_star ?domains
  | Centered -> centered_l2 ?domains
