type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative size";
  { rows; cols; data = Array.make (rows * cols) 0. }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1. else 0.)
let rows m = m.rows
let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Matrix.get: out of bounds";
  Array.unsafe_get m.data ((i * m.cols) + j)

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Matrix.set: out of bounds";
  Array.unsafe_set m.data ((i * m.cols) + j) v

let copy m = { m with data = Array.copy m.data }

let of_arrays a =
  let r = Array.length a in
  if r = 0 then create 0 0
  else begin
    let c = Array.length a.(0) in
    Array.iter
      (fun row ->
        if Array.length row <> c then
          invalid_arg "Matrix.of_arrays: ragged rows")
      a;
    init r c (fun i j -> a.(i).(j))
  end

let to_arrays m =
  Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))

let row m i = Array.init m.cols (fun j -> get m i j)
let col m j = Array.init m.rows (fun i -> get m i j)

let set_row m i v =
  if Array.length v <> m.cols then invalid_arg "Matrix.set_row: bad length";
  Array.blit v 0 m.data (i * m.cols) m.cols

let set_col m j v =
  if Array.length v <> m.rows then invalid_arg "Matrix.set_col: bad length";
  for i = 0 to m.rows - 1 do
    set m i j v.(i)
  done

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let m = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if not (Float.equal aik 0.) then
        for j = 0 to b.cols - 1 do
          m.data.((i * b.cols) + j) <-
            m.data.((i * b.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  m

let mul_vec a x =
  if a.cols <> Array.length x then invalid_arg "Matrix.mul_vec: mismatch";
  Array.init a.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to a.cols - 1 do
        acc := !acc +. (a.data.((i * a.cols) + j) *. x.(j))
      done;
      !acc)

let tmul a b =
  if a.rows <> b.rows then invalid_arg "Matrix.tmul: dimension mismatch";
  let m = create a.cols b.cols in
  for k = 0 to a.rows - 1 do
    for i = 0 to a.cols - 1 do
      let aki = a.data.((k * a.cols) + i) in
      if not (Float.equal aki 0.) then
        for j = 0 to b.cols - 1 do
          m.data.((i * b.cols) + j) <-
            m.data.((i * b.cols) + j) +. (aki *. b.data.((k * b.cols) + j))
        done
    done
  done;
  m

let map2 name f a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg ("Matrix." ^ name ^ ": dimension mismatch");
  { a with data = Array.init (Array.length a.data) (fun i -> f a.data.(i) b.data.(i)) }

let add a b = map2 "add" ( +. ) a b
let sub a b = map2 "sub" ( -. ) a b
let scale s a = { a with data = Array.map (fun v -> s *. v) a.data }

let equal ?(eps = 0.) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  for i = 0 to Array.length a.data - 1 do
    if abs_float (a.data.(i) -. b.data.(i)) > eps then ok := false
  done;
  !ok

let select_cols a idx =
  Array.iter
    (fun j ->
      if j < 0 || j >= a.cols then invalid_arg "Matrix.select_cols: bad index")
    idx;
  init a.rows (Array.length idx) (fun i k -> get a i idx.(k))

let frobenius a =
  sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0. a.data)

let pp ppf m =
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.4g" (get m i j)
    done;
    Format.fprintf ppf "]@."
  done
