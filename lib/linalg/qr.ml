type t = {
  qr : Matrix.t; (* Householder vectors below the diagonal, R on/above *)
  rdiag : float array;
}

exception Rank_deficient

let decompose a =
  let p = Matrix.rows a and m = Matrix.cols a in
  if p < m then invalid_arg "Qr.decompose: more columns than rows";
  let qr = Matrix.copy a in
  let rdiag = Array.make m 0. in
  for k = 0 to m - 1 do
    (* Norm of the k-th column below the diagonal. *)
    let nrm = ref 0. in
    for i = k to p - 1 do
      let v = Matrix.get qr i k in
      nrm := sqrt ((!nrm *. !nrm) +. (v *. v))
    done;
    if not (Float.equal !nrm 0.) then begin
      let nrm = if Matrix.get qr k k < 0. then -. !nrm else !nrm in
      for i = k to p - 1 do
        Matrix.set qr i k (Matrix.get qr i k /. nrm)
      done;
      Matrix.set qr k k (Matrix.get qr k k +. 1.);
      (* Apply the reflector to the remaining columns. *)
      for j = k + 1 to m - 1 do
        let s = ref 0. in
        for i = k to p - 1 do
          s := !s +. (Matrix.get qr i k *. Matrix.get qr i j)
        done;
        let s = -. !s /. Matrix.get qr k k in
        for i = k to p - 1 do
          Matrix.set qr i j (Matrix.get qr i j +. (s *. Matrix.get qr i k))
        done
      done;
      rdiag.(k) <- -.nrm
    end
    else rdiag.(k) <- 0.
  done;
  { qr; rdiag }

let is_full_rank t =
  Array.for_all (fun d -> abs_float d > 1e-12) t.rdiag

let solve t y =
  let p = Matrix.rows t.qr and m = Matrix.cols t.qr in
  if Array.length y <> p then invalid_arg "Qr.solve: bad length";
  if not (is_full_rank t) then raise Rank_deficient;
  let b = Array.copy y in
  (* Apply Q' to y. *)
  for k = 0 to m - 1 do
    let s = ref 0. in
    for i = k to p - 1 do
      s := !s +. (Matrix.get t.qr i k *. b.(i))
    done;
    let s = -. !s /. Matrix.get t.qr k k in
    for i = k to p - 1 do
      b.(i) <- b.(i) +. (s *. Matrix.get t.qr i k)
    done
  done;
  (* Back-substitute R w = Q' y. *)
  let w = Array.make m 0. in
  for k = m - 1 downto 0 do
    let acc = ref b.(k) in
    for j = k + 1 to m - 1 do
      acc := !acc -. (Matrix.get t.qr k j *. w.(j))
    done;
    w.(k) <- !acc /. t.rdiag.(k)
  done;
  w

let r t =
  let m = Matrix.cols t.qr in
  Matrix.init m m (fun i j ->
      if i = j then t.rdiag.(i)
      else if i < j then Matrix.get t.qr i j
      else 0.)

let least_squares a y = solve (decompose a) y

let least_squares_ridge a y ~lambda =
  if lambda < 0. then invalid_arg "Qr.least_squares_ridge: lambda < 0";
  let p = Matrix.rows a and m = Matrix.cols a in
  if Array.length y <> p then invalid_arg "Qr.least_squares_ridge: bad length";
  let s = sqrt lambda in
  let aug =
    Matrix.init (p + m) m (fun i j ->
        if i < p then Matrix.get a i j else if i - p = j then s else 0.)
  in
  let y_aug = Array.make (p + m) 0. in
  Array.blit y 0 y_aug 0 p;
  solve (decompose aug) y_aug

let residual_sum_squares a w y =
  let fitted = Matrix.mul_vec a w in
  let acc = ref 0. in
  for i = 0 to Array.length y - 1 do
    let d = fitted.(i) -. y.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc
