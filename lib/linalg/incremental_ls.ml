type t = {
  mutable p : int;
  n_cols : int;
  gram : float array; (* n_cols x n_cols, row-major; symmetric *)
  hy : float array; (* n_cols *)
  mutable yty : float;
  jitter : float;
}

let create ?(jitter = 0.) ~design ~responses () =
  let p = Matrix.rows design in
  if p <> Array.length responses then
    invalid_arg "Incremental_ls.create: dimension mismatch";
  if jitter < 0. then invalid_arg "Incremental_ls.create: negative jitter";
  let nc = Matrix.cols design in
  let g = Matrix.tmul design design in
  let gram = Array.make (nc * nc) 0. in
  for a = 0 to nc - 1 do
    for b = 0 to nc - 1 do
      gram.((a * nc) + b) <- Matrix.get g a b
    done
  done;
  let hy =
    Array.init nc (fun j ->
        let acc = ref 0. in
        for i = 0 to p - 1 do
          acc := !acc +. (Matrix.get design i j *. responses.(i))
        done;
        !acc)
  in
  let yty = Array.fold_left (fun acc y -> acc +. (y *. y)) 0. responses in
  { p; n_cols = nc; gram; hy; yty; jitter }

let p t = t.p
let n_cols t = t.n_cols
let yty t = t.yty

(* Streaming (rank-1) moment update: one new observation row extends the
   Gram and moment sums without touching the existing entries' history, so
   pushing rows one by one in index order is deterministic whatever batch
   shape they arrived in.  Runs on the streaming-refit hot path, so it must
   not allocate: plain loops over the preallocated moment arrays. *)
let add_row t ~row ~y =
  if Array.length row <> t.n_cols then
    invalid_arg "Incremental_ls.add_row: row width mismatch";
  let n = t.n_cols in
  let gram = t.gram and hy = t.hy in
  for a = 0 to n - 1 do
    let ha = Array.unsafe_get row a in
    let arow = a * n in
    for b = 0 to n - 1 do
      Array.unsafe_set gram (arow + b)
        (Array.unsafe_get gram (arow + b) +. (ha *. Array.unsafe_get row b))
    done;
    Array.unsafe_set hy a (Array.unsafe_get hy a +. (ha *. y))
  done;
  t.yty <- t.yty +. (y *. y);
  t.p <- t.p + 1

type factor = {
  ls : t;
  ids : int array; (* active columns, in push order *)
  l : float array; (* lower-triangular Cholesky rows, stride n_cols *)
  z : float array; (* z = L^-1 (H'y)_S, kept in step with l *)
  mutable m : int;
  (* Lifetime work counters for observability: every push attempt pays the
     forward substitution whether or not it is accepted, so attempts are
     what gets counted.  [reset] does not clear them. *)
  mutable pushes : int;
  mutable pops : int;
}

let factor ls =
  let n = max 1 ls.n_cols in
  {
    ls;
    ids = Array.make n (-1);
    l = Array.make (n * n) 0.;
    z = Array.make n 0.;
    m = 0;
    pushes = 0;
    pops = 0;
  }

let size f = f.m
let ids f = Array.sub f.ids 0 f.m
let reset f = f.m <- 0
let pushes f = f.pushes
let pops f = f.pops

let push f j =
  f.pushes <- f.pushes + 1;
  let ls = f.ls in
  let n = ls.n_cols in
  if j < 0 || j >= n then invalid_arg "Incremental_ls.push: bad column";
  let m = f.m in
  if m >= n then invalid_arg "Incremental_ls.push: factor full";
  let l = f.l and ids = f.ids and gram = ls.gram in
  let row = m * n in
  (* Forward-substitute the new row of L against the existing rows:
     L_mk = (G_{ids_k, j} - sum_{q<k} L_mq L_kq) / L_kk. *)
  for k = 0 to m - 1 do
    let acc = ref (Array.unsafe_get gram ((Array.unsafe_get ids k * n) + j)) in
    let krow = k * n in
    for q = 0 to k - 1 do
      acc :=
        !acc -. (Array.unsafe_get l (row + q) *. Array.unsafe_get l (krow + q))
    done;
    Array.unsafe_set l (row + k) (!acc /. Array.unsafe_get l (krow + k))
  done;
  let d2 = ref (Array.unsafe_get gram ((j * n) + j) +. ls.jitter) in
  for q = 0 to m - 1 do
    let v = Array.unsafe_get l (row + q) in
    d2 := !d2 -. (v *. v)
  done;
  if !d2 <= 0. then false
  else begin
    let lmm = sqrt !d2 in
    Array.unsafe_set l (row + m) lmm;
    (* z grows by one entry per push and truncates on pop, so the explained
       sum of squares is always [sum z_k^2] over the live prefix. *)
    let zm = ref ls.hy.(j) in
    for k = 0 to m - 1 do
      zm := !zm -. (Array.unsafe_get l (row + k) *. Array.unsafe_get f.z k)
    done;
    f.z.(m) <- !zm /. lmm;
    ids.(m) <- j;
    f.m <- m + 1;
    true
  end

let pop f =
  if f.m = 0 then invalid_arg "Incremental_ls.pop: empty factor";
  (* L is lower-triangular: dropping the last row and column is exact
     truncation, no refactorisation. *)
  f.pops <- f.pops + 1;
  f.m <- f.m - 1

let set f cols =
  reset f;
  let ok = List.for_all (fun j -> push f j) cols in
  if not ok then reset f;
  ok

let explained f =
  let acc = ref 0. in
  for k = 0 to f.m - 1 do
    let z = Array.unsafe_get f.z k in
    acc := !acc +. (z *. z)
  done;
  !acc

let rss f = Float.max 0. (f.ls.yty -. explained f)

let sigma2 f =
  if f.m = 0 || f.m >= f.ls.p then None
  else Some (rss f /. float_of_int f.ls.p)

let solve f =
  let m = f.m and n = f.ls.n_cols in
  let w = Array.sub f.z 0 m in
  (* Back-substitute L^T w = z; w.(k) pairs with (ids f).(k). *)
  for i = m - 1 downto 0 do
    let acc = ref w.(i) in
    for j = i + 1 to m - 1 do
      acc := !acc -. (Array.unsafe_get f.l ((j * n) + i) *. w.(j))
    done;
    w.(i) <- !acc /. Array.unsafe_get f.l ((i * n) + i)
  done;
  w
