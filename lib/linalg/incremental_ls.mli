(** Incremental least squares over subsets of a fixed design matrix.

    Greedy model selection (RBF center selection, stepwise regression)
    scores thousands of column subsets that differ by one to three
    columns.  Refitting each subset from scratch costs O(p m^2) by QR, or
    O(m^3) by a fresh Cholesky of the normal equations.  This module
    precomputes the Gram moments [G = H'H], [H'y] and [y'y] once and then
    maintains a Cholesky factor L of the active submatrix *incrementally*:

    - {!push} appends a column — one forward substitution, O(m^2);
    - {!pop} drops the most recently pushed column — exact truncation of
      the lower-triangular factor, O(1);
    - scoring reads [RSS = y'y - ||z||^2] where [z = L^-1 (H'y)_S] is kept
      in step with L, O(m) per query.

    A candidate step (push, score, pop) is therefore O(m^2) instead of the
    O(m^3) full refactorisation — the difference between 50 ms and a few
    ms per selection pass on the paper's sample sizes. *)

type t
(** Precomputed moments of a p-by-M design matrix and response vector. *)

val create :
  ?jitter:float -> design:Matrix.t -> responses:float array -> unit -> t
(** Precompute [H'H], [H'y] and [y'y].  [jitter] (default 0) is added to
    the Gram diagonal as each column is pushed, keeping the factor defined
    when columns nearly coincide.  Raises [Invalid_argument] on dimension
    mismatch or negative jitter. *)

val p : t -> int
(** Number of rows (observations) of the design. *)

val n_cols : t -> int
(** Number of columns (candidate regressors) of the design. *)

val yty : t -> float
(** [y'y], the response sum of squares. *)

val add_row : t -> row:float array -> y:float -> unit
(** [add_row t ~row ~y] streams one new observation into the moments:
    [G += row row'], [H'y += y row], [y'y += y^2], [p += 1] — a rank-1
    update costing O(M^2), allocation-free.  Rows pushed one at a time in
    index order produce bit-identical moments whatever batch shape they
    arrived in, which is what makes streaming refit deterministic across
    shard counts.  Any live {!factor} built on [t] is stale after this
    call: {!reset} and re-push (or build a fresh factor) before scoring.
    Raises [Invalid_argument] on a row width mismatch. *)

type factor
(** A mutable Cholesky factor of the normal equations restricted to an
    ordered subset of columns.  Not safe for concurrent use; create one
    per domain. *)

val factor : t -> factor
(** A fresh, empty factor with capacity for every column. *)

val size : factor -> int
(** Number of active columns. *)

val ids : factor -> int array
(** Active columns, in push order. *)

val reset : factor -> unit
(** Drop every column (O(1)).  Does not clear {!pushes}/{!pops}. *)

val pushes : factor -> int
(** Lifetime count of {!push} attempts (accepted or rejected — either way
    the forward substitution was paid).  Callers report these to the
    observability layer; this module stays free of that dependency. *)

val pops : factor -> int
(** Lifetime count of {!pop} calls. *)

val push : factor -> int -> bool
(** [push f j] appends column [j].  Returns [false] — leaving the factor
    unchanged — if the updated matrix is not positive definite (the column
    is numerically dependent on the active set).  Raises
    [Invalid_argument] if [j] is out of range or the factor is full. *)

val pop : factor -> unit
(** Drop the most recently pushed column.  Raises [Invalid_argument] on an
    empty factor. *)

val set : factor -> int list -> bool
(** [set f cols] is {!reset} followed by {!push} of each column in order.
    On any push failure the factor is reset and the result is [false]. *)

val explained : factor -> float
(** [||z||^2 = w' (H'y)_S], the explained sum of squares. *)

val rss : factor -> float
(** Residual sum of squares of the active set, clamped at 0. *)

val sigma2 : factor -> float option
(** Maximum-likelihood error variance [RSS / p]; [None] for the empty set
    or when [size >= p] (the criterion formulas reject those anyway). *)

val solve : factor -> float array
(** Least-squares coefficients of the active set; entry [k] pairs with
    [(ids f).(k)]. *)
