type t = {
  lu : Matrix.t; (* packed L (unit diagonal, below) and U (on/above) *)
  perm : int array; (* row permutation *)
  sign : float; (* parity of the permutation, for det *)
}

exception Singular

let decompose a =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Lu.decompose: not square";
  let lu = Matrix.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* Partial pivoting: largest magnitude in column k at or below row k. *)
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if abs_float (Matrix.get lu i k) > abs_float (Matrix.get lu !pivot k)
      then pivot := i
    done;
    if !pivot <> k then begin
      for j = 0 to n - 1 do
        let tmp = Matrix.get lu k j in
        Matrix.set lu k j (Matrix.get lu !pivot j);
        Matrix.set lu !pivot j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot);
      perm.(!pivot) <- tmp;
      sign := -. !sign
    end;
    let pkk = Matrix.get lu k k in
    if Float.equal pkk 0. then raise Singular;
    for i = k + 1 to n - 1 do
      let factor = Matrix.get lu i k /. pkk in
      Matrix.set lu i k factor;
      for j = k + 1 to n - 1 do
        Matrix.set lu i j (Matrix.get lu i j -. (factor *. Matrix.get lu k j))
      done
    done
  done;
  { lu; perm; sign = !sign }

let solve t b =
  let n = Matrix.rows t.lu in
  if Array.length b <> n then invalid_arg "Lu.solve: bad length";
  let x = Array.init n (fun i -> b.(t.perm.(i))) in
  (* Forward substitution with unit lower triangle. *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (Matrix.get t.lu i j *. x.(j))
    done
  done;
  (* Back substitution with upper triangle. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (Matrix.get t.lu i j *. x.(j))
    done;
    x.(i) <- x.(i) /. Matrix.get t.lu i i
  done;
  x

let solve_matrix t b =
  let n = Matrix.rows t.lu in
  if Matrix.rows b <> n then invalid_arg "Lu.solve_matrix: bad rows";
  let result = Matrix.create n (Matrix.cols b) in
  for j = 0 to Matrix.cols b - 1 do
    Matrix.set_col result j (solve t (Matrix.col b j))
  done;
  result

let det t =
  let n = Matrix.rows t.lu in
  let d = ref t.sign in
  for i = 0 to n - 1 do
    d := !d *. Matrix.get t.lu i i
  done;
  !d

let inverse t = solve_matrix t (Matrix.identity (Matrix.rows t.lu))
