type entry = {
  id : string;
  title : string;
  run : Context.t -> Format.formatter -> unit;
}

let paper_only =
  [
    { id = "table1"; title = "Parameter ranges and levels"; run = Table1.run };
    { id = "table2"; title = "Test-data parameter ranges"; run = Table2.run };
    { id = "table3"; title = "Error diagnostics of the predictive model"; run = Table3.run };
    { id = "table4"; title = "Diagnostics of the RBF model for mcf"; run = Table4.run };
    { id = "table5"; title = "Most significant tree splits"; run = Table5.run };
    { id = "fig1"; title = "CPI response surface (vortex)"; run = Fig1.run };
    { id = "fig2"; title = "L2-star discrepancy vs simulations"; run = Fig2.run };
    { id = "fig3"; title = "The RBF network (trained instance)"; run = Fig3.run };
    { id = "fig4"; title = "Error vs sample size (mcf, twolf)"; run = Fig4.run };
    { id = "fig5"; title = "Split-value distribution (mcf)"; run = Fig5.run };
    { id = "fig6"; title = "Predicted vs simulated trends (vortex)"; run = Fig6.run };
    { id = "fig7"; title = "Linear vs RBF accuracy"; run = Fig7.run };
  ]

let ablations =
  [
    { id = "ablation_sampling"; title = "Sampling-strategy ablation"; run = Ablations.sampling };
    { id = "ablation_centers"; title = "Center-selection ablation"; run = Ablations.centers };
    { id = "ablation_criterion"; title = "Selection-criterion ablation"; run = Ablations.criterion };
    { id = "ablation_alpha"; title = "Radius-scale ablation"; run = Ablations.alpha };
  ]

let extensions =
  [
    { id = "ext_firstorder"; title = "First-order analytical model baseline"; run = Extensions.firstorder };
    { id = "ext_power"; title = "RBF models of energy per instruction"; run = Extensions.power };
    { id = "ext_statsim"; title = "Statistical-simulation clone accuracy"; run = Extensions.stat_sim };
    { id = "ext_adaptive"; title = "Adaptive sampling vs one-shot LHS"; run = Extensions.adaptive };
    { id = "ext_modelzoo"; title = "All section-5 model families side by side"; run = Extensions.modelzoo };
    { id = "ext_sensitivity"; title = "Model-driven parameter significance"; run = Extensions.sensitivity };
  ]

let all = paper_only @ ablations @ extensions
let find id = List.find_opt (fun e -> e.id = id) all

let run_all ?(entries = all) ctx ppf =
  Format.fprintf ppf "archpred reproduction run (scale=%s, seed=%d)@."
    (Scale.to_string (Context.scale ctx))
    (Context.seed ctx);
  List.iter
    (fun e ->
      let t0 = Archpred_obs.now_ns () in
      e.run ctx ppf;
      Format.fprintf ppf "@.[%s finished in %.1fs]@." e.id
        (Int64.to_float (Int64.sub (Archpred_obs.now_ns ()) t0) *. 1e-9))
    entries
