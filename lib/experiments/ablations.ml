module Design = Archpred_design
module Core = Archpred_core
module Stats = Archpred_stats
module Rbf = Archpred_rbf
module Tree = Archpred_regtree.Tree

let profile = Archpred_workloads.Spec2000.mcf

(* Train on an explicit sample with the standard tuning pipeline. *)
let train_on_sample ?criterion ctx points =
  let response = Context.response ctx profile in
  let responses = Core.Response.evaluate_many response points in
  let config =
    let base = Core.Config.with_obs (Context.obs ctx) Core.Config.default in
    match criterion with
    | None -> base
    | Some c -> Core.Config.with_criterion c base
  in
  let tune =
    Core.Tune.tune ~config ~dim:Core.Paper_space.dim ~points ~responses ()
  in
  ( Core.Predictor.make ~space:Core.Paper_space.space
      ~network:tune.Core.Tune.selection.Rbf.Selection.network
      ~tree:tune.Core.Tune.tree ~p_min:tune.Core.Tune.p_min
      ~alpha:tune.Core.Tune.alpha (),
    tune,
    responses )

let test_error ctx predictor =
  let points, actual = Context.test_set ctx profile in
  Core.Predictor.errors_on predictor ~points ~actual

let sampling ctx ppf =
  Report.section ppf ~id:"Ablation: sampling"
    ~title:"Best-of-N LHS vs single LHS vs uniform random vs Sobol (mcf)";
  let n = Scale.ablation_sample_size (Context.scale ctx) in
  let space = Core.Paper_space.space in
  let strategies =
    [
      ( "best-of-N LHS",
        fun rng ->
          (Design.Optimize.best_lhs
             ~candidates:(Scale.lhs_candidates (Context.scale ctx))
             rng space ~n)
            .Design.Optimize.points );
      ( "single LHS",
        fun rng ->
          (Design.Optimize.best_lhs ~candidates:1 rng space ~n)
            .Design.Optimize.points );
      ("uniform random", fun rng -> Design.Random_design.sample_snapped rng space ~n);
      ("sobol sequence", fun _rng -> Design.Sobol.sample space ~n);
    ]
  in
  let replicates = 3 in
  Format.fprintf ppf "%-16s %12s %10s %10s   (mean over %d replicates)@."
    "strategy" "discrepancy" "mean%" "max%" replicates;
  Report.rule ppf;
  List.iter
    (fun (name, draw) ->
      let runs =
        List.init replicates (fun _ ->
            let points = draw (Context.rng ctx) in
            let disc = Design.Discrepancy.l2_star points in
            let predictor, _, _ = train_on_sample ctx points in
            let err = test_error ctx predictor in
            (disc, err))
      in
      let avg f =
        Stats.Descriptive.mean (Array.of_list (List.map f runs))
      in
      Format.fprintf ppf "%-16s %12.5f %10.2f %10.2f@." name
        (avg fst)
        (avg (fun (_, e) -> e.Stats.Error_metrics.mean_pct))
        (avg (fun (_, e) -> e.Stats.Error_metrics.max_pct)))
    strategies;
  Format.fprintf ppf
    "@.Expected: better space filling (lower discrepancy) gives lower \
     model error on@.average; single samples are noisy.@."

let centers ctx ppf =
  Report.section ppf ~id:"Ablation: centers"
    ~title:"Tree-ordered AICc selection vs naive center sets (mcf)";
  let n = Scale.ablation_sample_size (Context.scale ctx) in
  let trained = Context.train ctx profile ~n in
  let points = trained.Core.Build.sample in
  let responses = trained.Core.Build.sample_responses in
  let alpha = trained.Core.Build.tune.Core.Tune.alpha in
  let fit_centers name centers =
    match
      Rbf.Network.fit ~centers ~points ~responses ()
    with
    | network, _ ->
        (* rebuild through [make] so the packed batch-kernel storage is
           derived from the swapped-in network, never left stale *)
        let p = trained.Core.Build.predictor in
        let predictor =
          Core.Predictor.make ~space:p.Core.Predictor.space ~network
            ?tree:p.Core.Predictor.tree ~p_min:p.Core.Predictor.p_min
            ~alpha:p.Core.Predictor.alpha ()
        in
        let err = test_error ctx predictor in
        Format.fprintf ppf "%-24s %8d %10.2f %10.2f@." name
          (Array.length centers) err.Stats.Error_metrics.mean_pct
          err.Stats.Error_metrics.max_pct
    | exception Invalid_argument msg ->
        Format.fprintf ppf "%-24s %8s %s@." name "-" msg
  in
  Format.fprintf ppf "%-24s %8s %10s %10s@." "center set" "m" "mean%" "max%";
  Report.rule ppf;
  (let err = test_error ctx trained.Core.Build.predictor in
   Format.fprintf ppf "%-24s %8d %10.2f %10.2f@." "tree-ordered AICc"
     (Core.Predictor.n_centers trained.Core.Build.predictor)
     err.Stats.Error_metrics.mean_pct err.Stats.Error_metrics.max_pct);
  let tree4 = Tree.build ~p_min:4 ~dim:Core.Paper_space.dim ~points ~responses () in
  let leaf_centers =
    Tree.leaves tree4
    |> List.map (fun node ->
           {
             Rbf.Network.c = Tree.center node;
             r = Array.map (fun s -> Float.max 1e-6 (alpha *. s)) (Tree.size node);
           })
    |> Array.of_list
  in
  fit_centers "all leaves (p_min=4)" leaf_centers;
  let first_nodes =
    Tree.nodes trained.Core.Build.tune.Core.Tune.tree
    |> List.filteri (fun i _ -> i < Array.length points / 4)
    |> List.map (fun node ->
           {
             Rbf.Network.c = Tree.center node;
             r = Array.map (fun s -> Float.max 1e-6 (alpha *. s)) (Tree.size node);
           })
    |> Array.of_list
  in
  fit_centers "first p/4 tree nodes" first_nodes;
  (* greedy forward selection over the same candidates, no tree ordering *)
  let candidates =
    Rbf.Tree_centers.of_tree ~alpha trained.Core.Build.tune.Core.Tune.tree
  in
  let forward =
    Rbf.Selection.select_forward ~candidates ~points ~responses ()
  in
  (let p = trained.Core.Build.predictor in
   let predictor =
     Core.Predictor.make ~space:p.Core.Predictor.space
       ~network:forward.Rbf.Selection.network ?tree:p.Core.Predictor.tree
       ~p_min:p.Core.Predictor.p_min ~alpha:p.Core.Predictor.alpha ()
   in
   let err = test_error ctx predictor in
   Format.fprintf ppf "%-24s %8d %10.2f %10.2f@." "greedy forward (no tree)"
     (List.length forward.Rbf.Selection.selected_node_ids)
     err.Stats.Error_metrics.mean_pct err.Stats.Error_metrics.max_pct);
  Format.fprintf ppf
    "@.Expected: unselected center sets either overfit (many centers) or \
     underfit;@.greedy forward selection is competitive but pays a large \
     search cost.@."

let criterion ctx ppf =
  Report.section ppf ~id:"Ablation: criterion"
    ~title:"Model-selection criterion: AICc vs AIC vs BIC vs GCV (mcf)";
  let n = Scale.ablation_sample_size (Context.scale ctx) in
  let trained = Context.train ctx profile ~n in
  let points = trained.Core.Build.sample in
  Format.fprintf ppf "%-8s %8s %10s %10s@." "crit" "m" "mean%" "max%";
  Report.rule ppf;
  List.iter
    (fun crit ->
      let response = Context.response ctx profile in
      let responses = Core.Response.evaluate_many response points in
      let tune =
        Core.Tune.tune
          ~config:(Core.Config.with_criterion crit Core.Config.default)
          ~dim:Core.Paper_space.dim ~points ~responses ()
      in
      let predictor =
        Core.Predictor.make ~space:Core.Paper_space.space
          ~network:tune.Core.Tune.selection.Rbf.Selection.network
          ~tree:tune.Core.Tune.tree ~p_min:tune.Core.Tune.p_min
          ~alpha:tune.Core.Tune.alpha ()
      in
      let err = test_error ctx predictor in
      Format.fprintf ppf "%-8s %8d %10.2f %10.2f@."
        (Rbf.Criteria.to_string crit)
        (Core.Predictor.n_centers predictor)
        err.Stats.Error_metrics.mean_pct err.Stats.Error_metrics.max_pct)
    [ Rbf.Criteria.Aicc; Rbf.Criteria.Aic; Rbf.Criteria.Bic; Rbf.Criteria.Gcv ];
  Format.fprintf ppf "@.Expected: AICc and GCV are competitive; AIC \
                      over-selects at small samples.@."

let alpha ctx ppf =
  Report.section ppf ~id:"Ablation: alpha"
    ~title:"Radius-scale sensitivity (eq. 8) at fixed p_min=1 (mcf)";
  let n = Scale.ablation_sample_size (Context.scale ctx) in
  let trained = Context.train ctx profile ~n in
  let points = trained.Core.Build.sample in
  let responses = trained.Core.Build.sample_responses in
  let tree = Tree.build ~p_min:1 ~dim:Core.Paper_space.dim ~points ~responses () in
  Format.fprintf ppf "%-8s %8s %12s %10s %10s@." "alpha" "m" "criterion"
    "mean%" "max%";
  Report.rule ppf;
  List.iter
    (fun alpha ->
      let candidates = Rbf.Tree_centers.of_tree ~alpha tree in
      let selection =
        Rbf.Selection.select ~tree ~candidates ~points ~responses ()
      in
      let predictor =
        Core.Predictor.make ~space:Core.Paper_space.space
          ~network:selection.Rbf.Selection.network ~tree ~p_min:1 ~alpha ()
      in
      let err = test_error ctx predictor in
      Format.fprintf ppf "%-8.1f %8d %12.1f %10.2f %10.2f@." alpha
        (Core.Predictor.n_centers predictor)
        selection.Rbf.Selection.criterion err.Stats.Error_metrics.mean_pct
        err.Stats.Error_metrics.max_pct)
    [ 1.; 2.; 3.; 5.; 8.; 12.; 16. ];
  Format.fprintf ppf
    "@.Expected: very small radii underfit between samples; the sweet \
     spot is several@.times the region size (the paper reports 5-12).@."
