(** Shared state for a reproduction run.

    Simulation is the expensive resource; a context keeps one memoised
    simulator-backed response per benchmark and one set of test points
    (with their simulated responses) so that every experiment in a run
    reuses them — exactly as the paper reuses one 50-point test set across
    all evaluations. *)

type t

val create : ?seed:int -> ?scale:Scale.t -> ?obs:Archpred_obs.t -> unit -> t
(** Default scale comes from {!Scale.of_env}; [obs] (default
    {!Archpred_obs.null}) is threaded through every response and training
    call made via this context. *)

val scale : t -> Scale.t
val seed : t -> int

val obs : t -> Archpred_obs.t
(** The context's observability handle. *)

val config : t -> n:int -> Archpred_core.Config.t
(** The scale-appropriate training configuration for an [n]-point sample:
    a fresh rng split, the context's LHS-candidate count, trace length and
    observability handle. *)

val rng : t -> Archpred_stats.Rng.t
(** A fresh, independent stream split from the context's root seed. *)

val response : t -> Archpred_workloads.Profile.t -> Archpred_core.Response.t
(** The benchmark's memoised simulator response (created on first use). *)

val test_set :
  t ->
  Archpred_workloads.Profile.t ->
  Archpred_design.Space.point array * float array
(** The run's random test points (Table 2 box) and their simulated CPIs
    for a benchmark; points are shared across benchmarks, responses are
    per benchmark and cached. *)

val train :
  t -> Archpred_workloads.Profile.t -> n:int -> Archpred_core.Build.trained
(** Train an RBF model for a benchmark at a given sample size, with the
    context's scale-appropriate settings.  Results are cached per
    (benchmark, n). *)
