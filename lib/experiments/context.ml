module Stats = Archpred_stats
module Core = Archpred_core

type t = {
  seed : int;
  scale : Scale.t;
  obs : Archpred_obs.t;
  root : Stats.Rng.t;
  responses : (string, Core.Response.t) Hashtbl.t;
  test_points : Archpred_design.Space.point array Lazy.t;
  test_responses : (string, float array) Hashtbl.t;
  trained : (string * int, Core.Build.trained) Hashtbl.t;
}

let create ?(seed = 2006) ?scale ?(obs = Archpred_obs.null) () =
  let scale = match scale with Some s -> s | None -> Scale.of_env () in
  let root = Stats.Rng.create seed in
  let test_rng = Stats.Rng.split root in
  {
    seed;
    scale;
    obs;
    root;
    responses = Hashtbl.create 8;
    test_points =
      lazy
        (Core.Paper_space.test_points test_rng ~n:(Scale.test_points scale));
    test_responses = Hashtbl.create 8;
    trained = Hashtbl.create 32;
  }

let scale t = t.scale
let seed t = t.seed
let obs t = t.obs
let rng t = Stats.Rng.split t.root

let response t (profile : Archpred_workloads.Profile.t) =
  match Hashtbl.find_opt t.responses profile.name with
  | Some r -> r
  | None ->
      let r =
        Core.Response.simulator ~obs:t.obs
          ~trace_length:(Scale.trace_length t.scale)
          ~seed:t.seed profile
      in
      Hashtbl.add t.responses profile.name r;
      r

let test_set t (profile : Archpred_workloads.Profile.t) =
  let points = Lazy.force t.test_points in
  let responses =
    match Hashtbl.find_opt t.test_responses profile.name with
    | Some r -> r
    | None ->
        let r = Core.Response.evaluate_many (response t profile) points in
        Hashtbl.add t.test_responses profile.name r;
        r
  in
  (points, responses)

let config t ~n =
  Core.Config.default
  |> Core.Config.with_rng (rng t)
  |> Core.Config.with_sample_size n
  |> Core.Config.with_lhs_candidates (Scale.lhs_candidates t.scale)
  |> Core.Config.with_trace_length (Scale.trace_length t.scale)
  |> Core.Config.with_obs t.obs

let train t (profile : Archpred_workloads.Profile.t) ~n =
  let key = (profile.name, n) in
  match Hashtbl.find_opt t.trained key with
  | Some tr -> tr
  | None ->
      let tr =
        Core.Build.train ~config:(config t ~n) ~space:Core.Paper_space.space
          ~response:(response t profile) ()
      in
      Hashtbl.add t.trained key tr;
      tr
