module Core = Archpred_core
module Stats = Archpred_stats
module Sim = Archpred_sim
module Workloads = Archpred_workloads
module Firstorder = Archpred_firstorder
module Mlp = Archpred_ann.Mlp
module Mars = Archpred_splines.Mars

let firstorder ctx ppf =
  Report.section ppf ~id:"Extension: first-order model"
    ~title:"Karkhanis-Smith-style analytical model vs fitted models";
  let n = Scale.table_sample_size (Context.scale ctx) in
  let trace_length = Scale.trace_length (Context.scale ctx) in
  Format.fprintf ppf "%-12s %12s %12s %12s@." "benchmark" "firstorder%"
    "linear%" "rbf%";
  Report.rule ppf;
  List.iter
    (fun (profile : Workloads.Profile.t) ->
      let trained = Context.train ctx profile ~n in
      let points, actual = Context.test_set ctx profile in
      let rbf =
        Core.Predictor.errors_on trained.Core.Build.predictor ~points ~actual
      in
      let linear =
        Archpred_linreg.Model.stepwise ~points:trained.Core.Build.sample
          ~responses:trained.Core.Build.sample_responses ()
      in
      let lin_err =
        Stats.Error_metrics.evaluate ~actual
          ~predicted:(Array.map (Archpred_linreg.Model.predict linear) points)
      in
      (* The analytical model sees the same trace the simulator ran. *)
      let trace =
        Workloads.Generator.generate ~seed:(Context.seed ctx) profile
          ~length:trace_length
      in
      let fo = Firstorder.Model.create trace in
      let fo_pred =
        Array.map (fun p -> Firstorder.Model.cpi fo (Core.Paper_space.to_config p)) points
      in
      let fo_err = Stats.Error_metrics.evaluate ~actual ~predicted:fo_pred in
      Format.fprintf ppf "%-12s %12.1f %12.1f %12.1f@." profile.name
        fo_err.Stats.Error_metrics.mean_pct lin_err.Stats.Error_metrics.mean_pct
        rbf.Stats.Error_metrics.mean_pct)
    [ Workloads.Spec2000.mcf; Workloads.Spec2000.vortex; Workloads.Spec2000.twolf ];
  Format.fprintf ppf
    "@.Expected: the mechanistic model needs no training simulations but \
     its error across@.the full space is far above the fitted RBF model \
     (the paper's section 5 claim).@."

let power ctx ppf =
  Report.section ppf ~id:"Extension: power model"
    ~title:"RBF models of energy per instruction (paper section 6)";
  let n = Scale.table_sample_size (Context.scale ctx) in
  let trace_length = Scale.trace_length (Context.scale ctx) in
  Format.fprintf ppf "%-12s %10s %10s %10s@." "benchmark" "mean%" "max%"
    "spearman";
  Report.rule ppf;
  List.iter
    (fun (profile : Workloads.Profile.t) ->
      let response =
        Core.Response.simulator_metric ~obs:(Context.obs ctx) ~trace_length
          ~seed:(Context.seed ctx)
          ~metric:Core.Response.Energy_per_instruction profile
      in
      let trained =
        Core.Build.train
          ~config:(Context.config ctx ~n)
          ~space:Core.Paper_space.space ~response ()
      in
      let points, _ = Context.test_set ctx profile in
      let actual = Core.Response.evaluate_many response points in
      let err =
        Core.Predictor.errors_on trained.Core.Build.predictor ~points ~actual
      in
      let predicted =
        Array.map (Core.Predictor.predict trained.Core.Build.predictor) points
      in
      Format.fprintf ppf "%-12s %10.1f %10.1f %10.3f@." profile.name
        err.Stats.Error_metrics.mean_pct err.Stats.Error_metrics.max_pct
        (Stats.Correlation.spearman actual predicted))
    [ Workloads.Spec2000.mcf; Workloads.Spec2000.equake ];
  Format.fprintf ppf
    "@.Expected: energy per instruction is as modelable as CPI — low mean \
     error and@.near-perfect rank correlation, supporting the paper's \
     conclusion.@."

let stat_sim ctx ppf =
  Report.section ppf ~id:"Extension: statistical simulation"
    ~title:"Profile-and-regenerate clones vs their originals (section 5)";
  let trace_length = Scale.trace_length (Context.scale ctx) in
  let rng = Context.rng ctx in
  let configs =
    Array.map Core.Paper_space.to_config (Core.Paper_space.test_points rng ~n:12)
  in
  Format.fprintf ppf "%-12s %12s %12s %10s@." "benchmark" "mean|dCPI|%"
    "max|dCPI|%" "spearman";
  Report.rule ppf;
  List.iter
    (fun (profile : Workloads.Profile.t) ->
      let original =
        Workloads.Generator.generate ~seed:(Context.seed ctx) profile
          ~length:trace_length
      in
      let extracted = Workloads.Extractor.profile_of_trace original in
      let clone =
        Workloads.Generator.generate ~seed:(Context.seed ctx + 1) extracted
          ~length:trace_length
      in
      let cpis trace =
        Stats.Parallel.map (fun cfg -> Sim.Processor.cpi cfg trace) configs
      in
      let orig_cpi = cpis original and clone_cpi = cpis clone in
      let err =
        Stats.Error_metrics.evaluate ~actual:orig_cpi ~predicted:clone_cpi
      in
      Format.fprintf ppf "%-12s %12.1f %12.1f %10.3f@." profile.name
        err.Stats.Error_metrics.mean_pct err.Stats.Error_metrics.max_pct
        (Stats.Correlation.spearman orig_cpi clone_cpi))
    [ Workloads.Spec2000.mcf; Workloads.Spec2000.crafty; Workloads.Spec2000.equake ];
  Format.fprintf ppf
    "@.Expected: clones rank configurations like their originals (high \
     correlation) but@.absolute CPI drifts — the accuracy caveat the paper \
     raises for statistical simulation.@."

let adaptive ctx ppf =
  Report.section ppf ~id:"Extension: adaptive sampling"
    ~title:"Adaptive sampling vs one-shot LHS at equal budget (section 6)";
  let profile = Workloads.Spec2000.mcf in
  let response = Context.response ctx profile in
  let points, actual = Context.test_set ctx profile in
  let initial, batch, rounds =
    match Context.scale ctx with
    | Scale.Small -> (20, 8, 2)
    | Scale.Medium -> (30, 15, 3)
    | Scale.Full -> (40, 20, 4)
  in
  let result =
    Core.Adaptive.run ~initial ~batch ~rounds ~rng:(Context.rng ctx)
      ~space:Core.Paper_space.space ~response ()
  in
  let budget = result.Core.Adaptive.total_simulations in
  let adaptive_err =
    Core.Predictor.errors_on result.Core.Adaptive.trained.Core.Build.predictor
      ~points ~actual
  in
  let one_shot =
    Core.Build.train
      ~config:(Context.config ctx ~n:budget)
      ~space:Core.Paper_space.space ~response ()
  in
  let lhs_err =
    Core.Predictor.errors_on one_shot.Core.Build.predictor ~points ~actual
  in
  Format.fprintf ppf "budget: %d simulations (%s)@.@." budget profile.name;
  Format.fprintf ppf "%-20s %10s %10s@." "strategy" "mean%" "max%";
  Report.rule ppf;
  Format.fprintf ppf "%-20s %10.2f %10.2f@." "adaptive"
    adaptive_err.Stats.Error_metrics.mean_pct
    adaptive_err.Stats.Error_metrics.max_pct;
  Format.fprintf ppf "%-20s %10.2f %10.2f@." "one-shot LHS"
    lhs_err.Stats.Error_metrics.mean_pct lhs_err.Stats.Error_metrics.max_pct;
  Format.fprintf ppf "@.cross-validated error by round:@.";
  List.iter
    (fun (s : Core.Adaptive.step) ->
      Format.fprintf ppf "  n=%-4d cv=%.2f%%@." s.Core.Adaptive.sample_size
        s.Core.Adaptive.cv_error_pct)
    result.Core.Adaptive.steps;
  Format.fprintf ppf
    "@.Expected: at equal budget, adaptive refinement is competitive with \
     (often better@.than) one-shot space filling, supporting the paper's \
     future-work hypothesis.@."

let modelzoo ctx ppf =
  Report.section ppf ~id:"Extension: model zoo"
    ~title:
      "All model families of section 5 on one benchmark set: first-order, \
       linear, splines (Lee-Brooks), ANN (Ipek et al.), RBF (this paper)";
  let n = Scale.table_sample_size (Context.scale ctx) in
  let trace_length = Scale.trace_length (Context.scale ctx) in
  Format.fprintf ppf "%-12s %10s %10s %10s %10s %10s@." "benchmark" "f-order%"
    "linear%" "spline%" "ann%" "rbf%";
  Report.rule ppf;
  List.iter
    (fun (profile : Workloads.Profile.t) ->
      let trained = Context.train ctx profile ~n in
      let points, actual = Context.test_set ctx profile in
      let sample = trained.Core.Build.sample in
      let sample_responses = trained.Core.Build.sample_responses in
      let err_of predicted =
        (Stats.Error_metrics.evaluate ~actual ~predicted)
          .Stats.Error_metrics.mean_pct
      in
      let rbf =
        err_of
          (Array.map (Core.Predictor.predict trained.Core.Build.predictor) points)
      in
      let linear =
        let m =
          Archpred_linreg.Model.stepwise ~points:sample
            ~responses:sample_responses ()
        in
        err_of (Array.map (Archpred_linreg.Model.predict m) points)
      in
      let spline =
        let m = Mars.train ~points:sample ~responses:sample_responses () in
        err_of (Array.map (Mars.predict m) points)
      in
      let ann =
        let m = Mlp.train ~points:sample ~responses:sample_responses () in
        err_of (Array.map (Mlp.predict m) points)
      in
      let fo =
        let trace =
          Workloads.Generator.generate ~seed:(Context.seed ctx) profile
            ~length:trace_length
        in
        let m = Firstorder.Model.create trace in
        err_of
          (Array.map
             (fun p -> Firstorder.Model.cpi m (Core.Paper_space.to_config p))
             points)
      in
      Format.fprintf ppf "%-12s %10.1f %10.1f %10.1f %10.1f %10.1f@."
        profile.name fo linear spline ann rbf)
    [ Workloads.Spec2000.mcf; Workloads.Spec2000.vortex; Workloads.Spec2000.twolf ];
  Format.fprintf ppf
    "@.Expected: the fitted non-linear families (splines, ANN, RBF) are \
     competitive with@.each other and clearly ahead of the linear and \
     analytical baselines; RBF wins or@.ties at this sample size (the \
     paper's Figure 7 claim, extended to section 5's zoo).@."

let sensitivity ctx ppf =
  Report.section ppf ~id:"Extension: sensitivity"
    ~title:
      "Model-driven parameter significance vs regression-tree splits \
       (HPCA'06 companion)";
  let n = Scale.table_sample_size (Context.scale ctx) in
  List.iter
    (fun (profile : Workloads.Profile.t) ->
      let trained = Context.train ctx profile ~n in
      let predictor = trained.Core.Build.predictor in
      Report.subheading ppf profile.name;
      Format.fprintf ppf "  %-28s | %-28s@." "total effect (model)"
        "split count (tree)";
      Report.rule ppf;
      let effects =
        Core.Sensitivity.total_effects ~samples:256 ~rng:(Context.rng ctx)
          predictor
      in
      let splits =
        Archpred_regtree.Tree.splits trained.Core.Build.tune.Core.Tune.tree
      in
      let split_count dim =
        List.length
          (List.filter
             (fun (s : Archpred_regtree.Tree.split) -> s.Archpred_regtree.Tree.dim = dim)
             splits)
      in
      List.iteri
        (fun i (e : Core.Sensitivity.effect) ->
          if i < 5 then
            Format.fprintf ppf "  %-12s %8.4f          | %-12s %4d@."
              e.Core.Sensitivity.name e.Core.Sensitivity.magnitude
              e.Core.Sensitivity.name
              (split_count e.Core.Sensitivity.dim))
        effects)
    [ Workloads.Spec2000.mcf; Workloads.Spec2000.vortex ];
  Format.fprintf ppf
    "@.Expected: the parameters the fitted model ranks as most significant \
     are the ones@.the regression tree splits most often — two views of the \
     same structure.@."
