module Matrix = Archpred_linalg.Matrix
module Least_squares = Archpred_linalg.Least_squares

type basis =
  | Intercept
  | Hinge of { dim : int; knot : float; positive : bool }

type t = {
  terms : basis list;
  coefficients : float array;
  gcv : float;
}

let basis_value b x =
  match b with
  | Intercept -> 1.
  | Hinge { dim; knot; positive } ->
      if positive then Float.max 0. (x.(dim) -. knot)
      else Float.max 0. (knot -. x.(dim))

let design terms points =
  let terms = Array.of_list terms in
  Matrix.init (Array.length points) (Array.length terms) (fun i j ->
      basis_value terms.(j) points.(i))

(* GCV with the usual MARS complexity charge of ~3 effective parameters
   per basis function. *)
let gcv_of ~p ~m rss =
  let pf = float_of_int p in
  let c = 1. +. (3. *. float_of_int m) in
  if c >= pf then infinity
  else rss /. pf /. ((1. -. (c /. pf)) ** 2.)

let fit_terms terms points responses =
  let h = design terms points in
  let f = Least_squares.fit h responses in
  let m = List.length terms in
  (f, gcv_of ~p:(Array.length points) ~m f.Least_squares.rss)

let quantile_knots points ~dim ~knots_per_dim =
  let n = Array.length points in
  List.init dim (fun k ->
      let values = Array.map (fun x -> x.(k)) points in
      Array.sort Float.compare values;
      List.init knots_per_dim (fun q ->
          let pos =
            (q + 1) * (n - 1) / (knots_per_dim + 1)
          in
          (k, values.(pos)))
      |> List.sort_uniq (fun (d1, k1) (d2, k2) ->
             let c = Int.compare d1 d2 in
             if c <> 0 then c else Float.compare k1 k2))
  |> List.concat

let train ?(max_terms = 21) ?(knots_per_dim = 7) ~points ~responses () =
  let p = Array.length points in
  if p = 0 then invalid_arg "Mars.train: empty sample";
  if Array.length responses <> p then
    invalid_arg "Mars.train: points/responses mismatch";
  let dim = Array.length points.(0) in
  let knots = quantile_knots points ~dim ~knots_per_dim in
  let candidates =
    List.concat_map
      (fun (k, t) ->
        [
          Hinge { dim = k; knot = t; positive = true };
          Hinge { dim = k; knot = t; positive = false };
        ])
      knots
  in
  let current = ref [ Intercept ] in
  let _, g0 = fit_terms !current points responses in
  let best_gcv = ref g0 in
  (* forward pass: greedily add the best hinge while GCV improves *)
  let improved = ref true in
  while !improved && List.length !current < max_terms do
    improved := false;
    let best_addition = ref None in
    List.iter
      (fun cand ->
        if not (List.mem cand !current) then begin
          let terms = !current @ [ cand ] in
          if List.length terms < p then begin
            let _, g = fit_terms terms points responses in
            match !best_addition with
            | Some (g', _) when g' <= g -> ()
            | Some _ | None -> best_addition := Some (g, cand)
          end
        end)
      candidates;
    match !best_addition with
    | Some (g, cand) when g < !best_gcv -. 1e-12 ->
        current := !current @ [ cand ];
        best_gcv := g;
        improved := true
    | Some _ | None -> ()
  done;
  (* backward pruning: drop terms while GCV improves *)
  let pruned = ref true in
  while !pruned do
    pruned := false;
    let best_removal = ref None in
    List.iter
      (fun term ->
        if term <> Intercept then begin
          let terms = List.filter (fun u -> u <> term) !current in
          let _, g = fit_terms terms points responses in
          match !best_removal with
          | Some (g', _) when g' <= g -> ()
          | Some _ | None -> best_removal := Some (g, term)
        end)
      !current;
    match !best_removal with
    | Some (g, term) when g < !best_gcv -. 1e-12 ->
        current := List.filter (fun u -> u <> term) !current;
        best_gcv := g;
        pruned := true
    | Some _ | None -> ()
  done;
  let fit, g = fit_terms !current points responses in
  { terms = !current; coefficients = fit.Least_squares.coefficients; gcv = g }

let predict t x =
  List.fold_left2
    (fun acc term w -> acc +. (w *. basis_value term x))
    0. t.terms
    (Array.to_list t.coefficients)

let terms t = t.terms
let gcv t = t.gcv
