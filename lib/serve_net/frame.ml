module Json = Archpred_obs.Json

(* Wire protocol of the prediction daemon.

   Two self-describing framings share one connection, detected per
   frame from its first byte:

   - JSON lines: a frame starting with '{' runs to the next '\n'.
     Requests: [{"id":N,"point":[...],"natural":BOOL}] (natural
     defaults to false) or the control line
     [{"cmd":"reload","path":PATH}] (path optional).  Responses:
     [{"id":N,"status":S,"value":V}] with S one of "ok", "overloaded",
     "timeout", "bad_request", "shutting_down"; reload outcomes are
     [{"reload":"ok"|"failed","detail":D}].

   - Binary: a frame starting with the magic byte 0xA7, then a 32-bit
     little-endian payload length, then the payload.  Request payload:
     id u32, kind u8 (0 = normalized point, 1 = natural values),
     dim u16, then dim little-endian f64 coordinates — so the length
     must equal 7 + 8*dim.  Response payload (always 13 bytes): id u32,
     status u8 (ordinal of [status]), value f64.

   The decoder is pure and incremental: bytes are [feed]ed in arbitrary
   chunks and [next_request]/[next_response] either produce a complete
   message, ask for more input, or report a protocol error.  Errors are
   sticky — a connection that has desynced cannot be re-trusted — and
   are values, never exceptions, so a malformed peer can only ever kill
   its own connection. *)

type request =
  | Predict of { id : int; point : float array; natural : bool }
  | Reload of string option

type status = Ok | Overloaded | Timeout | Bad_request | Shutting_down

type response =
  | Reply of { id : int; status : status; value : float }
  | Reload_reply of { ok : bool; detail : string }

type wire = Json_wire | Binary_wire

let magic = '\xa7'
let header_len = 5 (* magic + u32 payload length *)
let max_dim = 1024 (* no realistic design space is wider *)

let status_code = function
  | Ok -> 0
  | Overloaded -> 1
  | Timeout -> 2
  | Bad_request -> 3
  | Shutting_down -> 4

let status_of_code = function
  | 0 -> Some Ok
  | 1 -> Some Overloaded
  | 2 -> Some Timeout
  | 3 -> Some Bad_request
  | 4 -> Some Shutting_down
  | _ -> None

let status_name = function
  | Ok -> "ok"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Bad_request -> "bad_request"
  | Shutting_down -> "shutting_down"

let status_of_name = function
  | "ok" -> Some Ok
  | "overloaded" -> Some Overloaded
  | "timeout" -> Some Timeout
  | "bad_request" -> Some Bad_request
  | "shutting_down" -> Some Shutting_down
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Encoding                                                           *)
(* ------------------------------------------------------------------ *)

let encode_request wire req =
  match (wire, req) with
  | Json_wire, Predict { id; point; natural } ->
      let fields =
        [
          ("id", Json.Int id);
          ("point", Json.List (Array.to_list (Array.map (fun v -> Json.Float v) point)));
        ]
        @ if natural then [ ("natural", Json.Bool true) ] else []
      in
      Json.to_string (Json.Obj fields) ^ "\n"
  | Json_wire, Reload path ->
      let fields =
        ("cmd", Json.String "reload")
        ::
        (match path with
        | Some p -> [ ("path", Json.String p) ]
        | None -> [])
      in
      Json.to_string (Json.Obj fields) ^ "\n"
  | Binary_wire, Predict { id; point; natural } ->
      let dim = Array.length point in
      let payload = 7 + (8 * dim) in
      let b = Bytes.create (header_len + payload) in
      Bytes.set b 0 magic;
      Bytes.set_int32_le b 1 (Int32.of_int payload);
      Bytes.set_int32_le b 5 (Int32.of_int id);
      Bytes.set_uint8 b 9 (if natural then 1 else 0);
      Bytes.set_uint16_le b 10 dim;
      Array.iteri
        (fun i v -> Bytes.set_int64_le b (12 + (8 * i)) (Int64.bits_of_float v))
        point;
      Bytes.to_string b
  | Binary_wire, Reload _ ->
      invalid_arg "Frame.encode_request: reload is a JSON-only control message"

let encode_response wire resp =
  match (wire, resp) with
  | Json_wire, Reply { id; status; value } ->
      let fields =
        [ ("id", Json.Int id); ("status", Json.String (status_name status)) ]
        @ if status = Ok then [ ("value", Json.Float value) ] else []
      in
      Json.to_string (Json.Obj fields) ^ "\n"
  | Json_wire, Reload_reply { ok; detail } ->
      Json.to_string
        (Json.Obj
           [
             ("reload", Json.String (if ok then "ok" else "failed"));
             ("detail", Json.String detail);
           ])
      ^ "\n"
  | Binary_wire, Reply { id; status; value } ->
      let b = Bytes.create (header_len + 13) in
      Bytes.set b 0 magic;
      Bytes.set_int32_le b 1 13l;
      Bytes.set_int32_le b 5 (Int32.of_int id);
      Bytes.set_uint8 b 9 (status_code status);
      Bytes.set_int64_le b 10 (Int64.bits_of_float value);
      Bytes.to_string b
  | Binary_wire, Reload_reply _ ->
      invalid_arg "Frame.encode_response: reload replies are JSON-only"

(* ------------------------------------------------------------------ *)
(* Incremental decoding                                               *)
(* ------------------------------------------------------------------ *)

type decoder = {
  max_frame : int;
  mutable buf : Bytes.t;
  mutable start : int;  (* first unconsumed byte *)
  mutable len : int;  (* bytes buffered past [start] *)
  mutable failed : string option;  (* sticky protocol error *)
}

let default_max_frame = 1 lsl 20

let decoder ?(max_frame = default_max_frame) () =
  if max_frame < header_len + 13 then
    invalid_arg "Frame.decoder: max_frame too small for any frame";
  { max_frame; buf = Bytes.create 4096; start = 0; len = 0; failed = None }

let feed d src pos n =
  if pos < 0 || n < 0 || pos + n > Bytes.length src then
    invalid_arg "Frame.feed: bad substring";
  if d.failed = None then begin
    let need = d.len + n in
    if d.start + need > Bytes.length d.buf then begin
      let cap = max need (2 * Bytes.length d.buf) in
      let nb = Bytes.create cap in
      Bytes.blit d.buf d.start nb 0 d.len;
      d.buf <- nb;
      d.start <- 0
    end;
    Bytes.blit src pos d.buf (d.start + d.len) n;
    d.len <- need
  end

let feed_string d s = feed d (Bytes.of_string s) 0 (String.length s)

let fail d msg =
  d.failed <- Some msg;
  d.len <- 0;
  `Error msg

let consume d n =
  d.start <- d.start + n;
  d.len <- d.len - n;
  if d.len = 0 then d.start <- 0

(* Find '\n' in the buffered window; None while incomplete. *)
let find_newline d =
  let rec go i =
    if i >= d.len then None
    else if Bytes.get d.buf (d.start + i) = '\n' then Some i
    else go (i + 1)
  in
  go 0

type kind = K_json of string | K_binary of string | K_need_more | K_error of string

(* Extract the next complete frame of either framing, consuming it. *)
let next_frame d =
  match d.failed with
  | Some msg -> K_error msg
  | None ->
      if d.len = 0 then K_need_more
      else
        let first = Bytes.get d.buf d.start in
        if first = magic then
          if d.len < header_len then K_need_more
          else
            let plen = Int32.to_int (Bytes.get_int32_le d.buf (d.start + 1)) in
            if plen < 0 || header_len + plen > d.max_frame then (
              ignore (fail d "binary frame length out of range");
              K_error "binary frame length out of range")
            else if d.len < header_len + plen then K_need_more
            else begin
              let payload =
                Bytes.sub_string d.buf (d.start + header_len) plen
              in
              consume d (header_len + plen);
              K_binary payload
            end
        else if first = '{' then
          match find_newline d with
          | Some i ->
              let line = Bytes.sub_string d.buf d.start i in
              consume d (i + 1);
              K_json line
          | None ->
              if d.len > d.max_frame then (
                ignore (fail d "JSON line exceeds max frame size");
                K_error "JSON line exceeds max frame size")
              else K_need_more
        else (
          ignore (fail d "unrecognised frame (expected '{' or 0xA7)");
          K_error "unrecognised frame (expected '{' or 0xA7)")

let float_of_json = function
  | Json.Float v -> Some v
  | Json.Int v -> Some (float_of_int v)
  | _ -> None

let parse_json_request line =
  match Json.of_string line with
  | Error e -> Result.Error ("bad JSON request: " ^ e)
  | Result.Ok j -> (
      match Json.member "cmd" j with
      | Some (Json.String "reload") ->
          let path =
            match Json.member "path" j with
            | Some (Json.String p) -> Some p
            | _ -> None
          in
          Result.Ok (Reload path)
      | Some _ -> Result.Error "unknown cmd"
      | None -> (
          match (Json.member "id" j, Json.member "point" j) with
          | Some (Json.Int id), Some (Json.List vs) -> (
              let natural =
                match Json.member "natural" j with
                | Some (Json.Bool b) -> b
                | _ -> false
              in
              let coords = List.filter_map float_of_json vs in
              if List.length coords <> List.length vs then
                Result.Error "non-numeric coordinate"
              else
                let point = Array.of_list coords in
                if Array.length point > max_dim then
                  Result.Error "point too wide"
                else Result.Ok (Predict { id; point; natural }))
          | _ -> Result.Error "request needs \"id\" and \"point\""))

let parse_binary_request payload =
  let n = String.length payload in
  if n < 7 then Result.Error "binary request payload too short"
  else
    let id = Int32.to_int (String.get_int32_le payload 0) in
    match String.get_uint8 payload 4 with
    | k when k > 1 -> Result.Error (Printf.sprintf "unknown request kind %d" k)
    | k ->
        let natural = k = 1 in
        let dim = String.get_uint16_le payload 5 in
        if dim > max_dim then Result.Error "point too wide"
        else if n <> 7 + (8 * dim) then
          Result.Error "binary request length inconsistent with dim"
        else
          let point =
            Array.init dim (fun i ->
                Int64.float_of_bits (String.get_int64_le payload (7 + (8 * i))))
          in
          Result.Ok (Predict { id; point; natural })

let parse_json_response line =
  match Json.of_string line with
  | Error e -> Result.Error ("bad JSON response: " ^ e)
  | Result.Ok j -> (
      match Json.member "reload" j with
      | Some (Json.String outcome) ->
          let detail =
            match Json.member "detail" j with
            | Some (Json.String s) -> s
            | _ -> ""
          in
          Result.Ok (Reload_reply { ok = outcome = "ok"; detail })
      | Some _ -> Result.Error "bad reload reply"
      | None -> (
          match (Json.member "id" j, Json.member "status" j) with
          | Some (Json.Int id), Some (Json.String s) -> (
              match status_of_name s with
              | None -> Result.Error ("unknown status " ^ s)
              | Some status ->
                  let value =
                    match Option.bind (Json.member "value" j) float_of_json with
                    | Some v -> v
                    | None -> Float.nan
                  in
                  Result.Ok (Reply { id; status; value }))
          | _ -> Result.Error "response needs \"id\" and \"status\""))

let parse_binary_response payload =
  if String.length payload <> 13 then
    Result.Error "binary response payload must be 13 bytes"
  else
    let id = Int32.to_int (String.get_int32_le payload 0) in
    match status_of_code (String.get_uint8 payload 4) with
    | None -> Result.Error "unknown response status"
    | Some status ->
        let value = Int64.float_of_bits (String.get_int64_le payload 5) in
        Result.Ok (Reply { id; status; value })

let next_with parse_json parse_binary d =
  match next_frame d with
  | K_need_more -> `Need_more
  | K_error msg -> `Error msg
  | K_json line -> (
      match parse_json line with
      | Result.Ok msg -> `Msg (msg, Json_wire)
      | Result.Error e -> fail d e)
  | K_binary payload -> (
      match parse_binary payload with
      | Result.Ok msg -> `Msg (msg, Binary_wire)
      | Result.Error e -> fail d e)

let next_request d = next_with parse_json_request parse_binary_request d
let next_response d = next_with parse_json_response parse_binary_response d

let buffered d = d.len
