(** Blocking client for the prediction daemon, on either framing.

    One {!t} is one connection.  Requests may be pipelined: the daemon
    preserves per-connection request order, so the [k]-th reply on a
    connection answers its [k]-th request (ids let callers double-check).
    Used by the daemon tests and the load bench. *)

type t

val connect : ?retries:int -> ?retry_delay_s:float -> Daemon.listener -> t
(** Connect, retrying [ECONNREFUSED]/[ENOENT] (a daemon still binding)
    up to [retries] times (default 100 × 20 ms).  Other socket errors
    propagate as [Unix.Unix_error]. *)

val close : t -> unit

val predict : t -> Frame.wire -> id:int -> ?natural:bool -> float array -> unit
(** Send one predict request (does not wait for the reply). *)

val reload : t -> ?path:string -> unit -> unit
(** Send the JSON reload control message. *)

val recv : t -> Frame.response
(** Block for the next response.  Raises [Error.Archpred (Parse_error _)]
    if the daemon desyncs the stream and [Error.Archpred (Io_error _)]
    when the connection closes. *)

type load = {
  sent : int;
  ok : int;
  shed : int;
  timeouts : int;
  other : int;  (** bad_request / shutting_down replies *)
  elapsed_ns : int64;
  throughput : float;  (** answered replies per second *)
  p50_ns : float;  (** per-request round-trip latency quantiles *)
  p99_ns : float;
  p999_ns : float;
  checksum : float;  (** sum of [ok] values — determinism anchor *)
}

val drive : t -> Frame.wire -> ?pipeline:int -> float array array -> load
(** [drive t wire points] sends one predict request per point with up
    to [pipeline] (default 64) outstanding, recording each request's
    round-trip latency; quantiles are over all replies whatever their
    status. *)
