module Design = Archpred_design
module Stats = Archpred_stats
module Obs = Archpred_obs
module Error = Archpred_obs.Error

(* Blocking client for the prediction daemon: the other half of the
   wire protocol, used by the CLI's `served --probe`, the daemon tests,
   and the load bench.  One [t] is one connection; requests can be
   pipelined (the daemon answers in batch order, which preserves
   per-connection request order). *)

type t = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  buf : Bytes.t;
  mutable open_ : bool;
}

let sockaddr_of = function
  | Daemon.Unix_socket path -> Unix.ADDR_UNIX path
  | Daemon.Tcp { host; port } ->
      Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let domain_of = function
  | Daemon.Unix_socket _ -> Unix.PF_UNIX
  | Daemon.Tcp _ -> Unix.PF_INET

let connect ?(retries = 100) ?(retry_delay_s = 0.02) listener =
  let addr = sockaddr_of listener in
  let rec go attempt =
    let fd = Unix.socket ~cloexec:true (domain_of listener) Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> { fd; dec = Frame.decoder (); buf = Bytes.create 65536; open_ = true }
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT | EINTR), _, _)
      when attempt < retries ->
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        (* the daemon may still be binding its socket; poll briefly *)
        Unix.sleepf retry_delay_s;
        go (attempt + 1)
    | exception (Unix.Unix_error (_, _, _) as e) ->
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        raise e
  in
  go 0

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()
  end

let send_raw t data =
  let len = String.length data in
  let off = ref 0 in
  while !off < len do
    match Unix.write_substring t.fd data !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

let predict t wire ~id ?(natural = false) point =
  send_raw t (Frame.encode_request wire (Frame.Predict { id; point; natural }))

let reload t ?path () =
  send_raw t (Frame.encode_request Frame.Json_wire (Frame.Reload path))

let rec recv t =
  match Frame.next_response t.dec with
  | `Msg (resp, _) -> resp
  | `Error msg ->
      Error.parse_error ~where:"Serve_net.Client.recv" ~line:0 msg
  | `Need_more -> (
      match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
      | 0 ->
          Error.io_error ~path:"<daemon socket>"
            "connection closed by the daemon"
      | n ->
          Frame.feed t.dec t.buf 0 n;
          recv t
      | exception Unix.Unix_error (EINTR, _, _) -> recv t)

(* -------------------------------------------------------------- *)
(* Pipelined load driver                                          *)
(* -------------------------------------------------------------- *)

type load = {
  sent : int;
  ok : int;
  shed : int;
  timeouts : int;
  other : int;  (** bad_request / shutting_down replies *)
  elapsed_ns : int64;
  throughput : float;  (** answered replies per second *)
  p50_ns : float;
  p99_ns : float;
  p999_ns : float;
  checksum : float;  (** sum of [ok] values — determinism anchor *)
}

let drive t wire ?(pipeline = 64) points =
  let n = Array.length points in
  if n = 0 then Error.invalid_input ~where:"Client.drive" "no points";
  if pipeline < 1 then Error.invalid_input ~where:"Client.drive" "pipeline < 1";
  let sent_ns = Array.make n 0L in
  let lat = Array.make n 0. in
  let ok = ref 0 and shed = ref 0 and timeouts = ref 0 and other = ref 0 in
  let checksum = ref 0. in
  let next = ref 0 in
  let received = ref 0 in
  let t0 = Obs.now_ns () in
  while !received < n do
    if !next < n && !next - !received < pipeline then begin
      sent_ns.(!next) <- Obs.now_ns ();
      predict t wire ~id:!next points.(!next);
      incr next
    end
    else begin
      (match recv t with
      | Frame.Reply { id; status; value } ->
          if id >= 0 && id < n then
            lat.(!received) <-
              Int64.to_float (Int64.sub (Obs.now_ns ()) sent_ns.(id));
          (match status with
          | Frame.Ok ->
              incr ok;
              checksum := !checksum +. value
          | Frame.Overloaded -> incr shed
          | Frame.Timeout -> incr timeouts
          | Frame.Bad_request | Frame.Shutting_down -> incr other)
      | Frame.Reload_reply _ -> ());
      incr received
    end
  done;
  let elapsed = Int64.sub (Obs.now_ns ()) t0 in
  let qs =
    match Stats.Quantile.quantiles lat [ 0.5; 0.99; 0.999 ] with
    | [ a; b; c ] -> (a, b, c)
    | _ -> (0., 0., 0.)
  in
  let p50_ns, p99_ns, p999_ns = qs in
  {
    sent = !next;
    ok = !ok;
    shed = !shed;
    timeouts = !timeouts;
    other = !other;
    elapsed_ns = elapsed;
    throughput =
      (let s = Int64.to_float elapsed /. 1e9 in
       if s > 0. then float_of_int n /. s else 0.);
    p50_ns;
    p99_ns;
    p999_ns;
    checksum = !checksum;
  }
