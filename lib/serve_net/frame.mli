(** Wire protocol of the prediction daemon: two self-describing
    framings on one connection, detected per frame from its first byte.

    {b JSON lines} — a frame starting with ['{'] runs to the next
    newline.  Requests look like [{"id":1,"point":[0.5,...]}] (add
    ["natural":true] for natural-unit values) or the control line
    [{"cmd":"reload","path":"m.model"}].  Responses carry
    [{"id":1,"status":"ok","value":V}]; reload outcomes
    [{"reload":"ok"|"failed","detail":D}].

    {b Binary} — magic byte [0xA7], a 32-bit little-endian payload
    length, then the payload: requests are [id u32, kind u8 (0 =
    normalized, 1 = natural), dim u16, dim × f64 LE] (so the length
    must equal [7 + 8*dim]); responses are always 13 bytes: [id u32,
    status u8, value f64 LE].

    Decoding is incremental and total: arbitrary chunking, truncation
    and corruption produce [`Need_more] or a sticky [`Error] value —
    never an exception — so a malformed peer can only ever kill its own
    connection. *)

type request =
  | Predict of { id : int; point : float array; natural : bool }
  | Reload of string option
      (** hot-reload the model, optionally from a new path; JSON-only *)

type status = Ok | Overloaded | Timeout | Bad_request | Shutting_down

type response =
  | Reply of { id : int; status : status; value : float }
      (** [value] is meaningful only when [status = Ok] (it is NaN on
          the JSON wire otherwise) *)
  | Reload_reply of { ok : bool; detail : string }

type wire = Json_wire | Binary_wire

val status_name : status -> string
val status_of_name : string -> status option

val encode_request : wire -> request -> string
(** Raises [Invalid_argument] for [Binary_wire] reload requests —
    control messages are JSON-only. *)

val encode_response : wire -> response -> string
(** Raises [Invalid_argument] for [Binary_wire] reload replies. *)

type decoder
(** Incremental frame reassembler for one connection.  A protocol
    error is sticky: every subsequent [next_*] returns the same
    [`Error] and fed bytes are discarded. *)

val decoder : ?max_frame:int -> unit -> decoder
(** [max_frame] (default 1 MiB) bounds both binary payloads and JSON
    line length; an oversized frame is a protocol error, not an
    allocation. *)

val feed : decoder -> bytes -> int -> int -> unit
(** [feed d src pos n] appends [n] bytes of [src] starting at [pos]. *)

val feed_string : decoder -> string -> unit

val next_request :
  decoder -> [ `Msg of request * wire | `Need_more | `Error of string ]
(** Server side: decode the next complete request, replying on the
    same [wire] the request arrived on. *)

val next_response :
  decoder -> [ `Msg of response * wire | `Need_more | `Error of string ]
(** Client side: decode the next complete response. *)

val buffered : decoder -> int
(** Bytes fed but not yet consumed by a decoded frame. *)
