module Design = Archpred_design
module Rbf = Archpred_rbf
module Stats = Archpred_stats
module Obs = Archpred_obs
module Core = Archpred_core
module Fault = Archpred_fault.Fault
module Error = Archpred_obs.Error

(* The prediction daemon: a single-threaded [Unix.select] event loop
   that accepts JSON-lines and binary-framed predict requests on a Unix
   or TCP socket, gathers them across connections into batches for the
   SIMD kernel (fronted by the quantized LRU memo), and answers on the
   wire each request arrived on.

   Robustness is the design driver, in layers:

   - {b Isolation}: every connection owns its decoder; a malformed
     frame turns into a best-effort [bad_request] reply and a closed
     connection after its earlier requests are answered — the batcher
     and the other connections never see it.
   - {b Backpressure}: the ingress queue is bounded ([max_pending]);
     beyond it requests are shed with an [overloaded] reply instead of
     growing the heap.  Each request carries a deadline; requests that
     sat in the queue past it are answered [timeout], not silently
     dropped.  A reader that stops draining its socket is disconnected
     once [max_egress] bytes pile up.
   - {b Graceful drain}: [request_drain] (wired to SIGTERM/SIGINT by
     the CLI) closes the listener, answers everything accepted, flushes
     all sockets, and returns — the [lost] counter is zero unless a
     connection died mid-flush.
   - {b Hot reload}: [request_reload] (SIGHUP or the JSON [reload]
     command) loads a model file, verifies it (CRC via Persist, then a
     probe batch cross-checked bitwise against the scalar oracle) and
     only then swaps predictor and cache; any failure keeps the old
     model serving.

   Fault-injection sites ("serve.accept", "serve.read", "serve.write",
   "serve.reload") let the crash matrix in test/test_served.ml prove
   those properties deterministically. *)

type listener = Unix_socket of string | Tcp of { host : string; port : int }

type config = {
  listener : listener;
  max_pending : int;  (** ingress bound: beyond it requests are shed *)
  max_batch : int;  (** largest batch handed to the kernel *)
  deadline_ns : int64;  (** queue-age budget per request *)
  max_egress : int;  (** per-connection egress byte bound *)
  max_frame : int;  (** per-frame size bound (both framings) *)
  max_connections : int;
  cache_capacity : int;
  grid_sample_size : int;
  domains : int;  (** kernel-evaluation parallelism for big miss sets *)
  model_path : string option;  (** default path for [reload] *)
  tick_s : float;  (** select timeout: control-flag latency bound *)
}

let default =
  {
    listener = Unix_socket "archpred.sock";
    max_pending = 4096;
    max_batch = 256;
    deadline_ns = 200_000_000L;
    max_egress = 1 lsl 20;
    max_frame = 1 lsl 20;
    max_connections = 64;
    cache_capacity = 4096;
    grid_sample_size = 90;
    domains = 1;
    model_path = None;
    tick_s = 0.02;
  }

type stats = {
  connections : int;
  requests : int;
  answered : int;
  shed : int;
  timeouts : int;
  bad_requests : int;
  protocol_errors : int;
  reloads_ok : int;
  reloads_failed : int;
  lost : int;
  cache : Core.Memo.stats;
}

(* -------------------------------------------------------------- *)
(* Control handle: the only cross-thread/signal surface           *)
(* -------------------------------------------------------------- *)

type control = {
  drain_flag : bool Atomic.t;
  reload_flag : bool Atomic.t;
  reload_path : string option Atomic.t;
}

let control () =
  {
    drain_flag = Atomic.make false;
    reload_flag = Atomic.make false;
    reload_path = Atomic.make None;
  }

let request_drain c = Atomic.set c.drain_flag true

let request_reload ?path c =
  Atomic.set c.reload_path path;
  Atomic.set c.reload_flag true

(* -------------------------------------------------------------- *)
(* Per-connection state                                           *)
(* -------------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  egress : (string * bool) Queue.t;  (* payload, counts-as-answer *)
  mutable egress_off : int;  (* bytes of the head already written *)
  mutable egress_bytes : int;
  mutable read_open : bool;  (* false after EOF or protocol error *)
  mutable alive : bool;  (* false once the fd is closed *)
  mutable unanswered : int;  (* parsed requests whose reply has not flushed *)
}

type pending = {
  p_conn : conn;
  p_wire : Frame.wire;
  p_id : int;
  p_point : Design.Space.point;
  p_deadline : int64;
}

type state = {
  cfg : config;
  obs : Obs.t;
  mutable predictor : Core.Predictor.t;
  mutable cache : Core.Memo.t;
  mutable model_path : string option;
  ingress : pending Queue.t;
  mutable conns : conn list;
  mutable draining : bool;
  read_buf : Bytes.t;
  mutable s_connections : int;
  mutable s_requests : int;
  mutable s_answered : int;
  mutable s_shed : int;
  mutable s_timeouts : int;
  mutable s_bad_requests : int;
  mutable s_protocol_errors : int;
  mutable s_reloads_ok : int;
  mutable s_reloads_failed : int;
  mutable s_lost : int;
}

let fresh_cache st space =
  Core.Memo.create ~obs:st.obs ~capacity:st.cfg.cache_capacity ~space
    ~sample_size:st.cfg.grid_sample_size ()

let send _st conn wire resp ~reply =
  let data = Frame.encode_response wire resp in
  Queue.push (data, reply) conn.egress;
  conn.egress_bytes <- conn.egress_bytes + String.length data

let kill st conn =
  if conn.alive then begin
    conn.alive <- false;
    conn.read_open <- false;
    (try Unix.close conn.fd with Unix.Unix_error (_, _, _) -> ());
    st.s_lost <- st.s_lost + conn.unanswered;
    if conn.unanswered > 0 then
      Obs.count st.obs "served.lost" conn.unanswered;
    conn.unanswered <- 0;
    Queue.clear conn.egress;
    conn.egress_bytes <- 0
  end

(* A connection is finished once nothing can flow in either direction:
   reads are done and every owed byte has been flushed. *)
let try_retire st conn =
  if
    conn.alive && (not conn.read_open)
    && Queue.is_empty conn.egress
    && conn.unanswered = 0
  then kill st conn (* nothing unanswered: closes without loss *)

(* -------------------------------------------------------------- *)
(* Request intake                                                 *)
(* -------------------------------------------------------------- *)

(* Hot reload: load -> verify -> swap, old model kept on any failure. *)
let do_reload st path_opt =
  let fail detail =
    st.s_reloads_failed <- st.s_reloads_failed + 1;
    Obs.incr st.obs "served.reload.failed";
    Frame.Reload_reply { ok = false; detail }
  in
  let path =
    match path_opt with Some _ -> path_opt | None -> st.model_path
  in
  match path with
  | None -> fail "no model path configured"
  | Some path -> (
      try
        Fault.point "serve.reload";
        let p = Core.Persist.load path in
        let dim = Design.Space.dimension p.Core.Predictor.space in
        if dim <> Design.Space.dimension st.predictor.Core.Predictor.space
        then fail "model dimension mismatch"
        else begin
          (* probe: the batched kernel of the candidate model must
             reproduce its scalar oracle bitwise on a deterministic
             grid sample — a wrong-answer model never swaps in *)
          let rng = Stats.Rng.create 9 in
          let probe =
            Array.init 32 (fun _ ->
                Design.Space.snap p.Core.Predictor.space
                  ~sample_size:st.cfg.grid_sample_size
                  (Array.init dim (fun _ -> Stats.Rng.unit_float rng)))
          in
          let batched = Core.Predictor.predict_batch p probe in
          let agree = ref true in
          Array.iteri
            (fun i q ->
              let s = Rbf.Network.eval p.Core.Predictor.network q in
              if
                not
                  (Int64.equal (Int64.bits_of_float s)
                     (Int64.bits_of_float batched.(i)))
              then agree := false)
            probe;
          if not !agree then fail "probe checksum mismatch"
          else begin
            st.predictor <- p;
            st.cache <- fresh_cache st p.Core.Predictor.space;
            st.model_path <- Some path;
            st.s_reloads_ok <- st.s_reloads_ok + 1;
            Obs.incr st.obs "served.reload.ok";
            Frame.Reload_reply { ok = true; detail = path }
          end
        end
      with
      | Error.Archpred e -> fail (Error.to_string e)
      | Fault.Injected site -> fail ("fault injected at " ^ site))

let handle_request st conn req wire =
  match req with
  | Frame.Reload path ->
      (* control messages answer on the JSON wire only *)
      send st conn Frame.Json_wire (do_reload st path) ~reply:false
  | Frame.Predict { id; point; natural } -> (
      st.s_requests <- st.s_requests + 1;
      Obs.incr st.obs "served.requests";
      conn.unanswered <- conn.unanswered + 1;
      let reply status value =
        send st conn wire (Frame.Reply { id; status; value }) ~reply:true
      in
      if st.draining then begin
        Obs.incr st.obs "served.shutting_down";
        reply Frame.Shutting_down Float.nan
      end
      else if Queue.length st.ingress >= st.cfg.max_pending then begin
        st.s_shed <- st.s_shed + 1;
        Obs.incr st.obs "served.shed";
        reply Frame.Overloaded Float.nan
      end
      else
        match
          let space = st.predictor.Core.Predictor.space in
          let p = if natural then Design.Space.encode space point else point in
          Design.Space.validate_point space p;
          p
        with
        (* Space raises Invalid_argument on arity/range, Error.Archpred
           on encode failures — either way it is the peer's input *)
        | exception (Invalid_argument _ | Error.Archpred _) ->
            st.s_bad_requests <- st.s_bad_requests + 1;
            Obs.incr st.obs "served.bad_request";
            reply Frame.Bad_request Float.nan
        | p ->
            Queue.push
              {
                p_conn = conn;
                p_wire = wire;
                p_id = id;
                p_point = p;
                p_deadline = Int64.add (Obs.now_ns ()) st.cfg.deadline_ns;
              }
              st.ingress)

let rec drain_decoder st conn =
  if conn.alive && conn.read_open then
    match Frame.next_request conn.dec with
    | `Need_more -> ()
    | `Error msg ->
        (* the peer desynced: answer what it already sent, tell it why,
           and stop reading — nobody else is affected *)
        st.s_protocol_errors <- st.s_protocol_errors + 1;
        Obs.incr st.obs "served.protocol_error";
        conn.read_open <- false;
        ignore msg;
        send st conn Frame.Json_wire
          (Frame.Reply { id = -1; status = Frame.Bad_request; value = Float.nan })
          ~reply:false
    | `Msg (req, wire) ->
        handle_request st conn req wire;
        drain_decoder st conn

(* -------------------------------------------------------------- *)
(* I/O edges                                                      *)
(* -------------------------------------------------------------- *)

let handle_readable st conn =
  if conn.alive && conn.read_open then begin
    match
      Fault.point "serve.read";
      Unix.read conn.fd st.read_buf 0 (Bytes.length st.read_buf)
    with
    | 0 ->
        conn.read_open <- false;
        try_retire st conn
    | n ->
        Frame.feed conn.dec st.read_buf 0 n;
        drain_decoder st conn
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> kill st conn
    | exception Fault.Injected _ ->
        Obs.incr st.obs "served.fault.read";
        kill st conn
  end

let handle_writable st conn =
  if conn.alive && not (Queue.is_empty conn.egress) then begin
    (try
       Fault.point "serve.write";
       let continue = ref true in
       while !continue && not (Queue.is_empty conn.egress) do
         let data, is_reply = Queue.peek conn.egress in
         let len = String.length data - conn.egress_off in
         let n = Unix.write_substring conn.fd data conn.egress_off len in
         conn.egress_bytes <- conn.egress_bytes - n;
         if n = len then begin
           ignore (Queue.pop conn.egress);
           conn.egress_off <- 0;
           if is_reply then begin
             st.s_answered <- st.s_answered + 1;
             Obs.incr st.obs "served.answered";
             conn.unanswered <- conn.unanswered - 1
           end
         end
         else begin
           conn.egress_off <- conn.egress_off + n;
           continue := false
         end
       done
     with
    | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | Unix.Unix_error (_, _, _) -> kill st conn
    | Fault.Injected _ ->
        Obs.incr st.obs "served.fault.write";
        kill st conn);
    try_retire st conn
  end

let handle_accept st lfd =
  let continue = ref true in
  while !continue do
    match
      Fault.point "serve.accept";
      Unix.accept ~cloexec:true lfd
    with
    | fd, _ ->
        if List.length st.conns >= st.cfg.max_connections then
          (* connection-level shed: refuse before allocating state *)
          (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
        else begin
          Unix.set_nonblock fd;
          st.s_connections <- st.s_connections + 1;
          Obs.incr st.obs "served.connections";
          st.conns <-
            {
              fd;
              dec = Frame.decoder ~max_frame:st.cfg.max_frame ();
              egress = Queue.create ();
              egress_off = 0;
              egress_bytes = 0;
              read_open = true;
              alive = true;
              unanswered = 0;
            }
            :: st.conns
        end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        continue := false
    | exception Unix.Unix_error (_, _, _) -> continue := false
    | exception Fault.Injected _ ->
        (* one lost accept round; the listener backlog keeps the peer *)
        Obs.incr st.obs "served.fault.accept";
        continue := false
  done

(* -------------------------------------------------------------- *)
(* Batched evaluation                                             *)
(* -------------------------------------------------------------- *)

(* [bucket_from] is top-level rather than local to [bucket]: a local
   [let rec] would allocate a closure over [n] on every call, and
   [bucket] sits on the per-request path (zero-alloc, enforced by
   tools/analyze/hotpaths.sexp). *)
let rec bucket_from b n = if b >= n then b else bucket_from (2 * b) n
let bucket n = bucket_from 1 n

(* Probe the memo for the whole batch, kernel-evaluate only the misses
   (optionally sliced across domains — per-point results are
   independent, so the split is bit-identical), commit, answer. *)
let eval_points st points =
  let n = Array.length points in
  let out = Array.make n 0. in
  let miss = Array.make n 0 in
  let k = Core.Memo.probe_batch st.cache points ~out ~miss in
  if k > 0 then begin
    let packed = st.predictor.Core.Predictor.packed in
    let mpts = Array.init k (fun j -> points.(miss.(j))) in
    let vals =
      if st.cfg.domains <= 1 || k < 2 * st.cfg.domains then
        Rbf.Network.eval_batch packed mpts
      else begin
        let d = st.cfg.domains in
        let chunk = (k + d - 1) / d in
        let n_slices = (k + chunk - 1) / chunk in
        let slices =
          Array.init n_slices (fun c ->
              Array.sub mpts (c * chunk) (min chunk (k - (c * chunk))))
        in
        (* [eval_batch] would funnel every domain through [packed]'s
           shared scratch buffers; the _fresh variant gives each slice
           its own, so the split stays bit-identical AND race-free
           (caught by archpred-analyze's domain-race pass). *)
        let evaled =
          Stats.Parallel.map ~domains:d
            (fun s -> Rbf.Network.eval_batch_fresh packed s)
            slices
        in
        Array.concat (Array.to_list evaled)
      end
    in
    for j = 0 to k - 1 do
      out.(miss.(j)) <- vals.(j)
    done;
    Core.Memo.commit st.cache out
  end;
  out

let process_ingress st =
  while not (Queue.is_empty st.ingress) do
    let now = Obs.now_ns () in
    let batch = ref [] in
    let size = ref 0 in
    while !size < st.cfg.max_batch && not (Queue.is_empty st.ingress) do
      let p = Queue.pop st.ingress in
      if not p.p_conn.alive then ()
        (* its loss was already accounted when the connection died *)
      else if Int64.compare now p.p_deadline > 0 then begin
        st.s_timeouts <- st.s_timeouts + 1;
        Obs.incr st.obs "served.timeout";
        send st p.p_conn p.p_wire
          (Frame.Reply { id = p.p_id; status = Frame.Timeout; value = Float.nan })
          ~reply:true
      end
      else begin
        batch := p :: !batch;
        incr size
      end
    done;
    if !size > 0 then begin
      let batch = Array.of_list (List.rev !batch) in
      let points = Array.map (fun p -> p.p_point) batch in
      let values = eval_points st points in
      Obs.incr st.obs "served.batches";
      Obs.incr st.obs (Printf.sprintf "served.batch.le%d" (bucket !size));
      Array.iteri
        (fun i p ->
          send st p.p_conn p.p_wire
            (Frame.Reply { id = p.p_id; status = Frame.Ok; value = values.(i) })
            ~reply:true)
        batch
    end
  done

(* -------------------------------------------------------------- *)
(* The event loop                                                 *)
(* -------------------------------------------------------------- *)

let open_listener cfg =
  match cfg.listener with
  | Unix_socket path ->
      if Sys.file_exists path then
        (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      fd
  | Tcp { host; port } ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      fd

let validate_config cfg =
  let reject what = Error.invalid_input ~where:"Daemon.run" what in
  if cfg.max_pending < 1 then reject "max_pending < 1";
  if cfg.max_batch < 1 then reject "max_batch < 1";
  if Int64.compare cfg.deadline_ns 0L <= 0 then reject "deadline_ns <= 0";
  if cfg.max_egress < 64 then reject "max_egress < 64";
  if cfg.max_connections < 1 then reject "max_connections < 1";
  if cfg.cache_capacity < 1 then reject "cache_capacity < 1";
  if cfg.domains < 1 then reject "domains < 1";
  if cfg.tick_s <= 0. then reject "tick_s <= 0"

let stats_of st =
  {
    connections = st.s_connections;
    requests = st.s_requests;
    answered = st.s_answered;
    shed = st.s_shed;
    timeouts = st.s_timeouts;
    bad_requests = st.s_bad_requests;
    protocol_errors = st.s_protocol_errors;
    reloads_ok = st.s_reloads_ok;
    reloads_failed = st.s_reloads_failed;
    lost = st.s_lost;
    cache = Core.Memo.stats st.cache;
  }

let run ?(obs = Obs.null) ?(control = control ()) ~predictor cfg =
  validate_config cfg;
  let st =
    {
      cfg;
      obs;
      predictor;
      cache =
        Core.Memo.create ~obs ~capacity:cfg.cache_capacity
          ~space:predictor.Core.Predictor.space
          ~sample_size:cfg.grid_sample_size ();
      model_path = cfg.model_path;
      ingress = Queue.create ();
      conns = [];
      draining = false;
      read_buf = Bytes.create 65536;
      s_connections = 0;
      s_requests = 0;
      s_answered = 0;
      s_shed = 0;
      s_timeouts = 0;
      s_bad_requests = 0;
      s_protocol_errors = 0;
      s_reloads_ok = 0;
      s_reloads_failed = 0;
      s_lost = 0;
    }
  in
  let listener = open_listener cfg in
  let listener_open = ref true in
  let close_listener () =
    if !listener_open then begin
      listener_open := false;
      (try Unix.close listener with Unix.Unix_error (_, _, _) -> ());
      match cfg.listener with
      | Unix_socket path -> (
          try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
      | Tcp _ -> ()
    end
  in
  Obs.with_span obs "served.run" @@ fun () ->
  let finished = ref false in
  while not !finished do
    (* control flags first: drain/reload latency is one tick at most *)
    if Atomic.get control.drain_flag && not st.draining then begin
      st.draining <- true;
      Obs.incr obs "served.drain";
      close_listener ()
    end;
    if Atomic.get control.reload_flag then begin
      Atomic.set control.reload_flag false;
      ignore (do_reload st (Atomic.get control.reload_path))
    end;
    st.conns <- List.filter (fun c -> c.alive) st.conns;
    let reads =
      (if !listener_open && not st.draining then [ listener ] else [])
      @ List.filter_map
          (fun c -> if c.alive && c.read_open then Some c.fd else None)
          st.conns
    in
    let writes =
      List.filter_map
        (fun c ->
          if c.alive && not (Queue.is_empty c.egress) then Some c.fd else None)
        st.conns
    in
    let readable, writable =
      match Unix.select reads writes [] cfg.tick_s with
      | r, w, _ -> (r, w)
      | exception Unix.Unix_error (EINTR, _, _) -> ([], [])
    in
    if List.mem listener readable then handle_accept st listener;
    List.iter
      (fun c ->
        if c.alive && List.mem c.fd readable then handle_readable st c)
      st.conns;
    process_ingress st;
    List.iter
      (fun c ->
        if
          c.alive
          && (List.mem c.fd writable || not (Queue.is_empty c.egress))
        then handle_writable st c)
      st.conns;
    (* slow-reader bound: a peer that will not drain its socket cannot
       hold daemon memory hostage *)
    List.iter
      (fun c ->
        if c.alive && c.egress_bytes > cfg.max_egress then begin
          Obs.incr obs "served.egress_overflow";
          kill st c
        end)
      st.conns;
    if
      st.draining
      && Queue.is_empty st.ingress
      && List.for_all
           (fun c -> (not c.alive) || Queue.is_empty c.egress)
           st.conns
    then finished := true
  done;
  List.iter (fun c -> kill st c) st.conns;
  close_listener ();
  let s = stats_of st in
  let classified =
    s.cache.Core.Memo.hits + s.cache.Core.Memo.misses
    + s.cache.Core.Memo.bypasses
  in
  if classified > 0 then
    Obs.gauge obs "served.hit_rate"
      (float_of_int s.cache.Core.Memo.hits /. float_of_int classified);
  s
