(** The prediction daemon: a single-threaded [Unix.select] event loop
    that serves {!Frame} requests (JSON lines and binary, auto-detected
    per frame) over a Unix or TCP socket, batching requests across
    connections onto the SIMD kernel behind the quantized LRU memo.

    Robustness properties, each verifiable through the fault sites
    below and the counters in {!stats}:

    - {b isolation} — a malformed frame costs its own connection a
      [bad_request] reply and the read side of that socket, nothing
      more; requests it sent before desyncing are still answered;
    - {b backpressure} — the ingress queue is bounded ([max_pending];
      excess requests answer [overloaded]), queued requests expire
      against [deadline_ns] (answering [timeout]), and a peer that
      stops reading is disconnected at [max_egress] buffered bytes;
    - {b graceful drain} — {!request_drain} closes the listener,
      answers everything already accepted, flushes every socket and
      returns with [lost = 0];
    - {b hot reload} — {!request_reload} (or the JSON
      [{"cmd":"reload"}] control message) loads a model with
      {!Archpred_core.Persist} (CRC-checked), probes it — the batched
      kernel must agree bitwise with the scalar oracle on a grid
      sample — and swaps predictor and cache only on success; any
      failure keeps the old model serving.

    Fault-injection sites (see {!Archpred_fault.Fault}):
    ["serve.accept"] before each accept, ["serve.read"] before each
    socket read, ["serve.write"] before each socket write,
    ["serve.reload"] at reload entry.  An injected fault is absorbed as
    the corresponding I/O failure (skipped accept round, one dead
    connection, one failed reload) — never a crash. *)

type listener = Unix_socket of string | Tcp of { host : string; port : int }

type config = {
  listener : listener;
  max_pending : int;  (** ingress bound: beyond it requests are shed *)
  max_batch : int;  (** largest batch handed to the kernel *)
  deadline_ns : int64;  (** queue-age budget per request *)
  max_egress : int;  (** per-connection egress byte bound *)
  max_frame : int;  (** per-frame size bound (both framings) *)
  max_connections : int;
  cache_capacity : int;
  grid_sample_size : int;
  domains : int;  (** kernel-evaluation parallelism for big miss sets *)
  model_path : string option;  (** default path for [reload] *)
  tick_s : float;  (** select timeout: control-flag latency bound *)
}

val default : config
(** Unix socket ["archpred.sock"], 4096 pending, batches of 256,
    200 ms deadline, 1 MiB frame and egress bounds, single domain. *)

type stats = {
  connections : int;  (** accepted connections *)
  requests : int;  (** predict requests parsed *)
  answered : int;  (** replies fully flushed to a socket (any status) *)
  shed : int;  (** answered [overloaded] at the ingress bound *)
  timeouts : int;  (** answered [timeout] after queueing too long *)
  bad_requests : int;  (** answered [bad_request] (invalid point) *)
  protocol_errors : int;  (** connections that desynced mid-stream *)
  reloads_ok : int;
  reloads_failed : int;
  lost : int;  (** parsed requests whose reply never flushed *)
  cache : Archpred_core.Memo.stats;
}

type control
(** Shared handle for driving a running daemon from signal handlers,
    other domains, or tests.  All operations are atomic flags read once
    per loop tick. *)

val control : unit -> control

val request_drain : control -> unit
(** Stop accepting, answer everything accepted, flush, return. *)

val request_reload : ?path:string -> control -> unit
(** Trigger a hot reload from [path] (default: the configured or last
    reloaded model path). *)

val run :
  ?obs:Archpred_obs.t ->
  ?control:control ->
  predictor:Archpred_core.Predictor.t ->
  config ->
  stats
(** Serve until a drain completes.  Blocks the calling thread; drive it
    from another domain (tests) or wire signals to [control] (CLI).
    Raises [Error.Archpred (Invalid_input _)] on a nonsensical config
    and lets listener-setup [Unix.Unix_error]s escape; once the loop is
    entered, per-connection failures never escape.

    Counters on [obs]: [served.requests], [served.answered],
    [served.shed], [served.timeout], [served.bad_request],
    [served.protocol_error], [served.connections], [served.batches],
    [served.batch.leN] (power-of-two batch-size histogram),
    [served.reload.ok], [served.reload.failed], [served.lost],
    [served.fault.*], and gauge [served.hit_rate]. *)
