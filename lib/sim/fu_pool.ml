type unit_class = Int_alu | Int_mul | Int_div | Fp_add | Fp_mul | Fp_div | Mem_port

type config = {
  int_alu : int * int;
  int_mul : int * int;
  int_div : int * int;
  fp_add : int * int;
  fp_mul : int * int;
  fp_div : int * int;
  mem_port : int * int;
}

let default_config =
  {
    int_alu = (4, 1);
    int_mul = (1, 3);
    int_div = (1, 20);
    fp_add = (2, 2);
    fp_mul = (1, 4);
    fp_div = (1, 12);
    mem_port = (2, 1);
  }

let class_of_opcode = function
  | Opcode.Ialu | Opcode.Branch | Opcode.Jump -> Some Int_alu
  | Opcode.Imul -> Some Int_mul
  | Opcode.Idiv -> Some Int_div
  | Opcode.Fadd -> Some Fp_add
  | Opcode.Fmul -> Some Fp_mul
  | Opcode.Fdiv -> Some Fp_div
  | Opcode.Load | Opcode.Store -> Some Mem_port
  | Opcode.Nop -> None

let spec cfg = function
  | Int_alu -> cfg.int_alu
  | Int_mul -> cfg.int_mul
  | Int_div -> cfg.int_div
  | Fp_add -> cfg.fp_add
  | Fp_mul -> cfg.fp_mul
  | Fp_div -> cfg.fp_div
  | Mem_port -> cfg.mem_port

let latency cfg c = snd (spec cfg c)
let count cfg c = fst (spec cfg c)

let class_index = function
  | Int_alu -> 0
  | Int_mul -> 1
  | Int_div -> 2
  | Fp_add -> 3
  | Fp_mul -> 4
  | Fp_div -> 5
  | Mem_port -> 6

let is_pipelined = function
  | Int_div | Fp_div -> false
  | Int_alu | Int_mul | Fp_add | Fp_mul | Mem_port -> true

type t = {
  cfg : config;
  (* For pipelined classes: how many issues we've granted this cycle. *)
  granted : int array;
  mutable granted_cycle : int;
  (* For unpipelined classes: cycle at which each unit frees up. We track a
     single aggregate free-count approximation per class since counts are
     tiny (1 unit in the default config). *)
  busy_until : int array array;
  mutable refused : int;
}

let all_classes =
  [| Int_alu; Int_mul; Int_div; Fp_add; Fp_mul; Fp_div; Mem_port |]

let create cfg =
  {
    cfg;
    granted = Array.make 7 0;
    granted_cycle = -1;
    busy_until = Array.map (fun c -> Array.make (count cfg c) 0) all_classes;
    refused = 0;
  }

let roll_cycle t cycle =
  if t.granted_cycle <> cycle then begin
    Array.fill t.granted 0 7 0;
    t.granted_cycle <- cycle
  end

(* Unpipelined: find a unit whose busy window has passed.  Top-level so
   each attempt is closure-free; returns the unit index or -1. *)
let rec free_unit units cycle i =
  if i >= Array.length units then -1
  else if units.(i) <= cycle then i
  else free_unit units cycle (i + 1)

let try_issue t ~cycle cls =
  roll_cycle t cycle;
  let idx = class_index cls in
  if is_pipelined cls then
    if t.granted.(idx) < count t.cfg cls then begin
      t.granted.(idx) <- t.granted.(idx) + 1;
      true
    end
    else begin
      t.refused <- t.refused + 1;
      false
    end
  else begin
    let units = t.busy_until.(idx) in
    match free_unit units cycle 0 with
    | -1 ->
        t.refused <- t.refused + 1;
        false
    | i ->
        units.(i) <- cycle + latency t.cfg cls;
        true
  end

let structural_stalls t = t.refused
let reset_stats t = t.refused <- 0
