module Parallel = Archpred_stats.Parallel

(* Batched multi-config simulation.

   [Processor.run] walks one (config, trace) pair and re-derives, on
   every run, work that depends only on the trace: opcode decode,
   dependency-distance resolution, the store chain, and — because the
   design space holds the predictor fixed — the entire branch-predictor
   interaction.  A batch run decodes the trace once into flat
   struct-of-arrays streams ([plan]), computes the mispredict stream
   once per distinct predictor configuration, and then fans the per-
   config pipeline walk out across the batch (optionally across
   domains).

   The per-config engine below is a transliteration of
   [Processor.run]'s cycle loop with three structural accelerations,
   each argued semantics-preserving and enforced bit-identical by the
   QCheck properties in [test_sim]:

   - shared streams: slot-local copies of opcode, operand producers and
     the previous-store chain are replaced by reads of the plan's
     trace-indexed arrays, which hold exactly the values the reference
     would have copied at dispatch;

   - event-driven issue: the reference re-scans every unissued window
     slot every cycle, mostly re-discovering that operands are not yet
     ready.  The engine instead tracks, per slot, how many producers
     are still unissued; when a producer issues, its completion time is
     pushed to the consumers through the plan's (config-independent)
     consumer adjacency, and a slot whose last producer resolves enters
     a small index-sorted candidate list with its exact earliest
     attempt cycle.  Each cycle attempts only candidates whose time has
     come, in instruction order — the identical attempt sequence (and
     therefore identical functional-unit, store-queue and memory side
     effects, and identical structural-stall accounting) as the
     reference window scan, at O(attempts) instead of O(window);

   - event skip: a cycle in which commit retired nothing, the issue
     scan found no operand-ready candidate (so no functional unit or
     memory state was touched) and fetch neither probed the L1I nor
     dispatched is "quiet": the reference would only bump per-cycle
     occupancy and stall counters and try again.  The engine computes a
     sound lower bound on the next cycle at which anything can change —
     the head's commit time, the earliest possible issue attempt, or
     the fetch restart — jumps there, and multiplies the per-cycle
     counters by the cycles skipped.  The bound is conservative (an
     issue attempt blocked by the reference's early scan exit simply
     re-enters the quiet path), the jump is capped at the cycle limit
     so [Cycle_limit_exceeded] fires at the same count, and during a
     quiet stretch every per-cycle counter increment is the same one,
     so multiplication reproduces the reference totals exactly. *)

type plan = {
  n : int;
  op : int array;  (* Opcode.to_int *)
  dep1 : int array;  (* absolute producer index, -1 = none *)
  dep2 : int array;
  addr : int array;
  pc : int array;
  target : int array;
  taken : Bytes.t;
  prev_store : int array;  (* nearest older store index, -1 = none *)
  cons_start : int array;  (* CSR row starts into [cons], length n+1 *)
  cons : int array;  (* consumer indices of each instruction *)
}

let op_load = Opcode.to_int Opcode.Load
let op_store = Opcode.to_int Opcode.Store
let op_branch = Opcode.to_int Opcode.Branch
let op_jump = Opcode.to_int Opcode.Jump
let op_nop = Opcode.to_int Opcode.Nop

let plan trace =
  let n = Trace.length trace in
  let op = Array.make n 0 in
  let dep1 = Array.make n (-1) in
  let dep2 = Array.make n (-1) in
  let addr = Array.make n 0 in
  let pc = Array.make n 0 in
  let target = Array.make n 0 in
  let taken = Bytes.make n '\000' in
  let prev_store = Array.make n (-1) in
  let last_store = ref (-1) in
  for i = 0 to n - 1 do
    let o = Opcode.to_int (Trace.op trace i) in
    op.(i) <- o;
    let d1 = Trace.dep1 trace i and d2 = Trace.dep2 trace i in
    dep1.(i) <- (if d1 > 0 then i - d1 else -1);
    dep2.(i) <- (if d2 > 0 then i - d2 else -1);
    addr.(i) <- Trace.addr trace i;
    pc.(i) <- Trace.pc trace i;
    target.(i) <- Trace.target trace i;
    if Trace.taken trace i then Bytes.set taken i '\001';
    if o = op_load || o = op_store then begin
      prev_store.(i) <- !last_store;
      if o = op_store then last_store := i
    end
  done;
  (* Consumer adjacency (CSR): for every instruction, the indices of the
     instructions naming it as a producer.  An instruction naming the
     same producer through both operands appears twice in its row —
     matching the two pending-operand decrements the engine will make. *)
  let cons_start = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    if dep1.(i) >= 0 then cons_start.(dep1.(i)) <- cons_start.(dep1.(i)) + 1;
    if dep2.(i) >= 0 then cons_start.(dep2.(i)) <- cons_start.(dep2.(i)) + 1
  done;
  let total = ref 0 in
  for i = 0 to n do
    let d = if i < n then cons_start.(i) else 0 in
    cons_start.(i) <- !total;
    total := !total + d
  done;
  let cons = Array.make (max 1 !total) 0 in
  let fill = Array.make n 0 in
  for i = 0 to n - 1 do
    let push d =
      if d >= 0 then begin
        cons.(cons_start.(d) + fill.(d)) <- i;
        fill.(d) <- fill.(d) + 1
      end
    in
    push dep1.(i);
    push dep2.(i)
  done;
  { n; op; dep1; dep2; addr; pc; target; taken; prev_store; cons_start; cons }

let length plan = plan.n

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

(* ------------------------------------------------------------------ *)
(* Shared branch-predictor streams                                    *)
(* ------------------------------------------------------------------ *)

(* At dispatch the reference queries and trains the predictor for every
   control instruction, in trace order (each instruction dispatches
   exactly once; there is no wrong-path execution), and the warm replay
   is also in trace order.  The predictor therefore sees an identical
   interaction for every config sharing a predictor configuration, so
   the per-branch mispredict outcomes and the final accuracy can be
   computed once per distinct [Branch_predictor.config] and shared. *)

type bp_stream = { mis : Bytes.t; accuracy : float }

let branch_stream p ~warm bcfg =
  let bp = Branch_predictor.create bcfg in
  let update i =
    Branch_predictor.update bp ~pc:p.pc.(i)
      ~taken:(Bytes.get p.taken i <> '\000')
      ~target:p.target.(i)
  in
  if warm then
    for i = 0 to p.n - 1 do
      if p.op.(i) = op_branch || p.op.(i) = op_jump then update i
    done;
  Branch_predictor.reset_stats bp;
  let mis = Bytes.make p.n '\000' in
  for i = 0 to p.n - 1 do
    let o = p.op.(i) in
    if o = op_branch || o = op_jump then begin
      let kind =
        if o = op_jump then Branch_predictor.Indirect
        else Branch_predictor.Conditional
      in
      if
        Branch_predictor.mispredicted bp ~kind ~pc:p.pc.(i)
          ~taken:(Bytes.get p.taken i <> '\000')
      then Bytes.set mis i '\001';
      update i
    end
  done;
  { mis; accuracy = Branch_predictor.accuracy bp }

let same_scheme a b =
  match (a, b) with
  | Branch_predictor.Gshare, Branch_predictor.Gshare
  | Branch_predictor.Bimodal, Branch_predictor.Bimodal
  | Branch_predictor.Local, Branch_predictor.Local
  | Branch_predictor.Tournament, Branch_predictor.Tournament ->
      true
  | ( ( Branch_predictor.Gshare | Branch_predictor.Bimodal
      | Branch_predictor.Local | Branch_predictor.Tournament ),
      _ ) ->
      false

let same_branch (a : Branch_predictor.config) (b : Branch_predictor.config) =
  same_scheme a.Branch_predictor.scheme b.Branch_predictor.scheme
  && a.Branch_predictor.history_bits = b.Branch_predictor.history_bits
  && a.Branch_predictor.btb_entries = b.Branch_predictor.btb_entries

(* ------------------------------------------------------------------ *)
(* Per-config engine                                                  *)
(* ------------------------------------------------------------------ *)

let warm_memory p cfg mem =
  let line_shift = log2 cfg.Config.line_bytes in
  let cur_line = ref (-1) in
  for i = 0 to p.n - 1 do
    let line = p.pc.(i) lsr line_shift in
    if line <> !cur_line then begin
      cur_line := line;
      ignore (Memory.fetch mem ~cycle:0 ~addr:p.pc.(i))
    end;
    let o = p.op.(i) in
    if o = op_load then ignore (Memory.load mem ~cycle:0 ~addr:p.addr.(i))
    else if o = op_store then Memory.store mem ~cycle:0 ~addr:p.addr.(i)
  done;
  Memory.reset_stats mem

(* Store-queue scan for a load: walk the older-store chain from [pr].
   [-1] no older store in the window (go to memory); [-2] blocked on an
   unissued older store; [>= 0] forwarded, the store's completion.
   Completion cycles are never negative, so the int encoding is free of
   the allocation a variant result would cost — and the function is
   top-level so each call is closure-free.  Accesses are unchecked: [pr]
   is guarded non-negative and below [head]'s window before every read,
   and [ps] is masked into the slot arrays. *)
let rec store_walk prev_store addrs slot_issued slot_complete slot_mask head
    addr pr =
  if pr < head || pr < 0 then -1
  else
    let ps = pr land slot_mask in
    if Bytes.unsafe_get slot_issued ps = '\000' then -2
    else if Array.unsafe_get addrs pr = addr then
      Array.unsafe_get slot_complete ps
    else
      store_walk prev_store addrs slot_issued slot_complete slot_mask head
        addr (Array.unsafe_get prev_store pr)

type stall_reason = No_stall | Icache_stall | Branch_stall
type struct_stall = No_struct | Rob_full | Iq_full | Lsq_full

let simulate p cfg ~max_cycles ~warm ~(stream : bp_stream) =
  let n = p.n in
  let mem =
    Memory.create ~l2_prefetch:cfg.Config.l2_prefetch
      ~il1:(Config.il1_config cfg) ~dl1:(Config.dl1_config cfg)
      ~l2:(Config.l2_config cfg) ~dram:cfg.Config.dram ()
  in
  if warm then warm_memory p cfg mem;
  let fu = Fu_pool.create cfg.Config.fu in
  let rob = cfg.Config.rob_size in
  (* Slot arrays are sized to the next power of two so the instruction →
     slot map is a mask, not a division.  Any two in-flight indices
     differ by less than [rob] <= the array size, so the map stays
     injective over the live window — same residency as [i mod rob]. *)
  let slot_size =
    let rec up v = if v >= rob then v else up (v * 2) in
    up 1
  in
  let slot_mask = slot_size - 1 in
  let line_shift = log2 cfg.Config.line_bytes in
  (* Hot scalars, read every cycle: hoisted to locals so the loop does
     not chase the config record on each read. *)
  let commit_width = cfg.Config.commit_width in
  let issue_width = cfg.Config.issue_width in
  let fetch_width = cfg.Config.fetch_width in
  let iq_size = cfg.Config.iq_size in
  let lsq_size = cfg.Config.lsq_size in
  let il1_latency = cfg.Config.il1_latency in
  let pipe_depth = cfg.Config.pipe_depth in
  let mis = stream.mis in
  let issue_delay = max 1 (pipe_depth / 4) in
  let fu_cls = Array.map Fu_pool.class_of_opcode (Array.map Opcode.of_int (Array.init 11 Fun.id)) in
  let fu_lat =
    Array.map
      (function None -> 0 | Some c -> Fu_pool.latency cfg.Config.fu c)
      fu_cls
  in

  let slot_complete = Array.make slot_size 0 in
  let slot_issued = Bytes.make slot_size '\000' in
  (* Wakeup state: [pend] producers still unissued per slot; [ready_t]
     the earliest attempt cycle known so far (dispatch earliest joined
     with every resolved producer's completion).  A slot whose [pend]
     hits zero enters the candidate list with its final [ready_t]. *)
  let pend = Array.make slot_size 0 in
  let ready_t = Array.make slot_size 0 in
  (* Index-sorted candidate list: dispatched, unissued slots all of
     whose producers have issued.  [cand_i] instruction indices
     ascending, [cand_t] their attempt cycles. *)
  let cand_i = Array.make rob 0 in
  let cand_t = Array.make rob 0 in
  let cand_n = ref 0 in
  (* Producers issued this cycle, whose consumers are notified after the
     candidate walk (their completions all lie in the future, so the
     deferral cannot unblock an attempt within the same cycle). *)
  let issued_now = Array.make rob 0 in
  (* Per-cycle scratch, hoisted out of the loop: without flambda every
     [ref] literal in the loop body is a heap allocation, and at one
     allocation per stage per cycle the GC traffic would rival the
     simulation itself. *)
  let commit_progress = ref false in
  let commit_quota = ref 0 in
  let commit_go = ref true in
  let attempts = ref 0 in
  let budget = ref 0 in
  let issued_n = ref 0 in
  let walk_w = ref 0 in
  let fetch_progress = ref false in
  let struct_stall = ref No_struct in
  let fetch_quota = ref 0 in
  let fetch_stop = ref false in
  let dis_t = ref 0 in
  let dis_pend = ref 0 in
  let ins_at = ref 0 in
  let next_issue = ref 0 in

  let head = ref 0 and tail = ref 0 in
  let iq_occ = ref 0 and lsq_occ = ref 0 in
  let committed = ref 0 in
  let cycle = ref 0 in
  let fetch_resume = ref 0 in
  let stall_reason = ref No_stall in
  let cur_line = ref (-1) in

  let stall_rob = ref 0 and stall_iq = ref 0 and stall_lsq = ref 0 in
  let stall_icache = ref 0 and stall_branch = ref 0 in
  let occ_rob = ref 0 and occ_iq = ref 0 and occ_lsq = ref 0 in

  (* All slot-array accesses below go through the [land slot_mask] map
     (or a value produced by it), so the unchecked reads stay in range.
     The map and the issued test are written out at each use: as local
     functions they would be real calls on every loop iteration. *)
  let cand_insert i t =
    ins_at := !cand_n;
    while !ins_at > 0 && cand_i.(!ins_at - 1) > i do
      decr ins_at
    done;
    Array.blit cand_i !ins_at cand_i (!ins_at + 1) (!cand_n - !ins_at);
    Array.blit cand_t !ins_at cand_t (!ins_at + 1) (!cand_n - !ins_at);
    cand_i.(!ins_at) <- i;
    cand_t.(!ins_at) <- t;
    incr cand_n
  in
  (* Producer [d] issued completing at [complete]: push the wakeup to
     its dispatched, still-unissued consumers. *)
  let notify d complete =
    (* [d] < n so the CSR row bounds hold; consumer indices are trace
       indices < n, and [js] is masked into the slot arrays. *)
    for k = p.cons_start.(d) to p.cons_start.(d + 1) - 1 do
      let j = Array.unsafe_get p.cons k in
      if j < !tail then begin
        let js = j land slot_mask in
        if Bytes.unsafe_get slot_issued js = '\000' then begin
          if complete > Array.unsafe_get ready_t js then
            Array.unsafe_set ready_t js complete;
          Array.unsafe_set pend js (Array.unsafe_get pend js - 1);
          if Array.unsafe_get pend js = 0 then
            cand_insert j (Array.unsafe_get ready_t js)
        end
      end
    done
  in
  let store_scan i =
    store_walk p.prev_store p.addr slot_issued slot_complete slot_mask !head
      p.addr.(i) p.prev_store.(i)
  in

  while !committed < n do
    let now = !cycle in
    if now > max_cycles then raise (Processor.Cycle_limit_exceeded now);

    (* ---- commit: in order, completed strictly before this cycle ---- *)
    commit_progress := false;
    commit_quota := commit_width;
    commit_go := true;
    while !commit_go && !commit_quota > 0 && !head < !tail do
      let i = !head in
      let s = i land slot_mask in
      if
        Bytes.unsafe_get slot_issued s <> '\000'
        && Array.unsafe_get slot_complete s < now
      then begin
        let o = Array.unsafe_get p.op i in
        if o = op_store then begin
          Memory.store mem ~cycle:now ~addr:(Array.unsafe_get p.addr i);
          decr lsq_occ
        end
        else if o = op_load then decr lsq_occ;
        head := i + 1;
        incr committed;
        decr commit_quota;
        commit_progress := true
      end
      else commit_go := false
    done;

    (* ---- issue: oldest-first out-of-order selection ----

       Walk the candidate list in instruction order, attempting every
       slot whose time has come while issue slots remain.  This is the
       reference's window scan with the never-ready slots elided: the
       scan attempts exactly the unissued slots that pass its dispatch-
       delay gate (monotone in the window, so any slot past the gate
       also has a future candidate time here) and its operand-ready
       gate (a candidate time in the future is precisely an operand
       completing later), in the same order, stopping at the same
       issue-width exhaustion. *)
    attempts := 0;
    budget := issue_width;
    issued_n := 0;
    if !cand_n > 0 then begin
      walk_w := 0;
      (* [r] and [walk_w] stay below [cand_n] <= in-flight count <= the
         candidate arrays' length. *)
      for r = 0 to !cand_n - 1 do
        let i = Array.unsafe_get cand_i r in
        let t = Array.unsafe_get cand_t r in
        let keep =
          if !budget > 0 && t <= now then begin
            incr attempts;
            let s = i land slot_mask in
            let o = Array.unsafe_get p.op i in
            let complete =
              if o = op_load then begin
                let sc = store_scan i in
                if sc = -2 then -1
                else if
                  not (Fu_pool.try_issue fu ~cycle:now Fu_pool.Mem_port)
                then -1
                else if sc >= 0 then max (now + 1) (sc + 1)
                else
                  Memory.load mem ~cycle:now ~addr:(Array.unsafe_get p.addr i)
              end
              else if o = op_store then
                if Fu_pool.try_issue fu ~cycle:now Fu_pool.Mem_port then
                  now + 1
                else -1
              else
                match fu_cls.(o) with
                | None -> now
                | Some cls ->
                    if Fu_pool.try_issue fu ~cycle:now cls then
                      now + fu_lat.(o)
                    else -1
            in
            if complete >= 0 then begin
              Bytes.unsafe_set slot_issued s '\001';
              Array.unsafe_set slot_complete s complete;
              iq_occ := !iq_occ - 1;
              decr budget;
              if Bytes.unsafe_get mis i <> '\000' then
                fetch_resume := complete + pipe_depth;
              Array.unsafe_set issued_now !issued_n i;
              incr issued_n;
              false
            end
            else true
          end
          else true
        in
        if keep then begin
          Array.unsafe_set cand_i !walk_w i;
          Array.unsafe_set cand_t !walk_w t;
          incr walk_w
        end
      done;
      cand_n := !walk_w;
      (* Wakeups after the walk: every completion lies past [now], so
         no consumer could have been attempted this cycle anyway. *)
      for k = 0 to !issued_n - 1 do
        let d = Array.unsafe_get issued_now k in
        notify d (Array.unsafe_get slot_complete (d land slot_mask))
      done
    end;

    (* ---- fetch/dispatch: in order, up to fetch_width ---- *)
    fetch_progress := false;
    struct_stall := No_struct;
    if now >= !fetch_resume then begin
      stall_reason := No_stall;
      fetch_quota := fetch_width;
      fetch_stop := false;
      while (not !fetch_stop) && !fetch_quota > 0 && !tail < n do
        let i = !tail in
        if !tail - !head >= rob then begin
          incr stall_rob;
          struct_stall := Rob_full;
          fetch_stop := true
        end
        else begin
          let o = Array.unsafe_get p.op i in
          let needs_iq = o <> op_nop in
          let is_mem = o = op_load || o = op_store in
          if needs_iq && !iq_occ >= iq_size then begin
            incr stall_iq;
            struct_stall := Iq_full;
            fetch_stop := true
          end
          else if is_mem && !lsq_occ >= lsq_size then begin
            incr stall_lsq;
            struct_stall := Lsq_full;
            fetch_stop := true
          end
          else begin
            let pc = Array.unsafe_get p.pc i in
            let line = pc lsr line_shift in
            if line <> !cur_line then begin
              cur_line := line;
              fetch_progress := true;
              let ready = Memory.fetch mem ~cycle:now ~addr:pc in
              if ready > now + il1_latency then begin
                fetch_resume := ready;
                stall_reason := Icache_stall;
                fetch_stop := true
              end
            end;
            if not !fetch_stop then begin
              let s = i land slot_mask in
              if o = op_nop then begin
                (* Nops never reach the issue scan: the reference issues
                   them unconditionally at first attempt with completion
                   [now], observable only through commit order — which
                   marking them complete at dispatch reproduces. *)
                Bytes.unsafe_set slot_issued s '\001';
                Array.unsafe_set slot_complete s now
              end
              else begin
                Bytes.unsafe_set slot_issued s '\000';
                incr iq_occ;
                (* Snapshot the wakeup state.  A producer already issued
                   (or committed — its completion then lies in the past)
                   contributes its completion to the attempt cycle; an
                   unissued one is counted pending and will push its
                   completion through [notify] when it issues. *)
                dis_t := now + issue_delay;
                dis_pend := 0;
                let d1 = Array.unsafe_get p.dep1 i in
                if d1 >= 0 && d1 >= !head then begin
                  let ds = d1 land slot_mask in
                  if Bytes.unsafe_get slot_issued ds <> '\000' then begin
                    if Array.unsafe_get slot_complete ds > !dis_t then
                      dis_t := Array.unsafe_get slot_complete ds
                  end
                  else incr dis_pend
                end;
                let d2 = Array.unsafe_get p.dep2 i in
                if d2 >= 0 && d2 >= !head then begin
                  let ds = d2 land slot_mask in
                  if Bytes.unsafe_get slot_issued ds <> '\000' then begin
                    if Array.unsafe_get slot_complete ds > !dis_t then
                      dis_t := Array.unsafe_get slot_complete ds
                  end
                  else incr dis_pend
                end;
                Array.unsafe_set pend s !dis_pend;
                Array.unsafe_set ready_t s !dis_t;
                if !dis_pend = 0 then begin
                  (* [i] exceeds every index already listed, so a plain
                     append keeps the candidate list index-sorted. *)
                  Array.unsafe_set cand_i !cand_n i;
                  Array.unsafe_set cand_t !cand_n !dis_t;
                  incr cand_n
                end
              end;
              if is_mem then incr lsq_occ;
              if o = op_branch || o = op_jump then
                if Bytes.unsafe_get mis i <> '\000' then begin
                  fetch_resume := max_int;
                  stall_reason := Branch_stall;
                  fetch_stop := true
                end
                else if Bytes.unsafe_get p.taken i <> '\000' then
                  fetch_stop := true;
              tail := i + 1;
              decr fetch_quota;
              fetch_progress := true
            end
          end
        end
      done
    end
    else begin
      match !stall_reason with
      | Icache_stall -> incr stall_icache
      | Branch_stall -> incr stall_branch
      | No_stall -> ()
    end;

    occ_rob := !occ_rob + (!tail - !head);
    occ_iq := !occ_iq + !iq_occ;
    occ_lsq := !occ_lsq + !lsq_occ;

    if !commit_progress || !attempts > 0 || !fetch_progress then incr cycle
    else begin
      (* Quiet cycle: nothing but counters changed, so every cycle up
         to (exclusive) the next possible event replays identically.
         Jump there and multiply the per-cycle counters. *)
      let next_commit =
        let hs = !head land slot_mask in
        if !head < !tail && Bytes.unsafe_get slot_issued hs <> '\000' then
          Array.unsafe_get slot_complete hs + 1
        else max_int
      in
      (* A quiet cycle means every candidate's time lies in the future;
         a non-candidate needs a producer to issue first, which cannot
         happen before the earliest candidate fires.  The earliest
         candidate time is therefore the exact next possible issue. *)
      next_issue := max_int;
      for r = 0 to !cand_n - 1 do
        if Array.unsafe_get cand_t r < !next_issue then
          next_issue := Array.unsafe_get cand_t r
      done;
      let next_fetch =
        if !tail < n && now < !fetch_resume then !fetch_resume else max_int
      in
      let target = min next_commit (min !next_issue next_fetch) in
      let target = min target (max_cycles + 1) in
      let target = if target <= now then now + 1 else target in
      let k = target - now - 1 in
      if k > 0 then begin
        occ_rob := !occ_rob + (k * (!tail - !head));
        occ_iq := !occ_iq + (k * !iq_occ);
        occ_lsq := !occ_lsq + (k * !lsq_occ);
        if now < !fetch_resume then begin
          match !stall_reason with
          | Icache_stall -> stall_icache := !stall_icache + k
          | Branch_stall -> stall_branch := !stall_branch + k
          | No_stall -> ()
        end
        else begin
          match !struct_stall with
          | Rob_full -> stall_rob := !stall_rob + k
          | Iq_full -> stall_iq := !stall_iq + k
          | Lsq_full -> stall_lsq := !stall_lsq + k
          | No_struct -> ()
        end
      end;
      cycle := target
    end
  done;

  let cycles = !cycle in
  let cyclesf = float_of_int (max 1 cycles) in
  let dram = Dram.stats (Memory.dram mem) in
  {
    Processor.instructions = n;
    cycles;
    cpi = float_of_int cycles /. float_of_int (max 1 n);
    branch_accuracy = stream.accuracy;
    il1_miss_rate = Cache.miss_rate (Memory.il1 mem);
    dl1_miss_rate = Cache.miss_rate (Memory.dl1 mem);
    l2_miss_rate = Cache.miss_rate (Memory.l2 mem);
    dram_accesses = dram.Dram.accesses;
    dram_avg_latency = Dram.average_latency (Memory.dram mem);
    avg_rob_occupancy = float_of_int !occ_rob /. cyclesf;
    avg_iq_occupancy = float_of_int !occ_iq /. cyclesf;
    avg_lsq_occupancy = float_of_int !occ_lsq /. cyclesf;
    dispatch_stall_rob = !stall_rob;
    dispatch_stall_iq = !stall_iq;
    dispatch_stall_lsq = !stall_lsq;
    fetch_stall_icache = !stall_icache;
    fetch_stall_branch = !stall_branch;
  }

(* ------------------------------------------------------------------ *)
(* Batch entry points                                                 *)
(* ------------------------------------------------------------------ *)

let run_plan ?max_cycles ?(warm = true) ?domains p configs =
  Array.iter
    (fun cfg ->
      (match Config.validate cfg with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Batch.run: " ^ msg));
      (* The deferred-wakeup issue stage needs every completion to lie
         strictly past its issue cycle; a zero-latency functional unit
         (not constructible through [Config.make]) would break that. *)
      let { Fu_pool.int_alu; int_mul; int_div; fp_add; fp_mul; fp_div;
            mem_port } =
        cfg.Config.fu
      in
      List.iter
        (fun (_, lat) ->
          if lat < 1 then
            invalid_arg "Batch.run: functional-unit latency < 1")
        [ int_alu; int_mul; int_div; fp_add; fp_mul; fp_div; mem_port ])
    configs;
  let max_cycles =
    match max_cycles with Some m -> m | None -> (200 * p.n) + 10_000_000
  in
  (* one mispredict stream per distinct predictor configuration,
     computed up front so the fan-out below only reads shared state *)
  let classes = ref [] in
  let streams =
    Array.map
      (fun cfg ->
        let bcfg = cfg.Config.branch in
        match
          List.find_opt (fun (b, _) -> same_branch b bcfg) !classes
        with
        | Some (_, s) -> s
        | None ->
            let s = branch_stream p ~warm bcfg in
            classes := (bcfg, s) :: !classes;
            s)
      configs
  in
  Parallel.init ?domains (Array.length configs) (fun i ->
      simulate p configs.(i) ~max_cycles ~warm ~stream:streams.(i))

let run ?max_cycles ?warm ?domains configs trace =
  run_plan ?max_cycles ?warm ?domains (plan trace) configs

let cpi ?max_cycles ?warm ?domains configs trace =
  Array.map
    (fun (r : Processor.result) -> r.Processor.cpi)
    (run ?max_cycles ?warm ?domains configs trace)
