type t = {
  pipe_depth : int;
  rob_size : int;
  iq_size : int;
  lsq_size : int;
  l2_size : int;
  l2_latency : int;
  il1_size : int;
  dl1_size : int;
  dl1_latency : int;
  fetch_width : int;
  issue_width : int;
  commit_width : int;
  line_bytes : int;
  il1_assoc : int;
  dl1_assoc : int;
  l2_assoc : int;
  il1_latency : int;
  l2_prefetch : bool;
  cache_policy : Cache.Policy.t;
  dram : Dram.config;
  branch : Branch_predictor.config;
  fu : Fu_pool.config;
}

let default =
  {
    pipe_depth = 14;
    rob_size = 80;
    iq_size = 40;
    lsq_size = 40;
    l2_size = 2 * 1024 * 1024;
    l2_latency = 12;
    il1_size = 32 * 1024;
    dl1_size = 32 * 1024;
    dl1_latency = 2;
    fetch_width = 4;
    issue_width = 4;
    commit_width = 4;
    line_bytes = 64;
    il1_assoc = 2;
    dl1_assoc = 2;
    l2_assoc = 8;
    il1_latency = 1;
    l2_prefetch = false;
    cache_policy = Cache.Policy.Lru;
    dram = Dram.default_config;
    branch = Branch_predictor.default_config;
    fu = Fu_pool.default_config;
  }

(* Round a requested capacity to a whole number of sets. *)
let round_to_sets ~line ~assoc n =
  let granule = line * assoc in
  granule * max 1 ((n + (granule / 2)) / granule)

let validate t =
  let err msg = Error msg in
  if t.pipe_depth < 1 then err "pipe_depth < 1"
  else if t.rob_size < 4 then err "rob_size < 4"
  else if t.iq_size < 1 || t.iq_size > t.rob_size then
    err "iq_size outside [1, rob_size]"
  else if t.lsq_size < 1 || t.lsq_size > t.rob_size then
    err "lsq_size outside [1, rob_size]"
  else if t.l2_latency < 1 then err "l2_latency < 1"
  else if t.dl1_latency < 1 then err "dl1_latency < 1"
  else if t.fetch_width < 1 || t.issue_width < 1 || t.commit_width < 1 then
    err "widths must be >= 1"
  else if t.il1_size < t.line_bytes * t.il1_assoc then err "il1 too small"
  else if t.dl1_size < t.line_bytes * t.dl1_assoc then err "dl1 too small"
  else if t.l2_size < t.line_bytes * t.l2_assoc then err "l2 too small"
  else if
    (match t.cache_policy with
    | Cache.Policy.Tree_plru -> true
    | Cache.Policy.Lru | Cache.Policy.Qlru | Cache.Policy.Mru -> false)
    && not
         (List.for_all
            (fun a -> a > 0 && a land (a - 1) = 0)
            [ t.il1_assoc; t.dl1_assoc; t.l2_assoc ])
  then err "tree-plru needs power-of-two associativities"
  else Ok ()

let make ?(base = default) ?(cache_policy = base.cache_policy) ~pipe_depth
    ~rob_size ~iq_size ~lsq_size ~l2_size ~l2_latency ~il1_size ~dl1_size
    ~dl1_latency () =
  let t =
    {
      base with
      cache_policy;
      pipe_depth;
      rob_size;
      iq_size;
      lsq_size;
      l2_size = round_to_sets ~line:base.line_bytes ~assoc:base.l2_assoc l2_size;
      l2_latency;
      il1_size =
        round_to_sets ~line:base.line_bytes ~assoc:base.il1_assoc il1_size;
      dl1_size =
        round_to_sets ~line:base.line_bytes ~assoc:base.dl1_assoc dl1_size;
      dl1_latency;
    }
  in
  match validate t with
  | Ok () -> t
  | Error msg -> invalid_arg ("Config.make: " ^ msg)

let il1_config t =
  Cache.config ~policy:t.cache_policy ~size_bytes:t.il1_size
    ~line_bytes:t.line_bytes ~associativity:t.il1_assoc ~latency:t.il1_latency
    ()

let dl1_config t =
  Cache.config ~policy:t.cache_policy ~size_bytes:t.dl1_size
    ~line_bytes:t.line_bytes ~associativity:t.dl1_assoc ~latency:t.dl1_latency
    ()

let l2_config t =
  Cache.config ~policy:t.cache_policy ~size_bytes:t.l2_size
    ~line_bytes:t.line_bytes ~associativity:t.l2_assoc ~latency:t.l2_latency ()

let pp ppf t =
  Format.fprintf ppf
    "@[<v>pipe_depth=%d rob=%d iq=%d lsq=%d@ l2=%dKB lat=%d il1=%dKB \
     dl1=%dKB dl1_lat=%d@ widths=%d/%d/%d@]"
    t.pipe_depth t.rob_size t.iq_size t.lsq_size (t.l2_size / 1024)
    t.l2_latency (t.il1_size / 1024) (t.dl1_size / 1024) t.dl1_latency
    t.fetch_width t.issue_width t.commit_width
