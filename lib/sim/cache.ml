module Policy = struct
  type t = Lru | Tree_plru | Qlru | Mru

  let all = [| Lru; Tree_plru; Qlru; Mru |]

  let to_string = function
    | Lru -> "lru"
    | Tree_plru -> "tree-plru"
    | Qlru -> "qlru"
    | Mru -> "mru"

  let of_string = function
    | "lru" -> Some Lru
    | "tree-plru" | "tree_plru" -> Some Tree_plru
    | "qlru" -> Some Qlru
    | "mru" -> Some Mru
    | _ -> None

  let pp ppf p = Format.pp_print_string ppf (to_string p)
end

type config = {
  size_bytes : int;
  line_bytes : int;
  associativity : int;
  latency : int;
  policy : Policy.t;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let config ?(policy = Policy.Lru) ~size_bytes ~line_bytes ~associativity
    ~latency () =
  if not (is_pow2 line_bytes) then
    invalid_arg "Cache.config: line size not a power of two";
  if associativity <= 0 then invalid_arg "Cache.config: associativity <= 0";
  if latency < 1 then invalid_arg "Cache.config: latency < 1";
  if size_bytes < line_bytes * associativity then
    invalid_arg "Cache.config: fewer than one set";
  if size_bytes mod (line_bytes * associativity) <> 0 then
    invalid_arg "Cache.config: size not a multiple of line * associativity";
  (match policy with
  | Policy.Tree_plru ->
      if not (is_pow2 associativity) then
        invalid_arg "Cache.config: tree-plru needs power-of-two associativity";
      if associativity > 63 then
        invalid_arg "Cache.config: tree-plru supports at most 63 ways"
  | Policy.Lru | Policy.Qlru | Policy.Mru -> ());
  { size_bytes; line_bytes; associativity; latency; policy }

type t = {
  cfg : config;
  set_count : int;
  set_mask : int; (* set_count - 1 when a power of two, else -1 *)
  line_shift : int;
  tags : int array; (* set * ways + way; -1 = invalid *)
  age : int array; (* per-line recency state; meaning depends on policy *)
  tree : int array; (* tree-plru: one bit-packed decision tree per set *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create cfg =
  let set_count = cfg.size_bytes / (cfg.line_bytes * cfg.associativity) in
  {
    cfg;
    set_count;
    set_mask = (if is_pow2 set_count then set_count - 1 else -1);
    line_shift = log2 cfg.line_bytes;
    tags = Array.make (set_count * cfg.associativity) (-1);
    age = Array.make (set_count * cfg.associativity) 0;
    tree =
      (match cfg.policy with
      | Policy.Tree_plru -> Array.make set_count 0
      | Policy.Lru | Policy.Qlru | Policy.Mru -> [||]);
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let latency t = t.cfg.latency
let sets t = t.set_count
let ways t = t.cfg.associativity
let policy t = t.cfg.policy

(* Any set count is allowed (sizes need not be powers of two), so the set
   index is a modulo — masked instead when the count is a power of two,
   since this sits on the hot path of every simulated access.  The tag is
   the full line number; [locate_set] is kept tuple-free (one call per
   access, so a boxed pair would be one allocation per access). *)
let locate_set t line =
  if t.set_mask >= 0 then line land t.set_mask else line mod t.set_count

(* The way scans are top-level and fully applied: a [let rec] nested in
   its caller captures its environment in a closure allocated on every
   call, which on the hottest path (one [find] per access) costs more
   than the scan itself. *)
let rec find_way tags base ways tag w =
  (* [base + w] < set_count * ways = length tags while [w] < [ways]. *)
  if w >= ways then -1
  else if Array.unsafe_get tags (base + w) = tag then base + w
  else find_way tags base ways tag (w + 1)

let find t set tag =
  let ways = t.cfg.associativity in
  find_way t.tags (set * ways) ways tag 0

let rec invalid_way tags base ways w =
  if w >= ways then -1
  else if tags.(base + w) = -1 then w
  else invalid_way tags base ways (w + 1)

(* First invalid way of a set, or -1.  The non-LRU policies fill invalid
   ways left to right before consulting replacement state; plain LRU gets
   the same effect from its zero-initialised age stamps. *)
let first_invalid t base = invalid_way t.tags base t.cfg.associativity 0

(* --- Tree-PLRU -------------------------------------------------------
   One bit per internal node of a balanced binary tree over the ways,
   packed into an int per set; heap numbering, root = node 1.  Bit 0
   means the victim path descends left, 1 means right.  Touching a way
   flips every node on its root path to point at the *other* subtree. *)

let tree_touch t set w =
  let ways = t.cfg.associativity in
  let bits = ref t.tree.(set) in
  let node = ref 1 in
  let lo = ref 0 in
  let span = ref ways in
  while !span > 1 do
    let half = !span / 2 in
    if w - !lo < half then begin
      (* used the left half: victim path should go right *)
      bits := !bits lor (1 lsl !node);
      node := 2 * !node
    end
    else begin
      bits := !bits land lnot (1 lsl !node);
      lo := !lo + half;
      node := (2 * !node) + 1
    end;
    span := half
  done;
  t.tree.(set) <- !bits

let tree_victim t set =
  let ways = t.cfg.associativity in
  let bits = t.tree.(set) in
  let node = ref 1 in
  let lo = ref 0 in
  let span = ref ways in
  while !span > 1 do
    let half = !span / 2 in
    if bits land (1 lsl !node) = 0 then node := 2 * !node
    else begin
      lo := !lo + half;
      node := (2 * !node) + 1
    end;
    span := half
  done;
  !lo

(* Leftmost way of [base]'s set whose age equals [want] — the caller
   guarantees one exists. *)
let rec age_scan age base want w =
  if age.(base + w) = want then w else age_scan age base want (w + 1)

(* --- QLRU ------------------------------------------------------------
   Quad-age LRU in the style of the reverse-engineered Intel policies:
   2-bit age per line.  Hits promote to age 0, fills insert at age 1,
   the victim is the leftmost line of age 3, and when no line has age 3
   every age in the set is raised just enough to create one. *)

let qlru_victim t base =
  let ways = t.cfg.associativity in
  let max_age = ref 0 in
  for w = 0 to ways - 1 do
    if t.age.(base + w) > !max_age then max_age := t.age.(base + w)
  done;
  let bump = 3 - !max_age in
  if bump > 0 then
    for w = 0 to ways - 1 do
      t.age.(base + w) <- t.age.(base + w) + bump
    done;
  age_scan t.age base 3 0

(* --- MRU (bit-PLRU) --------------------------------------------------
   One MRU bit per line, set on every touch.  When the last zero bit of
   a set would disappear, all other bits reset — the classic bit-PLRU
   "global flip".  The victim is the leftmost line with a clear bit. *)

let mru_touch t base w =
  let ways = t.cfg.associativity in
  t.age.(base + w) <- 1;
  let all_set = ref true in
  for i = 0 to ways - 1 do
    if t.age.(base + i) = 0 then all_set := false
  done;
  if !all_set then begin
    Array.fill t.age base ways 0;
    t.age.(base + w) <- 1
  end

let mru_victim t base = age_scan t.age base 0 0

let access t addr =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let tag = addr lsr t.line_shift in
  let set = locate_set t tag in
  let slot = find t set tag in
  let ways = t.cfg.associativity in
  let base = set * ways in
  match t.cfg.policy with
  | Policy.Lru ->
      if slot >= 0 then begin
        t.age.(slot) <- t.clock;
        true
      end
      else begin
        t.misses <- t.misses + 1;
        (* Fill, evicting the LRU way of the set. *)
        let victim = ref base in
        for w = 1 to ways - 1 do
          if t.age.(base + w) < t.age.(!victim) then victim := base + w
        done;
        t.tags.(!victim) <- tag;
        t.age.(!victim) <- t.clock;
        false
      end
  | Policy.Tree_plru ->
      if slot >= 0 then begin
        tree_touch t set (slot - base);
        true
      end
      else begin
        t.misses <- t.misses + 1;
        let w =
          match first_invalid t base with -1 -> tree_victim t set | w -> w
        in
        t.tags.(base + w) <- tag;
        tree_touch t set w;
        false
      end
  | Policy.Qlru ->
      if slot >= 0 then begin
        t.age.(slot) <- 0;
        true
      end
      else begin
        t.misses <- t.misses + 1;
        let w =
          match first_invalid t base with -1 -> qlru_victim t base | w -> w
        in
        t.tags.(base + w) <- tag;
        t.age.(base + w) <- 1;
        false
      end
  | Policy.Mru ->
      if slot >= 0 then begin
        mru_touch t base (slot - base);
        true
      end
      else begin
        t.misses <- t.misses + 1;
        let w =
          match first_invalid t base with -1 -> mru_victim t base | w -> w
        in
        t.tags.(base + w) <- tag;
        mru_touch t base w;
        false
      end

let probe t addr =
  let tag = addr lsr t.line_shift in
  find t (locate_set t tag) tag >= 0

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.age 0 (Array.length t.age) 0;
  if Array.length t.tree > 0 then Array.fill t.tree 0 (Array.length t.tree) 0

type stats = { accesses : int; misses : int }

let stats (t : t) : stats = { accesses = t.accesses; misses = t.misses }

let miss_rate (t : t) =
  if t.accesses = 0 then 0.
  else float_of_int t.misses /. float_of_int t.accesses

let reset_stats (t : t) =
  t.accesses <- 0;
  t.misses <- 0
