(** Set-associative caches with pluggable replacement policies.

    Three instances form the simulated hierarchy: split L1 instruction and
    data caches backed by a unified L2 (the L2 size and latency, and the L1
    sizes and data latency, are five of the paper's nine design
    parameters).  The cache is a timing structure only — no data is stored,
    just tags and recency.

    Replacement is selected per cache through {!Policy}: the original
    age-stamp LRU (the default, bit-identical to the pre-policy
    implementation), Tree-PLRU, a QLRU variant, and MRU (bit-PLRU) — the
    deterministic policies reverse-engineered from real Intel parts. *)

module Policy : sig
  type t =
    | Lru  (** true LRU via monotone age stamps *)
    | Tree_plru  (** binary-tree pseudo-LRU; needs power-of-two ways *)
    | Qlru  (** 2-bit quad-age LRU: hit → 0, fill at 1, evict age 3 *)
    | Mru  (** bit-PLRU: MRU bit per line with global flip *)

  val all : t array
  (** Every policy, in the fixed order used by the design-space axis. *)

  val to_string : t -> string
  val of_string : string -> t option
  val pp : Format.formatter -> t -> unit
end

type config = {
  size_bytes : int;  (** total capacity; any multiple of [line * assoc] *)
  line_bytes : int;  (** line size; power of two *)
  associativity : int;  (** ways per set; [size / line / assoc] sets *)
  latency : int;  (** hit latency in cycles *)
  policy : Policy.t;  (** replacement policy *)
}

val config :
  ?policy:Policy.t ->
  size_bytes:int ->
  line_bytes:int ->
  associativity:int ->
  latency:int ->
  unit ->
  config
(** Validated constructor ([policy] defaults to [Lru]). Raises
    [Invalid_argument] on a non-power-of-two line size, zero ways, capacity
    smaller than [line * assoc], a capacity that is not a whole number of
    sets, or a Tree-PLRU cache whose associativity is not a power of two.
    Arbitrary set counts are supported (indexing is modulo), so the design
    space can vary cache capacity continuously rather than in power-of-two
    jumps. *)

type t

val create : config -> t
val latency : t -> int
val sets : t -> int
val ways : t -> int
val policy : t -> Policy.t

val access : t -> int -> bool
(** [access t addr] probes the line containing byte [addr]; returns [true]
    on hit.  On miss the line is filled into an invalid way if one exists,
    otherwise into the victim chosen by the replacement policy. *)

val probe : t -> int -> bool
(** Hit test without any state update. *)

val invalidate_all : t -> unit

type stats = { accesses : int; misses : int }

val stats : t -> stats
val miss_rate : t -> float
val reset_stats : t -> unit
