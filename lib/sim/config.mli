(** Full configuration of the simulated processor.

    The nine fields that the paper's design space varies (Table 1) are
    grouped first; everything else (widths, line sizes, associativities,
    DRAM and branch-predictor parameters, functional-unit mix) is held
    fixed across the design space, as in the paper. *)

type t = {
  (* --- the paper's nine design parameters --- *)
  pipe_depth : int;  (** front-end depth in stages: decode-to-issue delay,
                         and the refill penalty after a misprediction *)
  rob_size : int;
  iq_size : int;
  lsq_size : int;
  l2_size : int;  (** bytes *)
  l2_latency : int;  (** cycles *)
  il1_size : int;  (** bytes *)
  dl1_size : int;  (** bytes *)
  dl1_latency : int;  (** cycles *)
  (* --- fixed machine structure --- *)
  fetch_width : int;
  issue_width : int;
  commit_width : int;
  line_bytes : int;
  il1_assoc : int;
  dl1_assoc : int;
  l2_assoc : int;
  il1_latency : int;
  l2_prefetch : bool;  (** enable the L2 next-line prefetcher *)
  cache_policy : Cache.Policy.t;
      (** replacement policy shared by IL1, DL1 and L2 — the tenth
          design-space axis of the extended space *)
  dram : Dram.config;
  branch : Branch_predictor.config;
  fu : Fu_pool.config;
}

val default : t
(** A mid-range configuration: 14-stage pipeline, 80-entry ROB, 40-entry IQ
    and LSQ, 2MB 12-cycle L2, 32KB L1s, 2-cycle L1D, 4-wide. *)

val make :
  ?base:t ->
  ?cache_policy:Cache.Policy.t ->
  pipe_depth:int ->
  rob_size:int ->
  iq_size:int ->
  lsq_size:int ->
  l2_size:int ->
  l2_latency:int ->
  il1_size:int ->
  dl1_size:int ->
  dl1_latency:int ->
  unit ->
  t
(** Override the nine design parameters on top of [base] (default
    {!default}). Raises [Invalid_argument] if a parameter is out of its
    physically meaningful range (all positive; queue sizes at most the ROB
    size).  Cache capacities are rounded to the nearest whole number of
    sets, so they vary (almost) continuously across the design space. *)

val il1_config : t -> Cache.config
val dl1_config : t -> Cache.config
val l2_config : t -> Cache.config

val validate : t -> (unit, string) result
val pp : Format.formatter -> t -> unit
