(** Batched multi-config simulation.

    [run configs trace] produces, for every configuration, exactly the
    result of [Processor.run cfg trace] — bit-identical, enforced by
    QCheck replay properties — while decoding the trace once and
    sharing everything that does not depend on the configuration:

    - the instruction streams (opcodes, absolute operand producers,
      addresses, PCs, branch outcomes, the older-store chain) live in
      one flat struct-of-arrays {!plan} read by every config;
    - the branch predictor interacts with the trace in pure program
      order, so its per-branch mispredict outcomes are computed once
      per distinct predictor configuration and shared;
    - the per-config cycle walk skips provably quiet stretches (cache
      fills, misprediction refills, long dependency chains) in one
      jump instead of cycling through them.

    The natural unit is the LHS candidate batch of a training run: the
    same workload trace evaluated under tens of design points.  Configs
    fan out over the domain pool when [domains > 1]; results are in
    input order and independent of the domain count. *)

type plan
(** A workload trace decoded into shared, immutable simulation streams.
    Safe to reuse across [run_plan] calls and across domains. *)

val plan : Trace.t -> plan
(** Decode [trace] once.  O(length) time and memory. *)

val length : plan -> int
(** Number of instructions in the decoded trace. *)

val run_plan :
  ?max_cycles:int ->
  ?warm:bool ->
  ?domains:int ->
  plan ->
  Config.t array ->
  Processor.result array
(** Simulate every configuration against the decoded trace.
    [warm] (default [true]) pre-heats caches and predictor exactly as
    [Processor.run] does.  Raises [Invalid_argument] if any config
    fails validation, and [Processor.Cycle_limit_exceeded] as the
    reference would.  With [domains > 1] configs are simulated on the
    domain pool; results are bit-identical at every domain count. *)

val run :
  ?max_cycles:int ->
  ?warm:bool ->
  ?domains:int ->
  Config.t array ->
  Trace.t ->
  Processor.result array
(** [run configs trace] is [run_plan (plan trace) configs]. *)

val cpi :
  ?max_cycles:int ->
  ?warm:bool ->
  ?domains:int ->
  Config.t array ->
  Trace.t ->
  float array
(** Cycles per instruction of every config, as [Processor.cpi]. *)
