type t = {
  n : int;
  op : int array;
  dep1 : int array;
  dep2 : int array;
  addr : int array;
  pc : int array;
  taken : Bytes.t;
  target : int array;
}

type inst = {
  op : Opcode.t;
  dep1 : int;
  dep2 : int;
  addr : int;
  pc : int;
  taken : bool;
  target : int;
}

let length (t : t) = t.n
let op (t : t) i = Opcode.of_int t.op.(i)
let dep1 (t : t) i = t.dep1.(i)
let dep2 (t : t) i = t.dep2.(i)
let addr (t : t) i = t.addr.(i)
let pc (t : t) i = t.pc.(i)
let taken (t : t) i = Bytes.get t.taken i <> '\000'
let target (t : t) i = t.target.(i)

let get t i =
  {
    op = op t i;
    dep1 = dep1 t i;
    dep2 = dep2 t i;
    addr = addr t i;
    pc = pc t i;
    taken = taken t i;
    target = target t i;
  }

module Builder = struct
  type trace = t

  type t = {
    mutable n : int;
    mutable op : int array;
    mutable dep1 : int array;
    mutable dep2 : int array;
    mutable addr : int array;
    mutable pc : int array;
    mutable taken : Bytes.t;
    mutable target : int array;
  }

  let create ?(capacity = 1024) () =
    let capacity = max 16 capacity in
    {
      n = 0;
      op = Array.make capacity 0;
      dep1 = Array.make capacity 0;
      dep2 = Array.make capacity 0;
      addr = Array.make capacity 0;
      pc = Array.make capacity 0;
      taken = Bytes.make capacity '\000';
      target = Array.make capacity 0;
    }

  let grow b =
    let cap = Array.length b.op in
    let cap' = 2 * cap in
    let extend a = Array.append a (Array.make cap 0) in
    b.op <- extend b.op;
    b.dep1 <- extend b.dep1;
    b.dep2 <- extend b.dep2;
    b.addr <- extend b.addr;
    b.pc <- extend b.pc;
    b.target <- extend b.target;
    let taken' = Bytes.make cap' '\000' in
    Bytes.blit b.taken 0 taken' 0 cap;
    b.taken <- taken'

  let add b (i : inst) =
    if b.n >= Array.length b.op then grow b;
    let k = b.n in
    b.op.(k) <- Opcode.to_int i.op;
    b.dep1.(k) <- i.dep1;
    b.dep2.(k) <- i.dep2;
    b.addr.(k) <- i.addr;
    b.pc.(k) <- i.pc;
    Bytes.set b.taken k (if i.taken then '\001' else '\000');
    b.target.(k) <- i.target;
    b.n <- k + 1

  let length b = b.n

  let finish b : trace
      =
    {
      n = b.n;
      op = Array.sub b.op 0 b.n;
      dep1 = Array.sub b.dep1 0 b.n;
      dep2 = Array.sub b.dep2 0 b.n;
      addr = Array.sub b.addr 0 b.n;
      pc = Array.sub b.pc 0 b.n;
      taken = Bytes.sub b.taken 0 b.n;
      target = Array.sub b.target 0 b.n;
    }
end

let of_array instructions =
  let b = Builder.create ~capacity:(Array.length instructions) () in
  Array.iter (Builder.add b) instructions;
  Builder.finish b

let of_list instructions = of_array (Array.of_list instructions)

let mix t =
  let counts = Array.make (List.length Opcode.all) 0 in
  for i = 0 to t.n - 1 do
    counts.(t.op.(i)) <- counts.(t.op.(i)) + 1
  done;
  let total = float_of_int (max 1 t.n) in
  Opcode.all
  |> List.map (fun o -> (o, float_of_int counts.(Opcode.to_int o) /. total))
  |> List.filter (fun (_, f) -> f > 0.)
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let validate t =
  let problem = ref None in
  let fail i msg =
    if !problem = None then
      problem := Some (Printf.sprintf "instruction %d: %s" i msg)
  in
  for i = 0 to t.n - 1 do
    if t.dep1.(i) < 0 || t.dep1.(i) > i then fail i "dep1 out of range";
    if t.dep2.(i) < 0 || t.dep2.(i) > i then fail i "dep2 out of range";
    let o = Opcode.of_int t.op.(i) in
    if Opcode.is_memory o && t.addr.(i) < 0 then fail i "negative address";
    if t.pc.(i) land 3 <> 0 then fail i "misaligned pc"
  done;
  match !problem with None -> Ok () | Some msg -> Error msg
