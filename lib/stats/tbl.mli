(** Deterministic iteration over hash tables.

    [Hashtbl.iter]/[Hashtbl.fold] visit bindings in unspecified order, so
    any result-path accumulation that is not exactly commutative (float
    sums, list building, first-wins merges) silently depends on hashing
    internals.  These helpers materialise the bindings and sort them by
    key under an explicit comparator, giving a stable total order; the
    [hashtbl-order] lint rule rejects direct [iter]/[fold] call sites in
    result-path code and points here. *)

val sorted_bindings :
  cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings sorted by key.  With unique keys (the common case —
    tables populated via [replace]) the order is a total function of the
    table's contents.  Tables built with [add] may hold duplicate keys;
    duplicates keep their relative bucket order, so only use [add]-built
    tables here when the per-key values are themselves order-free. *)

val iter_sorted :
  cmp:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [Hashtbl.iter] in ascending key order under [cmp]. *)

val fold_sorted :
  cmp:('k -> 'k -> int) ->
  ('k -> 'v -> 'acc -> 'acc) ->
  ('k, 'v) Hashtbl.t ->
  'acc ->
  'acc
(** [Hashtbl.fold] in ascending key order under [cmp]. *)
