let env_domains () =
  match Sys.getenv_opt "ARCHPRED_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Some d
      | Some _ ->
          Archpred_obs.Error.invalid_env ~var:"ARCHPRED_DOMAINS"
            (Printf.sprintf "must be a positive integer, got %S" s)
      | None ->
          Archpred_obs.Error.invalid_env ~var:"ARCHPRED_DOMAINS"
            (Printf.sprintf "not an integer: %S" s))

let default_domains () =
  match env_domains () with
  | Some d -> d
  | None -> min 8 (max 1 (Domain.recommended_domain_count ()))

(* A persistent pool of worker domains.  Spawning a domain costs tens of
   microseconds and scales poorly when a hot loop (candidate scoring, grid
   cells, discrepancy rows) issues thousands of small parallel sections, so
   the workers are created once, on first use, and then sleep on a
   condition variable between work items.

   The caller of [run] participates: while its own tasks are outstanding it
   keeps draining the shared queue (executing tasks that may belong to a
   concurrently submitted call), which also makes nested parallel sections
   deadlock-free — the innermost section's tasks are always runnable by
   whoever is waiting on them. *)
module Pool = struct
  type t = {
    mutex : Mutex.t;
    work : Condition.t;  (* queue gained tasks, or shutdown *)
    finished : Condition.t;  (* some call's last task completed *)
    queue : (unit -> unit) Queue.t;
    mutable shutdown : bool;
  }

  let worker pool () =
    let running = ref true in
    while !running do
      Mutex.lock pool.mutex;
      while Queue.is_empty pool.queue && not pool.shutdown do
        Condition.wait pool.work pool.mutex
      done;
      match Queue.take_opt pool.queue with
      | Some task ->
          Mutex.unlock pool.mutex;
          task ()
      | None ->
          (* Shutdown with an empty queue. *)
          Mutex.unlock pool.mutex;
          running := false
    done

  let instance =
    lazy
      (let pool =
         {
           mutex = Mutex.create ();
           work = Condition.create ();
           finished = Condition.create ();
           queue = Queue.create ();
           shutdown = false;
         }
       in
       let workers =
         List.init
           (max 0 (default_domains () - 1))
           (fun _ -> Domain.spawn (worker pool))
       in
       if workers <> [] then
         at_exit (fun () ->
             Mutex.lock pool.mutex;
             pool.shutdown <- true;
             Condition.broadcast pool.work;
             Mutex.unlock pool.mutex;
             List.iter Domain.join workers);
       pool)

  (* Run every task to completion.  Tasks must not raise (callers capture
     exceptions into per-task slots themselves). *)
  let run tasks =
    let pool = Lazy.force instance in
    let pending = ref (Array.length tasks) in
    let wrap task () =
      Fun.protect task ~finally:(fun () ->
          Mutex.lock pool.mutex;
          decr pending;
          if !pending = 0 then Condition.broadcast pool.finished;
          Mutex.unlock pool.mutex)
    in
    Mutex.lock pool.mutex;
    Array.iter (fun t -> Queue.add (wrap t) pool.queue) tasks;
    Condition.broadcast pool.work;
    let rec drain () =
      if !pending > 0 then
        match Queue.take_opt pool.queue with
        | Some task ->
            Mutex.unlock pool.mutex;
            task ();
            Mutex.lock pool.mutex;
            drain ()
        | None ->
            Condition.wait pool.finished pool.mutex;
            drain ()
    in
    drain ();
    Mutex.unlock pool.mutex
end

let resolve = function Some d -> max 1 d | None -> default_domains ()

(* Observability probe.  Checking [Lazy.is_val] first matters: forcing the
   lazy would spawn the worker domains just to report that their queue is
   empty. *)
let queue_depth () =
  if not (Lazy.is_val Pool.instance) then 0
  else begin
    let pool = Lazy.force Pool.instance in
    Mutex.lock pool.Pool.mutex;
    let d = Queue.length pool.Pool.queue in
    Mutex.unlock pool.Pool.mutex;
    d
  end

(* Re-raise the first captured exception in task order, so the reported
   failure does not depend on domain scheduling. *)
let reraise_first failures =
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
    failures

let init ?domains n f =
  if n < 0 then invalid_arg "Parallel.init: negative length";
  if n = 0 then [||]
  else
    let d = min (resolve domains) n in
    if d = 1 then begin
      (* Explicit loop: left-to-right evaluation order is part of the
         contract (unlike [Array.init]'s unspecified order). *)
      let results = Array.make n (f 0) in
      for i = 1 to n - 1 do
        results.(i) <- f i
      done;
      results
    end
    else begin
      (* Element 0 is computed before any task is queued: it sizes an
         unboxed result buffer, instead of an ['a option] per element. *)
      let results = Array.make n (f 0) in
      let failure = Array.make d None in
      (* Strided partition balances work when cost varies along the
         array; task [t] owns indices congruent to [t] modulo [d]. *)
      let task t () =
        try
          let i = ref (if t = 0 then d else t) in
          while !i < n do
            results.(!i) <- f !i;
            i := !i + d
          done
        with
        (* archpred-lint: allow catchall-exn -- transported; reraise_first re-raises on the caller *)
        | e -> failure.(t) <- Some (e, Printexc.get_raw_backtrace ())
      in
      Pool.run (Array.init d task);
      reraise_first failure;
      results
    end

let map ?domains f xs =
  let n = Array.length xs in
  if n = 0 then [||] else init ?domains n (fun i -> f xs.(i))

(* ---------- worker fault isolation ---------- *)

exception Deadline_exceeded of { elapsed : float; deadline : float }

let () =
  Printexc.register_printer (function
    | Deadline_exceeded { elapsed; deadline } ->
        Some
          (Printf.sprintf "Parallel.Deadline_exceeded (%.3fs > %.3fs)" elapsed
             deadline)
    | _ -> None)

(* Cross-run totals, mirrored into observability counters by the callers
   that own an obs handle (Build.train records the per-stage deltas). *)
let retries_counter = Atomic.make 0
let failed_counter = Atomic.make 0
let retries_total () = Atomic.get retries_counter
let failed_total () = Atomic.get failed_counter

(* One isolated attempt sequence: run [f x] up to [1 + retries] times,
   never letting an exception escape into the pool.  The budget is a
   deterministic per-element constant, so which elements end in [Error]
   does not depend on the domain count or scheduling (given [f] fails
   deterministically per attempt).  The deadline is cooperative: OCaml
   tasks cannot be preempted, so an attempt that outlives its wall-clock
   budget is detected when it returns and treated as a failed attempt. *)
let isolate ~retries ~deadline f x =
  let budget = max 0 retries in
  let rec go attempt =
    match
      Archpred_fault.Fault.point "pool.task";
      let t0 =
        match deadline with None -> 0L | Some _ -> Archpred_obs.now_ns ()
      in
      let v = f x in
      (match deadline with
      | Some limit ->
          let elapsed =
            Int64.to_float (Int64.sub (Archpred_obs.now_ns ()) t0) *. 1e-9
          in
          if elapsed > limit then
            raise (Deadline_exceeded { elapsed; deadline = limit })
      | None -> ());
      v
    with
    | v -> Ok v
    (* archpred-lint: allow catchall-exn -- task isolation boundary: the retry budget, then Error e, is the sanctioned recovery path *)
    | exception e ->
        if attempt < budget then begin
          Atomic.incr retries_counter;
          go (attempt + 1)
        end
        else begin
          Atomic.incr failed_counter;
          Error e
        end
  in
  go 0

let map_fallible ?domains ?(retries = 0) ?deadline f xs =
  map ?domains (isolate ~retries ~deadline f) xs

let map_reduce ?domains ~map:m ~combine xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Parallel.map_reduce: empty array";
  let d = min (resolve domains) n in
  if d = 1 then begin
    let acc = ref (m xs.(0)) in
    for i = 1 to n - 1 do
      acc := combine !acc (m xs.(i))
    done;
    !acc
  end
  else begin
    (* Contiguous chunks, reduced left-to-right; the [d] partials are then
       combined in chunk order, so for a fixed domain count the result is
       independent of scheduling. *)
    let q = n / d and r = n mod d in
    let partials = Array.make d None in
    let failure = Array.make d None in
    let task t () =
      try
        let lo = (t * q) + min t r in
        let hi = lo + q + if t < r then 1 else 0 in
        let acc = ref (m xs.(lo)) in
        for i = lo + 1 to hi - 1 do
          acc := combine !acc (m xs.(i))
        done;
        partials.(t) <- Some !acc
      with
      (* archpred-lint: allow catchall-exn -- transported; reraise_first re-raises on the caller *)
      | e -> failure.(t) <- Some (e, Printexc.get_raw_backtrace ())
    in
    Pool.run (Array.init d task);
    reraise_first failure;
    let acc = ref (Option.get partials.(0)) in
    for t = 1 to d - 1 do
      acc := combine !acc (Option.get partials.(t))
    done;
    !acc
  end
