let check name xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg (name ^ ": length mismatch");
  if Array.length xs < 2 then invalid_arg (name ^ ": need at least 2 points")

let pearson xs ys =
  check "Correlation.pearson" xs ys;
  let n = Array.length xs in
  let mx = Descriptive.mean xs and my = Descriptive.mean ys in
  let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if Float.equal !sxx 0. || Float.equal !syy 0. then 0. else !sxy /. sqrt (!sxx *. !syy)

(* Ranks with ties sharing their average rank. *)
let ranks xs =
  let n = Array.length xs in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Float.compare xs.(a) xs.(b)) order;
  let r = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(order.(!j + 1)) = xs.(order.(!i)) do incr j done;
    let avg = float_of_int (!i + !j) /. 2. +. 1. in
    for k = !i to !j do
      r.(order.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman xs ys =
  check "Correlation.spearman" xs ys;
  pearson (ranks xs) (ranks ys)

let r_squared ~actual ~predicted =
  check "Correlation.r_squared" actual predicted;
  let my = Descriptive.mean actual in
  let ss_res = ref 0. and ss_tot = ref 0. in
  for i = 0 to Array.length actual - 1 do
    let r = actual.(i) -. predicted.(i) and d = actual.(i) -. my in
    ss_res := !ss_res +. (r *. r);
    ss_tot := !ss_tot +. (d *. d)
  done;
  if Float.equal !ss_tot 0. then if Float.equal !ss_res 0. then 1. else neg_infinity
  else 1. -. (!ss_res /. !ss_tot)
