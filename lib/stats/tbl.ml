let sorted_bindings ~cmp tbl =
  (* The one sanctioned raw fold: cons-accumulation in bucket order is
     immediately normalised by the key sort below. *)
  (* archpred-lint: allow hashtbl-order -- sanctioned wrapper: fold feeds a total-order key sort *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.stable_sort (fun (a, _) (b, _) -> cmp a b)

let iter_sorted ~cmp f tbl =
  List.iter (fun (k, v) -> f k v) (sorted_bindings ~cmp tbl)

let fold_sorted ~cmp f tbl init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (sorted_bindings ~cmp tbl)
