(** Parallel array operations over a persistent pool of OCaml 5 domains.

    Model building needs hundreds of independent simulator runs, candidate
    scores and grid cells per experiment; each unit is pure (its inputs are
    immutable traces, samples and configurations), so they parallelise
    trivially.  The worker domains are spawned once, on first use, and
    sleep between parallel sections — issuing thousands of small sections
    costs queueing, not domain spawns.  The caller participates in every
    section it submits, so nested sections cannot deadlock and a
    single-domain machine degrades to plain loops. *)

val env_domains : unit -> int option
(** The [ARCHPRED_DOMAINS] environment variable, when set to a positive
    integer.  Consulted by {!default_domains}; exposed so executables can
    report or thread the setting explicitly.  This is the single parsing
    point for the variable: a set-but-invalid value (non-integer, zero or
    negative) raises [Archpred_obs.Error.Archpred (Invalid_env _)] instead
    of being silently ignored. *)

val default_domains : unit -> int
(** Number of domains used when [domains] is not given: [ARCHPRED_DOMAINS]
    if set, otherwise the recommended domain count for this machine capped
    at 8. *)

val queue_depth : unit -> int
(** Number of tasks currently queued in the worker pool (0 when the pool
    has never been started; reading never spawns domains).  A sampling
    probe for observability gauges. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f xs] evaluates [f] on every element, splitting the work across
    [domains] strided tasks.  [f] must be safe to run concurrently (no
    shared mutable state).  Results are in input order and independent of
    the domain count.  With [domains <= 1] the evaluation is a plain
    left-to-right loop.  If applications raise, the exception re-raised is
    the first one captured by the lowest-numbered task, independent of
    scheduling. *)

val init : ?domains:int -> int -> (int -> 'a) -> 'a array
(** [init n f] is [map f [|0; ...; n-1|]] without materialising the index
    array.  [f 0] is evaluated first, in the calling domain; with
    [domains <= 1] the remaining indices follow left to right. *)

exception Deadline_exceeded of { elapsed : float; deadline : float }
(** The failure recorded when a task attempt outlives its wall-clock
    budget (see {!map_fallible}; the check is cooperative — OCaml tasks
    cannot be preempted, so the attempt is failed when it returns). *)

val retries_total : unit -> int
(** Process-wide count of task attempts that were retried by
    {!map_fallible} since startup.  Callers that own an observability
    handle record the per-stage delta as a counter. *)

val failed_total : unit -> int
(** Process-wide count of tasks whose whole retry budget was exhausted
    (one [Error] slot each). *)

val map_fallible :
  ?domains:int ->
  ?retries:int ->
  ?deadline:float ->
  ('a -> 'b) ->
  'a array ->
  ('b, exn) result array
(** [map_fallible f xs] is {!map} with per-element fault isolation: an
    element whose applications raise is retried up to [retries] times
    (default 0) and then captured as [Error] in its slot instead of
    poisoning the whole section — every other element still completes.
    [deadline] (seconds of wall clock) fails attempts that run longer,
    with {!Deadline_exceeded} as the captured exception.  The retry
    budget is a deterministic per-element constant, so for an [f] that
    fails deterministically the [Ok]/[Error] shape of the result is
    identical at every domain count.  Each attempt marks the
    ["pool.task"] fault-injection site ({!Archpred_fault.Fault}); the
    {!retries_total} / {!failed_total} counters advance accordingly. *)

val map_reduce :
  ?domains:int ->
  map:('a -> 'b) ->
  combine:('b -> 'b -> 'b) ->
  'a array ->
  'b
(** [map_reduce ~map ~combine xs] folds [combine] over [map x] for every
    element.  Each task reduces a contiguous chunk left-to-right and the
    partials are combined in chunk order, so the result is deterministic
    for a fixed domain count — but, for non-associative operations such as
    float addition, may differ across domain counts.  Raises
    [Invalid_argument] on the empty array. *)
