type t = {
  mean_pct : float;
  std_pct : float;
  max_pct : float;
  rmse : float;
}

let absolute_percentage_errors ~actual ~predicted =
  if Array.length actual <> Array.length predicted then
    invalid_arg "Error_metrics: length mismatch";
  Array.init (Array.length actual) (fun i ->
      if Float.equal actual.(i) 0. then
        invalid_arg "Error_metrics: actual value is zero";
      100. *. abs_float (predicted.(i) -. actual.(i)) /. abs_float actual.(i))

let evaluate ~actual ~predicted =
  let errs = absolute_percentage_errors ~actual ~predicted in
  let sq = ref 0. in
  for i = 0 to Array.length actual - 1 do
    let d = predicted.(i) -. actual.(i) in
    sq := !sq +. (d *. d)
  done;
  {
    mean_pct = Descriptive.mean errs;
    std_pct = Descriptive.std errs;
    max_pct = Descriptive.max errs;
    rmse = sqrt (!sq /. float_of_int (Array.length actual));
  }

let pp ppf t =
  Format.fprintf ppf "mean=%.2f%% std=%.2f%% max=%.2f%% rmse=%.4f" t.mean_pct
    t.std_pct t.max_pct t.rmse
