let quantile_sorted sorted q =
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let h = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor h) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = h -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let checked_sorted name xs q =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array");
  if q < 0. || q > 1. then invalid_arg (name ^ ": quantile out of [0,1]");
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  sorted

let quantile xs q =
  let sorted = checked_sorted "Quantile.quantile" xs q in
  quantile_sorted sorted q

let median xs = quantile xs 0.5

let iqr xs =
  let sorted = checked_sorted "Quantile.iqr" xs 0. in
  quantile_sorted sorted 0.75 -. quantile_sorted sorted 0.25

let quantiles xs qs =
  if Array.length xs = 0 then invalid_arg "Quantile.quantiles: empty array";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  List.map
    (fun q ->
      if q < 0. || q > 1. then invalid_arg "Quantile.quantiles: out of [0,1]";
      quantile_sorted sorted q)
    qs
