let uniform rng ~lo ~hi = lo +. Rng.float rng (hi -. lo)

let normal rng ~mean ~std =
  (* Box-Muller; u1 must be nonzero for the log. *)
  let rec nonzero () =
    let u = Rng.unit_float rng in
    if Float.equal u 0. then nonzero () else u
  in
  let u1 = nonzero () in
  let u2 = Rng.unit_float rng in
  let r = sqrt (-2. *. log u1) in
  mean +. (std *. r *. cos (2. *. Float.pi *. u2))

let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Distributions.exponential: rate <= 0";
  let rec nonzero () =
    let u = Rng.unit_float rng in
    if Float.equal u 0. then nonzero () else u
  in
  -.log (nonzero ()) /. rate

let geometric rng ~p =
  if p <= 0. || p > 1. then invalid_arg "Distributions.geometric: p not in (0,1]";
  if Float.equal p 1. then 0
  else begin
    let rec nonzero () =
      let u = Rng.unit_float rng in
      if Float.equal u 0. then nonzero () else u
    in
    let u = nonzero () in
    int_of_float (floor (log u /. log (1. -. p)))
  end

let zipf rng ~n ~s =
  if n <= 0 then invalid_arg "Distributions.zipf: n <= 0";
  if s < 0. then invalid_arg "Distributions.zipf: s < 0";
  if n = 1 then 0
  else if Float.equal s 0. then Rng.int rng n
  else begin
    (* Devroye's rejection method for the Zipf distribution on [1, n]. *)
    let nf = float_of_int n in
    let t =
      if Float.equal s 1. then 1. +. log nf
      else (nf ** (1. -. s) -. s) /. (1. -. s)
    in
    let inv_cdf p =
      (* Inverse of the normalised envelope CDF. *)
      let pt = p *. t in
      if pt <= 1. then pt
      else if Float.equal s 1. then exp (pt -. 1.)
      else (1. +. (pt *. (1. -. s))) ** (1. /. (1. -. s))
    in
    let rec draw () =
      let x = inv_cdf (Rng.unit_float rng) in
      let k = Float.min nf (floor (x +. 0.5)) in
      let k = Float.max 1. k in
      let ratio = (k /. x) ** s in
      let accept =
        if k -. x <= 0.5 then ratio
        else ratio *. (x /. k) (* crude correction keeps accept <= 1 *)
      in
      if Rng.unit_float rng < accept then int_of_float k - 1 else draw ()
    in
    draw ()
  end

let categorical rng weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Distributions.categorical: weights sum <= 0";
  let x = Rng.float rng total in
  let n = Array.length weights in
  let rec scan i acc =
    if i >= n - 1 then n - 1
    else begin
      let acc = acc +. weights.(i) in
      if x < acc then i else scan (i + 1) acc
    end
  in
  scan 0 0.

type 'a alias_table = {
  values : 'a array;
  prob : float array;
  alias : int array;
}

let alias_of_weighted pairs =
  let n = Array.length pairs in
  if n = 0 then invalid_arg "Distributions.alias_of_weighted: empty";
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0. pairs in
  if total <= 0. then invalid_arg "Distributions.alias_of_weighted: weights sum <= 0";
  let values = Array.map fst pairs in
  let scaled = Array.map (fun (_, w) -> w *. float_of_int n /. total) pairs in
  let prob = Array.make n 1. in
  let alias = Array.init n (fun i -> i) in
  let small = ref [] and large = ref [] in
  Array.iteri
    (fun i p -> if p < 1. then small := i :: !small else large := i :: !large)
    scaled;
  let rec pair () =
    match (!small, !large) with
    | s :: srest, l :: lrest ->
        prob.(s) <- scaled.(s);
        alias.(s) <- l;
        scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.;
        small := srest;
        if scaled.(l) < 1. then begin
          small := l :: !small;
          large := lrest
        end
        else large := l :: lrest;
        pair ()
    | _ -> ()
  in
  pair ();
  { values; prob; alias }

let alias_draw rng t =
  let n = Array.length t.values in
  let i = Rng.int rng n in
  if Rng.unit_float rng < t.prob.(i) then t.values.(i)
  else t.values.(t.alias.(i))
